/**
 * @file
 * Shared helpers for the figure-reproduction benches: aligned table
 * printing, the standard core-count sweep of the paper's figures, and
 * the machine-readable JSON report the perf-regression harness emits.
 */

#ifndef SBHBM_BENCH_BENCH_UTIL_H
#define SBHBM_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace sbhbm::bench {

/** The x-axis of Figs 2, 7, 8, 9. */
inline const std::vector<unsigned> &
coreSweep()
{
    static const std::vector<unsigned> cores = {2, 16, 32, 48, 64};
    return cores;
}

/** Simple aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    Table &
    header(std::vector<std::string> cols)
    {
        cols_ = std::move(cols);
        return *this;
    }

    Table &
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    /** Format a double with @p prec digits after the point. */
    static std::string
    num(double v, int prec = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
        return buf;
    }

    static std::string
    num(uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    void
    print() const
    {
        std::printf("\n## %s\n\n", title_.c_str());
        std::vector<size_t> width(cols_.size(), 0);
        for (size_t c = 0; c < cols_.size(); ++c)
            width[c] = cols_[c].size();
        for (const auto &r : rows_)
            for (size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto print_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < r.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            r[c].c_str());
            std::printf("\n");
        };
        print_row(cols_);
        std::vector<std::string> rule;
        rule.reserve(cols_.size());
        for (size_t c = 0; c < cols_.size(); ++c)
            rule.push_back(std::string(width[c], '-'));
        print_row(rule);
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::string title_;
    std::vector<std::string> cols_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a named shape-check line ("EXPECT <what>: <ok|VIOLATED>"). */
inline void
shapeCheck(const char *what, bool ok)
{
    std::printf("SHAPE  %-60s %s\n", what, ok ? "ok" : "VIOLATED");
}

/**
 * One timed kernel result destined for the JSON perf report.
 * `baseline_ns_per_op` / `speedup` are 0 when the benchmark has no
 * naive reference implementation to compare against.
 */
struct BenchResult
{
    std::string name;
    double ns_per_op = 0;   //!< best wall time per operation
    uint64_t items = 0;     //!< records processed per operation
    double items_per_sec = 0;
    int iters = 0;          //!< timed repetitions (best-of)
    double baseline_ns_per_op = 0;
    double speedup = 0;     //!< baseline / rewritten
};

/**
 * Collects BenchResults and writes them as `BENCH_kernels.json`-style
 * output: a schema tag plus one object per benchmark. Deliberately
 * dependency-free (no Google Benchmark) so it runs everywhere CI does.
 */
class JsonReport
{
  public:
    void add(BenchResult r) { results_.push_back(std::move(r)); }

    const std::vector<BenchResult> &results() const { return results_; }

    /** @return true when the file was written successfully. */
    bool
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        std::fprintf(f, "{\n");
        std::fprintf(f, "  \"schema\": \"sbhbm-bench-v1\",\n");
        std::fprintf(f, "  \"benchmarks\": [\n");
        for (size_t i = 0; i < results_.size(); ++i) {
            const BenchResult &r = results_[i];
            std::fprintf(f, "    {\n");
            std::fprintf(f, "      \"name\": \"%s\",\n",
                         r.name.c_str());
            std::fprintf(f, "      \"ns_per_op\": %.2f,\n", r.ns_per_op);
            std::fprintf(f, "      \"items\": %llu,\n",
                         static_cast<unsigned long long>(r.items));
            std::fprintf(f, "      \"items_per_sec\": %.0f,\n",
                         r.items_per_sec);
            std::fprintf(f, "      \"iters\": %d", r.iters);
            if (r.baseline_ns_per_op > 0) {
                std::fprintf(f, ",\n      \"baseline_ns_per_op\": %.2f,\n",
                             r.baseline_ns_per_op);
                std::fprintf(f, "      \"speedup\": %.2f\n", r.speedup);
            } else {
                std::fprintf(f, "\n");
            }
            std::fprintf(f, "    }%s\n",
                         i + 1 < results_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        const bool ok = std::fclose(f) == 0;
        return ok;
    }

  private:
    std::vector<BenchResult> results_;
};

} // namespace sbhbm::bench

#endif // SBHBM_BENCH_BENCH_UTIL_H
