/**
 * @file
 * Shared helpers for the figure-reproduction benches: aligned table
 * printing, the standard core-count sweep of the paper's figures, and
 * the machine-readable JSON report the perf-regression harness emits.
 */

#ifndef SBHBM_BENCH_BENCH_UTIL_H
#define SBHBM_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json_writer.h"

namespace sbhbm::bench {

/** The x-axis of Figs 2, 7, 8, 9. */
inline const std::vector<unsigned> &
coreSweep()
{
    static const std::vector<unsigned> cores = {2, 16, 32, 48, 64};
    return cores;
}

/** Simple aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    Table &
    header(std::vector<std::string> cols)
    {
        cols_ = std::move(cols);
        return *this;
    }

    Table &
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    /** Format a double with @p prec digits after the point. */
    static std::string
    num(double v, int prec = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
        return buf;
    }

    static std::string
    num(uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    void
    print() const
    {
        std::printf("\n## %s\n\n", title_.c_str());
        std::vector<size_t> width(cols_.size(), 0);
        for (size_t c = 0; c < cols_.size(); ++c)
            width[c] = cols_[c].size();
        for (const auto &r : rows_)
            for (size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto print_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < r.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            r[c].c_str());
            std::printf("\n");
        };
        print_row(cols_);
        std::vector<std::string> rule;
        rule.reserve(cols_.size());
        for (size_t c = 0; c < cols_.size(); ++c)
            rule.push_back(std::string(width[c], '-'));
        print_row(rule);
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::string title_;
    std::vector<std::string> cols_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a named shape-check line ("EXPECT <what>: <ok|VIOLATED>"). */
inline void
shapeCheck(const char *what, bool ok)
{
    std::printf("SHAPE  %-60s %s\n", what, ok ? "ok" : "VIOLATED");
}

/**
 * One timed kernel result destined for the JSON perf report.
 * `baseline_ns_per_op` / `speedup` are 0 when the benchmark has no
 * naive reference implementation to compare against.
 */
struct BenchResult
{
    std::string name;
    double ns_per_op = 0;   //!< best wall time per operation
    uint64_t items = 0;     //!< records processed per operation
    double items_per_sec = 0;
    int iters = 0;          //!< timed repetitions (best-of)
    double baseline_ns_per_op = 0;
    double speedup = 0;     //!< baseline / rewritten
    int threads = 1;        //!< host worker threads the kernel used
};

/**
 * Git revision for report provenance: $SBHBM_GIT_REV when set (CI
 * exports it), else `git rev-parse` of the working directory, else
 * "unknown" (e.g. running an installed binary outside the repo).
 */
inline std::string
detectGitRev()
{
    if (const char *env = std::getenv("SBHBM_GIT_REV"))
        return env;
#if defined(__unix__) || defined(__APPLE__)
    if (std::FILE *p = ::popen("git rev-parse --short HEAD 2>/dev/null",
                               "r")) {
        char buf[64] = {0};
        const size_t got = std::fread(buf, 1, sizeof(buf) - 1, p);
        ::pclose(p);
        std::string rev(buf, got);
        while (!rev.empty()
               && (rev.back() == '\n' || rev.back() == '\r'))
            rev.pop_back();
        if (!rev.empty())
            return rev;
    }
#endif
    return "unknown";
}

/**
 * Collects BenchResults and writes them as `BENCH_kernels.json`-style
 * output. Schema v3: a schema tag, the host environment (host_cores,
 * git_rev — thread-scaling numbers are meaningless without the core
 * count they ran on), one object per benchmark including the host
 * worker-thread count the kernel used, plus optional extra top-level
 * sections (setExtra) for suite-specific payloads such as the drift
 * benchmark's per-decision counts. Deliberately dependency-free (no
 * Google Benchmark) so it runs everywhere CI does.
 */
class JsonReport
{
  public:
    void add(BenchResult r) { results_.push_back(std::move(r)); }

    const std::vector<BenchResult> &results() const { return results_; }

    void setGitRev(std::string rev) { git_rev_ = std::move(rev); }

    /**
     * Attach an extra top-level section: @p fn is called with the
     * writer positioned after `"key":` and must write exactly one
     * JSON value (object, array, or scalar).
     */
    void
    setExtra(std::string key,
             std::function<void(obs::JsonWriter &)> fn)
    {
        extras_.emplace_back(std::move(key), std::move(fn));
    }

    /** @return true when the file was written successfully. */
    bool
    writeTo(const std::string &path) const
    {
        const unsigned hw = std::thread::hardware_concurrency();
        obs::JsonWriter w;
        w.beginObject();
        w.key("schema").value("sbhbm-bench-v3");
        w.key("host_cores").value(hw >= 1 ? hw : 1);
        w.key("git_rev").value(git_rev_.empty() ? detectGitRev()
                                                : git_rev_);
        w.key("benchmarks").beginArray();
        for (const BenchResult &r : results_) {
            w.beginObject();
            w.key("name").value(r.name);
            w.key("ns_per_op").value(r.ns_per_op, 2);
            w.key("items").value(r.items);
            w.key("items_per_sec").value(r.items_per_sec, 0);
            w.key("threads").value(r.threads);
            w.key("iters").value(r.iters);
            if (r.baseline_ns_per_op > 0) {
                w.key("baseline_ns_per_op").value(r.baseline_ns_per_op,
                                                  2);
                w.key("speedup").value(r.speedup, 2);
            }
            w.endObject();
        }
        w.endArray();
        for (const auto &[key, fn] : extras_) {
            w.key(key);
            fn(w);
        }
        w.endObject();
        return w.writeFile(path);
    }

  private:
    std::vector<BenchResult> results_;
    std::string git_rev_;
    std::vector<
        std::pair<std::string, std::function<void(obs::JsonWriter &)>>>
        extras_;
};

} // namespace sbhbm::bench

#endif // SBHBM_BENCH_BENCH_UTIL_H
