/**
 * @file
 * Shared helpers for the figure-reproduction benches: aligned table
 * printing and the standard core-count sweep of the paper's figures.
 */

#ifndef SBHBM_BENCH_BENCH_UTIL_H
#define SBHBM_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace sbhbm::bench {

/** The x-axis of Figs 2, 7, 8, 9. */
inline const std::vector<unsigned> &
coreSweep()
{
    static const std::vector<unsigned> cores = {2, 16, 32, 48, 64};
    return cores;
}

/** Simple aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    Table &
    header(std::vector<std::string> cols)
    {
        cols_ = std::move(cols);
        return *this;
    }

    Table &
    row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
        return *this;
    }

    /** Format a double with @p prec digits after the point. */
    static std::string
    num(double v, int prec = 1)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
        return buf;
    }

    static std::string
    num(uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    void
    print() const
    {
        std::printf("\n## %s\n\n", title_.c_str());
        std::vector<size_t> width(cols_.size(), 0);
        for (size_t c = 0; c < cols_.size(); ++c)
            width[c] = cols_[c].size();
        for (const auto &r : rows_)
            for (size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        auto print_row = [&](const std::vector<std::string> &r) {
            for (size_t c = 0; c < r.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            r[c].c_str());
            std::printf("\n");
        };
        print_row(cols_);
        std::vector<std::string> rule;
        rule.reserve(cols_.size());
        for (size_t c = 0; c < cols_.size(); ++c)
            rule.push_back(std::string(width[c], '-'));
        print_row(rule);
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::string title_;
    std::vector<std::string> cols_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a named shape-check line ("EXPECT <what>: <ok|VIOLATED>"). */
inline void
shapeCheck(const char *what, bool ok)
{
    std::printf("SHAPE  %-60s %s\n", what, ok ? "ok" : "VIOLATED");
}

} // namespace sbhbm::bench

#endif // SBHBM_BENCH_BENCH_UTIL_H
