/**
 * @file
 * Figure 2 — the motivating GroupBy microbenchmark: Sort vs Hash on
 * HBM vs DRAM, throughput (M pairs/s) and memory bandwidth (GB/s) as
 * a function of core count.
 *
 * The paper runs 100 M key/value records (~100 values per key, 64-bit
 * random integers) through two tuned GroupBy implementations on real
 * KNL hardware. Here the same two algorithms execute functionally on
 * the host while charging their traffic to the simulated machine:
 *
 *  - Sort: parallel merge-sort of key/pointer pairs — per-core chunk
 *    sorts (bitonic blocks + local merge passes) followed by pairwise
 *    merge rounds sliced across all cores at key boundaries
 *    (algo::mergePathSplit). All traffic is sequential.
 *  - Hash: sequential partitioning pass, then parallel inserts into
 *    per-partition open-addressing tables. Inserts are dependent
 *    random accesses (one line per probe).
 *
 * Paper shapes this bench must reproduce (checked in the SHAPE lines):
 *  - Sort on HBM wins at every core count (>50% over Hash on HBM);
 *  - on DRAM the preference flips: Hash overtakes Sort above ~40
 *    cores because Sort saturates DRAM bandwidth;
 *  - Sort-on-HBM ~= Sort-on-DRAM below 16 cores (per-core streaming
 *    caps, not the bus, are the bottleneck at low parallelism);
 *  - Hash gains little (~10%) from HBM.
 *
 * Scale note: default 8 M pairs (not 100 M) so the functional work
 * stays tractable on the build host; throughput and bandwidth are
 * ratios over *simulated* time, so the series' shape is unaffected.
 * Pass a pair count as argv[1] to run larger.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "algo/hash_table.h"
#include "algo/sort.h"
#include "bench_util.h"
#include "common/rng.h"
#include "runtime/executor.h"
#include "sim/cost_model.h"
#include "sim/machine.h"

using namespace sbhbm;
using bench::Table;

namespace {

using algo::KpEntry;
using sim::Tier;

struct Point
{
    double mpairs_per_sec = 0;
    double bandwidth_gbps = 0;
};

std::vector<KpEntry>
makeInput(size_t n)
{
    // ~100 values per key, keys and values 64-bit random draws.
    std::vector<KpEntry> v(n);
    Rng rng(7);
    const uint64_t key_range = n / 100 + 1;
    for (size_t i = 0; i < n; ++i) {
        v[i].key = rng.nextBounded(key_range);
        v[i].row = nullptr;
    }
    return v;
}

/**
 * Parallel merge-sort GroupBy (paper §4.2): N chunk sorts, then
 * pairwise merge rounds; rounds with fewer pairs than cores slice
 * each merge across the idle cores.
 */
Point
runSort(std::vector<KpEntry> data, Tier tier, unsigned cores)
{
    sim::Machine machine(sim::MachineConfig::knl());
    runtime::Executor exec(machine, cores);
    const size_t n = data.size();
    const uint64_t entry_bytes = sizeof(KpEntry);

    // --- Phase 1: one chunk sort per core --------------------------
    const size_t chunks = cores;
    const size_t chunk = (n + chunks - 1) / chunks;
    std::vector<KpEntry> scratch(n);

    exec.parallelFor(
        runtime::ImpactTag::kHigh, static_cast<uint32_t>(chunks),
        [&](uint32_t i, sim::CostLog &log) {
            const size_t lo = std::min(n, i * chunk);
            const size_t hi = std::min(n, lo + chunk);
            if (hi <= lo)
                return;
            algo::sortRun(data.data() + lo, hi - lo, scratch.data() + lo);
            const auto m = static_cast<double>(hi - lo);
            const int levels = algo::mergeLevels(hi - lo);
            log.seq(tier, uint64_t(1 + levels)
                              * sim::cost::kSortBytesPerElemLevel
                              * (hi - lo));
            log.cpuVector(sim::cost::kBitonicStages
                              * sim::cost::kBitonicNsPerElemStage * m
                          + sim::cost::kMergeNsPerElem * m * levels);
        },
        [] {});
    machine.run();

    // --- Phase 2: pairwise merge rounds, sliced when wide ----------
    std::vector<size_t> bounds; // chunk boundaries, ascending
    for (size_t lo = 0; lo < n; lo += chunk)
        bounds.push_back(lo);
    bounds.push_back(n);

    std::vector<KpEntry> out(n);
    auto *src = &data;
    auto *dst = &out;
    while (bounds.size() > 2) {
        // Merge runs (bounds[2i], bounds[2i+1], bounds[2i+2]).
        const size_t pairs = (bounds.size() - 1) / 2;
        const size_t odd = (bounds.size() - 1) % 2;
        const auto slices = static_cast<uint32_t>(
            std::max<size_t>(1, cores / std::max<size_t>(pairs, 1)));

        // Functional merge (host): whole pairs at once.
        for (size_t p = 0; p < pairs; ++p) {
            const size_t lo = bounds[2 * p];
            const size_t mid = bounds[2 * p + 1];
            const size_t hi = bounds[2 * p + 2];
            algo::mergeRuns(src->data() + lo, mid - lo,
                            src->data() + mid, hi - mid,
                            dst->data() + lo);
        }
        if (odd) {
            const size_t lo = bounds[bounds.size() - 2];
            std::memcpy(dst->data() + lo, src->data() + lo,
                        (n - lo) * entry_bytes);
        }

        // Simulated cost: each pair merge split into `slices` tasks
        // at merge-path key boundaries, all running concurrently.
        exec.parallelFor(
            runtime::ImpactTag::kHigh,
            static_cast<uint32_t>(pairs) * slices,
            [&](uint32_t t, sim::CostLog &log) {
                const size_t p = t / slices;
                const size_t lo = bounds[2 * p];
                const size_t hi = bounds[2 * p + 2];
                const auto m =
                    static_cast<double>(hi - lo) / slices;
                log.seq(tier,
                        static_cast<uint64_t>(
                            m * sim::cost::kSortBytesPerElemLevel));
                log.cpuVector(sim::cost::kMergeNsPerElem * m
                              + sim::cost::kMergeSliceNsPerChunk);
            },
            [] {});
        machine.run();

        std::vector<size_t> nb;
        for (size_t p = 0; p + 2 < bounds.size(); p += 2)
            nb.push_back(bounds[p]);
        nb.push_back(n);
        if (odd)
            nb.insert(nb.end() - 1, bounds[bounds.size() - 2]);
        bounds = std::move(nb);
        std::swap(src, dst);
    }
    sbhbm_assert(algo::isSortedByKey(src->data(), n),
                 "sort GroupBy produced unsorted output");

    Point pt;
    const double sec = simToSeconds(machine.now());
    pt.mpairs_per_sec = static_cast<double>(n) / sec / 1e6;
    pt.bandwidth_gbps = machine.tierCumulativeBytes(tier) / sec / 1e9;
    return pt;
}

/**
 * Hash GroupBy (paper §2.2): sequential partition pass, then parallel
 * open-addressing inserts with one random line access per probe.
 */
Point
runHash(std::vector<KpEntry> data, Tier tier, unsigned cores)
{
    sim::Machine machine(sim::MachineConfig::knl());
    runtime::Executor exec(machine, cores);
    const double tier_latency_ns =
        machine.config().tier(tier).latency_ns;
    const size_t n = data.size();
    const uint64_t entry_bytes = sizeof(KpEntry);

    // --- Phase 1: partition by key range (sequential) ---------------
    const size_t parts = cores;
    std::vector<std::vector<KpEntry>> partition(parts);
    for (auto &p : partition)
        p.reserve(2 * n / parts);
    const uint64_t key_range = n / 100 + 2;
    const uint64_t width = (key_range + parts - 1) / parts;

    const size_t chunk = (n + parts - 1) / parts;
    exec.parallelFor(
        runtime::ImpactTag::kHigh, static_cast<uint32_t>(parts),
        [&](uint32_t i, sim::CostLog &log) {
            const size_t lo = std::min(n, i * chunk);
            const size_t hi = std::min(n, lo + chunk);
            const auto m = static_cast<double>(hi - lo);
            // Read input + write partitioned copy, both streaming.
            log.seq(tier, 2 * (hi - lo) * entry_bytes);
            log.cpu(sim::cost::kHashPartitionNs * m);
        },
        [] {});
    // Functional partitioning (single host pass).
    for (size_t i = 0; i < n; ++i)
        partition[data[i].key / width].push_back(data[i]);
    machine.run();

    // --- Phase 2: per-partition hash insert (random) ----------------
    std::vector<std::unique_ptr<algo::HashTable<uint64_t>>> tables(parts);
    exec.parallelFor(
        runtime::ImpactTag::kHigh, static_cast<uint32_t>(parts),
        [&](uint32_t i, sim::CostLog &log) {
            tables[i] = std::make_unique<algo::HashTable<uint64_t>>(
                std::max<size_t>(16, partition[i].size() / 50));
            for (const KpEntry &e : partition[i])
                ++tables[i]->findOrInsert(e.key);
            const auto m = static_cast<double>(partition[i].size());
            log.seq(tier, partition[i].size() * entry_bytes);
            log.rand(tier, partition[i].size()
                               * sim::cost::kHashLinesPerRec
                               * sim::cost::kLineBytes);
            // Dependent-chain stalls: the probe walk serializes on
            // the tier's latency, so higher-latency HBM barely helps.
            log.cpu((sim::cost::kHashComputeNs + sim::cost::kHashProbeNs
                     + sim::cost::kHashChainMisses * tier_latency_ns)
                    * m);
        },
        [] {});
    machine.run();

    uint64_t groups = 0;
    for (const auto &t : tables)
        groups += t->size();
    sbhbm_assert(groups > 0 && groups <= n, "hash GroupBy lost keys");

    Point pt;
    const double sec = simToSeconds(machine.now());
    pt.mpairs_per_sec = static_cast<double>(n) / sec / 1e6;
    pt.bandwidth_gbps = machine.tierCumulativeBytes(tier) / sec / 1e9;
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    size_t n = 8'000'000;
    if (argc > 1)
        n = std::strtoull(argv[1], nullptr, 10);

    std::printf("Fig 2 — GroupBy on HBM and DRAM, %zu M pairs, "
                "~100 values/key\n",
                n / 1'000'000);

    auto input = makeInput(n);

    Table tput("Fig 2 (left): GroupBy throughput, M pairs/s");
    Table bw("Fig 2 (right): memory bandwidth, GB/s");
    tput.header({"cores", "HBM_Sort", "DRAM_Sort", "HBM_Hash",
                 "DRAM_Hash"});
    bw.header({"cores", "HBM_Sort", "DRAM_Sort", "HBM_Hash",
               "DRAM_Hash"});

    struct Series
    {
        Point hbm_sort, dram_sort, hbm_hash, dram_hash;
    };
    std::vector<Series> series;

    for (unsigned cores : bench::coreSweep()) {
        Series s;
        s.hbm_sort = runSort(input, Tier::kHbm, cores);
        s.dram_sort = runSort(input, Tier::kDram, cores);
        s.hbm_hash = runHash(input, Tier::kHbm, cores);
        s.dram_hash = runHash(input, Tier::kDram, cores);
        series.push_back(s);

        tput.row({Table::num(uint64_t{cores}),
                  Table::num(s.hbm_sort.mpairs_per_sec),
                  Table::num(s.dram_sort.mpairs_per_sec),
                  Table::num(s.hbm_hash.mpairs_per_sec),
                  Table::num(s.dram_hash.mpairs_per_sec)});
        bw.row({Table::num(uint64_t{cores}),
                Table::num(s.hbm_sort.bandwidth_gbps),
                Table::num(s.dram_sort.bandwidth_gbps),
                Table::num(s.hbm_hash.bandwidth_gbps),
                Table::num(s.dram_hash.bandwidth_gbps)});
    }
    tput.print();
    bw.print();
    std::printf("\n");

    // Shape checks against the paper's qualitative findings.
    bool sort_wins_hbm = true;
    for (const auto &s : series) {
        sort_wins_hbm &= s.hbm_sort.mpairs_per_sec
                         > 1.2 * s.hbm_hash.mpairs_per_sec;
    }
    bench::shapeCheck("Sort > 1.2x Hash on HBM at every core count",
                      sort_wins_hbm);

    const Series &at64 = series.back();
    bench::shapeCheck("Hash beats Sort on DRAM at 64 cores",
                      at64.dram_hash.mpairs_per_sec
                          > at64.dram_sort.mpairs_per_sec);
    const Series &at2 = series.front();
    bench::shapeCheck(
        "Sort on HBM ~= Sort on DRAM at 2 cores (within 10%)",
        std::abs(at2.hbm_sort.mpairs_per_sec
                 - at2.dram_sort.mpairs_per_sec)
            < 0.1 * at2.dram_sort.mpairs_per_sec);
    bench::shapeCheck(
        "Hash gains <25% from HBM at 64 cores",
        at64.hbm_hash.mpairs_per_sec
            < 1.25 * at64.dram_hash.mpairs_per_sec);
    bench::shapeCheck(
        "Sort throughput scales from 2 to 64 cores on HBM (>4x)",
        at64.hbm_sort.mpairs_per_sec > 4 * at2.hbm_sort.mpairs_per_sec);
    return 0;
}
