/**
 * @file
 * Figure 7 — YSB end-to-end comparison against a Flink-like engine:
 *
 *  (a) input throughput under the 1-second target delay vs cores, for
 *      StreamBox-HBM on KNL over RDMA and 10 GbE, the Flink-like
 *      engine on KNL over 10 GbE, and the Flink-like engine on the
 *      X56 Xeon over 10 GbE;
 *  (b) peak HBM bandwidth usage vs cores for the KNL configurations.
 *
 * Also prints the §7.1 headline ratios: per-core throughput gap at
 * the operating points where each engine saturates its NIC, the RDMA
 * over 10 GbE gain, and the machine-throughput gap.
 *
 * Shapes this bench must reproduce:
 *  - StreamBox-HBM saturates 10 GbE with ~5 cores; Flink-like cannot
 *    saturate it even with all 64;
 *  - RDMA lifts StreamBox-HBM's throughput ~2.9x, saturating with
 *    ~16 cores;
 *  - Flink on X56 saturates 10 GbE with ~32 of 56 cores;
 *  - per-core throughput gap vs Flink-on-KNL is an order of magnitude
 *    (paper: 18x).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "queries/query.h"

using namespace sbhbm;
using bench::Table;
using queries::EngineKind;
using queries::QueryConfig;
using queries::QueryId;
using queries::QueryResult;

namespace {

QueryConfig
base(uint64_t records)
{
    QueryConfig cfg;
    cfg.id = QueryId::kYsb;
    cfg.total_records = records;
    cfg.bundle_records = 50'000;
    // 50 ms windows keep several steady-state windows inside each
    // point's record budget (rates are ratios over simulated time,
    // so the series' shape does not depend on the window length).
    cfg.window_ns = 50 * kNsPerMs;
    return cfg;
}

/** Smallest core count (from the sweep) saturating >=95% of @p cap. */
int
saturationCores(const std::vector<std::pair<unsigned, QueryResult>> &pts,
                double cap_mrps)
{
    for (const auto &[cores, r] : pts)
        if (r.throughput_mrps >= 0.95 * cap_mrps)
            return static_cast<int>(cores);
    return -1;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t records = 8'000'000;
    if (argc > 1)
        records = std::strtoull(argv[1], nullptr, 10);

    const double ysb_bytes = 7.0 * sizeof(uint64_t);
    const double rdma_cap_mrps =
        sim::MachineConfig::knl().nic_rdma_bw / ysb_bytes / 1e6;
    const double eth_cap_mrps = sim::MachineConfig::knl().nic_ethernet_bw
                                * 0.8 / ysb_bytes / 1e6;

    std::printf("Fig 7 — YSB, %llu records/point; NIC limits: RDMA "
                "%.1f M rec/s, 10GbE %.1f M rec/s\n",
                static_cast<unsigned long long>(records), rdma_cap_mrps,
                eth_cap_mrps);

    std::vector<std::pair<unsigned, QueryResult>> sb_rdma, sb_eth,
        flink_knl, flink_x56;

    for (unsigned cores : bench::coreSweep()) {
        QueryConfig cfg = base(records);
        cfg.cores = cores;

        cfg.engine = EngineKind::kStreamBoxHbm;
        cfg.ethernet_ingest = false;
        sb_rdma.emplace_back(cores, runQuery(cfg));

        cfg.ethernet_ingest = true;
        sb_eth.emplace_back(cores, runQuery(cfg));

        cfg.engine = EngineKind::kFlinkLike;
        flink_knl.emplace_back(cores, runQuery(cfg));

        QueryConfig xcfg = cfg;
        xcfg.machine = sim::MachineConfig::x56();
        xcfg.cores = std::min(cores, xcfg.machine.cores);
        flink_x56.emplace_back(xcfg.cores, runQuery(xcfg));
    }

    Table tput("Fig 7a: YSB input throughput under 1 s target delay, "
               "M rec/s");
    tput.header({"cores", "SB-HBM_KNL_RDMA", "SB-HBM_KNL_10GbE",
                 "Flink_KNL_10GbE", "Flink_X56_10GbE"});
    for (size_t i = 0; i < sb_rdma.size(); ++i) {
        tput.row({Table::num(uint64_t{sb_rdma[i].first}),
                  Table::num(sb_rdma[i].second.throughput_mrps),
                  Table::num(sb_eth[i].second.throughput_mrps),
                  Table::num(flink_knl[i].second.throughput_mrps),
                  Table::num(flink_x56[i].second.throughput_mrps)});
    }
    tput.print();

    Table bw("Fig 7b: peak HBM bandwidth usage, GB/s");
    bw.header({"cores", "SB-HBM_KNL_RDMA", "SB-HBM_KNL_10GbE",
               "Flink_KNL_10GbE"});
    for (size_t i = 0; i < sb_rdma.size(); ++i) {
        bw.row({Table::num(uint64_t{sb_rdma[i].first}),
                Table::num(sb_rdma[i].second.peak_hbm_bw_gbps),
                Table::num(sb_eth[i].second.peak_hbm_bw_gbps),
                Table::num(flink_knl[i].second.peak_hbm_bw_gbps)});
    }
    bw.print();

    // ---- §7.1 headline ratios --------------------------------------
    // Per-core throughput at each engine's NIC-saturating operating
    // point (the comparison the paper's "18x per core" uses).
    const int sb_sat = saturationCores(sb_eth, eth_cap_mrps);
    const double sb_eth_per_core =
        sb_eth.front().second.throughput_mrps
        / static_cast<double>(sb_eth.front().first);
    const auto &flink64 = flink_knl.back().second;
    const double flink_per_core =
        flink64.throughput_mrps
        / static_cast<double>(flink_knl.back().first);
    const double per_core_ratio = sb_eth_per_core / flink_per_core;

    const double rdma_gain = sb_rdma.back().second.throughput_mrps
                             / sb_eth.back().second.throughput_mrps;
    const double machine_ratio = sb_rdma.back().second.throughput_mrps
                                 / flink64.throughput_mrps;

    std::printf("\n§7.1 ratios (paper: 18x per core, 2.9x RDMA gain, "
                "4.1x machine):\n");
    std::printf("  per-core throughput, SB-HBM vs Flink-like on KNL: "
                "%.1fx\n", per_core_ratio);
    std::printf("  RDMA over 10GbE ingestion: %.2fx\n", rdma_gain);
    std::printf("  machine throughput, SB-HBM RDMA vs Flink-like: "
                "%.1fx\n", machine_ratio);
    std::printf("  SB-HBM saturates 10GbE at %d cores\n", sb_sat);
    std::printf("\n");

    bench::shapeCheck("SB-HBM saturates 10GbE with <= 16 cores",
                      sb_sat > 0 && sb_sat <= 16);
    bench::shapeCheck("Flink-like cannot saturate 10GbE at 64 cores",
                      flink64.throughput_mrps < 0.95 * eth_cap_mrps);
    bench::shapeCheck("per-core gap is an order of magnitude (>= 8x)",
                      per_core_ratio >= 8.0);
    bench::shapeCheck("RDMA gain in 2x..4x (paper 2.9x)",
                      rdma_gain >= 2.0 && rdma_gain <= 4.0);
    bench::shapeCheck(
        "Flink X56 saturates 10GbE by 32-48 cores",
        flink_x56.back().second.throughput_mrps >= 0.85 * eth_cap_mrps);
    bench::shapeCheck(
        "SB-HBM HBM bandwidth keeps rising past NIC saturation",
        sb_rdma.back().second.peak_hbm_bw_gbps
            > 1.2 * sb_rdma[1].second.peak_hbm_bw_gbps);
    return 0;
}
