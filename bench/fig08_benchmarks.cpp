/**
 * @file
 * Figure 8 — the nine numbered benchmarks of §6: throughput (lines)
 * and peak HBM bandwidth utilization (columns) vs core count, under
 * the 1-second target output delay, ingesting over 40 Gb/s RDMA.
 *
 * Paper shapes this bench must reproduce:
 *  - Windowed Average and Windowed Filter saturate the RDMA ingestion
 *    limit (the red lines of the figure) with ~16 cores;
 *  - Power Grid is the slowest pipeline;
 *  - keyed aggregations land in between and scale with cores until
 *    either ingestion or memory saturates;
 *  - at 64 cores the engine's HBM bandwidth usage is a large fraction
 *    of the tier's 375 GB/s peak, far above DRAM's 80 GB/s —
 *    bandwidth the throughput visibly benefits from.
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench_util.h"
#include "queries/query.h"

using namespace sbhbm;
using bench::Table;
using queries::QueryConfig;
using queries::QueryId;
using queries::QueryResult;

int
main(int argc, char **argv)
{
    uint64_t records = 8'000'000;
    if (argc > 1)
        records = std::strtoull(argv[1], nullptr, 10);

    const std::vector<QueryId> benchmarks = {
        QueryId::kTopKPerKey,    QueryId::kSumPerKey,
        QueryId::kMedianPerKey,  QueryId::kAvgPerKey,
        QueryId::kAvgAll,        QueryId::kUniqueCountPerKey,
        QueryId::kTemporalJoin,  QueryId::kWindowedFilter,
        QueryId::kPowerGrid,
    };

    const double rdma_bw = sim::MachineConfig::knl().nic_rdma_bw;
    std::printf("Fig 8 — nine benchmarks, %llu records/point, RDMA "
                "ingestion (%.1f GB/s payload)\n",
                static_cast<unsigned long long>(records), rdma_bw / 1e9);

    std::map<QueryId, std::vector<QueryResult>> results;
    for (QueryId id : benchmarks) {
        for (unsigned cores : bench::coreSweep()) {
            QueryConfig cfg;
            cfg.id = id;
            cfg.cores = cores;
            cfg.total_records = records;
            cfg.window_ns = 25 * kNsPerMs;
            cfg.bundle_records = 50'000;
            // The join needs sparse keys or its output (pairs per
            // matching key) grows quadratically with the window.
            if (id == QueryId::kTemporalJoin)
                cfg.key_range = 10'000'000;
            results[id].push_back(runQuery(cfg));
        }
    }

    Table tput("Fig 8 (lines): throughput, M rec/s");
    Table bw("Fig 8 (columns): peak HBM bandwidth usage, GB/s");
    std::vector<std::string> head{"cores"};
    for (QueryId id : benchmarks)
        head.push_back(queryName(id));
    tput.header(head);
    bw.header(head);

    const auto &sweep = bench::coreSweep();
    for (size_t c = 0; c < sweep.size(); ++c) {
        std::vector<std::string> trow{Table::num(uint64_t{sweep[c]})};
        std::vector<std::string> brow{Table::num(uint64_t{sweep[c]})};
        for (QueryId id : benchmarks) {
            trow.push_back(Table::num(results[id][c].throughput_mrps));
            brow.push_back(Table::num(results[id][c].peak_hbm_bw_gbps));
        }
        tput.row(trow);
        bw.row(brow);
    }
    tput.print();
    bw.print();
    std::printf("\n");

    // The RDMA limit line per record width (3 or 4 columns).
    const double cap3 = rdma_bw / (3 * 8) / 1e6;
    const double cap4 = rdma_bw / (4 * 8) / 1e6;
    std::printf("RDMA ingestion limits: %.0f M rec/s (3-column), "
                "%.0f M rec/s (4-column records)\n\n", cap3, cap4);

    auto at64 = [&](QueryId id) { return results[id].back(); };
    auto at2 = [&](QueryId id) { return results[id].front(); };

    bench::shapeCheck(
        "Windowed Average saturates RDMA ingestion (>= 0.9x limit)",
        at64(QueryId::kAvgAll).throughput_mrps >= 0.9 * cap3);
    bench::shapeCheck(
        "Windowed Filter reaches the shared-NIC ingestion limit",
        at64(QueryId::kWindowedFilter).throughput_mrps >= 0.8 * cap4);
    bool pg_lowest = true;
    for (QueryId id : benchmarks) {
        if (id == QueryId::kPowerGrid)
            continue;
        pg_lowest &= at64(QueryId::kPowerGrid).throughput_mrps
                     <= at64(id).throughput_mrps;
    }
    bench::shapeCheck("Power Grid is the slowest benchmark at 64 cores",
                      pg_lowest);
    bench::shapeCheck(
        "TopK/Median slower than Sum/Avg per key (heavier per-key op)",
        at64(QueryId::kTopKPerKey).throughput_mrps
                < at64(QueryId::kSumPerKey).throughput_mrps
            && at64(QueryId::kMedianPerKey).throughput_mrps
                   < at64(QueryId::kAvgPerKey).throughput_mrps);
    bool scaling = true;
    for (QueryId id : {QueryId::kTopKPerKey, QueryId::kSumPerKey,
                       QueryId::kMedianPerKey})
        scaling &= at64(id).throughput_mrps > 2.0 * at2(id).throughput_mrps;
    bench::shapeCheck("keyed benchmarks scale >2x from 2 to 64 cores",
                      scaling);
    double best_hbm = 0;
    for (QueryId id : benchmarks)
        best_hbm = std::max(best_hbm, at64(id).peak_hbm_bw_gbps);
    bench::shapeCheck(
        "peak HBM bandwidth well above DRAM's 80 GB/s at 64 cores",
        best_hbm > 100.0);
    return 0;
}
