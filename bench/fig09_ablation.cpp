/**
 * @file
 * Figure 9 — ablation of the key design features on TopK Per Key:
 *
 *   StreamBox-HBM          — flat hybrid memory, KPA, placement knob
 *   StreamBox-HBM Caching  — KPA, but hardware cache-mode memory
 *   StreamBox-HBM DRAM     — KPA, HBM disabled
 *   Caching NoKPA          — sequential algorithms over full records
 *                            on hardware-managed memory (StreamBox
 *                            with sort-based grouping)
 *
 * Paper shapes this bench must reproduce (§7.3):
 *  - ordering StreamBox-HBM > Caching > DRAM > Caching-NoKPA at high
 *    core counts;
 *  - DRAM-only loses ~47% (saturated DRAM bandwidth);
 *  - Caching loses up to ~23% (KPAs instantiated in DRAM first, full
 *    records migrated into HBM with little return);
 *  - NoKPA loses up to ~7x and stops scaling beyond 32 cores
 *    (grouping moves full records, blowing the cache working set).
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "bench_util.h"
#include "queries/query.h"

using namespace sbhbm;
using bench::Table;
using queries::EngineKind;
using queries::QueryConfig;
using queries::QueryId;
using queries::QueryResult;

int
main(int argc, char **argv)
{
    uint64_t records = 10'000'000;
    if (argc > 1)
        records = std::strtoull(argv[1], nullptr, 10);

    const std::vector<EngineKind> variants = {
        EngineKind::kStreamBoxHbm,
        EngineKind::kCaching,
        EngineKind::kDramOnly,
        EngineKind::kCachingNoKpa,
    };

    std::printf("Fig 9 — TopK Per Key ablation, %llu records/point\n",
                static_cast<unsigned long long>(records));

    std::map<EngineKind, std::vector<QueryResult>> results;
    for (EngineKind kind : variants) {
        for (unsigned cores : bench::coreSweep()) {
            QueryConfig cfg;
            cfg.id = QueryId::kTopKPerKey;
            cfg.engine = kind;
            cfg.cores = cores;
            cfg.total_records = records;
            cfg.window_ns = 25 * kNsPerMs;
            // Scale HBM capacity with the scaled-down windows (as in
            // Fig 10) so cache-mode working-set pressure matches the
            // paper's regime; see DESIGN.md 4b.
            cfg.machine.hbm.capacity_bytes = 128ull << 20;
            results[kind].push_back(runQuery(cfg));
        }
    }

    Table tput("Fig 9: TopK Per Key throughput, M rec/s "
               "(whole-run average: fixed work / total virtual time)");
    std::vector<std::string> head{"cores"};
    for (EngineKind kind : variants)
        head.push_back(engineKindName(kind));
    tput.header(head);
    const auto &sweep = bench::coreSweep();
    for (size_t c = 0; c < sweep.size(); ++c) {
        std::vector<std::string> row{Table::num(uint64_t{sweep[c]})};
        for (EngineKind kind : variants)
            row.push_back(Table::num(results[kind][c].total_mrps));
        tput.row(row);
    }
    tput.print();

    const auto &full = results[EngineKind::kStreamBoxHbm];
    const auto &caching = results[EngineKind::kCaching];
    const auto &dram = results[EngineKind::kDramOnly];
    const auto &nokpa = results[EngineKind::kCachingNoKpa];
    const size_t last = sweep.size() - 1;

    const double dram_loss =
        1.0 - dram[last].total_mrps / full[last].total_mrps;
    const double caching_loss =
        1.0 - caching[last].total_mrps / full[last].total_mrps;
    const double nokpa_gap =
        full[last].total_mrps / nokpa[last].total_mrps;

    std::printf("\n§7.3 ratios (paper: DRAM-only -47%%, Caching up to "
                "-23%%, NoKPA up to 7x):\n");
    std::printf("  DRAM-only loss at 64 cores   : %.0f%%\n",
                100 * dram_loss);
    std::printf("  Caching loss at 64 cores     : %.0f%%\n",
                100 * caching_loss);
    std::printf("  NoKPA gap at 64 cores        : %.1fx\n\n", nokpa_gap);

    // Mid-sweep points (32 cores) carry ingestion-throttle phase
    // noise of ~10-15%; the paper's separation is at high core
    // counts, so the ordering is asserted there.
    bool ordered = true;
    for (size_t c = 3; c < sweep.size(); ++c) {
        ordered &= full[c].total_mrps
                       >= 0.97 * caching[c].total_mrps
                   && caching[c].total_mrps
                          >= 0.97 * dram[c].total_mrps
                   && dram[c].total_mrps
                          >= 0.97 * nokpa[c].total_mrps;
    }
    bench::shapeCheck(
        "ordering HBM >= Caching >= DRAM >= NoKPA at 48 and 64 cores",
        ordered);
    // Magnitude notes (EXPERIMENTS.md): the DRAM-only and Caching
    // losses are compressed at simulator scale — the fluid bandwidth
    // model has no row-buffer thrash or hardware-migration
    // micro-effects, so only the burst-saturation component of the
    // paper's -47% / -23% appears. Ordering and the NoKPA gap (the
    // headline ablations) reproduce.
    bench::shapeCheck("DRAM-only loses >= 2% at 64 cores (paper 47%)",
                      dram_loss >= 0.02 && dram_loss <= 0.60);
    bench::shapeCheck("Caching loses 0-35% at 64 cores (paper 23%)",
                      caching_loss >= 0.0 && caching_loss <= 0.35);
    bench::shapeCheck("NoKPA gap at least 2.5x at 64 cores (paper 7x)",
                      nokpa_gap >= 2.5);
    const double gap16 = full[1].total_mrps
                         / nokpa[1].total_mrps;
    bench::shapeCheck("NoKPA gap widens with cores (gap64 > gap16)",
                      nokpa_gap > gap16);
    return 0;
}
