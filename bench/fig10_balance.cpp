/**
 * @file
 * Figure 10 — dynamic balancing of the two limited resources (HBM
 * capacity, DRAM bandwidth) under varying workloads, on TopK Per Key:
 *
 *  (a) rising ingestion rate: HBM capacity usage climbs, the knob
 *      spills new KPAs to DRAM, DRAM bandwidth rises but stays below
 *      its limit;
 *  (b) delayed watermarks (more bundles between adjacent watermarks):
 *      KPA lifespans stretch, pressuring HBM capacity; the knob
 *      reacts the same way.
 *
 * Scale note: the experiment windows here hold tens of MB of KPAs,
 * not the paper's gigabytes, so the machine's HBM capacity is scaled
 * down to reproduce the same *fractional* pressure the knob responds
 * to (the knob consumes used-fraction, so the control behaviour is
 * identical). The DRAM bandwidth axis is unscaled.
 *
 * Shapes to reproduce:
 *  - in both sweeps, higher load -> higher HBM usage AND higher DRAM
 *    bandwidth (the knob sheds KPAs to DRAM);
 *  - peak HBM usage stays below the capacity limit; peak DRAM
 *    bandwidth stays below the 80 GB/s limit (the knob balances
 *    without exhausting either);
 *  - the knob value k_low drops below 1 under pressure.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "queries/query.h"

using namespace sbhbm;
using bench::Table;
using queries::QueryConfig;
using queries::QueryId;
using queries::QueryResult;

namespace {

constexpr uint64_t kScaledHbmBytes = 128ull << 20;

struct Point
{
    double dram_bw_peak = 0;
    double dram_bw_avg = 0;
    double hbm_used_peak_mb = 0;
    double hbm_used_avg_mb = 0;
    double min_k_low = 1.0;
    bool met_delay = false;
};

Point
run(QueryConfig cfg)
{
    cfg.id = QueryId::kTopKPerKey;
    cfg.machine.hbm.capacity_bytes = kScaledHbmBytes;
    cfg.cores = 64;
    cfg.window_ns = 25 * kNsPerMs;

    QueryResult r = runQuery(cfg);
    Point p;
    p.dram_bw_peak = r.peak_dram_bw_gbps;
    p.dram_bw_avg = r.avg_dram_bw_gbps;
    p.hbm_used_peak_mb = r.peak_hbm_used_gb * 1000;
    p.hbm_used_avg_mb = r.avg_hbm_used_gb * 1000;
    p.met_delay = r.met_target_delay;
    for (const auto &s : r.samples)
        p.min_k_low = std::min(p.min_k_low, s.k_low);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t records = 8'000'000;
    if (argc > 1)
        records = std::strtoull(argv[1], nullptr, 10);

    std::printf("Fig 10 — dynamic balancing on TopK Per Key, 64 cores, "
                "HBM capacity scaled to %.0f MB\n",
                static_cast<double>(kScaledHbmBytes) / 1e6);

    // ---- (a) increasing ingestion rate -----------------------------
    const std::vector<double> rates = {20e6, 30e6, 40e6, 50e6, 60e6};
    Table ta("Fig 10a: increasing ingestion rate (M rec/s)");
    ta.header({"rate_Mrps", "DRAM_BW_peak", "DRAM_BW_avg", "HBM_used_peak_MB",
               "HBM_used_avg_MB", "min_k_low", "delay_ok"});
    std::vector<Point> pa;
    for (double rate : rates) {
        QueryConfig cfg;
        cfg.total_records = records;
        cfg.offered_rate = rate;
        Point p = run(cfg);
        pa.push_back(p);
        ta.row({Table::num(rate / 1e6, 0), Table::num(p.dram_bw_peak),
                Table::num(p.dram_bw_avg),
                Table::num(p.hbm_used_peak_mb, 0),
                Table::num(p.hbm_used_avg_mb, 0),
                Table::num(p.min_k_low, 2), p.met_delay ? "yes" : "no"});
    }
    ta.print();

    // ---- (b) delaying watermarks ------------------------------------
    // Gap axis in *fractions of a window* matching the paper's
    // 100..300-bundle sweep on 10 M-record windows: 0.4x..1.3x of a
    // window's bundles (54 at NIC rate). Gaps beyond the soft
    // back-pressure budget could never close a window (the deadlock
    // guard would rightly abort).
    const std::vector<uint32_t> wm_gaps = {20, 30, 40, 55, 70};
    Table tb("Fig 10b: bundles between adjacent watermarks");
    tb.header({"bundles/wm", "DRAM_BW_peak", "DRAM_BW_avg",
               "HBM_used_peak_MB", "HBM_used_avg_MB", "min_k_low"});
    std::vector<Point> pb;
    for (uint32_t gap : wm_gaps) {
        QueryConfig cfg;
        cfg.total_records = records;
        cfg.bundles_per_watermark = gap;
        // Delayed watermarks legitimately hold ~2 gaps of bundles in
        // flight; the back-pressure budget must cover that or no
        // window could ever close.
        cfg.max_inflight_bundles = 8 * gap + 80;
        Point p = run(cfg);
        pb.push_back(p);
        tb.row({Table::num(uint64_t{gap}), Table::num(p.dram_bw_peak),
                Table::num(p.dram_bw_avg),
                Table::num(p.hbm_used_peak_mb, 0),
                Table::num(p.hbm_used_avg_mb, 0),
                Table::num(p.min_k_low, 2)});
    }
    tb.print();
    std::printf("\nHW limits: DRAM bandwidth 80 GB/s, HBM capacity "
                "%.0f MB\n\n",
                static_cast<double>(kScaledHbmBytes) / 1e6);

    const double dram_limit = 80.0;
    // Decimal MB, like the usage columns.
    const double hbm_mb = static_cast<double>(kScaledHbmBytes) / 1e6;

    bench::shapeCheck(
        "10a: HBM usage grows with ingestion rate (>1.3x)",
        pa.back().hbm_used_avg_mb > 1.3 * pa.front().hbm_used_avg_mb);
    bench::shapeCheck(
        "10a: DRAM bandwidth grows with ingestion rate",
        pa.back().dram_bw_avg > pa.front().dram_bw_avg);
    bool bounded = true;
    for (const auto &p : pa)
        bounded &= p.dram_bw_avg < 0.5 * dram_limit
                   && p.dram_bw_peak <= dram_limit * 1.001
                   && p.hbm_used_peak_mb <= hbm_mb * 1.001;
    bench::shapeCheck(
        "10a: both resources bounded (avg DRAM bw < half its limit)",
        bounded);
    bench::shapeCheck("10a: knob spills to DRAM under pressure "
                      "(k_low < 1 at the highest rate)",
                      pa.back().min_k_low < 1.0);

    // With watermarks delayed, KPA lifespans stretch until HBM runs
    // pinned at capacity and the spill (DRAM bandwidth) grows with
    // the gap — the paper's point 5 -> 6 -> 7 sequence.
    bench::shapeCheck(
        "10b: HBM runs at capacity under delayed watermarks",
        pb.back().hbm_used_peak_mb > 0.9 * hbm_mb);
    bench::shapeCheck(
        "10b: spill to DRAM grows with the watermark gap",
        pb.back().dram_bw_avg > 1.5 * pb.front().dram_bw_avg);
    bool bounded_b = true;
    for (const auto &p : pb)
        bounded_b &= p.dram_bw_avg < 0.5 * dram_limit
                     && p.hbm_used_peak_mb <= hbm_mb * 1.001;
    bench::shapeCheck(
        "10b: both resources bounded (avg DRAM bw < half its limit)",
        bounded_b);
    bench::shapeCheck("10b: knob spills to DRAM when watermarks lag",
                      pb.back().min_k_low < 1.0);
    return 0;
}
