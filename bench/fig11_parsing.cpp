/**
 * @file
 * Figure 11 — impact of data parsing at ingestion: throughput of
 * parsing YSB records encoded as JSON, Protocol Buffers (varints) and
 * delimited text strings, on all cores of KNL and X56, compared with
 * StreamBox-HBM's throughput over already-parsed numerical data.
 *
 * The parsers run functionally (encode/decode round-trips over real
 * YSB records); each parsed record charges the calibrated per-record
 * scalar cost of its format, scaled by the machine's scalar speed —
 * which is how the paper's two findings appear:
 *
 *  - JSON parses at ~0.13x the engine's YSB rate (a bottleneck),
 *    protobuf at ~4.4x, plain text at ~29x;
 *  - X56's big cores parse 3-4x faster than KNL's, motivating the
 *    "Xeon parses, KNL streams" hybrid-cluster deployment.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ingest/generator.h"
#include "ingest/parse/parsers.h"
#include "queries/query.h"
#include "runtime/executor.h"
#include "sim/cost_model.h"
#include "sim/machine.h"

using namespace sbhbm;
using bench::Table;

namespace {

enum class Format { kJson, kProto, kText };

const char *
formatName(Format f)
{
    switch (f) {
      case Format::kJson: return "JSON";
      case Format::kProto: return "Protocol Buffers";
      case Format::kText: return "Text strings";
    }
    return "?";
}

double
costNsPerRec(Format f)
{
    switch (f) {
      case Format::kJson: return sim::cost::kParseJsonNsPerRec;
      case Format::kProto: return sim::cost::kParseProtoNsPerRec;
      case Format::kText: return sim::cost::kParseTextNsPerRec;
    }
    return 0;
}

/**
 * Parse @p total encoded YSB records on all cores of @p mcfg,
 * functionally decoding a real encoded buffer. Returns M rec/s.
 */
double
runParse(Format f, const sim::MachineConfig &mcfg, uint64_t total)
{
    // Build one encoded batch and reuse it across tasks.
    constexpr uint32_t kBatch = 20'000;
    std::vector<uint64_t> rows(kBatch * 7);
    {
        // Fill via a bundle-free path: generate rows directly.
        Rng rng(3);
        for (uint32_t i = 0; i < kBatch; ++i) {
            uint64_t *row = &rows[i * 7];
            row[0] = i;
            row[1] = rng.next();
            row[2] = rng.next();
            row[3] = rng.nextBounded(1000);
            row[4] = rng.nextBounded(5);
            row[5] = rng.nextBounded(3);
            row[6] = rng.next();
        }
    }
    std::string text;
    std::vector<uint8_t> bin;
    for (uint32_t i = 0; i < kBatch; ++i) {
        const uint64_t *row = &rows[i * 7];
        switch (f) {
          case Format::kJson:
            ingest::parse::encodeJson(row, 7, text);
            break;
          case Format::kProto:
            ingest::parse::encodeProto(row, 7, bin);
            break;
          case Format::kText:
            ingest::parse::encodeText(row, 7, text);
            break;
        }
    }

    sim::Machine machine(mcfg);
    runtime::Executor exec(machine, mcfg.cores);
    const uint64_t batches = (total + kBatch - 1) / kBatch;
    const uint64_t in_bytes = f == Format::kProto
                                  ? bin.size()
                                  : text.size();

    exec.parallelFor(
        runtime::ImpactTag::kHigh, static_cast<uint32_t>(batches),
        [&](uint32_t b, sim::CostLog &log) {
            // Functionally decode (first task validates every batch
            // shape; others charge the same cost — the decode is
            // identical work on identical bytes).
            if (b == 0) {
                uint64_t out[7];
                uint32_t parsed = 0;
                if (f == Format::kProto) {
                    const uint8_t *p = bin.data();
                    const uint8_t *end = p + bin.size();
                    while (p != nullptr && p < end) {
                        p = ingest::parse::parseProto(p, end, out, 7);
                        ++parsed;
                    }
                } else {
                    const char *p = text.data();
                    const char *end = p + text.size();
                    while (p != nullptr && p < end) {
                        p = f == Format::kJson
                                ? ingest::parse::parseJson(p, end, out, 7)
                                : ingest::parse::parseText(p, end, out, 7);
                        ++parsed;
                    }
                }
                sbhbm_assert(parsed >= kBatch,
                             "parser failed mid-batch: %u", parsed);
            }
            // Microbenchmark semantics (as in the paper): the
            // encoded batch is cache-resident, so the cost is pure
            // scalar decode work — no DRAM stream is charged.
            (void)in_bytes;
            log.cpu(costNsPerRec(f) * kBatch);
        },
        [] {});
    machine.run();
    return static_cast<double>(batches) * kBatch
           / simToSeconds(machine.now()) / 1e6;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t total = 10'000'000;
    if (argc > 1)
        total = std::strtoull(argv[1], nullptr, 10);

    // The reference line: StreamBox-HBM's YSB throughput over parsed
    // data (RDMA, all cores).
    queries::QueryConfig ysb;
    ysb.id = queries::QueryId::kYsb;
    ysb.cores = 64;
    ysb.total_records = 4'000'000;
    ysb.window_ns = 50 * kNsPerMs;
    const double engine_mrps = runQuery(ysb).throughput_mrps;

    std::printf("Fig 11 — parsing at ingestion, %llu records; "
                "StreamBox-HBM YSB reference: %.1f M rec/s\n",
                static_cast<unsigned long long>(total), engine_mrps);

    const auto knl = sim::MachineConfig::knl();
    const auto x56 = sim::MachineConfig::x56();

    Table t("Fig 11: parsing throughput, M rec/s (log axis in paper)");
    t.header({"format", "KNL", "X56", "KNL/engine"});
    double knl_rate[3], x56_rate[3];
    const Format formats[] = {Format::kJson, Format::kProto,
                              Format::kText};
    for (int i = 0; i < 3; ++i) {
        knl_rate[i] = runParse(formats[i], knl, total);
        x56_rate[i] = runParse(formats[i], x56, total);
        t.row({formatName(formats[i]), Table::num(knl_rate[i]),
               Table::num(x56_rate[i]),
               Table::num(knl_rate[i] / engine_mrps, 2)});
    }
    t.print();
    std::printf("\n");

    const double json_ratio = knl_rate[0] / engine_mrps;
    const double proto_ratio = knl_rate[1] / engine_mrps;
    const double text_ratio = knl_rate[2] / engine_mrps;

    bench::shapeCheck("JSON parses slower than the engine (~0.13x)",
                      json_ratio < 0.5);
    bench::shapeCheck("protobuf parses faster than the engine (2-8x)",
                      proto_ratio > 2.0 && proto_ratio < 8.0);
    bench::shapeCheck("text parses much faster than the engine (>15x)",
                      text_ratio > 15.0);
    bool x56_faster = true;
    for (int i = 0; i < 3; ++i) {
        const double gap = x56_rate[i] / knl_rate[i];
        x56_faster &= gap > 2.0 && gap < 6.0;
    }
    bench::shapeCheck("X56 parses 3-4x faster than KNL (all formats)",
                      x56_faster);
    return 0;
}
