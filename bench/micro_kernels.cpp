/**
 * @file
 * google-benchmark suite over the host-side kernels that implement
 * the Table 2 primitives: bitonic block sort, merge-sort runs,
 * merge-path splitting, the open-addressing hash table (baseline),
 * and the Fig 11 parsers.
 *
 * These measure *host* performance of the functional kernels (useful
 * when hacking on them); the figure benches measure *simulated*
 * performance, which is what reproduces the paper.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "algo/hash_table.h"
#include "algo/sort.h"
#include "common/rng.h"
#include "ingest/parse/parsers.h"

using namespace sbhbm;
using algo::KpEntry;

namespace {

std::vector<KpEntry>
randomEntries(size_t n, uint64_t seed = 1)
{
    std::vector<KpEntry> v(n);
    Rng rng(seed);
    for (auto &e : v) {
        e.key = rng.next();
        e.row = nullptr;
    }
    return v;
}

void
BM_BitonicBlockSort(benchmark::State &state)
{
    auto data = randomEntries(algo::kSortBlock);
    for (auto _ : state) {
        auto copy = data;
        algo::bitonicSortPow2(copy.data(), algo::kSortBlock);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * algo::kSortBlock));
}
BENCHMARK(BM_BitonicBlockSort);

void
BM_SortRun(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto data = randomEntries(n);
    std::vector<KpEntry> scratch(n);
    for (auto _ : state) {
        auto copy = data;
        algo::sortRun(copy.data(), n, scratch.data());
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_SortRun)->Range(1 << 10, 1 << 20);

void
BM_MergeRuns(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto a = randomEntries(n, 1);
    auto b = randomEntries(n, 2);
    std::vector<KpEntry> scratch(n);
    algo::sortRun(a.data(), n, scratch.data());
    algo::sortRun(b.data(), n, scratch.data());
    std::vector<KpEntry> out(2 * n);
    for (auto _ : state) {
        algo::mergeRuns(a.data(), n, b.data(), n, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * 2 * n));
}
BENCHMARK(BM_MergeRuns)->Range(1 << 12, 1 << 20);

void
BM_MergePathSplit(benchmark::State &state)
{
    const size_t n = 1 << 20;
    auto a = randomEntries(n, 3);
    auto b = randomEntries(n, 4);
    std::vector<KpEntry> scratch(n);
    algo::sortRun(a.data(), n, scratch.data());
    algo::sortRun(b.data(), n, scratch.data());
    size_t ai = 0, bi = 0;
    size_t diag = n / 3;
    for (auto _ : state) {
        algo::mergePathSplit(a.data(), n, b.data(), n, diag, &ai, &bi);
        benchmark::DoNotOptimize(ai);
        diag = (diag + 977) % (2 * n);
    }
}
BENCHMARK(BM_MergePathSplit);

void
BM_HashInsert(benchmark::State &state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    auto data = randomEntries(n, 5);
    for (auto _ : state) {
        algo::HashTable<uint64_t> table(n / 50 + 16);
        for (const auto &e : data)
            ++table.findOrInsert(e.key % (n / 100 + 1));
        benchmark::DoNotOptimize(table.size());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_HashInsert)->Range(1 << 12, 1 << 18);

template <int F>
void
BM_Parse(benchmark::State &state)
{
    constexpr uint32_t kRecords = 1000;
    Rng rng(7);
    std::string text;
    std::vector<uint8_t> bin;
    for (uint32_t i = 0; i < kRecords; ++i) {
        uint64_t row[7];
        for (auto &v : row)
            v = rng.next();
        if constexpr (F == 0)
            ingest::parse::encodeJson(row, 7, text);
        else if constexpr (F == 1)
            ingest::parse::encodeProto(row, 7, bin);
        else
            ingest::parse::encodeText(row, 7, text);
    }
    uint64_t out[7];
    for (auto _ : state) {
        uint32_t parsed = 0;
        if constexpr (F == 1) {
            const uint8_t *p = bin.data();
            const uint8_t *end = p + bin.size();
            while (p != nullptr && p < end) {
                p = ingest::parse::parseProto(p, end, out, 7);
                ++parsed;
            }
        } else {
            const char *p = text.data();
            const char *end = p + text.size();
            while (p != nullptr && p < end) {
                p = F == 0 ? ingest::parse::parseJson(p, end, out, 7)
                           : ingest::parse::parseText(p, end, out, 7);
                ++parsed;
            }
        }
        benchmark::DoNotOptimize(parsed);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * kRecords));
}
void BM_ParseJson(benchmark::State &s) { BM_Parse<0>(s); }
void BM_ParseProto(benchmark::State &s) { BM_Parse<1>(s); }
void BM_ParseText(benchmark::State &s) { BM_Parse<2>(s); }
BENCHMARK(BM_ParseJson);
BENCHMARK(BM_ParseProto);
BENCHMARK(BM_ParseText);

} // namespace

BENCHMARK_MAIN();
