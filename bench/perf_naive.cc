#include "perf_naive.h"

#include <algorithm>
#include <utility>

#include "algo/sort.h"

namespace sbhbm::bench {

using columnar::Bundle;
using columnar::BundleHandle;
using columnar::ColumnId;
using columnar::KpEntry;
using kpa::Ctx;
using kpa::Kpa;
using kpa::KpaPtr;
using kpa::Placement;
using kpa::RangePartition;

std::vector<RangePartition>
naivePartitionByRange(Ctx ctx, const Kpa &src, uint64_t range_width,
                      Placement place)
{
    std::vector<std::pair<uint64_t, uint32_t>> counts;
    const KpEntry *e = src.entries();
    for (uint32_t i = 0; i < src.size(); ++i) {
        const uint64_t rg = e[i].key / range_width;
        auto it =
            std::find_if(counts.begin(), counts.end(),
                         [rg](const auto &p) { return p.first == rg; });
        if (it == counts.end())
            counts.emplace_back(rg, 1);
        else
            ++it->second;
    }
    std::sort(counts.begin(), counts.end());

    std::vector<RangePartition> out;
    out.reserve(counts.size());
    for (const auto &[rg, n] : counts) {
        RangePartition rp;
        rp.range = rg;
        rp.part = Kpa::create(ctx.hm, n, ctx.place(place));
        rp.part->setResidentColumn(src.residentColumn());
        rp.part->adoptSourcesFrom(src);
        out.push_back(std::move(rp));
    }
    for (uint32_t i = 0; i < src.size(); ++i) {
        const uint64_t rg = e[i].key / range_width;
        for (auto &rp : out) {
            if (rp.range == rg) {
                rp.part->push(e[i].key, e[i].row);
                break;
            }
        }
    }
    for (auto &rp : out)
        rp.part->setSorted(src.sorted());
    return out;
}

BundleHandle
naiveJoin(Ctx ctx, const Kpa &l, const Kpa &r,
          const std::vector<ColumnId> &l_cols,
          const std::vector<ColumnId> &r_cols)
{
    const uint32_t out_cols =
        1 + static_cast<uint32_t>(l_cols.size() + r_cols.size());
    std::vector<std::pair<const KpEntry *, const KpEntry *>> matches;
    const KpEntry *le = l.entries();
    const KpEntry *re = r.entries();
    uint32_t i = 0, j = 0;
    while (i < l.size() && j < r.size()) {
        if (le[i].key < re[j].key) {
            ++i;
        } else if (re[j].key < le[i].key) {
            ++j;
        } else {
            const uint64_t key = le[i].key;
            uint32_t i_end = i;
            while (i_end < l.size() && le[i_end].key == key)
                ++i_end;
            uint32_t j_end = j;
            while (j_end < r.size() && re[j_end].key == key)
                ++j_end;
            for (uint32_t x = i; x < i_end; ++x)
                for (uint32_t y = j; y < j_end; ++y)
                    matches.emplace_back(&le[x], &re[y]);
            i = i_end;
            j = j_end;
        }
    }
    const auto m = static_cast<uint32_t>(matches.size());
    Bundle *out =
        Bundle::create(ctx.hm, out_cols, std::max<uint32_t>(m, 1));
    for (const auto &[a, b] : matches) {
        uint64_t *row = out->appendRaw();
        uint32_t c = 0;
        row[c++] = a->key;
        for (ColumnId lc : l_cols)
            row[c++] = a->row[lc];
        for (ColumnId rc : r_cols)
            row[c++] = b->row[rc];
    }
    return BundleHandle::adopt(out);
}

void
naiveSortRun(KpEntry *data, size_t n, KpEntry *scratch)
{
    if (n <= 1)
        return;
    for (size_t i = 0; i < n; i += algo::kSortBlock)
        algo::sortBlock(data + i, std::min(algo::kSortBlock, n - i));
    KpEntry *src = data;
    KpEntry *dst = scratch;
    for (size_t width = algo::kSortBlock; width < n; width <<= 1) {
        for (size_t i = 0; i < n; i += 2 * width) {
            const size_t mid = std::min(i + width, n);
            const size_t end = std::min(i + 2 * width, n);
            algo::mergeRuns(src + i, mid - i, src + mid, end - mid,
                            dst + i);
        }
        std::swap(src, dst);
    }
    if (src != data) {
        for (size_t i = 0; i < n; ++i)
            data[i] = src[i];
    }
}

KpaPtr
naiveExtract(Ctx ctx, Bundle &src, ColumnId key_col, Placement place)
{
    KpaPtr out = Kpa::create(ctx.hm, src.size(), ctx.place(place));
    for (uint32_t r = 0; r < src.size(); ++r) {
        uint64_t *row = src.row(r);
        out->push(row[key_col], row);
    }
    out->setResidentColumn(key_col);
    out->setSorted(src.size() <= 1);
    out->addSource(&src);
    return out;
}

BundleHandle
naiveMaterialize(Ctx ctx, const Kpa &k)
{
    const uint32_t cols = k.recordCols();
    Bundle *out = Bundle::create(ctx.hm, cols, k.size());
    const KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        out->append(e[i].row);
    return BundleHandle::adopt(out);
}

void
naiveHashProbeAll(algo::HashTable<uint64_t> &table,
                  const uint64_t *keys, size_t n, uint64_t **out)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = table.find(keys[i]);
}

uint64_t
naiveHashGroupAll(algo::HashTable<uint64_t> &table,
                  const uint64_t *keys, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        ++table.findOrInsert(keys[i]);
    return n;
}

} // namespace sbhbm::bench
