/**
 * @file
 * Reference (pre-rewrite) kernels for the perf-regression harness:
 * the asymptotics and buffering the hot-path rewrite removed, kept so
 * every report carries its own baseline. Compiled in their own
 * translation unit so the optimizer cannot cross-specialize them
 * against the live kernels they are measured against. Do not "fix"
 * these — they are the yardstick.
 */

#ifndef SBHBM_BENCH_PERF_NAIVE_H
#define SBHBM_BENCH_PERF_NAIVE_H

#include <cstddef>
#include <vector>

#include "columnar/bundle.h"
#include "columnar/record.h"
#include "kpa/primitives.h"

namespace sbhbm::bench {

/** O(n * ranges) counting + O(n * ranges) scatter, as before. */
std::vector<kpa::RangePartition>
naivePartitionByRange(kpa::Ctx ctx, const kpa::Kpa &src,
                      uint64_t range_width, kpa::Placement place);

/** Buffers every match pair before emitting, as before. */
columnar::BundleHandle
naiveJoin(kpa::Ctx ctx, const kpa::Kpa &l, const kpa::Kpa &r,
          const std::vector<columnar::ColumnId> &l_cols,
          const std::vector<columnar::ColumnId> &r_cols);

/**
 * Fixed data->scratch ping-pong with an unconditional full sort and a
 * final copy-back, as before.
 */
void naiveSortRun(columnar::KpEntry *data, size_t n,
                  columnar::KpEntry *scratch);

/** Per-record row() + push() extract loop, as before. */
kpa::KpaPtr naiveExtract(kpa::Ctx ctx, columnar::Bundle &src,
                         columnar::ColumnId key_col,
                         kpa::Placement place);

/** Per-column append() materialize loop, as before. */
columnar::BundleHandle naiveMaterialize(kpa::Ctx ctx,
                                        const kpa::Kpa &k);

/**
 * Scalar implementation of the findBatch contract: one serialized
 * find() chain per key, results materialized to @p out — the loop a
 * caller wrote before batching existed.
 */
void naiveHashProbeAll(algo::HashTable<uint64_t> &table,
                       const uint64_t *keys, size_t n,
                       uint64_t **out);

/**
 * Scalar upsert loop: one serialized findOrInsert() per key, as
 * before batching. @return number of grouped keys.
 */
uint64_t naiveHashGroupAll(algo::HashTable<uint64_t> &table,
                           const uint64_t *keys, size_t n);

} // namespace sbhbm::bench

#endif // SBHBM_BENCH_PERF_NAIVE_H
