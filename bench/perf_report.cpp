/**
 * @file
 * Host-kernel perf-regression harness.
 *
 * Times the rewritten KPA grouping kernels (partitionByRange, join,
 * sortRun, extract, materialize, keySwap) against reference
 * implementations preserving the pre-rewrite algorithms, plus one
 * end-to-end figure-style GroupBy-window pipeline, and writes the
 * results to a machine-readable JSON report (BENCH_kernels.json).
 * Unlike the fig* benches this measures *host wall-clock* time — the
 * simulated cost model is exercised but its output is not the metric.
 *
 * Self-contained on purpose (std::chrono, no Google Benchmark) so it
 * builds and runs wherever the test suite does, including CI.
 *
 * Usage: perf_report [--smoke] [--drift|--drift-only] [--out <path>]
 *                    [--threads <n>]
 *   --smoke      small inputs / few reps (CI per-PR signal)
 *   --drift      also run the drifting-distribution adaptive bench
 *   --drift-only run only the drift bench (ctest shape guard)
 *   --out        JSON output path (default BENCH_kernels.json)
 *   --threads    host worker threads for the parallel-kernel entries
 *                (default: sweep 1, 4 and the hardware concurrency)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "algo/hash_table.h"
#include "algo/sort.h"
#include "bench_util.h"
#include "common/profiler.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "kpa/primitives.h"
#include "perf_naive.h"
#include "runtime/adaptive.h"
#include "sim/machine_config.h"

using namespace sbhbm;
using bench::BenchResult;
using bench::naiveExtract;
using bench::naiveJoin;
using bench::naiveMaterialize;
using bench::naivePartitionByRange;
using bench::naiveSortRun;
using bench::Table;
using columnar::Bundle;
using columnar::BundleHandle;
using columnar::KpEntry;
using kpa::Ctx;
using kpa::Kpa;
using kpa::KpaPtr;
using kpa::Placement;
using mem::Tier;

namespace {

// -------------------------------------------------------------------
// Harness
// -------------------------------------------------------------------

double
nowNs()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Best-of-@p reps wall time of fn() in nanoseconds. */
template <typename Fn>
double
bestNs(int reps, Fn &&fn)
{
    double best = 0;
    for (int r = 0; r < reps; ++r) {
        const double t0 = nowNs();
        fn();
        const double t1 = nowNs();
        if (r == 0 || t1 - t0 < best)
            best = t1 - t0;
    }
    return best;
}

struct TimedPair
{
    double ns = 0;           //!< rewritten kernel, best of reps
    double naive_ns = 0;     //!< reference kernel, best of reps
    double median_ratio = 0; //!< median of per-rep naive/new ratios
};

/**
 * Best-of-@p reps for the rewritten kernel and its naive reference,
 * *interleaved* rep by rep so slow machine-load drift hits both sides
 * equally instead of biasing whichever ran second. The speedup is the
 * median of the per-rep back-to-back ratios, which stays meaningful
 * even when ambient load shifts between reps.
 */
template <typename Fn, typename NaiveFn>
TimedPair
bestNsVs(int reps, Fn &&fn, NaiveFn &&naive)
{
    TimedPair t;
    std::vector<double> ratios;
    ratios.reserve(reps);
    for (int r = 0; r < reps; ++r) {
        double t0 = nowNs();
        fn();
        double t1 = nowNs();
        const double mine = t1 - t0;
        if (r == 0 || mine < t.ns)
            t.ns = mine;
        t0 = nowNs();
        naive();
        t1 = nowNs();
        const double theirs = t1 - t0;
        if (r == 0 || theirs < t.naive_ns)
            t.naive_ns = theirs;
        if (mine > 0)
            ratios.push_back(theirs / mine);
    }
    std::sort(ratios.begin(), ratios.end());
    if (!ratios.empty())
        t.median_ratio = ratios[ratios.size() / 2];
    return t;
}

struct Env
{
    sim::MachineConfig cfg = sim::MachineConfig::knl();
    mem::HybridMemory hm{cfg, sim::MemoryMode::kFlat};
    sim::CostLog log;
    Placement hbm{Tier::kHbm, false};

    Ctx ctx() { return Ctx{hm, log}; }

    /** (key, value, ts) bundle; keys random in [0, key_range). */
    BundleHandle
    makeBundle(uint32_t rows, uint64_t key_range, uint64_t seed)
    {
        Rng rng(seed);
        BundleHandle b = BundleHandle::adopt(Bundle::create(hm, 3, rows));
        uint64_t *row = b->appendBlockRaw(rows);
        for (uint32_t r = 0; r < rows; ++r, row += 3) {
            row[0] = rng.nextBounded(key_range);
            row[1] = rng.nextBounded(1000);
            row[2] = 1000 + r;
        }
        return b;
    }
};

BenchResult
result(std::string name, double ns, uint64_t items, int reps,
       double baseline_ns = 0)
{
    BenchResult r;
    r.name = std::move(name);
    r.ns_per_op = ns;
    r.items = items;
    r.items_per_sec = ns > 0 ? 1e9 * static_cast<double>(items) / ns : 0;
    r.iters = reps;
    r.baseline_ns_per_op = baseline_ns;
    r.speedup = (baseline_ns > 0 && ns > 0) ? baseline_ns / ns : 0;
    return r;
}

/** Result of a paired bench: speedup is the drift-robust median. */
BenchResult
result(std::string name, const TimedPair &t, uint64_t items, int reps)
{
    BenchResult r = result(std::move(name), t.ns, items, reps,
                           t.naive_ns);
    r.speedup = t.median_ratio;
    return r;
}

/**
 * The wide-dup probe stream shared by the hash microbenches: every
 * key 2k+1, k < distinct, probed exactly twice, order shuffled.
 */
std::vector<uint64_t>
makeWideDupProbes(uint32_t n, uint64_t seed)
{
    std::vector<uint64_t> probes(n);
    for (uint32_t i = 0; i < n; ++i)
        probes[i] = uint64_t{i / 2} * 2 + 1;
    Rng rng(seed);
    for (uint32_t i = n - 1; i > 0; --i)
        std::swap(probes[i], probes[rng.nextBounded(i + 1)]);
    return probes;
}

// -------------------------------------------------------------------
// Drifting-distribution adaptive bench (--drift / --drift-only)
// -------------------------------------------------------------------
//
// A stream whose key distribution drifts across three phases, each
// `per_phase` windows of `rows` records:
//
//   phase 0  dup-factor step + cardinality ramp: shuffled keys, group
//            count doubling 4 -> 16 across the phase (dup factor
//            stepping 32 -> 8, always duplicate-heavy) — hash-scatter
//            grouping wins the whole phase;
//   phase 1  sortedness flip: keys arrive fully sorted (two rows per
//            key) — the sort-merge precheck reduces grouping to one
//            scan while hash-scatter still pays its full passes;
//   phase 2  unique shuffled keys — hash-scatter degenerates to a
//            hash pass plus a full sort of n group keys; sort-merge
//            pays only the sort.
//
// No fixed variant wins every phase, so an adaptive runner driven by
// the runtime::VariantPolicy (same per-window sampled stats the
// pipeline operators feed it) must beat both fixed variants
// end-to-end. Decisions depend only on deterministically sampled
// stats, so the per-window decision vector must be bit-identical
// across reps.

struct DriftWindow
{
    BundleHandle bundle;
    KpaPtr kpa;
    std::vector<KpEntry> pristine; //!< arrival-order entries
    int phase = 0;
};

struct DriftRun
{
    double total_ns = 0;
    double phase_ns[3] = {0, 0, 0};
    uint64_t groups = 0; //!< key runs consumed, summed over windows
    std::vector<uint8_t> decisions; //!< adaptive: GroupVariant per window
    uint64_t switches = 0;
};

std::vector<DriftWindow>
makeDriftWindows(Env &env, uint32_t rows, uint32_t per_phase)
{
    std::vector<DriftWindow> ws;
    ws.reserve(size_t{3} * per_phase);
    uint64_t seed = 1000;
    std::vector<uint64_t> keys(rows);
    for (int phase = 0; phase < 3; ++phase) {
        for (uint32_t i = 0; i < per_phase; ++i) {
            Rng rng(++seed);
            if (phase == 0) {
                const uint64_t g = uint64_t{4} << (3 * i / per_phase);
                for (uint32_t r = 0; r < rows; ++r)
                    keys[r] = rng.nextBounded(g);
            } else if (phase == 1) {
                for (uint32_t r = 0; r < rows; ++r)
                    keys[r] = r / 2;
            } else {
                for (uint32_t r = 0; r < rows; ++r)
                    keys[r] = r;
                for (uint32_t r = rows - 1; r > 0; --r)
                    std::swap(keys[r], keys[rng.nextBounded(r + 1)]);
            }
            DriftWindow w;
            w.phase = phase;
            w.bundle =
                BundleHandle::adopt(Bundle::create(env.hm, 3, rows));
            uint64_t *row = w.bundle->appendBlockRaw(rows);
            for (uint32_t r = 0; r < rows; ++r, row += 3) {
                row[0] = keys[r];
                row[1] = rng.nextBounded(1000);
                row[2] = 1000 + r;
            }
            w.kpa = kpa::extract(env.ctx(), *w.bundle, 0, env.hbm);
            w.pristine.assign(w.kpa->entries(),
                              w.kpa->entries() + rows);
            ws.push_back(std::move(w));
        }
    }
    return ws;
}

/** @param mode 0 = fixed sort-merge, 1 = fixed hash-scatter,
 *              2 = adaptive (VariantPolicy per window). */
DriftRun
runDriftOnce(Env &env, std::vector<DriftWindow> &ws, uint32_t rows,
             int mode)
{
    DriftRun out;
    runtime::AdaptiveConfig acfg;
    acfg.enabled = true;
    runtime::VariantPolicy policy(acfg);
    const uint64_t bytes = uint64_t{rows} * sizeof(KpEntry);
    for (DriftWindow &w : ws) {
        // Restore arrival order outside the timed region — the reset
        // is identical work for every mode.
        std::memcpy(w.kpa->entries(), w.pristine.data(), bytes);
        w.kpa->setSorted(false);
        const double t0 = nowNs();
        bool hash = mode == 1;
        if (mode == 2) {
            // The sampling + decision are adaptive-only costs, so
            // they stay inside the timed region.
            policy.observeRun(sampleRunStats(w.kpa->entries(), rows));
            const runtime::GroupDecision d = policy.decideWindow();
            hash = d.variant == runtime::GroupVariant::kHashScatter;
            out.decisions.push_back(static_cast<uint8_t>(d.variant));
        }
        if (hash)
            kpa::groupSortKpa(env.ctx(), *w.kpa);
        else
            kpa::sortKpa(env.ctx(), *w.kpa);
        // Consume the grouped output the way an aggregation would;
        // both variants must expose identical key runs.
        kpa::forEachKeyRun(*w.kpa,
                           [&](uint64_t, const KpEntry *, size_t) {
                               ++out.groups;
                           });
        const double t1 = nowNs();
        out.phase_ns[w.phase] += t1 - t0;
    }
    out.total_ns =
        out.phase_ns[0] + out.phase_ns[1] + out.phase_ns[2];
    out.switches = policy.switches();
    return out;
}

/** @return true when every drift shape check held. */
bool
runDriftBench(Env &env, bench::JsonReport &report, bool smoke)
{
    const uint32_t rows = smoke ? 8192u : 32768u;
    const uint32_t per_phase = smoke ? 10u : 40u;
    const int reps = smoke ? 3 : 8;
    std::printf("\ndrift: 3 phases x %u windows x %u rows, %d reps\n",
                per_phase, rows, reps);

    std::vector<DriftWindow> ws = makeDriftWindows(env, rows, per_phase);
    DriftRun best[3];
    std::vector<uint8_t> first_decisions;
    bool decisions_stable = true;
    for (int rep = 0; rep < reps; ++rep) {
        // Interleave the three modes rep by rep so ambient load drift
        // hits all of them instead of biasing whichever ran last.
        for (int mode = 0; mode < 3; ++mode) {
            DriftRun r = runDriftOnce(env, ws, rows, mode);
            if (mode == 2) {
                if (rep == 0)
                    first_decisions = r.decisions;
                else if (r.decisions != first_decisions)
                    decisions_stable = false;
            }
            if (rep == 0 || r.total_ns < best[mode].total_ns)
                best[mode] = std::move(r);
        }
    }

    // Per-phase adaptive decision counts.
    uint64_t hash_in_phase[3] = {0, 0, 0};
    for (size_t w = 0; w < first_decisions.size(); ++w)
        if (first_decisions[w]
            == static_cast<uint8_t>(
                runtime::GroupVariant::kHashScatter))
            ++hash_in_phase[w / per_phase];
    const uint64_t sort_in_sorted = per_phase - hash_in_phase[1];
    const uint64_t sort_in_unique = per_phase - hash_in_phase[2];

    Table t("drift — adaptive vs fixed variants (best total ms)");
    t.header({"config", "total", "phase dup", "phase sorted",
              "phase unique"});
    const char *names[3] = {"fixed sort-merge", "fixed hash-scatter",
                            "adaptive"};
    for (int m = 0; m < 3; ++m)
        t.row({names[m], Table::num(best[m].total_ns / 1e6, 2),
               Table::num(best[m].phase_ns[0] / 1e6, 2),
               Table::num(best[m].phase_ns[1] / 1e6, 2),
               Table::num(best[m].phase_ns[2] / 1e6, 2)});
    t.print();
    std::printf("drift: adaptive switches=%llu, hash windows per "
                "phase = %llu/%llu/%llu of %u\n",
                (unsigned long long)best[2].switches,
                (unsigned long long)hash_in_phase[0],
                (unsigned long long)hash_in_phase[1],
                (unsigned long long)hash_in_phase[2], per_phase);

    bool ok = true;
    auto check = [&ok](const char *what, bool c) {
        bench::shapeCheck(what, c);
        ok = ok && c;
    };
    check("drift: adaptive switched variants (2..6 switches)",
          best[2].switches >= 2 && best[2].switches <= 6);
    check("drift: hash-scatter adopted in dup-heavy phase",
          hash_in_phase[0] >= per_phase / 4);
    check("drift: sort-merge majority in sorted phase",
          sort_in_sorted > per_phase / 2);
    check("drift: sort-merge majority in unique-key phase",
          sort_in_unique >= per_phase * 9 / 10);
    check("drift: decisions bit-identical across reps",
          decisions_stable);
    check("drift: all variants agree on group counts",
          best[0].groups == best[1].groups
              && best[0].groups == best[2].groups);
    if (!smoke) {
        // Wall-clock comparisons are meaningless at smoke sizes
        // (shape-guard mode); the full run must show the adaptive
        // runner beating both fixed variants end-to-end.
        check("drift: adaptive beats fixed sort-merge end-to-end",
              best[2].total_ns < best[0].total_ns);
        check("drift: adaptive beats fixed hash-scatter end-to-end",
              best[2].total_ns < best[1].total_ns);
    }

    const uint64_t items = uint64_t{3} * per_phase * rows;
    report.add(result("drift/fixed_sort_merge", best[0].total_ns,
                      items, reps));
    report.add(result("drift/fixed_hash_scatter", best[1].total_ns,
                      items, reps));
    report.add(result("drift/adaptive", best[2].total_ns, items, reps,
                      std::min(best[0].total_ns, best[1].total_ns)));

    struct Snapshot
    {
        uint32_t rows, per_phase;
        uint64_t switches;
        uint64_t hash_in_phase[3];
        double totals[3];
        double phase_ns[3][3];
        uint64_t sort_windows, hash_windows;
    } snap;
    snap.rows = rows;
    snap.per_phase = per_phase;
    snap.switches = best[2].switches;
    uint64_t hash_total = 0;
    for (int p = 0; p < 3; ++p) {
        snap.hash_in_phase[p] = hash_in_phase[p];
        hash_total += hash_in_phase[p];
    }
    for (int m = 0; m < 3; ++m) {
        snap.totals[m] = best[m].total_ns;
        for (int p = 0; p < 3; ++p)
            snap.phase_ns[m][p] = best[m].phase_ns[p];
    }
    snap.hash_windows = hash_total;
    snap.sort_windows = uint64_t{3} * per_phase - hash_total;
    report.setExtra("drift", [snap](obs::JsonWriter &w) {
        w.beginObject();
        w.key("rows_per_window").value(snap.rows);
        w.key("windows_per_phase").value(snap.per_phase);
        w.key("phases").beginArray();
        w.value("dup-step-cardinality-ramp");
        w.value("sorted");
        w.value("unique-shuffled");
        w.endArray();
        w.key("decisions").beginObject();
        w.key("sort_merge").value(snap.sort_windows);
        w.key("hash_scatter").value(snap.hash_windows);
        w.key("switches").value(snap.switches);
        w.key("hash_scatter_per_phase").beginArray();
        for (int p = 0; p < 3; ++p)
            w.value(snap.hash_in_phase[p]);
        w.endArray();
        w.endObject();
        const char *cfgs[3] = {"fixed_sort_merge",
                               "fixed_hash_scatter", "adaptive"};
        w.key("totals_ns").beginObject();
        for (int m = 0; m < 3; ++m)
            w.key(cfgs[m]).value(snap.totals[m], 0);
        w.endObject();
        w.key("phase_ns").beginObject();
        for (int m = 0; m < 3; ++m) {
            w.key(cfgs[m]).beginArray();
            for (int p = 0; p < 3; ++p)
                w.value(snap.phase_ns[m][p], 0);
            w.endArray();
        }
        w.endObject();
        w.endObject();
    });
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool drift = false;
    bool drift_only = false;
    std::string out_path = "BENCH_kernels.json";
    unsigned threads_flag = 0; // 0 = sweep {1, 4, hardware}
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[a], "--drift") == 0)
            drift = true;
        else if (std::strcmp(argv[a], "--drift-only") == 0)
            drift = drift_only = true;
        else if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc)
            out_path = argv[++a];
        else if (std::strcmp(argv[a], "--threads") == 0 && a + 1 < argc)
            threads_flag = static_cast<unsigned>(
                std::max(1, std::atoi(argv[++a])));
        else {
            std::fprintf(stderr,
                         "usage: perf_report [--smoke] "
                         "[--drift|--drift-only] [--out <path>] "
                         "[--threads <n>]\n");
            return 2;
        }
    }

    const uint32_t n = smoke ? 1u << 16 : 1u << 20;
    const int reps = smoke ? 3 : 9;
    const uint64_t ranges = 64;
    std::printf("perf_report: %u entries per kernel, %d reps (%s)\n", n,
                reps, smoke ? "smoke" : "full");

    bench::JsonReport report;
    Env env;

    if (drift_only) {
        const bool drift_ok = runDriftBench(env, report, smoke);
        if (!report.writeTo(out_path)) {
            std::fprintf(stderr, "perf_report: cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        std::printf("\nperf_report: wrote %s (%zu benchmarks)\n",
                    out_path.c_str(), report.results().size());
        return drift_ok ? 0 : 1;
    }

    // --- partitionByRange, 64 ranges, unsorted input ----------------
    {
        // Acceptance anchor: >= 5x at 64 ranges / 1M entries.
        BundleHandle b = env.makeBundle(n, ranges * 100, 1);
        KpaPtr k = kpa::extract(env.ctx(), *b, 0, env.hbm);
        const uint64_t width = 100; // keys span 64 ranges of width 100
        const TimedPair t = bestNsVs(
            reps,
            [&] {
                auto parts = kpa::partitionByRange(env.ctx(), *k, width,
                                                   env.hbm);
            },
            [&] {
                auto parts = naivePartitionByRange(env.ctx(), *k, width,
                                                   env.hbm);
            });
        report.add(result("partitionByRange/64r/unsorted", t, n, reps));
    }

    // --- partitionByRange, 64 ranges, sorted fast path --------------
    {
        BundleHandle b = env.makeBundle(n, ranges * 100, 2);
        KpaPtr k = kpa::extract(env.ctx(), *b, 0, env.hbm);
        kpa::sortKpa(env.ctx(), *k);
        const TimedPair t = bestNsVs(
            reps,
            [&] {
                auto parts = kpa::partitionByRange(env.ctx(), *k, 100,
                                                   env.hbm);
            },
            [&] {
                auto parts = naivePartitionByRange(env.ctx(), *k, 100,
                                                   env.hbm);
            });
        report.add(result("partitionByRange/64r/sorted", t, n, reps));
    }

    // --- join, ~1:1 matches -----------------------------------------
    {
        BundleHandle lb = env.makeBundle(n, n, 3);
        BundleHandle rb = env.makeBundle(n, n, 4);
        KpaPtr lk = kpa::extract(env.ctx(), *lb, 0, env.hbm);
        KpaPtr rk = kpa::extract(env.ctx(), *rb, 0, env.hbm);
        kpa::sortKpa(env.ctx(), *lk);
        kpa::sortKpa(env.ctx(), *rk);
        const std::vector<columnar::ColumnId> cols{1};
        const TimedPair t = bestNsVs(
            reps,
            [&] {
                BundleHandle out =
                    kpa::join(env.ctx(), *lk, *rk, cols, cols);
            },
            [&] {
                BundleHandle out =
                    naiveJoin(env.ctx(), *lk, *rk, cols, cols);
            });
        report.add(result("join/1to1", t, n, reps));
    }

    // --- join, wide payloads with duplicate keys --------------------
    // Exercises the rewrite's whole-row memcpy of contiguous column
    // runs and the invariant-prefix replication across each duplicate
    // cross product (2x2 matches per key, 6 payload columns a side).
    {
        const uint32_t rows = n / 2;
        Rng rng(11);
        BundleHandle lb =
            BundleHandle::adopt(Bundle::create(env.hm, 8, rows));
        BundleHandle rb =
            BundleHandle::adopt(Bundle::create(env.hm, 8, rows));
        for (Bundle *b : {lb.get(), rb.get()}) {
            uint64_t *row = b->appendBlockRaw(rows);
            for (uint32_t r = 0; r < rows; ++r, row += 8) {
                row[0] = r / 2; // every key twice per side
                for (uint32_t c = 1; c < 8; ++c)
                    row[c] = rng.next();
            }
        }
        KpaPtr lk = kpa::extract(env.ctx(), *lb, 0, env.hbm);
        KpaPtr rk = kpa::extract(env.ctx(), *rb, 0, env.hbm);
        kpa::sortKpa(env.ctx(), *lk);
        kpa::sortKpa(env.ctx(), *rk);
        const std::vector<columnar::ColumnId> cols{1, 2, 3, 4, 5, 6};
        const uint64_t matches = uint64_t{rows / 2} * 4;
        const TimedPair t = bestNsVs(
            reps,
            [&] {
                BundleHandle out =
                    kpa::join(env.ctx(), *lk, *rk, cols, cols);
            },
            [&] {
                BundleHandle out =
                    naiveJoin(env.ctx(), *lk, *rk, cols, cols);
            });
        report.add(result("join/wide-dup", t, matches, reps));
    }

    // --- sortRun, both merge-pass parities --------------------------
    // With an even level count the old code already finished in
    // `data`; the copy-back it paid at odd parity is what the
    // precomputed ping-pong start eliminates. Bench both.
    for (const bool odd : {false, true}) {
        const size_t sn = odd ? size_t{n} + n / 2 : size_t{n};
        Rng rng(5);
        std::vector<KpEntry> input(sn);
        for (size_t i = 0; i < sn; ++i)
            input[i] = KpEntry{rng.next(), nullptr};
        std::vector<KpEntry> work(sn), scratch(sn);
        const uint64_t bytes = sn * sizeof(KpEntry);
        const TimedPair t = bestNsVs(
            reps,
            [&] {
                std::memcpy(work.data(), input.data(), bytes);
                algo::sortRun(work.data(), sn, scratch.data());
            },
            [&] {
                std::memcpy(work.data(), input.data(), bytes);
                naiveSortRun(work.data(), sn, scratch.data());
            });
        report.add(result(odd ? "sortRun/odd-levels"
                              : "sortRun/even-levels",
                          t, sn, reps));
    }

    // --- sortRun, already-sorted input (adaptive fast path) ---------
    // Streaming pipelines sort timestamp-extracted KPAs that arrive
    // in order; the rewritten kernel detects this in one scan where
    // the old one re-ran every merge pass.
    {
        Rng rng(10);
        std::vector<KpEntry> input(n);
        for (uint32_t i = 0; i < n; ++i)
            input[i] = KpEntry{rng.next(), nullptr};
        std::vector<KpEntry> work(n), scratch(n);
        std::memcpy(work.data(), input.data(),
                    uint64_t{n} * sizeof(KpEntry));
        algo::sortRun(work.data(), n, scratch.data());
        std::memcpy(input.data(), work.data(),
                    uint64_t{n} * sizeof(KpEntry)); // sorted input
        const uint64_t bytes = uint64_t{n} * sizeof(KpEntry);
        const TimedPair t = bestNsVs(
            reps,
            [&] {
                std::memcpy(work.data(), input.data(), bytes);
                algo::sortRun(work.data(), n, scratch.data());
            },
            [&] {
                std::memcpy(work.data(), input.data(), bytes);
                naiveSortRun(work.data(), n, scratch.data());
            });
        report.add(result("sortRun/presorted", t, n, reps));
    }

    // --- sortRun, parallel thread scaling ---------------------------
    // The same 1 M-random-entry sort as above, sharded across a host
    // WorkerPool: parallel run formation, per-pair merge dispatch,
    // merge-path-sliced final rounds. Output is bit-identical to the
    // serial kernel at every thread count; only the wall clock moves.
    {
        std::vector<unsigned> sweep;
        if (threads_flag > 0) {
            sweep.push_back(threads_flag);
        } else {
            const unsigned hw = std::max(
                1u, std::thread::hardware_concurrency());
            for (unsigned t : {1u, 4u, hw})
                if (std::find(sweep.begin(), sweep.end(), t)
                    == sweep.end())
                    sweep.push_back(t);
        }
        Rng rng(5);
        std::vector<KpEntry> input(n);
        for (uint32_t i = 0; i < n; ++i)
            input[i] = KpEntry{rng.next(), nullptr};
        std::vector<KpEntry> work(n), scratch(n);
        const uint64_t bytes = uint64_t{n} * sizeof(KpEntry);
        for (unsigned t : sweep) {
            WorkerPool pool(t);
            const TimedPair tp = bestNsVs(
                reps,
                [&] {
                    std::memcpy(work.data(), input.data(), bytes);
                    algo::sortRunParallel(work.data(), n,
                                          scratch.data(), pool);
                },
                [&] {
                    std::memcpy(work.data(), input.data(), bytes);
                    naiveSortRun(work.data(), n, scratch.data());
                });
            char name[64];
            std::snprintf(name, sizeof(name), "sortRun/parallel/t%u",
                          t);
            BenchResult r = result(name, tp, n, reps);
            r.threads = static_cast<int>(t);
            report.add(r);
        }
    }

    // --- hash probe, wide-dup batched group prefetch ----------------
    // The probe side of the wide-dup join as a hash workload: n
    // lookups, every probed key present and probed twice. findBatch
    // keeps kProbeBatch chains' head misses in flight (Cimple-style
    // software pipelining); the reference is the scalar
    // one-chain-at-a-time loop. The full-size table is sized past
    // any plausible LLC (a server-class L3 can hide a merely
    // cache-sized table entirely, leaving no latency to overlap and
    // making the measurement meaningless for the DRAM-bound regime
    // the batching exists for).
    {
        const uint32_t distinct = smoke ? n / 2 : 16u << 20;
        algo::HashTable<uint64_t> table(distinct);
        for (uint32_t k = 0; k < distinct; ++k)
            table.findOrInsert(uint64_t{k} * 2 + 1) = k;
        const std::vector<uint64_t> probes = makeWideDupProbes(n, 21);
        // Both sides fulfil the same contract — materialize every
        // probe's result pointer — so the measurement isolates the
        // probing itself, not loop-fusion differences.
        std::vector<uint64_t *> out(n);
        uint64_t batched_hits = 0, scalar_hits = 0;
        auto count_hits = [&out, n] {
            uint64_t hits = 0;
            for (uint32_t i = 0; i < n; ++i)
                hits += out[i] != nullptr;
            return hits;
        };
        const TimedPair tp = bestNsVs(
            reps,
            [&] {
                table.findBatch(probes.data(), n, out.data());
                batched_hits = count_hits();
            },
            [&] {
                bench::naiveHashProbeAll(table, probes.data(), n,
                                         out.data());
                scalar_hits = count_hits();
            });
        if (batched_hits != scalar_hits) {
            std::fprintf(stderr,
                         "probe hit-count mismatch: %llu vs %llu\n",
                         (unsigned long long)batched_hits,
                         (unsigned long long)scalar_hits);
            return 1;
        }
        report.add(result("probe/wide-dup", tp, n, reps));
    }

    // --- hash group (findOrInsert), batched group prefetch ----------
    // The aggregation hot path of the record-at-a-time baseline:
    // upsert-increment each probe key. Batched resolution stays in
    // key order (insert visibility), so only the head-of-chain
    // misses overlap — smaller win than pure probing, but on the
    // critical path of every hash GroupBy window.
    {
        const uint32_t distinct = n / 2;
        algo::HashTable<uint64_t> table(distinct);
        for (uint32_t k = 0; k < distinct; ++k)
            table.findOrInsert(uint64_t{k} * 2 + 1) = 0;
        const std::vector<uint64_t> probes = makeWideDupProbes(n, 22);
        const TimedPair tp = bestNsVs(
            reps,
            [&] {
                table.findOrInsertBatch(
                    probes.data(), n,
                    [](uint32_t, uint64_t &count) { ++count; });
            },
            [&] {
                bench::naiveHashGroupAll(table, probes.data(), n);
            });
        report.add(result("group/wide-dup", tp, n, reps));
    }

    // --- extract ----------------------------------------------------
    {
        BundleHandle b = env.makeBundle(n, 1000, 6);
        const TimedPair t = bestNsVs(
            reps,
            [&] { KpaPtr k = kpa::extract(env.ctx(), *b, 0, env.hbm); },
            [&] { KpaPtr k = naiveExtract(env.ctx(), *b, 0, env.hbm); });
        report.add(result("extract", t, n, reps));
    }

    // --- materialize (sorted KPA => random row gathers) -------------
    {
        BundleHandle b = env.makeBundle(n, n / 4 + 1, 7);
        KpaPtr k = kpa::extract(env.ctx(), *b, 0, env.hbm);
        kpa::sortKpa(env.ctx(), *k);
        const TimedPair t = bestNsVs(
            reps,
            [&] { BundleHandle out = kpa::materialize(env.ctx(), *k); },
            [&] { BundleHandle out = naiveMaterialize(env.ctx(), *k); });
        report.add(result("materialize/sorted", t, n, reps));
    }

    // --- keySwap (sorted KPA => random row reads) -------------------
    {
        BundleHandle b = env.makeBundle(n, n / 4 + 1, 8);
        KpaPtr k = kpa::extract(env.ctx(), *b, 0, env.hbm);
        kpa::sortKpa(env.ctx(), *k);
        uint32_t col = 1;
        const double ns = bestNs(reps, [&] {
            kpa::keySwap(env.ctx(), *k, col);
            col = (col == 1) ? 2 : 1; // alternate so no call no-ops
        });
        report.add(result("keySwap/sorted", ns, n, reps));
    }

    // --- end-to-end figure workload: GroupBy over windows -----------
    {
        // Fig-2-style grouping pipeline on KPAs: extract the ts
        // column, range-partition into windows, swap to the group key,
        // sort, reduce each key run, materialize the last window.
        BundleHandle b = env.makeBundle(n, 1000, 9);
        const uint64_t window = (uint64_t{n} + 7) / 8; // ~8 windows
        uint64_t groups = 0;
        const double ns = bestNs(reps, [&] {
            KpaPtr k = kpa::extract(env.ctx(), *b, 2, env.hbm);
            auto windows = kpa::partitionByRange(env.ctx(), *k, window,
                                                 env.hbm);
            groups = 0;
            for (auto &w : windows) {
                kpa::keySwap(env.ctx(), *w.part, 0);
                kpa::sortKpa(env.ctx(), *w.part);
                kpa::forEachKeyRun(
                    *w.part,
                    [&](uint64_t, const KpEntry *, size_t) { ++groups; });
            }
            BundleHandle out =
                kpa::materialize(env.ctx(), *windows.back().part);
        });
        std::printf("e2e groupby: %llu groups over %u records\n",
                    static_cast<unsigned long long>(groups), n);
        report.add(result("e2e/groupby_window", ns, n, reps));
    }

    // --- drifting-distribution adaptive bench (--drift) -------------
    bool drift_ok = true;
    if (drift)
        drift_ok = runDriftBench(env, report, smoke);

    // --- report -----------------------------------------------------
    Table t("perf_report — host wall clock");
    t.header({"benchmark", "thr", "ns/op", "Mitems/s",
              "baseline ns/op", "speedup"});
    for (const BenchResult &r : report.results()) {
        t.row({r.name, Table::num(static_cast<uint64_t>(r.threads)),
               Table::num(r.ns_per_op, 0),
               Table::num(r.items_per_sec / 1e6, 1),
               r.baseline_ns_per_op > 0
                   ? Table::num(r.baseline_ns_per_op, 0)
                   : "-",
               r.speedup > 0 ? Table::num(r.speedup, 2) + "x" : "-"});
    }
    t.print();

    if (!report.writeTo(out_path)) {
        std::fprintf(stderr, "perf_report: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("\nperf_report: wrote %s (%zu benchmarks)\n",
                out_path.c_str(), report.results().size());
    return drift_ok ? 0 : 1;
}
