/**
 * @file
 * Serving-layer benchmark: tenant-count sweep on one engine, plus a
 * shard-count sweep on the sharded fleet.
 *
 * For each fleet size N the load driver builds a deterministic
 * hot/cold tenant mix (25% hot at 4x weight, Poisson bundle
 * arrivals, sessions arriving over a 100 ms span) and the server
 * runs it to drain. Reported per point: aggregate throughput, the
 * pooled p50/p99 watermark latency across every tenant's windows,
 * Jain's fairness index over weight-normalized service, the
 * admission counters, and per-tenant memory-control-plane accounting
 * (peak HBM occupancy, demotion counts). A final overload point runs
 * a scarce-HBM fleet with the pressure director + live admission
 * enabled so the demotion path shows real numbers.
 *
 * The shard sweep scales one large fleet (256 sessions in full mode)
 * across 1..8 engine shards: per point it reports fleet throughput,
 * pooled latency percentiles, fairness, host wall-clock, and a
 * per-shard breakdown (sessions placed, tasks completed, records) —
 * with the accounting identity "each executor completed exactly its
 * residents' tasks" checked as a shape test.
 *
 * The failover sweep runs a 64-session recoverable fleet through a
 * fixed two-crash fault plan at increasing checkpoint cadences
 * (scratch-restart first) and reports the recovery economics per
 * point — checkpoints cut, copy/reuse bytes, records replayed,
 * downtime — with the exactly-once acceptance checked as shape
 * tests: no session lost, records conserved across the replay, and
 * every point's per-window output bit-identical to the fault-free
 * baseline. Written to BENCH_serve.json (schema sbhbm-serve-v5) for
 * the CI artifact.
 *
 * Schema v5 adds SLA breach attribution to the overload point: each
 * tenant's watermark latency decomposed into recovery-replay, ingest-
 * wait, memory-stall, sched-queue and compute components (summing
 * exactly to the measured latency), the dominant cause of its
 * violating windows, and a pooled latency histogram. With --trace the
 * overload point also records the unified telemetry plane and writes
 * a Chrome trace_event JSON timeline.
 *
 * Usage: serve_report [--smoke] [--out <path>] [--trace <path>]
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "serve/load_driver.h"
#include "serve/server.h"

using namespace sbhbm;
using serve::Admission;
using serve::TenantReport;

namespace {

/** Core slots every sweep point's engine (shard) uses. */
constexpr unsigned kCores = 16;

struct TenantMem
{
    uint32_t id = 0;
    uint64_t hbm_peak_bytes = 0;
    uint64_t demoted_kpas = 0;
    uint64_t demoted_bytes = 0;
    uint64_t sla_demotions = 0;
};

/** The per-tenant memory-control-plane slice of a TenantReport. */
TenantMem
toTenantMem(const TenantReport &r)
{
    TenantMem tm;
    tm.id = r.spec.id;
    tm.hbm_peak_bytes = r.hbm_peak_bytes;
    tm.demoted_kpas = r.demoted_kpas;
    tm.demoted_bytes = r.demoted_bytes;
    tm.sla_demotions = r.sla_demotions;
    return tm;
}

/** One tenant's SLA breach attribution (the v5 addition). */
struct TenantAttr
{
    uint32_t id = 0;
    uint64_t windows = 0;
    uint64_t sla_violations = 0;
    double total_latency_ns = 0;
    double comp_ns[serve::kStallCauses] = {};
    double breach_ns[serve::kStallCauses] = {};
    const char *dominant = "compute";
};

/** Pooled latency histogram (SampleSet::histogram buckets). */
struct LatencyHist
{
    std::vector<double> bounds_ms;
    std::vector<uint64_t> counts; //!< bounds + one overflow slot
};

struct Point
{
    uint32_t tenants = 0;
    double aggregate_mrps = 0;
    double p50_s = 0;
    double p99_s = 0;
    double fairness = 0;
    uint64_t windows = 0;
    uint64_t sla_violations = 0;
    uint64_t admitted = 0;
    uint64_t queued = 0;
    uint64_t rejected = 0;
    uint64_t demoted_kpas = 0;
    std::vector<TenantMem> tenant_mem;

    /** Filled for the overload point only (empty elsewhere). */
    std::vector<TenantAttr> attribution;
    LatencyHist latency_hist;
};

Point
runPoint(uint32_t tenants, bool smoke)
{
    serve::FleetConfig fleet;
    fleet.tenants = tenants;
    fleet.seed = 42;
    fleet.hot_records = smoke ? 150'000 : 600'000;
    fleet.cold_records = smoke ? 50'000 : 150'000;
    fleet.bundle_records = 5'000;
    fleet.hot_rate = 50e6;
    fleet.cold_rate = 10e6;
    fleet.arrival_span = 100 * kNsPerMs;
    fleet.max_inflight_bundles = 24;

    serve::ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.cores = kCores;
    cfg.engine.max_inflight_bundles = 1024;
    cfg.window_ns = 50 * kNsPerMs;

    serve::Server server(cfg);
    server.submitFleet(serve::makeFleet(fleet));
    server.run();

    Point p;
    p.tenants = tenants;
    p.aggregate_mrps = server.aggregateMrps();
    p.fairness = server.fairnessIndex();
    SampleSet pooled;
    for (const TenantReport &r : server.reports()) {
        if (r.admission != Admission::kAdmitted)
            continue;
        ++p.admitted;
        p.queued += r.was_queued ? 1 : 0;
        p.windows += r.windows;
        p.sla_violations += r.sla_violations;
    }
    // Pool every tenant's raw per-window latencies: fleet-level
    // percentiles cannot be recovered from per-tenant percentiles.
    for (const TenantReport &r : server.reports()) {
        for (double s : r.latency_samples)
            pooled.add(s);
    }
    p.p50_s = pooled.percentile(50);
    p.p99_s = pooled.percentile(99);
    p.rejected = server.registry().rejected();
    p.demoted_kpas = server.engine().director().demotedKpas();
    for (const TenantReport &r : server.reports())
        p.tenant_mem.push_back(toTenantMem(r));
    return p;
}

/**
 * The control-plane overload point: the canonical scarce-HBM scenario
 * (serve::overloadServeConfig / serve::makeOverloadFleet — the same
 * one examples/multi_tenant demonstrates) with the pressure director,
 * live-pressure admission and SLA demotion all enabled.
 */
Point
runOverloadPoint(bool smoke, obs::Telemetry *tele = nullptr)
{
    serve::ServeConfig cfg =
        serve::overloadServeConfig(kCores, /*control_plane=*/true);
    cfg.telemetry = tele;
    serve::Server server(cfg);
    const uint64_t records = smoke ? 150'000 : 600'000;
    server.submitFleet(serve::makeOverloadFleet(records));
    server.run();

    Point p;
    p.tenants = 4;
    p.aggregate_mrps = server.aggregateMrps();
    p.fairness = server.fairnessIndex();
    p.demoted_kpas = server.engine().director().demotedKpas();
    SampleSet pooled;
    for (const TenantReport &r : server.reports()) {
        ++p.admitted;
        p.windows += r.windows;
        p.sla_violations += r.sla_violations;
        for (double s : r.latency_samples)
            pooled.add(s);
        p.tenant_mem.push_back(toTenantMem(r));

        TenantAttr ta;
        ta.id = r.spec.id;
        ta.windows = r.windows;
        ta.sla_violations = r.sla_violations;
        for (double s : r.latency_samples)
            ta.total_latency_ns += s * 1e9;
        for (uint32_t c = 0; c < serve::kStallCauses; ++c) {
            ta.comp_ns[c] = r.attribution_ns[c];
            ta.breach_ns[c] = r.breach_attribution_ns[c];
        }
        ta.dominant = serve::stallCauseName(r.dominant_cause);
        p.attribution.push_back(ta);
    }
    p.p50_s = pooled.percentile(50);
    p.p99_s = pooled.percentile(99);
    // The pooled latency distribution, bucketed (ms upper bounds).
    p.latency_hist.bounds_ms = {10, 50, 100, 500, 1000};
    std::vector<double> bounds_s;
    for (double b : p.latency_hist.bounds_ms)
        bounds_s.push_back(b / 1e3);
    p.latency_hist.counts = pooled.histogram(bounds_s);
    return p;
}

// -------------------------------------------------------------------
// Shard sweep
// -------------------------------------------------------------------

struct ShardRow
{
    uint32_t shard = 0;
    uint32_t tenants = 0;
    uint64_t tasks = 0;
    uint64_t records = 0;
};

struct ShardPoint
{
    uint32_t shards = 0;
    uint32_t tenants = 0;
    double aggregate_mrps = 0;
    double p50_s = 0;
    double p99_s = 0;
    double fairness = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t records = 0;
    double wall_ms = 0; //!< host wall-clock of run(), milliseconds
    bool accounting_ok = true;
    std::vector<ShardRow> rows;
};

/**
 * One shard-sweep point: the same N-session hot/cold fleet (short
 * sessions — the point is placement and accounting at scale, not
 * long drains) served by @p shards engine shards.
 */
ShardPoint
runShardPoint(uint32_t tenants, uint32_t shards, bool smoke)
{
    serve::FleetConfig fleet;
    fleet.tenants = tenants;
    fleet.seed = 42;
    // Hot keeps exactly 4x the cold records at 4x the weight, so the
    // weight-normalized service shares are flat and Jain ~ 1.
    fleet.hot_records = smoke ? 8'000 : 40'000;
    fleet.cold_records = smoke ? 2'000 : 10'000;
    fleet.bundle_records = 2'000;
    fleet.hot_rate = 50e6;
    fleet.cold_rate = 10e6;
    fleet.hot_hbm_reserve = 8_MiB;
    fleet.cold_hbm_reserve = 2_MiB;
    // The whole fleet arrives at once: placement sees N concurrent
    // load vectors (staggered arrivals would drain between offers and
    // pile everything on shard 0).
    fleet.arrival_span = 0;
    fleet.max_inflight_bundles = 8;

    serve::ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.cores = kCores;
    cfg.engine.max_inflight_bundles = 1024;
    cfg.window_ns = 20 * kNsPerMs;
    cfg.shards = shards;
    cfg.admission.max_active = tenants;
    cfg.admission.max_queued = tenants;

    serve::Server server(cfg);
    server.submitFleet(serve::makeFleet(fleet));
    const auto t0 = std::chrono::steady_clock::now();
    server.run();
    const auto t1 = std::chrono::steady_clock::now();

    ShardPoint p;
    p.shards = shards;
    p.tenants = tenants;
    p.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.aggregate_mrps = server.aggregateMrps();
    p.fairness = server.fairnessIndex();
    p.rejected = server.registry().rejected();
    p.rows.resize(shards);
    for (uint32_t s = 0; s < shards; ++s)
        p.rows[s].shard = s;

    SampleSet pooled;
    for (const TenantReport &r : server.reports()) {
        if (r.admission != Admission::kAdmitted)
            continue;
        ++p.admitted;
        p.records += r.records;
        ShardRow &row = p.rows[r.shard];
        ++row.tenants;
        row.tasks += r.tasks;
        row.records += r.records;
        for (double s : r.latency_samples)
            pooled.add(s);
    }
    p.p50_s = pooled.percentile(50);
    p.p99_s = pooled.percentile(99);
    // The accounting identity: with stealing and migration off,
    // every shard's executor completed exactly its residents' tasks.
    for (uint32_t s = 0; s < shards; ++s) {
        if (server.engine(s).exec().completedTasks() != p.rows[s].tasks)
            p.accounting_ok = false;
    }
    return p;
}

// -------------------------------------------------------------------
// Failover sweep
// -------------------------------------------------------------------

struct FailoverPoint
{
    SimTime checkpoint_period = 0;
    double aggregate_mrps = 0;
    uint64_t crashes = 0;
    uint64_t recoveries = 0;
    uint64_t lost = 0;
    uint64_t checkpoints = 0;
    uint64_t copied_bytes = 0;
    uint64_t reused_bytes = 0;
    uint64_t records_replayed = 0;
    uint64_t suppressed_records = 0;
    double mean_downtime_ms = 0;
    bool output_identical = true; //!< per-window output == baseline
    bool conserved = true;        //!< ingest + shed == offered + replay
};

/** The recoverable fleet every failover point serves: the shard-sweep
 *  mix under logical event time (replay needs it). */
std::vector<serve::TenantSpec>
failoverFleet(bool smoke)
{
    serve::FleetConfig fleet;
    fleet.tenants = 64;
    fleet.seed = 42;
    fleet.hot_records = smoke ? 20'000 : 40'000;
    fleet.cold_records = smoke ? 5'000 : 10'000;
    fleet.bundle_records = 1'000;
    fleet.hot_rate = 5e6;
    fleet.cold_rate = 1e6;
    fleet.hot_hbm_reserve = 8_MiB;
    fleet.cold_hbm_reserve = 2_MiB;
    fleet.arrival_span = 0;
    fleet.max_inflight_bundles = 8;
    std::vector<serve::TenantSpec> specs = serve::makeFleet(fleet);
    for (serve::TenantSpec &t : specs)
        t.logical_time = true;
    return specs;
}

serve::ServeConfig
failoverConfig(SimTime checkpoint_period)
{
    serve::ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.cores = kCores;
    cfg.engine.max_inflight_bundles = 1024;
    cfg.window_ns = kNsPerMs;
    cfg.shards = 4;
    cfg.fault.enabled = true;
    cfg.fault.checkpoint_period = checkpoint_period;
    return cfg;
}

/**
 * One failover point: the fleet under a fixed two-crash plan (shards
 * 1 and 2 die mid-stream) at the given checkpoint cadence, compared
 * window for window against the fault-free @p baseline reports.
 */
FailoverPoint
runFailoverPoint(SimTime checkpoint_period, bool smoke,
                 const std::vector<TenantReport> &baseline)
{
    serve::ServeConfig cfg = failoverConfig(checkpoint_period);
    const SimTime span = smoke ? 4 * kNsPerMs : 8 * kNsPerMs;
    cfg.fault.plan.crash(span * 2 / 5, 1).crash(span * 7 / 10, 2);
    serve::Server server(cfg);
    server.submitFleet(failoverFleet(smoke));
    server.run();

    FailoverPoint p;
    p.checkpoint_period = checkpoint_period;
    p.aggregate_mrps = server.aggregateMrps();
    uint64_t downtime_ns = 0;
    const auto &reports = server.reports();
    for (size_t i = 0; i < reports.size(); ++i) {
        const TenantReport &r = reports[i];
        p.crashes += r.crashes;
        p.recoveries += r.recoveries;
        p.lost += r.lost ? 1 : 0;
        p.checkpoints += r.checkpoints;
        p.copied_bytes += r.checkpoint_copied_bytes;
        p.reused_bytes += r.checkpoint_reused_bytes;
        p.records_replayed += r.records_replayed;
        p.suppressed_records += r.suppressed_records;
        downtime_ns += r.downtime_ns;
        if (!r.lost
            && r.records + r.records_shed
                   != r.spec.total_records + r.records_replayed)
            p.conserved = false;
        const TenantReport &b = baseline[i];
        if (r.window_records != b.window_records
            || r.window_checksums != b.window_checksums)
            p.output_identical = false;
    }
    p.mean_downtime_ms =
        p.recoveries > 0
            ? static_cast<double>(downtime_ns) / p.recoveries / 1e6
            : 0.0;
    return p;
}

void
writePoint(obs::JsonWriter &w, const Point &p)
{
    w.beginObject();
    w.key("tenants").value(p.tenants);
    w.key("aggregate_mrps").value(p.aggregate_mrps, 3);
    w.key("p50_s").value(p.p50_s, 6);
    w.key("p99_s").value(p.p99_s, 6);
    w.key("fairness").value(p.fairness, 4);
    w.key("windows").value(p.windows);
    w.key("sla_violations").value(p.sla_violations);
    w.key("admitted").value(p.admitted);
    w.key("queued").value(p.queued);
    w.key("rejected").value(p.rejected);
    w.key("demoted_kpas").value(p.demoted_kpas);
    w.key("tenant_mem").beginArray();
    for (const TenantMem &tm : p.tenant_mem) {
        w.beginObject();
        w.key("id").value(tm.id);
        w.key("hbm_peak_bytes").value(tm.hbm_peak_bytes);
        w.key("demoted_kpas").value(tm.demoted_kpas);
        w.key("demoted_bytes").value(tm.demoted_bytes);
        w.key("sla_demotions").value(tm.sla_demotions);
        w.endObject();
    }
    w.endArray();
    if (!p.attribution.empty()) {
        w.key("attribution").beginArray();
        for (const TenantAttr &ta : p.attribution) {
            w.beginObject();
            w.key("id").value(ta.id);
            w.key("windows").value(ta.windows);
            w.key("sla_violations").value(ta.sla_violations);
            w.key("total_latency_ns").value(ta.total_latency_ns, 1);
            for (uint32_t c = 0; c < serve::kStallCauses; ++c) {
                const auto cause = static_cast<serve::StallCause>(c);
                w.key(std::string(serve::stallCauseName(cause))
                      + "_ns")
                    .value(ta.comp_ns[c], 1);
            }
            for (uint32_t c = 0; c < serve::kStallCauses; ++c) {
                const auto cause = static_cast<serve::StallCause>(c);
                w.key(std::string("breach_")
                      + serve::stallCauseName(cause) + "_ns")
                    .value(ta.breach_ns[c], 1);
            }
            w.key("dominant_cause").value(ta.dominant);
            w.endObject();
        }
        w.endArray();
        w.key("latency_hist").beginObject();
        w.key("bounds_ms").beginArray();
        for (double b : p.latency_hist.bounds_ms)
            w.value(b, 1);
        w.endArray();
        w.key("counts").beginArray();
        for (uint64_t c : p.latency_hist.counts)
            w.value(c);
        w.endArray();
        w.endObject();
    }
    w.endObject();
}

void
writeShardPoint(obs::JsonWriter &w, const ShardPoint &p)
{
    w.beginObject();
    w.key("shards").value(p.shards);
    w.key("tenants").value(p.tenants);
    w.key("aggregate_mrps").value(p.aggregate_mrps, 3);
    w.key("p50_s").value(p.p50_s, 6);
    w.key("p99_s").value(p.p99_s, 6);
    w.key("fairness").value(p.fairness, 4);
    w.key("admitted").value(p.admitted);
    w.key("rejected").value(p.rejected);
    w.key("records").value(p.records);
    w.key("wall_ms").value(p.wall_ms, 1);
    w.key("accounting_ok").value(p.accounting_ok);
    w.key("per_shard").beginArray();
    for (const ShardRow &r : p.rows) {
        w.beginObject();
        w.key("shard").value(r.shard);
        w.key("tenants").value(r.tenants);
        w.key("tasks").value(r.tasks);
        w.key("records").value(r.records);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
writeFailoverPoint(obs::JsonWriter &w, const FailoverPoint &p)
{
    w.beginObject();
    w.key("checkpoint_period_ms")
        .value(static_cast<double>(p.checkpoint_period) / 1e6, 3);
    w.key("aggregate_mrps").value(p.aggregate_mrps, 3);
    w.key("crashes").value(p.crashes);
    w.key("recoveries").value(p.recoveries);
    w.key("lost").value(p.lost);
    w.key("checkpoints").value(p.checkpoints);
    w.key("copied_bytes").value(p.copied_bytes);
    w.key("reused_bytes").value(p.reused_bytes);
    w.key("records_replayed").value(p.records_replayed);
    w.key("suppressed_records").value(p.suppressed_records);
    w.key("mean_downtime_ms").value(p.mean_downtime_ms, 3);
    w.key("output_identical").value(p.output_identical);
    w.key("conserved").value(p.conserved);
    w.endObject();
}

bool
writeJson(const std::string &path, const std::vector<Point> &points,
          const Point &overload,
          const std::vector<ShardPoint> &shard_points,
          const std::vector<FailoverPoint> &failover_points)
{
    obs::JsonWriter w;
    w.beginObject();
    w.key("schema").value("sbhbm-serve-v5");
    w.key("cores").value(kCores);
    w.key("points").beginArray();
    for (const Point &p : points)
        writePoint(w, p);
    w.endArray();
    w.key("overload");
    writePoint(w, overload);
    w.key("shard_sweep").beginArray();
    for (const ShardPoint &p : shard_points)
        writeShardPoint(w, p);
    w.endArray();
    w.key("failover_sweep").beginArray();
    for (const FailoverPoint &p : failover_points)
        writeFailoverPoint(w, p);
    w.endArray();
    w.endObject();
    return w.writeFile(path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_serve.json";
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0
                   && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: serve_report [--smoke] "
                                 "[--out path] [--trace path]\n");
            return 2;
        }
    }

    const std::vector<uint32_t> sweep =
        smoke ? std::vector<uint32_t>{1, 2, 4}
              : std::vector<uint32_t>{1, 2, 4, 8, 16};

    bench::Table table("Serving layer — tenant-count sweep ("
                       + std::to_string(kCores) + " cores)");
    table.header({"tenants", "agg Mrec/s", "p50 ms", "p99 ms",
                  "fairness", "windows", "SLA viol"});

    std::vector<Point> points;
    for (uint32_t n : sweep) {
        Point p = runPoint(n, smoke);
        table.row({bench::Table::num(uint64_t{p.tenants}),
                   bench::Table::num(p.aggregate_mrps, 2),
                   bench::Table::num(p.p50_s * 1e3, 1),
                   bench::Table::num(p.p99_s * 1e3, 1),
                   bench::Table::num(p.fairness, 3),
                   bench::Table::num(p.windows),
                   bench::Table::num(p.sla_violations)});
        points.push_back(p);
    }
    table.print();

    // The memory-control-plane overload point — the one run that gets
    // full telemetry: tracing is optional observability, so it is only
    // installed when the caller asked for a trace file.
    obs::Telemetry tele;
    const Point ovl =
        runOverloadPoint(smoke, trace_path.empty() ? nullptr : &tele);
    uint64_t ovl_peak = 0;
    for (const TenantMem &tm : ovl.tenant_mem)
        ovl_peak = std::max(ovl_peak, tm.hbm_peak_bytes);
    std::printf("\noverload (8 MiB HBM, live admission + demotion): "
                "%llu KPAs demoted, max tenant HBM peak %.1f MB\n",
                static_cast<unsigned long long>(ovl.demoted_kpas),
                static_cast<double>(ovl_peak) / 1e6);

    // The shard sweep: one big fleet over a growing shard count.
    const uint32_t shard_tenants = smoke ? 32 : 256;
    const std::vector<uint32_t> shard_counts =
        smoke ? std::vector<uint32_t>{1, 2, 4}
              : std::vector<uint32_t>{1, 2, 4, 8};

    bench::Table stable("Serving layer — shard sweep ("
                        + std::to_string(shard_tenants) + " tenants, "
                        + std::to_string(kCores) + " cores/shard)");
    stable.header({"shards", "agg Mrec/s", "p50 ms", "p99 ms",
                   "fairness", "admitted", "wall ms"});
    std::vector<ShardPoint> shard_points;
    for (uint32_t s : shard_counts) {
        ShardPoint p = runShardPoint(shard_tenants, s, smoke);
        stable.row({bench::Table::num(uint64_t{p.shards}),
                    bench::Table::num(p.aggregate_mrps, 2),
                    bench::Table::num(p.p50_s * 1e3, 1),
                    bench::Table::num(p.p99_s * 1e3, 1),
                    bench::Table::num(p.fairness, 3),
                    bench::Table::num(p.admitted),
                    bench::Table::num(p.wall_ms, 0)});
        shard_points.push_back(p);
    }
    stable.print();
    std::printf("note: the host is simulated one shard at a time — "
                "shard-sweep wall-clock is a single-thread baseline "
                "to re-measure on a multicore box.\n");

    // The failover sweep: a fault-free baseline run of the same
    // recoverable fleet anchors the exactly-once comparison (output
    // content is a pure function of the records, so one baseline
    // serves every checkpoint cadence).
    std::vector<TenantReport> ft_baseline;
    {
        serve::Server server(failoverConfig(0));
        server.submitFleet(failoverFleet(smoke));
        server.run();
        ft_baseline = server.reports();
    }
    const std::vector<SimTime> ft_periods = {0, kNsPerMs, 2 * kNsPerMs};
    bench::Table ftable("Serving layer — failover sweep (64 tenants, "
                        "4 shards, 2 crashes)");
    ftable.header({"ckpt ms", "agg Mrec/s", "recoveries", "ckpts",
                   "copied MB", "replayed", "downtime ms", "identical"});
    std::vector<FailoverPoint> failover_points;
    for (SimTime period : ft_periods) {
        FailoverPoint p = runFailoverPoint(period, smoke, ft_baseline);
        ftable.row({bench::Table::num(
                        static_cast<double>(period) / 1e6, 1),
                    bench::Table::num(p.aggregate_mrps, 2),
                    bench::Table::num(p.recoveries),
                    bench::Table::num(p.checkpoints),
                    bench::Table::num(
                        static_cast<double>(p.copied_bytes) / 1e6, 1),
                    bench::Table::num(p.records_replayed),
                    bench::Table::num(p.mean_downtime_ms, 2),
                    p.output_identical ? "yes" : "NO"});
        failover_points.push_back(p);
    }
    ftable.print();

    // Shape checks: admission must have run everyone, a lone tenant
    // cannot be unfair to itself, and fairness must hold at scale.
    bench::shapeCheck("all sweep points admitted every tenant", [&] {
        for (const Point &p : points)
            if (p.admitted != p.tenants || p.rejected != 0)
                return false;
        return true;
    }());
    bench::shapeCheck("fairness index >= 0.8 at every point", [&] {
        for (const Point &p : points)
            if (p.fairness < 0.8)
                return false;
        return true;
    }());
    bench::shapeCheck("no demotion in the uncontended sweep", [&] {
        for (const Point &p : points)
            if (p.demoted_kpas != 0)
                return false;
        return true;
    }());
    bench::shapeCheck("overload point demotes cold KPAs",
                      ovl.demoted_kpas > 0);
    bench::shapeCheck("overload point drains every tenant",
                      ovl.admitted == ovl.tenants);
    bench::shapeCheck("per-tenant HBM occupancy accounted", [&] {
        for (const TenantMem &tm : ovl.tenant_mem)
            if (tm.hbm_peak_bytes == 0)
                return false;
        return true;
    }());
    bench::shapeCheck("shard sweep admits and drains the fleet", [&] {
        for (const ShardPoint &p : shard_points)
            if (p.admitted != p.tenants || p.rejected != 0)
                return false;
        return true;
    }());
    bench::shapeCheck("shard sweep fairness >= 0.99", [&] {
        for (const ShardPoint &p : shard_points)
            if (p.fairness < 0.99)
                return false;
        return true;
    }());
    bench::shapeCheck("per-shard accounting closes", [&] {
        for (const ShardPoint &p : shard_points) {
            if (!p.accounting_ok)
                return false;
            uint64_t rows_records = 0;
            uint32_t rows_tenants = 0;
            for (const ShardRow &r : p.rows) {
                rows_records += r.records;
                rows_tenants += r.tenants;
            }
            if (rows_records != p.records || rows_tenants != p.admitted)
                return false;
        }
        return true;
    }());
    bench::shapeCheck("every shard hosts sessions", [&] {
        for (const ShardPoint &p : shard_points)
            for (const ShardRow &r : p.rows)
                if (r.tenants == 0)
                    return false;
        return true;
    }());
    bench::shapeCheck("failover sweep crashes and recovers sessions", [&] {
        for (const FailoverPoint &p : failover_points)
            if (p.crashes == 0 || p.recoveries == 0)
                return false;
        return true;
    }());
    bench::shapeCheck("failover sweep loses no session", [&] {
        for (const FailoverPoint &p : failover_points)
            if (p.lost != 0)
                return false;
        return true;
    }());
    bench::shapeCheck("recovered output bit-identical to fault-free run",
                      [&] {
                          for (const FailoverPoint &p : failover_points)
                              if (!p.output_identical)
                                  return false;
                          return true;
                      }());
    bench::shapeCheck("records conserved across crash replay", [&] {
        for (const FailoverPoint &p : failover_points)
            if (!p.conserved)
                return false;
        return true;
    }());
    bench::shapeCheck("overload attribution covers every tenant",
                      ovl.attribution.size() == ovl.tenants);
    bench::shapeCheck("attribution components sum to measured latency",
                      [&] {
                          for (const TenantAttr &ta : ovl.attribution) {
                              double sum = 0;
                              for (uint32_t c = 0;
                                   c < serve::kStallCauses; ++c)
                                  sum += ta.comp_ns[c];
                              if (std::fabs(sum - ta.total_latency_ns)
                                  > 1e-6
                                        * std::max(
                                            1.0, ta.total_latency_ns))
                                  return false;
                          }
                          return true;
                      }());
    bench::shapeCheck("latency histogram counts every window", [&] {
        uint64_t hist_windows = 0;
        for (uint64_t c : ovl.latency_hist.counts)
            hist_windows += c;
        return hist_windows == ovl.windows;
    }());
    bench::shapeCheck("checkpoints bound the replay", [&] {
        // Scratch-restart (period 0) replays the whole consumed
        // prefix; any checkpoint cadence must replay strictly less.
        for (const FailoverPoint &p : failover_points) {
            if (p.checkpoint_period == 0)
                continue;
            if (p.checkpoints == 0 || p.copied_bytes == 0
                || p.records_replayed
                       >= failover_points.front().records_replayed)
                return false;
        }
        return true;
    }());

    if (!writeJson(out, points, ovl, shard_points, failover_points)) {
        std::fprintf(stderr, "serve_report: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::printf("serve_report: wrote %s (%zu points, %zu shard points)\n",
                out.c_str(), points.size(), shard_points.size());

    if (!trace_path.empty()) {
        obs::JsonWriter tw;
        tele.trace.exportJson(tw);
        if (!tw.writeFile(trace_path)) {
            std::fprintf(stderr, "serve_report: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        std::printf("serve_report: wrote %s (%zu trace events)\n",
                    trace_path.c_str(), tele.trace.size());
    }
    return 0;
}
