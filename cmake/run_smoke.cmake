# Runs an example binary and checks exit status plus a key output line.
# Usage: cmake -DEXE=<path> [-DARGS=<a;b;...>] -DPASS_REGEX=<regex>
#              [-DFAIL_REGEX=<regex>] [-DGOLDEN=<file>] -P run_smoke.cmake
# FAIL_REGEX fails the test when it matches anywhere in stdout (e.g.
# a figure bench printing a VIOLATED shape-check line).
# GOLDEN fails the test unless stdout matches the file byte for byte
# (pins bit-identical output, e.g. the default placement policy).
if(NOT DEFINED EXE)
    message(FATAL_ERROR "run_smoke.cmake: EXE not set")
endif()
set(cmd ${EXE})
if(DEFINED ARGS AND NOT ARGS STREQUAL "")
    list(APPEND cmd ${ARGS})
endif()
execute_process(COMMAND ${cmd}
                RESULT_VARIABLE rc
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
message(STATUS "---- stdout ----\n${out}")
if(NOT err STREQUAL "")
    message(STATUS "---- stderr ----\n${err}")
endif()
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smoke: ${EXE} exited with status ${rc}")
endif()
if(DEFINED PASS_REGEX AND NOT out MATCHES "${PASS_REGEX}")
    message(FATAL_ERROR "smoke: output of ${EXE} does not match '${PASS_REGEX}'")
endif()
if(DEFINED FAIL_REGEX AND out MATCHES "${FAIL_REGEX}")
    message(FATAL_ERROR "smoke: output of ${EXE} matches fail pattern '${FAIL_REGEX}'")
endif()
if(DEFINED GOLDEN)
    file(READ "${GOLDEN}" want)
    if(NOT out STREQUAL want)
        message(FATAL_ERROR "smoke: output of ${EXE} differs from golden ${GOLDEN}")
    endif()
endif()
