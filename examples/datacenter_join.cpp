/**
 * @file
 * Data-center telemetry join — the workload the paper's introduction
 * motivates: "data center analytics compute the distribution of
 * machine utilization and network request arrival rate, and then
 * join them by time."
 *
 * Two live streams share the machine-id key space:
 *   stream U: per-machine utilization samples  [machine, util%, ts]
 *   stream R: per-machine request-rate samples [machine, req/s, ts]
 *
 * A temporal join pairs them per machine per 100 ms window, emitting
 * (machine, util, req_rate) records — the correlated series an
 * operator would feed into an alerting/auto-scaling policy.
 *
 * Demonstrates: two sources sharing one NIC, a two-port operator, and
 * the per-window join of Fig 4b.
 *
 * Run: ./build/examples/datacenter_join [million_records_per_stream]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/pipeline.h"
#include "pipeline/temporal_join.h"
#include "pipeline/windowing.h"

using namespace sbhbm;
using ingest::KvGen;

int
main(int argc, char **argv)
{
    uint64_t million = 2;
    if (argc > 1)
        million = std::strtoull(argv[1], nullptr, 10);

    constexpr uint64_t kMachines = 20'000;

    runtime::EngineConfig ecfg;
    ecfg.cores = 64;
    runtime::Engine engine(ecfg);
    pipeline::Pipeline pipe(engine,
                            columnar::WindowSpec{100 * kNsPerMs});

    auto &ex_util = pipe.add<pipeline::ExtractOp>(pipe, "extract_util",
                                                  KvGen::kKeyCol);
    auto &ex_req = pipe.add<pipeline::ExtractOp>(pipe, "extract_req",
                                                 KvGen::kKeyCol);
    auto &win_util = pipe.add<pipeline::WindowOp>(pipe, "win_util",
                                                  KvGen::kTsCol);
    auto &win_req = pipe.add<pipeline::WindowOp>(pipe, "win_req",
                                                 KvGen::kTsCol);
    auto &join = pipe.add<pipeline::TemporalJoinOp>(
        pipe, "join_by_machine", KvGen::kKeyCol, KvGen::kValueCol);
    auto &egress = pipe.add<pipeline::EgressOp>(pipe);

    ex_util.connectTo(&win_util);
    ex_req.connectTo(&win_req);
    win_util.connectTo(&join, 0);
    win_req.connectTo(&join, 1);
    join.connectTo(&egress);

    // Utilization 0..100, request rate 0..50000. Each stream gets
    // half of the 40 Gb/s RDMA link (one sender machine).
    KvGen util_gen(/*seed=*/5, kMachines, 100);
    KvGen req_gen(/*seed=*/6, kMachines, 50'000);
    ingest::SourceConfig scfg;
    scfg.nic_bw = engine.machine().config().nic_rdma_bw / 2;
    scfg.total_records = million * 1'000'000;
    scfg.bundle_records = 25'000;

    ingest::Source src_util(engine, pipe, util_gen, &ex_util, scfg);
    ingest::Source src_req(engine, pipe, req_gen, &ex_req, scfg);

    engine.monitor().start();
    src_util.start();
    src_req.start();
    engine.machine().run();

    const uint64_t total =
        src_util.recordsIngested() + src_req.recordsIngested();
    const double sec = simToSeconds(
        std::max(src_util.finishedAt(), src_req.finishedAt()));
    std::printf("Data-center telemetry join on KNL, 64 cores\n");
    std::printf("  machines          : %" PRIu64 "\n", kMachines);
    std::printf("  samples ingested  : %" PRIu64
                " across both streams (%.1f M rec/s)\n",
                total, static_cast<double>(total) / sec / 1e6);
    std::printf("  windows           : %" PRIu64 "\n",
                pipe.windowsExternalized());
    std::printf("  joined records    : %" PRIu64 "\n",
                egress.outputRecords());
    std::printf("  output delay      : mean %.3f s, max %.3f s\n",
                engine.outputDelays().mean(),
                engine.outputDelays().max());
    std::printf("  peak HBM bandwidth: %.1f GB/s\n",
                engine.monitor().hbmBwStat().max() / 1e9);

    if (egress.outputRecords() == 0) {
        std::fprintf(stderr, "join produced no output\n");
        return 1;
    }
    return 0;
}
