/**
 * @file
 * Multi-tenant serving: eight concurrent query sessions on one
 * engine, arbitrated by the weighted fair scheduler.
 *
 * Tenants 1-2 are hot (fair-share weight 4), tenants 3-8 cold
 * (weight 1). Every session offers far more traffic than its share
 * can absorb (open-loop Poisson arrivals), so the engine is the
 * bottleneck and the scheduler decides who gets served. Session
 * lengths are proportional to weight, so under weighted fair sharing
 * all eight drain at about the same time and each tenant's throughput
 * lands on its weighted share of the aggregate — the FAIRNESS lines
 * check every tenant is within 2x of that share.
 *
 * Two more sessions exercise the admission controller: tenant 9
 * arrives later asking for a reservation the HBM budget cannot cover
 * while everyone is running (queued, admitted once sessions drain),
 * and tenant 10 asks for more than the whole budget (rejected).
 *
 * Part 2 demonstrates the memory control plane under overload: the
 * same contending fleet on a machine whose HBM is scaled down so the
 * tenants' window state overruns it. Run A is the baseline (knob
 * only); run B enables the pressure director (live KPA demotion),
 * gauge-aware live admission, and SLA-driven placement demotion. The
 * DEMOTION lines check that run B demoted cold KPAs, that its
 * sampled HBM high-water is strictly lower than run A's, and that
 * every victim tenant still drained in full.
 *
 * Part 3 demonstrates sharded scale-out: the same 64-session
 * contending fleet served by one engine shard and then by four
 * (with cross-shard work stealing on). The SHARD lines check that
 * placement spread the fleet over every shard, that every session
 * still drained in full, and that aggregate throughput grew with
 * the shard count.
 *
 * With `--trace <out.json>` the example instead runs only the
 * overload fleet with the unified telemetry plane installed, prints
 * each tenant's SLA breach attribution (latency decomposed into
 * recovery / ingest-wait / memory-stall / sched-queue / compute), and
 * writes the deterministic Chrome trace_event timeline to the given
 * path (load it in Perfetto or chrome://tracing).
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/multi_tenant [records_scale]
 *   ./build/examples/multi_tenant --trace overload_trace.json
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "obs/json_writer.h"
#include "obs/trace.h"
#include "serve/load_driver.h"
#include "serve/server.h"

using namespace sbhbm;
using serve::Admission;
using serve::TenantReport;
using serve::TenantSpec;

namespace {

/** What one overload run leaves behind (part 2). */
struct OverloadRun
{
    uint64_t demoted_kpas = 0;
    double demoted_mb = 0;
    double hbm_peak_mb = 0; //!< monitor-sampled peak HBM usage
    uint64_t sla_demotions = 0;
    bool all_drained = true;
};

/**
 * The canonical overload scenario (serve::overloadServeConfig /
 * serve::makeOverloadFleet — also serve_report's overload point):
 * four contending sessions on a machine whose HBM holds less than
 * their aggregate window state. @p control_plane switches on the
 * pressure director, live-pressure admission and SLA demotion.
 */
OverloadRun
runOverloadFleet(double scale, bool control_plane)
{
    serve::Server server(
        serve::overloadServeConfig(/*cores=*/16, control_plane));
    const auto records = static_cast<uint64_t>(150'000 * scale);
    server.submitFleet(serve::makeOverloadFleet(records));
    server.run();

    OverloadRun r;
    r.demoted_kpas = server.engine().director().demotedKpas();
    r.demoted_mb =
        static_cast<double>(server.engine().director().demotedBytes())
        / 1e6;
    r.hbm_peak_mb = server.engine().monitor().hbmUsedStat().max() / 1e6;
    for (const TenantReport &rep : server.reports()) {
        r.sla_demotions += rep.sla_demotions;
        r.all_drained =
            r.all_drained && rep.records == records;
    }
    return r;
}

/** What one shard-count run leaves behind (part 3). */
struct ShardRun
{
    double aggregate_mrps = 0;
    double fairness = 0;
    uint32_t shards_used = 0;
    bool all_drained = true;
};

/**
 * The scale-out scenario: sixty-four short contending sessions arriving
 * at once, served by @p shards engine shards with work stealing on.
 * The per-shard engine is deliberately small (8 cores) so a single
 * shard is clearly compute-bound and extra shards pay off.
 */
ShardRun
runShardFleet(double scale, uint32_t shards)
{
    serve::FleetConfig fleet;
    fleet.tenants = 64;
    fleet.seed = 42;
    fleet.hot_records = static_cast<uint64_t>(40'000 * scale);
    fleet.cold_records = static_cast<uint64_t>(10'000 * scale);
    fleet.bundle_records = 2'000;
    fleet.hot_rate = 50e6;
    fleet.cold_rate = 10e6;
    fleet.hot_hbm_reserve = 8ull << 20;
    fleet.cold_hbm_reserve = 2ull << 20;
    fleet.arrival_span = 0; // everyone at once: placement sees the load
    fleet.max_inflight_bundles = 8;

    serve::ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.cores = 8;
    cfg.engine.max_inflight_bundles = 1024;
    cfg.window_ns = 20 * kNsPerMs;
    cfg.shards = shards;
    cfg.work_stealing = true;

    serve::Server server(cfg);
    server.submitFleet(serve::makeFleet(fleet));
    server.run();

    ShardRun r;
    r.aggregate_mrps = server.aggregateMrps();
    r.fairness = server.fairnessIndex();
    std::vector<bool> used(shards, false);
    for (const TenantReport &rep : server.reports()) {
        r.all_drained = r.all_drained
                        && rep.admission == Admission::kAdmitted
                        && rep.records == rep.spec.total_records;
        used[rep.shard] = true;
    }
    for (bool u : used)
        r.shards_used += u ? 1 : 0;
    return r;
}

/**
 * The traced overload demo (--trace): the canonical overload fleet
 * once more, but with a Telemetry installed so every layer records
 * into one trace, plus the per-tenant SLA breach attribution table.
 */
int
runTracedOverload(const char *trace_path)
{
    std::printf("== traced overload: telemetry plane on "
                "(HBM scaled to 8 MiB) ==\n");
    obs::Telemetry tele;
    serve::ServeConfig cfg =
        serve::overloadServeConfig(/*cores=*/16, /*control_plane=*/true);
    cfg.telemetry = &tele;
    serve::Server server(cfg);
    server.submitFleet(serve::makeOverloadFleet(150'000));
    server.run();

    std::printf("\ntenant    windows  viol  recovery ms  ingest ms  "
                "memory ms  sched ms  compute ms  dominant\n");
    for (const TenantReport &r : server.reports()) {
        const double *a = r.attribution_ns;
        std::printf(
            "%-8s  %7" PRIu64 "  %4" PRIu64
            "  %11.2f  %9.2f  %9.2f  %8.2f  %10.2f  %s\n",
            r.spec.name.c_str(), r.windows, r.sla_violations,
            a[0] / 1e6, a[1] / 1e6, a[2] / 1e6, a[3] / 1e6, a[4] / 1e6,
            serve::stallCauseName(r.dominant_cause));
    }

    obs::JsonWriter w;
    tele.trace.exportJson(w);
    if (!w.writeFile(trace_path)) {
        std::fprintf(stderr, "multi_tenant: cannot write %s\n",
                     trace_path);
        return 1;
    }
    std::printf("\nwrote %s (%zu trace events) — load it in Perfetto "
                "or chrome://tracing\n",
                trace_path, tele.trace.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 2 && std::strcmp(argv[1], "--trace") == 0)
        return runTracedOverload(argv[2]);

    double scale = 1.0;
    if (argc > 1)
        scale = std::strtod(argv[1], nullptr);

    serve::ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.cores = 16;
    cfg.engine.max_inflight_bundles = 512;
    cfg.window_ns = 50 * kNsPerMs;
    // Budget sized so the eight contending sessions fit with little
    // slack: 8 x 48 MiB = 384 MiB of 416 MiB.
    cfg.admission.hbm_budget_bytes = 416ull << 20;

    serve::Server server(cfg);

    const auto base = static_cast<uint64_t>(100'000 * scale);
    const double sum_weights = 2 * 4.0 + 6 * 1.0;
    for (uint32_t i = 1; i <= 8; ++i) {
        const bool hot = i <= 2;
        TenantSpec t;
        t.id = i;
        t.name = (hot ? "hot-" : "cold-") + std::to_string(i);
        t.weight = hot ? 4.0 : 1.0;
        t.query = queries::QueryId::kSumPerKey;
        t.total_records = static_cast<uint64_t>(
            static_cast<double>(base) * t.weight);
        t.bundle_records = 5'000;
        t.offered_rate = 50e6; // far beyond any tenant's share
        t.poisson_arrivals = true;
        t.hbm_reserve_bytes = 48ull << 20;
        // In-flight budget scales with weight so a hot tenant can keep
        // enough backlog queued to actually use its larger share.
        t.max_inflight_bundles = hot ? 48 : 12;
        server.submit(t);
    }

    // Tenant 9: fits the budget alone, not alongside all eight.
    TenantSpec late;
    late.id = 9;
    late.name = "late-batch";
    late.weight = 1.0;
    late.query = queries::QueryId::kAvgPerKey;
    late.total_records = base / 2;
    late.bundle_records = 5'000;
    late.offered_rate = 50e6;
    late.poisson_arrivals = true;
    late.hbm_reserve_bytes = 160ull << 20;
    late.max_inflight_bundles = 24;
    late.arrives_at = 20 * kNsPerMs;
    server.submit(late);

    // Tenant 10: asks for more than the whole serving budget.
    TenantSpec oversized = late;
    oversized.id = 10;
    oversized.name = "oversized";
    oversized.hbm_reserve_bytes = 1ull << 30;
    oversized.arrives_at = 30 * kNsPerMs;
    server.submit(oversized);

    server.run();

    std::printf("tenant      weight  admission  records    Mrec/s  "
                "p50 ms  p99 ms  slots\n");
    double aggregate_tput = 0;
    for (const TenantReport &r : server.reports()) {
        if (r.admission == Admission::kAdmitted && r.spec.id <= 8)
            aggregate_tput += r.throughput_mrps;
    }
    for (const TenantReport &r : server.reports()) {
        std::printf("%-10s  %6.1f  %-9s  %8" PRIu64 "  %6.2f  %6.1f  "
                    "%6.1f  %5" PRIu64 "\n",
                    r.spec.name.c_str(), r.spec.weight,
                    admissionName(r.admission), r.records,
                    r.throughput_mrps, r.p50_s * 1e3, r.p99_s * 1e3,
                    r.served_slots);
    }

    // The fairness claim: with everyone overloaded, each of the
    // eight contending tenants' throughput is within 2x of its
    // weighted share of their aggregate.
    std::printf("\nweighted fair shares (contending tenants 1-8):\n");
    bool all_fair = true;
    for (const TenantReport &r : server.reports()) {
        if (r.spec.id > 8 || r.admission != Admission::kAdmitted)
            continue;
        const double share =
            aggregate_tput * r.spec.weight / sum_weights;
        const double ratio =
            share > 0 ? r.throughput_mrps / share : 0.0;
        const bool ok = ratio >= 0.5 && ratio <= 2.0;
        all_fair = all_fair && ok;
        std::printf("FAIRNESS  %-10s  got %.2f of fair share %.2f "
                    "Mrec/s (ratio %.2f): %s\n",
                    r.spec.name.c_str(), r.throughput_mrps, share,
                    ratio, ok ? "ok" : "VIOLATED");
    }

    uint64_t queued_first = 0;
    for (const TenantReport &r : server.reports())
        queued_first += r.was_queued ? 1 : 0;
    std::printf("\naggregate   : %.2f M records/s over %" PRIu64
                " admitted sessions (%" PRIu64 " queued first, %" PRIu64
                " rejected)\n",
                server.aggregateMrps(), server.registry().everAdmitted(),
                queued_first, server.registry().rejected());
    std::printf("fairness    : Jain index %.3f over weight-normalized "
                "service\n",
                server.fairnessIndex());
    std::printf("verdict     : %s\n",
                all_fair ? "fair-share ok" : "fair-share VIOLATED");

    // ---- Part 2: the memory control plane under overload ----------
    std::printf("\n== overload: pressure-driven demotion "
                "(HBM scaled to 8 MiB) ==\n");
    const OverloadRun knob_only = runOverloadFleet(scale, false);
    const OverloadRun plane = runOverloadFleet(scale, true);
    std::printf("baseline (knob only)  : HBM peak %.1f MB, "
                "0 demotions\n",
                knob_only.hbm_peak_mb);
    std::printf("control plane         : HBM peak %.1f MB, %" PRIu64
                " KPAs demoted (%.1f MB), %" PRIu64
                " SLA placement demotions\n",
                plane.hbm_peak_mb, plane.demoted_kpas,
                plane.demoted_mb, plane.sla_demotions);

    const bool demoted = plane.demoted_kpas > 0;
    const bool relieved = plane.hbm_peak_mb < knob_only.hbm_peak_mb;
    const bool drained = knob_only.all_drained && plane.all_drained;
    std::printf("DEMOTION  cold KPAs demoted under pressure: %s\n",
                demoted ? "ok" : "VIOLATED");
    std::printf("DEMOTION  HBM high-water strictly lower with the "
                "control plane (%.1f < %.1f MB): %s\n",
                plane.hbm_peak_mb, knob_only.hbm_peak_mb,
                relieved ? "ok" : "VIOLATED");
    std::printf("DEMOTION  victim tenants kept draining: %s\n",
                drained ? "ok" : "VIOLATED");

    const bool part2_ok = demoted && relieved && drained;

    // ---- Part 3: sharded scale-out --------------------------------
    std::printf("\n== scale-out: 64 sessions, 1 vs 4 engine shards "
                "(8 cores each, work stealing) ==\n");
    const ShardRun one = runShardFleet(scale, 1);
    const ShardRun four = runShardFleet(scale, 4);
    std::printf("1 shard   : %.2f M records/s, Jain %.3f\n",
                one.aggregate_mrps, one.fairness);
    std::printf("4 shards  : %.2f M records/s, Jain %.3f, "
                "%u shards hosting sessions\n",
                four.aggregate_mrps, four.fairness, four.shards_used);

    const bool spread = four.shards_used == 4;
    const bool scaled = four.aggregate_mrps > one.aggregate_mrps;
    const bool shard_drained = one.all_drained && four.all_drained;
    std::printf("SHARD  placement spread the fleet over every shard: "
                "%s\n",
                spread ? "ok" : "VIOLATED");
    std::printf("SHARD  aggregate throughput grew with shards "
                "(%.2f > %.2f Mrec/s): %s\n",
                four.aggregate_mrps, one.aggregate_mrps,
                scaled ? "ok" : "VIOLATED");
    std::printf("SHARD  every session drained in full on both "
                "fleets: %s\n",
                shard_drained ? "ok" : "VIOLATED");

    const bool part3_ok = spread && scaled && shard_drained;
    return all_fair && part2_ok && part3_ok ? 0 : 1;
}
