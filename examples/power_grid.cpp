/**
 * @file
 * Power Grid (benchmark 9, after the DEBS 2014 grand challenge):
 * which houses have the most high-power plugs?
 *
 * Ingests a synthetic stream of per-plug load samples with the
 * DEBS'14 schema [plug_gid, load, ts, house]; per window the pipeline
 *  (1) averages the load of every plug,
 *  (2) averages the load over all plugs,
 *  (3) counts, per house, the plugs above the global average,
 *  (4) emits the house(s) with the highest count.
 *
 * Demonstrates a multi-pass reduction over one grouping (SortedRunsOp
 * subclassing) and result inspection via a custom sink.
 *
 * Run: ./build/examples/power_grid [million_records]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/pipeline.h"
#include "pipeline/power_grid.h"
#include "pipeline/windowing.h"

using namespace sbhbm;
using ingest::PowerGridGen;
using pipeline::PowerGridOp;

namespace {

/** Egress that also tallies how often each house wins a window. */
class HouseTally : public pipeline::EgressOp
{
  public:
    explicit HouseTally(pipeline::Pipeline &p) : EgressOp(p, "tally") {}

    std::map<uint64_t, uint64_t> wins;

  protected:
    void
    process(pipeline::Msg msg, int port) override
    {
        for (uint32_t r = 0; r < msg.bundle->size(); ++r)
            ++wins[msg.bundle->row(r)[0]];
        EgressOp::process(std::move(msg), port);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    uint64_t million = 3;
    if (argc > 1)
        million = std::strtoull(argv[1], nullptr, 10);

    runtime::EngineConfig ecfg;
    ecfg.cores = 32;
    runtime::Engine engine(ecfg);
    pipeline::Pipeline pipe(engine,
                            columnar::WindowSpec{100 * kNsPerMs});

    auto &extract = pipe.add<pipeline::ExtractOp>(
        pipe, "extract_plug", PowerGridOp::kPlugCol);
    auto &window = pipe.add<pipeline::WindowOp>(pipe, "window",
                                                PowerGridOp::kTsCol);
    auto &grid = pipe.add<PowerGridOp>(pipe, "power_grid");
    auto &tally = pipe.add<HouseTally>(pipe);
    extract.connectTo(&window);
    window.connectTo(&grid);
    grid.connectTo(&tally);

    PowerGridGen gen(/*seed=*/14, /*houses=*/40,
                     /*plugs_per_house=*/25);
    ingest::SourceConfig scfg;
    scfg.total_records = million * 1'000'000;
    scfg.bundle_records = 50'000;
    ingest::Source source(engine, pipe, gen, &extract, scfg);

    engine.monitor().start();
    source.start();
    engine.machine().run();

    std::printf("Power Grid (DEBS'14) on KNL, 32 cores\n");
    std::printf("  samples ingested : %" PRIu64 " (%.1f M rec/s)\n",
                source.recordsIngested(),
                static_cast<double>(source.recordsIngested())
                    / simToSeconds(source.finishedAt()) / 1e6);
    std::printf("  windows          : %" PRIu64 "\n",
                pipe.windowsExternalized());
    std::printf("  output delay     : mean %.3f s, max %.3f s\n",
                engine.outputDelays().mean(),
                engine.outputDelays().max());

    // The per-plug baselines are deterministic in the plug id, so the
    // same few houses should win most windows.
    std::printf("  top houses by windows won:\n");
    std::multimap<uint64_t, uint64_t, std::greater<>> by_wins;
    for (const auto &[house, n] : tally.wins)
        by_wins.emplace(n, house);
    int shown = 0;
    for (const auto &[n, house] : by_wins) {
        std::printf("    house %2" PRIu64 ": %" PRIu64 " window(s)\n",
                    house, n);
        if (++shown == 5)
            break;
    }
    if (tally.wins.empty()) {
        std::fprintf(stderr, "no windows produced output\n");
        return 1;
    }
    return 0;
}
