/**
 * @file
 * Quickstart — the paper's Listing 1: sum values per key in every
 * 1-second fixed window.
 *
 * This walks through the full public API surface once:
 *   1. configure an engine (machine model + memory mode + cores),
 *   2. declare operators and connect them into a pipeline,
 *   3. attach a data source,
 *   4. run, and read the results off the egress operator.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/quickstart
 */

#include <cinttypes>
#include <cstdio>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/pipeline.h"
#include "pipeline/windowing.h"

using namespace sbhbm;

int
main()
{
    // -- 1. The engine: a KNL-class hybrid-memory machine ------------
    //
    // MemoryMode::kFlat makes both tiers software-visible, which is
    // the configuration all of StreamBox-HBM's placement machinery
    // targets. Try kDramOnly or kCache to reproduce the ablations.
    runtime::EngineConfig ecfg;
    ecfg.machine = sim::MachineConfig::knl();
    ecfg.mode = sim::MemoryMode::kFlat;
    ecfg.cores = 16;
    runtime::Engine engine(ecfg);

    // -- 2. Declare operators and create a pipeline ------------------
    //
    // Equivalent of Listing 1:
    //   WinGroupbyKey<key_pos> wingbk(1_SECOND);
    //   SumPerKey<key_pos, v_pos> sum;
    pipeline::Pipeline pipe(engine, columnar::WindowSpec{kNsPerSec});

    auto &extract = pipe.add<pipeline::ExtractOp>(
        pipe, "extract", ingest::KvGen::kKeyCol);
    auto &wingbk = pipe.add<pipeline::WindowOp>(pipe, "wingbk",
                                                ingest::KvGen::kTsCol);
    auto &sum = pipe.add<pipeline::KeyedAggOp>(
        pipe, "sum", ingest::KvGen::kKeyCol,
        pipeline::aggs::sumPerKey(ingest::KvGen::kValueCol));
    auto &sink = pipe.add<pipeline::EgressOp>(pipe);

    // -- 3. Connect operators (connect_ops of Listing 1) -------------
    extract.connectTo(&wingbk);
    wingbk.connectTo(&sum);
    sum.connectTo(&sink);

    // -- 4. Attach a source and execute the pipeline -----------------
    //
    // 2 M random key/value records over simulated 40 Gb/s RDMA.
    ingest::KvGen gen(/*seed=*/42, /*key_range=*/1000,
                      /*value_range=*/1000000);
    ingest::SourceConfig scfg;
    scfg.total_records = 2'000'000;
    scfg.bundle_records = 50'000;
    ingest::Source source(engine, pipe, gen, &extract, scfg);

    engine.monitor().start();
    source.start();
    engine.machine().run(); // drive virtual time until the pipeline drains

    // -- 5. Results ---------------------------------------------------
    std::printf("ingested  : %" PRIu64 " records in %.3f simulated s\n",
                source.recordsIngested(),
                simToSeconds(source.finishedAt()));
    std::printf("throughput: %.1f M records/s\n",
                static_cast<double>(source.recordsIngested())
                    / simToSeconds(source.finishedAt()) / 1e6);
    std::printf("windows   : %" PRIu64 " externalized, %" PRIu64
                " (key,sum) results\n",
                pipe.windowsExternalized(), sink.outputRecords());
    std::printf("peak HBM bandwidth : %6.1f GB/s\n",
                engine.monitor().hbmBwStat().max() / 1e9);
    std::printf("peak DRAM bandwidth: %6.1f GB/s\n",
                engine.monitor().dramBwStat().max() / 1e9);
    std::printf("mean output delay  : %6.4f s (target %.1f s)\n",
                engine.outputDelays().mean(),
                simToSeconds(ecfg.target_delay));
    return 0;
}
