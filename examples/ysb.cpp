/**
 * @file
 * The Yahoo Streaming Benchmark (Fig 1a / Fig 5), wired explicitly:
 *
 *   Filter (ad view events)            -> KPA(ad_id)
 *   External Join (ad -> campaign)     -> keys updated in place
 *   Window (1-second fixed windows)    -> KPA partitioned by time
 *   Per-key aggregation (count/campaign)
 *   Egress
 *
 * Unlike the quickstart, this example demonstrates:
 *  - the KPA key-swap chain of Fig 5 (ad_id -> timestamps ->
 *    campaign_id as resident keys),
 *  - an external key-value table living in HBM,
 *  - engine introspection: placement decisions, knob state, memory
 *    gauges and bandwidth after the run.
 *
 * Run: ./build/examples/ysb [million_records]
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/external_join.h"
#include "pipeline/pardo.h"
#include "pipeline/pipeline.h"
#include "pipeline/windowing.h"

using namespace sbhbm;
using ingest::YsbGen;

int
main(int argc, char **argv)
{
    uint64_t million = 4;
    if (argc > 1)
        million = std::strtoull(argv[1], nullptr, 10);

    runtime::EngineConfig ecfg;
    ecfg.cores = 64;
    runtime::Engine engine(ecfg);
    pipeline::Pipeline pipe(engine,
                            columnar::WindowSpec{100 * kNsPerMs});

    // The static ad -> campaign table (100 campaigns x 10 ads); the
    // engine keeps such small hot state in HBM (paper Fig 5, step 3).
    auto campaigns = YsbGen::campaignTable();

    auto &filter = pipe.add<pipeline::FilterOp>(
        pipe, "filter_views", YsbGen::kAdCol, [](const uint64_t *row) {
            return row[YsbGen::kEventTypeCol] == YsbGen::kViewEvent;
        });
    auto &join = pipe.add<pipeline::ExternalJoinOp>(
        pipe, "ad_to_campaign", campaigns,
        /*writeback_col=*/YsbGen::kAdCol, /*swap_col=*/YsbGen::kTsCol);
    auto &window = pipe.add<pipeline::WindowOp>(pipe, "window",
                                                YsbGen::kTsCol);
    auto &count = pipe.add<pipeline::KeyedAggOp>(
        pipe, "count_per_campaign", YsbGen::kAdCol,
        pipeline::aggs::countPerKey());
    auto &egress = pipe.add<pipeline::EgressOp>(pipe);

    filter.connectTo(&join);
    join.connectTo(&window);
    window.connectTo(&count);
    count.connectTo(&egress);

    YsbGen gen(/*seed=*/2026);
    ingest::SourceConfig scfg;
    scfg.nic_bw = engine.machine().config().nic_rdma_bw;
    scfg.total_records = million * 1'000'000;
    scfg.bundle_records = 50'000;
    ingest::Source source(engine, pipe, gen, &filter, scfg);

    engine.monitor().start();
    source.start();
    engine.machine().run();

    const double sec = simToSeconds(source.finishedAt());
    std::printf("YSB over simulated 40 Gb/s RDMA on KNL (64 cores)\n");
    std::printf("  records        : %" PRIu64 " (%.1f M rec/s)\n",
                source.recordsIngested(),
                static_cast<double>(source.recordsIngested()) / sec
                    / 1e6);
    std::printf("  windows        : %" PRIu64
                " externalized, %" PRIu64 " campaign counts\n",
                pipe.windowsExternalized(), egress.outputRecords());
    std::printf("  output delay   : mean %.3f s, max %.3f s\n",
                engine.outputDelays().mean(),
                engine.outputDelays().max());
    std::printf("  peak HBM bw    : %.1f GB/s (avg %.1f)\n",
                engine.monitor().hbmBwStat().max() / 1e9,
                engine.monitor().hbmBwStat().mean() / 1e9);
    std::printf("  peak DRAM bw   : %.1f GB/s (avg %.1f)\n",
                engine.monitor().dramBwStat().max() / 1e9,
                engine.monitor().dramBwStat().mean() / 1e9);
    std::printf("  HBM in use now : %" PRIu64 " B (all KPAs freed)\n",
                engine.memory().gauge(mem::Tier::kHbm).used());
    std::printf("  knob           : k_low=%.2f k_high=%.2f\n",
                engine.knob().kLow(), engine.knob().kHigh());

    // Sanity: every ad maps to a campaign, so roughly 1/3 of events
    // (the views) survive the filter and each window emits at most
    // one count per campaign.
    const uint64_t max_expected =
        (pipe.windowsExternalized() + 1) * YsbGen::kCampaigns;
    if (egress.outputRecords() > max_expected) {
        std::fprintf(stderr, "unexpected output cardinality\n");
        return 1;
    }
    return 0;
}
