/**
 * @file
 * Open-addressing hash table with linear probing.
 *
 * This is the random-access grouping structure the paper's baselines
 * use (§2.2: "Hash partitions input records and inserts them into an
 * open-addressing, pre-allocated hash table", derived from the
 * KNL-optimized implementation of Kim et al.). StreamBox-HBM itself
 * uses it only for the external key-value join of YSB; the hash
 * GroupBy baseline of Fig 2 and the Flink-like engine build on it.
 */

#ifndef SBHBM_ALGO_HASH_TABLE_H
#define SBHBM_ALGO_HASH_TABLE_H

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace sbhbm::algo {

/** Multiplicative hash (Fibonacci hashing) for 64-bit keys. */
inline uint64_t
hashKey(uint64_t key)
{
    return key * 0x9e3779b97f4a7c15ULL;
}

/**
 * Pre-allocated open-addressing table mapping uint64 keys to V.
 * Capacity is fixed at construction (power of two); inserting past
 * ~87% load factor is a programming error.
 */
template <typename V>
class HashTable
{
  public:
    /** @param capacity_hint sized up to a power of two >= 8/7 hint. */
    explicit HashTable(size_t capacity_hint)
    {
        size_t cap = 16;
        while (cap < capacity_hint + capacity_hint / 7)
            cap <<= 1;
        slots_.resize(cap);
        used_.assign(cap, 0);
        mask_ = cap - 1;
    }

    /**
     * Find @p key, inserting a default-initialized V when absent.
     * @param[out] probes optional: number of slots inspected.
     * @return reference to the value slot.
     */
    V &
    findOrInsert(uint64_t key, size_t *probes = nullptr)
    {
        size_t idx = hashKey(key) & mask_;
        size_t n = 1;
        while (used_[idx] && slots_[idx].key != key) {
            idx = (idx + 1) & mask_;
            ++n;
            sbhbm_assert(n <= slots_.size(), "hash table full");
        }
        if (probes != nullptr)
            *probes = n;
        if (!used_[idx]) {
            used_[idx] = 1;
            slots_[idx].key = key;
            slots_[idx].value = V{};
            ++size_;
            sbhbm_assert(size_ * 8 <= slots_.size() * 7,
                         "hash table overloaded: %zu of %zu", size_,
                         slots_.size());
        }
        return slots_[idx].value;
    }

    /** @return pointer to the value for @p key, or nullptr. */
    V *
    find(uint64_t key)
    {
        size_t idx = hashKey(key) & mask_;
        size_t n = 0;
        while (used_[idx]) {
            if (slots_[idx].key == key)
                return &slots_[idx].value;
            idx = (idx + 1) & mask_;
            if (++n > slots_.size())
                break;
        }
        return nullptr;
    }

    const V *
    find(uint64_t key) const
    {
        return const_cast<HashTable *>(this)->find(key);
    }

    /** Visit every occupied slot as fn(key, value). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].value);
    }

    size_t size() const { return size_; }
    size_t capacity() const { return slots_.size(); }

    /** Bytes of table storage (for traffic/capacity accounting). */
    uint64_t
    footprintBytes() const
    {
        return slots_.size() * sizeof(Slot) + used_.size();
    }

  private:
    struct Slot
    {
        uint64_t key;
        V value;
    };

    std::vector<Slot> slots_;
    std::vector<uint8_t> used_;
    size_t mask_ = 0;
    size_t size_ = 0;
};

} // namespace sbhbm::algo

#endif // SBHBM_ALGO_HASH_TABLE_H
