/**
 * @file
 * Open-addressing hash table with linear probing.
 *
 * This is the random-access grouping structure the paper's baselines
 * use (§2.2: "Hash partitions input records and inserts them into an
 * open-addressing, pre-allocated hash table", derived from the
 * KNL-optimized implementation of Kim et al.). StreamBox-HBM itself
 * uses it only for the external key-value join of YSB; the hash
 * GroupBy baseline of Fig 2 and the Flink-like engine build on it.
 *
 * Probe batching. On a latency-bound core, a table bigger than the
 * cache makes every probe chain a serialized string of DRAM round
 * trips. The batched entry points (findBatch / findOrInsertBatch)
 * software-pipeline groups of kProbeBatch lookups Cimple-style:
 * hash and prefetch all lanes' head slots first, then walk the
 * chains, so up to kProbeBatch misses are in flight at once.
 * Results are exactly the scalar results — lanes are independent
 * for reads, and the mutating batch resolves lanes in key order so
 * the slot layout stays bit-identical to a scalar insert loop. (See
 * findBatch for why the static group-prefetch schedule beat the
 * dynamic one-step-per-sweep state machine in measurement.)
 */

#ifndef SBHBM_ALGO_HASH_TABLE_H
#define SBHBM_ALGO_HASH_TABLE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/logging.h"

namespace sbhbm::algo {

/**
 * Last-level cache size of this host as reported by sysconf, or 0
 * when the platform won't say (sysconf missing, or reporting 0/-1).
 * 0 means "unknown": the prefetch gate then stays off — the scalar
 * probe path is always correct, just unhidden — rather than guessing
 * a capacity the host may not have.
 */
inline uint64_t
llcBytes()
{
    static const uint64_t bytes = [] {
#if defined(_SC_LEVEL3_CACHE_SIZE)
        const long l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
        if (l3 > 0)
            return static_cast<uint64_t>(l3);
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
        const long l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
        if (l2 > 0)
            return static_cast<uint64_t>(l2);
#endif
        return uint64_t{0};
    }();
    return bytes;
}

/**
 * Process-wide probe tuning new tables are born with. The sysconf
 * guess seeds it; the adaptive plane (src/runtime/adaptive.h)
 * replaces it with a gate derived from *measured* probe cost, which
 * also repairs the llc_bytes == 0 "platform won't say" case the
 * one-shot detection cannot. Wall-clock-only state: it steers
 * prefetch and batch width, never results or simulated charges.
 */
struct ProbeTuning
{
    /** Effective LLC capacity for the prefetch gate; 0 = unknown
     *  (gate stays off, scalar path). */
    uint64_t llc_bytes = 0;
    /** Probe batch width B for new tables. */
    uint32_t batch = 16;
    /** True once a measurement (not the sysconf guess) set this. */
    bool measured = false;
};

inline ProbeTuning &
mutableProbeTuning()
{
    static ProbeTuning tuning = [] {
        ProbeTuning t;
        t.llc_bytes = llcBytes();
        return t;
    }();
    return tuning;
}

inline const ProbeTuning &
probeTuning()
{
    return mutableProbeTuning();
}

inline void
setProbeTuning(const ProbeTuning &t)
{
    mutableProbeTuning() = t;
}

/** Multiplicative hash (Fibonacci hashing) for 64-bit keys. */
inline uint64_t
hashKey(uint64_t key)
{
    return key * 0x9e3779b97f4a7c15ULL;
}

/**
 * Pre-allocated open-addressing table mapping uint64 keys to V.
 * Capacity is fixed at construction (power of two); inserting past
 * ~87% load factor is a programming error.
 */
template <typename V>
class HashTable
{
  public:
    /** @param capacity_hint sized up to a power of two >= 8/7 hint. */
    explicit HashTable(size_t capacity_hint)
    {
        size_t cap = 16;
        while (cap < capacity_hint + capacity_hint / 7)
            cap <<= 1;
        slots_.resize(cap);
        used_.assign(cap, 0);
        mask_ = cap - 1;
        // Batched probes prefetch only when the table exceeds the
        // effective LLC and can actually miss: for a cache-resident
        // table (the common per-window grouping state) the prefetch
        // instructions are pure overhead with nothing to hide —
        // measured ~0.6x on mid-size tables when gated too low.
        // Unknown capacity (llc_bytes == 0) keeps the gate off.
        const ProbeTuning &t = probeTuning();
        prefetch_ = t.llc_bytes > 0 && footprintBytes() > t.llc_bytes;
        batch_ = std::min(std::max(t.batch, 1u), kMaxProbeBatch);
    }

    /**
     * Find @p key, inserting a default-initialized V when absent.
     * @param[out] probes optional: number of slots inspected.
     * @return reference to the value slot.
     */
    V &
    findOrInsert(uint64_t key, size_t *probes = nullptr)
    {
        size_t idx = hashKey(key) & mask_;
        size_t n = 1;
        while (used_[idx] && slots_[idx].key != key) {
            idx = (idx + 1) & mask_;
            ++n;
            sbhbm_assert(n <= slots_.size(), "hash table full");
        }
        if (probes != nullptr)
            *probes = n;
        if (!used_[idx]) {
            used_[idx] = 1;
            slots_[idx].key = key;
            slots_[idx].value = V{};
            ++size_;
            sbhbm_assert(size_ * 8 <= slots_.size() * 7,
                         "hash table overloaded: %zu of %zu", size_,
                         slots_.size());
        }
        return slots_[idx].value;
    }

    /** @return pointer to the value for @p key, or nullptr. */
    V *
    find(uint64_t key)
    {
        size_t idx = hashKey(key) & mask_;
        size_t n = 0;
        while (used_[idx]) {
            if (slots_[idx].key == key)
                return &slots_[idx].value;
            idx = (idx + 1) & mask_;
            if (++n > slots_.size())
                break;
        }
        return nullptr;
    }

    const V *
    find(uint64_t key) const
    {
        return const_cast<HashTable *>(this)->find(key);
    }

    /** Default lookups software-pipelined per batch (see file
     *  comment); the effective width is probeBatch(). */
    static constexpr uint32_t kProbeBatch = 16;

    /** Upper bound callers may size per-batch stack arrays with. */
    static constexpr uint32_t kMaxProbeBatch = 32;

    /** Effective probe batch width B (autotunable, <= kMaxProbeBatch). */
    uint32_t probeBatch() const { return batch_; }

    void
    setProbeBatch(uint32_t b)
    {
        batch_ = std::min(std::max(b, 1u), kMaxProbeBatch);
    }

    /** Whether batched probes group-prefetch (see file comment). */
    bool prefetchEnabled() const { return prefetch_; }

    /** Override the prefetch gate (measured-cost adaptive path). */
    void setPrefetch(bool on) { prefetch_ = on; }

    /** Issue the loads probing @p key will need (its home slot). */
    void
    prefetchKey(uint64_t key) const
    {
        if (prefetch_)
            prefetchSlot(hashKey(key) & mask_);
    }

    /**
     * Batched find: out[i] = find(keys[i]) for i in [0, n). Each
     * group of kProbeBatch lookups is software-pipelined in two
     * stages — hash and prefetch every lane's home slot, then walk
     * the chains — so up to kProbeBatch head-of-chain misses are in
     * flight at once where a latency-bound core would serialize
     * them. Read-only: results are exactly the scalar find()'s.
     *
     * This is the *static* (group-prefetch) schedule of Cimple's
     * batching spectrum. The dynamic variant — advance every live
     * chain one probe step per sweep — was prototyped and measured
     * 0.6x on a wide out-of-order host: its per-lane bookkeeping
     * defeats the speculation that already overlaps independent
     * probes, while linear probing's sequential chain walk needs no
     * per-step software help. Group prefetch keeps the scalar loop's
     * speculative goodness and still issues the batch's misses up
     * front, which is where the win lives on latency-bound (KNL-ish)
     * hosts.
     */
    void
    findBatch(const uint64_t *keys, uint32_t n, V **out)
    {
        if (!prefetch_) {
            // Cache-resident table: there is no latency to hide, and
            // at a few cycles per probe even the group stride is
            // measurable overhead — take the tight loop.
            for (uint32_t i = 0; i < n; ++i)
                out[i] = find(keys[i]);
            return;
        }
        for (uint32_t base = 0; base < n; base += batch_) {
            const uint32_t b = std::min(batch_, n - base);
            for (uint32_t l = 0; l < b; ++l)
                prefetchKey(keys[base + l]);
            for (uint32_t l = 0; l < b; ++l)
                out[base + l] = find(keys[base + l]);
        }
    }

    /**
     * Batched upsert: visit(i, findOrInsert(keys[i])) for i in
     * [0, n). Unlike findBatch, lanes may collide through mutation
     * (an insert changes what later keys must see), so each group is
     * group-prefetched — all kProbeBatch head slots' misses issued up
     * front — and then resolved strictly in key order. That keeps the
     * slot layout, probe counts and load-factor asserts bit-identical
     * to n scalar findOrInsert calls while still overlapping the
     * first-probe misses that dominate an out-of-cache upsert loop.
     */
    template <typename Fn>
    void
    findOrInsertBatch(const uint64_t *keys, uint32_t n, Fn &&visit)
    {
        if (!prefetch_) {
            // Cache-resident: tight scalar loop, as in findBatch.
            for (uint32_t i = 0; i < n; ++i)
                visit(i, findOrInsert(keys[i]));
            return;
        }
        for (uint32_t base = 0; base < n; base += batch_) {
            const uint32_t b = std::min(batch_, n - base);
            for (uint32_t l = 0; l < b; ++l)
                prefetchKey(keys[base + l]);
            for (uint32_t l = 0; l < b; ++l)
                visit(base + l, findOrInsert(keys[base + l]));
        }
    }

    /** Visit every occupied slot as fn(key, value). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < slots_.size(); ++i)
            if (used_[i])
                fn(slots_[i].key, slots_[i].value);
    }

    size_t size() const { return size_; }
    size_t capacity() const { return slots_.size(); }

    /** Bytes of table storage (for traffic/capacity accounting). */
    uint64_t
    footprintBytes() const
    {
        return slots_.size() * sizeof(Slot) + used_.size();
    }

  private:
    struct Slot
    {
        uint64_t key;
        V value;
    };

    /** Issue the loads a probe of slot @p idx will need. */
    void
    prefetchSlot(size_t idx) const
    {
#if defined(__GNUC__) || defined(__clang__)
        __builtin_prefetch(&slots_[idx]);
        __builtin_prefetch(&used_[idx]);
#else
        (void)idx;
#endif
    }

    std::vector<Slot> slots_;
    std::vector<uint8_t> used_;
    size_t mask_ = 0;
    size_t size_ = 0;
    bool prefetch_ = false;
    uint32_t batch_ = kProbeBatch;
};

} // namespace sbhbm::algo

#endif // SBHBM_ALGO_HASH_TABLE_H
