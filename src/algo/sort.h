/**
 * @file
 * Sequential-access merge-sort kernels on key/pointer pairs (paper
 * §4.2, "Primitive Implementation").
 *
 * The paper's Sort splits a KPA into chunks, bitonic-sorts blocks of
 * 64 pairs, then merges. sortRun is the single-thread kernel;
 * sortRunParallel shards the same computation across a host
 * WorkerPool — parallel run formation, then parallel merge rounds
 * with the final (few, large) merges sliced at binary-searched
 * merge-path boundaries so all threads help (paper §4.2: "the
 * threads slice chunks at key boundaries"). The parallel kernel
 * performs the identical block/level structure, so its output is
 * bit-for-bit the serial output at every thread count. The host
 * implementation uses a branchless bitonic network (what the paper
 * hand-tunes with AVX-512); simulated timing is charged by the
 * caller via the cost model, so neither host SIMD width nor host
 * thread count ever affects reported numbers.
 */

#ifndef SBHBM_ALGO_SORT_H
#define SBHBM_ALGO_SORT_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "columnar/record.h"
#include "common/logging.h"
#include "common/worker_pool.h"

namespace sbhbm::algo {

using columnar::KpEntry;

/** Block size of the bitonic kernel (64 pairs, paper §4.2). */
constexpr size_t kSortBlock = 64;

/**
 * Branchless compare-exchange: after the call, a holds the smaller
 * key. The pattern compiles to cmov/vector min-max.
 */
inline void
compareExchange(KpEntry &a, KpEntry &b)
{
    const bool swap = b.key < a.key;
    const KpEntry lo = swap ? b : a;
    const KpEntry hi = swap ? a : b;
    a = lo;
    b = hi;
}

/**
 * Bitonic sorting network over exactly @p n entries, n a power of two
 * and n <= kSortBlock.
 */
inline void
bitonicSortPow2(KpEntry *e, size_t n)
{
    sbhbm_assert((n & (n - 1)) == 0 && n <= kSortBlock,
                 "bitonic needs a power of two <= 64, got %zu", n);
    for (size_t k = 2; k <= n; k <<= 1) {
        for (size_t j = k >> 1; j > 0; j >>= 1) {
            for (size_t i = 0; i < n; ++i) {
                const size_t l = i ^ j;
                if (l <= i)
                    continue;
                const bool ascending = (i & k) == 0;
                if (ascending)
                    compareExchange(e[i], e[l]);
                else
                    compareExchange(e[l], e[i]);
            }
        }
    }
}

/** Insertion sort for sub-block tails. */
inline void
insertionSort(KpEntry *e, size_t n)
{
    for (size_t i = 1; i < n; ++i) {
        const KpEntry v = e[i];
        size_t j = i;
        while (j > 0 && v.key < e[j - 1].key) {
            e[j] = e[j - 1];
            --j;
        }
        e[j] = v;
    }
}

/** Sort up to kSortBlock entries (bitonic when full, insertion tail). */
inline void
sortBlock(KpEntry *e, size_t n)
{
    sbhbm_assert(n <= kSortBlock, "block too large: %zu", n);
    if (n == kSortBlock)
        bitonicSortPow2(e, n);
    else
        insertionSort(e, n);
}

/** Merge two sorted runs into @p out (sequential access). */
inline void
mergeRuns(const KpEntry *a, size_t na, const KpEntry *b, size_t nb,
          KpEntry *out)
{
    size_t i = 0, j = 0, k = 0;
    while (i < na && j < nb)
        out[k++] = (b[j].key < a[i].key) ? b[j++] : a[i++];
    while (i < na)
        out[k++] = a[i++];
    while (j < nb)
        out[k++] = b[j++];
}

/** Number of merge levels sortRun performs above the block sort. */
inline int
mergeLevels(size_t n)
{
    int levels = 0;
    for (size_t width = kSortBlock; width < n; width <<= 1)
        ++levels;
    return levels;
}

/** @return true when entries are nondecreasing by key. */
inline bool
isSortedByKey(const KpEntry *e, size_t n)
{
    for (size_t i = 1; i < n; ++i)
        if (e[i].key < e[i - 1].key)
            return false;
    return true;
}

/**
 * Full merge-sort of @p n entries in place, using @p scratch (at
 * least n entries). Bitonic block sort followed by bottom-up merging.
 *
 * Adaptive: already-sorted input returns after one scan. Streaming
 * pipelines extract KPAs from time-ordered bundles, so sorting on the
 * timestamp column routinely sees fully sorted runs; random input
 * abandons the check at its first inversion, typically within a few
 * elements. Callers that have already proven the input unsorted (a
 * sampled inversion, or an adaptive policy that has watched this
 * stream) pass @p precheck false to skip the scan outright.
 *
 * The ping-pong parity is precomputed: with an odd number of merge
 * levels the block sort lands in scratch (each 1 KiB block is copied
 * while cache-hot, then sorted there), so the final merge pass always
 * writes into @p data and no whole-array copy-back pass is needed.
 */
inline void
sortRun(KpEntry *data, size_t n, KpEntry *scratch, bool precheck = true)
{
    if (n <= 1)
        return;
    if (precheck && isSortedByKey(data, n))
        return;
    const int levels = mergeLevels(n);
    KpEntry *src = (levels % 2 == 0) ? data : scratch;
    KpEntry *dst = (levels % 2 == 0) ? scratch : data;
    for (size_t i = 0; i < n; i += kSortBlock) {
        const size_t m = std::min(kSortBlock, n - i);
        if (src != data)
            std::memcpy(src + i, data + i, m * sizeof(KpEntry));
        sortBlock(src + i, m);
    }
    for (size_t width = kSortBlock; width < n; width <<= 1) {
        for (size_t i = 0; i < n; i += 2 * width) {
            const size_t mid = std::min(i + width, n);
            const size_t end = std::min(i + 2 * width, n);
            mergeRuns(src + i, mid - i, src + mid, end - mid, dst + i);
        }
        std::swap(src, dst);
    }
    // `levels` swaps from the precomputed start: src == data here.
}

/**
 * Merge-path split: find (ai, bi) with ai + bi == diag such that
 * merging a[0..ai) and b[0..bi) yields the first diag outputs of the
 * full merge. Used to slice one large merge across threads at key
 * boundaries (paper §4.2: "the threads slice chunks at key boundaries
 * to parallelize the task of merging fewer, but larger chunks").
 */
inline void
mergePathSplit(const KpEntry *a, size_t na, const KpEntry *b, size_t nb,
               size_t diag, size_t *ai, size_t *bi)
{
    sbhbm_assert(diag <= na + nb, "diagonal out of range");
    size_t lo = diag > nb ? diag - nb : 0;
    size_t hi = std::min(diag, na);
    while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        // a[mid] vs b[diag - mid - 1]: is a[mid] on the output side?
        if (b[diag - mid - 1].key < a[mid].key)
            hi = mid;
        else
            lo = mid + 1;
    }
    *ai = lo;
    *bi = diag - lo;
}

/** Entries below which forking a parallel sort is not worth it. */
constexpr size_t kParallelSortMin = size_t{1} << 15;

/** Minimum output entries per merge-path segment. */
constexpr size_t kMergeSegmentMin = size_t{1} << 14;

/**
 * Compute outputs [d0, d1) of mergeRuns(a, na, b, nb, out) without
 * touching the rest: both diagonals are merge-path-split, then the
 * enclosed sub-runs are merged. Writes exactly the bytes the full
 * merge would, so disjoint segments may run concurrently.
 */
inline void
mergeRunsSegment(const KpEntry *a, size_t na, const KpEntry *b, size_t nb,
                 KpEntry *out, size_t d0, size_t d1)
{
    size_t ai0, bi0, ai1, bi1;
    mergePathSplit(a, na, b, nb, d0, &ai0, &bi0);
    mergePathSplit(a, na, b, nb, d1, &ai1, &bi1);
    mergeRuns(a + ai0, ai1 - ai0, b + bi0, bi1 - bi0, out + d0);
}

/**
 * mergeRuns with the output sliced across @p pool. Bit-identical to
 * mergeRuns at every thread count (merge-path segments partition the
 * output exactly; ties resolve a-first on every path).
 */
inline void
mergeRunsParallel(const KpEntry *a, size_t na, const KpEntry *b,
                  size_t nb, KpEntry *out, WorkerPool &pool)
{
    const size_t total = na + nb;
    const size_t by_size =
        std::max<size_t>(1, total / kMergeSegmentMin);
    const auto segs = static_cast<uint32_t>(
        std::min<size_t>(pool.threads(), by_size));
    if (segs <= 1) {
        mergeRuns(a, na, b, nb, out);
        return;
    }
    pool.parallelFor(segs, [=](uint32_t s) {
        const size_t d0 = total * s / segs;
        const size_t d1 = total * (s + 1) / segs;
        mergeRunsSegment(a, na, b, nb, out, d0, d1);
    });
}

/**
 * sortRun sharded across @p pool; output is bit-for-bit what sortRun
 * produces, at every thread count.
 *
 * Run formation: the block sorts (and the odd-parity copy into
 * scratch) shard by contiguous block ranges. Merge rounds: every
 * level's pairwise merges write disjoint output regions, so pairs
 * dispatch concurrently; once a level has fewer pairs than threads
 * (the last, largest merges) each pair's output is further sliced at
 * merge-path diagonals so every thread still contributes. The level
 * structure, ping-pong parity and tie-breaking are exactly
 * sortRun's, which is what makes the result independent of the
 * slicing.
 */
inline void
sortRunParallel(KpEntry *data, size_t n, KpEntry *scratch,
                WorkerPool &pool, bool precheck = true)
{
    if (n <= 1)
        return;
    if (pool.threads() <= 1 || n < kParallelSortMin) {
        sortRun(data, n, scratch, precheck);
        return;
    }
    if (precheck && isSortedByKey(data, n))
        return;
    const size_t threads = pool.threads();
    const int levels = mergeLevels(n);
    KpEntry *src = (levels % 2 == 0) ? data : scratch;
    KpEntry *dst = (levels % 2 == 0) ? scratch : data;

    // Run formation: independent 64-entry block sorts.
    const size_t nblocks = (n + kSortBlock - 1) / kSortBlock;
    const auto form_shards = static_cast<uint32_t>(
        std::min<size_t>(nblocks, 4 * threads));
    pool.parallelFor(form_shards, [&](uint32_t s) {
        const size_t b0 = nblocks * s / form_shards;
        const size_t b1 = nblocks * (s + 1) / form_shards;
        for (size_t blk = b0; blk < b1; ++blk) {
            const size_t i = blk * kSortBlock;
            const size_t m = std::min(kSortBlock, n - i);
            if (src != data)
                std::memcpy(src + i, data + i, m * sizeof(KpEntry));
            sortBlock(src + i, m);
        }
    });

    // Merge rounds. A segment is (pair offsets, output diagonals).
    struct Segment
    {
        size_t i, mid, end; //!< pair: [i, mid) merged with [mid, end)
        size_t d0, d1;      //!< output slice, relative to i
    };
    std::vector<Segment> segs;
    for (size_t width = kSortBlock; width < n; width <<= 1) {
        segs.clear();
        const size_t npairs = (n + 2 * width - 1) / (2 * width);
        for (size_t i = 0; i < n; i += 2 * width) {
            const size_t mid = std::min(i + width, n);
            const size_t end = std::min(i + 2 * width, n);
            // Slice the pair when pairs are scarcer than threads and
            // the slices stay worth their two binary searches.
            size_t pieces = 1;
            if (npairs < threads) {
                pieces = std::min((threads + npairs - 1) / npairs,
                                  std::max<size_t>(
                                      1, (end - i) / kMergeSegmentMin));
            }
            for (size_t p = 0; p < pieces; ++p) {
                segs.push_back(Segment{i, mid, end,
                                       (end - i) * p / pieces,
                                       (end - i) * (p + 1) / pieces});
            }
        }
        pool.parallelFor(
            static_cast<uint32_t>(segs.size()), [&](uint32_t s) {
                const Segment &g = segs[s];
                const size_t na = g.mid - g.i;
                const size_t nb = g.end - g.mid;
                if (g.d0 == 0 && g.d1 == g.end - g.i) {
                    mergeRuns(src + g.i, na, src + g.mid, nb,
                              dst + g.i);
                } else {
                    mergeRunsSegment(src + g.i, na, src + g.mid, nb,
                                     dst + g.i, g.d0, g.d1);
                }
            });
        std::swap(src, dst);
    }
    // `levels` swaps from the precomputed start: src == data here.
}

} // namespace sbhbm::algo

#endif // SBHBM_ALGO_SORT_H
