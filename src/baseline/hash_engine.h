/**
 * @file
 * Flink-like comparison engine (paper §7.1).
 *
 * A record-at-a-time engine with hash-based grouping and no KPA / no
 * explicit placement: every operator touches full records, state
 * lives in per-window hash tables, and each record pays the
 * interpretation overhead of a JVM-style dataflow (virtual dispatch,
 * (de)serialization between chained operators). It runs on
 * cache-mode memory — hardware manages the hybrid memory, as in the
 * paper's Flink-on-KNL configuration.
 *
 * The engine executes real hash aggregation (results are checked in
 * tests); only its costs differ from StreamBox-HBM's: random-access
 * traffic instead of sequential, full-record bytes instead of
 * key/pointer pairs, and a large per-record CPU constant.
 */

#ifndef SBHBM_BASELINE_HASH_ENGINE_H
#define SBHBM_BASELINE_HASH_ENGINE_H

#include <map>
#include <memory>
#include <utility>

#include "algo/hash_table.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/operator.h"
#include "sim/cost_model.h"

namespace sbhbm::baseline {

using pipeline::Msg;
using pipeline::Operator;
using pipeline::Pipeline;

/**
 * Record-at-a-time hash aggregation: the whole YSB-style query
 * (filter -> key lookup -> window -> count per key) in one operator,
 * the way a chained Flink task executes it.
 */
class RecordAtATimeAggOp : public Operator
{
  public:
    struct Config
    {
        /** Filter: keep records with row[filter_col] == filter_value;
         *  set filter_col = kNoColumn to keep everything. */
        columnar::ColumnId filter_col = columnar::kNoColumn;
        uint64_t filter_value = 0;

        /** Grouping key column. */
        columnar::ColumnId key_col = 0;

        /** Timestamp column for windowing. */
        columnar::ColumnId ts_col = 2;

        /** Optional key remapping table (YSB ad -> campaign). */
        std::shared_ptr<algo::HashTable<uint64_t>> key_map;

        /** Chained operator stages the record passes through. */
        int pipeline_stages = 5;

        /** Expected distinct keys per window (table sizing). */
        size_t keys_hint = 1024;
    };

    RecordAtATimeAggOp(Pipeline &pipe, std::string name, Config cfg)
        : Operator(pipe, std::move(name)), cfg_(cfg)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(),
                     "RecordAtATimeAggOp expects record bundles");
        const pipeline::ImpactTag tag = classify(msg.min_ts);
        const columnar::WindowSpec spec = pipe_.windows();
        spawnTracked(tag, [this, spec, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &) mutable {
            const columnar::Bundle &b = *msg.bundle;
            // Batched probe pipeline (Cimple-style): gather surviving
            // records' keys and windows, then flush each batch —
            // key-map probes as one group state machine, window-table
            // upserts as group-prefetched in-order batches — so the
            // chain-walk DRAM misses of consecutive records overlap
            // instead of serializing. Record order is preserved end
            // to end, so grouped counts, table layouts (and with them
            // the close-time emission order) match the scalar loop
            // bit for bit.
            constexpr uint32_t kB = algo::HashTable<uint64_t>::kProbeBatch;
            uint64_t keys[kB];
            columnar::WindowId wins[kB];
            uint64_t *mapped[kB];
            uint32_t nbuf = 0;
            uint64_t grouped = 0;
            auto flush = [&] {
                if (nbuf == 0)
                    return;
                if (cfg_.key_map) {
                    cfg_.key_map->findBatch(keys, nbuf, mapped);
                    for (uint32_t l = 0; l < nbuf; ++l) {
                        if (mapped[l] != nullptr)
                            keys[l] = *mapped[l];
                    }
                }
                for (uint32_t s = 0; s < nbuf;) {
                    uint32_t e = s + 1;
                    while (e < nbuf && wins[e] == wins[s])
                        ++e;
                    tableFor(wins[s]).findOrInsertBatch(
                        keys + s, e - s,
                        [](uint32_t, uint64_t &count) { ++count; });
                    s = e;
                }
                grouped += nbuf;
                nbuf = 0;
            };
            for (uint32_t r = 0; r < b.size(); ++r) {
                const uint64_t *row = b.row(r);
                if (cfg_.filter_col != columnar::kNoColumn
                    && row[cfg_.filter_col] != cfg_.filter_value) {
                    continue;
                }
                keys[nbuf] = row[cfg_.key_col];
                wins[nbuf] = spec.windowOf(row[cfg_.ts_col]);
                if (++nbuf == kB)
                    flush();
            }
            flush();
            chargeBundle(log, b, grouped);
        });
    }

    void
    onWatermark(pipeline::Watermark wm) override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        for (auto it = state_.begin(); it != state_.end();) {
            const columnar::WindowId w = it->first;
            if (spec.end(w) > wm.ts) {
                ++it;
                continue;
            }
            auto table = std::make_shared<algo::HashTable<uint64_t>>(
                std::move(it->second));
            it = state_.erase(it);
            spawnTracked(
                pipeline::ImpactTag::kUrgent,
                [this, w, table, spec](sim::CostLog &log, Emitter &em) {
                    pipeline::RowSink sink(2);
                    table->forEach([&](uint64_t key, const uint64_t &n) {
                        sink.push({key, n});
                    });
                    // Close scans the whole table (random layout).
                    eng_.memory().charge(log, mem::Tier::kDram,
                                         sim::AccessPattern::kSequential,
                                         table->footprintBytes());
                    log.cpu(sim::cost::kEmitNsPerRec
                            * static_cast<double>(sink.rows()));
                    auto out = sink.toBundle(eng_.memory());
                    if (out) {
                        em.push(Msg::ofBundle(std::move(out),
                                              spec.start(w))
                                    .withWindow(w));
                    }
                });
        }
    }

  private:
    algo::HashTable<uint64_t> &
    tableFor(columnar::WindowId w)
    {
        auto it = state_.find(w);
        if (it == state_.end()) {
            it = state_
                     .emplace(w,
                              algo::HashTable<uint64_t>(cfg_.keys_hint))
                     .first;
        }
        return it->second;
    }

    /** Per-bundle cost of the record-at-a-time execution. */
    void
    chargeBundle(sim::CostLog &log, const columnar::Bundle &b,
                 uint64_t grouped)
    {
        auto &hm = eng_.memory();
        // Every stage re-touches the full record (no columnar reuse).
        hm.charge(log, b.tier(), sim::AccessPattern::kSequential,
                  b.dataBytes() * 2);
        // Hash probe + insert: random lines (key map + window table).
        const uint64_t probes = cfg_.key_map ? 2 * grouped : grouped;
        hm.charge(log, mem::Tier::kDram, sim::AccessPattern::kRandom,
                  probes * sim::cost::kLineBytes);
        // Interpretation overhead: per record per chained stage.
        log.cpu(sim::cost::kRecordAtATimeNs * cfg_.pipeline_stages
                    * static_cast<double>(b.size())
                + (sim::cost::kHashComputeNs + sim::cost::kHashProbeNs)
                      * static_cast<double>(grouped));
    }

    Config cfg_;
    std::map<columnar::WindowId, algo::HashTable<uint64_t>> state_;
};

} // namespace sbhbm::baseline

#endif // SBHBM_BASELINE_HASH_ENGINE_H
