/**
 * @file
 * Record bundles: the unit of data parallelism (paper §2.1, Fig 1c).
 *
 * A bundle is a fixed-capacity batch of full records. Records are
 * numeric rows (each column a 64-bit value) stored row-major, in
 * arrival order, always in DRAM (paper §3: "StreamBox-HBM ingests
 * streaming records ... and allocates them in DRAM — in arrival order
 * and in row format").
 *
 * Lifetime follows paper §5.1: a bundle is never mutated structurally
 * after it is sealed; KPAs hold references into it; the bundle carries
 * a reference count and is reclaimed when the last referencing KPA
 * (or pipeline channel) drops it.
 */

#ifndef SBHBM_COLUMNAR_BUNDLE_H
#define SBHBM_COLUMNAR_BUNDLE_H

#include <cstdint>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <utility>

#include "common/logging.h"
#include "common/units.h"
#include "mem/hybrid_memory.h"

namespace sbhbm::columnar {

/** One batch of full records, row-major, DRAM-resident. */
class Bundle
{
  public:
    /**
     * Allocate a bundle.
     * @param hm        memory manager (data always placed on DRAM).
     * @param cols      number of 64-bit columns per record.
     * @param capacity  maximum number of records.
     * @return a bundle with reference count 1 (caller owns one ref).
     */
    static Bundle *
    create(mem::HybridMemory &hm, uint32_t cols, uint32_t capacity)
    {
        sbhbm_assert(cols > 0 && capacity > 0, "empty bundle shape");
        auto block = hm.alloc(uint64_t{capacity} * cols * sizeof(uint64_t),
                              mem::Tier::kDram);
        return new Bundle(hm, block, cols, capacity);
    }

    Bundle(const Bundle &) = delete;
    Bundle &operator=(const Bundle &) = delete;

    /** Take one additional reference. */
    void retain() { ++refcount_; }

    /**
     * Drop one reference; destroys the bundle (and frees its DRAM)
     * when this was the last one.
     * @return true when the bundle was destroyed.
     *
     * GCC's -Wuse-after-free cannot see that the refcount guards the
     * delete when two release() calls on the same bundle are inlined
     * into one caller (the retain-protected first call looks like it
     * frees the pointer the second call reads), so the false positive
     * is suppressed here.
     */
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuse-after-free"
#endif
    bool
    release()
    {
        sbhbm_assert(refcount_ > 0, "releasing dead bundle");
        if (--refcount_ > 0)
            return false;
        delete this;
        return true;
    }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

    uint32_t refcount() const { return refcount_; }
    uint64_t id() const { return id_; }
    uint32_t cols() const { return cols_; }
    uint32_t capacity() const { return capacity_; }
    uint32_t size() const { return size_; }
    bool full() const { return size_ == capacity_; }

    /** Bytes of record data (what grouping on full records must move). */
    uint64_t
    dataBytes() const
    {
        return uint64_t{size_} * cols_ * sizeof(uint64_t);
    }

    /** Mutable access to record @p r (KeySwap writes keys back). */
    uint64_t *
    row(uint32_t r)
    {
        sbhbm_assert(r < size_, "row %u out of %u", r, size_);
        return data() + uint64_t{r} * cols_;
    }

    const uint64_t *
    row(uint32_t r) const
    {
        sbhbm_assert(r < size_, "row %u out of %u", r, size_);
        return data() + uint64_t{r} * cols_;
    }

    /** Append one record given as @p cols_ column values. */
    uint64_t *
    append(const uint64_t *values)
    {
        sbhbm_assert(size_ < capacity_, "bundle overflow");
        uint64_t *r = data() + uint64_t{size_} * cols_;
        std::memcpy(r, values, uint64_t{cols_} * sizeof(uint64_t));
        ++size_;
        return r;
    }

    uint64_t *
    append(std::initializer_list<uint64_t> values)
    {
        sbhbm_assert(values.size() == cols_, "arity mismatch: %zu vs %u",
                     values.size(), cols_);
        return append(values.begin());
    }

    /** Append a record slot without initializing; returns the row. */
    uint64_t *
    appendRaw()
    {
        sbhbm_assert(size_ < capacity_, "bundle overflow");
        uint64_t *r = data() + uint64_t{size_} * cols_;
        ++size_;
        return r;
    }

    /**
     * Reserve @p n uninitialized record slots in one step and return
     * the first row. Bulk emitters (materialize, join) fill the rows
     * directly instead of paying an assert + size bump per record.
     */
    uint64_t *
    appendBlockRaw(uint32_t n)
    {
        sbhbm_assert(uint64_t{size_} + n <= capacity_,
                     "bundle overflow: %u + %u beyond %u", size_, n,
                     capacity_);
        uint64_t *r = data() + uint64_t{size_} * cols_;
        size_ += n;
        return r;
    }

    uint64_t *data() { return static_cast<uint64_t *>(block_.ptr); }
    const uint64_t *
    data() const
    {
        return static_cast<const uint64_t *>(block_.ptr);
    }

    /** Tier the record data lives on (always DRAM in flat mode). */
    mem::Tier tier() const { return block_.tier; }

    /**
     * Install a hook run when the bundle is reclaimed (the ingestion
     * path uses it for back-pressure credit accounting).
     */
    void
    setOnDestroy(std::function<void()> fn)
    {
        on_destroy_ = std::move(fn);
    }

  private:
    Bundle(mem::HybridMemory &hm, mem::Block block, uint32_t cols,
           uint32_t capacity)
        : hm_(hm), block_(block), id_(next_id_++), cols_(cols),
          capacity_(capacity)
    {
    }

    ~Bundle()
    {
        if (on_destroy_)
            on_destroy_();
        hm_.free(block_);
    }

    static inline uint64_t next_id_ = 1;

    mem::HybridMemory &hm_;
    mem::Block block_;
    uint64_t id_;
    uint32_t cols_;
    uint32_t capacity_;
    uint32_t size_ = 0;
    uint32_t refcount_ = 1;
    std::function<void()> on_destroy_;
};

/** RAII handle managing one bundle reference. */
class BundleHandle
{
  public:
    BundleHandle() = default;

    /** Adopts the caller's reference (does not retain). */
    static BundleHandle
    adopt(Bundle *b)
    {
        BundleHandle h;
        h.b_ = b;
        return h;
    }

    /** Takes a new reference on @p b. */
    static BundleHandle
    share(Bundle *b)
    {
        if (b)
            b->retain();
        return adopt(b);
    }

    BundleHandle(const BundleHandle &o) : b_(o.b_)
    {
        if (b_)
            b_->retain();
    }

    BundleHandle(BundleHandle &&o) noexcept : b_(o.b_) { o.b_ = nullptr; }

    BundleHandle &
    operator=(BundleHandle o) noexcept
    {
        std::swap(b_, o.b_);
        return *this;
    }

    ~BundleHandle() { reset(); }

    void
    reset()
    {
        if (b_) {
            b_->release();
            b_ = nullptr;
        }
    }

    Bundle *get() const { return b_; }
    Bundle *operator->() const { return b_; }
    Bundle &operator*() const { return *b_; }
    explicit operator bool() const { return b_ != nullptr; }

  private:
    Bundle *b_ = nullptr;
};

} // namespace sbhbm::columnar

#endif // SBHBM_COLUMNAR_BUNDLE_H
