/**
 * @file
 * Partial-record representation: the key/pointer pair (paper §4.1).
 *
 * A KPA entry replicates exactly one column (the resident key) of a
 * full record plus a pointer to the full record in DRAM. Grouping
 * operators compare resident keys and move 16-byte pairs; they never
 * touch the full records.
 */

#ifndef SBHBM_COLUMNAR_RECORD_H
#define SBHBM_COLUMNAR_RECORD_H

#include <cstdint>

namespace sbhbm::columnar {

/** Index of a column within a record. */
using ColumnId = uint32_t;

/** Sentinel meaning "no resident column". */
constexpr ColumnId kNoColumn = ~0u;

/** One key/pointer pair: 16 bytes, the unit all grouping moves. */
struct KpEntry
{
    uint64_t key;   //!< resident key (copied column value)
    uint64_t *row;  //!< pointer to the full record in its bundle

    friend bool
    operator<(const KpEntry &a, const KpEntry &b)
    {
        return a.key < b.key;
    }
};

static_assert(sizeof(KpEntry) == 16, "KPA entries must be 16 bytes");

} // namespace sbhbm::columnar

#endif // SBHBM_COLUMNAR_RECORD_H
