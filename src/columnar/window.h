/**
 * @file
 * Temporal windows and watermarks (paper §2.1).
 *
 * Records carry event timestamps; data sources inject watermarks
 * guaranteeing no later record will have an earlier timestamp. A
 * pipeline produces output per temporal window; a window closes when
 * a watermark at or past its end arrives.
 */

#ifndef SBHBM_COLUMNAR_WINDOW_H
#define SBHBM_COLUMNAR_WINDOW_H

#include <cstdint>

#include "common/logging.h"
#include "common/units.h"

namespace sbhbm::columnar {

/** Identifies one fixed-size window: floor(ts / width). */
using WindowId = uint64_t;

/** Fixed (tumbling) windowing scheme. */
struct WindowSpec
{
    /** Window width in event-time nanoseconds. */
    EventTime width = kNsPerSec;

    WindowId
    windowOf(EventTime ts) const
    {
        sbhbm_assert(width > 0, "zero-width window");
        return ts / width;
    }

    EventTime start(WindowId w) const { return w * width; }
    EventTime end(WindowId w) const { return (w + 1) * width; }
};

/**
 * A watermark: a promise from the source that every subsequent record
 * timestamp will be strictly later than @p ts.
 */
struct Watermark
{
    EventTime ts = 0;
};

} // namespace sbhbm::columnar

#endif // SBHBM_COLUMNAR_WINDOW_H
