/**
 * @file
 * Invariant unsigned 64-bit division by multiply-high (the classic
 * Granlund–Montgomery round-up scheme, cf. Hacker's Delight ch. 10
 * and the libdivide library).
 *
 * A runtime `x / d` with a loop-invariant d costs ~20-30 cycles on
 * current cores; precomputing a magic reciprocal turns every quotient
 * into one widening multiply plus a shift (~3 cycles). The grouping
 * hot paths divide every key by the window width, so this is worth a
 * dedicated helper. Falls back to plain division on toolchains
 * without a 128-bit integer type.
 */

#ifndef SBHBM_COMMON_FAST_DIVIDE_H
#define SBHBM_COMMON_FAST_DIVIDE_H

#include <cstdint>

#include "common/logging.h"

namespace sbhbm {

#if defined(__SIZEOF_INT128__)

/** Precomputed reciprocal of a fixed divisor d >= 1. */
class FastDivider
{
  public:
    explicit FastDivider(uint64_t d) : d_(d)
    {
        sbhbm_assert(d >= 1, "division by zero");
        if ((d & (d - 1)) == 0) {
            // Power of two (including 1): plain shift, no multiply.
            magic_ = 0;
            shift_ = log2Floor(d);
            add_ = false;
            return;
        }
        const unsigned floor_log = log2Floor(d);
        // proposed_m = floor(2^(64 + floor_log) / d), rem the remainder.
        const auto num = static_cast<unsigned __int128>(1)
                         << (64 + floor_log);
        auto proposed_m = static_cast<uint64_t>(num / d);
        const auto rem = static_cast<uint64_t>(num % d);
        const uint64_t e = d - rem;
        if (e < (uint64_t{1} << floor_log)) {
            // Magic rounds up without overflowing 64 bits.
            shift_ = floor_log;
            add_ = false;
        } else {
            // Need the extra bit: q = (((x - hi) >> 1) + hi) >> shift.
            proposed_m += proposed_m;
            const uint64_t twice_rem = rem + rem;
            if (twice_rem >= d || twice_rem < rem)
                proposed_m += 1;
            shift_ = floor_log;
            add_ = true;
        }
        magic_ = proposed_m + 1;
    }

    uint64_t divisor() const { return d_; }

    /** @return x / divisor(). */
    uint64_t
    divide(uint64_t x) const
    {
        if (magic_ == 0)
            return x >> shift_; // power-of-two divisor
        const uint64_t hi = static_cast<uint64_t>(
            (static_cast<unsigned __int128>(x) * magic_) >> 64);
        if (add_) {
            const uint64_t t = ((x - hi) >> 1) + hi;
            return t >> shift_;
        }
        return hi >> shift_;
    }

  private:
    static unsigned
    log2Floor(uint64_t v)
    {
        unsigned r = 0;
        while (v >>= 1)
            ++r;
        return r;
    }

    uint64_t d_;
    uint64_t magic_ = 0;
    unsigned shift_ = 0;
    bool add_ = false;
};

#else // no __int128: plain division (correct, just slower)

class FastDivider
{
  public:
    explicit FastDivider(uint64_t d) : d_(d)
    {
        sbhbm_assert(d >= 1, "division by zero");
    }

    uint64_t divisor() const { return d_; }
    uint64_t divide(uint64_t x) const { return x / d_; }

  private:
    uint64_t d_;
};

#endif // __SIZEOF_INT128__

} // namespace sbhbm

#endif // SBHBM_COMMON_FAST_DIVIDE_H
