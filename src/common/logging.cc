#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sbhbm {

namespace {

std::atomic<bool> g_quiet{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kInform: return "info";
      case LogLevel::kWarn:   return "warn";
      case LogLevel::kFatal:  return "fatal";
      case LogLevel::kPanic:  return "panic";
    }
    return "?";
}

} // namespace

void
setQuietLogging(bool quiet)
{
    g_quiet.store(quiet, std::memory_order_relaxed);
}

bool
quietLogging()
{
    return g_quiet.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line, const char *func,
           const char *fmt, ...)
{
    if (level == LogLevel::kInform && quietLogging())
        return;

    FILE *out = (level == LogLevel::kInform) ? stdout : stderr;
    std::fprintf(out, "[%s] ", levelName(level));

    va_list args;
    va_start(args, fmt);
    std::vfprintf(out, fmt, args);
    va_end(args);

    if (level == LogLevel::kPanic || level == LogLevel::kFatal)
        std::fprintf(out, " (%s:%d in %s)", file, line, func);
    std::fprintf(out, "\n");
    std::fflush(out);

    if (level == LogLevel::kPanic)
        std::abort();
    if (level == LogLevel::kFatal)
        std::exit(1);
}

} // namespace detail

} // namespace sbhbm
