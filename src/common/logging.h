/**
 * @file
 * Status / error reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  - an internal invariant was violated (engine bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something works, but not as well as it should.
 * inform() - plain status output.
 */

#ifndef SBHBM_COMMON_LOGGING_H
#define SBHBM_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace sbhbm {

/** Severity of a log message. */
enum class LogLevel : uint8_t { kInform, kWarn, kFatal, kPanic };

namespace detail {

/** Format and emit one log record; terminates for kFatal / kPanic. */
[[gnu::format(printf, 5, 6)]]
void logMessage(LogLevel level, const char *file, int line,
                const char *func, const char *fmt, ...);

} // namespace detail

/** Silence all inform() output (used by benches to keep stdout clean). */
void setQuietLogging(bool quiet);

/** @return true when inform() output is suppressed. */
bool quietLogging();

} // namespace sbhbm

#define SBHBM_LOG(level, ...)                                                \
    ::sbhbm::detail::logMessage(level, __FILE__, __LINE__, __func__,         \
                                __VA_ARGS__)

/** Unrecoverable internal error: the engine itself is broken. */
#define sbhbm_panic(...) SBHBM_LOG(::sbhbm::LogLevel::kPanic, __VA_ARGS__)

/** Unrecoverable user error: bad configuration or arguments. */
#define sbhbm_fatal(...) SBHBM_LOG(::sbhbm::LogLevel::kFatal, __VA_ARGS__)

/** Something is off but the run can continue. */
#define sbhbm_warn(...) SBHBM_LOG(::sbhbm::LogLevel::kWarn, __VA_ARGS__)

/** Normal operating message. */
#define sbhbm_inform(...) SBHBM_LOG(::sbhbm::LogLevel::kInform, __VA_ARGS__)

/**
 * Panic unless @p cond holds. Always evaluated (not compiled out).
 * Usage: sbhbm_assert(x > 0, "x must be positive, got %d", x);
 */
#define sbhbm_assert(cond, ...)                                              \
    do {                                                                     \
        if (!(cond)) [[unlikely]] {                                          \
            sbhbm_panic("assertion `" #cond "' failed. " __VA_ARGS__);       \
        }                                                                    \
    } while (0)

#endif // SBHBM_COMMON_LOGGING_H
