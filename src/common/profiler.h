/**
 * @file
 * Cheap per-window input statistics for adaptive kernel selection.
 *
 * Estimators sample the data already flowing through the grouping
 * kernels — no extra passes over the full input:
 *
 *  - sortedness: fraction of sampled adjacent pairs in nondecreasing
 *    key order (inversion sampling). 1.0 means "no sampled inversion";
 *    a single sampled inversion *proves* the input unsorted, which
 *    lets kernels skip a full O(n) presort scan that cannot succeed.
 *  - duplicate factor / group cardinality: distinct keys among a
 *    fixed-size sample through a small open-addressing set.
 *
 * Everything here is a pure function of the input bytes — fixed
 * sample positions, no RNG, no clocks — so the same stream produces
 * the same statistics on every run, which is what keeps adaptive
 * decisions (and therefore CostLogs) deterministic per seed.
 *
 * KernelAdapt is the plain hook block kpa::Ctx carries when adaptive
 * execution is on: decision bits written by the runtime policy
 * (src/runtime/adaptive.h) and consumed by the kernels, plus
 * kernel-side observations flowing back. It lives here, not in
 * runtime/, so the kpa layer never depends on the runtime layer.
 */

#ifndef SBHBM_COMMON_PROFILER_H
#define SBHBM_COMMON_PROFILER_H

#include <cstdint>

namespace sbhbm {

/** Exponentially weighted moving average over window statistics. */
struct Ewma
{
    double v = 0;
    bool init = false;

    void
    add(double x, double alpha)
    {
        v = init ? alpha * x + (1.0 - alpha) * v : x;
        init = true;
    }

    double value() const { return v; }
    bool initialized() const { return init; }
};

/** Statistics of one sampled run/window of keyed entries. */
struct WindowStats
{
    uint64_t rows = 0;
    /** Fraction of sampled adjacent pairs with no inversion (0..1). */
    double sortedness = 1.0;
    /** Sampled keys per distinct sampled key (>= 1). */
    double dup_factor = 1.0;
    /** Coarse distinct-group estimate (order of magnitude). */
    double est_groups = 0.0;
};

/** Adjacent pairs / keys inspected per run (fixed, deterministic). */
constexpr uint32_t kProfileSamples = 128;

/**
 * Sampled sortedness of @p n entries with a `.key` member: fraction
 * of kProfileSamples adjacent pairs, taken at a fixed stride, that
 * are in nondecreasing order. Returns 1.0 for n < 2. A result below
 * 1.0 proves the input unsorted; 1.0 only means no sampled pair
 * inverted (a lone inversion between sample points can hide).
 */
template <typename E>
inline double
sampleSortedness(const E *e, uint32_t n)
{
    if (n < 2)
        return 1.0;
    const uint32_t pairs = n - 1;
    const uint32_t samples =
        pairs < kProfileSamples ? pairs : kProfileSamples;
    const uint32_t stride = pairs / samples; // >= 1
    uint32_t ordered = 0;
    for (uint32_t s = 0; s < samples; ++s) {
        const uint32_t i = s * stride;
        ordered += e[i].key <= e[i + 1].key ? 1u : 0u;
    }
    return static_cast<double>(ordered) / static_cast<double>(samples);
}

/**
 * Sample sortedness, duplicate factor and group cardinality of one
 * run in a single pass over at most 2 * kProfileSamples entries.
 *
 * Cardinality estimation is deliberately coarse (the policy only
 * needs the dup regime, not an exact G): when most sampled keys
 * repeat, the sample saturates at the true distinct count and
 * est_groups is the sampled distinct count itself; when the sample is
 * mostly unique, distinct count scales up with n.
 */
template <typename E>
inline WindowStats
sampleRunStats(const E *e, uint32_t n)
{
    WindowStats st;
    st.rows = n;
    if (n == 0)
        return st;
    st.sortedness = sampleSortedness(e, n);

    // Distinct keys among up to kProfileSamples sampled keys, counted
    // through a fixed open-addressing set (load factor <= 1/4, so
    // linear probing always terminates).
    constexpr uint32_t kSlots = 4 * kProfileSamples; // power of two
    uint64_t keys[kSlots];
    bool used[kSlots] = {};
    const uint32_t samples = n < kProfileSamples ? n : kProfileSamples;
    const uint32_t stride = n / samples; // >= 1
    uint32_t distinct = 0;
    for (uint32_t s = 0; s < samples; ++s) {
        const uint64_t key = e[s * stride].key;
        uint32_t idx = static_cast<uint32_t>(
                           key * 0x9e3779b97f4a7c15ULL >> 32)
                       & (kSlots - 1);
        while (used[idx] && keys[idx] != key)
            idx = (idx + 1) & (kSlots - 1);
        if (!used[idx]) {
            used[idx] = true;
            keys[idx] = key;
            ++distinct;
        }
    }
    st.dup_factor = static_cast<double>(samples)
                    / static_cast<double>(distinct);
    // Saturated sample (heavy duplication): the distinct count IS the
    // group estimate. Mostly-unique sample: scale by the sampling
    // ratio.
    if (2 * distinct <= samples) {
        st.est_groups = distinct;
    } else {
        st.est_groups = static_cast<double>(n)
                        * static_cast<double>(distinct)
                        / static_cast<double>(samples);
    }
    return st;
}

/**
 * The adaptive hook block a kpa::Ctx points at (null = adaptation
 * off, kernels take their historical paths). Decision bits are
 * written by the per-operator policy between tasks; observation
 * fields are written by the kernels on the single-threaded control
 * path. Host-side only: nothing here is ever charged to a CostLog,
 * and none of these decisions changes simulated charges.
 */
struct KernelAdapt
{
    // --- decisions (policy-written, kernel-read) -------------------
    /** sortKpa: run the full O(n) presorted check before sorting. */
    bool sort_precheck = true;
    /** partitionByRange: probe unsorted-flagged input for actual
     *  sortedness and take the contiguous-span fast path on a hit. */
    bool partition_sorted_scan = false;

    // --- observations (kernel-written, policy-read) ----------------
    Ewma sort_sortedness{};      //!< sampled sortedness at sort time
    Ewma partition_sortedness{}; //!< sampled sortedness at partition
    double ewma_alpha = 0.4;

    // --- counters (telemetry) --------------------------------------
    uint64_t sorts = 0;
    uint64_t sorts_presorted = 0; //!< precheck hits (sort skipped)
    uint64_t partitions = 0;
    uint64_t partition_scan_hits = 0; //!< scan found sorted input
};

} // namespace sbhbm

#endif // SBHBM_COMMON_PROFILER_H
