/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * The whole engine must be reproducible run-to-run, so every component
 * that needs randomness (workload generators, the demand-balance knob's
 * placement coin flips) owns an Rng seeded explicitly. Never use
 * std::rand or a random_device-seeded engine inside the simulator.
 */

#ifndef SBHBM_COMMON_RNG_H
#define SBHBM_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace sbhbm {

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(uint64_t seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** @return the next 64-bit pseudo-random value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** @return a value uniform in [0, bound); bound must be nonzero. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free mapping is fine here:
        // slight bias of ~2^-64 is irrelevant for workload generation.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** @return a double uniform in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability @p p (clamped to [0,1]). */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /**
     * @return an exponential draw with mean 1 (scale by 1/rate for a
     * Poisson process's inter-arrival gaps). Bounded to ~36.7 by the
     * 2^-53 granularity of nextDouble(), which is fine for arrival
     * modelling.
     */
    double
    nextExp()
    {
        return -std::log(1.0 - nextDouble());
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** splitmix64 step, used only for seeding. */
    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    uint64_t state_[4];
};

} // namespace sbhbm

#endif // SBHBM_COMMON_RNG_H
