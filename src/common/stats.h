/**
 * @file
 * Small statistics helpers: running mean/max gauges and a streaming
 * sample set with percentile queries. Used by the resource monitor and
 * by the benchmark harnesses when reporting peak/average usage.
 */

#ifndef SBHBM_COMMON_STATS_H
#define SBHBM_COMMON_STATS_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace sbhbm {

/** Tracks count / sum / min / max of a stream of double samples. */
class RunningStat
{
  public:
    void
    add(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        ++count_;
    }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        count_ = 0;
        sum_ = min_ = max_ = 0.0;
    }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Stores all samples and answers percentile queries. Intended for
 * low-rate series such as per-window output delays.
 */
class SampleSet
{
  public:
    void
    add(double v)
    {
        samples_.push_back(v);
        sorted_dirty_ = true;
    }

    size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /**
     * @param p percentile in [0, 100].
     * @return the nearest-rank percentile, or 0 when empty.
     *
     * The sorted view is cached between calls and invalidated by
     * add()/clear(): querying p50/p95/p99 back to back sorts once,
     * not three times (the serving reports do exactly that per
     * tenant, and the shard sweep multiplies it).
     */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        sbhbm_assert(p >= 0.0 && p <= 100.0, "p=%f", p);
        if (sorted_dirty_) {
            sorted_ = samples_;
            std::sort(sorted_.begin(), sorted_.end());
            sorted_dirty_ = false;
        }
        const auto rank = static_cast<size_t>(
            p / 100.0 * static_cast<double>(sorted_.size() - 1) + 0.5);
        return sorted_[std::min(rank, sorted_.size() - 1)];
    }

    double
    mean() const
    {
        if (samples_.empty())
            return 0.0;
        double sum = 0.0;
        for (double v : samples_)
            sum += v;
        return sum / static_cast<double>(samples_.size());
    }

    double
    max() const
    {
        if (samples_.empty())
            return 0.0;
        double best = samples_.front();
        for (double v : samples_)
            best = std::max(best, v);
        return best;
    }

    const std::vector<double> &samples() const { return samples_; }

    /**
     * Bucket the samples against ascending upper bounds: result[i]
     * counts samples v with buckets[i-1] < v <= buckets[i] (the first
     * bucket has no lower bound), and one extra overflow slot at the
     * end counts samples above the last bound. Bucket-edge values
     * land in the bucket they bound (v == buckets[i] counts in i).
     */
    std::vector<uint64_t>
    histogram(const std::vector<double> &buckets) const
    {
        for (size_t i = 1; i < buckets.size(); ++i)
            sbhbm_assert(buckets[i - 1] < buckets[i],
                         "histogram buckets must strictly increase");
        std::vector<uint64_t> counts(buckets.size() + 1, 0);
        for (double v : samples_) {
            size_t i = 0;
            while (i < buckets.size() && v > buckets[i])
                ++i;
            ++counts[i];
        }
        return counts;
    }

    void
    clear()
    {
        samples_.clear();
        sorted_.clear();
        sorted_dirty_ = true;
    }

  private:
    std::vector<double> samples_;

    /** Cached ascending view of samples_, rebuilt lazily. */
    mutable std::vector<double> sorted_;
    mutable bool sorted_dirty_ = true;
};

} // namespace sbhbm

#endif // SBHBM_COMMON_STATS_H
