/**
 * @file
 * Move-only type-erased callable (a minimal std::move_only_function,
 * which is C++23; this project targets C++20).
 *
 * Task bodies capture move-only payloads (KPAs are unique_ptrs), so
 * std::function — which requires copy-constructible targets — cannot
 * hold them.
 */

#ifndef SBHBM_COMMON_UNIQUE_FUNCTION_H
#define SBHBM_COMMON_UNIQUE_FUNCTION_H

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/logging.h"

namespace sbhbm {

template <typename Signature>
class UniqueFunction;

/** Move-only callable wrapper for signature R(Args...). */
template <typename R, typename... Args>
class UniqueFunction<R(Args...)>
{
  public:
    UniqueFunction() = default;
    UniqueFunction(std::nullptr_t) {} // NOLINT(google-explicit-constructor)

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, UniqueFunction>
                  && !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    UniqueFunction(F &&f) // NOLINT(google-explicit-constructor)
        : impl_(std::make_unique<Impl<std::decay_t<F>>>(
              std::forward<F>(f)))
    {
    }

    UniqueFunction(UniqueFunction &&) noexcept = default;
    UniqueFunction &operator=(UniqueFunction &&) noexcept = default;
    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    explicit operator bool() const { return impl_ != nullptr; }

    /** Drop the target (and everything it captured). */
    void reset() { impl_.reset(); }

    R
    operator()(Args... args) const
    {
        sbhbm_assert(impl_ != nullptr, "calling empty UniqueFunction");
        return impl_->call(std::forward<Args>(args)...);
    }

  private:
    struct Base
    {
        virtual ~Base() = default;
        virtual R call(Args...) = 0;
    };

    template <typename F>
    struct Impl final : Base
    {
        explicit Impl(F f) : fn(std::move(f)) {}

        R
        call(Args... args) override
        {
            return fn(std::forward<Args>(args)...);
        }

        F fn;
    };

    std::unique_ptr<Base> impl_;
};

} // namespace sbhbm

#endif // SBHBM_COMMON_UNIQUE_FUNCTION_H
