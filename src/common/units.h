/**
 * @file
 * Unit helpers and the virtual-time type shared across the project.
 *
 * All simulated time is kept in integer nanoseconds (SimTime); all
 * capacities in bytes; all rates in bytes per second (double).
 */

#ifndef SBHBM_COMMON_UNITS_H
#define SBHBM_COMMON_UNITS_H

#include <cstdint>

namespace sbhbm {

/** Virtual (simulated) time in nanoseconds. */
using SimTime = uint64_t;

/** Event-time of stream records, also in nanoseconds. */
using EventTime = uint64_t;

constexpr SimTime kNsPerUs = 1000;
constexpr SimTime kNsPerMs = 1000 * 1000;
constexpr SimTime kNsPerSec = 1000ull * 1000 * 1000;

/** A SimTime value meaning "never". */
constexpr SimTime kSimTimeNever = ~0ull;

constexpr uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

/** Decimal giga, used for link and memory bandwidths (GB/s). */
constexpr double operator""_GBps(long double v)
{
    return static_cast<double>(v) * 1e9;
}

constexpr double operator""_GBps(unsigned long long v)
{
    return static_cast<double>(v) * 1e9;
}

/** Gigabits per second, for NIC rates; returns bytes/sec. */
constexpr double operator""_Gbps(unsigned long long v)
{
    return static_cast<double>(v) * 1e9 / 8.0;
}

/** Convert a byte count and a duration to bytes/sec. */
constexpr double
bytesPerSec(uint64_t bytes, SimTime dur_ns)
{
    return dur_ns == 0 ? 0.0
                       : static_cast<double>(bytes) * 1e9
                             / static_cast<double>(dur_ns);
}

/** Convert seconds (double) to SimTime nanoseconds. */
constexpr SimTime
secondsToSim(double sec)
{
    return static_cast<SimTime>(sec * 1e9);
}

/** Convert SimTime nanoseconds to seconds. */
constexpr double
simToSeconds(SimTime t)
{
    return static_cast<double>(t) / 1e9;
}

} // namespace sbhbm

#endif // SBHBM_COMMON_UNITS_H
