/**
 * @file
 * Host worker pool: a blocking fork-join parallelFor over persistent
 * threads.
 *
 * The simulated Executor maps tasks onto *simulated* core slots and
 * runs their functional work on the calling host thread; this pool is
 * the orthogonal host-side primitive that lets a kernel's functional
 * work itself use real cores. Hot kernels (sortKpa's merge rounds,
 * keyed reductions) shard their work across it for wall-clock speed
 * while their simulated CostLog charges — which depend only on input
 * sizes — stay bit-identical to the serial path.
 *
 * Guarantees the kernels rely on:
 *  - parallelFor(shards, fn) returns only after every shard ran
 *    (fork-join barrier), so callers may use results immediately;
 *  - a pool of 1 thread spawns no workers and runs every shard inline
 *    on the caller, byte-for-byte the serial code path;
 *  - a parallelFor issued from inside a running shard (nested
 *    dispatch) executes inline on that thread — never deadlocks on
 *    the pool's own workers;
 *  - exceptions thrown by shards are captured and the one from the
 *    LOWEST shard index is rethrown on the caller after the barrier,
 *    so failure behaviour is deterministic across thread counts and
 *    the pool stays usable afterwards.
 */

#ifndef SBHBM_COMMON_WORKER_POOL_H
#define SBHBM_COMMON_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace sbhbm {

/** Persistent host thread pool with a blocking parallelFor. */
class WorkerPool
{
  public:
    /** Shard body: fn(shard) for shard in [0, shards). */
    using ShardFn = std::function<void(uint32_t)>;

    /**
     * @param threads total workers including the calling thread
     *        (1 = fully inline; n uses n-1 std::threads).
     *
     * Construction is free: the worker threads spawn lazily at the
     * first job that actually forks, so plumbing a pool through
     * every context (one per engine) costs nothing for workloads
     * that never cross a kernel's parallel threshold.
     */
    explicit WorkerPool(unsigned threads) : threads_(threads)
    {
        sbhbm_assert(threads >= 1, "pool needs at least one thread");
    }

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    ~WorkerPool()
    {
        {
            std::lock_guard<std::mutex> lk(mu_);
            stop_ = true;
        }
        start_cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    unsigned threads() const { return threads_; }

    /**
     * Threads a pool should default to: $SBHBM_HOST_THREADS when set
     * (clamped to >= 1), else the hardware concurrency, else 1.
     */
    static unsigned
    defaultThreads()
    {
        if (const char *env = std::getenv("SBHBM_HOST_THREADS")) {
            const long v = std::strtol(env, nullptr, 10);
            return v >= 1 ? static_cast<unsigned>(v) : 1;
        }
        const unsigned hw = std::thread::hardware_concurrency();
        return hw >= 1 ? hw : 1;
    }

    /** True while the calling thread is executing a shard. */
    static bool inShard() { return in_shard_; }

    /**
     * Run fn(0) .. fn(shards-1), all complete on return. Shards must
     * write disjoint data (no ordering between them). Runs inline
     * when the pool has one thread, shards <= 1, or the caller is
     * itself inside a shard (nested dispatch) — with the same
     * failure semantics as the pooled path: every shard runs even if
     * one throws, and the lowest-indexed shard's exception is
     * rethrown after the loop, so side effects and the propagated
     * error are identical at every thread count.
     */
    void
    parallelFor(uint32_t shards, const ShardFn &fn)
    {
        if (shards == 0)
            return;
        if (threads_ == 1 || shards == 1 || in_shard_) {
            std::exception_ptr first = nullptr;
            for (uint32_t s = 0; s < shards; ++s) {
                try {
                    fn(s);
                } catch (...) {
                    if (first == nullptr)
                        first = std::current_exception();
                }
            }
            if (first != nullptr)
                std::rethrow_exception(first);
            return;
        }

        {
            std::lock_guard<std::mutex> lk(mu_);
            if (workers_.empty()) {
                for (unsigned t = 1; t < threads_; ++t)
                    workers_.emplace_back([this] { workerLoop(); });
            }
            job_fn_ = &fn;
            job_shards_ = shards;
            next_shard_.store(0, std::memory_order_relaxed);
            done_shards_.store(0, std::memory_order_relaxed);
            first_error_shard_ = kNoError;
            error_ = nullptr;
            ++generation_;
        }
        start_cv_.notify_all();

        runShards(fn, shards); // the caller is worker 0

        {
            std::unique_lock<std::mutex> lk(mu_);
            // Wait for every shard to finish AND every woken worker
            // to leave the pull loop: a straggler that lost the race
            // for the final shard must not observe the next job's
            // reset counters (or this frame's dead fn reference).
            done_cv_.wait(lk, [this, shards] {
                return done_shards_.load(std::memory_order_acquire)
                           == shards
                       && running_workers_ == 0;
            });
            job_fn_ = nullptr;
            if (error_ != nullptr) {
                std::exception_ptr e = error_;
                error_ = nullptr;
                std::rethrow_exception(e);
            }
        }
    }

  private:
    static constexpr uint32_t kNoError = ~uint32_t{0};

    /** Pull shards until the job's counter is exhausted. */
    void
    runShards(const ShardFn &fn, uint32_t shards)
    {
        in_shard_ = true;
        for (;;) {
            const uint32_t s =
                next_shard_.fetch_add(1, std::memory_order_relaxed);
            if (s >= shards)
                break;
            try {
                fn(s);
            } catch (...) {
                std::lock_guard<std::mutex> lk(mu_);
                // Deterministic winner: keep the lowest shard's error
                // no matter which thread reports first.
                if (s < first_error_shard_) {
                    first_error_shard_ = s;
                    error_ = std::current_exception();
                }
            }
            if (done_shards_.fetch_add(1, std::memory_order_acq_rel) + 1
                == shards) {
                std::lock_guard<std::mutex> lk(mu_);
                done_cv_.notify_all();
            }
        }
        in_shard_ = false;
    }

    void
    workerLoop()
    {
        uint64_t seen = 0;
        for (;;) {
            const ShardFn *fn = nullptr;
            uint32_t shards = 0;
            {
                std::unique_lock<std::mutex> lk(mu_);
                start_cv_.wait(lk, [this, seen] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                fn = job_fn_; // null once the job fully drained
                shards = job_shards_;
                if (fn != nullptr)
                    ++running_workers_;
            }
            if (fn != nullptr) {
                runShards(*fn, shards);
                std::lock_guard<std::mutex> lk(mu_);
                --running_workers_;
                done_cv_.notify_all();
            }
        }
    }

    const unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    bool stop_ = false;
    uint64_t generation_ = 0;
    const ShardFn *job_fn_ = nullptr;
    uint32_t job_shards_ = 0;
    unsigned running_workers_ = 0;
    std::atomic<uint32_t> next_shard_{0};
    std::atomic<uint32_t> done_shards_{0};
    uint32_t first_error_shard_ = kNoError;
    std::exception_ptr error_ = nullptr;

    static thread_local bool in_shard_;
};

// One definition per TU is fine: the flag is queried only by the TU
// that set it (thread_local, inline-variable linkage).
inline thread_local bool WorkerPool::in_shard_ = false;

} // namespace sbhbm

#endif // SBHBM_COMMON_WORKER_POOL_H
