/**
 * @file
 * Workload generators (§6, "Benchmarks").
 *
 * All benchmarks process numeric records. The simple pipelines use
 * three columns (key, value, timestamp), benchmarks 8 and 9 add a
 * secondary key, YSB uses seven columns, and Power Grid replays a
 * synthetic version of the DEBS'14 plug-load schema.
 */

#ifndef SBHBM_INGEST_GENERATOR_H
#define SBHBM_INGEST_GENERATOR_H

#include <memory>

#include "algo/hash_table.h"
#include "columnar/bundle.h"
#include "columnar/record.h"
#include "common/rng.h"
#include "common/units.h"

namespace sbhbm::ingest {

/** Produces the records of one input stream. */
class Generator
{
  public:
    virtual ~Generator() = default;

    /** Columns per record. */
    virtual uint32_t cols() const = 0;

    /** Which column holds the event timestamp. */
    virtual columnar::ColumnId tsCol() const = 0;

    /**
     * Append @p n records to @p b with event timestamps spread over
     * [t0, t1) in arrival order.
     */
    virtual void fill(columnar::Bundle &b, uint32_t n, EventTime t0,
                      EventTime t1) = 0;

    /**
     * Advance the generator past @p n records without producing them,
     * leaving it in exactly the state a fill() of @p n records would
     * have: record i + n of a skipped stream is bit-identical to
     * record i + n of a filled one. Replay-from-checkpoint recovery
     * uses this to fast-forward a restored source to its offset.
     */
    virtual void skipRecords(uint64_t n) = 0;

  protected:
    /** Evenly spaced timestamp for record @p i of @p n in [t0, t1). */
    static EventTime
    tsOf(uint32_t i, uint32_t n, EventTime t0, EventTime t1)
    {
        return t0 + (t1 - t0) * i / n;
    }
};

/**
 * Random key/value records: [key, value, ts] (+ optional secondary
 * key column). Keys and values are uniform 64-bit draws bounded by
 * the configured ranges.
 */
class KvGen : public Generator
{
  public:
    static constexpr columnar::ColumnId kKeyCol = 0;
    static constexpr columnar::ColumnId kValueCol = 1;
    static constexpr columnar::ColumnId kTsCol = 2;
    static constexpr columnar::ColumnId kKey2Col = 3;

    KvGen(uint64_t seed, uint64_t key_range, uint64_t value_range,
          bool secondary_key = false, uint64_t key2_range = 1000)
        : rng_(seed), key_range_(key_range), value_range_(value_range),
          secondary_(secondary_key), key2_range_(key2_range)
    {
    }

    uint32_t cols() const override { return secondary_ ? 4 : 3; }
    columnar::ColumnId tsCol() const override { return kTsCol; }

    void
    fill(columnar::Bundle &b, uint32_t n, EventTime t0,
         EventTime t1) override
    {
        for (uint32_t i = 0; i < n; ++i) {
            uint64_t *row = b.appendRaw();
            row[kKeyCol] = rng_.nextBounded(key_range_);
            row[kValueCol] = rng_.nextBounded(value_range_);
            row[kTsCol] = tsOf(i, n, t0, t1);
            if (secondary_)
                row[kKey2Col] = rng_.nextBounded(key2_range_);
        }
    }

    void
    skipRecords(uint64_t n) override
    {
        const uint64_t draws = secondary_ ? 3 : 2;
        for (uint64_t i = 0; i < n * draws; ++i)
            rng_.next();
    }

  private:
    Rng rng_;
    uint64_t key_range_;
    uint64_t value_range_;
    bool secondary_;
    uint64_t key2_range_;
};

/**
 * Yahoo Streaming Benchmark records (numeric encoding per §6):
 * [ts, user_id, page_id, ad_id, ad_type, event_type, ip].
 * ad_id maps to one of kCampaigns campaigns (10 ads each);
 * event_type is one of 3 values with "view" = 0 being filtered for.
 */
class YsbGen : public Generator
{
  public:
    static constexpr columnar::ColumnId kTsCol = 0;
    static constexpr columnar::ColumnId kUserCol = 1;
    static constexpr columnar::ColumnId kPageCol = 2;
    static constexpr columnar::ColumnId kAdCol = 3;
    static constexpr columnar::ColumnId kAdTypeCol = 4;
    static constexpr columnar::ColumnId kEventTypeCol = 5;
    static constexpr columnar::ColumnId kIpCol = 6;

    static constexpr uint64_t kCampaigns = 100;
    static constexpr uint64_t kAdsPerCampaign = 10;
    static constexpr uint64_t kEventTypes = 3;
    static constexpr uint64_t kViewEvent = 0;

    explicit YsbGen(uint64_t seed) : rng_(seed) {}

    uint32_t cols() const override { return 7; }
    columnar::ColumnId tsCol() const override { return kTsCol; }

    void
    fill(columnar::Bundle &b, uint32_t n, EventTime t0,
         EventTime t1) override
    {
        for (uint32_t i = 0; i < n; ++i) {
            uint64_t *row = b.appendRaw();
            row[kTsCol] = tsOf(i, n, t0, t1);
            row[kUserCol] = rng_.next();
            row[kPageCol] = rng_.next();
            row[kAdCol] = rng_.nextBounded(kCampaigns * kAdsPerCampaign);
            row[kAdTypeCol] = rng_.nextBounded(5);
            row[kEventTypeCol] = rng_.nextBounded(kEventTypes);
            row[kIpCol] = rng_.next();
        }
    }

    void
    skipRecords(uint64_t n) override
    {
        for (uint64_t i = 0; i < n * 6; ++i)
            rng_.next();
    }

    /** The external ad_id -> campaign_id table (small, HBM). */
    static std::shared_ptr<algo::HashTable<uint64_t>>
    campaignTable()
    {
        auto t = std::make_shared<algo::HashTable<uint64_t>>(
            kCampaigns * kAdsPerCampaign);
        for (uint64_t ad = 0; ad < kCampaigns * kAdsPerCampaign; ++ad)
            t->findOrInsert(ad) = ad / kAdsPerCampaign;
        return t;
    }

  private:
    Rng rng_;
};

/**
 * Synthetic DEBS'14 power-grid stream: [plug_gid, load, ts, house].
 * Plug loads are noisy per-plug baselines, so some plugs are
 * consistently above the global average — the houses that own them
 * are what the query surfaces.
 */
class PowerGridGen : public Generator
{
  public:
    static constexpr columnar::ColumnId kPlugCol = 0;
    static constexpr columnar::ColumnId kLoadCol = 1;
    static constexpr columnar::ColumnId kTsCol = 2;
    static constexpr columnar::ColumnId kHouseCol = 3;

    /**
     * @param houses          number of houses.
     * @param plugs_per_house plugs in each house.
     */
    PowerGridGen(uint64_t seed, uint64_t houses = 40,
                 uint64_t plugs_per_house = 25)
        : rng_(seed), houses_(houses), plugs_per_house_(plugs_per_house)
    {
    }

    uint32_t cols() const override { return 4; }
    columnar::ColumnId tsCol() const override { return kTsCol; }

    void
    fill(columnar::Bundle &b, uint32_t n, EventTime t0,
         EventTime t1) override
    {
        const uint64_t total_plugs = houses_ * plugs_per_house_;
        for (uint32_t i = 0; i < n; ++i) {
            uint64_t *row = b.appendRaw();
            const uint64_t plug = rng_.nextBounded(total_plugs);
            // Per-plug baseline: deterministic in the plug id, so
            // high-load plugs are stable across the stream.
            const uint64_t base = algo::hashKey(plug) % 200;
            row[kPlugCol] = plug;
            row[kLoadCol] = base + rng_.nextBounded(20);
            row[kTsCol] = tsOf(i, n, t0, t1);
            row[kHouseCol] = plug / plugs_per_house_;
        }
    }

    void
    skipRecords(uint64_t n) override
    {
        for (uint64_t i = 0; i < n * 2; ++i)
            rng_.next();
    }

  private:
    Rng rng_;
    uint64_t houses_;
    uint64_t plugs_per_house_;
};

} // namespace sbhbm::ingest

#endif // SBHBM_INGEST_GENERATOR_H
