/**
 * @file
 * Ingestion-format parsers (Fig 11): JSON, protocol-buffers-style
 * varint wire format, and delimited text strings.
 *
 * Each codec is a real encoder/decoder pair over numeric records
 * (functionally round-trip tested); the benchmark charges each
 * parsed record the calibrated per-record CPU cost of the format
 * (sim/cost_model.h) to reproduce the relative parsing throughputs
 * the paper measures on KNL and X56.
 */

#ifndef SBHBM_INGEST_PARSE_PARSERS_H
#define SBHBM_INGEST_PARSE_PARSERS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace sbhbm::ingest::parse {

/** Field names used when encoding YSB-like records as JSON. */
inline const char *const kFieldNames[] = {
    "ts", "user_id", "page_id", "ad_id", "ad_type", "event_type", "ip",
};
constexpr uint32_t kMaxFields = 7;

// -------------------------------------------------------------------
// JSON (human-readable; slowest to parse)
// -------------------------------------------------------------------

/** Encode one record as a flat JSON object of numeric fields. */
inline void
encodeJson(const uint64_t *row, uint32_t cols, std::string &out)
{
    sbhbm_assert(cols <= kMaxFields, "too many fields: %u", cols);
    out.push_back('{');
    for (uint32_t c = 0; c < cols; ++c) {
        if (c > 0)
            out.push_back(',');
        out.push_back('"');
        out.append(kFieldNames[c]);
        out.append("\":");
        out.append(std::to_string(row[c]));
    }
    out.append("}\n");
}

/**
 * Parse one JSON object from @p p; fields must be flat numeric.
 * @return pointer past the parsed object, or nullptr on malformed
 *         input. Values land in @p row in field order.
 */
inline const char *
parseJson(const char *p, const char *end, uint64_t *row, uint32_t cols)
{
    auto skip_ws = [&] {
        while (p < end && (*p == ' ' || *p == '\n' || *p == '\t'))
            ++p;
    };
    skip_ws();
    if (p >= end || *p != '{')
        return nullptr;
    ++p;
    for (uint32_t c = 0; c < cols; ++c) {
        skip_ws();
        if (p >= end || *p != '"')
            return nullptr;
        ++p;
        while (p < end && *p != '"') // field name (validated by order)
            ++p;
        if (p >= end)
            return nullptr;
        ++p;
        skip_ws();
        if (p >= end || *p != ':')
            return nullptr;
        ++p;
        skip_ws();
        uint64_t v = 0;
        if (p >= end || *p < '0' || *p > '9')
            return nullptr;
        while (p < end && *p >= '0' && *p <= '9')
            v = v * 10 + static_cast<uint64_t>(*p++ - '0');
        row[c] = v;
        skip_ws();
        if (c + 1 < cols) {
            if (p >= end || *p != ',')
                return nullptr;
            ++p;
        }
    }
    skip_ws();
    if (p >= end || *p != '}')
        return nullptr;
    return p + 1;
}

// -------------------------------------------------------------------
// Protocol-buffers-style varint wire format
// -------------------------------------------------------------------

/** Append a base-128 varint. */
inline void
encodeVarint(uint64_t v, std::vector<uint8_t> &out)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

/** Encode one record: per field, a tag byte (field#, wire type 0). */
inline void
encodeProto(const uint64_t *row, uint32_t cols, std::vector<uint8_t> &out)
{
    for (uint32_t c = 0; c < cols; ++c) {
        out.push_back(static_cast<uint8_t>(((c + 1) << 3) | 0));
        encodeVarint(row[c], out);
    }
}

/**
 * Decode one record of @p cols varint fields.
 * @return pointer past the record, or nullptr on malformed input.
 */
inline const uint8_t *
parseProto(const uint8_t *p, const uint8_t *end, uint64_t *row,
           uint32_t cols)
{
    for (uint32_t c = 0; c < cols; ++c) {
        if (p >= end)
            return nullptr;
        const uint8_t tag = *p++;
        const uint32_t field = tag >> 3;
        if (field != c + 1 || (tag & 7) != 0)
            return nullptr;
        uint64_t v = 0;
        int shift = 0;
        while (p < end) {
            const uint8_t byte = *p++;
            v |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if ((byte & 0x80) == 0)
                break;
            shift += 7;
            if (shift >= 64)
                return nullptr;
        }
        row[c] = v;
    }
    return p;
}

// -------------------------------------------------------------------
// Delimited text strings (fastest: string-to-uint64 per field)
// -------------------------------------------------------------------

/** Encode one record as "v0|v1|...|vN\n". */
inline void
encodeText(const uint64_t *row, uint32_t cols, std::string &out)
{
    for (uint32_t c = 0; c < cols; ++c) {
        if (c > 0)
            out.push_back('|');
        out.append(std::to_string(row[c]));
    }
    out.push_back('\n');
}

/**
 * Parse one '|'-delimited line of @p cols unsigned integers.
 * @return pointer past the newline, or nullptr on malformed input.
 */
inline const char *
parseText(const char *p, const char *end, uint64_t *row, uint32_t cols)
{
    for (uint32_t c = 0; c < cols; ++c) {
        if (p >= end || *p < '0' || *p > '9')
            return nullptr;
        uint64_t v = 0;
        while (p < end && *p >= '0' && *p <= '9')
            v = v * 10 + static_cast<uint64_t>(*p++ - '0');
        row[c] = v;
        if (c + 1 < cols) {
            if (p >= end || *p != '|')
                return nullptr;
            ++p;
        }
    }
    if (p >= end || *p != '\n')
        return nullptr;
    return p + 1;
}

} // namespace sbhbm::ingest::parse

#endif // SBHBM_INGEST_PARSE_PARSERS_H
