/**
 * @file
 * Data ingress (paper §6, "Data ingress").
 *
 * A Source models the Sender machine + NIC: bundles of records arrive
 * paced by the NIC's payload bandwidth (40 Gb/s RDMA or 10 GbE
 * ZeroMQ). The RDMA path delivers into pre-allocated bundles with no
 * copy; the ZeroMQ path charges an ingestion copy per bundle. The
 * source stops pulling while the engine is back-pressured (paper §5:
 * "StreamBox-HBM dynamically starts or stops pulling data from data
 * source according to current resource utilization").
 *
 * Event time == delivery time: records are stamped as they arrive, so
 * watermarks follow the stream with no artificial skew. Fig 10b's
 * delayed watermarks are reproduced with bundles_per_watermark.
 */

#ifndef SBHBM_INGEST_SOURCE_H
#define SBHBM_INGEST_SOURCE_H

#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "ingest/generator.h"
#include "pipeline/operator.h"
#include "pipeline/pipeline.h"
#include "runtime/engine.h"
#include "sim/cost_model.h"

namespace sbhbm::ingest {

using runtime::Engine;

/** Ingestion configuration. */
struct SourceConfig
{
    /** NIC payload bandwidth, bytes/sec. */
    double nic_bw = 5e9; // 40 Gb/s RDMA

    /** ZeroMQ-style ingestion: copy records into bundles on arrival. */
    bool copy_at_ingest = false;

    /** Records per bundle. */
    uint32_t bundle_records = 100000;

    /** Stop after this many records. */
    uint64_t total_records = 1000000;

    /**
     * Offered record rate (records/sec); 0 means NIC-limited (the
     * sender pushes as fast as the link allows).
     */
    double offered_rate = 0;

    /**
     * Watermark cadence: 0 emits a watermark at every window
     * boundary; k > 0 emits one every k bundles (Fig 10b sweeps
     * this to delay window closure).
     */
    uint32_t bundles_per_watermark = 0;

    /**
     * Open-loop Poisson arrivals: bundle gaps become exponential
     * draws around the offered-rate spacing instead of deterministic
     * ticks, modelling bursty user traffic (the serving layer's load
     * driver). Requires offered_rate > 0; the NIC gap still bounds
     * each draw from below. Deterministic given arrival_seed.
     */
    bool poisson_arrivals = false;
    uint64_t arrival_seed = 1;

    /**
     * Logical event time: stamp record i of the stream at
     * i / offered_rate seconds instead of its delivery time. Delivery
     * *pacing* is unchanged (NIC, back-pressure, Poisson gaps); only
     * the timestamps written into records become a pure function of
     * stream position. That is what makes replay exact: a restored
     * source re-delivering records [k, n) produces bit-identical
     * bundles, window assignments and watermarks no matter when the
     * replay happens. Requires offered_rate > 0. Off by default —
     * every pre-fault-tolerance run keeps delivery-time stamping.
     */
    bool logical_time = false;

    /**
     * Start the stream at this record offset: the generator is
     * fast-forwarded past the prefix and, under logical time, the
     * clock starts at the offset's timestamp. total_records still
     * counts the records *this* source delivers (the recovery layer
     * sets it to the remainder). Replay-from-checkpoint recovery.
     */
    uint64_t start_record = 0;
};

/** Simulated sender + NIC + ingestion loop. */
class Source
{
  public:
    Source(Engine &eng, pipeline::Pipeline &pipe, Generator &gen,
           pipeline::Operator *sink, SourceConfig cfg, int sink_port = 0)
        : eng_(eng), pipe_(pipe), gen_(gen), sink_(sink), cfg_(cfg),
          sink_port_(sink_port), stream_(pipe.streamId()),
          arrival_rng_(cfg.arrival_seed)
    {
        sbhbm_assert(sink != nullptr, "source needs a sink operator");
        sbhbm_assert(cfg_.nic_bw > 0, "NIC bandwidth must be positive");
        sbhbm_assert(!cfg_.poisson_arrivals || cfg_.offered_rate > 0,
                     "poisson arrivals need an offered rate");
        sbhbm_assert(!cfg_.logical_time || cfg_.offered_rate > 0,
                     "logical event time needs an offered rate");
        sbhbm_assert(cfg_.start_record == 0 || cfg_.logical_time,
                     "replay offsets need logical event time");
    }

    Source(const Source &) = delete;
    Source &operator=(const Source &) = delete;

    /** Begin ingesting at the current virtual time. */
    void
    start()
    {
        sbhbm_assert(!started_, "source started twice");
        started_ = true;
        if (cfg_.start_record > 0)
            gen_.skipRecords(cfg_.start_record);
        last_delivery_ = cfg_.logical_time ? logicalTs(cfg_.start_record)
                                           : eng_.machine().now();
        scheduleNext();
    }

    uint64_t recordsIngested() const { return records_ingested_; }
    uint64_t bundlesIngested() const { return bundles_ingested_; }
    bool finished() const { return finished_; }

    /** Records consumed from the stream but dropped (shed/faults). */
    uint64_t recordsShed() const { return records_shed_; }

    /** Bundle-sized drops consumed by shedding so far. */
    uint64_t bundlesShed() const { return bundles_shed_; }

    /** Stream offset this source started replaying from. */
    uint64_t startRecord() const { return cfg_.start_record; }

    /**
     * Absolute stream position: records of the underlying stream
     * consumed so far, including the replay offset and shed records.
     * This is the offset a checkpoint stores and a restored source
     * passes as start_record.
     */
    uint64_t
    streamPosition() const
    {
        return cfg_.start_record + records_ingested_ + records_shed_;
    }

    /** Highest watermark emitted downstream so far. */
    EventTime emittedWatermark() const { return emitted_wm_; }

    /** Event timestamps are a pure function of stream position. */
    bool logicalTime() const { return cfg_.logical_time; }

    /**
     * Stop the stream early: cap total_records at what has already
     * been delivered, so the source drains naturally — the next
     * scheduling decision sees end-of-stream and emits the final
     * watermark, closing every open window. The serving layer uses
     * this to hand a session off to another shard (drain here,
     * restart the remainder there); a bundle already in flight still
     * lands and is counted, keeping records conservation exact.
     */
    void truncate() { cfg_.total_records = records_ingested_ + records_shed_; }

    /** Records the stream was configured to deliver in total. */
    uint64_t totalRecords() const { return cfg_.total_records; }

    // ---------------------------------------------------------------
    // Fault-tolerance controls (checkpoint quiesce + injected faults).
    // ---------------------------------------------------------------

    /**
     * Pause delivery (checkpoint quiesce). Already-scheduled
     * deliveries still land; once deliveryIdle() reports true the
     * ingestion stage is empty and no further records will move until
     * resume().
     */
    void pause() { paused_ = true; }

    /** Resume a paused source. */
    void
    resume()
    {
        if (!paused_)
            return;
        paused_ = false;
        if (parked_) {
            parked_ = false;
            ingest_wait_ns_ +=
                eng_.machine().now() - parked_since_;
            if (!halted_)
                scheduleNext();
        }
    }

    /**
     * Stop this source forever (its shard crashed). Unlike truncate()
     * it never emits the final watermark — the stream did not end, it
     * died; the recovery layer replays it elsewhere.
     */
    void
    halt()
    {
        halted_ = true;
        paused_ = false;
    }

    bool halted() const { return halted_; }

    /**
     * True when no delivery is scheduled or in flight and every
     * delivered bundle was forwarded downstream — together with an
     * idle executor stream this is full quiescence.
     */
    bool
    deliveryIdle() const
    {
        return !delivery_pending_ && ready_.empty()
               && next_forward_seq_ == next_deliver_seq_;
    }

    /** Injected fault: deliver nothing until @p until (virtual time). */
    void
    stallUntil(SimTime until)
    {
        stalled_until_ = std::max(stalled_until_, until);
    }

    /** Injected fault: shed the next @p n bundles. */
    void dropBundles(uint64_t n) { drop_bundles_ += n; }

    /**
     * SLA-aware load shedding: while set, arriving bundles are
     * consumed from the stream but dropped (counted in
     * recordsShed()), relieving memory/compute pressure at the price
     * of lossy windows. The serving layer flips this on sessions with
     * SLA headroom while their engine is in allocation distress.
     */
    void setShedding(bool on) { shedding_ = on; }

    /** One ingestion checkpoint: cumulative records at a sim time. */
    struct Checkpoint
    {
        SimTime t;
        uint64_t records;
    };

    /**
     * Per-bundle ingestion checkpoints. The slope of the middle of
     * this series is the *sustained* ingestion rate: under
     * back-pressure the source paces to the engine's service rate, so
     * excluding the initial burst (in-flight budget filling) and the
     * final drain gives the steady-state throughput the paper plots.
     */
    const std::vector<Checkpoint> &checkpoints() const { return marks_; }

    /**
     * Sustained records/sec over the [lo, hi] fraction of the run.
     * The default skips the first 60%: before back-pressure engages,
     * the source bursts at NIC rate while the in-flight budget fills,
     * which is not the steady state.
     */
    double
    sustainedRate(double lo = 0.6, double hi = 0.98) const
    {
        if (marks_.size() < 4)
            return finished_at_ > 0
                       ? static_cast<double>(records_ingested_)
                             / simToSeconds(finished_at_)
                       : 0.0;
        const size_t i0 = static_cast<size_t>(
            lo * static_cast<double>(marks_.size() - 1));
        const size_t i1 = static_cast<size_t>(
            hi * static_cast<double>(marks_.size() - 1));
        const Checkpoint &a = marks_[i0];
        const Checkpoint &b = marks_[std::max(i1, i0 + 1)];
        const double dt = simToSeconds(b.t - a.t);
        return dt > 0
                   ? static_cast<double>(b.records - a.records) / dt
                   : 0.0;
    }

    /** Simulated time at which the final watermark was delivered. */
    SimTime finishedAt() const { return finished_at_; }

    /**
     * Cumulative virtual ns this source spent not delivering for
     * reasons outside the pipeline's compute: injected stalls,
     * back-pressure episodes, and checkpoint-quiesce pauses. The
     * ingest-wait component of SLA attribution.
     */
    uint64_t ingestWaitNs() const { return ingest_wait_ns_; }

    /** Callback invoked once all records (and the final wm) are in. */
    void onFinished(std::function<void()> fn) { on_finished_ = std::move(fn); }

  private:
    /** Records consumed from the stream so far (delivered or shed). */
    uint64_t consumed() const { return records_ingested_ + records_shed_; }

    /** Logical timestamp of absolute stream position @p pos. */
    EventTime
    logicalTs(uint64_t pos) const
    {
        return static_cast<EventTime>(static_cast<double>(pos) * 1e9
                                      / cfg_.offered_rate);
    }

    void
    scheduleNext()
    {
        if (halted_)
            return;
        if (paused_) {
            parked_ = true;
            parked_since_ = eng_.machine().now();
            return;
        }
        if (consumed() >= cfg_.total_records) {
            all_delivered_ = true;
            // finish() fires from forward() once the ingestion stage
            // drains; handle the empty-stream edge case here.
            if (next_forward_seq_ == next_deliver_seq_)
                finish();
            return;
        }
        // Injected ingest stall: the sender goes dark until the
        // deadline. Watermarks may still advance over the gap (no
        // data can arrive before what was already sent).
        if (stalled_until_ > eng_.machine().now()) {
            const SimTime now = eng_.machine().now();
            const SimTime until = stalled_until_;
            // Re-entry at the deadline only adds later extensions, so
            // an extended stall never double-counts.
            ingest_wait_ns_ += until - now;
            if (obs::Telemetry *t = eng_.telemetry()) {
                t->trace.instant(now, eng_.telemetryShard(), stream_,
                                 "ingest", "ingest_stall",
                                 {{"until_us", until / 1000}});
            }
            advanceIdleWatermark();
            eng_.machine().at(until, [this] { scheduleNext(); });
            return;
        }
        // While the pipeline lags (late output — or no output yet, so
        // lateness cannot be judged) the in-flight budget tightens to
        // the soft cap: backlog stays around a window's worth and
        // ingestion paces itself to the engine's service rate. A
        // pipeline that keeps up gets the full budget.
        const bool conservative =
            outputTooLate() || pipe_.windowsExternalized() == 0;
        const bool over = conservative ? eng_.softBackpressured(stream_)
                                       : eng_.backpressured(stream_);
        if (over) {
            // Poll again shortly; the sender buffers meanwhile. Guard
            // against a stall that can never clear: if the engine has
            // been back-pressured for many window lengths, the
            // in-flight budget is too small to ever close a window
            // (every held bundle waits on a watermark only we can
            // emit) — a configuration error, not a transient.
            const SimTime now = eng_.machine().now();
            if (backpressured_since_ == 0) {
                backpressured_since_ = now;
                if (obs::Telemetry *t = eng_.telemetry()) {
                    t->trace.instant(now, eng_.telemetryShard(),
                                     stream_, "ingest",
                                     "backpressure");
                }
            }
            const SimTime limit =
                std::max<SimTime>(100 * pipe_.windows().width,
                                  10 * kNsPerSec);
            if (now - backpressured_since_ > limit) {
                // Structured wedge diagnostic: name the stuck stream,
                // what it holds, and how far the watermark lags the
                // window it is waiting for — enough to size the
                // budget without re-running under a debugger.
                const auto &spec = pipe_.windows();
                const columnar::WindowId oldest = pipe_.targetWindow();
                const SimTime gap =
                    spec.end(oldest) > emitted_wm_
                        ? spec.end(oldest) - emitted_wm_
                        : 0;
                sbhbm_fatal(
                    "ingestion wedged: stream %u back-pressured for "
                    "%.1f s holding %u in-flight bundles "
                    "(per-stream budget, engine cap %u); oldest open "
                    "window %llu needs watermark %.3f ms but the "
                    "source has only emitted %.3f ms (gap %.3f ms) — "
                    "max_inflight_bundles cannot cover one window; "
                    "raise it or shrink the window",
                    stream_, simToSeconds(now - backpressured_since_),
                    eng_.inflightBundles(stream_),
                    eng_.config().max_inflight_bundles,
                    (unsigned long long)oldest,
                    static_cast<double>(spec.end(oldest)) / kNsPerMs,
                    static_cast<double>(emitted_wm_) / kNsPerMs,
                    static_cast<double>(gap) / kNsPerMs);
            }
            // While the sender is paused no record with an earlier
            // timestamp can ever arrive (event time == delivery
            // time), so the watermark may advance to "now" — exactly
            // the periodic watermarks real sources emit when idle.
            // Without this, a throttled pipeline could never close
            // the window it is being throttled for.
            advanceIdleWatermark();
            eng_.machine().after(kNsPerMs, [this] { scheduleNext(); });
            return;
        }
        if (backpressured_since_ != 0) {
            ingest_wait_ns_ +=
                eng_.machine().now() - backpressured_since_;
            backpressured_since_ = 0;
        }

        const auto n = static_cast<uint32_t>(
            std::min<uint64_t>(cfg_.bundle_records,
                               cfg_.total_records - consumed()));
        const uint64_t bytes = uint64_t{n} * gen_.cols() * sizeof(uint64_t);
        double dt_sec = static_cast<double>(bytes) / cfg_.nic_bw;
        if (cfg_.offered_rate > 0) {
            double gap = static_cast<double>(n) / cfg_.offered_rate;
            if (cfg_.poisson_arrivals)
                gap *= arrival_rng_.nextExp();
            dt_sec = std::max(dt_sec, gap);
        }
        delivery_pending_ = true;
        eng_.machine().after(secondsToSim(dt_sec),
                             [this, n] { deliver(n); });
    }

    /**
     * Delay-based throttle (paper §5: the engine "dynamically starts
     * or stops pulling data from data source"): stop pulling while
     * the oldest unexternalized window is already running late, so a
     * slower-than-ingress pipeline settles at its service rate
     * instead of queueing unboundedly toward the delay target.
     */
    bool
    outputTooLate() const
    {
        if (eng_.inflightBundles(stream_) == 0)
            return false; // nothing queued; lag cannot be our fault
        const auto &spec = pipe_.windows();
        const SimTime deadline =
            spec.end(pipe_.targetWindow())
            + std::min<SimTime>(
                  static_cast<SimTime>(
                      0.8
                      * static_cast<double>(eng_.config().target_delay)),
                  3 * spec.width);
        return eng_.machine().now() > deadline;
    }

    void
    deliver(uint32_t n)
    {
        delivery_pending_ = false;
        if (halted_)
            return;
        const SimTime now = eng_.machine().now();
        const EventTime t0 = last_delivery_;
        const EventTime t1 = cfg_.logical_time
                                 ? logicalTs(cfg_.start_record
                                             + consumed() + n)
                                 : now;

        // Shedding (injected drops, or distress-mode load shedding):
        // consume the records from the stream without materializing
        // them. The generator still advances n records, so replay and
        // later bundles stay bit-identical to their stream position;
        // watermark progress follows, so windows close (with less
        // data — lossy by design, and counted).
        if (drop_bundles_ > 0 || shedding_) {
            if (drop_bundles_ > 0)
                --drop_bundles_;
            shed(n, t1);
            return;
        }

        columnar::Bundle *b = nullptr;
        try {
            b = columnar::Bundle::create(eng_.memory(), gen_.cols(), n);
        } catch (const mem::AllocFailure &) {
            // Ingest allocation failed (injected OOM or genuine
            // exhaustion under typed-error mode): this bundle is shed
            // and the engine's distress backoff decides what happens
            // to the ones after it.
            shed(n, t1);
            return;
        }
        sbhbm_assert(last_delivery_ >= emitted_wm_,
                     "source would violate its own watermark");
        gen_.fill(*b, n, t0, t1);
        last_delivery_ = t1;
        records_ingested_ += n;
        ++bundles_ingested_;
        marks_.push_back(Checkpoint{now, records_ingested_});

        eng_.noteBundleIn(stream_);
        // The bundle can legitimately outlive this Source: operators
        // retain window state (KPAs pinning bundles) until pipeline
        // teardown, and sources are destroyed first. The release hook
        // must therefore not dereference the source — capture the
        // engine and stream by value. (The engine outlives every
        // pipeline object by construction.)
        b->setOnDestroy([eng = &eng_, stream = stream_] {
            eng->noteBundleOut(stream);
        });

        auto handle = columnar::BundleHandle::adopt(b);
        const EventTime min_ts = handle->row(0)[gen_.tsCol()];
        const EventTime end_ts = t1;
        const uint64_t seq = next_deliver_seq_++;

        // The NIC keeps streaming while ingestion bookkeeping runs.
        scheduleNext();

        if (cfg_.copy_at_ingest) {
            // ZeroMQ path: one ingestion-copy task per bundle (read
            // the message, write the bundle), then hand downstream.
            const uint64_t bytes = handle->dataBytes();
            eng_.exec().spawn(
                runtime::ImpactTag::kHigh,
                [bytes, n](sim::CostLog &log) {
                    log.seq(sim::Tier::kDram, 2 * bytes);
                    log.cpu(sim::cost::kIngestNsPerBundle
                            + 2.0 * static_cast<double>(n));
                },
                [this, seq, handle, min_ts, end_ts]() mutable {
                    forward(seq, std::move(handle), min_ts, end_ts);
                },
                stream_);
        } else {
            // RDMA path: pre-allocated bundle, no copy; just the
            // bookkeeping cost.
            eng_.exec().spawn(
                runtime::ImpactTag::kHigh,
                [](sim::CostLog &log) {
                    log.cpu(sim::cost::kIngestNsPerBundle);
                },
                [this, seq, handle, min_ts, end_ts]() mutable {
                    forward(seq, std::move(handle), min_ts, end_ts);
                },
                stream_);
        }
    }

    /** Consume @p n records from the stream without delivering them. */
    void
    shed(uint32_t n, EventTime t1)
    {
        gen_.skipRecords(n);
        records_shed_ += n;
        ++bundles_shed_;
        last_delivery_ = std::max(last_delivery_, t1);
        // Watermark progress over the hole — but only when nothing is
        // still inside the ingestion stage (a watermark must not
        // overtake a bundle awaiting forward()).
        if (ready_.empty() && next_forward_seq_ == next_deliver_seq_)
            maybeEmitWatermark(last_delivery_);
        scheduleNext();
    }

    /**
     * Hand bundles downstream strictly in NIC order, so a watermark
     * can never overtake a bundle still in the ingestion stage.
     */
    void
    forward(uint64_t seq, columnar::BundleHandle handle, EventTime min_ts,
            EventTime end_ts)
    {
        ready_.emplace(seq, Ready{std::move(handle), min_ts, end_ts});
        while (!ready_.empty()
               && ready_.begin()->first == next_forward_seq_) {
            Ready r = std::move(ready_.begin()->second);
            ready_.erase(ready_.begin());
            ++next_forward_seq_;
            ++bundles_forwarded_;
            sink_->receive(
                pipeline::Msg::ofBundle(std::move(r.handle), r.min_ts),
                sink_port_);
            maybeEmitWatermark(r.end_ts);
        }
        if (all_delivered_ && ready_.empty()
            && next_forward_seq_ == next_deliver_seq_) {
            finish();
        }
    }

    /** Watermark progress while the sender is paused. */
    void
    advanceIdleWatermark()
    {
        // Only once every delivered bundle has been forwarded (a
        // watermark must not overtake a bundle inside the ingestion
        // stage), and only in boundary-watermark mode: delayed
        // watermarks (Fig 10b) must stay delayed.
        if (cfg_.bundles_per_watermark > 0)
            return;
        if (!ready_.empty() || next_forward_seq_ != next_deliver_seq_)
            return;
        if (cfg_.logical_time) {
            // Logical clocks advance with stream position, not wall
            // time: everything up to the current position is final.
            maybeEmitWatermark(last_delivery_);
            return;
        }
        const SimTime now = eng_.machine().now();
        maybeEmitWatermark(now);
        // Records delivered after the stall must be stamped after the
        // watermark just emitted: advance the generator's time base
        // past the idle gap (no data arrived during it).
        last_delivery_ = std::max(last_delivery_, now);
    }

    /** @param up_to all forwarded records have timestamps < up_to. */
    void
    maybeEmitWatermark(EventTime up_to)
    {
        if (cfg_.bundles_per_watermark > 0) {
            if (bundles_forwarded_ - last_wm_bundle_
                >= cfg_.bundles_per_watermark) {
                last_wm_bundle_ = bundles_forwarded_;
                emitWatermark(up_to);
            }
            return;
        }
        // Default: watermark at every crossed window boundary.
        const auto &spec = pipe_.windows();
        const columnar::WindowId w = spec.windowOf(up_to);
        if (w > last_wm_window_) {
            last_wm_window_ = w;
            emitWatermark(spec.start(w));
        }
    }

    void
    emitWatermark(EventTime ts)
    {
        if (ts == 0)
            return;
        emitted_wm_ = std::max(emitted_wm_, ts);
        sink_->receiveWatermark(columnar::Watermark{ts}, sink_port_);
    }

    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;
        finished_at_ = eng_.machine().now();
        // Final watermark: past the end of the last touched window so
        // every open window closes and drains.
        const auto &spec = pipe_.windows();
        emitWatermark(spec.end(spec.windowOf(last_delivery_)) + 1);
        if (on_finished_)
            on_finished_();
    }

    Engine &eng_;
    pipeline::Pipeline &pipe_;
    Generator &gen_;
    pipeline::Operator *sink_;
    SourceConfig cfg_;
    int sink_port_;
    runtime::StreamId stream_;
    Rng arrival_rng_;

    bool started_ = false;
    bool finished_ = false;
    bool all_delivered_ = false;
    bool paused_ = false;
    bool parked_ = false;
    bool halted_ = false;
    bool shedding_ = false;
    bool delivery_pending_ = false;
    SimTime stalled_until_ = 0;
    uint64_t drop_bundles_ = 0;
    uint64_t records_shed_ = 0;
    uint64_t bundles_shed_ = 0;
    SimTime finished_at_ = 0;
    SimTime last_delivery_ = 0;
    SimTime backpressured_since_ = 0;
    SimTime parked_since_ = 0;
    uint64_t ingest_wait_ns_ = 0;
    EventTime emitted_wm_ = 0;
    struct Ready
    {
        columnar::BundleHandle handle;
        EventTime min_ts;
        EventTime end_ts;
    };

    uint64_t records_ingested_ = 0;
    uint64_t bundles_ingested_ = 0;
    std::vector<Checkpoint> marks_;
    uint64_t next_deliver_seq_ = 0;
    uint64_t next_forward_seq_ = 0;
    uint64_t bundles_forwarded_ = 0;
    std::map<uint64_t, Ready> ready_;
    uint64_t last_wm_bundle_ = 0;
    columnar::WindowId last_wm_window_ = 0;
    std::function<void()> on_finished_;
};

} // namespace sbhbm::ingest

#endif // SBHBM_INGEST_SOURCE_H
