/**
 * @file
 * Key Pointer Array (paper §4.1): the only data structure
 * StreamBox-HBM places in HBM.
 *
 * A KPA is a contiguous sequence of 16-byte key/pointer pairs plus:
 *  - the identity of the resident column its keys replicate,
 *  - a sorted flag (grouping primitives require/maintain sortedness),
 *  - a list of source bundles it references. Each KPA holds one
 *    reference per distinct source bundle; bundles are reclaimed when
 *    their reference count drops to zero (paper §5.1).
 */

#ifndef SBHBM_KPA_KPA_H
#define SBHBM_KPA_KPA_H

#include <algorithm>
#include <memory>
#include <vector>

#include "columnar/bundle.h"
#include "columnar/record.h"
#include "common/logging.h"
#include "mem/hybrid_memory.h"

namespace sbhbm::kpa {

using columnar::Bundle;
using columnar::BundleHandle;
using columnar::ColumnId;
using columnar::KpEntry;

class Kpa;
using KpaPtr = std::unique_ptr<Kpa>;

/** Where a new KPA should be allocated (decided by the runtime). */
struct Placement
{
    mem::Tier tier = mem::Tier::kHbm;
    bool urgent = false;

    /** Owning stream (tenant), for per-stream occupancy accounting. */
    uint32_t stream = 0;

    /**
     * Grouping-state bytes per entry relative to a 16-byte pair: 1.0
     * for real KPAs; record_bytes/16 when grouping full records (the
     * NoKPA ablation), whose window state is whole rows — which is
     * what blows the cache-mode working set past HBM capacity.
     */
    double entry_scale = 1.0;
};

/** A Key Pointer Array. */
class Kpa
{
  public:
    /**
     * Allocate a KPA with room for @p capacity entries.
     * The granted tier may be DRAM even when HBM was requested
     * (capacity spill, paper §5).
     */
    static KpaPtr
    create(mem::HybridMemory &hm, uint32_t capacity, Placement place)
    {
        return KpaPtr(new Kpa(hm, capacity, place));
    }

    Kpa(const Kpa &) = delete;
    Kpa &operator=(const Kpa &) = delete;

    ~Kpa() { hm_.free(block_); }

    KpEntry *entries() { return static_cast<KpEntry *>(block_.ptr); }
    const KpEntry *
    entries() const
    {
        return static_cast<const KpEntry *>(block_.ptr);
    }

    KpEntry &
    at(uint32_t i)
    {
        sbhbm_assert(i < size_, "KPA index %u out of %u", i, size_);
        return entries()[i];
    }

    const KpEntry &
    at(uint32_t i) const
    {
        sbhbm_assert(i < size_, "KPA index %u out of %u", i, size_);
        return entries()[i];
    }

    uint32_t size() const { return size_; }
    uint32_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }

    /** Bytes of entry data (16 per entry). */
    uint64_t bytes() const { return uint64_t{size_} * sizeof(KpEntry); }

    /** Tier the entries actually live on. */
    mem::Tier tier() const { return block_.tier; }

    /** Size-class bytes this KPA charges its tier's gauge. */
    uint64_t chargedBytes() const { return block_.charged_bytes; }

    /**
     * Bytes of the backing allocation — what a migration actually
     * moves. Differs from bytes() by unused capacity and, in the
     * NoKPA ablation, by the entry_scale factor (grouping state is
     * whole records, not 16-byte pairs).
     */
    uint64_t allocatedBytes() const { return block_.bytes; }

    /**
     * Move the entries to tier @p t (the pressure director's demotion
     * path). Capacity re-accounting is exact: the charged size-class
     * bytes leave the old tier's gauge and land on the new one.
     * Idempotent when already on @p t; false (KPA untouched) when the
     * destination cannot take the block. The caller charges the
     * migration traffic to its CostLog.
     */
    bool
    migrate(mem::Tier t)
    {
        if (block_.tier == t)
            return true;
        if (!hm_.migrate(block_, t))
            return false;
        ++touch_gen_;
        return true;
    }

    /**
     * Touch generation: a counter bumped by every mutation (append,
     * bulk commit, sort-flag change, migration). Incremental
     * checkpointing keys on it — a run whose generation is unchanged
     * since the last snapshot need not be copied again. It is the
     * same access-tracking direction the roadmap's PML-style
     * working-set estimation needs, kept deliberately cheap: one
     * counter increment on mutation paths, nothing on reads.
     */
    uint64_t touchGen() const { return touch_gen_; }

    /** Append one entry (invalidates the sorted flag). */
    void
    push(uint64_t key, uint64_t *row)
    {
        sbhbm_assert(size_ < capacity_, "KPA overflow");
        entries()[size_++] = KpEntry{key, row};
        sorted_ = false;
        ++touch_gen_;
    }

    /**
     * Set the logical size after entries were written directly into
     * entries() (bulk kernels like merge). Caller must have filled
     * exactly @p n entries.
     */
    void
    setSizeUnsafe(uint32_t n)
    {
        sbhbm_assert(n <= capacity_, "size %u beyond capacity %u", n,
                     capacity_);
        size_ = n;
        ++touch_gen_;
    }

    /**
     * Bulk-append cursor: hot loops write entries here directly and
     * commit once, instead of paying push()'s assert + sorted-flag
     * store per element. At most capacity() - size() entries may be
     * written before commitAppend().
     */
    KpEntry *appendCursor() { return entries() + size_; }

    /**
     * Commit @p n entries written at appendCursor(). Invalidates the
     * sorted flag exactly like n push() calls would: any nonzero
     * append clears it, a zero-length commit leaves it untouched.
     */
    void
    commitAppend(uint32_t n)
    {
        sbhbm_assert(uint64_t{size_} + n <= capacity_,
                     "KPA overflow: %u + %u beyond %u", size_, n,
                     capacity_);
        size_ += n;
        if (n > 0) {
            sorted_ = false;
            ++touch_gen_;
        }
    }

    /** The column the resident keys replicate; kNoColumn if derived. */
    ColumnId residentColumn() const { return resident_col_; }
    void setResidentColumn(ColumnId c) { resident_col_ = c; }

    bool sorted() const { return sorted_; }

    void
    setSorted(bool s)
    {
        if (sorted_ != s)
            ++touch_gen_;
        sorted_ = s;
    }

    /**
     * Link a source bundle (takes a reference unless already linked).
     * Paper §5.1: "it adds a link pointing to R if one does not exist
     * and increments the reference count".
     */
    void
    addSource(Bundle *b)
    {
        for (const auto &h : sources_)
            if (h.get() == b)
                return;
        sources_.push_back(BundleHandle::share(b));
    }

    /**
     * Inherit all of @p other's source links (merge / partition
     * outputs reference everything their inputs did).
     */
    void
    adoptSourcesFrom(const Kpa &other)
    {
        for (const auto &h : other.sources_)
            addSource(h.get());
    }

    const std::vector<BundleHandle> &sources() const { return sources_; }

    /**
     * Number of columns of the underlying full records. Panics when
     * the KPA references no bundle (nothing to dereference).
     */
    uint32_t
    recordCols() const
    {
        sbhbm_assert(!sources_.empty(), "KPA has no source bundles");
        return sources_.front()->cols();
    }

  private:
    Kpa(mem::HybridMemory &hm, uint32_t capacity, Placement place)
        : hm_(hm),
          block_(hm.alloc(
              std::max<uint64_t>(
                  static_cast<uint64_t>(
                      static_cast<double>(uint64_t{capacity}
                                          * sizeof(KpEntry))
                      * std::max(place.entry_scale, 1.0)),
                  sizeof(KpEntry)),
              place.tier, place.urgent, place.stream)),
          capacity_(capacity)
    {
    }

    mem::HybridMemory &hm_;
    mem::Block block_;
    uint32_t capacity_;
    uint32_t size_ = 0;
    uint64_t touch_gen_ = 0;
    ColumnId resident_col_ = columnar::kNoColumn;
    bool sorted_ = false;
    std::vector<BundleHandle> sources_;
};

} // namespace sbhbm::kpa

#endif // SBHBM_KPA_KPA_H
