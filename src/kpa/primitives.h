/**
 * @file
 * The KPA streaming primitives of Table 2.
 *
 * Every primitive does its work functionally on host data *and*
 * charges the simulated cost of the same work to a CostLog:
 *
 *   | primitive    | access pattern charged                        |
 *   |--------------|-----------------------------------------------|
 *   | Extract      | seq read bundle, seq write KPA                |
 *   | Materialize  | seq read KPA, random read records, seq write  |
 *   | KeySwap      | seq r/w KPA, random read records              |
 *   | Sort         | seq r/w KPA per merge pass                    |
 *   | Merge        | seq read both KPAs, seq write output          |
 *   | Join         | seq read both KPAs, random read matches, emit |
 *   | Select       | seq read input, seq write survivors           |
 *   | Partition    | seq read KPA, seq write partitions            |
 *   | Reduce keyed | seq read KPA, random read value columns, emit |
 *   | Reduce unkeyed | seq read bundle, emit                       |
 *
 * All primitives allocate outputs through HybridMemory so placement,
 * capacity pressure and memory-mode translation apply uniformly.
 */

#ifndef SBHBM_KPA_PRIMITIVES_H
#define SBHBM_KPA_PRIMITIVES_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algo/sort.h"
#include "columnar/bundle.h"
#include "common/logging.h"
#include "kpa/kpa.h"
#include "mem/hybrid_memory.h"
#include "sim/cost_model.h"
#include "sim/traffic.h"

namespace sbhbm::kpa {

namespace cost = sim::cost;
using sim::AccessPattern;

/** Execution context every primitive charges against. */
struct Ctx
{
    mem::HybridMemory &hm;
    sim::CostLog &log;

    /**
     * Traffic multiplier applied to KPA-side bytes in grouping
     * primitives. 1.0 for real KPAs (16-byte pairs). The NoKPA
     * ablation (paper §7.3, "StreamBox-HBM Caching NoKPA") groups
     * full records instead: every sort/merge pass moves whole rows,
     * so the engine sets this to record_bytes / 16.
     */
    double group_scale = 1.0;

    /** Scale KPA-side traffic by group_scale. */
    uint64_t
    scaled(uint64_t kpa_bytes) const
    {
        return static_cast<uint64_t>(static_cast<double>(kpa_bytes)
                                     * group_scale);
    }

    /**
     * Charge grouping-kernel time: vectorized on 16-byte pairs; when
     * grouping full records (NoKPA) the kernels degrade to scalar
     * tuple moves, slower by the tuple width and the generic-tuple
     * factor.
     */
    void
    kernel(double vector_ns) const
    {
        if (group_scale == 1.0) {
            log.cpuVector(vector_ns);
        } else {
            log.cpu(vector_ns * group_scale
                    * cost::kGenericTupleFactor);
        }
    }

    /** Propagate the grouping-state scale into a placement. */
    Placement
    place(Placement p) const
    {
        p.entry_scale = group_scale;
        return p;
    }
};

/** Bytes a random access to one full record touches (>= one line). */
inline uint64_t
rowTouchBytes(uint32_t cols)
{
    return std::max<uint64_t>(cost::kLineBytes,
                              uint64_t{cols} * sizeof(uint64_t));
}

// -------------------------------------------------------------------
// Maintenance primitives
// -------------------------------------------------------------------

/**
 * Extract (Table 2): create a new KPA from a record bundle, copying
 * column @p key_col and synthesizing record pointers.
 */
inline KpaPtr
extract(Ctx ctx, Bundle &src, ColumnId key_col, Placement place)
{
    sbhbm_assert(key_col < src.cols(), "key column %u out of %u", key_col,
                 src.cols());
    KpaPtr out = Kpa::create(ctx.hm, src.size(), ctx.place(place));
    for (uint32_t r = 0; r < src.size(); ++r) {
        uint64_t *row = src.row(r);
        out->push(row[key_col], row);
    }
    out->setResidentColumn(key_col);
    out->setSorted(src.size() <= 1);
    out->addSource(&src);

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  src.dataBytes());
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(out->bytes()));
    ctx.kernel(cost::kExtractNsPerRec * src.size());
    return out;
}

/**
 * KeySwap (Table 2): replace the resident keys with nonresident
 * column @p new_col, dereferencing each record pointer (random).
 */
inline void
keySwap(Ctx ctx, Kpa &k, ColumnId new_col)
{
    if (k.residentColumn() == new_col)
        return;
    KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        e[i].key = e[i].row[new_col];
    k.setResidentColumn(new_col);
    k.setSorted(k.size() <= 1);

    const uint32_t cols = k.empty() ? 0 : k.recordCols();
    ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                  uint64_t{k.size()} * rowTouchBytes(cols));
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

/**
 * Materialize (Table 2): emit a bundle of full records in KPA order.
 */
inline BundleHandle
materialize(Ctx ctx, const Kpa &k)
{
    sbhbm_assert(!k.empty(), "materializing an empty KPA");
    const uint32_t cols = k.recordCols();
    Bundle *out = Bundle::create(ctx.hm, cols, k.size());
    const KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        out->append(e[i].row);

    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  k.bytes());
    ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                  uint64_t{k.size()} * rowTouchBytes(cols));
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  out->dataBytes());
    ctx.kernel(cost::kSwapNsPerRec * k.size());
    return BundleHandle::adopt(out);
}

/**
 * Rewrite resident keys in place (e.g. the external join of YSB maps
 * ad_id -> campaign_id without touching full records).
 */
template <typename KeyFn>
inline void
updateKeysInPlace(Ctx ctx, Kpa &k, KeyFn &&fn)
{
    KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        e[i].key = fn(e[i].key);
    k.setResidentColumn(columnar::kNoColumn); // keys no longer mirror a column
    k.setSorted(k.size() <= 1);
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

/**
 * Write the (possibly dirty) resident keys back to record column
 * @p col (paper §4.3 optimization 2).
 */
inline void
writeBackKeys(Ctx ctx, Kpa &k, ColumnId col)
{
    KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        e[i].row[col] = e[i].key;
    k.setResidentColumn(col);
    const uint32_t cols = k.empty() ? 0 : k.recordCols();
    ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                  uint64_t{k.size()} * rowTouchBytes(cols));
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

// -------------------------------------------------------------------
// Grouping primitives
// -------------------------------------------------------------------

/**
 * Sort (Table 2): merge-sort the KPA by resident key in place.
 * Bitonic block sort plus bottom-up merge passes, all sequential.
 */
inline void
sortKpa(Ctx ctx, Kpa &k)
{
    if (k.sorted())
        return;
    const size_t n = k.size();
    if (n > 1) {
        // Scratch lives on the same tier while the sort runs.
        mem::Block scratch = ctx.hm.alloc(n * sizeof(KpEntry), k.tier());
        algo::sortRun(k.entries(), n, static_cast<KpEntry *>(scratch.ptr));
        ctx.hm.free(scratch);

        const int levels = algo::mergeLevels(n);
        // One block-sort pass plus one pass per merge level, each
        // streaming the KPA in and out (write-allocate included).
        ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                      ctx.scaled(uint64_t(1 + levels)
                                 * cost::kSortBytesPerElemLevel * n));
        ctx.kernel(cost::kBitonicStages * cost::kBitonicNsPerElemStage
                       * static_cast<double>(n)
                   + cost::kMergeNsPerElem * static_cast<double>(n)
                         * levels);
    }
    k.setSorted(true);
}

/**
 * Merge (Table 2): merge two sorted KPAs into a new sorted KPA.
 */
inline KpaPtr
merge(Ctx ctx, const Kpa &a, const Kpa &b, Placement place)
{
    sbhbm_assert(a.sorted() && b.sorted(), "merge requires sorted inputs");
    KpaPtr out = Kpa::create(ctx.hm, a.size() + b.size(),
                             ctx.place(place));
    algo::mergeRuns(a.entries(), a.size(), b.entries(), b.size(),
                    out->entries());
    out->setSizeUnsafe(a.size() + b.size());
    out->setSorted(true);
    out->setResidentColumn(a.residentColumn() == b.residentColumn()
                               ? a.residentColumn()
                               : columnar::kNoColumn);
    out->adoptSourcesFrom(a);
    out->adoptSourcesFrom(b);

    ctx.hm.charge(ctx.log, a.tier(), AccessPattern::kSequential,
                  ctx.scaled(a.bytes()));
    ctx.hm.charge(ctx.log, b.tier(), AccessPattern::kSequential,
                  ctx.scaled(b.bytes()));
    // Output pays write-allocate: RFO read + writeback.
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(2 * out->bytes()));
    ctx.kernel(cost::kMergeNsPerElem
               * static_cast<double>(a.size() + b.size()));
    return out;
}

/**
 * Join (Table 2): sort-merge join two sorted KPAs by resident key.
 * Emits one record per key match: {key, l payload cols, r payload
 * cols}, reading payloads through the record pointers (random).
 */
inline BundleHandle
join(Ctx ctx, const Kpa &l, const Kpa &r,
     const std::vector<ColumnId> &l_cols,
     const std::vector<ColumnId> &r_cols)
{
    sbhbm_assert(l.sorted() && r.sorted(), "join requires sorted inputs");
    const uint32_t out_cols =
        1 + static_cast<uint32_t>(l_cols.size() + r_cols.size());

    // Pass 1 (functional only): gather matches.
    std::vector<std::pair<const KpEntry *, const KpEntry *>> matches;
    const KpEntry *le = l.entries();
    const KpEntry *re = r.entries();
    uint32_t i = 0, j = 0;
    while (i < l.size() && j < r.size()) {
        if (le[i].key < re[j].key) {
            ++i;
        } else if (re[j].key < le[i].key) {
            ++j;
        } else {
            const uint64_t key = le[i].key;
            uint32_t i_end = i;
            while (i_end < l.size() && le[i_end].key == key)
                ++i_end;
            uint32_t j_end = j;
            while (j_end < r.size() && re[j_end].key == key)
                ++j_end;
            for (uint32_t x = i; x < i_end; ++x)
                for (uint32_t y = j; y < j_end; ++y)
                    matches.emplace_back(&le[x], &re[y]);
            i = i_end;
            j = j_end;
        }
    }

    const auto m = static_cast<uint32_t>(matches.size());
    Bundle *out = Bundle::create(ctx.hm, out_cols,
                                 std::max<uint32_t>(m, 1));
    for (const auto &[a, b] : matches) {
        uint64_t *row = out->appendRaw();
        uint32_t c = 0;
        row[c++] = a->key;
        for (ColumnId lc : l_cols)
            row[c++] = a->row[lc];
        for (ColumnId rc : r_cols)
            row[c++] = b->row[rc];
    }

    ctx.hm.charge(ctx.log, l.tier(), AccessPattern::kSequential,
                  ctx.scaled(l.bytes()));
    ctx.hm.charge(ctx.log, r.tier(), AccessPattern::kSequential,
                  ctx.scaled(r.bytes()));
    if (m > 0) {
        const uint32_t lrec = l_cols.empty() ? 0 : l.recordCols();
        const uint32_t rrec = r_cols.empty() ? 0 : r.recordCols();
        uint64_t touch = 0;
        if (!l_cols.empty())
            touch += uint64_t{m} * rowTouchBytes(lrec);
        if (!r_cols.empty())
            touch += uint64_t{m} * rowTouchBytes(rrec);
        ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                      touch);
        ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                      out->dataBytes());
    }
    ctx.log.cpuVector(cost::kMergeNsPerElem
                      * static_cast<double>(l.size() + r.size()));
    ctx.log.cpu(cost::kEmitNsPerRec * m);
    return BundleHandle::adopt(out);
}

/**
 * Select (Table 2): subset a bundle as a KPA with surviving
 * key/pointer pairs, evaluating @p pred over full record rows.
 */
template <typename Pred>
inline KpaPtr
selectFromBundle(Ctx ctx, Bundle &src, ColumnId key_col, Pred &&pred,
                 Placement place)
{
    KpaPtr out = Kpa::create(ctx.hm, src.size(), ctx.place(place));
    for (uint32_t r = 0; r < src.size(); ++r) {
        uint64_t *row = src.row(r);
        if (pred(row))
            out->push(row[key_col], row);
    }
    out->setResidentColumn(key_col);
    out->setSorted(out->size() <= 1);
    out->addSource(&src);

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  src.dataBytes());
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(out->bytes()));
    ctx.kernel(cost::kSelectNsPerRec * src.size());
    return out;
}

/** Select over an existing KPA, filtering on the resident key. */
template <typename Pred>
inline KpaPtr
selectFromKpa(Ctx ctx, const Kpa &src, Pred &&pred, Placement place)
{
    KpaPtr out = Kpa::create(ctx.hm, std::max<uint32_t>(src.size(), 1),
                             ctx.place(place));
    const KpEntry *e = src.entries();
    for (uint32_t i = 0; i < src.size(); ++i)
        if (pred(e[i].key))
            out->push(e[i].key, e[i].row);
    out->setResidentColumn(src.residentColumn());
    out->setSorted(src.sorted());
    out->adoptSourcesFrom(src);

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  ctx.scaled(src.bytes()));
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(out->bytes()));
    ctx.kernel(cost::kSelectNsPerRec * src.size());
    return out;
}

/** One output partition of partitionByRange. */
struct RangePartition
{
    uint64_t range = 0; //!< key / range_width
    KpaPtr part;
};

/**
 * Partition (Table 2): split a KPA by ranges of resident keys
 * (windowing uses the timestamp column as key and the window length
 * as range width). Outputs inherit the input's source links.
 */
inline std::vector<RangePartition>
partitionByRange(Ctx ctx, const Kpa &src, uint64_t range_width,
                 Placement place)
{
    sbhbm_assert(range_width > 0, "zero partition width");
    // Count entries per range.
    std::vector<std::pair<uint64_t, uint32_t>> counts; // (range, n)
    const KpEntry *e = src.entries();
    for (uint32_t i = 0; i < src.size(); ++i) {
        const uint64_t rg = e[i].key / range_width;
        auto it = std::find_if(counts.begin(), counts.end(),
                               [rg](const auto &p) { return p.first == rg; });
        if (it == counts.end())
            counts.emplace_back(rg, 1);
        else
            ++it->second;
    }
    std::sort(counts.begin(), counts.end());

    std::vector<RangePartition> out;
    out.reserve(counts.size());
    for (const auto &[rg, n] : counts) {
        RangePartition rp;
        rp.range = rg;
        rp.part = Kpa::create(ctx.hm, n, ctx.place(place));
        rp.part->setResidentColumn(src.residentColumn());
        rp.part->adoptSourcesFrom(src);
        out.push_back(std::move(rp));
    }
    for (uint32_t i = 0; i < src.size(); ++i) {
        const uint64_t rg = e[i].key / range_width;
        for (auto &rp : out) {
            if (rp.range == rg) {
                rp.part->push(e[i].key, e[i].row);
                break;
            }
        }
    }
    for (auto &rp : out)
        rp.part->setSorted(src.sorted());

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  ctx.scaled(src.bytes()));
    for (const auto &rp : out)
        ctx.hm.charge(ctx.log, rp.part->tier(), AccessPattern::kSequential,
                      ctx.scaled(rp.part->bytes()));
    ctx.kernel(cost::kPartitionNsPerRec * src.size());
    return out;
}

// -------------------------------------------------------------------
// Reduction primitives
// -------------------------------------------------------------------

/**
 * Iterate contiguous key runs of a sorted KPA:
 * fn(key, first_entry, run_length). Functional part of keyed
 * reduction; pair with chargeKeyedReduce.
 */
template <typename Fn>
inline void
forEachKeyRunRange(const Kpa &k, uint32_t lo, uint32_t hi, Fn &&fn)
{
    sbhbm_assert(k.sorted(), "keyed reduction requires a sorted KPA");
    sbhbm_assert(hi <= k.size() && lo <= hi, "bad key-run range");
    sbhbm_assert(lo == 0 || lo == hi
                     || k.entries()[lo].key != k.entries()[lo - 1].key,
                 "range start splits a key run");
    const KpEntry *e = k.entries();
    uint32_t i = lo;
    while (i < hi) {
        uint32_t j = i + 1;
        while (j < hi && e[j].key == e[i].key)
            ++j;
        fn(e[i].key, &e[i], j - i);
        i = j;
    }
}

template <typename Fn>
inline void
forEachKeyRun(const Kpa &k, Fn &&fn)
{
    forEachKeyRunRange(k, 0, k.size(), std::forward<Fn>(fn));
}

/**
 * Split [0, size) into at most @p want ranges whose boundaries fall
 * on key-run boundaries, so per-key reductions can run as parallel
 * shards (paper Fig 4a: "the implementation performs each step in
 * parallel with all available threads"). Returns the cut points,
 * starting with 0 and ending with size.
 */
inline std::vector<uint32_t>
keyRunCuts(const Kpa &k, uint32_t want)
{
    sbhbm_assert(k.sorted(), "cuts need a sorted KPA");
    sbhbm_assert(want >= 1, "need at least one shard");
    const KpEntry *e = k.entries();
    const uint32_t n = k.size();
    std::vector<uint32_t> cuts{0};
    for (uint32_t s = 1; s < want; ++s) {
        uint32_t pos = static_cast<uint32_t>(uint64_t{n} * s / want);
        while (pos < n && pos > 0 && e[pos].key == e[pos - 1].key)
            ++pos;
        if (pos > cuts.back() && pos < n)
            cuts.push_back(pos);
    }
    cuts.push_back(n);
    return cuts;
}

/**
 * Charge a keyed reduction (Table 2 "Keyed"): sequential KPA scan,
 * random dereference of value columns, and output emission.
 *
 * @param values_touched number of nonresident column dereferences
 *        (usually the KPA size; 0 when the reduction needs keys only).
 * @param out_records / out_cols shape of the emitted bundle.
 */
inline void
chargeKeyedReduceRange(Ctx ctx, const Kpa &k, uint64_t scanned,
                       uint64_t values_touched, uint64_t out_records,
                       uint32_t out_cols)
{
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(scanned * sizeof(KpEntry)));
    if (values_touched > 0) {
        const uint32_t cols = k.recordCols();
        ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                      values_touched * rowTouchBytes(cols));
    }
    if (out_records > 0) {
        ctx.hm.charge(ctx.log, mem::Tier::kDram,
                      AccessPattern::kSequential,
                      out_records * out_cols * sizeof(uint64_t));
    }
    ctx.log.cpu(cost::kReduceNsPerRec * static_cast<double>(scanned)
                + cost::kEmitNsPerRec * static_cast<double>(out_records));
}

inline void
chargeKeyedReduce(Ctx ctx, const Kpa &k, uint64_t values_touched,
                  uint64_t out_records, uint32_t out_cols)
{
    chargeKeyedReduceRange(ctx, k, k.size(), values_touched, out_records,
                           out_cols);
}

/**
 * Charge an unkeyed reduction over a full bundle (Table 2
 * "Unkeyed"): one sequential pass over the record data.
 */
inline void
chargeUnkeyedReduce(Ctx ctx, const Bundle &b, uint64_t out_records,
                    uint32_t out_cols)
{
    ctx.hm.charge(ctx.log, b.tier(), AccessPattern::kSequential,
                  b.dataBytes());
    if (out_records > 0) {
        ctx.hm.charge(ctx.log, mem::Tier::kDram,
                      AccessPattern::kSequential,
                      out_records * out_cols * sizeof(uint64_t));
    }
    ctx.log.cpu(cost::kReduceNsPerRec * b.size()
                + cost::kEmitNsPerRec * out_records);
}

} // namespace sbhbm::kpa

#endif // SBHBM_KPA_PRIMITIVES_H
