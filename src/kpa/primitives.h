/**
 * @file
 * The KPA streaming primitives of Table 2.
 *
 * Every primitive does its work functionally on host data *and*
 * charges the simulated cost of the same work to a CostLog:
 *
 *   | primitive    | access pattern charged                        |
 *   |--------------|-----------------------------------------------|
 *   | Extract      | seq read bundle, seq write KPA                |
 *   | Materialize  | seq read KPA, random read records, seq write  |
 *   | KeySwap      | seq r/w KPA, random read records              |
 *   | Sort         | seq r/w KPA per merge pass                    |
 *   | Merge        | seq read both KPAs, seq write output          |
 *   | Join         | seq read both KPAs, random read matches, emit |
 *   | Select       | seq read input, seq write survivors           |
 *   | Partition    | seq read KPA, seq write partitions            |
 *   | Reduce keyed | seq read KPA, random read value columns, emit |
 *   | Reduce unkeyed | seq read bundle, emit                       |
 *
 * All primitives allocate outputs through HybridMemory so placement,
 * capacity pressure and memory-mode translation apply uniformly.
 */

#ifndef SBHBM_KPA_PRIMITIVES_H
#define SBHBM_KPA_PRIMITIVES_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "algo/hash_table.h"
#include "algo/sort.h"
#include "common/fast_divide.h"
#include "columnar/bundle.h"
#include "common/logging.h"
#include "common/profiler.h"
#include "common/worker_pool.h"
#include "kpa/kpa.h"
#include "mem/hybrid_memory.h"
#include "sim/cost_model.h"
#include "sim/traffic.h"

namespace sbhbm::kpa {

namespace cost = sim::cost;
using sim::AccessPattern;

/** Execution context every primitive charges against. */
struct Ctx
{
    mem::HybridMemory &hm;
    sim::CostLog &log;

    /**
     * Traffic multiplier applied to KPA-side bytes in grouping
     * primitives. 1.0 for real KPAs (16-byte pairs). The NoKPA
     * ablation (paper §7.3, "StreamBox-HBM Caching NoKPA") groups
     * full records instead: every sort/merge pass moves whole rows,
     * so the engine sets this to record_bytes / 16.
     */
    double group_scale = 1.0;

    /**
     * Host fork-join pool for the wall-clock of heavy kernels
     * (sortKpa's merge rounds, large merges). Optional: nullptr (or a
     * 1-thread pool) runs the serial code paths. Parallel and serial
     * paths produce bit-identical entries and identical charges, so
     * this never changes simulated results.
     */
    WorkerPool *pool = nullptr;

    /**
     * Adaptive kernel hooks (src/common/profiler.h), installed by
     * pipeline::Operator::makeCtx when the engine's AdaptiveConfig is
     * enabled; nullptr = adaptation off, kernels take their
     * historical paths. The hooked decisions steer host-side work
     * only — every simulated charge depends on sizes alone — so this
     * pointer can never change a CostLog.
     */
    KernelAdapt *adapt = nullptr;

    /** Scale KPA-side traffic by group_scale. */
    uint64_t
    scaled(uint64_t kpa_bytes) const
    {
        return static_cast<uint64_t>(static_cast<double>(kpa_bytes)
                                     * group_scale);
    }

    /**
     * Charge grouping-kernel time: vectorized on 16-byte pairs; when
     * grouping full records (NoKPA) the kernels degrade to scalar
     * tuple moves, slower by the tuple width and the generic-tuple
     * factor.
     */
    void
    kernel(double vector_ns) const
    {
        if (group_scale == 1.0) {
            log.cpuVector(vector_ns);
        } else {
            log.cpu(vector_ns * group_scale
                    * cost::kGenericTupleFactor);
        }
    }

    /** Propagate the grouping-state scale into a placement. */
    Placement
    place(Placement p) const
    {
        p.entry_scale = group_scale;
        return p;
    }
};

/** Bytes a random access to one full record touches (>= one line). */
inline uint64_t
rowTouchBytes(uint32_t cols)
{
    return std::max<uint64_t>(cost::kLineBytes,
                              uint64_t{cols} * sizeof(uint64_t));
}

namespace detail {

/**
 * Entries the batched random-dereference loops look ahead (Cimple-style
 * software pipelining): far enough to overlap several DRAM round trips,
 * close enough that the prefetched lines survive in L1/L2.
 */
constexpr uint32_t kPrefetchAhead = 16;

/**
 * Entries below which partitionByRange's count/fill passes stay
 * serial: forking the host pool costs more than the passes save.
 */
constexpr uint32_t kPartitionParallelMin = 1u << 16;

/** Prefetch hint for a row about to be dereferenced (no-op elsewhere). */
inline void
prefetchRow(const uint64_t *row)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(row);
#else
    (void)row;
#endif
}

/** @return true when @p cols is a nonempty run c, c+1, c+2, ... */
inline bool
isContiguousRun(const std::vector<ColumnId> &cols)
{
    for (size_t i = 1; i < cols.size(); ++i)
        if (cols[i] != cols[i - 1] + 1)
            return false;
    return !cols.empty();
}

/**
 * Two-pointer scan over two sorted KPAs, shared by both join passes
 * so the counted match total and the emitted rows can never disagree.
 * Calls step(i, j) every iteration (prefetch hook) and
 * run(key, i, i_end, j, j_end) for every matching key run.
 */
template <typename StepFn, typename RunFn>
inline void
mergeScanKeyRuns(const KpEntry *le, uint32_t ln, const KpEntry *re,
                 uint32_t rn, StepFn &&step, RunFn &&run)
{
    for (uint32_t i = 0, j = 0; i < ln && j < rn;) {
        step(i, j);
        if (le[i].key < re[j].key) {
            ++i;
        } else if (re[j].key < le[i].key) {
            ++j;
        } else {
            const uint64_t key = le[i].key;
            uint32_t i_end = i + 1;
            while (i_end < ln && le[i_end].key == key)
                ++i_end;
            uint32_t j_end = j + 1;
            while (j_end < rn && re[j_end].key == key)
                ++j_end;
            run(key, i, i_end, j, j_end);
            i = i_end;
            j = j_end;
        }
    }
}

/**
 * Growable open-addressing map from a range id to a dense index in
 * first-appearance order. Backs the single hash pass of
 * partitionByRange; distinct ranges are few (windows), so this stays
 * a handful of cache lines.
 */
class RangeIndex
{
  public:
    RangeIndex() : slots_(64), mask_(63) {}

    /** @return dense index of @p rg, assigning the next one if new. */
    uint32_t
    findOrAssign(uint64_t rg)
    {
        for (;;) {
            size_t idx = algo::hashKey(rg) & mask_;
            while (slots_[idx].used) {
                if (slots_[idx].rg == rg)
                    return slots_[idx].index;
                idx = (idx + 1) & mask_;
            }
            if ((uint64_t{size_} + 1) * 8 > slots_.size() * 7) {
                grow();
                continue; // re-probe in the grown table
            }
            slots_[idx] = Slot{rg, size_, true};
            return size_++;
        }
    }

    uint32_t size() const { return size_; }

  private:
    struct Slot
    {
        uint64_t rg = 0;
        uint32_t index = 0;
        bool used = false;
    };

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        mask_ = slots_.size() - 1;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            size_t idx = algo::hashKey(s.rg) & mask_;
            while (slots_[idx].used)
                idx = (idx + 1) & mask_;
            slots_[idx] = s;
        }
    }

    std::vector<Slot> slots_;
    size_t mask_;
    uint32_t size_ = 0;
};

} // namespace detail

// -------------------------------------------------------------------
// Maintenance primitives
// -------------------------------------------------------------------

/**
 * Extract (Table 2): create a new KPA from a record bundle, copying
 * column @p key_col and synthesizing record pointers.
 */
inline KpaPtr
extract(Ctx ctx, Bundle &src, ColumnId key_col, Placement place)
{
    sbhbm_assert(key_col < src.cols(), "key column %u out of %u", key_col,
                 src.cols());
    const uint32_t n = src.size();
    const uint32_t cols = src.cols();
    KpaPtr out = Kpa::create(ctx.hm, n, ctx.place(place));
    // Single streaming pass: walk the row-major data directly instead
    // of paying row()'s bounds check and push()'s overflow branch per
    // record.
    KpEntry *dst = out->appendCursor();
    uint64_t *row = src.data();
    for (uint32_t r = 0; r < n; ++r, row += cols)
        dst[r] = KpEntry{row[key_col], row};
    out->commitAppend(n);
    out->setResidentColumn(key_col);
    out->setSorted(src.size() <= 1);
    out->addSource(&src);

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  src.dataBytes());
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(out->bytes()));
    ctx.kernel(cost::kExtractNsPerRec * src.size());
    return out;
}

/**
 * KeySwap (Table 2): replace the resident keys with nonresident
 * column @p new_col, dereferencing each record pointer (random).
 */
inline void
keySwap(Ctx ctx, Kpa &k, ColumnId new_col)
{
    if (k.residentColumn() == new_col)
        return;
    KpEntry *e = k.entries();
    const uint32_t n = k.size();
    // Batched pointer chasing: issue the random row loads well ahead
    // of their use so several DRAM misses are in flight at once.
    for (uint32_t i = 0; i < n; ++i) {
        if (i + detail::kPrefetchAhead < n)
            detail::prefetchRow(e[i + detail::kPrefetchAhead].row
                                + new_col);
        e[i].key = e[i].row[new_col];
    }
    k.setResidentColumn(new_col);
    k.setSorted(k.size() <= 1);

    const uint32_t cols = k.empty() ? 0 : k.recordCols();
    ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                  uint64_t{k.size()} * rowTouchBytes(cols));
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

/**
 * Materialize (Table 2): emit a bundle of full records in KPA order.
 */
inline BundleHandle
materialize(Ctx ctx, const Kpa &k)
{
    sbhbm_assert(!k.empty(), "materializing an empty KPA");
    const uint32_t cols = k.recordCols();
    const uint32_t n = k.size();
    Bundle *out = Bundle::create(ctx.hm, cols, n);
    const KpEntry *e = k.entries();
    // Bulk-reserve the output once, then copy whole rows with the
    // random source reads prefetched a batch ahead.
    const uint64_t row_bytes = uint64_t{cols} * sizeof(uint64_t);
    uint64_t *dst = out->appendBlockRaw(n);
    for (uint32_t i = 0; i < n; ++i, dst += cols) {
        if (i + detail::kPrefetchAhead < n)
            detail::prefetchRow(e[i + detail::kPrefetchAhead].row);
        std::memcpy(dst, e[i].row, row_bytes);
    }

    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  k.bytes());
    ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                  uint64_t{k.size()} * rowTouchBytes(cols));
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  out->dataBytes());
    ctx.kernel(cost::kSwapNsPerRec * k.size());
    return BundleHandle::adopt(out);
}

/**
 * Rewrite resident keys in place (e.g. the external join of YSB maps
 * ad_id -> campaign_id without touching full records).
 */
template <typename KeyFn>
inline void
updateKeysInPlace(Ctx ctx, Kpa &k, KeyFn &&fn)
{
    KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        e[i].key = fn(e[i].key);
    k.setResidentColumn(columnar::kNoColumn); // keys no longer mirror a column
    k.setSorted(k.size() <= 1);
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

/**
 * updateKeysInPlace specialized to an external key-value table:
 * every resident key is replaced by table[key] (or kept when
 * absent). The probes run through HashTable::findBatch, so the
 * per-key chain walks overlap their cache misses instead of
 * serializing — same results and identical charges as the generic
 * per-key path.
 */
inline void
updateKeysViaTable(Ctx ctx, Kpa &k, algo::HashTable<uint64_t> &table)
{
    KpEntry *e = k.entries();
    const uint32_t n = k.size();
    // Stack arrays sized for the widest batch; the loop steps by the
    // table's (possibly autotuned) effective width B.
    constexpr uint32_t kMaxB =
        algo::HashTable<uint64_t>::kMaxProbeBatch;
    const uint32_t kB = table.probeBatch();
    uint64_t keys[kMaxB];
    uint64_t *vals[kMaxB];
    for (uint32_t base = 0; base < n; base += kB) {
        const uint32_t b = std::min(kB, n - base);
        for (uint32_t l = 0; l < b; ++l)
            keys[l] = e[base + l].key;
        table.findBatch(keys, b, vals);
        for (uint32_t l = 0; l < b; ++l)
            e[base + l].key = vals[l] != nullptr ? *vals[l] : keys[l];
    }
    k.setResidentColumn(columnar::kNoColumn);
    k.setSorted(k.size() <= 1);
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

/**
 * Write the (possibly dirty) resident keys back to record column
 * @p col (paper §4.3 optimization 2).
 */
inline void
writeBackKeys(Ctx ctx, Kpa &k, ColumnId col)
{
    KpEntry *e = k.entries();
    for (uint32_t i = 0; i < k.size(); ++i)
        e[i].row[col] = e[i].key;
    k.setResidentColumn(col);
    const uint32_t cols = k.empty() ? 0 : k.recordCols();
    ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                  uint64_t{k.size()} * rowTouchBytes(cols));
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(k.bytes()));
    ctx.kernel(cost::kSwapNsPerRec * k.size());
}

// -------------------------------------------------------------------
// Grouping primitives
// -------------------------------------------------------------------

/**
 * Sort (Table 2): merge-sort the KPA by resident key in place.
 * Bitonic block sort plus bottom-up merge passes, all sequential.
 */
inline void
sortKpa(Ctx ctx, Kpa &k)
{
    if (k.sorted())
        return;
    const size_t n = k.size();
    if (n > 1) {
        // Adaptive: skip the scratch allocation and the sort when the
        // entries are already ordered (timestamp-extracted KPAs from
        // in-order streams). The simulated machine still sorts — the
        // charges below depend only on n, never on the host path.
        //
        // With hooks installed, the full O(n) presorted scan is
        // screened first: a sampled inversion *proves* the input
        // unsorted (the scan cannot succeed), and on streams whose
        // sortedness EWMA has collapsed the policy turns the scan off
        // outright. Either way the sort itself runs with its internal
        // recheck disabled — this is the one place that checked.
        bool precheck = true;
        if (ctx.adapt != nullptr) {
            KernelAdapt &a = *ctx.adapt;
            ++a.sorts;
            const double s = sampleSortedness(
                k.entries(), static_cast<uint32_t>(n));
            a.sort_sortedness.add(s, a.ewma_alpha);
            precheck = s >= 1.0 && a.sort_precheck;
        }
        if (precheck && algo::isSortedByKey(k.entries(), n)) {
            if (ctx.adapt != nullptr)
                ++ctx.adapt->sorts_presorted;
        } else {
            // Scratch lives on the same tier while the sort runs.
            mem::Block scratch =
                ctx.hm.alloc(n * sizeof(KpEntry), k.tier());
            if (ctx.pool != nullptr && ctx.pool->threads() > 1) {
                algo::sortRunParallel(
                    k.entries(), n,
                    static_cast<KpEntry *>(scratch.ptr), *ctx.pool,
                    /*precheck=*/false);
            } else {
                algo::sortRun(k.entries(), n,
                              static_cast<KpEntry *>(scratch.ptr),
                              /*precheck=*/false);
            }
            ctx.hm.free(scratch);
        }

        const int levels = algo::mergeLevels(n);
        // One block-sort pass plus one pass per merge level, each
        // streaming the KPA in and out (write-allocate included).
        ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                      ctx.scaled(uint64_t(1 + levels)
                                 * cost::kSortBytesPerElemLevel * n));
        ctx.kernel(cost::kBitonicStages * cost::kBitonicNsPerElemStage
                       * static_cast<double>(n)
                   + cost::kMergeNsPerElem * static_cast<double>(n)
                         * levels);
    }
    k.setSorted(true);
}

/**
 * Sort, hash-scatter variant: establish sortKpa's postcondition (a
 * fully key-sorted KPA) by grouping instead of sorting — one hash
 * pass assigns every entry a dense group id, the G distinct group
 * keys are sorted, and a stable scatter lays the entries out in
 * group-key order. O(n + G log G) against sortKpa's O(n log n): the
 * adaptive grouping policy picks this variant on heavily duplicated
 * streams (G << n), where sorting n entries does n log n work to
 * discover an ordering only G keys wide.
 *
 * Within a key, entries land in arrival order, which differs from
 * the (unstable) bitonic network's order — callers must be
 * value-order-insensitive. Every shipped aggregation is (sum, count,
 * avg, median, topK, uniqueCount, percentile all commute over the
 * run), and the adaptive policy only routes KeyedAggOp streams here.
 *
 * Charges: the hash pass streams the KPA once and pays a random
 * grouping-state probe per entry; the G-key sort is charged exactly
 * as sortKpa charges G entries; the scatter pays the KPA read plus
 * write-allocate on the scratch it permutes into. Deterministic in
 * (n, G) — both functions of the input bytes alone.
 */
inline void
groupSortKpa(Ctx ctx, Kpa &k)
{
    if (k.sorted())
        return;
    const uint32_t n = k.size();
    if (n > 1) {
        KpEntry *e = k.entries();
        // Hash pass: dense group ids in first-appearance order.
        detail::RangeIndex index;
        const auto ids = std::make_unique_for_overwrite<uint32_t[]>(n);
        std::vector<std::pair<uint64_t, uint32_t>> groups; // key, count
        for (uint32_t i = 0; i < n; ++i) {
            const uint32_t d = index.findOrAssign(e[i].key);
            if (d == groups.size())
                groups.emplace_back(e[i].key, 0);
            ++groups[d].second;
            ids[i] = d;
        }
        const auto g = static_cast<uint32_t>(groups.size());

        // Sort the G group keys, not the n entries.
        std::vector<uint32_t> order(g);
        for (uint32_t d = 0; d < g; ++d)
            order[d] = d;
        std::sort(order.begin(), order.end(),
                  [&groups](uint32_t a, uint32_t b) {
                      return groups[a].first < groups[b].first;
                  });

        // Stable scatter through per-group cursors, then copy back.
        mem::Block scratch =
            ctx.hm.alloc(uint64_t{n} * sizeof(KpEntry), k.tier());
        auto *s = static_cast<KpEntry *>(scratch.ptr);
        std::vector<KpEntry *> cursor(g);
        {
            KpEntry *c = s;
            for (const uint32_t d : order) {
                cursor[d] = c;
                c += groups[d].second;
            }
        }
        for (uint32_t i = 0; i < n; ++i)
            *cursor[ids[i]]++ = e[i];
        std::memcpy(e, s, uint64_t{n} * sizeof(KpEntry));
        ctx.hm.free(scratch);

        // Hash pass: stream the KPA, probe grouping state per entry.
        ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                      ctx.scaled(k.bytes()));
        ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kRandom,
                      uint64_t{n} * cost::kLineBytes);
        // Group-key sort: sortKpa's formula over g elements.
        const int levels = algo::mergeLevels(g);
        ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                      ctx.scaled(uint64_t(1 + levels)
                                 * cost::kSortBytesPerElemLevel * g));
        ctx.kernel(cost::kBitonicStages * cost::kBitonicNsPerElemStage
                       * static_cast<double>(g)
                   + cost::kMergeNsPerElem * static_cast<double>(g)
                         * levels);
        // Scatter: read the KPA, write-allocate the permuted copy.
        ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                      ctx.scaled(3 * k.bytes()));
        ctx.log.cpu(cost::kHashProbeNs * static_cast<double>(n));
    }
    k.setSorted(true);
}

/**
 * Merge (Table 2): merge two sorted KPAs into a new sorted KPA.
 */
inline KpaPtr
merge(Ctx ctx, const Kpa &a, const Kpa &b, Placement place)
{
    sbhbm_assert(a.sorted() && b.sorted(), "merge requires sorted inputs");
    KpaPtr out = Kpa::create(ctx.hm, a.size() + b.size(),
                             ctx.place(place));
    if (ctx.pool != nullptr && ctx.pool->threads() > 1) {
        algo::mergeRunsParallel(a.entries(), a.size(), b.entries(),
                                b.size(), out->entries(), *ctx.pool);
    } else {
        algo::mergeRuns(a.entries(), a.size(), b.entries(), b.size(),
                        out->entries());
    }
    out->setSizeUnsafe(a.size() + b.size());
    out->setSorted(true);
    out->setResidentColumn(a.residentColumn() == b.residentColumn()
                               ? a.residentColumn()
                               : columnar::kNoColumn);
    out->adoptSourcesFrom(a);
    out->adoptSourcesFrom(b);

    ctx.hm.charge(ctx.log, a.tier(), AccessPattern::kSequential,
                  ctx.scaled(a.bytes()));
    ctx.hm.charge(ctx.log, b.tier(), AccessPattern::kSequential,
                  ctx.scaled(b.bytes()));
    // Output pays write-allocate: RFO read + writeback.
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(2 * out->bytes()));
    ctx.kernel(cost::kMergeNsPerElem
               * static_cast<double>(a.size() + b.size()));
    return out;
}

/**
 * Join (Table 2): sort-merge join two sorted KPAs by resident key.
 * Emits one record per key match: {key, l payload cols, r payload
 * cols}, reading payloads through the record pointers (random).
 */
inline BundleHandle
join(Ctx ctx, const Kpa &l, const Kpa &r,
     const std::vector<ColumnId> &l_cols,
     const std::vector<ColumnId> &r_cols)
{
    sbhbm_assert(l.sorted() && r.sorted(), "join requires sorted inputs");
    const uint32_t out_cols =
        1 + static_cast<uint32_t>(l_cols.size() + r_cols.size());
    const KpEntry *le = l.entries();
    const KpEntry *re = r.entries();
    const uint32_t ln = l.size();
    const uint32_t rn = r.size();

    // Pass 1: count matches — no intermediate match buffer.
    uint64_t m_wide = 0;
    detail::mergeScanKeyRuns(
        le, ln, re, rn, [](uint32_t, uint32_t) {},
        [&m_wide](uint64_t, uint32_t i, uint32_t i_end, uint32_t j,
                  uint32_t j_end) {
            m_wide += uint64_t{i_end - i} * (j_end - j);
        });
    sbhbm_assert(m_wide <= UINT32_MAX, "join output overflows a bundle");
    const auto m = static_cast<uint32_t>(m_wide);

    // Pass 2: stream rows straight into the exactly-sized bundle.
    Bundle *out = Bundle::create(ctx.hm, out_cols,
                                 std::max<uint32_t>(m, 1));
    if (m > 0) {
        const size_t nl = l_cols.size();
        const size_t nr = r_cols.size();
        const ColumnId *lc = l_cols.data();
        const ColumnId *rc = r_cols.data();
        const bool l_run = detail::isContiguousRun(l_cols);
        const bool r_run = detail::isContiguousRun(r_cols);
        const uint64_t prefix_bytes = (1 + nl) * sizeof(uint64_t);
        uint64_t *dst = out->appendBlockRaw(m);
        detail::mergeScanKeyRuns(
            le, ln, re, rn,
            [&](uint32_t i, uint32_t j) {
                // The payload rows this scan will dereference are
                // known from the sequential KPA entries: issue their
                // random loads a batch ahead so several misses
                // overlap.
                if (nl != 0 && i + detail::kPrefetchAhead < ln)
                    detail::prefetchRow(
                        le[i + detail::kPrefetchAhead].row);
                if (nr != 0 && j + detail::kPrefetchAhead < rn)
                    detail::prefetchRow(
                        re[j + detail::kPrefetchAhead].row);
            },
            [&](uint64_t key, uint32_t i, uint32_t i_end, uint32_t j,
                uint32_t j_end) {
                for (uint32_t x = i; x < i_end; ++x) {
                    // Same rolling batch for the left run's rows.
                    if (nl != 0 && x + detail::kPrefetchAhead < i_end)
                        detail::prefetchRow(
                            le[x + detail::kPrefetchAhead].row);
                    // The {key, left payload} prefix is invariant over
                    // the right run: build it once, then replicate it
                    // with one whole-row memcpy per emitted record.
                    const uint64_t *lrow = le[x].row;
                    const uint64_t *first = dst;
                    dst[0] = key;
                    if (l_run) {
                        std::memcpy(dst + 1, lrow + lc[0],
                                    nl * sizeof(uint64_t));
                    } else {
                        for (size_t c = 0; c < nl; ++c)
                            dst[1 + c] = lrow[lc[c]];
                    }
                    for (uint32_t y = j; y < j_end; ++y) {
                        // Probe-side batching inside long duplicate
                        // runs: the scan hook covers rows only up to
                        // kPrefetchAhead past the scan position, so
                        // the first sweep over a longer right run
                        // would miss serially. Keep a rolling batch
                        // of in-flight row loads during that first
                        // sweep; later sweeps re-touch cached lines.
                        if (x == i && nr != 0
                            && y + detail::kPrefetchAhead < j_end)
                            detail::prefetchRow(
                                re[y + detail::kPrefetchAhead].row);
                        if (dst != first)
                            std::memcpy(dst, first, prefix_bytes);
                        const uint64_t *rrow = re[y].row;
                        if (r_run) {
                            std::memcpy(dst + 1 + nl, rrow + rc[0],
                                        nr * sizeof(uint64_t));
                        } else {
                            for (size_t c = 0; c < nr; ++c)
                                dst[1 + nl + c] = rrow[rc[c]];
                        }
                        dst += out_cols;
                    }
                }
            });
    }

    ctx.hm.charge(ctx.log, l.tier(), AccessPattern::kSequential,
                  ctx.scaled(l.bytes()));
    ctx.hm.charge(ctx.log, r.tier(), AccessPattern::kSequential,
                  ctx.scaled(r.bytes()));
    if (m > 0) {
        const uint32_t lrec = l_cols.empty() ? 0 : l.recordCols();
        const uint32_t rrec = r_cols.empty() ? 0 : r.recordCols();
        uint64_t touch = 0;
        if (!l_cols.empty())
            touch += uint64_t{m} * rowTouchBytes(lrec);
        if (!r_cols.empty())
            touch += uint64_t{m} * rowTouchBytes(rrec);
        ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                      touch);
        ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                      out->dataBytes());
    }
    ctx.log.cpuVector(cost::kMergeNsPerElem
                      * static_cast<double>(l.size() + r.size()));
    ctx.log.cpu(cost::kEmitNsPerRec * m);
    return BundleHandle::adopt(out);
}

/**
 * Select (Table 2): subset a bundle as a KPA with surviving
 * key/pointer pairs, evaluating @p pred over full record rows.
 */
template <typename Pred>
inline KpaPtr
selectFromBundle(Ctx ctx, Bundle &src, ColumnId key_col, Pred &&pred,
                 Placement place)
{
    // Capacity clamps to 1 on empty bundles (matching selectFromKpa)
    // so the output KPA is always usable for later appends.
    const uint32_t n = src.size();
    const uint32_t cols = src.cols();
    KpaPtr out = Kpa::create(ctx.hm, std::max<uint32_t>(n, 1),
                             ctx.place(place));
    KpEntry *dst = out->appendCursor();
    uint32_t kept = 0;
    uint64_t *row = src.data();
    for (uint32_t r = 0; r < n; ++r, row += cols) {
        if (pred(row))
            dst[kept++] = KpEntry{row[key_col], row};
    }
    out->commitAppend(kept);
    out->setResidentColumn(key_col);
    out->setSorted(out->size() <= 1);
    out->addSource(&src);

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  src.dataBytes());
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(out->bytes()));
    ctx.kernel(cost::kSelectNsPerRec * src.size());
    return out;
}

/** Select over an existing KPA, filtering on the resident key. */
template <typename Pred>
inline KpaPtr
selectFromKpa(Ctx ctx, const Kpa &src, Pred &&pred, Placement place)
{
    const uint32_t n = src.size();
    KpaPtr out = Kpa::create(ctx.hm, std::max<uint32_t>(n, 1),
                             ctx.place(place));
    const KpEntry *e = src.entries();
    KpEntry *dst = out->appendCursor();
    uint32_t kept = 0;
    for (uint32_t i = 0; i < n; ++i)
        if (pred(e[i].key))
            dst[kept++] = e[i];
    out->commitAppend(kept);
    out->setResidentColumn(src.residentColumn());
    out->setSorted(src.sorted());
    out->adoptSourcesFrom(src);

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  ctx.scaled(src.bytes()));
    ctx.hm.charge(ctx.log, out->tier(), AccessPattern::kSequential,
                  ctx.scaled(out->bytes()));
    ctx.kernel(cost::kSelectNsPerRec * src.size());
    return out;
}

/** One output partition of partitionByRange. */
struct RangePartition
{
    uint64_t range = 0; //!< key / range_width
    KpaPtr part;
};

/**
 * Partition (Table 2): split a KPA by ranges of resident keys
 * (windowing uses the timestamp column as key and the window length
 * as range width). Outputs inherit the input's source links.
 */
inline std::vector<RangePartition>
partitionByRange(Ctx ctx, const Kpa &src, uint64_t range_width,
                 Placement place)
{
    sbhbm_assert(range_width > 0, "zero partition width");
    const KpEntry *e = src.entries();
    const uint32_t n = src.size();
    std::vector<RangePartition> out;

    auto makePartition = [&](uint64_t rg, uint32_t len) {
        RangePartition rp;
        rp.range = rg;
        rp.part = Kpa::create(ctx.hm, len, ctx.place(place));
        rp.part->setResidentColumn(src.residentColumn());
        rp.part->adoptSourcesFrom(src);
        out.push_back(std::move(rp));
        return out.back().part.get();
    };

    // Adaptive: the sorted() flag is conservative — key-swapped or
    // restored KPAs can be physically ordered while flagged unsorted.
    // When the policy has seen this stream arrive ordered (sortedness
    // EWMA high) it probes: a clean sample justifies the O(n)
    // confirmation scan, and a hit takes the contiguous-span fast
    // path below. Host layout work only — outputs keep the input's
    // *flag* (the trailing setSorted) and every charge depends only
    // on sizes, so downstream behavior and CostLogs are unchanged.
    bool span_layout = src.sorted();
    if (ctx.adapt != nullptr && n > 1) {
        KernelAdapt &a = *ctx.adapt;
        ++a.partitions;
        const double s = sampleSortedness(e, n);
        a.partition_sortedness.add(s, a.ewma_alpha);
        if (!span_layout && a.partition_sorted_scan && s >= 1.0
            && algo::isSortedByKey(e, n)) {
            span_layout = true;
            ++a.partition_scan_hits;
        }
    }

    if (span_layout && n > 0) {
        // Sorted fast path: every range is one contiguous span.
        // Binary-search each range boundary, then bulk-copy the span.
        uint32_t i = 0;
        while (i < n) {
            const uint64_t rg = e[i].key / range_width;
            const KpEntry *end = std::upper_bound(
                e + i, e + n, rg,
                [range_width](uint64_t range, const KpEntry &x) {
                    return range < x.key / range_width;
                });
            const auto len = static_cast<uint32_t>(end - (e + i));
            Kpa *part = makePartition(rg, len);
            std::memcpy(part->appendCursor(), e + i,
                        uint64_t{len} * sizeof(KpEntry));
            part->commitAppend(len);
            i += len;
        }
    } else if (n > 0) {
        // Unsorted. A runtime 64-bit division is a per-element hot
        // cost, so divide by the invariant width via multiply-high
        // (FastDivider), compute every entry's range exactly once,
        // and memo its low 32 bits: when the span check below passes,
        // rg - min_rg < 2^32, so uint32 wrap-around arithmetic on the
        // low bits reproduces the exact span offset at half the memo
        // traffic of full ranges.
        //
        // The memo, count and fill passes shard across the host pool
        // on large inputs. Shards cover contiguous input slices; the
        // fill pass places shard t's elements of a range exactly
        // after shards 0..t-1's (exclusive prefix of per-shard
        // counts), so partitions, their order, and every entry
        // position are bit-identical to the serial passes at any
        // thread count — and the charges below depend only on sizes.
        const FastDivider by_width(range_width);
        const auto rg_lo = std::make_unique_for_overwrite<uint32_t[]>(n);
        uint64_t min_rg = ~uint64_t{0}, max_rg = 0;

        WorkerPool *pool = ctx.pool;
        const uint32_t shards =
            (pool != nullptr && pool->threads() > 1
             && n >= detail::kPartitionParallelMin)
                ? pool->threads()
                : 1;
        auto shard_lo = [n, shards](uint32_t s) {
            return static_cast<uint32_t>(uint64_t{n} * s / shards);
        };

        if (shards > 1) {
            std::vector<uint64_t> mins(shards, ~uint64_t{0});
            std::vector<uint64_t> maxs(shards, 0);
            pool->parallelFor(shards, [&](uint32_t s) {
                uint64_t mn = ~uint64_t{0}, mx = 0;
                const uint32_t hi = shard_lo(s + 1);
                for (uint32_t i = shard_lo(s); i < hi; ++i) {
                    const uint64_t rg = by_width.divide(e[i].key);
                    rg_lo[i] = static_cast<uint32_t>(rg);
                    mn = std::min(mn, rg);
                    mx = std::max(mx, rg);
                }
                mins[s] = mn;
                maxs[s] = mx;
            });
            for (uint32_t s = 0; s < shards; ++s) {
                min_rg = std::min(min_rg, mins[s]);
                max_rg = std::max(max_rg, maxs[s]);
            }
        } else {
            for (uint32_t i = 0; i < n; ++i) {
                const uint64_t rg = by_width.divide(e[i].key);
                rg_lo[i] = static_cast<uint32_t>(rg);
                min_rg = std::min(min_rg, rg);
                max_rg = std::max(max_rg, rg);
            }
        }
        // Gate on extent = span - 1 so the full-keyspace case
        // (max - min == 2^64 - 1) cannot wrap span to 0, and require
        // it to fit 32 bits: the memo only holds low bits, so distinct
        // ranges 2^32 apart would alias onto one partition.
        const uint64_t extent = max_rg - min_rg;
        if (extent <= uint64_t{n} + 1023 && extent < UINT32_MAX) {
            const uint64_t span = extent + 1;
            // Windowing ranges are a dense span: count and scatter
            // through direct-indexed cursor arrays — no hashing.
            const auto min_lo = static_cast<uint32_t>(min_rg);
            std::vector<uint32_t> count_by_rg(span, 0);
            std::vector<std::vector<uint32_t>> shard_counts;
            if (shards > 1) {
                shard_counts.assign(shards,
                                    std::vector<uint32_t>(span, 0));
                pool->parallelFor(shards, [&](uint32_t s) {
                    std::vector<uint32_t> &c = shard_counts[s];
                    const uint32_t hi = shard_lo(s + 1);
                    for (uint32_t i = shard_lo(s); i < hi; ++i)
                        ++c[rg_lo[i] - min_lo];
                });
                // Exclusive prefix across shards per range: shard t's
                // slice of range sp starts at the sum of earlier
                // shards' counts — the serial input order, sliced.
                for (uint64_t sp = 0; sp < span; ++sp) {
                    uint32_t sum = 0;
                    for (uint32_t s = 0; s < shards; ++s) {
                        const uint32_t c = shard_counts[s][sp];
                        shard_counts[s][sp] = sum;
                        sum += c;
                    }
                    count_by_rg[sp] = sum;
                }
            } else {
                for (uint32_t i = 0; i < n; ++i)
                    ++count_by_rg[rg_lo[i] - min_lo];
            }
            std::vector<KpEntry *> cursor(span, nullptr);
            for (uint64_t s = 0; s < span; ++s) {
                if (count_by_rg[s] == 0)
                    continue; // absent range: no partition, as before
                Kpa *part = makePartition(
                    min_rg + s, count_by_rg[s]); // ascending ranges
                cursor[s] = part->appendCursor();
            }
            if (shards > 1) {
                pool->parallelFor(shards, [&](uint32_t s) {
                    std::vector<KpEntry *> cur(span, nullptr);
                    const std::vector<uint32_t> &base = shard_counts[s];
                    for (uint64_t sp = 0; sp < span; ++sp) {
                        if (cursor[sp] != nullptr)
                            cur[sp] = cursor[sp] + base[sp];
                    }
                    const uint32_t hi = shard_lo(s + 1);
                    for (uint32_t i = shard_lo(s); i < hi; ++i)
                        *cur[rg_lo[i] - min_lo]++ = e[i];
                });
            } else {
                for (uint32_t i = 0; i < n; ++i)
                    *cursor[rg_lo[i] - min_lo]++ = e[i];
            }
            for (auto &rp : out)
                rp.part->commitAppend(count_by_rg[rp.range - min_rg]);
        } else {
            // Sparse ranges (rare: more distinct ranges than entries
            // plus slack): one hash pass for per-range counts,
            // overwriting the memo with each entry's dense id (< n,
            // so it fits) to spare the fill pass a divide + probe...
            detail::RangeIndex index;
            std::vector<std::pair<uint64_t, uint32_t>> counts;
            for (uint32_t i = 0; i < n; ++i) {
                const uint64_t rg = by_width.divide(e[i].key);
                const uint32_t d = index.findOrAssign(rg);
                if (d == counts.size())
                    counts.emplace_back(rg, 0);
                ++counts[d].second;
                rg_lo[i] = d;
            }
            // ...partitions in ascending range order, exactly sized...
            std::vector<uint32_t> order(counts.size());
            for (uint32_t d = 0; d < order.size(); ++d)
                order[d] = d;
            std::sort(order.begin(), order.end(),
                      [&counts](uint32_t a, uint32_t b) {
                          return counts[a].first < counts[b].first;
                      });
            std::vector<KpEntry *> cursor(counts.size());
            out.reserve(counts.size());
            for (uint32_t d : order) {
                Kpa *part =
                    makePartition(counts[d].first, counts[d].second);
                cursor[d] = part->appendCursor();
            }
            // ...then one dense-id-memoized fill pass (stable per
            // range).
            for (uint32_t i = 0; i < n; ++i)
                *cursor[rg_lo[i]]++ = e[i];
            for (size_t k = 0; k < out.size(); ++k)
                out[k].part->commitAppend(counts[order[k]].second);
        }
    }
    for (auto &rp : out)
        rp.part->setSorted(src.sorted());

    ctx.hm.charge(ctx.log, src.tier(), AccessPattern::kSequential,
                  ctx.scaled(src.bytes()));
    for (const auto &rp : out)
        ctx.hm.charge(ctx.log, rp.part->tier(), AccessPattern::kSequential,
                      ctx.scaled(rp.part->bytes()));
    ctx.kernel(cost::kPartitionNsPerRec * src.size());
    return out;
}

// -------------------------------------------------------------------
// Reduction primitives
// -------------------------------------------------------------------

/**
 * Iterate contiguous key runs of a sorted KPA:
 * fn(key, first_entry, run_length). Functional part of keyed
 * reduction; pair with chargeKeyedReduce.
 */
template <typename Fn>
inline void
forEachKeyRunRange(const Kpa &k, uint32_t lo, uint32_t hi, Fn &&fn)
{
    sbhbm_assert(k.sorted(), "keyed reduction requires a sorted KPA");
    sbhbm_assert(hi <= k.size() && lo <= hi, "bad key-run range");
    sbhbm_assert(lo == 0 || lo == hi
                     || k.entries()[lo].key != k.entries()[lo - 1].key,
                 "range start splits a key run");
    const KpEntry *e = k.entries();
    uint32_t i = lo;
    while (i < hi) {
        uint32_t j = i + 1;
        while (j < hi && e[j].key == e[i].key)
            ++j;
        fn(e[i].key, &e[i], j - i);
        i = j;
    }
}

template <typename Fn>
inline void
forEachKeyRun(const Kpa &k, Fn &&fn)
{
    forEachKeyRunRange(k, 0, k.size(), std::forward<Fn>(fn));
}

/**
 * Split [0, size) into at most @p want ranges whose boundaries fall
 * on key-run boundaries, so per-key reductions can run as parallel
 * shards (paper Fig 4a: "the implementation performs each step in
 * parallel with all available threads"). Returns the cut points,
 * starting with 0 and ending with size.
 */
inline std::vector<uint32_t>
keyRunCuts(const Kpa &k, uint32_t want)
{
    sbhbm_assert(k.sorted(), "cuts need a sorted KPA");
    sbhbm_assert(want >= 1, "need at least one shard");
    const KpEntry *e = k.entries();
    const uint32_t n = k.size();
    std::vector<uint32_t> cuts{0};
    for (uint32_t s = 1; s < want; ++s) {
        uint32_t pos = static_cast<uint32_t>(uint64_t{n} * s / want);
        while (pos < n && pos > 0 && e[pos].key == e[pos - 1].key)
            ++pos;
        if (pos > cuts.back() && pos < n)
            cuts.push_back(pos);
    }
    cuts.push_back(n);
    return cuts;
}

/**
 * Charge a keyed reduction (Table 2 "Keyed"): sequential KPA scan,
 * random dereference of value columns, and output emission.
 *
 * @param values_touched number of nonresident column dereferences
 *        (usually the KPA size; 0 when the reduction needs keys only).
 * @param out_records / out_cols shape of the emitted bundle.
 */
inline void
chargeKeyedReduceRange(Ctx ctx, const Kpa &k, uint64_t scanned,
                       uint64_t values_touched, uint64_t out_records,
                       uint32_t out_cols)
{
    ctx.hm.charge(ctx.log, k.tier(), AccessPattern::kSequential,
                  ctx.scaled(scanned * sizeof(KpEntry)));
    if (values_touched > 0) {
        const uint32_t cols = k.recordCols();
        ctx.hm.charge(ctx.log, mem::Tier::kDram, AccessPattern::kRandom,
                      values_touched * rowTouchBytes(cols));
    }
    if (out_records > 0) {
        ctx.hm.charge(ctx.log, mem::Tier::kDram,
                      AccessPattern::kSequential,
                      out_records * out_cols * sizeof(uint64_t));
    }
    ctx.log.cpu(cost::kReduceNsPerRec * static_cast<double>(scanned)
                + cost::kEmitNsPerRec * static_cast<double>(out_records));
}

inline void
chargeKeyedReduce(Ctx ctx, const Kpa &k, uint64_t values_touched,
                  uint64_t out_records, uint32_t out_cols)
{
    chargeKeyedReduceRange(ctx, k, k.size(), values_touched, out_records,
                           out_cols);
}

/**
 * Charge an unkeyed reduction over a full bundle (Table 2
 * "Unkeyed"): one sequential pass over the record data.
 */
inline void
chargeUnkeyedReduce(Ctx ctx, const Bundle &b, uint64_t out_records,
                    uint32_t out_cols)
{
    ctx.hm.charge(ctx.log, b.tier(), AccessPattern::kSequential,
                  b.dataBytes());
    if (out_records > 0) {
        ctx.hm.charge(ctx.log, mem::Tier::kDram,
                      AccessPattern::kSequential,
                      out_records * out_cols * sizeof(uint64_t));
    }
    ctx.log.cpu(cost::kReduceNsPerRec * b.size()
                + cost::kEmitNsPerRec * out_records);
}

} // namespace sbhbm::kpa

#endif // SBHBM_KPA_PRIMITIVES_H
