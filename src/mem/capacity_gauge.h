/**
 * @file
 * Capacity accounting for one memory tier.
 *
 * The gauge is what the resource monitor samples ("HBM capacity
 * usage") and what forces KPA spills to DRAM when HBM runs out. A
 * small reservation is carved out for Urgent allocations (tasks on
 * the critical path always get HBM, paper §5).
 */

#ifndef SBHBM_MEM_CAPACITY_GAUGE_H
#define SBHBM_MEM_CAPACITY_GAUGE_H

#include <cstdint>

#include "common/logging.h"

namespace sbhbm::mem {

/** Tracks used/free bytes of a tier with an urgent-only reserve. */
class CapacityGauge
{
  public:
    CapacityGauge() = default;

    /**
     * @param capacity total tier bytes.
     * @param reserve  bytes only urgent allocations may dip into.
     */
    CapacityGauge(uint64_t capacity, uint64_t reserve)
        : capacity_(capacity), reserve_(reserve)
    {
        sbhbm_assert(reserve <= capacity, "reserve exceeds capacity");
    }

    /**
     * Try to account an allocation.
     * @param urgent when true, the urgent reserve is also available.
     * @return true when the allocation fits and was charged.
     */
    bool
    tryReserve(uint64_t bytes, bool urgent)
    {
        // Headroom subtraction, never used_ + bytes: the sum wraps
        // for a huge request and a wrapped sum compares as "fits".
        // used_ can legitimately sit above the non-urgent limit
        // (urgent allocations dip into the reserve), so guard the
        // subtraction too.
        const uint64_t limit = urgent ? capacity_ : capacity_ - reserve_;
        if (used_ > limit || bytes > limit - used_)
            return false;
        used_ += bytes;
        if (used_ > high_water_)
            high_water_ = used_;
        if (used_ > hw_window_)
            hw_window_ = used_;
        return true;
    }

    /** Release previously charged bytes. */
    void
    release(uint64_t bytes)
    {
        sbhbm_assert(bytes <= used_, "releasing more than used");
        used_ -= bytes;
    }

    uint64_t used() const { return used_; }
    uint64_t capacity() const { return capacity_; }
    uint64_t highWater() const { return high_water_; }

    /**
     * Peak usage since the last markHighWater() — a *windowed*
     * high-water. Live-pressure admission samples this instead of
     * used(): a burst that came and went within the window still
     * counts against headroom, while highWater() (monotonic since
     * boot) would never decay and eventually block all admission.
     */
    uint64_t highWaterSinceMark() const { return hw_window_; }

    /** Start a new high-water window at the current usage. */
    void markHighWater() { hw_window_ = used_; }

    /** Fraction of total capacity in use, in [0, 1]. */
    double
    usedFraction() const
    {
        return capacity_ == 0
                   ? 0.0
                   : static_cast<double>(used_)
                         / static_cast<double>(capacity_);
    }

    /** @return true when a non-urgent allocation of @p bytes fits. */
    bool
    hasRoom(uint64_t bytes) const
    {
        // Same overflow-safe headroom form as tryReserve().
        const uint64_t limit = capacity_ - reserve_;
        return used_ <= limit && bytes <= limit - used_;
    }

  private:
    uint64_t capacity_ = 0;
    uint64_t reserve_ = 0;
    uint64_t used_ = 0;
    uint64_t high_water_ = 0;
    uint64_t hw_window_ = 0;
};

} // namespace sbhbm::mem

#endif // SBHBM_MEM_CAPACITY_GAUGE_H
