/**
 * @file
 * The hybrid HBM+DRAM memory system seen by the engine.
 *
 * Responsibilities:
 *  - placement: allocate blocks on a requested tier, spilling to DRAM
 *    when HBM is out of (non-reserved) capacity;
 *  - accounting: per-tier capacity gauges the resource monitor samples;
 *  - traffic charging: translate "this code touched N bytes of that
 *    object" into CostLog flows, honoring the memory mode.
 *
 * Memory modes (paper §6, "flat" vs "cache"):
 *  - kFlat: both tiers addressable; the engine controls placement.
 *  - kCache: HBM is a hardware-managed cache in front of DRAM. All
 *    objects live logically in DRAM; accesses hit HBM with a
 *    working-set-dependent probability and pay DRAM for the misses.
 *  - kDramOnly: HBM disabled (the StreamBox-HBM DRAM ablation).
 */

#ifndef SBHBM_MEM_HYBRID_MEMORY_H
#define SBHBM_MEM_HYBRID_MEMORY_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <utility>

#include "common/logging.h"
#include "mem/capacity_gauge.h"
#include "mem/slab_allocator.h"
#include "sim/machine_config.h"
#include "sim/traffic.h"

namespace sbhbm::mem {

using sim::AccessPattern;
using sim::Tier;

/**
 * Typed allocation failure. Thrown instead of aborting when the owner
 * opted into recoverable exhaustion (setThrowOnExhaustion) — the
 * serving layer's shed path catches it at the task dispatch boundary,
 * counts the task as shed and keeps the pipeline draining. Default
 * behaviour (no opt-in) is still the hard sbhbm_fatal, so every
 * single-pipeline run reproduces the pre-fault-tolerance output.
 */
struct AllocFailure
{
    Tier want = Tier::kDram;   //!< tier the allocation asked for
    uint64_t bytes = 0;        //!< charged size-class bytes requested
    bool injected = false;     //!< fired by fault injection, not capacity
};

/** A placed allocation. */
struct Block
{
    void *ptr = nullptr;
    uint64_t bytes = 0;        //!< requested size
    uint64_t charged_bytes = 0; //!< size-class size charged to the gauge
    Tier tier = Tier::kDram;   //!< tier actually granted
    uint32_t stream = 0;       //!< owning stream (tenant); 0 = default

    explicit operator bool() const { return ptr != nullptr; }
};

/** Hybrid-memory manager: placement, accounting, traffic charging. */
class HybridMemory
{
  public:
    /** Fraction of HBM reserved for Urgent allocations (paper §5). */
    static constexpr double kUrgentReserveFraction = 0.05;

    HybridMemory(const sim::MachineConfig &cfg, sim::MemoryMode mode)
        : cfg_(cfg), mode_(mode)
    {
        const uint64_t hbm_cap =
            (mode == sim::MemoryMode::kFlat && cfg.hasHbm())
                ? cfg.hbm.capacity_bytes
                : 0;
        const auto reserve = static_cast<uint64_t>(
            static_cast<double>(hbm_cap) * kUrgentReserveFraction);
        gauges_[sim::tierIndex(Tier::kHbm)] =
            CapacityGauge(hbm_cap, reserve);
        gauges_[sim::tierIndex(Tier::kDram)] =
            CapacityGauge(cfg.dram.capacity_bytes, 0);
    }

    HybridMemory(const HybridMemory &) = delete;
    HybridMemory &operator=(const HybridMemory &) = delete;

    sim::MemoryMode mode() const { return mode_; }

    /**
     * Allocate @p bytes, preferring tier @p want.
     *
     * In flat mode an HBM request spills to DRAM when HBM is full
     * (paper §5: "When HBM is full, all future KPAs regardless of
     * their performance impact tag are forced to spill to DRAM").
     * In cache / DRAM-only mode everything is DRAM-resident.
     *
     * @param urgent may dip into the HBM urgent reserve.
     * @param stream owning stream (tenant) for per-stream occupancy.
     */
    Block
    alloc(uint64_t bytes, Tier want, bool urgent = false,
          uint32_t stream = 0)
    {
        sbhbm_assert(bytes > 0, "zero-byte allocation");
        Tier tier = want;
        if (mode_ != sim::MemoryMode::kFlat)
            tier = Tier::kDram;

        const uint64_t charged = SlabAllocator::classSize(bytes);
        if (fail_next_allocs_ > 0) {
            // Injected fault: this allocation fails regardless of
            // capacity. The relief hook still runs (an emergency
            // demotion sweep frees HBM for what comes after), but the
            // failing request itself is lost — the caller's shed path
            // decides what that means.
            --fail_next_allocs_;
            ++injected_failures_;
            if (exhaustion_handler_)
                exhaustion_handler_(want, charged);
            if (throw_on_exhaustion_)
                throw AllocFailure{want, charged, /*injected=*/true};
            sbhbm_fatal("injected allocation failure: %llu bytes on %s",
                        (unsigned long long)charged, sim::tierName(want));
        }
        if (tier == Tier::kHbm
            && !mutableGauge(Tier::kHbm).tryReserve(charged, urgent)) {
            tier = Tier::kDram; // spill
        }
        if (tier == Tier::kDram
            && !mutableGauge(Tier::kDram).tryReserve(charged, urgent)) {
            // Genuine exhaustion: give the relief hook one chance to
            // free capacity (emergency demotion of cold state), then
            // retry once before declaring failure.
            if (exhaustion_handler_
                && exhaustion_handler_(Tier::kDram, charged)
                && mutableGauge(Tier::kDram).tryReserve(charged, urgent)) {
                // relieved
            } else if (throw_on_exhaustion_) {
                throw AllocFailure{Tier::kDram, charged};
            } else {
                sbhbm_fatal(
                    "simulated DRAM exhausted: %llu used + %llu",
                    (unsigned long long)gauge(Tier::kDram).used(),
                    (unsigned long long)charged);
            }
        }

        Block b;
        b.ptr = slabs_[sim::tierIndex(tier)].alloc(bytes);
        b.bytes = bytes;
        b.charged_bytes = charged;
        b.tier = tier;
        b.stream = stream;
        chargeStream(stream, tier, charged);
        return b;
    }

    /** Free a block and release its capacity. */
    void
    free(Block &b)
    {
        if (!b)
            return;
        slabs_[sim::tierIndex(b.tier)].free(b.ptr, b.bytes);
        mutableGauge(b.tier).release(b.charged_bytes);
        releaseStream(b.stream, b.tier, b.charged_bytes);
        b = Block{};
    }

    /**
     * Move a live block to tier @p to: reserve capacity there, copy
     * the payload, release the old tier. The charged size-class bytes
     * are conserved exactly — what the source gauge releases is what
     * the destination gauge charged — and per-stream occupancy moves
     * with the block. The memory-control-plane demotion path (KPA
     * HBM -> DRAM under capacity pressure) runs through here.
     *
     * @return true when the block now lives on @p to. Migrating a
     * block already on @p to is an idempotent no-op (true); failure
     * to reserve on the destination leaves the block untouched
     * (false). Only flat mode has two addressable tiers to migrate
     * between.
     */
    bool
    migrate(Block &b, Tier to, bool urgent = false)
    {
        if (!b)
            return false;
        if (b.tier == to)
            return true;
        if (mode_ != sim::MemoryMode::kFlat)
            return false;
        if (!mutableGauge(to).tryReserve(b.charged_bytes, urgent))
            return false;

        void *np = slabs_[sim::tierIndex(to)].alloc(b.bytes);
        std::memcpy(np, b.ptr, b.bytes);
        slabs_[sim::tierIndex(b.tier)].free(b.ptr, b.bytes);
        mutableGauge(b.tier).release(b.charged_bytes);
        releaseStream(b.stream, b.tier, b.charged_bytes);
        chargeStream(b.stream, to, b.charged_bytes);
        b.ptr = np;
        b.tier = to;
        return true;
    }

    /**
     * Charge @p bytes of access to an object living on @p object_tier
     * into @p log, honoring the memory mode.
     */
    void
    charge(sim::CostLog &log, Tier object_tier, AccessPattern pattern,
           uint64_t bytes) const
    {
        if (bytes == 0)
            return;
        switch (mode_) {
          case sim::MemoryMode::kFlat:
            log.mem(object_tier, pattern, bytes);
            return;
          case sim::MemoryMode::kDramOnly:
            log.mem(Tier::kDram, pattern, bytes);
            return;
          case sim::MemoryMode::kCache: {
            // Hardware-managed HBM cache: every touched line moves
            // through HBM; the miss fraction is additionally serviced
            // by DRAM (fill + writeback).
            const double h = cacheHitRatio();
            const auto miss_bytes = static_cast<uint64_t>(
                static_cast<double>(bytes) * (1.0 - h));
            log.mem(Tier::kHbm, pattern, bytes);
            if (miss_bytes > 0)
                log.mem(Tier::kDram, pattern, miss_bytes);
            return;
          }
        }
    }

    /**
     * Estimated HBM-cache hit ratio in cache mode: the fraction of
     * the resident working set that fits in HBM. The whole stream
     * state (full record bundles included) competes for the cache,
     * which is exactly why the paper's NoKPA-on-cache-mode variant
     * collapses: full records blow the working set past 16 GB.
     */
    double
    cacheHitRatio() const
    {
        if (!cfg_.hasHbm())
            return 0.0;
        const auto ws = static_cast<double>(gauge(Tier::kDram).used());
        if (ws <= 0)
            return 1.0;
        return std::min(1.0,
                        static_cast<double>(cfg_.hbm.capacity_bytes) / ws);
    }

    const CapacityGauge &
    gauge(Tier t) const
    {
        return gauges_[sim::tierIndex(t)];
    }

    /** Start a new windowed high-water period on @p t's gauge. */
    void markHighWater(Tier t) { mutableGauge(t).markHighWater(); }

    /** Charged bytes @p stream currently holds on @p t. */
    uint64_t
    streamUsed(uint32_t stream, Tier t) const
    {
        if (stream == 0)
            return stream0_.used[sim::tierIndex(t)];
        auto it = streams_.find(stream);
        return it == streams_.end() ? 0
                                    : it->second.used[sim::tierIndex(t)];
    }

    /** Peak charged HBM bytes @p stream ever held (occupancy audit). */
    uint64_t
    streamHbmHighWater(uint32_t stream) const
    {
        if (stream == 0)
            return stream0_.hbm_high_water;
        auto it = streams_.find(stream);
        return it == streams_.end() ? 0 : it->second.hbm_high_water;
    }

    /** @return true if a non-urgent HBM allocation of @p bytes fits. */
    bool
    hbmHasRoom(uint64_t bytes) const
    {
        return mode_ == sim::MemoryMode::kFlat
               && gauge(Tier::kHbm).hasRoom(SlabAllocator::classSize(bytes));
    }

    /**
     * Tier where small hot state (e.g. the external-join KV table)
     * lives: HBM when software-visible HBM exists, DRAM otherwise.
     */
    Tier
    smallStateTier() const
    {
        return (mode_ == sim::MemoryMode::kFlat
                && gauge(Tier::kHbm).capacity() > 0)
                   ? Tier::kHbm
                   : Tier::kDram;
    }

    const SlabAllocator &slab(Tier t) const
    {
        return slabs_[sim::tierIndex(t)];
    }

    // ---------------------------------------------------------------
    // Recoverable exhaustion (fault tolerance).
    // ---------------------------------------------------------------

    /**
     * Opt into typed exhaustion: alloc() throws AllocFailure instead
     * of aborting when capacity (or an injected fault) denies it. The
     * serving layer enables this; standalone pipelines keep the fatal.
     */
    void setThrowOnExhaustion(bool on) { throw_on_exhaustion_ = on; }

    /**
     * Last-resort relief hook, called with (tier wanted, charged
     * bytes) before an exhaustion is declared. Returns true when it
     * freed capacity worth retrying for — the engine wires an
     * emergency demotion sweep through the pressure director here.
     */
    using ExhaustionHandler = std::function<bool(Tier, uint64_t)>;

    void
    setExhaustionHandler(ExhaustionHandler h)
    {
        exhaustion_handler_ = std::move(h);
    }

    /** Fault injection: fail the next @p n allocations outright. */
    void failNextAllocs(uint32_t n) { fail_next_allocs_ += n; }

    /** Injected allocation failures fired so far. */
    uint64_t injectedFailures() const { return injected_failures_; }

  private:
    /** Per-stream (tenant) occupancy, in charged size-class bytes. */
    struct StreamUsage
    {
        uint64_t used[sim::kNumTiers] = {0, 0};
        uint64_t hbm_high_water = 0;
    };

    CapacityGauge &
    mutableGauge(Tier t)
    {
        return gauges_[sim::tierIndex(t)];
    }

    void
    chargeStream(uint32_t stream, Tier t, uint64_t charged)
    {
        // Stream 0 (every single-pipeline run, and all bundle
        // allocations) stays off the map: alloc/free are hot enough
        // that this file carries a slab allocator, and the default
        // stream should not pay a tree lookup per allocation.
        StreamUsage &su = stream == 0 ? stream0_ : streams_[stream];
        su.used[sim::tierIndex(t)] += charged;
        if (t == Tier::kHbm)
            su.hbm_high_water = std::max(
                su.hbm_high_water, su.used[sim::tierIndex(Tier::kHbm)]);
    }

    void
    releaseStream(uint32_t stream, Tier t, uint64_t charged)
    {
        StreamUsage *su = &stream0_;
        if (stream != 0) {
            auto it = streams_.find(stream);
            sbhbm_assert(it != streams_.end(),
                         "stream %u tier accounting underflow", stream);
            su = &it->second;
        }
        sbhbm_assert(su->used[sim::tierIndex(t)] >= charged,
                     "stream %u tier accounting underflow", stream);
        su->used[sim::tierIndex(t)] -= charged;
    }

    const sim::MachineConfig &cfg_;
    sim::MemoryMode mode_;
    CapacityGauge gauges_[sim::kNumTiers];
    SlabAllocator slabs_[sim::kNumTiers];
    StreamUsage stream0_;
    std::map<uint32_t, StreamUsage> streams_;
    ExhaustionHandler exhaustion_handler_;
    uint32_t fail_next_allocs_ = 0;
    uint64_t injected_failures_ = 0;
    bool throw_on_exhaustion_ = false;
};

} // namespace sbhbm::mem

#endif // SBHBM_MEM_HYBRID_MEMORY_H
