/**
 * @file
 * Pluggable KPA placement policy — the decision point of the memory
 * control plane.
 *
 * Before this interface existed, placement logic was scattered across
 * three layers that could not talk to each other: the balance knob
 * rolled a probability at alloc time, HybridMemory silently spilled
 * to DRAM, and the serving layer admitted on static reservations.
 * PlacementPolicy centralizes the *decision* (which tier, may it dip
 * into the urgent reserve) while HybridMemory keeps the *mechanism*
 * (gauges, spill, migration). The default KnobPlacementPolicy wraps
 * the paper's demand balance knob and urgent reserve, reproducing the
 * pre-control-plane behavior bit-identically — same RNG draws in the
 * same order, same spill conditions.
 *
 * Per-stream placement classes let the serving layer bias a tenant:
 * an SLA-breaching tenant is demoted to kDramLean (its non-urgent
 * KPAs go to DRAM, relieving HBM for everyone else) until its
 * latencies recover.
 */

#ifndef SBHBM_MEM_PLACEMENT_POLICY_H
#define SBHBM_MEM_PLACEMENT_POLICY_H

#include <cstdint>
#include <map>

#include "common/rng.h"
#include "mem/hybrid_memory.h"
#include "runtime/balance_knob.h"
#include "runtime/impact_tag.h"

namespace sbhbm::mem {

/** Per-stream (tenant) placement bias. */
enum class PlacementClass : uint8_t {
    kNormal = 0,   //!< knob-driven placement
    kDramLean = 1, //!< non-urgent allocations forced to DRAM
};

constexpr const char *
placementClassName(PlacementClass c)
{
    return c == PlacementClass::kDramLean ? "dram-lean" : "normal";
}

/** Strategy deciding where a new KPA lives. */
class PlacementPolicy
{
  public:
    /** A placement decision: the tier to request and whether the
     *  allocation may dip into the HBM urgent reserve. */
    struct Decision
    {
        Tier tier = Tier::kDram;
        bool urgent = false;
    };

    virtual ~PlacementPolicy() = default;

    /**
     * Decide the placement of a new KPA of ~@p bytes_hint bytes for a
     * task tagged @p tag on @p stream. Called once per allocation;
     * implementations may consume RNG state.
     */
    virtual Decision place(runtime::ImpactTag tag, uint64_t bytes_hint,
                           uint32_t stream) = 0;

    /** Bias @p stream's future placements (serving-layer demotion). */
    virtual void setStreamClass(uint32_t stream, PlacementClass c) = 0;

    /** Current bias of @p stream. */
    virtual PlacementClass streamClass(uint32_t stream) const = 0;
};

/**
 * The default policy: the paper's "single control knob" (§1). Urgent
 * tasks always get HBM from the reserved pool; High/Low tasks flip
 * the balance knob's weighted coin and fall back to DRAM when HBM has
 * no non-reserved room. A DRAM-leaning stream skips the coin and goes
 * straight to DRAM (urgent tasks are exempt: the critical path keeps
 * its reserve even while a tenant is demoted).
 */
class KnobPlacementPolicy final : public PlacementPolicy
{
  public:
    /**
     * @param use_knob when false, non-urgent tasks always *want* HBM
     *        (the knob is bypassed, not the capacity spill).
     */
    KnobPlacementPolicy(const HybridMemory &hm,
                        const runtime::BalanceKnob &knob, Rng &rng,
                        bool use_knob)
        : hm_(hm), knob_(knob), rng_(rng), use_knob_(use_knob)
    {
    }

    Decision
    place(runtime::ImpactTag tag, uint64_t bytes_hint,
          uint32_t stream) override
    {
        if (hm_.mode() != sim::MemoryMode::kFlat)
            return Decision{Tier::kDram, false};
        if (tag == runtime::ImpactTag::kUrgent)
            return Decision{Tier::kHbm, true};
        if (streamClass(stream) == PlacementClass::kDramLean)
            return Decision{Tier::kDram, false};

        const bool want_hbm =
            use_knob_ ? knob_.preferHbm(tag, rng_) : true;
        if (want_hbm && hm_.hbmHasRoom(bytes_hint))
            return Decision{Tier::kHbm, false};
        return Decision{Tier::kDram, false};
    }

    void
    setStreamClass(uint32_t stream, PlacementClass c) override
    {
        if (c == PlacementClass::kNormal)
            classes_.erase(stream);
        else
            classes_[stream] = c;
    }

    PlacementClass
    streamClass(uint32_t stream) const override
    {
        auto it = classes_.find(stream);
        return it == classes_.end() ? PlacementClass::kNormal
                                    : it->second;
    }

  private:
    const HybridMemory &hm_;
    const runtime::BalanceKnob &knob_;
    Rng &rng_;
    bool use_knob_;
    std::map<uint32_t, PlacementClass> classes_;
};

} // namespace sbhbm::mem

#endif // SBHBM_MEM_PLACEMENT_POLICY_H
