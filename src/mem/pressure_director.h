/**
 * @file
 * The pressure director: the feedback half of the memory control
 * plane. The balance knob only steers *future* allocations — once a
 * KPA landed in HBM it used to stay there until freed, so a burst of
 * long-lived window state could pin HBM at capacity while the knob
 * helplessly spilled everything new. The director closes the loop
 * (working-set-driven pressure control in the spirit of the PML
 * study): when HBM usage crosses the high-water threshold it walks
 * the registered cold-state providers (pipeline operators holding
 * window state) and *demotes* cold KPAs to DRAM via
 * HybridMemory::migrate until usage drops back to the low-water
 * target, charging the migration traffic to the machine.
 *
 * The director is ticked by the runtime's ResourceMonitor at every
 * sample, right after the knob refresh. With `enabled = false` (the
 * default) tick() is a no-op and every figure and example reproduces
 * the pre-control-plane output bit for bit.
 */

#ifndef SBHBM_MEM_PRESSURE_DIRECTOR_H
#define SBHBM_MEM_PRESSURE_DIRECTOR_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "mem/hybrid_memory.h"
#include "sim/traffic.h"

namespace sbhbm::mem {

/** What one provider demoted during a sweep. */
struct DemoteResult
{
    uint64_t charged_bytes = 0; //!< gauge bytes freed from HBM
    uint32_t kpas = 0;          //!< blocks migrated
};

/**
 * Something that owns demotable HBM state (a pipeline operator's
 * accumulated window runs). Providers register with the director and
 * are swept in registration order — which is operator construction
 * order, hence deterministic.
 */
class ColdStateProvider
{
  public:
    virtual ~ColdStateProvider() = default;

    /** Stream (tenant) the demoted state is accounted to. */
    virtual uint32_t providerStream() const { return 0; }

    /**
     * Demote cold HBM state until about @p want_charged_bytes of
     * gauge capacity is freed, charging the migration traffic (read
     * source tier, write destination) to @p log. Must demote coldest
     * state first and never touch state on the close critical path.
     */
    virtual DemoteResult demoteColdState(uint64_t want_charged_bytes,
                                         sim::CostLog &log) = 0;

    /**
     * Generalized relief: move cold state off @p from onto @p to until
     * ~@p want_charged_bytes of @p from's gauge capacity is freed. The
     * exhaustion path uses this in both directions (DRAM exhaustion is
     * relieved by *promoting* cold state into spare HBM). Providers
     * with nothing relocatable keep the default no-op.
     */
    virtual DemoteResult
    relocateColdState(Tier from, Tier to, uint64_t want_charged_bytes,
                      sim::CostLog &log)
    {
        (void)from;
        (void)to;
        (void)want_charged_bytes;
        (void)log;
        return {};
    }
};

/** Demotion control knobs. */
struct PressureConfig
{
    /** Master switch; off reproduces pre-control-plane behavior. */
    bool enabled = false;

    /** HBM used fraction above which demotion starts (matches the
     *  balance knob's hbm_high default, so the knob and the director
     *  engage at the same pressure). */
    double high_water = 0.80;

    /** Used fraction demotion drives back down to. */
    double low_water = 0.65;

    /** Migration budget per tick, charged gauge bytes. */
    uint64_t max_bytes_per_tick = 64ull << 20;
};

/** Sweeps cold-state providers when HBM runs hot. */
class PressureDirector
{
  public:
    PressureDirector(HybridMemory &hm, PressureConfig cfg)
        : hm_(hm), cfg_(cfg)
    {
        sbhbm_assert(cfg.low_water <= cfg.high_water,
                     "low water above high water");
    }

    PressureDirector(const PressureDirector &) = delete;
    PressureDirector &operator=(const PressureDirector &) = delete;

    const PressureConfig &config() const { return cfg_; }

    /** Register a provider (swept in registration order). */
    void
    registerProvider(ColdStateProvider *p)
    {
        providers_.push_back(p);
    }

    /** Remove a registered provider (pipeline teardown). */
    void
    unregisterProvider(ColdStateProvider *p)
    {
        for (auto it = providers_.begin(); it != providers_.end(); ++it) {
            if (*it == p) {
                providers_.erase(it);
                return;
            }
        }
    }

    /**
     * One control decision: demote cold state when HBM usage is above
     * the high-water threshold, down to the low-water target (bounded
     * by the per-tick budget). @return the migration traffic to charge
     * to the machine; empty when no demotion happened.
     */
    sim::CostLog
    tick()
    {
        sim::CostLog log;
        if (!cfg_.enabled || hm_.mode() != sim::MemoryMode::kFlat)
            return log;
        const CapacityGauge &g = hm_.gauge(Tier::kHbm);
        if (g.capacity() == 0 || g.usedFraction() <= cfg_.high_water)
            return log;

        const auto target = static_cast<uint64_t>(
            cfg_.low_water * static_cast<double>(g.capacity()));
        uint64_t want = g.used() > target ? g.used() - target : 0;
        want = std::min(want, cfg_.max_bytes_per_tick);
        if (want == 0)
            return log;
        ++pressure_ticks_;

        for (ColdStateProvider *p : providers_) {
            if (want == 0)
                break;
            const DemoteResult r = p->demoteColdState(want, log);
            want -= std::min(want, r.charged_bytes);
            demoted_bytes_ += r.charged_bytes;
            demoted_kpas_ += r.kpas;
            if (r.kpas > 0) {
                StreamStats &ss = by_stream_[p->providerStream()];
                ss.charged_bytes += r.charged_bytes;
                ss.kpas += r.kpas;
                last_sweep_[p->providerStream()] += r.charged_bytes;
            }
        }
        // Demotion alone could not relieve the breach: escalate to
        // the next action up the control plane (the sharded serving
        // layer migrates a whole tenant off this engine).
        if (want > 0 && breach_hook_) {
            ++breach_escalations_;
            breach_hook_(want);
        }
        return log;
    }

    /**
     * Exhaustion relief: free about @p want gauge bytes on the
     * @p exhausted tier by relocating cold state to the other tier,
     * charging the copy traffic to @p log. Unlike tick() this runs
     * even when the steady-state loop is disabled — it is the last
     * resort before load shedding, invoked from HybridMemory's
     * exhaustion handler.
     */
    DemoteResult
    emergencySweep(Tier exhausted, uint64_t want, sim::CostLog &log)
    {
        DemoteResult total;
        if (hm_.mode() != sim::MemoryMode::kFlat || want == 0)
            return total;
        const Tier to =
            exhausted == Tier::kHbm ? Tier::kDram : Tier::kHbm;
        for (ColdStateProvider *p : providers_) {
            if (total.charged_bytes >= want)
                break;
            const DemoteResult r = p->relocateColdState(
                exhausted, to, want - total.charged_bytes, log);
            total.charged_bytes += r.charged_bytes;
            total.kpas += r.kpas;
            if (r.kpas > 0)
                last_sweep_[p->providerStream()] += r.charged_bytes;
        }
        emergency_bytes_ += total.charged_bytes;
        emergency_kpas_ += total.kpas;
        if (total.kpas > 0)
            ++emergency_sweeps_;
        return total;
    }

    /** Emergency sweeps that actually relocated state / their totals. */
    uint64_t emergencySweeps() const { return emergency_sweeps_; }
    uint64_t emergencyBytes() const { return emergency_bytes_; }
    uint64_t emergencyKpas() const { return emergency_kpas_; }

    /**
     * Install the escalation hook, invoked from tick() with the
     * residual pressure (bytes above the low-water target) whenever a
     * full demotion sweep could not relieve a high-water breach.
     */
    void
    setBreachHook(std::function<void(uint64_t)> hook)
    {
        breach_hook_ = std::move(hook);
    }

    /** Breaches escalated past demotion since boot. */
    uint64_t breachEscalations() const { return breach_escalations_; }

    /** Ticks that found pressure above the high-water threshold. */
    uint64_t pressureTicks() const { return pressure_ticks_; }

    /** Total gauge bytes demoted from HBM since boot. */
    uint64_t demotedBytes() const { return demoted_bytes_; }

    /** Total KPAs demoted since boot. */
    uint64_t demotedKpas() const { return demoted_kpas_; }

    /** Per-stream demotion totals. */
    uint64_t
    demotedBytes(uint32_t stream) const
    {
        auto it = by_stream_.find(stream);
        return it == by_stream_.end() ? 0 : it->second.charged_bytes;
    }

    uint64_t
    demotedKpas(uint32_t stream) const
    {
        auto it = by_stream_.find(stream);
        return it == by_stream_.end() ? 0 : it->second.kpas;
    }

    size_t providerCount() const { return providers_.size(); }

    // ---------------------------------------------------------------
    // Sweep stall attribution. A sweep's migration traffic runs
    // DMA-style in virtual time; the streams whose state moved see
    // that as memory stall. The sweep caller (monitor tick, engine
    // exhaustion handler) takes the per-stream byte shares recorded
    // by the last sweep, then — once the machine finishes charging
    // the copy — hands the measured duration back to be split across
    // those streams proportionally to bytes moved.
    // ---------------------------------------------------------------

    /** Per-stream gauge bytes moved by the last sweep (then reset). */
    std::map<uint32_t, uint64_t>
    takeLastSweepShares()
    {
        std::map<uint32_t, uint64_t> out;
        out.swap(last_sweep_);
        return out;
    }

    /** Split @p ns of sweep stall across @p shares by byte weight. */
    void
    addSweepStallNs(const std::map<uint32_t, uint64_t> &shares,
                    uint64_t ns)
    {
        uint64_t total = 0;
        for (const auto &[stream, bytes] : shares)
            total += bytes;
        if (total == 0)
            return;
        for (const auto &[stream, bytes] : shares) {
            stall_ns_by_stream_[stream] +=
                static_cast<uint64_t>(static_cast<double>(ns)
                                      * static_cast<double>(bytes)
                                      / static_cast<double>(total));
        }
    }

    /** Cumulative sweep-stall ns attributed to @p stream. */
    uint64_t
    sweepStallNs(uint32_t stream) const
    {
        auto it = stall_ns_by_stream_.find(stream);
        return it == stall_ns_by_stream_.end() ? 0 : it->second;
    }

  private:
    struct StreamStats
    {
        uint64_t charged_bytes = 0;
        uint64_t kpas = 0;
    };

    HybridMemory &hm_;
    PressureConfig cfg_;
    std::vector<ColdStateProvider *> providers_;
    std::function<void(uint64_t)> breach_hook_;
    uint64_t breach_escalations_ = 0;
    uint64_t pressure_ticks_ = 0;
    uint64_t demoted_bytes_ = 0;
    uint64_t demoted_kpas_ = 0;
    uint64_t emergency_sweeps_ = 0;
    uint64_t emergency_bytes_ = 0;
    uint64_t emergency_kpas_ = 0;
    std::map<uint32_t, StreamStats> by_stream_;
    std::map<uint32_t, uint64_t> last_sweep_;
    std::map<uint32_t, uint64_t> stall_ns_by_stream_;
};

} // namespace sbhbm::mem

#endif // SBHBM_MEM_PRESSURE_DIRECTOR_H
