/**
 * @file
 * Slab allocator with power-of-two size classes (paper §5.1).
 *
 * StreamBox-HBM allocates KPAs, record bundles and window state from a
 * pool of fixed-sized elements tuned to typical object sizes. Here a
 * freed block parks on a per-class freelist and is recycled by the
 * next allocation of the same class, so steady-state streaming incurs
 * no host allocator churn. Capacity accounting (done by the caller)
 * charges the rounded class size, so internal fragmentation pressures
 * the tier exactly as it would on the real machine.
 */

#ifndef SBHBM_MEM_SLAB_ALLOCATOR_H
#define SBHBM_MEM_SLAB_ALLOCATOR_H

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/logging.h"

namespace sbhbm::mem {

/** Power-of-two size-class slab allocator over host memory. */
class SlabAllocator
{
  public:
    /** Smallest size class: 4 KiB. */
    static constexpr uint64_t kMinClassBytes = 4096;

    /** Largest slabbed class: 64 MiB; bigger blocks are one-off. */
    static constexpr uint64_t kMaxClassBytes = 64ull << 20;

    SlabAllocator() = default;

    SlabAllocator(const SlabAllocator &) = delete;
    SlabAllocator &operator=(const SlabAllocator &) = delete;

    ~SlabAllocator()
    {
        for (auto &fl : freelists_)
            for (void *p : fl)
                ::operator delete(p, std::align_val_t{64});
    }

    /**
     * Round @p bytes up to its size class (what capacity accounting
     * should charge). Blocks above kMaxClassBytes are charged exactly.
     */
    static uint64_t
    classSize(uint64_t bytes)
    {
        if (bytes <= kMinClassBytes)
            return kMinClassBytes;
        if (bytes > kMaxClassBytes)
            return bytes;
        return uint64_t{1} << (64 - __builtin_clzll(bytes - 1));
    }

    /** Allocate a block of classSize(bytes); 64-byte aligned. */
    void *
    alloc(uint64_t bytes)
    {
        const uint64_t cls = classSize(bytes);
        const int idx = classIndex(cls);
        if (idx >= 0 && !freelists_[idx].empty()) {
            void *p = freelists_[idx].back();
            freelists_[idx].pop_back();
            ++recycled_;
            return p;
        }
        ++fresh_;
        return ::operator new(cls, std::align_val_t{64});
    }

    /** Return a block allocated with the same @p bytes request. */
    void
    free(void *p, uint64_t bytes)
    {
        if (p == nullptr)
            return;
        const uint64_t cls = classSize(bytes);
        const int idx = classIndex(cls);
        if (idx < 0) {
            ::operator delete(p, std::align_val_t{64});
            return;
        }
        freelists_[idx].push_back(p);
    }

    /** Number of allocations served from a freelist. */
    uint64_t recycled() const { return recycled_; }

    /** Number of allocations that hit the host allocator. */
    uint64_t fresh() const { return fresh_; }

  private:
    /** Map a class size to a freelist slot; -1 for huge blocks. */
    static int
    classIndex(uint64_t cls)
    {
        if (cls > kMaxClassBytes)
            return -1;
        return __builtin_ctzll(cls) - __builtin_ctzll(kMinClassBytes);
    }

    static constexpr int kNumClasses = 15; // 4 KiB .. 64 MiB

    std::vector<void *> freelists_[kNumClasses];
    uint64_t recycled_ = 0;
    uint64_t fresh_ = 0;
};

} // namespace sbhbm::mem

#endif // SBHBM_MEM_SLAB_ALLOCATOR_H
