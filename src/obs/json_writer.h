/**
 * @file
 * A small streaming JSON writer: the one escaping / comma-placement /
 * number-formatting implementation shared by every JSON emitter in
 * the tree — the bench reports (bench_util.h, serve_report) and the
 * trace exporter (obs/trace.h).
 *
 * Output is built into a std::string so callers can compare documents
 * in memory (the trace-determinism tests diff whole exports byte for
 * byte) before deciding to write a file. Formatting is fully
 * deterministic: doubles always go through an explicit fixed
 * precision, never locale- or shortest-round-trip-dependent paths.
 */

#ifndef SBHBM_OBS_JSON_WRITER_H
#define SBHBM_OBS_JSON_WRITER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sbhbm::obs {

/**
 * Structured JSON emission with automatic commas and (optional)
 * two-space pretty indentation. Usage mirrors the document:
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.key("schema").value("v1");
 *   w.key("points").beginArray();
 *   w.value(uint64_t{3});
 *   w.endArray();
 *   w.endObject();
 *   w.writeFile("out.json");
 *
 * The writer does not validate grammar beyond container balance; it
 * trusts callers to alternate key()/value() correctly inside objects.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

    JsonWriter &
    beginObject()
    {
        open('{');
        return *this;
    }

    JsonWriter &
    endObject()
    {
        close('}');
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        open('[');
        return *this;
    }

    JsonWriter &
    endArray()
    {
        close(']');
        return *this;
    }

    JsonWriter &
    key(std::string_view k)
    {
        separate();
        quoted(k);
        out_ += pretty_ ? ": " : ":";
        pending_value_ = true;
        return *this;
    }

    JsonWriter &
    value(std::string_view v)
    {
        separate();
        quoted(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string_view(v));
    }

    JsonWriter &
    value(bool v)
    {
        separate();
        out_ += v ? "true" : "false";
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        return rawValue(buf);
    }

    JsonWriter &
    value(int64_t v)
    {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return rawValue(buf);
    }

    JsonWriter &
    value(unsigned v)
    {
        return value(uint64_t{v});
    }

    JsonWriter &
    value(int v)
    {
        return value(int64_t{v});
    }

    /** Fixed-precision double: precision is explicit at every call
     *  site so numeric output never depends on a default. */
    JsonWriter &
    value(double v, int prec)
    {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
        return rawValue(buf);
    }

    /** Emit @p text verbatim as a value (pre-formatted numbers). */
    JsonWriter &
    rawValue(std::string_view text)
    {
        separate();
        out_ += text;
        return *this;
    }

    /** The document built so far. */
    const std::string &str() const { return out_; }

    bool
    writeTo(std::FILE *f) const
    {
        return std::fwrite(out_.data(), 1, out_.size(), f)
               == out_.size();
    }

    /** @return true when the file was written successfully. */
    bool
    writeFile(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        const bool ok = writeTo(f) && std::fputc('\n', f) != EOF;
        return (std::fclose(f) == 0) && ok;
    }

  private:
    struct Frame
    {
        bool first = true;
    };

    /** Comma + newline-indent before the next element, unless it is
     *  the value half of a key()/value() pair. */
    void
    separate()
    {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        if (stack_.empty())
            return;
        if (!stack_.back().first)
            out_ += ',';
        stack_.back().first = false;
        if (pretty_) {
            out_ += '\n';
            out_.append(stack_.size() * 2, ' ');
        }
    }

    void
    open(char c)
    {
        separate();
        out_ += c;
        stack_.push_back(Frame{});
    }

    void
    close(char c)
    {
        const bool empty = stack_.back().first;
        stack_.pop_back();
        if (pretty_ && !empty) {
            out_ += '\n';
            out_.append(stack_.size() * 2, ' ');
        }
        out_ += c;
    }

    void
    quoted(std::string_view s)
    {
        out_ += '"';
        for (char c : s) {
            switch (c) {
              case '"':
                out_ += "\\\"";
                break;
              case '\\':
                out_ += "\\\\";
                break;
              case '\n':
                out_ += "\\n";
                break;
              case '\r':
                out_ += "\\r";
                break;
              case '\t':
                out_ += "\\t";
                break;
              case '\b':
                out_ += "\\b";
                break;
              case '\f':
                out_ += "\\f";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out_ += buf;
                } else {
                    out_ += c;
                }
            }
        }
        out_ += '"';
    }

    bool pretty_;
    bool pending_value_ = false;
    std::string out_;
    std::vector<Frame> stack_;
};

} // namespace sbhbm::obs

#endif // SBHBM_OBS_JSON_WRITER_H
