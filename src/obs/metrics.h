/**
 * @file
 * The metrics half of the telemetry plane: a registry of counters,
 * gauges and fixed-bucket histograms under hierarchical slash-joined
 * names ("shard/2/tenant/7/ingest_wait_ns").
 *
 * Handles are plain references into node-stable containers: a caller
 * resolves a name once (a map lookup, off the hot path) and then
 * bumps the handle with a single add — no lookup, no allocation, no
 * branch beyond the telemetry-installed null check the caller already
 * made. With no Telemetry installed nothing here runs at all, which
 * is what keeps the disabled cost near zero and all pinned goldens
 * bit-identical.
 *
 * Export iterates std::map in key order, so a registry filled by a
 * deterministic run serializes byte-identically every time.
 */

#ifndef SBHBM_OBS_METRICS_H
#define SBHBM_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/json_writer.h"

namespace sbhbm::obs {

/** Monotonic event count. */
struct Counter
{
    uint64_t value = 0;

    void add(uint64_t n = 1) { value += n; }
};

/** Point-in-time level (set, not accumulated). */
struct Gauge
{
    double value = 0;

    void set(double v) { value = v; }
    void add(double d) { value += d; }
};

/**
 * Fixed-bucket histogram: counts per upper-bound bucket plus an
 * overflow bucket, with the running sum for mean recovery. Bounds are
 * fixed at registration — observation is a linear scan over a handful
 * of doubles, deterministic and allocation-free.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds)
        : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
    {
        for (size_t i = 1; i < bounds_.size(); ++i)
            sbhbm_assert(bounds_[i - 1] < bounds_[i],
                         "histogram bounds must strictly increase");
    }

    void
    observe(double v)
    {
        size_t i = 0;
        while (i < bounds_.size() && v > bounds_[i])
            ++i;
        ++counts_[i];
        ++count_;
        sum_ += v;
    }

    const std::vector<double> &bounds() const { return bounds_; }

    /** Per-bucket counts; the final entry is the overflow bucket. */
    const std::vector<uint64_t> &counts() const { return counts_; }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    double sum_ = 0;
};

/**
 * The registry: name → metric, one namespace per metric kind.
 * std::map keeps node addresses stable (handles survive later
 * registrations) and iterates in name order (deterministic export).
 */
class MetricsRegistry
{
  public:
    /** Resolve (or create) the counter named @p name. */
    Counter &counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Resolve (or create) the gauge named @p name. */
    Gauge &gauge(const std::string &name) { return gauges_[name]; }

    /**
     * Resolve (or create) the histogram named @p name; @p bounds are
     * only used on first registration (re-resolving an existing
     * histogram keeps its original buckets).
     */
    Histogram &
    histogram(const std::string &name, std::vector<double> bounds)
    {
        auto it = hists_.find(name);
        if (it == hists_.end()) {
            it = hists_
                     .emplace(name, Histogram(std::move(bounds)))
                     .first;
        }
        return it->second;
    }

    /** Join hierarchical name parts with '/'. */
    static std::string
    path(std::initializer_list<std::string> parts)
    {
        std::string out;
        for (const std::string &p : parts) {
            if (!out.empty())
                out += '/';
            out += p;
        }
        return out;
    }

    size_t
    size() const
    {
        return counters_.size() + gauges_.size() + hists_.size();
    }

    /** Serialize every metric, name-sorted within its kind. */
    void
    writeJson(JsonWriter &w) const
    {
        w.beginObject();
        w.key("counters").beginObject();
        for (const auto &[name, c] : counters_)
            w.key(name).value(c.value);
        w.endObject();
        w.key("gauges").beginObject();
        for (const auto &[name, g] : gauges_)
            w.key(name).value(g.value, 6);
        w.endObject();
        w.key("histograms").beginObject();
        for (const auto &[name, h] : hists_) {
            w.key(name).beginObject();
            w.key("bounds").beginArray();
            for (double b : h.bounds())
                w.value(b, 6);
            w.endArray();
            w.key("counts").beginArray();
            for (uint64_t c : h.counts())
                w.value(c);
            w.endArray();
            w.key("count").value(h.count());
            w.key("sum").value(h.sum(), 6);
            w.endObject();
        }
        w.endObject();
        w.endObject();
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> hists_;
};

} // namespace sbhbm::obs

#endif // SBHBM_OBS_METRICS_H
