/**
 * @file
 * The tracing half of the telemetry plane: a deterministic recorder
 * of spans and instants stamped on *virtual* time, exported as Chrome
 * `trace_event` JSON (load the file in Perfetto or chrome://tracing).
 *
 * Determinism is the design center: events are only ever recorded
 * from the single-threaded simulation control path (executor
 * dispatch-completion callbacks, source scheduling, monitor ticks,
 * the server control plane) — never from inside WorkerPool host
 * threads — so the record order equals the co-simulation's event
 * order and the same seed yields a byte-identical trace at any host
 * thread count. Timestamps are virtual nanoseconds rendered with
 * fixed integer formatting; no wall clock ever enters the file.
 *
 * Track mapping: pid = engine shard, tid = stream/tenant id (0 is
 * the control plane / engine-internal track), so Perfetto renders
 * one process lane per shard with one thread lane per tenant.
 */

#ifndef SBHBM_OBS_TRACE_H
#define SBHBM_OBS_TRACE_H

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace sbhbm::obs {

/** One numeric argument attached to a trace event. */
struct TraceArg
{
    const char *key = "";
    uint64_t value = 0;
};

/**
 * One recorded event. `ph` follows the Chrome trace_event phase
 * codes: 'X' = complete span (ts + dur), 'i' = instant. `cat` and
 * arg keys are string literals at every call site, so events store
 * the pointers directly.
 */
struct TraceEvent
{
    SimTime ts = 0;
    SimTime dur = 0;
    uint32_t pid = 0;
    uint32_t tid = 0;
    char ph = 'i';
    const char *cat = "";
    std::string name;
    uint32_t nargs = 0;
    TraceArg args[3];
};

/** Append-only event recorder + Chrome trace_event JSON exporter. */
class TraceSink
{
  public:
    /** Record a complete span: [ts, ts + dur) on (pid, tid). */
    void
    span(SimTime ts, SimTime dur, uint32_t pid, uint32_t tid,
         const char *cat, std::string name,
         std::initializer_list<TraceArg> args = {})
    {
        push('X', ts, dur, pid, tid, cat, std::move(name), args);
    }

    /** Record a point event at @p ts on (pid, tid). */
    void
    instant(SimTime ts, uint32_t pid, uint32_t tid, const char *cat,
            std::string name,
            std::initializer_list<TraceArg> args = {})
    {
        push('i', ts, 0, pid, tid, cat, std::move(name), args);
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /**
     * Export as a Chrome trace_event document: metadata naming each
     * shard process and tenant thread first (sorted), then every
     * event in record order. ts/dur are microseconds with exactly
     * three decimals — integer-derived, so export is byte-stable.
     */
    void
    exportJson(JsonWriter &w) const
    {
        std::set<uint32_t> pids;
        std::set<std::pair<uint32_t, uint32_t>> tids;
        for (const TraceEvent &e : events_) {
            pids.insert(e.pid);
            tids.insert({e.pid, e.tid});
        }

        w.beginObject();
        w.key("displayTimeUnit").value("ms");
        w.key("traceEvents").beginArray();
        for (uint32_t p : pids) {
            w.beginObject();
            w.key("name").value("process_name");
            w.key("ph").value("M");
            w.key("pid").value(p);
            w.key("args").beginObject();
            w.key("name").value("shard " + std::to_string(p));
            w.endObject();
            w.endObject();
        }
        for (const auto &[p, t] : tids) {
            w.beginObject();
            w.key("name").value("thread_name");
            w.key("ph").value("M");
            w.key("pid").value(p);
            w.key("tid").value(t);
            w.key("args").beginObject();
            w.key("name").value(
                t == 0 ? std::string("control")
                       : "tenant " + std::to_string(t));
            w.endObject();
            w.endObject();
        }
        for (const TraceEvent &e : events_) {
            w.beginObject();
            w.key("name").value(e.name);
            w.key("cat").value(e.cat);
            const char phs[2] = {e.ph, '\0'};
            w.key("ph").value(phs);
            w.key("ts").rawValue(micros(e.ts));
            if (e.ph == 'X')
                w.key("dur").rawValue(micros(e.dur));
            w.key("pid").value(e.pid);
            w.key("tid").value(e.tid);
            if (e.nargs > 0) {
                w.key("args").beginObject();
                for (uint32_t i = 0; i < e.nargs; ++i)
                    w.key(e.args[i].key).value(e.args[i].value);
                w.endObject();
            }
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    /** The full export as a pretty JSON string (tests diff this). */
    std::string
    json() const
    {
        JsonWriter w;
        exportJson(w);
        return w.str();
    }

  private:
    /** Virtual ns → "µs.frac" with exactly three decimals. */
    static std::string
    micros(SimTime ns)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                      static_cast<unsigned long long>(ns / 1000),
                      static_cast<unsigned long long>(ns % 1000));
        return buf;
    }

    void
    push(char ph, SimTime ts, SimTime dur, uint32_t pid, uint32_t tid,
         const char *cat, std::string name,
         std::initializer_list<TraceArg> args)
    {
        TraceEvent e;
        e.ts = ts;
        e.dur = dur;
        e.pid = pid;
        e.tid = tid;
        e.ph = ph;
        e.cat = cat;
        e.name = std::move(name);
        for (const TraceArg &a : args) {
            if (e.nargs < 3)
                e.args[e.nargs++] = a;
        }
        events_.push_back(std::move(e));
    }

    std::vector<TraceEvent> events_;
};

/**
 * The unit of telemetry a caller installs on an engine / server: one
 * metrics registry plus one trace sink, shared by every layer that
 * instruments itself. A null Telemetry pointer (the default
 * everywhere) disables all recording — the hot paths pay one pointer
 * null check and the simulation stays bit-identical.
 */
struct Telemetry
{
    MetricsRegistry metrics;
    TraceSink trace;
};

} // namespace sbhbm::obs

#endif // SBHBM_OBS_TRACE_H
