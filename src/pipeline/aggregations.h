/**
 * @file
 * Keyed Aggregation operators (Table 1 / Fig 4a) and the aggregator
 * library backing benchmarks 1-6 of §6: TopK / Sum / Median / Average
 * / Count / UniqueCount / Percentile per key.
 *
 * An Aggregation visits each key run of the window's fully-sorted KPA
 * and appends output rows; the operator charges the Table 2 "Keyed"
 * reduction costs (sequential KPA scan, random value-column loads,
 * output emission).
 *
 * Memory control plane: the sorted runs a KeyedAggOp accumulates per
 * window are exactly the long-lived HBM state the pressure director
 * targets — the SortedRunsOp base exposes every run beyond the target
 * watermark's window through Operator::coldState(), so under HBM
 * capacity pressure cold aggregation state is demoted to DRAM while
 * the window about to close keeps its HBM residency.
 */

#ifndef SBHBM_PIPELINE_AGGREGATIONS_H
#define SBHBM_PIPELINE_AGGREGATIONS_H

#include <algorithm>
#include <functional>
#include <set>
#include <utility>
#include <vector>

#include "pipeline/sorted_runs_op.h"

namespace sbhbm::pipeline {

/** Collects fixed-arity output rows before bundling them. */
class RowSink
{
  public:
    explicit RowSink(uint32_t cols) : cols_(cols) {}

    /** Append one row; @p row must have cols() values. */
    void
    push(std::initializer_list<uint64_t> row)
    {
        sbhbm_assert(row.size() == cols_, "row arity %zu vs %u",
                     row.size(), cols_);
        flat_.insert(flat_.end(), row.begin(), row.end());
    }

    uint32_t cols() const { return cols_; }
    uint64_t rows() const { return flat_.size() / cols_; }

    /** Materialize the rows as a DRAM bundle (empty -> null handle). */
    BundleHandle
    toBundle(mem::HybridMemory &hm) const
    {
        if (flat_.empty())
            return BundleHandle{};
        auto *b = columnar::Bundle::create(
            hm, cols_, static_cast<uint32_t>(rows()));
        for (size_t i = 0; i < flat_.size(); i += cols_)
            b->append(&flat_[i]);
        return BundleHandle::adopt(b);
    }

  private:
    uint32_t cols_;
    std::vector<uint64_t> flat_;
};

/** One keyed aggregation: schema plus per-key-run reduction. */
struct Aggregation
{
    /** Output columns (key is column 0). */
    uint32_t out_cols = 2;

    /** Does the reduction dereference record values? */
    bool touches_values = true;

    /** Extra scalar CPU per input value (e.g. per-key value sorts). */
    double extra_cpu_per_value = 0.0;

    /** Visit one key run; append output rows to the sink. */
    std::function<void(uint64_t key, const kpa::KpEntry *run, size_t n,
                       RowSink &sink)>
        per_key;
};

namespace aggs {

/** Gather the value column of a key run into @p out. */
inline void
gatherValues(const kpa::KpEntry *run, size_t n, columnar::ColumnId col,
             std::vector<uint64_t> &out)
{
    out.clear();
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(run[i].row[col]);
}

/** Windowed Sum Per Key (benchmark 2): emits (key, sum). */
inline Aggregation
sumPerKey(columnar::ColumnId value_col)
{
    Aggregation a;
    a.out_cols = 2;
    a.per_key = [value_col](uint64_t key, const kpa::KpEntry *run,
                            size_t n, RowSink &sink) {
        uint64_t sum = 0;
        for (size_t i = 0; i < n; ++i)
            sum += run[i].row[value_col];
        sink.push({key, sum});
    };
    return a;
}

/** Count Per Key: emits (key, count); touches no values. */
inline Aggregation
countPerKey()
{
    Aggregation a;
    a.out_cols = 2;
    a.touches_values = false;
    a.per_key = [](uint64_t key, const kpa::KpEntry *, size_t n,
                   RowSink &sink) { sink.push({key, n}); };
    return a;
}

/** Windowed Average Per Key (benchmark 4): emits (key, floor(avg)). */
inline Aggregation
avgPerKey(columnar::ColumnId value_col)
{
    Aggregation a;
    a.out_cols = 2;
    a.per_key = [value_col](uint64_t key, const kpa::KpEntry *run,
                            size_t n, RowSink &sink) {
        uint64_t sum = 0;
        for (size_t i = 0; i < n; ++i)
            sum += run[i].row[value_col];
        sink.push({key, n > 0 ? sum / n : 0});
    };
    return a;
}

/** Windowed Median Per Key (benchmark 3): emits (key, median). */
inline Aggregation
medianPerKey(columnar::ColumnId value_col)
{
    Aggregation a;
    a.out_cols = 2;
    a.extra_cpu_per_value = 800.0; // per-key nth_element, branchy scalar
    a.per_key = [value_col](uint64_t key, const kpa::KpEntry *run,
                            size_t n, RowSink &sink) {
        std::vector<uint64_t> vals;
        gatherValues(run, n, value_col, vals);
        const size_t mid = vals.size() / 2;
        std::nth_element(vals.begin(), vals.begin() + mid, vals.end());
        sink.push({key, vals[mid]});
    };
    return a;
}

/**
 * TopK Per Key (benchmark 1): emits (key, value) rows for the K
 * largest values of each key, descending.
 */
inline Aggregation
topKPerKey(columnar::ColumnId value_col, size_t k)
{
    Aggregation a;
    a.out_cols = 2;
    a.extra_cpu_per_value = 800.0; // per-key partial sort + K-fold output
    a.per_key = [value_col, k](uint64_t key, const kpa::KpEntry *run,
                               size_t n, RowSink &sink) {
        std::vector<uint64_t> vals;
        gatherValues(run, n, value_col, vals);
        const size_t keep = std::min(k, vals.size());
        std::partial_sort(vals.begin(), vals.begin() + keep, vals.end(),
                          std::greater<>());
        for (size_t i = 0; i < keep; ++i)
            sink.push({key, vals[i]});
    };
    return a;
}

/** Unique Count Per Key (benchmark 6): emits (key, distinct values). */
inline Aggregation
uniqueCountPerKey(columnar::ColumnId value_col)
{
    Aggregation a;
    a.out_cols = 2;
    a.extra_cpu_per_value = 100.0; // per-key value sort + unique
    a.per_key = [value_col](uint64_t key, const kpa::KpEntry *run,
                            size_t n, RowSink &sink) {
        std::vector<uint64_t> vals;
        gatherValues(run, n, value_col, vals);
        std::sort(vals.begin(), vals.end());
        const auto uniq = std::unique(vals.begin(), vals.end());
        sink.push({key,
                   static_cast<uint64_t>(uniq - vals.begin())});
    };
    return a;
}

/** PercentileByKey: emits (key, p-th percentile of values). */
inline Aggregation
percentilePerKey(columnar::ColumnId value_col, double p)
{
    Aggregation a;
    a.out_cols = 2;
    a.extra_cpu_per_value = 800.0;
    a.per_key = [value_col, p](uint64_t key, const kpa::KpEntry *run,
                               size_t n, RowSink &sink) {
        std::vector<uint64_t> vals;
        gatherValues(run, n, value_col, vals);
        const auto rank = static_cast<size_t>(
            p / 100.0 * static_cast<double>(vals.size() - 1) + 0.5);
        std::nth_element(vals.begin(), vals.begin() + rank, vals.end());
        sink.push({key, vals[rank]});
    };
    return a;
}

} // namespace aggs

/**
 * Keyed Aggregation operator: sorted-run accumulation (base class)
 * plus a per-key reduction at window close.
 */
class KeyedAggOp : public SortedRunsOp
{
  public:
    KeyedAggOp(Pipeline &pipe, std::string name,
               columnar::ColumnId key_col, Aggregation agg)
        : SortedRunsOp(pipe, std::move(name), key_col),
          agg_(std::move(agg))
    {
    }

  protected:
    /**
     * Every shipped Aggregation reduces a key run to a value that is
     * invariant under run permutation (sum/count/avg/median/topK/
     * uniqueCount/percentile), so the hash-scatter grouping variant —
     * which orders within-key entries by arrival, not by the sort
     * network — is safe here.
     */
    bool adaptiveGrouping() const override { return true; }

    void
    reduceWindow(columnar::WindowId w, const kpa::Kpa &merged,
                 uint32_t lo, uint32_t hi, sim::CostLog &log,
                 Emitter &em) override
    {
        auto ctx = makeCtx(log, merged.recordCols());
        RowSink sink(agg_.out_cols);
        kpa::forEachKeyRunRange(
            merged, lo, hi,
            [&](uint64_t key, const kpa::KpEntry *run, size_t n) {
                agg_.per_key(key, run, n, sink);
            });
        const uint64_t scanned = hi - lo;
        kpa::chargeKeyedReduceRange(ctx, merged, scanned,
                                    agg_.touches_values ? scanned : 0,
                                    sink.rows(), agg_.out_cols);
        log.cpu(agg_.extra_cpu_per_value * static_cast<double>(scanned));

        BundleHandle out = sink.toBundle(eng_.memory());
        if (out) {
            em.push(Msg::ofBundle(std::move(out),
                                  pipe_.windows().start(w))
                        .withWindow(w));
        }
    }

  private:
    Aggregation agg_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_AGGREGATIONS_H
