/**
 * @file
 * Cogroup (Table 1): per temporal window, group both input streams by
 * a shared key and hand each key's two value groups to a combiner.
 *
 * Implementation per Fig 4a generalized to two inputs: each side
 * accumulates sorted KPA runs per window; at window close both sides
 * merge (reusing the KPA Merge primitive) and a single pass
 * co-iterates the two sorted KPAs' key runs (the same one-pass scan
 * Join uses), invoking the user combiner with both runs.
 */

#ifndef SBHBM_PIPELINE_COGROUP_H
#define SBHBM_PIPELINE_COGROUP_H

#include <array>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "pipeline/aggregations.h"
#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Two-stream keyed cogroup with per-window close. */
class CogroupOp : public Operator
{
  public:
    /**
     * Combiner: key plus the key's entries from each side (either run
     * may be empty — cogroup is a full outer grouping). Emits output
     * rows through the sink.
     */
    using Combiner = std::function<void(
        uint64_t key, const kpa::KpEntry *left, size_t n_left,
        const kpa::KpEntry *right, size_t n_right, RowSink &sink)>;

    CogroupOp(Pipeline &pipe, std::string name, columnar::ColumnId key_col,
              uint32_t out_cols, Combiner combine)
        : Operator(pipe, std::move(name), /*num_ports=*/2),
          key_col_(key_col), out_cols_(out_cols),
          combine_(std::move(combine))
    {
        sbhbm_assert(combine_ != nullptr, "cogroup needs a combiner");
    }

  protected:
    void
    process(Msg msg, int port) override
    {
        sbhbm_assert(msg.isKpa() && msg.has_window,
                     "CogroupOp expects windowed KPAs");
        const columnar::WindowId w = msg.window;
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, w, port, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &) mutable {
            sbhbm_assert(w >= min_open_, "%s: late data for window %llu",
                         name().c_str(), (unsigned long long)w);
            auto ctx = makeCtx(log, msg.kpa->recordCols());
            kpa::keySwap(ctx, *msg.kpa, key_col_);
            kpa::sortKpa(ctx, *msg.kpa);
            state_[w].runs[port].push_back(std::move(msg.kpa));
        });
    }

    void
    onWatermark(Watermark wm) override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        std::vector<columnar::WindowId> ready;
        for (const auto &[w, st] : state_)
            if (spec.end(w) <= wm.ts)
                ready.push_back(w);
        for (columnar::WindowId w : ready)
            startClose(w);
    }

    bool
    readyToForward(Watermark wm) const override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        for (const auto &[w, st] : state_)
            if (spec.end(w) <= wm.ts)
                return false;
        for (const auto &[w, n] : closing_)
            if (spec.end(w) <= wm.ts)
                return false;
        return true;
    }

  private:
    struct WindowState
    {
        std::vector<kpa::KpaPtr> runs[2];
    };

    void
    startClose(columnar::WindowId w)
    {
        auto it = state_.find(w);
        sbhbm_assert(it != state_.end(), "closing unknown window");
        min_open_ = std::max(min_open_, w + 1);
        auto st = std::make_shared<WindowState>(std::move(it->second));
        state_.erase(it);
        closing_[w] = 2; // two sides to merge

        auto merged = std::make_shared<std::array<kpa::KpaPtr, 2>>();
        for (int side = 0; side < 2; ++side)
            mergeSide(w, st, merged, side);
    }

    /** Pairwise-merge one side's runs, then maybe run the combiner. */
    void
    mergeSide(columnar::WindowId w,
              const std::shared_ptr<WindowState> &st,
              const std::shared_ptr<std::array<kpa::KpaPtr, 2>> &merged,
              int side)
    {
        spawnTracked(
            ImpactTag::kUrgent,
            [this, st, merged, side](sim::CostLog &log, Emitter &) {
                auto &runs = st->runs[side];
                auto ctx = makeCtx(
                    log, runs.empty() || runs[0]->sources().empty()
                             ? 1
                             : runs[0]->recordCols());
                while (runs.size() > 1) {
                    auto merged_pair = kpa::merge(
                        ctx, *runs[runs.size() - 2],
                        *runs[runs.size() - 1],
                        placeKpa(
                            ImpactTag::kUrgent,
                            (uint64_t{runs[runs.size() - 2]->size()}
                             + runs[runs.size() - 1]->size())
                                * sizeof(kpa::KpEntry)));
                    runs.pop_back();
                    runs.pop_back();
                    runs.push_back(std::move(merged_pair));
                }
                if (!runs.empty())
                    (*merged)[side] = std::move(runs.front());
            },
            [this, w, merged] {
                if (--closing_[w] == 0)
                    spawnCombine(w, merged);
            });
    }

    /** One pass over both sorted KPAs, calling the combiner per key. */
    void
    spawnCombine(columnar::WindowId w,
                 const std::shared_ptr<std::array<kpa::KpaPtr, 2>> &m)
    {
        spawnTracked(
            ImpactTag::kUrgent,
            [this, w, m](sim::CostLog &log, Emitter &em) {
                const kpa::Kpa *l = (*m)[0].get();
                const kpa::Kpa *r = (*m)[1].get();
                RowSink sink(out_cols_);
                coIterate(l, r, sink);

                const uint64_t n = (l ? l->size() : 0)
                                   + (r ? r->size() : 0);
                auto ctx = makeCtx(log, 1);
                if (l)
                    kpa::chargeKeyedReduceRange(ctx, *l, l->size(),
                                                l->size(), 0, out_cols_);
                if (r)
                    kpa::chargeKeyedReduceRange(ctx, *r, r->size(),
                                                r->size(), sink.rows(),
                                                out_cols_);
                log.cpu(2.0 * static_cast<double>(n));

                BundleHandle out = sink.toBundle(eng_.memory());
                if (out) {
                    em.push(Msg::ofBundle(std::move(out),
                                          pipe_.windows().start(w))
                                .withWindow(w));
                }
            },
            [this, w, m] {
                closing_.erase(w);
                flushWatermarks();
            });
    }

    /** Co-iterate two sorted KPAs by key runs (outer cogroup). */
    void
    coIterate(const kpa::Kpa *l, const kpa::Kpa *r, RowSink &sink)
    {
        const kpa::KpEntry *le = l ? l->entries() : nullptr;
        const kpa::KpEntry *re = r ? r->entries() : nullptr;
        uint32_t li = 0, ri = 0;
        const uint32_t ln = l ? l->size() : 0;
        const uint32_t rn = r ? r->size() : 0;
        auto run_len = [](const kpa::KpEntry *e, uint32_t i, uint32_t n) {
            uint32_t j = i + 1;
            while (j < n && e[j].key == e[i].key)
                ++j;
            return j - i;
        };
        while (li < ln || ri < rn) {
            if (ri >= rn || (li < ln && le[li].key < re[ri].key)) {
                const uint32_t m = run_len(le, li, ln);
                combine_(le[li].key, le + li, m, nullptr, 0, sink);
                li += m;
            } else if (li >= ln || re[ri].key < le[li].key) {
                const uint32_t m = run_len(re, ri, rn);
                combine_(re[ri].key, nullptr, 0, re + ri, m, sink);
                ri += m;
            } else {
                const uint32_t ml = run_len(le, li, ln);
                const uint32_t mr = run_len(re, ri, rn);
                combine_(le[li].key, le + li, ml, re + ri, mr, sink);
                li += ml;
                ri += mr;
            }
        }
    }

    /** Holds two-sided run state it does not capture: tenants running
     *  this operator recover by scratch-restart (replay + dedup). */
    SnapshotSupport
    snapshotState(OperatorSnapshot &, const OperatorSnapshot *,
                  sim::CostLog &) override
    {
        return SnapshotSupport::kUnsupported;
    }

    columnar::ColumnId key_col_;
    uint32_t out_cols_;
    Combiner combine_;
    std::map<columnar::WindowId, WindowState> state_;
    std::map<columnar::WindowId, int> closing_;
    columnar::WindowId min_open_ = 0;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_COGROUP_H
