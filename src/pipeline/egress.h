/**
 * @file
 * Egress: the pipeline sink. Records per-window output delay
 * (emission time minus window end), advances the pipeline's target
 * watermark, and counts externalized results.
 */

#ifndef SBHBM_PIPELINE_EGRESS_H
#define SBHBM_PIPELINE_EGRESS_H

#include <map>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Terminal operator: measurement + externalization bookkeeping. */
class EgressOp : public Operator
{
  public:
    explicit EgressOp(Pipeline &pipe, std::string name = "egress")
        : Operator(pipe, std::move(name))
    {
    }

    /** Total result records received. */
    uint64_t outputRecords() const { return output_records_; }

    /** Result record counts per window. */
    const std::map<columnar::WindowId, uint64_t> &
    windowRecords() const
    {
        return window_records_;
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(), "EgressOp expects result bundles");
        const columnar::WindowSpec spec = pipe_.windows();
        if (msg.has_window) {
            const columnar::WindowId w = msg.window;
            if (window_records_.find(w) == window_records_.end()) {
                // First result for this window: its output delay.
                const SimTime now = eng_.machine().now();
                const EventTime end = spec.end(w);
                eng_.reportOutputDelay(now > end ? now - end : 0);
            }
            window_records_[w] += msg.bundle->size();
            pipe_.noteWindowExternalized(w);
        }
        output_records_ += msg.bundle->size();
    }

    void
    onWatermark(Watermark wm) override
    {
        // Windows entirely before the watermark are done even if they
        // produced no results.
        const columnar::WindowSpec spec = pipe_.windows();
        const columnar::WindowId w = spec.windowOf(wm.ts);
        if (w > 0)
            pipe_.noteWindowExternalized(w - 1);
    }

  private:
    uint64_t output_records_ = 0;
    std::map<columnar::WindowId, uint64_t> window_records_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_EGRESS_H
