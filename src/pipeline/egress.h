/**
 * @file
 * Egress: the pipeline sink. Records per-window output delay
 * (emission time minus window end), advances the pipeline's target
 * watermark, and counts externalized results.
 *
 * For fault tolerance the egress also keeps an order-insensitive
 * checksum per window (summed per-record FNV hashes, so parallel
 * reduce shards may land in any order) and supports a dedup horizon:
 * a recovered tenant replaying past its checkpoint recomputes windows
 * the dead shard already externalized, and those results are
 * suppressed — counted and checksummed (recovery exactness can be
 * cross-checked against the pre-crash run) but not double-delivered.
 */

#ifndef SBHBM_PIPELINE_EGRESS_H
#define SBHBM_PIPELINE_EGRESS_H

#include <map>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Terminal operator: measurement + externalization bookkeeping. */
class EgressOp : public Operator
{
  public:
    explicit EgressOp(Pipeline &pipe, std::string name = "egress")
        : Operator(pipe, std::move(name))
    {
    }

    /** Total result records received (excludes suppressed replays). */
    uint64_t outputRecords() const { return output_records_; }

    /** Result record counts per window. */
    const std::map<columnar::WindowId, uint64_t> &
    windowRecords() const
    {
        return window_records_;
    }

    /**
     * Order-insensitive content checksum per window: the sum of each
     * result record's FNV-1a hash. Includes suppressed (replayed)
     * windows, which is exactly what makes recovery verifiable.
     */
    const std::map<columnar::WindowId, uint64_t> &
    windowChecksums() const
    {
        return window_checksums_;
    }

    /**
     * Suppress delivery of windows below @p w: they were externalized
     * by the pre-crash incarnation of this tenant. Replayed results
     * for them are checksummed and counted in suppressedRecords()
     * only.
     */
    void
    setDedupBefore(columnar::WindowId w)
    {
        dedup_before_ = std::max(dedup_before_, w);
    }

    /** Replayed result records suppressed by the dedup horizon. */
    uint64_t suppressedRecords() const { return suppressed_records_; }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(), "EgressOp expects result bundles");
        const columnar::WindowSpec spec = pipe_.windows();
        if (msg.has_window) {
            const columnar::WindowId w = msg.window;
            window_checksums_[w] += bundleChecksum(*msg.bundle);
            if (w < dedup_before_) {
                // Replayed output for a window the pre-crash run
                // already delivered: recompute (checksum above) but
                // do not double-deliver.
                suppressed_records_ += msg.bundle->size();
                return;
            }
            if (window_records_.find(w) == window_records_.end()) {
                // First result for this window: its output delay.
                const SimTime now = eng_.machine().now();
                const EventTime end = spec.end(w);
                eng_.reportOutputDelay(now > end ? now - end : 0);
            }
            window_records_[w] += msg.bundle->size();
            pipe_.noteWindowExternalized(w);
        }
        output_records_ += msg.bundle->size();
    }

    void
    onWatermark(Watermark wm) override
    {
        // Windows entirely before the watermark are done even if they
        // produced no results.
        const columnar::WindowSpec spec = pipe_.windows();
        const columnar::WindowId w = spec.windowOf(wm.ts);
        if (w > 0)
            pipe_.noteWindowExternalized(w - 1);
    }

  private:
    /** Sum of per-record FNV-1a hashes (shard-order insensitive). */
    static uint64_t
    bundleChecksum(const columnar::Bundle &b)
    {
        uint64_t sum = 0;
        for (uint32_t r = 0; r < b.size(); ++r) {
            uint64_t h = 1469598103934665603ull;
            const uint64_t *row = b.row(r);
            for (uint32_t c = 0; c < b.cols(); ++c) {
                h ^= row[c];
                h *= 1099511628211ull;
            }
            sum += h;
        }
        return sum;
    }

    uint64_t output_records_ = 0;
    uint64_t suppressed_records_ = 0;
    columnar::WindowId dedup_before_ = 0;
    std::map<columnar::WindowId, uint64_t> window_records_;
    std::map<columnar::WindowId, uint64_t> window_checksums_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_EGRESS_H
