/**
 * @file
 * External join (YSB step 3, Fig 5): replace each resident key with a
 * value looked up in an external key-value table — a small hash table
 * resident in HBM (paper §4.3: "a small table in HBM").
 *
 * Mirrors the paper's YSB execution: the operator updates resident
 * keys in place, optionally writes the new keys back to a record
 * column, and optionally swaps in another column (the timestamp) for
 * the next grouping stage.
 */

#ifndef SBHBM_PIPELINE_EXTERNAL_JOIN_H
#define SBHBM_PIPELINE_EXTERNAL_JOIN_H

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "algo/hash_table.h"
#include "pipeline/operator.h"
#include "sim/cost_model.h"

namespace sbhbm::pipeline {

/** KPA-in, KPA-out key-mapping join against an external KV table. */
class ExternalJoinOp : public Operator
{
  public:
    /**
     * @param table         key -> mapped-key store (shared; in HBM).
     * @param writeback_col write mapped keys to this record column
     *                      (columnar::kNoColumn to skip).
     * @param swap_col      afterwards swap this column in as resident
     *                      (columnar::kNoColumn to skip).
     */
    ExternalJoinOp(Pipeline &pipe, std::string name,
                   std::shared_ptr<algo::HashTable<uint64_t>> table,
                   columnar::ColumnId writeback_col,
                   columnar::ColumnId swap_col)
        : Operator(pipe, std::move(name)), table_(std::move(table)),
          writeback_col_(writeback_col), swap_col_(swap_col)
    {
        sbhbm_assert(table_ != nullptr, "external table required");
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isKpa(), "ExternalJoinOp expects KPAs");
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.kpa->recordCols());
            kpa::Kpa &k = *msg.kpa;

            // Adaptive probe tuning (host wall clock only — the
            // scalar, prefetched and every-width batched paths return
            // identical keys, and the charges below depend only on
            // sizes). One-shot: pick the batch width B by timing the
            // first bundle's keys at each candidate; steady-state:
            // feed the measured ns/probe into the hysteresis gate
            // that replaces the one-shot sysconf LLC guess.
            runtime::OpAdapt *adapt = opAdapt();
            if (adapt != nullptr && !adapt->probeBatchTuned()
                && k.size() >= 256) {
                std::vector<uint64_t> keys(k.size());
                for (uint32_t i = 0; i < k.size(); ++i)
                    keys[i] = k.entries()[i].key;
                runtime::autotuneProbeBatch(
                    *table_, keys.data(),
                    static_cast<uint32_t>(keys.size()));
                adapt->markProbeBatchTuned();
            }

            // Batched probes: the per-key chain walks overlap their
            // misses (HashTable::findBatch) instead of serializing.
            if (adapt != nullptr && k.size() > 0) {
                const auto t0 = std::chrono::steady_clock::now();
                kpa::updateKeysViaTable(ctx, k, *table_);
                const auto t1 = std::chrono::steady_clock::now();
                const double ns_per_probe =
                    static_cast<double>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(t1 - t0)
                            .count())
                    / static_cast<double>(k.size());
                table_->setPrefetch(adapt->probeTuner().observe(
                    ns_per_probe, table_->prefetchEnabled()));
            } else {
                kpa::updateKeysViaTable(ctx, k, *table_);
            }
            // Table probes: one random line per record into the
            // (HBM-resident, when available) table.
            ctx.hm.charge(log, ctx.hm.smallStateTier(),
                          sim::AccessPattern::kRandom,
                          uint64_t{k.size()} * sim::cost::kLineBytes);
            log.cpu(sim::cost::kHashProbeNs * k.size());

            if (writeback_col_ != columnar::kNoColumn)
                kpa::writeBackKeys(ctx, k, writeback_col_);
            if (swap_col_ != columnar::kNoColumn)
                kpa::keySwap(ctx, k, swap_col_);

            Msg out = Msg::ofKpa(std::move(msg.kpa), msg.min_ts);
            if (msg.has_window)
                out = std::move(out).withWindow(msg.window);
            em.push(std::move(out));
        });
    }

  private:
    std::shared_ptr<algo::HashTable<uint64_t>> table_;
    columnar::ColumnId writeback_col_;
    columnar::ColumnId swap_col_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_EXTERNAL_JOIN_H
