/**
 * @file
 * Extract operator: the first grouping-adjacent step of most
 * pipelines. Converts each ingested record bundle into a KPA whose
 * resident column is the grouping key (paper §4.3: "Prior to
 * executing any primitive, StreamBox-HBM examines it and transforms
 * the input of grouping primitives").
 */

#ifndef SBHBM_PIPELINE_EXTRACT_H
#define SBHBM_PIPELINE_EXTRACT_H

#include <string>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Bundle -> KPA(key_col), one task per bundle. */
class ExtractOp : public Operator
{
  public:
    ExtractOp(Pipeline &pipe, std::string name, columnar::ColumnId key_col)
        : Operator(pipe, std::move(name)), key_col_(key_col)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(), "ExtractOp expects record bundles");
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, tag, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            const auto place = placeKpa(
                tag,
                uint64_t{msg.bundle->size()} * sizeof(columnar::KpEntry));
            auto out = kpa::extract(ctx, *msg.bundle, key_col_, place);
            em.push(Msg::ofKpa(std::move(out), msg.min_ts));
        });
    }

  private:
    columnar::ColumnId key_col_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_EXTRACT_H
