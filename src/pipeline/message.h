/**
 * @file
 * Messages flowing between pipeline operators.
 *
 * Operators exchange either record bundles (full rows in DRAM) or
 * KPAs (partial records, usually in HBM), plus out-of-band
 * watermarks. A message optionally carries the temporal window its
 * data belongs to (set once a Windowing operator has partitioned the
 * stream).
 */

#ifndef SBHBM_PIPELINE_MESSAGE_H
#define SBHBM_PIPELINE_MESSAGE_H

#include <utility>

#include "columnar/bundle.h"
#include "columnar/window.h"
#include "kpa/kpa.h"

namespace sbhbm::pipeline {

using columnar::BundleHandle;
using columnar::WindowId;

/** One unit of data exchanged between operators. */
struct Msg
{
    /** Exactly one of bundle / kpa is set. */
    BundleHandle bundle;
    kpa::KpaPtr kpa;

    /** Window this data belongs to (valid when has_window). */
    WindowId window = 0;
    bool has_window = false;

    /** Earliest event timestamp in the payload (for impact tagging). */
    EventTime min_ts = 0;

    bool isBundle() const { return static_cast<bool>(bundle); }
    bool isKpa() const { return kpa != nullptr; }

    static Msg
    ofBundle(BundleHandle b, EventTime min_ts)
    {
        Msg m;
        m.bundle = std::move(b);
        m.min_ts = min_ts;
        return m;
    }

    static Msg
    ofKpa(kpa::KpaPtr k, EventTime min_ts)
    {
        Msg m;
        m.kpa = std::move(k);
        m.min_ts = min_ts;
        return m;
    }

    Msg
    withWindow(WindowId w) &&
    {
        window = w;
        has_window = true;
        return std::move(*this);
    }
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_MESSAGE_H
