/**
 * @file
 * Operator base class: task tracking, watermark alignment, and
 * causally-correct emission.
 *
 * Execution model. An operator reacts to incoming messages by
 * spawning tagged tasks. A task's functional work runs at dispatch
 * time (host), but its *outputs are held back* until the simulated
 * machine finishes charging the task's cost — only then are they
 * emitted downstream. This keeps virtual-time causality: downstream
 * work can never start before its input exists in simulated time.
 *
 * Watermarks. A watermark is forwarded downstream only after every
 * task this operator spawned before (and because of) the watermark
 * has completed, so "all data before the watermark has been
 * processed" holds at every stage. Two-input operators forward the
 * minimum of their per-port watermarks.
 */

#ifndef SBHBM_PIPELINE_OPERATOR_H
#define SBHBM_PIPELINE_OPERATOR_H

#include <deque>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "columnar/window.h"
#include "common/logging.h"
#include "common/unique_function.h"
#include "kpa/primitives.h"
#include "mem/pressure_director.h"
#include "pipeline/message.h"
#include "pipeline/pipeline.h"
#include "pipeline/state_snapshot.h"
#include "runtime/adaptive.h"
#include "runtime/executor.h"

namespace sbhbm::pipeline {

using columnar::Watermark;

/**
 * Base class of all pipeline operators.
 *
 * Every operator is also a ColdStateProvider registered with the
 * engine's PressureDirector: operators that accumulate window-state
 * KPAs override coldState() to expose the demotable ones (coldest
 * first), and the base class handles the actual migration plus
 * traffic charging when the director asks for HBM relief.
 */
class Operator : public mem::ColdStateProvider
{
  public:
    /** Output collector passed to task bodies. */
    class Emitter
    {
      public:
        void push(Msg m) { msgs_.push_back(std::move(m)); }

      private:
        friend class Operator;
        std::vector<Msg> msgs_;
    };

    /** Task body: do the work, log the cost, queue outputs. */
    using TaskBody = UniqueFunction<void(sim::CostLog &, Emitter &)>;

    Operator(Pipeline &pipe, std::string name, int num_ports = 1)
        : pipe_(pipe), eng_(pipe.engine()), name_(std::move(name)),
          num_ports_(num_ports)
    {
        sbhbm_assert(num_ports >= 1 && num_ports <= 2,
                     "1 or 2 input ports supported");
        eng_.director().registerProvider(this);
        if (eng_.config().adaptive.enabled) {
            adapt_ = std::make_unique<runtime::OpAdapt>(
                eng_.config().adaptive);
        }
    }

    ~Operator() override { eng_.director().unregisterProvider(this); }
    Operator(const Operator &) = delete;
    Operator &operator=(const Operator &) = delete;

    const std::string &name() const { return name_; }

    /** Stream (tenant) this operator's state is accounted to. */
    uint32_t providerStream() const override { return pipe_.streamId(); }

    /**
     * Demote cold window-state KPAs (coldState() order) to DRAM until
     * ~@p want_charged_bytes of HBM gauge capacity is freed, charging
     * the migration traffic: stream the entries out of the source
     * tier, write-allocate them on the destination.
     */
    mem::DemoteResult
    demoteColdState(uint64_t want_charged_bytes,
                    sim::CostLog &log) override
    {
        return relocateColdState(mem::Tier::kHbm, mem::Tier::kDram,
                                 want_charged_bytes, log);
    }

    /**
     * Tier-generic relief sweep over coldState(): migrate cold KPAs
     * resident on @p from onto @p to until ~@p want_charged_bytes of
     * @p from's gauge capacity is freed. Serves both the steady-state
     * demotion loop (HBM -> DRAM) and the exhaustion handler's
     * emergency direction (DRAM -> HBM promotion).
     */
    mem::DemoteResult
    relocateColdState(mem::Tier from, mem::Tier to,
                      uint64_t want_charged_bytes,
                      sim::CostLog &log) override
    {
        mem::DemoteResult res;
        for (kpa::Kpa *k : coldState()) {
            if (res.charged_bytes >= want_charged_bytes)
                break;
            if (k->tier() != from)
                continue;
            const uint64_t charged = k->chargedBytes();
            // Charge what the migration actually moves: the backing
            // allocation — entry_scale times larger than bytes() when
            // grouping state is full records (the NoKPA ablation).
            const uint64_t bytes = k->allocatedBytes();
            if (!k->migrate(to))
                continue; // destination full: keep the KPA where it is
            eng_.memory().charge(log, from,
                                 sim::AccessPattern::kSequential, bytes);
            eng_.memory().charge(log, to,
                                 sim::AccessPattern::kSequential,
                                 2 * bytes);
            res.charged_bytes += charged;
            ++res.kpas;
        }
        return res;
    }


    /**
     * Capture this operator's accumulated state into @p out for a
     * watermark-aligned checkpoint. Called only while the tenant is
     * quiesced (no task in flight, ingestion drained). @p prev is the
     * same operator's previous snapshot for incremental reuse (null
     * on the first checkpoint); copy traffic goes to @p log.
     *
     * The default declares the operator stateless (pass-through /
     * externally-reconstructible state). Stateful operators either
     * implement a real capture (SortedRunsOp) or override to return
     * kUnsupported, which makes the owning tenant recover by
     * scratch-restart (full replay + output dedup) instead of
     * checkpoint restore.
     */
    virtual SnapshotSupport
    snapshotState(OperatorSnapshot &out, const OperatorSnapshot *prev,
                  sim::CostLog &log)
    {
        (void)out;
        (void)prev;
        (void)log;
        return SnapshotSupport::kStateless;
    }

    /**
     * Reinstall state captured by snapshotState() into this (freshly
     * constructed) operator on the recovery shard.
     */
    virtual void restoreState(const OperatorSnapshot &snap) { (void)snap; }

    /** Wire this operator's output to @p down's input @p port. */
    void
    connectTo(Operator *down, int port = 0)
    {
        down_ = down;
        down_port_ = port;
    }

    /** Deliver a data message (called by upstream / the source). */
    void
    receive(Msg msg, int port = 0)
    {
        sbhbm_assert(port < num_ports_, "port %d out of range", port);
        process(std::move(msg), port);
    }

    /** Deliver a watermark (called by upstream / the source). */
    void
    receiveWatermark(Watermark wm, int port = 0)
    {
        sbhbm_assert(port < num_ports_, "port %d out of range", port);
        port_wm_[port] = std::max(port_wm_[port], wm.ts);

        EventTime aligned = port_wm_[0];
        for (int p = 1; p < num_ports_; ++p)
            aligned = std::min(aligned, port_wm_[p]);
        if (aligned <= aligned_wm_)
            return; // no progress (sources emit strictly positive wms)
        aligned_wm_ = aligned;

        pending_wms_.push_back(
            PendingWm{Watermark{aligned}, next_task_id_, false});
        flushWatermarks();
    }

  protected:
    /** React to a data message (spawn tasks via spawnTracked). */
    virtual void process(Msg msg, int port) = 0;

    /**
     * Window-state KPAs the pressure director may demote to DRAM,
     * coldest (furthest from externalization) first. Only state off
     * the close critical path may appear here: the director runs
     * between tasks, so returned KPAs must be quiescent (held
     * accumulation state, not inputs of in-flight tasks). Stateless
     * operators keep the default: nothing to demote.
     */
    virtual std::vector<kpa::Kpa *> coldState() { return {}; }

    /**
     * The aligned watermark advanced AND every task spawned before it
     * has completed: close any state with window end <= wm.ts by
     * spawning (usually Urgent) tasks.
     */
    virtual void onWatermark(Watermark wm) { (void)wm; }

    /**
     * May the watermark be forwarded downstream? Stateful operators
     * whose window close spawns *chains* of tasks (merge trees)
     * override this to hold the watermark until the chain drains,
     * then call flushWatermarks() when it does.
     */
    virtual bool
    readyToForward(Watermark wm) const
    {
        (void)wm;
        return true;
    }

    /**
     * Spawn a tracked task whose outputs are emitted on completion.
     * @param after optional hook run at (simulated) completion, after
     *        the task's messages were emitted — use it to chain
     *        dependent tasks without breaking virtual-time causality.
     */
    void
    spawnTracked(ImpactTag tag, TaskBody body,
                 std::function<void()> after = nullptr)
    {
        const uint64_t id = next_task_id_++;
        outstanding_.insert(id);
        auto emitter = std::make_shared<Emitter>();
        eng_.exec().spawn(
            tag,
            [body = std::move(body), emitter](sim::CostLog &log) {
                body(log, *emitter);
            },
            [this, id, emitter, after = std::move(after)] {
                for (auto &m : emitter->msgs_)
                    emitNow(std::move(m));
                if (after)
                    after();
                outstanding_.erase(id);
                flushWatermarks();
            },
            pipe_.streamId(),
            // The operator outlives its tasks (the done hook above
            // references it), so its name can label their spans.
            name_.c_str());
    }

    /** Immediately forward a message downstream (completion context). */
    void
    emitNow(Msg m)
    {
        if (down_ != nullptr)
            down_->receive(std::move(m), down_port_);
    }

    /** Impact tag for data whose earliest timestamp is @p ts. */
    ImpactTag classify(EventTime ts) const { return pipe_.classify(ts); }

    /**
     * Placement for a new KPA of this operator, tagged with the
     * pipeline's stream so per-tenant occupancy accounting and
     * placement classes apply.
     */
    kpa::Placement
    placeKpa(ImpactTag tag, uint64_t bytes_hint) const
    {
        return eng_.placeKpa(tag, bytes_hint, pipe_.streamId());
    }

    /** Primitive context charging to @p log with the right scale. */
    kpa::Ctx
    makeCtx(sim::CostLog &log, uint32_t record_cols) const
    {
        kpa::Ctx ctx{eng_.memory(), log};
        if (!eng_.useKpa()) {
            ctx.group_scale =
                static_cast<double>(record_cols) * sizeof(uint64_t)
                / sizeof(columnar::KpEntry);
        }
        // Kernels shard heavy host work (parallel sortKpa merge
        // rounds, sliced merges) across the engine's host pool;
        // simulated charges are unaffected. Null on single-threaded
        // hosts: the kernels then take their serial paths with no
        // pool ever constructed.
        ctx.pool = eng_.exec().hostPoolIfParallel();
        // Adaptive hooks: re-derive the kernel decision bits from the
        // EWMAs observed so far, then hand the hook block to the
        // kernels this task will run. Absent (the default) the
        // kernels take their historical paths.
        if (adapt_ != nullptr) {
            adapt_->refreshHooks();
            ctx.adapt = &adapt_->hooks();
        }
        return ctx;
    }

    /** Adaptive session of this operator (null = adaptation off). */
    runtime::OpAdapt *opAdapt() const { return adapt_.get(); }

    /**
     * Drive pending watermarks through their two stages:
     *  1. barrier reached -> onWatermark() (spawn close tasks),
     *  2. close barrier reached and readyToForward() -> forward.
     *
     * A barrier is the task-id horizon at the moment the watermark
     * was received: it is satisfied only when no task spawned before
     * that horizon is still outstanding. Completion order is NOT
     * spawn order (task costs and priorities differ), so this must
     * check the oldest outstanding id, not a completion count.
     */
    void
    flushWatermarks()
    {
        while (!pending_wms_.empty()) {
            PendingWm &front = pending_wms_.front();
            if (!front.closed) {
                if (outstandingBefore(front.barrier))
                    return;
                onWatermark(front.wm);
                front.closed = true;
                front.barrier = next_task_id_; // include the closes
            }
            if (outstandingBefore(front.barrier)
                || !readyToForward(front.wm)) {
                return;
            }
            const Watermark wm = front.wm;
            pending_wms_.pop_front();
            if (down_ != nullptr)
                down_->receiveWatermark(wm, down_port_);
        }
    }

    /** Is any task with id < @p barrier still outstanding? */
    bool
    outstandingBefore(uint64_t barrier) const
    {
        return !outstanding_.empty() && *outstanding_.begin() < barrier;
    }

    Pipeline &pipe_;
    Engine &eng_;

  private:
    struct PendingWm
    {
        Watermark wm;
        uint64_t barrier;
        bool closed;
    };

    std::string name_;
    int num_ports_;
    /** Adaptive state; mutable because makeCtx (const) refreshes the
     *  decision bits. All access is on the control path. */
    mutable std::unique_ptr<runtime::OpAdapt> adapt_;
    Operator *down_ = nullptr;
    int down_port_ = 0;

    EventTime port_wm_[2] = {0, 0};
    EventTime aligned_wm_ = 0;
    uint64_t next_task_id_ = 0;
    std::set<uint64_t> outstanding_;
    std::deque<PendingWm> pending_wms_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_OPERATOR_H
