/**
 * @file
 * ParDo-family operators (Table 1): stateless per-record functions.
 *
 * Filter/Sample do not produce new records, so they run as Selection
 * over KPA (paper §4.2): the output is a KPA of surviving
 * key/pointer pairs, allocated by the runtime's placement decision.
 */

#ifndef SBHBM_PIPELINE_PARDO_H
#define SBHBM_PIPELINE_PARDO_H

#include <functional>
#include <vector>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/**
 * Filter: select records satisfying a row predicate, producing
 * KPA(key_col) for downstream grouping. First grouping-adjacent
 * operator of YSB (step 2 of Fig 5).
 */
class FilterOp : public Operator
{
  public:
    using RowPred = std::function<bool(const uint64_t *)>;

    /**
     * @param key_col resident column of the produced KPA.
     * @param pred    keep rows for which pred(row) is true.
     */
    FilterOp(Pipeline &pipe, std::string name, columnar::ColumnId key_col,
             RowPred pred)
        : Operator(pipe, std::move(name)), key_col_(key_col),
          pred_(std::move(pred))
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(), "FilterOp expects record bundles");
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, tag, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            const auto place = placeKpa(
                tag, uint64_t{msg.bundle->size()} * sizeof(kpa::KpEntry));
            auto out = kpa::selectFromBundle(ctx, *msg.bundle, key_col_,
                                             pred_, place);
            if (!out->empty())
                em.push(Msg::ofKpa(std::move(out), msg.min_ts));
        });
    }

  private:
    columnar::ColumnId key_col_;
    RowPred pred_;
};

/**
 * KPA-side filter: selection over an already-extracted KPA,
 * predicate on the resident key.
 */
class KpaFilterOp : public Operator
{
  public:
    using KeyPred = std::function<bool(uint64_t)>;

    KpaFilterOp(Pipeline &pipe, std::string name, KeyPred pred)
        : Operator(pipe, std::move(name)), pred_(std::move(pred))
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isKpa(), "KpaFilterOp expects KPAs");
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, tag, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.kpa->recordCols());
            const auto place = placeKpa(
                tag, uint64_t{msg.kpa->size()} * sizeof(kpa::KpEntry));
            auto out = kpa::selectFromKpa(ctx, *msg.kpa, pred_, place);
            if (!out->empty()) {
                Msg outm = Msg::ofKpa(std::move(out), msg.min_ts);
                if (msg.has_window)
                    outm = std::move(outm).withWindow(msg.window);
                em.push(std::move(outm));
            }
        });
    }

  private:
    KeyPred pred_;
};

/**
 * Sample (Table 1, a non-record-producing ParDo like Filter): keep a
 * deterministic pseudo-random fraction of a KPA's records, selecting
 * on a hash of the resident key so the choice is stable across runs.
 */
class SampleOp : public KpaFilterOp
{
  public:
    SampleOp(Pipeline &pipe, std::string name, double rate,
             uint64_t seed = 0x9e3779b97f4a7c15ull)
        : KpaFilterOp(pipe, std::move(name),
                      [rate, seed](uint64_t key) {
                          // splitmix64 finalizer: small consecutive
                          // keys must land uniformly in [0, 1).
                          uint64_t h = key + seed;
                          h ^= h >> 30;
                          h *= 0xbf58476d1ce4e5b9ull;
                          h ^= h >> 27;
                          h *= 0x94d049bb133111ebull;
                          h ^= h >> 31;
                          return static_cast<double>(h >> 11)
                                     / static_cast<double>(1ull << 53)
                                 < rate;
                      })
    {
        sbhbm_assert(rate >= 0.0 && rate <= 1.0,
                     "sample rate outside [0,1]");
    }
};

/**
 * FlatMap (Table 1, a record-producing ParDo): apply a function to
 * every record of a bundle, emitting zero or more output rows per
 * input record into a new DRAM bundle (paper 4.2: "When they produce
 * new records (e.g., FlatMap), StreamBox-HBM performs Reduction and
 * emits new records to DRAM").
 */
class FlatMapOp : public Operator
{
  public:
    /** fn(row, emit): call emit(values...) any number of times. */
    using Emit = std::function<void(const uint64_t *)>;
    using RowFn = std::function<void(const uint64_t *, const Emit &)>;

    FlatMapOp(Pipeline &pipe, std::string name, uint32_t out_cols,
              RowFn fn)
        : Operator(pipe, std::move(name)), out_cols_(out_cols),
          fn_(std::move(fn))
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(), "FlatMapOp expects record bundles");
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            const columnar::Bundle &b = *msg.bundle;
            std::vector<uint64_t> flat;
            const Emit emit = [&](const uint64_t *row) {
                flat.insert(flat.end(), row, row + out_cols_);
            };
            for (uint32_t r = 0; r < b.size(); ++r)
                fn_(b.row(r), emit);

            const auto out_records =
                static_cast<uint32_t>(flat.size() / out_cols_);
            kpa::chargeUnkeyedReduce(ctx, b, out_records, out_cols_);
            if (out_records > 0) {
                auto *out = columnar::Bundle::create(
                    eng_.memory(), out_cols_, out_records);
                for (size_t i = 0; i < flat.size(); i += out_cols_)
                    out->append(&flat[i]);
                Msg outm = Msg::ofBundle(
                    columnar::BundleHandle::adopt(out), msg.min_ts);
                if (msg.has_window)
                    outm = std::move(outm).withWindow(msg.window);
                em.push(std::move(outm));
            }
        });
    }

  private:
    uint32_t out_cols_;
    RowFn fn_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_PARDO_H
