/**
 * @file
 * Pipeline container: owns the operator graph and the global
 * scheduling state shared by all operators.
 *
 * The "target watermark" of paper §5 lives here: the next window to
 * be externalized. Tasks touching that window are Urgent, tasks on
 * the following one or two windows are High, younger data is Low.
 */

#ifndef SBHBM_PIPELINE_PIPELINE_H
#define SBHBM_PIPELINE_PIPELINE_H

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "columnar/window.h"
#include "runtime/engine.h"
#include "runtime/impact_tag.h"

namespace sbhbm::pipeline {

using runtime::Engine;
using runtime::ImpactTag;

class Operator;

/** Operator graph plus shared pipeline-wide state. */
class Pipeline
{
  public:
    /**
     * @param stream the executor stream (tenant) every task of this
     *        pipeline runs under. Single-pipeline programs keep the
     *        default 0; the serving layer gives each tenant its own.
     */
    Pipeline(Engine &eng, columnar::WindowSpec spec,
             runtime::StreamId stream = 0)
        : eng_(eng), spec_(spec), stream_(stream)
    {
    }

    Pipeline(const Pipeline &) = delete;
    Pipeline &operator=(const Pipeline &) = delete;

    Engine &engine() { return eng_; }
    const columnar::WindowSpec &windows() const { return spec_; }

    /** The executor stream (tenant) this pipeline's tasks run under. */
    runtime::StreamId streamId() const { return stream_; }

    /** Construct an operator owned by the pipeline. */
    template <typename Op, typename... Args>
    Op &
    add(Args &&...args)
    {
        auto op = std::make_unique<Op>(std::forward<Args>(args)...);
        Op &ref = *op;
        ops_.push_back(std::move(op));
        return ref;
    }

    /**
     * Impact tag for data with earliest timestamp @p ts (paper §5,
     * "Performance impact tags"): Urgent on the next window to close,
     * High within the following two, Low beyond.
     */
    ImpactTag
    classify(EventTime ts) const
    {
        const columnar::WindowId w = spec_.windowOf(ts);
        if (w <= next_close_)
            return ImpactTag::kUrgent;
        if (w <= next_close_ + 2)
            return ImpactTag::kHigh;
        return ImpactTag::kLow;
    }

    /** The target watermark's window (next to be externalized). */
    columnar::WindowId targetWindow() const { return next_close_; }

    /** One externalization event (for throughput accounting). */
    struct Externalization
    {
        columnar::WindowId window;
        SimTime at;
    };

    /** Egress reports a window fully externalized (idempotent). */
    void
    noteWindowExternalized(columnar::WindowId w)
    {
        if (w < next_close_)
            return;
        const SimTime now = eng_.machine().now();
        for (columnar::WindowId x = next_close_; x <= w; ++x)
            externalizations_.push_back(Externalization{x, now});
        windows_externalized_ += w + 1 - next_close_;
        next_close_ = w + 1;
    }

    uint64_t windowsExternalized() const { return windows_externalized_; }

    /**
     * Recovery: resume the target watermark at window @p next without
     * recording externalizations for the skipped prefix — those
     * windows were externalized by the pre-crash incarnation.
     * Replayed data for windows below @p next still flows through the
     * operators (and is deduplicated at egress), but classify() tags
     * it Urgent and noteWindowExternalized() ignores it.
     */
    void
    resumeFrom(columnar::WindowId next)
    {
        next_close_ = std::max(next_close_, next);
    }

    /** The operator graph, in construction order. */
    const std::vector<std::unique_ptr<Operator>> &
    operators() const
    {
        return ops_;
    }

    /** Externalization times, in window order. */
    const std::vector<Externalization> &
    externalizations() const
    {
        return externalizations_;
    }

  private:
    Engine &eng_;
    columnar::WindowSpec spec_;
    runtime::StreamId stream_;
    std::vector<std::unique_ptr<Operator>> ops_;
    columnar::WindowId next_close_ = 0;
    uint64_t windows_externalized_ = 0;
    std::vector<Externalization> externalizations_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_PIPELINE_H
