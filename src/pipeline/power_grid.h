/**
 * @file
 * Power Grid (benchmark 9, derived from the DEBS'14 grand challenge):
 * find the houses with the most high-power plugs.
 *
 * Per window: (1) average power per plug, (2) average power over all
 * plugs, (3) per house, count plugs whose average exceeds the global
 * average, (4) emit the house(s) with the highest count.
 *
 * Record schema: [plug_gid, load, ts, house].
 */

#ifndef SBHBM_PIPELINE_POWER_GRID_H
#define SBHBM_PIPELINE_POWER_GRID_H

#include <map>
#include <utility>
#include <vector>

#include "pipeline/sorted_runs_op.h"

namespace sbhbm::pipeline {

/** The DEBS'14-style multi-step aggregation. */
class PowerGridOp : public SortedRunsOp
{
  public:
    static constexpr columnar::ColumnId kPlugCol = 0;
    static constexpr columnar::ColumnId kLoadCol = 1;
    static constexpr columnar::ColumnId kTsCol = 2;
    static constexpr columnar::ColumnId kHouseCol = 3;

    PowerGridOp(Pipeline &pipe, std::string name)
        : SortedRunsOp(pipe, std::move(name), kPlugCol)
    {
    }

  protected:
    /**
     * The second pass (per-house counts vs the global average) needs
     * whole-window state, so the reduction runs unsharded — part of
     * why Power Grid is the slowest benchmark of Fig 8.
     */
    uint32_t
    reduceShards(const kpa::Kpa &) const override
    {
        return 1;
    }

    void
    reduceWindow(columnar::WindowId w, const kpa::Kpa &merged,
                 uint32_t, uint32_t, sim::CostLog &log,
                 Emitter &em) override
    {
        auto ctx = makeCtx(log, merged.recordCols());

        // Pass 1: per-plug averages + global average (one KPA scan,
        // values loaded through record pointers).
        struct PlugAvg
        {
            uint64_t house;
            double avg;
        };
        std::vector<PlugAvg> plugs;
        double global_sum = 0;
        uint64_t global_cnt = 0;
        kpa::forEachKeyRun(
            merged, [&](uint64_t, const kpa::KpEntry *run, size_t n) {
                uint64_t sum = 0;
                for (size_t i = 0; i < n; ++i)
                    sum += run[i].row[kLoadCol];
                plugs.push_back(
                    PlugAvg{run[0].row[kHouseCol],
                            static_cast<double>(sum)
                                / static_cast<double>(n)});
                global_sum += static_cast<double>(sum);
                global_cnt += n;
            });
        const double global_avg =
            global_cnt ? global_sum / static_cast<double>(global_cnt)
                       : 0.0;

        // Pass 2: per-house counts of above-average plugs.
        std::map<uint64_t, uint64_t> high_per_house;
        for (const PlugAvg &p : plugs)
            if (p.avg > global_avg)
                ++high_per_house[p.house];

        uint64_t best = 0;
        for (const auto &[house, cnt] : high_per_house)
            best = std::max(best, cnt);

        RowSinkRows rows;
        for (const auto &[house, cnt] : high_per_house)
            if (cnt == best && best > 0)
                rows.push_back({house, cnt});

        kpa::chargeKeyedReduce(ctx, merged, merged.size(), rows.size(),
                               2);
        // The DEBS query is really a second windowed pipeline over
        // the per-plug aggregates (per-house grouping + global
        // average + max); charge it as one more scalar grouping pass
        // over the window (what makes Power Grid the slowest
        // benchmark of Fig 8).
        log.cpu(300.0 * static_cast<double>(merged.size())
                + 2.0 * static_cast<double>(plugs.size()));

        if (!rows.empty()) {
            auto *out = columnar::Bundle::create(
                eng_.memory(), 2, static_cast<uint32_t>(rows.size()));
            for (const auto &r : rows)
                out->append({r[0], r[1]});
            em.push(Msg::ofBundle(BundleHandle::adopt(out),
                                  pipe_.windows().start(w))
                        .withWindow(w));
        }
    }

  private:
    using RowSinkRows = std::vector<std::array<uint64_t, 2>>;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_POWER_GRID_H
