/**
 * @file
 * Base class for statefull grouping operators (Fig 4a):
 *
 *  - as windowed KPAs arrive, swap in the grouping key, sort each
 *    KPA, and save the sorted runs as the window's internal state;
 *  - when the window closes (watermark), merge all saved runs with a
 *    parallel binary merge tree — large merges are sliced at key
 *    boundaries across tasks (paper §4.2) — then run the subclass's
 *    reduction on the fully-sorted KPA.
 *
 * Close work runs Urgent: it is the critical path of pipeline output.
 * Each merge round is chained off the previous round's *simulated*
 * completion, so the tree's span shows up in output delay exactly as
 * it would on the real machine.
 */

#ifndef SBHBM_PIPELINE_SORTED_RUNS_OP_H
#define SBHBM_PIPELINE_SORTED_RUNS_OP_H

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Sorted-run accumulation + merge-tree close. */
class SortedRunsOp : public Operator
{
  public:
    SortedRunsOp(Pipeline &pipe, std::string name,
                 columnar::ColumnId key_col, int num_ports = 1)
        : Operator(pipe, std::move(name), num_ports), key_col_(key_col)
    {
    }

    /** Entries above which a pair merge is sliced across tasks. */
    static constexpr uint32_t kSliceThreshold = 1u << 17;

    /** Minimum entries per parallel reduce shard. */
    static constexpr uint32_t kReduceShardMin = 1u << 15;

  protected:
    /**
     * Subclass hook: consume key runs [lo, hi) of the window's
     * fully-merged sorted KPA and emit results. The range boundaries
     * fall on key-run boundaries; shards run as parallel Urgent tasks
     * (paper Fig 4a: every step uses all available threads).
     */
    virtual void reduceWindow(columnar::WindowId w, const kpa::Kpa &merged,
                              uint32_t lo, uint32_t hi, sim::CostLog &log,
                              Emitter &em) = 0;

    /**
     * Parallel shards the reduction may be split into; subclasses
     * whose reduction needs whole-window state return 1.
     */
    virtual uint32_t
    reduceShards(const kpa::Kpa &merged) const
    {
        const uint32_t by_size =
            std::max<uint32_t>(1, merged.size() / kReduceShardMin);
        return std::min(eng_.exec().cores(), by_size);
    }

    /**
     * May the adaptive policy route this operator's windows through
     * the hash-scatter grouping variant (groupSortKpa)? That variant
     * lays entries of one key out in *arrival* order rather than the
     * sort network's, so only subclasses whose reduction is
     * value-order-insensitive opt in (KeyedAggOp: every shipped
     * aggregation commutes over a key run). Sort-order-dependent
     * reductions keep the default and always take sort-merge.
     */
    virtual bool adaptiveGrouping() const { return false; }

    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isKpa() && msg.has_window,
                     "%s expects windowed KPAs", name().c_str());
        const columnar::WindowId w = msg.window;
        const ImpactTag tag = classify(msg.min_ts);
        // Adaptive: the window's grouping variant is decided at its
        // first data — a pure function of stats sampled from earlier
        // windows — and memoized so every run and the close agree.
        bool hash_variant = false;
        if (runtime::OpAdapt *adapt = opAdapt();
            adapt != nullptr && adaptiveGrouping()) {
            const uint64_t before = adapt->policy().decisions();
            bool switched = false;
            const runtime::GroupVariant v =
                adapt->groupVariantFor(w, &switched);
            hash_variant = v == runtime::GroupVariant::kHashScatter;
            if (adapt->policy().decisions() != before)
                recordDecision(v, switched, w);
        }
        spawnTracked(tag,
                     [this, w, hash_variant,
                      msg = std::move(msg)](sim::CostLog &log,
                                            Emitter &) mutable {
                         // The watermark barrier guarantees no data
                         // for an already-closed window can appear.
                         sbhbm_assert(w >= min_open_,
                                      "%s: late data for closed window"
                                      " %llu",
                                      name().c_str(),
                                      (unsigned long long)w);
                         auto ctx = makeCtx(log, msg.kpa->recordCols());
                         kpa::keySwap(ctx, *msg.kpa, key_col_);
                         if (runtime::OpAdapt *adapt = opAdapt();
                             adapt != nullptr && adaptiveGrouping()) {
                             // Sample the grouping key's distribution
                             // (post-swap, pre-sort: input order).
                             adapt->policy().observeRun(sampleRunStats(
                                 msg.kpa->entries(), msg.kpa->size()));
                         }
                         // Hash-variant runs stay unsorted: the close
                         // groups them in one O(n + G log G) pass
                         // instead of sorting every run on arrival.
                         if (!hash_variant)
                             kpa::sortKpa(ctx, *msg.kpa);
                         state_[w].push_back(std::move(msg.kpa));
                     });
    }

    void
    onWatermark(Watermark wm) override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        std::vector<columnar::WindowId> ready;
        for (const auto &[w, runs] : state_)
            if (spec.end(w) <= wm.ts)
                ready.push_back(w);
        for (columnar::WindowId w : ready)
            startClose(w);
    }

    bool
    readyToForward(Watermark wm) const override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        for (const auto &[w, runs] : state_)
            if (spec.end(w) <= wm.ts)
                return false;
        for (columnar::WindowId w : closing_)
            if (spec.end(w) <= wm.ts)
                return false;
        return true;
    }

    /** Windows currently accumulating state. */
    size_t openWindows() const { return state_.size(); }

  public:
    /**
     * Checkpoint capture: deep-copy every accumulated run (keys plus
     * the full rows its entries reference) so the snapshot survives
     * the shard. Incremental: a run whose Kpa::touchGen() is
     * unchanged since @p prev reuses the previous payload and charges
     * nothing. Copy traffic is charged DMA-style — entries stream out
     * of their tier, rows out of DRAM, the serialized payload
     * write-allocates in the DRAM staging area.
     */
    SnapshotSupport
    snapshotState(OperatorSnapshot &out, const OperatorSnapshot *prev,
                  sim::CostLog &log) override
    {
        sbhbm_assert(closing_.empty(),
                     "%s: snapshot during an in-flight window close",
                     name().c_str());
        out.support = SnapshotSupport::kSupported;
        out.min_open = min_open_;
        for (const auto &[w, runs] : state_) {
            for (uint32_t i = 0; i < runs.size(); ++i) {
                const kpa::Kpa &k = *runs[i];
                RunSnapshot rs;
                rs.window = w;
                rs.index = i;
                rs.touch_gen = k.touchGen();
                rs.sorted = k.sorted();
                rs.resident_col = k.residentColumn();
                rs.tier = k.tier();
                const RunSnapshot *p =
                    prev != nullptr ? prev->find(w, i) : nullptr;
                if (p != nullptr && p->data != nullptr
                    && p->touch_gen == rs.touch_gen
                    && p->data->keys.size() == k.size()) {
                    rs.data = p->data;
                    rs.reused = true;
                } else {
                    auto d = std::make_shared<RunData>();
                    const uint32_t cols =
                        k.sources().empty() ? 0 : k.recordCols();
                    d->cols = cols;
                    d->keys.resize(k.size());
                    d->rows.resize(uint64_t{k.size()} * cols);
                    for (uint32_t e = 0; e < k.size(); ++e) {
                        const kpa::KpEntry &kp = k.entries()[e];
                        d->keys[e] = kp.key;
                        if (cols > 0)
                            std::memcpy(&d->rows[uint64_t{e} * cols],
                                        kp.row,
                                        cols * sizeof(uint64_t));
                    }
                    const uint64_t entry_bytes = k.bytes();
                    const uint64_t row_bytes =
                        d->rows.size() * sizeof(uint64_t);
                    eng_.memory().charge(
                        log, k.tier(),
                        sim::AccessPattern::kSequential, entry_bytes);
                    eng_.memory().charge(
                        log, mem::Tier::kDram,
                        sim::AccessPattern::kSequential,
                        2 * row_bytes + entry_bytes);
                    rs.data = std::move(d);
                }
                out.runs.push_back(std::move(rs));
            }
        }
        return SnapshotSupport::kSupported;
    }

    /**
     * Restore onto a fresh operator: one synthetic bundle per run
     * holds the materialized rows, and a rebuilt KPA points into it.
     * Restored bundles carry no ingestion credit (they are state, not
     * in-flight data) and are reclaimed normally when the window
     * closes and the KPA drops its reference.
     */
    void
    restoreState(const OperatorSnapshot &snap) override
    {
        sbhbm_assert(state_.empty() && closing_.empty(),
                     "%s: restore into a non-empty operator",
                     name().c_str());
        min_open_ = std::max(min_open_, snap.min_open);
        for (const RunSnapshot &rs : snap.runs) {
            sbhbm_assert(rs.data != nullptr, "run snapshot lost payload");
            const RunData &d = *rs.data;
            const auto n = static_cast<uint32_t>(d.keys.size());
            kpa::Placement place;
            place.tier = rs.tier;
            place.stream = pipe_.streamId();
            if (!eng_.useKpa() && d.cols > 0) {
                place.entry_scale =
                    static_cast<double>(d.cols) * sizeof(uint64_t)
                    / sizeof(kpa::KpEntry);
            }
            kpa::KpaPtr k = kpa::Kpa::create(
                eng_.memory(), std::max<uint32_t>(n, 1), place);
            if (n > 0 && d.cols > 0) {
                columnar::Bundle *b = columnar::Bundle::create(
                    eng_.memory(), d.cols, n);
                uint64_t *rows = b->appendBlockRaw(n);
                std::memcpy(rows, d.rows.data(),
                            d.rows.size() * sizeof(uint64_t));
                for (uint32_t e = 0; e < n; ++e)
                    k->entries()[e] = kpa::KpEntry{
                        d.keys[e], rows + uint64_t{e} * d.cols};
                k->setSizeUnsafe(n);
                k->addSource(b);
                b->release(); // the KPA holds the surviving reference
            } else if (n > 0) {
                for (uint32_t e = 0; e < n; ++e)
                    k->entries()[e] = kpa::KpEntry{d.keys[e], nullptr};
                k->setSizeUnsafe(n);
            }
            k->setSorted(rs.sorted);
            k->setResidentColumn(rs.resident_col);
            state_[rs.window].push_back(std::move(k));
        }
    }

  protected:

    /**
     * Demotion candidates for the pressure director: the sorted runs
     * of every window *beyond* the target watermark's, coldest
     * (highest window id, i.e. furthest from closing) first. The
     * target window's runs stay put — they are about to be merged by
     * Urgent tasks and demoting them would tax the critical path.
     * Runs in state_ are quiescent between tasks (accumulated, not
     * captured by in-flight closures), which is what makes them safe
     * to migrate from the monitor tick.
     */
    std::vector<kpa::Kpa *>
    coldState() override
    {
        std::vector<kpa::Kpa *> cold;
        const columnar::WindowId hot = pipe_.targetWindow();
        for (auto it = state_.rbegin(); it != state_.rend(); ++it) {
            if (it->first <= hot)
                break;
            for (const kpa::KpaPtr &k : it->second)
                cold.push_back(k.get());
        }
        return cold;
    }

  private:
    using Runs = std::vector<kpa::KpaPtr>;
    using MergeDone = std::function<void(kpa::KpaPtr)>;

    void
    startClose(columnar::WindowId w)
    {
        auto it = state_.find(w);
        sbhbm_assert(it != state_.end(), "closing unknown window");
        auto runs = std::make_shared<Runs>(std::move(it->second));
        state_.erase(it);
        closing_.insert(w);
        min_open_ = std::max(min_open_, w + 1);
        if (runtime::OpAdapt *adapt = opAdapt())
            adapt->releaseWindow(w);
        // The close path derives from the runs themselves, not the
        // variant memo: any unsorted run (hash-variant accumulation,
        // or state restored from such a shard's checkpoint) routes
        // through the hash-scatter close. A checkpoint therefore
        // never needs to carry the variant map, and a restore onto an
        // adaptation-off engine still closes correctly.
        bool any_unsorted = false;
        for (const kpa::KpaPtr &r : *runs) {
            if (!r->sorted()) {
                any_unsorted = true;
                break;
            }
        }
        if (any_unsorted)
            hashClose(w, std::move(runs));
        else
            mergeRound(w, runs);
    }

    /**
     * Hash-scatter close: one Urgent task concatenates the window's
     * runs (unsorted arrival state) and group-sorts the result —
     * O(n + G log G) against the merge tree's O(n log n) over sorted
     * runs — then the usual sharded reduction runs on the fully
     * key-sorted KPA.
     */
    void
    hashClose(columnar::WindowId w, std::shared_ptr<Runs> runs)
    {
        auto slot = std::make_shared<kpa::KpaPtr>();
        spawnTracked(
            ImpactTag::kUrgent,
            [this, runs, slot](sim::CostLog &log, Emitter &) {
                auto ctx = makeCtx(log, recordColsOf(*runs->front()));
                kpa::KpaPtr all;
                if (runs->size() == 1) {
                    all = std::move(runs->front());
                } else {
                    uint32_t total = 0;
                    for (const kpa::KpaPtr &r : *runs)
                        total += r->size();
                    kpa::Placement place = placeKpa(
                        ImpactTag::kUrgent,
                        uint64_t{total} * sizeof(kpa::KpEntry));
                    if (!eng_.useKpa()) {
                        place.entry_scale =
                            static_cast<double>(
                                recordColsOf(*runs->front()))
                            * sizeof(uint64_t) / sizeof(kpa::KpEntry);
                    }
                    all = kpa::Kpa::create(eng_.memory(),
                                           std::max(total, 1u), place);
                    kpa::KpEntry *dst = all->appendCursor();
                    for (const kpa::KpaPtr &r : *runs) {
                        std::memcpy(dst, r->entries(),
                                    uint64_t{r->size()}
                                        * sizeof(kpa::KpEntry));
                        dst += r->size();
                        all->adoptSourcesFrom(*r);
                        ctx.hm.charge(log, r->tier(),
                                      sim::AccessPattern::kSequential,
                                      ctx.scaled(r->bytes()));
                    }
                    all->commitAppend(total);
                    all->setResidentColumn(
                        runs->front()->residentColumn());
                    ctx.hm.charge(log, all->tier(),
                                  sim::AccessPattern::kSequential,
                                  ctx.scaled(2 * all->bytes()));
                    ctx.kernel(sim::cost::kMergeNsPerElem
                               * static_cast<double>(total));
                    runs->clear();
                }
                kpa::groupSortKpa(ctx, *all);
                *slot = std::move(all);
            },
            [this, w, slot] { spawnReduce(w, std::move(*slot)); });
    }

    /** Telemetry for one fresh per-window variant decision. */
    void
    recordDecision(runtime::GroupVariant v, bool switched,
                   columnar::WindowId w)
    {
        obs::Telemetry *t = eng_.telemetry();
        if (t == nullptr)
            return;
        t->metrics
            .counter(obs::MetricsRegistry::path(
                {"adapt", name(), runtime::variantName(v)}))
            .add(1);
        if (switched) {
            t->trace.instant(eng_.machine().now(),
                             eng_.telemetryShard(), pipe_.streamId(),
                             "adapt", name() + "/switch",
                             {{"window", w}});
        }
    }

    /** One level of the binary merge tree. */
    void
    mergeRound(columnar::WindowId w, std::shared_ptr<Runs> runs)
    {
        if (runs->size() <= 1) {
            kpa::KpaPtr merged =
                runs->empty() ? nullptr : std::move(runs->front());
            spawnReduce(w, std::move(merged));
            return;
        }

        auto next = std::make_shared<Runs>();
        const size_t pairs = runs->size() / 2;
        next->resize(runs->size() - pairs);
        auto remaining = std::make_shared<size_t>(pairs);

        // Odd run passes through to the next round.
        if (runs->size() % 2 == 1)
            next->back() = std::move(runs->back());

        for (size_t p = 0; p < pairs; ++p) {
            auto a =
                std::make_shared<kpa::KpaPtr>(std::move((*runs)[2 * p]));
            auto b = std::make_shared<kpa::KpaPtr>(
                std::move((*runs)[2 * p + 1]));
            mergePair(std::move(a), std::move(b),
                      [this, w, next, remaining, p](kpa::KpaPtr m) {
                          (*next)[p] = std::move(m);
                          if (--*remaining == 0)
                              mergeRound(w, next);
                      });
        }
    }

    /**
     * Merge two sorted KPAs; @p done fires at simulated completion.
     * Big merges are sliced at key boundaries so every core
     * participates (paper §4.2).
     */
    void
    mergePair(std::shared_ptr<kpa::KpaPtr> a,
              std::shared_ptr<kpa::KpaPtr> b, MergeDone done)
    {
        const uint32_t total = (*a)->size() + (*b)->size();
        if (total <= kSliceThreshold) {
            auto slot = std::make_shared<kpa::KpaPtr>();
            spawnTracked(
                ImpactTag::kUrgent,
                [this, a, b, slot](sim::CostLog &log, Emitter &) {
                    auto ctx = makeCtx(log, recordColsOf(**a));
                    *slot = kpa::merge(
                        ctx, **a, **b,
                        placeKpa(ImpactTag::kUrgent,
                                      uint64_t{(*a)->size() + (*b)->size()}
                                          * sizeof(kpa::KpEntry)));
                },
                [slot, done = std::move(done)] {
                    done(std::move(*slot));
                });
            return;
        }

        // Sliced merge: allocate the output once, then S tasks merge
        // disjoint diagonal ranges; done fires when all S completed.
        const uint32_t slices = std::min<uint32_t>(
            eng_.exec().cores(),
            (total + kSliceThreshold - 1) / kSliceThreshold);
        kpa::Placement out_place = placeKpa(
            ImpactTag::kUrgent, uint64_t{total} * sizeof(kpa::KpEntry));
        if (!eng_.useKpa()) {
            out_place.entry_scale =
                static_cast<double>(recordColsOf(**a))
                * sizeof(uint64_t) / sizeof(kpa::KpEntry);
        }
        auto out = std::make_shared<kpa::KpaPtr>(
            kpa::Kpa::create(eng_.memory(), total, out_place));
        (*out)->setResidentColumn((*a)->residentColumn());
        (*out)->adoptSourcesFrom(**a);
        (*out)->adoptSourcesFrom(**b);

        auto body_left = std::make_shared<uint32_t>(slices);
        auto completion_left = std::make_shared<uint32_t>(slices);
        auto done_shared = std::make_shared<MergeDone>(std::move(done));
        for (uint32_t s = 0; s < slices; ++s) {
            spawnTracked(
                ImpactTag::kUrgent,
                [this, a, b, out, body_left, s, slices,
                 total](sim::CostLog &log, Emitter &) {
                    mergeSliceBody(**a, **b, **out, s, slices, total, log);
                    if (--*body_left == 0) {
                        (*out)->setSizeUnsafe(total);
                        (*out)->setSorted(true);
                    }
                },
                [out, completion_left, done_shared] {
                    if (--*completion_left == 0)
                        (*done_shared)(std::move(*out));
                });
        }
    }

    /** Functional work + cost charging of one merge slice. */
    void
    mergeSliceBody(const kpa::Kpa &ka, const kpa::Kpa &kb, kpa::Kpa &out,
                   uint32_t s, uint32_t slices, uint32_t total,
                   sim::CostLog &log)
    {
        const size_t d0 = uint64_t{total} * s / slices;
        const size_t d1 = uint64_t{total} * (s + 1) / slices;
        size_t a0, b0, a1, b1;
        algo::mergePathSplit(ka.entries(), ka.size(), kb.entries(),
                             kb.size(), d0, &a0, &b0);
        algo::mergePathSplit(ka.entries(), ka.size(), kb.entries(),
                             kb.size(), d1, &a1, &b1);
        algo::mergeRuns(ka.entries() + a0, a1 - a0, kb.entries() + b0,
                        b1 - b0, out.entries() + d0);

        // This slice's share of the merge traffic.
        auto ctx = makeCtx(log, recordColsOf(ka));
        ctx.hm.charge(log, ka.tier(), sim::AccessPattern::kSequential,
                      ctx.scaled((a1 - a0) * sizeof(kpa::KpEntry)));
        ctx.hm.charge(log, kb.tier(), sim::AccessPattern::kSequential,
                      ctx.scaled((b1 - b0) * sizeof(kpa::KpEntry)));
        ctx.hm.charge(log, out.tier(), sim::AccessPattern::kSequential,
                      ctx.scaled((d1 - d0) * sizeof(kpa::KpEntry)));
        ctx.kernel(sim::cost::kMergeNsPerElem
                   * static_cast<double>(d1 - d0));
        log.cpu(sim::cost::kMergeSliceNsPerChunk);
    }

    /**
     * Final stage: the subclass reduction as parallel shards split at
     * key-run boundaries, then release the window.
     */
    void
    spawnReduce(columnar::WindowId w, kpa::KpaPtr merged)
    {
        auto holder = std::make_shared<kpa::KpaPtr>(std::move(merged));
        if (*holder == nullptr || (*holder)->empty()) {
            spawnTracked(ImpactTag::kUrgent,
                         [](sim::CostLog &, Emitter &) {},
                         [this, w, holder] { releaseWindow(w, holder); });
            return;
        }

        const auto cuts =
            kpa::keyRunCuts(**holder, reduceShards(**holder));
        auto left = std::make_shared<size_t>(cuts.size() - 1);
        for (size_t s = 0; s + 1 < cuts.size(); ++s) {
            const uint32_t lo = cuts[s];
            const uint32_t hi = cuts[s + 1];
            spawnTracked(
                ImpactTag::kUrgent,
                [this, w, holder, lo, hi](sim::CostLog &log,
                                          Emitter &em) {
                    reduceWindow(w, **holder, lo, hi, log, em);
                },
                [this, w, holder, left] {
                    if (--*left == 0)
                        releaseWindow(w, holder);
                });
        }
    }

    void
    releaseWindow(columnar::WindowId w,
                  const std::shared_ptr<kpa::KpaPtr> &holder)
    {
        holder->reset(); // drop KPA: bundles may reclaim
        closing_.erase(w);
        flushWatermarks();
    }

    /** recordCols() tolerant of source-less KPAs. */
    static uint32_t
    recordColsOf(const kpa::Kpa &k)
    {
        return k.sources().empty() ? 1 : k.recordCols();
    }

    columnar::ColumnId key_col_;
    std::map<columnar::WindowId, Runs> state_;
    std::set<columnar::WindowId> closing_;
    columnar::WindowId min_open_ = 0;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_SORTED_RUNS_OP_H
