/**
 * @file
 * Operator state snapshots: the pipeline half of watermark-aligned
 * checkpointing.
 *
 * A snapshot is a host-side deep copy of an operator's accumulated
 * window state, taken while the tenant is quiesced (no task in
 * flight, ingestion drained). KPA entries hold raw pointers into
 * source bundles, so a snapshot materializes both the 16-byte entries
 * AND the full rows they reference — a restored operator must not
 * depend on any memory of the shard that died.
 *
 * Snapshots are incremental: each run records the touch generation of
 * the KPA it copied (Kpa::touchGen()); if the generation is unchanged
 * at the next checkpoint, the previous payload is reused via
 * shared_ptr and no copy traffic is charged. Runs are identified by
 * (window, position-in-window) — stable for the lifetime of a window
 * because runs are only ever appended while a window accumulates.
 */

#ifndef SBHBM_PIPELINE_STATE_SNAPSHOT_H
#define SBHBM_PIPELINE_STATE_SNAPSHOT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/record.h"
#include "columnar/window.h"
#include "sim/tier.h"

namespace sbhbm::pipeline {

/** How an operator participates in checkpointing. */
enum class SnapshotSupport : uint8_t {
    kStateless = 0, //!< nothing to save; restore is a no-op
    kSupported,     //!< state captured and restorable
    kUnsupported,   //!< holds state it cannot snapshot: the tenant
                    //!< falls back to scratch-restart recovery
};

/**
 * Deep-copied payload of one sorted run: keys and full rows, both in
 * KPA entry order. Immutable once captured; consecutive incremental
 * snapshots share it when the run's touch generation is unchanged.
 */
struct RunData
{
    uint32_t cols = 0;          //!< columns per referenced record
    std::vector<uint64_t> keys; //!< one resident key per entry
    std::vector<uint64_t> rows; //!< keys.size() * cols row values

    /** Serialized payload size (entry pairs + row data). */
    uint64_t
    bytes() const
    {
        return keys.size() * sizeof(columnar::KpEntry)
               + rows.size() * sizeof(uint64_t);
    }
};

/** One window-state run captured at a checkpoint. */
struct RunSnapshot
{
    columnar::WindowId window = 0;
    uint32_t index = 0;  //!< position within the window's run list
    uint64_t touch_gen = 0;
    bool sorted = false;
    bool reused = false; //!< payload shared with the previous snapshot
    columnar::ColumnId resident_col = columnar::kNoColumn;
    sim::Tier tier = sim::Tier::kHbm; //!< tier to restore onto
    std::shared_ptr<const RunData> data;
};

/** Everything one operator saved at a checkpoint. */
struct OperatorSnapshot
{
    std::string op;
    SnapshotSupport support = SnapshotSupport::kStateless;
    columnar::WindowId min_open = 0;
    std::vector<RunSnapshot> runs;

    /** The previous capture of run (@p w, @p index), if any. */
    const RunSnapshot *
    find(columnar::WindowId w, uint32_t index) const
    {
        for (const RunSnapshot &r : runs)
            if (r.window == w && r.index == index)
                return &r;
        return nullptr;
    }

    /** Payload bytes newly copied (excludes reused runs). */
    uint64_t
    copiedBytes() const
    {
        uint64_t b = 0;
        for (const RunSnapshot &r : runs)
            if (!r.reused && r.data != nullptr)
                b += r.data->bytes();
        return b;
    }

    /** Payload bytes carried over from the previous snapshot. */
    uint64_t
    reusedBytes() const
    {
        uint64_t b = 0;
        for (const RunSnapshot &r : runs)
            if (r.reused && r.data != nullptr)
                b += r.data->bytes();
        return b;
    }
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_STATE_SNAPSHOT_H
