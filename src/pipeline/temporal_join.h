/**
 * @file
 * Temporal Join (Table 1 / Fig 4b, benchmark 7): join two record
 * streams by key within each temporal window.
 *
 * Per the paper's design, each incoming sorted KPA is (1) joined
 * against the other stream's window state and (2) merged into its own
 * stream's window state, both per arrival — so every cross-stream key
 * pair within a window is emitted exactly once, streaming.
 *
 * Host-speed notes. The probe side (the incoming KPA scanned against
 * state) uses kpa::join's batched random-dereference machinery: the
 * payload rows behind both KPAs' record pointers are issued as
 * rolling groups of in-flight loads (Cimple-style software
 * pipelining) so DRAM misses overlap instead of serializing — both
 * along the scan and inside long duplicate-key runs. The sort of the
 * incoming KPA and the merge into window state shard across the
 * engine's host WorkerPool via kpa::sortKpa / kpa::merge. None of
 * this changes simulated costs or emitted bytes.
 */

#ifndef SBHBM_PIPELINE_TEMPORAL_JOIN_H
#define SBHBM_PIPELINE_TEMPORAL_JOIN_H

#include <map>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Two-stream windowed sort-merge join. */
class TemporalJoinOp : public Operator
{
  public:
    /**
     * @param key_col   join key column (both streams).
     * @param value_col payload column carried into output records.
     */
    TemporalJoinOp(Pipeline &pipe, std::string name,
                   columnar::ColumnId key_col, columnar::ColumnId value_col)
        : Operator(pipe, std::move(name), /*num_ports=*/2),
          key_col_(key_col), value_col_(value_col)
    {
    }

  protected:
    void
    process(Msg msg, int port) override
    {
        sbhbm_assert(msg.isKpa() && msg.has_window,
                     "TemporalJoinOp expects windowed KPAs");
        const columnar::WindowId w = msg.window;
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, w, port, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.kpa->recordCols());
            kpa::keySwap(ctx, *msg.kpa, key_col_);
            kpa::sortKpa(ctx, *msg.kpa);

            WindowState &ws = state_[w];
            kpa::KpaPtr &mine = ws.side[port];
            kpa::KpaPtr &theirs = ws.side[1 - port];

            // (1) Join the incoming KPA with the other side's state.
            if (theirs != nullptr && !theirs->empty()) {
                BundleHandle out = kpa::join(ctx, *msg.kpa, *theirs,
                                             {value_col_}, {value_col_});
                if (out->size() > 0) {
                    em.push(Msg::ofBundle(std::move(out), msg.min_ts)
                                .withWindow(w));
                }
            }

            // (2) Merge the incoming KPA into this side's state.
            if (mine == nullptr || mine->empty()) {
                mine = std::move(msg.kpa);
            } else {
                const ImpactTag state_tag =
                    classify(pipe_.windows().start(w));
                mine = kpa::merge(
                    ctx, *mine, *msg.kpa,
                    placeKpa(state_tag,
                                  (uint64_t{mine->size()}
                                   + msg.kpa->size())
                                      * sizeof(kpa::KpEntry)));
            }
        });
    }

    void
    onWatermark(Watermark wm) override
    {
        // All pairs were emitted streaming; closing just drops state.
        const columnar::WindowSpec spec = pipe_.windows();
        for (auto it = state_.begin(); it != state_.end();) {
            if (spec.end(it->first) <= wm.ts)
                it = state_.erase(it);
            else
                ++it;
        }
    }

    /**
     * Demotion candidates: both sides' accumulated state of windows
     * beyond the target watermark's, coldest first. A demoted side is
     * still probed/merged by later arrivals (the join reads charge
     * the tier the KPA actually lives on), so a victim stream keeps
     * draining — at DRAM speed.
     */
    std::vector<kpa::Kpa *>
    coldState() override
    {
        std::vector<kpa::Kpa *> cold;
        const columnar::WindowId hot = pipe_.targetWindow();
        for (auto it = state_.rbegin(); it != state_.rend(); ++it) {
            if (it->first <= hot)
                break;
            for (const kpa::KpaPtr &side : it->second.side)
                if (side != nullptr)
                    cold.push_back(side.get());
        }
        return cold;
    }

  private:
    struct WindowState
    {
        kpa::KpaPtr side[2];
    };

    /** Holds join state it does not capture: tenants running this
     *  operator recover by scratch-restart (replay + dedup). */
    SnapshotSupport
    snapshotState(OperatorSnapshot &, const OperatorSnapshot *,
                  sim::CostLog &) override
    {
        return SnapshotSupport::kUnsupported;
    }

    columnar::ColumnId key_col_;
    columnar::ColumnId value_col_;
    std::map<columnar::WindowId, WindowState> state_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_TEMPORAL_JOIN_H
