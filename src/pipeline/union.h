/**
 * @file
 * Union (Table 1): merge two streams into one, preserving watermark
 * correctness — the combined stream's watermark is the minimum of the
 * inputs' (which the Operator base's per-port alignment provides).
 *
 * Union is a pure grouping operator: it moves no record bytes; only
 * KPA handles (or bundle handles) flow through, so the charged cost is
 * the per-message bookkeeping.
 */

#ifndef SBHBM_PIPELINE_UNION_H
#define SBHBM_PIPELINE_UNION_H

#include <string>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Two-input pass-through with aligned watermarks. */
class UnionOp : public Operator
{
  public:
    UnionOp(Pipeline &pipe, std::string name)
        : Operator(pipe, std::move(name), /*num_ports=*/2)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [msg = std::move(msg)](sim::CostLog &log,
                                                 Emitter &em) mutable {
            log.cpu(sim::cost::kTaskDispatchNs / 4); // handle move only
            em.push(std::move(msg));
        });
    }
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_UNION_H
