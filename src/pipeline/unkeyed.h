/**
 * @file
 * Unkeyed windowed reductions (Table 1: AvgAll).
 *
 * Per Table 2, unkeyed reduction scans record bundles directly —
 * there is nothing to group, so no KPA is extracted (and the paper's
 * §4.3 "fewer than three columns" rule would skip extraction anyway).
 */

#ifndef SBHBM_PIPELINE_UNKEYED_H
#define SBHBM_PIPELINE_UNKEYED_H

#include <map>
#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/**
 * Windowed Average All (benchmark 5): mean of one value column over
 * every record in the window. Emits one (window_start, avg) record
 * per window.
 */
class AvgAllOp : public Operator
{
  public:
    AvgAllOp(Pipeline &pipe, std::string name, columnar::ColumnId ts_col,
             columnar::ColumnId value_col)
        : Operator(pipe, std::move(name)), ts_col_(ts_col),
          value_col_(value_col)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isBundle(), "AvgAllOp expects record bundles");
        const ImpactTag tag = classify(msg.min_ts);
        const columnar::WindowSpec spec = pipe_.windows();
        spawnTracked(tag, [this, spec, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            const columnar::Bundle &b = *msg.bundle;
            for (uint32_t r = 0; r < b.size(); ++r) {
                const uint64_t *row = b.row(r);
                Acc &acc = state_[spec.windowOf(row[ts_col_])];
                acc.sum += row[value_col_];
                ++acc.count;
            }
            kpa::chargeUnkeyedReduce(ctx, b, 0, 0);
        });
    }

    void
    onWatermark(Watermark wm) override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        for (auto it = state_.begin(); it != state_.end();) {
            const columnar::WindowId w = it->first;
            if (spec.end(w) > wm.ts) {
                ++it;
                continue;
            }
            const Acc acc = it->second;
            it = state_.erase(it);
            spawnTracked(ImpactTag::kUrgent,
                         [this, w, acc, spec](sim::CostLog &log,
                                              Emitter &em) {
                             auto *out = columnar::Bundle::create(
                                 eng_.memory(), 2, 1);
                             out->append(
                                 {spec.start(w),
                                  acc.count ? acc.sum / acc.count : 0});
                             log.cpu(sim::cost::kEmitNsPerRec);
                             em.push(Msg::ofBundle(
                                         BundleHandle::adopt(out),
                                         spec.start(w))
                                         .withWindow(w));
                         });
        }
    }

  private:
    struct Acc
    {
        uint64_t sum = 0;
        uint64_t count = 0;
    };

    /** Holds accumulators it does not capture: tenants running this
     *  operator recover by scratch-restart (replay + dedup). */
    SnapshotSupport
    snapshotState(OperatorSnapshot &, const OperatorSnapshot *,
                  sim::CostLog &) override
    {
        return SnapshotSupport::kUnsupported;
    }

    columnar::ColumnId ts_col_;
    columnar::ColumnId value_col_;
    std::map<columnar::WindowId, Acc> state_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_UNKEYED_H
