/**
 * @file
 * Windowed Filter (benchmark 8): two input streams; per window,
 * compute the average value of stream A, then keep the records of
 * stream B whose value exceeds that average.
 */

#ifndef SBHBM_PIPELINE_WINDOWED_FILTER_H
#define SBHBM_PIPELINE_WINDOWED_FILTER_H

#include <map>
#include <utility>
#include <vector>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/**
 * Port 0: record bundles of stream A (averaged).
 * Port 1: windowed KPAs of stream B with the value column resident
 *         (filtered against A's window average at close).
 */
class WindowedFilterOp : public Operator
{
  public:
    WindowedFilterOp(Pipeline &pipe, std::string name,
                     columnar::ColumnId ts_col,
                     columnar::ColumnId value_col)
        : Operator(pipe, std::move(name), /*num_ports=*/2),
          ts_col_(ts_col), value_col_(value_col)
    {
    }

  protected:
    void
    process(Msg msg, int port) override
    {
        if (port == 0)
            processAvgSide(std::move(msg));
        else
            processFilterSide(std::move(msg));
    }

    void
    onWatermark(Watermark wm) override
    {
        const columnar::WindowSpec spec = pipe_.windows();
        for (auto it = state_.begin(); it != state_.end();) {
            const columnar::WindowId w = it->first;
            if (spec.end(w) > wm.ts) {
                ++it;
                continue;
            }
            auto held = std::make_shared<std::vector<kpa::KpaPtr>>(
                std::move(it->second.held));
            const uint64_t avg = it->second.count
                                     ? it->second.sum / it->second.count
                                     : 0;
            it = state_.erase(it);

            // One Urgent task per held KPA: select survivors and
            // materialize them as output records.
            for (auto &k : *held) {
                auto kpa_shared =
                    std::make_shared<kpa::KpaPtr>(std::move(k));
                spawnTracked(
                    ImpactTag::kUrgent,
                    [this, w, avg, kpa_shared, spec](sim::CostLog &log,
                                                     Emitter &em) {
                        auto ctx =
                            makeCtx(log, (*kpa_shared)->recordCols());
                        auto survivors = kpa::selectFromKpa(
                            ctx, **kpa_shared,
                            [avg](uint64_t v) { return v > avg; },
                            placeKpa(ImpactTag::kUrgent,
                                          (*kpa_shared)->bytes()));
                        if (!survivors->empty()) {
                            BundleHandle out =
                                kpa::materialize(ctx, *survivors);
                            em.push(Msg::ofBundle(std::move(out),
                                                  spec.start(w))
                                        .withWindow(w));
                        }
                    });
            }
        }
    }

  private:
    void
    processAvgSide(Msg msg)
    {
        sbhbm_assert(msg.isBundle(),
                     "WindowedFilterOp port 0 expects bundles");
        const ImpactTag tag = classify(msg.min_ts);
        const columnar::WindowSpec spec = pipe_.windows();
        spawnTracked(tag, [this, spec, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &) mutable {
            auto ctx = makeCtx(log, msg.bundle->cols());
            const columnar::Bundle &b = *msg.bundle;
            for (uint32_t r = 0; r < b.size(); ++r) {
                const uint64_t *row = b.row(r);
                WindowState &ws = state_[spec.windowOf(row[ts_col_])];
                ws.sum += row[value_col_];
                ++ws.count;
            }
            kpa::chargeUnkeyedReduce(ctx, b, 0, 0);
        });
    }

    void
    processFilterSide(Msg msg)
    {
        sbhbm_assert(msg.isKpa() && msg.has_window,
                     "WindowedFilterOp port 1 expects windowed KPAs");
        const columnar::WindowId w = msg.window;
        const ImpactTag tag = classify(msg.min_ts);
        spawnTracked(tag, [this, w, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &) mutable {
            auto ctx = makeCtx(log, msg.kpa->recordCols());
            // Hold the KPA with values resident, ready for the close.
            kpa::keySwap(ctx, *msg.kpa, value_col_);
            state_[w].held.push_back(std::move(msg.kpa));
        });
    }

    struct WindowState
    {
        uint64_t sum = 0;
        uint64_t count = 0;
        std::vector<kpa::KpaPtr> held;
    };

    /** Holds held-KPA window state it does not capture: tenants
     *  running this operator recover by scratch-restart. */
    SnapshotSupport
    snapshotState(OperatorSnapshot &, const OperatorSnapshot *,
                  sim::CostLog &) override
    {
        return SnapshotSupport::kUnsupported;
    }

    columnar::ColumnId ts_col_;
    columnar::ColumnId value_col_;
    std::map<columnar::WindowId, WindowState> state_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_WINDOWED_FILTER_H
