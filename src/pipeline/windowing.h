/**
 * @file
 * Windowing operator (Table 1): group records into temporal windows
 * using Partition on KPA, with the timestamp column as partitioning
 * key and the window length as the key range (paper §4.2).
 */

#ifndef SBHBM_PIPELINE_WINDOWING_H
#define SBHBM_PIPELINE_WINDOWING_H

#include <utility>

#include "pipeline/operator.h"

namespace sbhbm::pipeline {

/** Partition KPAs into fixed windows by timestamp. */
class WindowOp : public Operator
{
  public:
    /**
     * @param ts_col timestamp column (swapped in as resident key if
     *               not already).
     */
    WindowOp(Pipeline &pipe, std::string name, columnar::ColumnId ts_col)
        : Operator(pipe, std::move(name)), ts_col_(ts_col)
    {
    }

  protected:
    void
    process(Msg msg, int) override
    {
        sbhbm_assert(msg.isKpa(), "WindowOp expects KPAs");
        const ImpactTag tag = classify(msg.min_ts);
        const columnar::WindowSpec spec = pipe_.windows();
        spawnTracked(tag, [this, tag, spec, msg = std::move(msg)](
                              sim::CostLog &log, Emitter &em) mutable {
            auto ctx = makeCtx(log, msg.kpa->recordCols());
            kpa::Kpa &k = *msg.kpa;
            kpa::keySwap(ctx, k, ts_col_);

            const auto place = placeKpa(
                tag, uint64_t{k.size()} * sizeof(kpa::KpEntry));
            auto parts = kpa::partitionByRange(ctx, k, spec.width, place);
            for (auto &rp : parts) {
                const columnar::WindowId w = rp.range;
                em.push(Msg::ofKpa(std::move(rp.part), spec.start(w))
                            .withWindow(w));
            }
        });
    }

  private:
    columnar::ColumnId ts_col_;
};

} // namespace sbhbm::pipeline

#endif // SBHBM_PIPELINE_WINDOWING_H
