/**
 * @file
 * Query builders and the measurement harness (see query.h).
 */

#include "queries/query.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "baseline/hash_engine.h"
#include "common/logging.h"
#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/aggregations.h"
#include "pipeline/egress.h"
#include "pipeline/extract.h"
#include "pipeline/external_join.h"
#include "pipeline/pardo.h"
#include "pipeline/pipeline.h"
#include "pipeline/power_grid.h"
#include "pipeline/temporal_join.h"
#include "pipeline/unkeyed.h"
#include "pipeline/windowed_filter.h"
#include "pipeline/windowing.h"

namespace sbhbm::queries {

const char *
queryName(QueryId id)
{
    switch (id) {
      case QueryId::kYsb: return "YSB";
      case QueryId::kTopKPerKey: return "TopK Per Key";
      case QueryId::kSumPerKey: return "Windowed Sum Per Key";
      case QueryId::kMedianPerKey: return "Windowed Med Per Key";
      case QueryId::kAvgPerKey: return "Windowed Avg Per Key";
      case QueryId::kAvgAll: return "Windowed Average";
      case QueryId::kUniqueCountPerKey: return "Unique Count Per Key";
      case QueryId::kTemporalJoin: return "Temporal Join";
      case QueryId::kWindowedFilter: return "Windowed Filter";
      case QueryId::kPowerGrid: return "Power Grid";
    }
    return "?";
}

const std::vector<QueryId> &
allQueries()
{
    static const std::vector<QueryId> all = {
        QueryId::kYsb,          QueryId::kTopKPerKey,
        QueryId::kSumPerKey,    QueryId::kMedianPerKey,
        QueryId::kAvgPerKey,    QueryId::kAvgAll,
        QueryId::kUniqueCountPerKey, QueryId::kTemporalJoin,
        QueryId::kWindowedFilter, QueryId::kPowerGrid,
    };
    return all;
}

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::kStreamBoxHbm: return "StreamBox-HBM";
      case EngineKind::kCaching: return "StreamBox-HBM Caching";
      case EngineKind::kDramOnly: return "StreamBox-HBM DRAM";
      case EngineKind::kCachingNoKpa: return "Caching NoKPA";
      case EngineKind::kFlinkLike: return "Flink-like";
    }
    return "?";
}

namespace {

using ingest::KvGen;
using ingest::PowerGridGen;
using ingest::YsbGen;
using pipeline::EgressOp;
using pipeline::Operator;
using pipeline::Pipeline;

/** Map an EngineKind to the engine configuration it denotes (Fig 9). */
runtime::EngineConfig
engineConfigFor(const QueryConfig &cfg)
{
    runtime::EngineConfig e;
    e.machine = cfg.machine;
    e.cores = cfg.cores;
    e.target_delay = cfg.target_delay;
    e.max_inflight_bundles = cfg.max_inflight_bundles;
    e.seed = cfg.seed;
    // The paper samples every 10 ms against 1-second windows; keep
    // the same sampling-to-window ratio when benches scale windows
    // down, so burst bandwidth (Figs 7b/8) is resolved identically.
    e.monitor_period =
        std::max<SimTime>(cfg.window_ns / 100, 100 * kNsPerUs);

    switch (cfg.engine) {
      case EngineKind::kStreamBoxHbm:
        e.mode = sim::MemoryMode::kFlat;
        e.use_kpa = true;
        e.use_knob = true;
        break;
      case EngineKind::kCaching:
        e.mode = sim::MemoryMode::kCache;
        e.use_kpa = true;
        e.use_knob = false; // placement is moot under hardware caching
        break;
      case EngineKind::kDramOnly:
        e.mode = sim::MemoryMode::kDramOnly;
        e.use_kpa = true;
        e.use_knob = false;
        break;
      case EngineKind::kCachingNoKpa:
        e.mode = sim::MemoryMode::kCache;
        e.use_kpa = false;
        e.use_knob = false;
        break;
      case EngineKind::kFlinkLike:
        e.mode = sim::MemoryMode::kCache;
        e.use_kpa = false;
        e.use_knob = false;
        break;
    }
    // A machine without HBM (X56) has nothing to cache into.
    if (!cfg.machine.hasHbm() && e.mode == sim::MemoryMode::kCache)
        e.mode = sim::MemoryMode::kDramOnly;
    return e;
}

/** Keyed pipeline skeleton: extract -> window -> agg -> egress. */
BuiltQuery
buildKeyedAgg(const QueryConfig &cfg, Pipeline &pipe,
              pipeline::Aggregation agg)
{
    auto &extract = pipe.add<pipeline::ExtractOp>(pipe, "extract",
                                                  KvGen::kKeyCol);
    auto &window = pipe.add<pipeline::WindowOp>(pipe, "window",
                                                KvGen::kTsCol);
    auto &aggop = pipe.add<pipeline::KeyedAggOp>(
        pipe, "agg", KvGen::kKeyCol, std::move(agg));
    auto &egress = pipe.add<EgressOp>(pipe);
    extract.connectTo(&window);
    window.connectTo(&aggop);
    aggop.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &extract;
    b.gen_a = std::make_unique<KvGen>(cfg.seed, cfg.key_range,
                                      cfg.value_range);
    b.egress = &egress;
    return b;
}

/** YSB (Fig 5): filter -> external join -> window -> count -> egress. */
BuiltQuery
buildYsb(const QueryConfig &cfg, Pipeline &pipe)
{
    auto table = YsbGen::campaignTable();
    auto &filter = pipe.add<pipeline::FilterOp>(
        pipe, "filter", YsbGen::kAdCol, [](const uint64_t *row) {
            return row[YsbGen::kEventTypeCol] == YsbGen::kViewEvent;
        });
    auto &join = pipe.add<pipeline::ExternalJoinOp>(
        pipe, "ext_join", table, YsbGen::kAdCol, YsbGen::kTsCol);
    auto &window = pipe.add<pipeline::WindowOp>(pipe, "window",
                                                YsbGen::kTsCol);
    auto &count = pipe.add<pipeline::KeyedAggOp>(
        pipe, "count_by_key", YsbGen::kAdCol, pipeline::aggs::countPerKey());
    auto &egress = pipe.add<EgressOp>(pipe);
    filter.connectTo(&join);
    join.connectTo(&window);
    window.connectTo(&count);
    count.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &filter;
    b.gen_a = std::make_unique<YsbGen>(cfg.seed);
    b.egress = &egress;
    return b;
}

/** YSB on the record-at-a-time hash engine (the Flink comparison). */
BuiltQuery
buildYsbFlinkLike(const QueryConfig &cfg, Pipeline &pipe)
{
    baseline::RecordAtATimeAggOp::Config rc;
    rc.filter_col = YsbGen::kEventTypeCol;
    rc.filter_value = YsbGen::kViewEvent;
    rc.key_col = YsbGen::kAdCol;
    rc.ts_col = YsbGen::kTsCol;
    rc.key_map = YsbGen::campaignTable();
    rc.pipeline_stages = 5; // the five boxes of Fig 1a
    rc.keys_hint = YsbGen::kCampaigns;

    auto &agg = pipe.add<baseline::RecordAtATimeAggOp>(pipe, "flink_ysb",
                                                       rc);
    auto &egress = pipe.add<EgressOp>(pipe);
    agg.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &agg;
    b.gen_a = std::make_unique<YsbGen>(cfg.seed);
    b.egress = &egress;
    return b;
}

/** Keyed query on the record-at-a-time hash engine (count semantics). */
BuiltQuery
buildKeyedFlinkLike(const QueryConfig &cfg, Pipeline &pipe)
{
    baseline::RecordAtATimeAggOp::Config rc;
    rc.key_col = KvGen::kKeyCol;
    rc.ts_col = KvGen::kTsCol;
    rc.pipeline_stages = 3; // source -> window-agg -> sink
    rc.keys_hint = cfg.key_range;

    auto &agg = pipe.add<baseline::RecordAtATimeAggOp>(pipe, "flink_agg",
                                                       rc);
    auto &egress = pipe.add<EgressOp>(pipe);
    agg.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &agg;
    b.gen_a = std::make_unique<KvGen>(cfg.seed, cfg.key_range,
                                      cfg.value_range);
    b.egress = &egress;
    return b;
}

/** Temporal Join (benchmark 7): two streams joined by key per window. */
BuiltQuery
buildTemporalJoin(const QueryConfig &cfg, Pipeline &pipe)
{
    auto &ex_l = pipe.add<pipeline::ExtractOp>(pipe, "extract_l",
                                               KvGen::kKeyCol);
    auto &ex_r = pipe.add<pipeline::ExtractOp>(pipe, "extract_r",
                                               KvGen::kKeyCol);
    auto &win_l = pipe.add<pipeline::WindowOp>(pipe, "win_l",
                                               KvGen::kTsCol);
    auto &win_r = pipe.add<pipeline::WindowOp>(pipe, "win_r",
                                               KvGen::kTsCol);
    auto &join = pipe.add<pipeline::TemporalJoinOp>(
        pipe, "join", KvGen::kKeyCol, KvGen::kValueCol);
    auto &egress = pipe.add<EgressOp>(pipe);
    ex_l.connectTo(&win_l);
    ex_r.connectTo(&win_r);
    win_l.connectTo(&join, 0);
    win_r.connectTo(&join, 1);
    join.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &ex_l;
    b.gen_a = std::make_unique<KvGen>(cfg.seed, cfg.key_range,
                                      cfg.value_range);
    b.entry_b = &ex_r;
    b.gen_b = std::make_unique<KvGen>(cfg.seed + 1, cfg.key_range,
                                      cfg.value_range);
    b.egress = &egress;
    return b;
}

/**
 * Windowed Filter (benchmark 8): stream A's window average filters
 * stream B's records.
 */
BuiltQuery
buildWindowedFilter(const QueryConfig &cfg, Pipeline &pipe)
{
    auto &filter = pipe.add<pipeline::WindowedFilterOp>(
        pipe, "win_filter", KvGen::kTsCol, KvGen::kValueCol);
    auto &ex_b = pipe.add<pipeline::ExtractOp>(pipe, "extract_b",
                                               KvGen::kKeyCol);
    auto &win_b = pipe.add<pipeline::WindowOp>(pipe, "win_b",
                                               KvGen::kTsCol);
    auto &egress = pipe.add<EgressOp>(pipe);
    ex_b.connectTo(&win_b);
    win_b.connectTo(&filter, 1);
    filter.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &filter; // stream A: bundles straight into port 0
    b.port_a = 0;
    b.gen_a = std::make_unique<KvGen>(cfg.seed, cfg.key_range,
                                      cfg.value_range, true);
    b.entry_b = &ex_b;
    b.gen_b = std::make_unique<KvGen>(cfg.seed + 1, cfg.key_range,
                                      cfg.value_range, true);
    b.egress = &egress;
    return b;
}

/** Power Grid (benchmark 9): houses with most high-power plugs. */
BuiltQuery
buildPowerGrid(const QueryConfig &cfg, Pipeline &pipe)
{
    auto &extract = pipe.add<pipeline::ExtractOp>(
        pipe, "extract", pipeline::PowerGridOp::kPlugCol);
    auto &window = pipe.add<pipeline::WindowOp>(
        pipe, "window", pipeline::PowerGridOp::kTsCol);
    auto &grid = pipe.add<pipeline::PowerGridOp>(pipe, "power_grid");
    auto &egress = pipe.add<EgressOp>(pipe);
    extract.connectTo(&window);
    window.connectTo(&grid);
    grid.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &extract;
    b.gen_a = std::make_unique<PowerGridGen>(cfg.seed);
    b.egress = &egress;
    return b;
}

/** Windowed Average (benchmark 5): unkeyed, bundles straight in. */
BuiltQuery
buildAvgAll(const QueryConfig &cfg, Pipeline &pipe)
{
    auto &avg = pipe.add<pipeline::AvgAllOp>(pipe, "avg_all",
                                             KvGen::kTsCol,
                                             KvGen::kValueCol);
    auto &egress = pipe.add<EgressOp>(pipe);
    avg.connectTo(&egress);

    BuiltQuery b;
    b.entry_a = &avg;
    b.gen_a = std::make_unique<KvGen>(cfg.seed, cfg.key_range,
                                      cfg.value_range);
    b.egress = &egress;
    return b;
}

} // namespace

BuiltQuery
buildQueryPipeline(const QueryConfig &cfg, pipeline::Pipeline &pipe)
{
    if (cfg.engine == EngineKind::kFlinkLike) {
        // The record-at-a-time engine implements the grouping-and-
        // count family; richer reductions would change only the CPU
        // constant, not the memory behaviour the comparison is about.
        if (cfg.id == QueryId::kYsb)
            return buildYsbFlinkLike(cfg, pipe);
        return buildKeyedFlinkLike(cfg, pipe);
    }

    switch (cfg.id) {
      case QueryId::kYsb:
        return buildYsb(cfg, pipe);
      case QueryId::kTopKPerKey:
        return buildKeyedAgg(
            cfg, pipe,
            pipeline::aggs::topKPerKey(KvGen::kValueCol, cfg.topk_k));
      case QueryId::kSumPerKey:
        return buildKeyedAgg(cfg, pipe,
                             pipeline::aggs::sumPerKey(KvGen::kValueCol));
      case QueryId::kMedianPerKey:
        return buildKeyedAgg(
            cfg, pipe, pipeline::aggs::medianPerKey(KvGen::kValueCol));
      case QueryId::kAvgPerKey:
        return buildKeyedAgg(cfg, pipe,
                             pipeline::aggs::avgPerKey(KvGen::kValueCol));
      case QueryId::kAvgAll:
        return buildAvgAll(cfg, pipe);
      case QueryId::kUniqueCountPerKey:
        return buildKeyedAgg(
            cfg, pipe,
            pipeline::aggs::uniqueCountPerKey(KvGen::kValueCol));
      case QueryId::kTemporalJoin:
        return buildTemporalJoin(cfg, pipe);
      case QueryId::kWindowedFilter:
        return buildWindowedFilter(cfg, pipe);
      case QueryId::kPowerGrid:
        return buildPowerGrid(cfg, pipe);
    }
    sbhbm_fatal("unknown query id %d", static_cast<int>(cfg.id));
    return BuiltQuery{}; // unreachable
}

/** Cumulative records a source had delivered before time @p t. */
static uint64_t
recordsDeliveredBefore(const ingest::Source &src, SimTime t)
{
    const auto &marks = src.checkpoints();
    uint64_t n = 0;
    for (const auto &m : marks) {
        if (m.t > t)
            break;
        n = m.records;
    }
    return n;
}

uint32_t
queryRecordBytes(QueryId id)
{
    switch (id) {
      case QueryId::kYsb:
        return 7 * sizeof(uint64_t);
      case QueryId::kWindowedFilter:
      case QueryId::kPowerGrid:
        return 4 * sizeof(uint64_t);
      default:
        return 3 * sizeof(uint64_t);
    }
}

QueryResult
runQuery(const QueryConfig &cfg)
{
    runtime::EngineConfig ecfg = engineConfigFor(cfg);

    // The in-flight budget (back-pressure bound) must cover a few
    // windows' worth of bundles at NIC rate, or ingestion stalls
    // waiting for a window that cannot close without its watermark.
    const double nic = cfg.ethernet_ingest
                           ? cfg.machine.nic_ethernet_bw * 0.8
                           : cfg.machine.nic_rdma_bw;
    const double win_records = simToSeconds(cfg.window_ns) * nic
                               / queryRecordBytes(cfg.id);
    ecfg.max_inflight_bundles = std::max(
        cfg.max_inflight_bundles,
        static_cast<uint32_t>(3.0 * win_records / cfg.bundle_records)
            + cfg.cores + 8);

    runtime::Engine eng(ecfg);
    pipeline::Pipeline pipe(eng, columnar::WindowSpec{cfg.window_ns});
    BuiltQuery built = buildQueryPipeline(cfg, pipe);

    ingest::SourceConfig scfg;
    // nic_*_bw are already payload bytes/sec; ZeroMQ over Ethernet
    // loses ~20% to TCP/framing overhead that RDMA's pre-allocated
    // bundles do not pay. Two-stream queries share the one NIC.
    scfg.nic_bw = cfg.ethernet_ingest
                      ? cfg.machine.nic_ethernet_bw * 0.8
                      : cfg.machine.nic_rdma_bw;
    if (built.entry_b != nullptr)
        scfg.nic_bw /= 2;
    scfg.copy_at_ingest = cfg.ethernet_ingest;
    scfg.bundle_records = cfg.bundle_records;
    scfg.total_records = cfg.total_records;
    scfg.offered_rate = cfg.offered_rate;
    scfg.bundles_per_watermark = cfg.bundles_per_watermark;

    ingest::Source src_a(eng, pipe, *built.gen_a, built.entry_a, scfg,
                         built.port_a);
    std::unique_ptr<ingest::Source> src_b;
    if (built.entry_b != nullptr) {
        src_b = std::make_unique<ingest::Source>(
            eng, pipe, *built.gen_b, built.entry_b, scfg, built.port_b);
    }

    eng.monitor().start();
    src_a.start();
    if (src_b)
        src_b->start();
    eng.machine().run();

    sbhbm_assert(src_a.finished(), "source A did not drain");
    sbhbm_assert(!src_b || src_b->finished(), "source B did not drain");

    QueryResult r;
    r.records_ingested = src_a.recordsIngested()
                         + (src_b ? src_b->recordsIngested() : 0);
    SimTime ingest_done = src_a.finishedAt();
    if (src_b)
        ingest_done = std::max(ingest_done, src_b->finishedAt());
    r.sim_seconds = simToSeconds(ingest_done);

    // Sustained rate: input records attributed to the middle
    // externalized windows divided by the span of their
    // externalization times. Robust in both regimes: NIC-bound runs
    // externalize on the window cadence (rate = ingest rate), and
    // capacity-bound runs externalize at the service rate — bursty
    // admission under back-pressure averages out across windows.
    double rate = 0;
    const columnar::WindowSpec spec{cfg.window_ns};
    auto records_before = [&](SimTime t) {
        uint64_t n = recordsDeliveredBefore(src_a, t);
        if (src_b)
            n += recordsDeliveredBefore(*src_b, t);
        return n;
    };
    // Only externalizations while ingestion was still running count:
    // once the stream ends, the backlog drains and intervals compress,
    // which would inflate the rate. Within those, take the median of
    // the per-interval rates over the later half of the run — robust
    // against the initial burst (in-flight budget filling at NIC
    // speed) and against batched same-time externalizations.
    std::vector<pipeline::Pipeline::Externalization> exts;
    for (const auto &e : pipe.externalizations())
        if (e.at <= ingest_done)
            exts.push_back(e);
    std::vector<double> interval_rates;
    for (size_t i = exts.size() / 2; i + 1 < exts.size(); ++i) {
        const auto &a = exts[i];
        const auto &b = exts[i + 1];
        if (b.at <= a.at)
            continue;
        const double dt = simToSeconds(b.at - a.at);
        const auto dn = static_cast<double>(
            records_before(spec.end(b.window))
            - records_before(spec.end(a.window)));
        if (dn > 0)
            interval_rates.push_back(dn / dt);
    }
    if (interval_rates.size() >= 3) {
        std::nth_element(interval_rates.begin(),
                         interval_rates.begin()
                             + interval_rates.size() / 2,
                         interval_rates.end());
        rate = interval_rates[interval_rates.size() / 2];
    }
    if (rate <= 0) {
        // Short run: fall back to the whole-run average.
        rate = r.sim_seconds > 0 ? static_cast<double>(r.records_ingested)
                                       / r.sim_seconds
                                 : 0.0;
    }
    r.throughput_mrps = rate / 1e6;
    r.throughput_gbps =
        rate * built.gen_a->cols() * sizeof(uint64_t) / 1e9;

    const auto &mon = eng.monitor();
    r.peak_hbm_bw_gbps = mon.hbmBwStat().max() / 1e9;
    r.avg_hbm_bw_gbps = mon.hbmBwStat().mean() / 1e9;
    r.peak_dram_bw_gbps = mon.dramBwStat().max() / 1e9;
    r.avg_dram_bw_gbps = mon.dramBwStat().mean() / 1e9;
    r.peak_hbm_used_gb = mon.hbmUsedStat().max() / 1e9;
    r.avg_hbm_used_gb = mon.hbmUsedStat().mean() / 1e9;
    r.samples = mon.samples();

    const auto &delays = eng.outputDelays();
    r.mean_delay_s = delays.mean();
    r.max_delay_s = delays.max();
    r.met_target_delay =
        delays.size() == 0
        || r.max_delay_s <= simToSeconds(cfg.target_delay);

    r.output_records = built.egress->outputRecords();
    r.windows_externalized = pipe.windowsExternalized();
    const double total_sec = simToSeconds(eng.machine().now());
    r.total_mrps = total_sec > 0
                       ? static_cast<double>(r.records_ingested)
                             / total_sec / 1e6
                       : 0.0;
    return r;
}

std::string
formatResult(const QueryConfig &cfg, const QueryResult &r)
{
    std::ostringstream os;
    os << queryName(cfg.id) << " [" << engineKindName(cfg.engine) << ", "
       << cfg.cores << " cores]: " << r.throughput_mrps << " M rec/s, "
       << "peak HBM " << r.peak_hbm_bw_gbps << " GB/s, peak DRAM "
       << r.peak_dram_bw_gbps << " GB/s, max delay " << r.max_delay_s
       << " s";
    return os.str();
}

} // namespace sbhbm::queries
