/**
 * @file
 * The ten evaluation queries (paper §6, "Benchmarks") as reusable
 * pipeline builders, plus the measurement harness that runs one query
 * on a configured engine and reports the quantities the paper's
 * figures plot: sustained throughput, peak/average per-tier memory
 * bandwidth, output delay, and the resource-monitor time series.
 *
 * This is the layer the bench binaries, the examples and the
 * integration tests all share: a QueryConfig describes *what* to run
 * on *which* machine, runQuery() wires the pipeline, drives the
 * simulated machine to completion and collects the numbers.
 */

#ifndef SBHBM_QUERIES_QUERY_H
#define SBHBM_QUERIES_QUERY_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "columnar/window.h"
#include "common/units.h"
#include "ingest/generator.h"
#include "pipeline/egress.h"
#include "runtime/engine.h"
#include "runtime/resource_monitor.h"

namespace sbhbm::queries {

/** The ten benchmarks of §6 (YSB plus the nine numbered pipelines). */
enum class QueryId {
    kYsb = 0,          //!< Yahoo streaming benchmark (Fig 1a / Fig 5)
    kTopKPerKey,       //!< benchmark 1
    kSumPerKey,        //!< benchmark 2
    kMedianPerKey,     //!< benchmark 3
    kAvgPerKey,        //!< benchmark 4
    kAvgAll,           //!< benchmark 5
    kUniqueCountPerKey, //!< benchmark 6
    kTemporalJoin,     //!< benchmark 7
    kWindowedFilter,   //!< benchmark 8
    kPowerGrid,        //!< benchmark 9
};

/** Number of distinct QueryId values. */
constexpr int kNumQueries = 10;

/** Display name matching the paper's figure captions. */
const char *queryName(QueryId id);

/** All ten queries in paper order. */
const std::vector<QueryId> &allQueries();

/** Engine family to run the query on (Figs 7 and 9). */
enum class EngineKind {
    kStreamBoxHbm = 0, //!< full system: flat memory, KPA, knob
    kCaching,          //!< KPA but hardware cache-mode memory
    kDramOnly,         //!< KPA but HBM disabled
    kCachingNoKpa,     //!< sequential algos on full records, cache mode
    kFlinkLike,        //!< record-at-a-time hash engine, cache mode
};

const char *engineKindName(EngineKind kind);

/** Everything needed to run one measurement point. */
struct QueryConfig
{
    QueryId id = QueryId::kSumPerKey;
    EngineKind engine = EngineKind::kStreamBoxHbm;

    /** Machine model (Table 3); KNL by default. */
    sim::MachineConfig machine = sim::MachineConfig::knl();

    /** Cores in use — the x-axis of Figs 2, 7, 8, 9. */
    unsigned cores = 64;

    /**
     * Window length in simulated ns. The paper uses 1-second windows
     * of 10 M records; benches default to shorter windows so host
     * runtime stays tractable — rates (records/sec) are unaffected
     * because they are ratios over simulated time.
     */
    SimTime window_ns = 100 * kNsPerMs;

    /** Total records to ingest across the whole run. */
    uint64_t total_records = 2'000'000;

    /** Records per ingested bundle. */
    uint32_t bundle_records = 50'000;

    /**
     * Offered ingestion rate, records/sec; 0 means NIC-limited (the
     * sender pushes as fast as the link allows). With back-pressure
     * on, the sustained rate the engine reaches *is* its throughput.
     */
    double offered_rate = 0;

    /** Use the Ethernet NIC + ingestion copy instead of RDMA. */
    bool ethernet_ingest = false;

    /** Watermark every k bundles instead of per window (Fig 10b). */
    uint32_t bundles_per_watermark = 0;

    /** Key cardinality for the KV benchmarks. */
    uint64_t key_range = 10'000;

    /** Value range for the KV benchmarks. */
    uint64_t value_range = 1'000'000;

    /** K of TopK Per Key. */
    uint32_t topk_k = 10;

    /** Bound on in-flight bundles (back-pressure; paper §5). */
    uint32_t max_inflight_bundles = 64;

    /** Target output delay (paper: 1 second). */
    SimTime target_delay = kNsPerSec;

    uint64_t seed = 1;
};

/** What one run measured. */
struct QueryResult
{
    /** Sustained ingestion throughput over the run, M records/sec. */
    double throughput_mrps = 0;

    /**
     * Whole-run average: total records / total virtual time including
     * the final drain, M records/sec. Noisier regimes (ablation A/B
     * comparisons at fixed work) prefer this monotone metric.
     */
    double total_mrps = 0;

    /** Sustained ingestion throughput, GB/sec of record payload. */
    double throughput_gbps = 0;

    /** Peak / mean HBM bandwidth over 10 ms monitor samples, GB/s. */
    double peak_hbm_bw_gbps = 0;
    double avg_hbm_bw_gbps = 0;

    /** Peak / mean DRAM bandwidth, GB/s. */
    double peak_dram_bw_gbps = 0;
    double avg_dram_bw_gbps = 0;

    /** Peak / mean HBM capacity used, GB. */
    double peak_hbm_used_gb = 0;
    double avg_hbm_used_gb = 0;

    /** Output delay stats over externalized windows, seconds. */
    double mean_delay_s = 0;
    double max_delay_s = 0;

    /** True when every externalized window met the target delay. */
    bool met_target_delay = true;

    uint64_t records_ingested = 0;
    uint64_t output_records = 0;
    uint64_t windows_externalized = 0;

    /** Simulated time from start to last watermark delivery. */
    double sim_seconds = 0;

    /** The raw 10 ms resource samples (the series behind Fig 10). */
    std::vector<runtime::ResourceSample> samples;
};

/**
 * A wired query pipeline: the operators live in the Pipeline that
 * built them; this carries the source entry points, the generators
 * that feed them, and the egress to read results from.
 */
struct BuiltQuery
{
    pipeline::Operator *entry_a = nullptr;
    int port_a = 0;
    std::unique_ptr<ingest::Generator> gen_a;

    pipeline::Operator *entry_b = nullptr; //!< second stream, if any
    int port_b = 0;
    std::unique_ptr<ingest::Generator> gen_b;

    pipeline::EgressOp *egress = nullptr;
};

/**
 * Wire cfg.id's operator graph into @p pipe (which may target any
 * engine and stream — the serving layer builds one per tenant on a
 * shared engine). Only the query-shape fields of @p cfg are read:
 * id, engine kind, seed, key/value ranges, topk_k.
 */
BuiltQuery buildQueryPipeline(const QueryConfig &cfg,
                              pipeline::Pipeline &pipe);

/** Input record width (bytes) of a query's stream. */
uint32_t queryRecordBytes(QueryId id);

/**
 * Build the query's pipeline on a fresh engine, ingest
 * cfg.total_records, run the simulated machine until the pipeline
 * drains, and report the measured rates.
 */
QueryResult runQuery(const QueryConfig &cfg);

/** Pretty one-line summary (used by examples and benches). */
std::string formatResult(const QueryConfig &cfg, const QueryResult &r);

} // namespace sbhbm::queries

#endif // SBHBM_QUERIES_QUERY_H
