/**
 * @file
 * Adaptive query execution: per-operator, per-stream kernel-variant
 * selection from cheap window statistics (src/common/profiler.h).
 *
 * The tree carries pairs of strategies with workload-dependent
 * winners — sorted vs unsorted partitionByRange, scalar vs batched
 * hash probing, sort-merge vs hash-scatter grouping. Historically
 * each choice was frozen at build time or gated on a one-shot
 * sysconf guess. With EngineConfig::adaptive.enabled every Operator
 * owns an OpAdapt session: a VariantPolicy picks the grouping
 * variant for the *next* window from EWMA-smoothed stats of the
 * windows already seen, re-deciding as the stream drifts, with
 * hysteresis (a dead band plus consecutive-window confirmation) so
 * an oscillating stream cannot make it flap.
 *
 * Determinism contract. The grouping decision — the only one that
 * changes simulated charges — is a pure function of deterministically
 * sampled statistics: same seed => same stats => same decisions =>
 * CostLogs pinned. The sort-precheck and partition-scan bits change
 * host wall clock only (charges depend only on sizes), and the probe
 * prefetch/batch autotune changes neither results nor charges, which
 * is why it alone may consult the host clock. With adaptation off
 * (the default) no hook is installed and every golden stays
 * bit-identical.
 */

#ifndef SBHBM_RUNTIME_ADAPTIVE_H
#define SBHBM_RUNTIME_ADAPTIVE_H

#include <chrono>
#include <cstdint>
#include <vector>

#include "algo/hash_table.h"
#include "common/profiler.h"

namespace sbhbm::runtime {

/** Grouping strategy for one window of a SortedRunsOp. */
enum class GroupVariant : uint8_t
{
    /** Sort each run, binary merge tree at close (the paper's path). */
    kSortMerge = 0,
    /** Keep runs unsorted; hash-scatter group at close (Hyrise-style
     *  AggregateHash). O(n + G log G): wins when G << n. */
    kHashScatter = 1,
};

inline const char *
variantName(GroupVariant v)
{
    return v == GroupVariant::kSortMerge ? "sort_merge" : "hash_scatter";
}

/** Tuning knobs of the adaptive plane (defaults: adaptation off). */
struct AdaptiveConfig
{
    /** Master switch. Off reproduces every historical golden bit for
     *  bit; operators then install no hooks at all. */
    bool enabled = false;

    /** EWMA smoothing for window statistics. */
    double ewma_alpha = 0.4;

    // Grouping-variant thresholds (dead band between them).
    /** Desire hash-scatter when the dup-factor EWMA is above this. */
    double dup_hash_min = 8.0;
    /** Desire sort-merge when the dup-factor EWMA is below this. */
    double dup_sort_max = 3.0;
    /** Desire sort-merge whenever sortedness is above this (sorted
     *  runs make the sort path nearly free, whatever the dup). */
    double sorted_sort_min = 0.90;
    /** Consecutive windows a new desire must persist before the
     *  policy actually switches (no-flap hysteresis). */
    uint32_t confirm_windows = 2;

    // Host-only sort/partition scan bits (hysteresis bands).
    double precheck_on = 0.75;  //!< sort sortedness EWMA >= : precheck
    double precheck_off = 0.30; //!< <= : skip the presort scan
    double scan_on = 0.95;  //!< partition sortedness EWMA >= : scan
    double scan_off = 0.60; //!< <= : stop scanning

    // Probe autotune (host wall clock; results/charges unaffected).
    /** Measured ns/probe above which prefetching is enabled. */
    double probe_prefetch_on_ns = 25.0;
    /** Measured ns/probe below which prefetching is disabled. */
    double probe_prefetch_off_ns = 12.0;
};

/** One grouping decision, as returned per window. */
struct GroupDecision
{
    GroupVariant variant = GroupVariant::kSortMerge;
    bool switched = false; //!< this decision changed the variant
};

/**
 * The deterministic decision core: EWMA window statistics in,
 * grouping variant (with hysteresis) out. No clocks, no RNG — a pure
 * fold over the observed stat stream, so a recorded decision log
 * replays bit-identically.
 */
class VariantPolicy
{
  public:
    explicit VariantPolicy(const AdaptiveConfig &cfg) : cfg_(cfg) {}

    /** Fold one run's sampled statistics into the EWMAs. */
    void
    observeRun(const WindowStats &s)
    {
        if (s.rows == 0)
            return;
        sortedness_.add(s.sortedness, cfg_.ewma_alpha);
        dup_.add(s.dup_factor, cfg_.ewma_alpha);
        groups_.add(s.est_groups, cfg_.ewma_alpha);
    }

    /**
     * Pick the grouping variant for the next window. Called once per
     * window (first data seen); the desire must persist for
     * confirm_windows consecutive decisions before the variant
     * actually changes.
     */
    GroupDecision
    decideWindow()
    {
        ++decisions_;
        GroupVariant desired = current_;
        if (dup_.initialized()) {
            if (sortedness_.value() >= cfg_.sorted_sort_min
                || dup_.value() <= cfg_.dup_sort_max) {
                desired = GroupVariant::kSortMerge;
            } else if (dup_.value() >= cfg_.dup_hash_min) {
                desired = GroupVariant::kHashScatter;
            }
            // else: inside the dead band — keep the current variant.
        }

        GroupDecision d;
        if (desired != current_) {
            pending_count_ =
                desired == pending_ ? pending_count_ + 1 : 1;
            pending_ = desired;
            if (pending_count_ >= cfg_.confirm_windows) {
                current_ = desired;
                pending_count_ = 0;
                ++switches_;
                d.switched = true;
            }
        } else {
            pending_ = current_;
            pending_count_ = 0;
        }
        d.variant = current_;
        return d;
    }

    GroupVariant current() const { return current_; }
    uint64_t decisions() const { return decisions_; }
    uint64_t switches() const { return switches_; }
    const Ewma &sortednessEwma() const { return sortedness_; }
    const Ewma &dupEwma() const { return dup_; }
    const Ewma &groupsEwma() const { return groups_; }

  private:
    AdaptiveConfig cfg_;
    Ewma sortedness_{};
    Ewma dup_{};
    Ewma groups_{};
    GroupVariant current_ = GroupVariant::kSortMerge;
    GroupVariant pending_ = GroupVariant::kSortMerge;
    uint32_t pending_count_ = 0;
    uint64_t decisions_ = 0;
    uint64_t switches_ = 0;
};

/**
 * Hysteresis gate for batched hash probing, fed by *measured* probe
 * cost instead of the old one-shot sysconf LLC guess: a table that
 * probes fast is cache-resident (prefetch is pure overhead), one
 * that probes slow is missing to memory (prefetch pays). Wall-clock
 * driven — legal because the prefetch path is results- and
 * charge-identical to the scalar path by construction.
 */
class ProbeAutotuner
{
  public:
    explicit ProbeAutotuner(const AdaptiveConfig &cfg) : cfg_(cfg) {}

    /**
     * Feed one measurement; @return the prefetch decision given the
     * current setting (band between off/on thresholds keeps it).
     */
    bool
    observe(double ns_per_probe, bool current_prefetch)
    {
        ns_.add(ns_per_probe, cfg_.ewma_alpha);
        ++measurements_;
        if (ns_.value() >= cfg_.probe_prefetch_on_ns)
            return true;
        if (ns_.value() <= cfg_.probe_prefetch_off_ns)
            return false;
        return current_prefetch;
    }

    double ewmaNs() const { return ns_.value(); }
    uint64_t measurements() const { return measurements_; }

  private:
    AdaptiveConfig cfg_;
    Ewma ns_{};
    uint64_t measurements_ = 0;
};

/**
 * Pick the probe batch width B for @p table by timing findBatch over
 * @p keys at each candidate width and keeping the fastest. Purely a
 * host-wall-clock tune: every width returns identical results.
 */
template <typename V>
inline uint32_t
autotuneProbeBatch(algo::HashTable<V> &table,
                   const uint64_t *keys, uint32_t n)
{
    const uint32_t candidates[] = {8, 16, 32};
    std::vector<V *> out(n);
    uint32_t best_b = table.probeBatch();
    double best_ns = -1;
    for (const uint32_t b : candidates) {
        table.setProbeBatch(b);
        const auto t0 = std::chrono::steady_clock::now();
        table.findBatch(keys, n, out.data());
        const auto t1 = std::chrono::steady_clock::now();
        const double ns = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1
                                                                 - t0)
                .count());
        if (best_ns < 0 || ns < best_ns) {
            best_ns = ns;
            best_b = b;
        }
    }
    table.setProbeBatch(best_b);
    return best_b;
}

/**
 * Per-operator adaptive session: the policy, the kernel hook block
 * installed through Operator::makeCtx, the per-window decision memo,
 * and the probe autotuner. Owned by pipeline::Operator when the
 * engine's AdaptiveConfig is enabled; all access happens on the
 * single-threaded simulation control path.
 */
class OpAdapt
{
  public:
    explicit OpAdapt(const AdaptiveConfig &cfg)
        : cfg_(cfg), policy_(cfg), probe_(cfg)
    {
        hooks_.ewma_alpha = cfg.ewma_alpha;
    }

    VariantPolicy &policy() { return policy_; }
    const VariantPolicy &policy() const { return policy_; }
    KernelAdapt &hooks() { return hooks_; }
    ProbeAutotuner &probeTuner() { return probe_; }
    const AdaptiveConfig &config() const { return cfg_; }

    /**
     * Re-derive the kernel decision bits from the kernel-observed
     * EWMAs (hysteresis bands). Called from makeCtx, i.e. before
     * every task body — cheap, branch-only.
     */
    void
    refreshHooks()
    {
        if (hooks_.sort_sortedness.initialized()) {
            const double v = hooks_.sort_sortedness.value();
            if (v >= cfg_.precheck_on)
                hooks_.sort_precheck = true;
            else if (v <= cfg_.precheck_off)
                hooks_.sort_precheck = false;
        }
        if (hooks_.partition_sortedness.initialized()) {
            const double v = hooks_.partition_sortedness.value();
            if (v >= cfg_.scan_on)
                hooks_.partition_sorted_scan = true;
            else if (v <= cfg_.scan_off)
                hooks_.partition_sorted_scan = false;
        }
    }

    /**
     * The grouping variant for window @p w: decided once at the
     * window's first data (from stats of *previous* windows), then
     * memoized so every run and the close of the window agree.
     * @param[out] switched true when this call changed the variant.
     */
    GroupVariant
    groupVariantFor(uint64_t w, bool *switched)
    {
        for (const auto &[win, var] : window_variant_) {
            if (win == w) {
                *switched = false;
                return var;
            }
        }
        const GroupDecision d = policy_.decideWindow();
        window_variant_.emplace_back(w, d.variant);
        if (d.variant == GroupVariant::kSortMerge)
            ++sort_merge_windows_;
        else
            ++hash_scatter_windows_;
        *switched = d.switched;
        return d.variant;
    }

    /** Drop the memo entry of a closed window. */
    void
    releaseWindow(uint64_t w)
    {
        for (auto it = window_variant_.begin();
             it != window_variant_.end(); ++it) {
            if (it->first == w) {
                window_variant_.erase(it);
                return;
            }
        }
    }

    uint64_t sortMergeWindows() const { return sort_merge_windows_; }
    uint64_t hashScatterWindows() const
    {
        return hash_scatter_windows_;
    }

    bool probeBatchTuned() const { return probe_batch_tuned_; }
    void markProbeBatchTuned() { probe_batch_tuned_ = true; }

  private:
    AdaptiveConfig cfg_;
    VariantPolicy policy_;
    KernelAdapt hooks_;
    ProbeAutotuner probe_;
    /** Open-window variant memo; a handful of entries, scanned. */
    std::vector<std::pair<uint64_t, GroupVariant>> window_variant_;
    uint64_t sort_merge_windows_ = 0;
    uint64_t hash_scatter_windows_ = 0;
    bool probe_batch_tuned_ = false;
};

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_ADAPTIVE_H
