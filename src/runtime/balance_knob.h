/**
 * @file
 * The demand balance knob (paper §5, "Demand balance knob").
 *
 * A global vector {k_low, k_high}, each in [0,1]: the probability
 * that a Low / High tagged task's KPA is allocated on HBM. Urgent
 * tasks always allocate from the reserved HBM pool. The knob is
 * refreshed at every resource sample in increments of Delta = 0.05:
 * k_low moves first; k_high only moves when k_low is already at an
 * extreme and the pipeline's output delay has >= 10% headroom below
 * the target.
 */

#ifndef SBHBM_RUNTIME_BALANCE_KNOB_H
#define SBHBM_RUNTIME_BALANCE_KNOB_H

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "runtime/impact_tag.h"

namespace sbhbm::runtime {

/** Tunable thresholds of the balancing policy. */
struct KnobPolicy
{
    /** Increment Delta per refresh (paper: 0.05). */
    double delta = 0.05;

    /** HBM capacity fraction above which we shift load to DRAM. */
    double hbm_high = 0.80;

    /** HBM capacity fraction below which we shift load back to HBM. */
    double hbm_low = 0.50;

    /** DRAM bandwidth fraction considered saturated. */
    double dram_high = 0.85;

    /** Required output-delay headroom before k_high may move. */
    double delay_headroom = 0.10;
};

/** The {k_low, k_high} placement-probability knob. */
class BalanceKnob
{
  public:
    explicit BalanceKnob(KnobPolicy policy = KnobPolicy{})
        : policy_(policy)
    {
    }

    double kLow() const { return k_low_; }
    double kHigh() const { return k_high_; }

    /**
     * Decide whether a new KPA for a task tagged @p tag goes to HBM.
     * Urgent always does (from the reserved pool, handled by the
     * caller passing urgent=true into the allocator).
     */
    bool
    preferHbm(ImpactTag tag, Rng &rng) const
    {
        switch (tag) {
          case ImpactTag::kUrgent:
            return true;
          case ImpactTag::kHigh:
            return rng.nextBool(k_high_);
          case ImpactTag::kLow:
            return rng.nextBool(k_low_);
        }
        return true;
    }

    /**
     * Refresh the knob from monitored resource usage (paper Fig 6).
     *
     * @param hbm_capacity_frac  used fraction of HBM capacity.
     * @param dram_bw_frac       used fraction of DRAM bandwidth.
     * @param delay_headroom_ok  output delay is >= 10% below target.
     */
    void
    update(double hbm_capacity_frac, double dram_bw_frac,
           bool delay_headroom_ok)
    {
        const bool hbm_pressured = hbm_capacity_frac > policy_.hbm_high;
        const bool dram_saturated = dram_bw_frac > policy_.dram_high;

        if (hbm_pressured && !dram_saturated) {
            // Zone 2: high demand for HBM capacity -> spill more KPAs
            // to DRAM, spending DRAM bandwidth to relieve capacity.
            lower(delay_headroom_ok);
        } else if (!hbm_pressured && dram_saturated) {
            // Zone 3: DRAM bandwidth is the bottleneck and HBM has
            // room -> pull allocations back onto HBM.
            raise(delay_headroom_ok);
        } else if (hbm_capacity_frac < policy_.hbm_low && !dram_saturated
                   && (k_low_ < 1.0 || k_high_ < 1.0)) {
            // Comfortable on both axes: drift back to the default of
            // everything-on-HBM.
            raise(delay_headroom_ok);
        }
        // Zone 1 (both high or both low, balanced): hold steady; when
        // both saturate, ingestion back-pressure takes over.
    }

  private:
    /** Snap to an exact multiple of delta to avoid drift. */
    double
    quantize(double k) const
    {
        const double steps = std::round(k / policy_.delta);
        return std::clamp(steps * policy_.delta, 0.0, 1.0);
    }

    /** Shift placement toward DRAM: k_low first, then k_high. */
    void
    lower(bool delay_headroom_ok)
    {
        if (k_low_ > 0.0)
            k_low_ = quantize(k_low_ - policy_.delta);
        else if (delay_headroom_ok && k_high_ > 0.0)
            k_high_ = quantize(k_high_ - policy_.delta);
    }

    /**
     * Shift placement toward HBM. Mirrors lower(): the paper moves
     * k_low first and only touches k_high once k_low sits at an
     * extreme (here: 1) and the delay headroom allows it.
     */
    void
    raise(bool delay_headroom_ok)
    {
        if (k_low_ < 1.0)
            k_low_ = quantize(k_low_ + policy_.delta);
        else if (delay_headroom_ok && k_high_ < 1.0)
            k_high_ = quantize(k_high_ + policy_.delta);
    }

    KnobPolicy policy_;
    double k_low_ = 1.0;  //!< paper: initial value 1
    double k_high_ = 1.0; //!< paper: initial value 1
};

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_BALANCE_KNOB_H
