/**
 * @file
 * The StreamBox-HBM engine runtime: one object owning the simulated
 * machine, hybrid memory, executor, balance knob and monitor.
 *
 * This is the composition root a pipeline runs against. The ablation
 * variants of Fig 9 are configurations of this one engine:
 *
 *   StreamBox-HBM          : kFlat  + use_kpa + knob
 *   StreamBox-HBM Caching  : kCache + use_kpa (placement moot)
 *   StreamBox-HBM DRAM     : kDramOnly + use_kpa
 *   Caching NoKPA          : kCache + !use_kpa (grouping moves full
 *                            records; cost charged accordingly)
 */

#ifndef SBHBM_RUNTIME_ENGINE_H
#define SBHBM_RUNTIME_ENGINE_H

#include <algorithm>
#include <map>
#include <memory>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "kpa/kpa.h"
#include "mem/hybrid_memory.h"
#include "mem/placement_policy.h"
#include "mem/pressure_director.h"
#include "obs/trace.h"
#include "runtime/adaptive.h"
#include "runtime/balance_knob.h"
#include "runtime/executor.h"
#include "runtime/impact_tag.h"
#include "runtime/resource_monitor.h"
#include "sim/machine.h"

namespace sbhbm::runtime {

/** Engine-level configuration. */
struct EngineConfig
{
    sim::MachineConfig machine = sim::MachineConfig::knl();
    sim::MemoryMode mode = sim::MemoryMode::kFlat;

    /** Core slots the executor uses (the x-axis of most figures). */
    unsigned cores = 64;

    /**
     * Host threads for kernels' wall-clock fork-join pool (0 = auto:
     * $SBHBM_HOST_THREADS or the hardware concurrency). Results and
     * CostLog output are bit-identical at every setting; this only
     * changes how fast the host gets there.
     */
    unsigned host_threads = 0;

    /**
     * When false, grouping operates on full records instead of
     * extracted KPAs (the "NoKPA" ablation): operators skip Extract
     * and charge full-record traffic for every grouping pass.
     */
    bool use_kpa = true;

    /** Enable the dynamic {k_low, k_high} placement knob. */
    bool use_knob = true;

    /**
     * Pressure-driven demotion of cold window-state KPAs (the memory
     * control plane's feedback loop). Disabled by default: the knob
     * alone reproduces the paper's placement behavior exactly.
     */
    mem::PressureConfig pressure{};

    /** Target output delay (paper: 1 second). */
    SimTime target_delay = kNsPerSec;

    /** Resource sampling period (paper: 10 ms). */
    SimTime monitor_period = 10 * kNsPerMs;

    uint64_t seed = 1;

    /**
     * Adaptive query execution (per-window profiling, kernel-variant
     * switching). Off by default: every existing configuration and
     * golden is bit-identical to the pre-adaptive engine.
     */
    AdaptiveConfig adaptive{};

    /**
     * Ingestion credit: maximum bundles in flight (ingested but not
     * fully processed) before the source stops pulling. This is the
     * back-pressure mechanism of paper §5.
     */
    uint32_t max_inflight_bundles = 512;
};

/** The engine runtime. */
class Engine
{
  public:
    explicit Engine(EngineConfig cfg)
        : cfg_(cfg), machine_(cfg.machine), hm_(machine_.config(), cfg.mode),
          exec_(machine_, cfg.cores), rng_(cfg.seed),
          knob_policy_(hm_, knob_, rng_, cfg.use_knob),
          director_(hm_, cfg.pressure),
          monitor_(machine_, hm_, knob_, [this] { return delayHeadroomOk(); },
                   cfg.monitor_period, &director_)
    {
        if (cfg.host_threads != 0)
            exec_.setHostThreads(cfg.host_threads);
    }

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    const EngineConfig &config() const { return cfg_; }
    sim::Machine &machine() { return machine_; }
    mem::HybridMemory &memory() { return hm_; }
    Executor &exec() { return exec_; }
    BalanceKnob &knob() { return knob_; }
    ResourceMonitor &monitor() { return monitor_; }
    Rng &rng() { return rng_; }
    bool useKpa() const { return cfg_.use_kpa; }

    /**
     * Install the telemetry plane on this engine and its executor and
     * monitor. @p shard labels every event this engine records (the
     * trace's pid track). Null uninstalls; the default — no telemetry
     * — keeps every hot path at a single pointer null check and the
     * simulation bit-identical to the uninstrumented build.
     */
    void
    setTelemetry(obs::Telemetry *t, uint32_t shard = 0)
    {
        tele_ = t;
        tele_shard_ = shard;
        exec_.setTelemetry(t, shard);
        monitor_.setTelemetry(t, shard);
    }

    /** The installed telemetry plane (null = disabled). */
    obs::Telemetry *telemetry() const { return tele_; }

    /** Shard id stamped on this engine's trace events. */
    uint32_t telemetryShard() const { return tele_shard_; }

    /**
     * Decide the placement of a new KPA for a task tagged @p tag on
     * @p stream, by consulting the installed PlacementPolicy. The
     * default KnobPlacementPolicy is the paper's "single control
     * knob" (§1): Urgent tasks always get HBM (reserved pool); others
     * flip the knob's weighted coin, falling back to DRAM when HBM
     * has no non-reserved room.
     */
    kpa::Placement
    placeKpa(ImpactTag tag, uint64_t bytes_hint, StreamId stream = 0)
    {
        const mem::PlacementPolicy::Decision d =
            placement_policy_->place(tag, bytes_hint, stream);
        kpa::Placement p;
        p.tier = d.tier;
        p.urgent = d.urgent;
        p.stream = stream;
        return p;
    }

    /** The installed placement policy (default: the knob wrapper). */
    mem::PlacementPolicy &placementPolicy() { return *placement_policy_; }

    /**
     * Install a placement policy (non-owning; caller keeps it alive).
     * nullptr restores the default knob-driven policy.
     */
    void
    setPlacementPolicy(mem::PlacementPolicy *p)
    {
        placement_policy_ = p != nullptr ? p : &knob_policy_;
    }

    /** Bias @p stream's placement (serving-layer SLA demotion). */
    void
    setStreamPlacementClass(StreamId stream, mem::PlacementClass c)
    {
        placement_policy_->setStreamClass(stream, c);
    }

    /** The pressure director (cold-state demotion control loop). */
    mem::PressureDirector &director() { return director_; }
    const mem::PressureDirector &director() const { return director_; }

    // ---------------------------------------------------------------
    // Graceful exhaustion (the fault-tolerant serving layer's opt-in).
    //
    // By default allocation exhaustion is fatal — the historical
    // behaviour every single-pipeline figure reproduces bit for bit.
    // A serving fleet instead wants to *degrade*: first try to free
    // capacity by relocating cold window state off the exhausted tier
    // (an emergency director sweep, charged DMA-style), and only if
    // that still leaves the allocation unsatisfiable, throw
    // mem::AllocFailure so the executor / ingest sheds the one task
    // or bundle instead of aborting the whole fleet. Each exhaustion
    // event opens a distress window the serving layer reads to turn
    // on SLA-aware load shedding.
    // ---------------------------------------------------------------

    /** Make exhaustion recoverable (see block comment above). */
    void
    enableGracefulExhaustion(SimTime distress_window = 100 * kNsPerMs)
    {
        distress_window_ = distress_window;
        hm_.setThrowOnExhaustion(true);
        hm_.setExhaustionHandler([this](mem::Tier t, uint64_t want) {
            noteMemoryDistress();
            sim::CostLog relief;
            const mem::DemoteResult r =
                director_.emergencySweep(t, want, relief);
            if (r.kpas == 0)
                return false;
            // Like the monitor's steady-state sweep: attribute the
            // copy time as memory stall to the streams whose state
            // moved, and record the emergency span.
            const SimTime t0 = machine_.now();
            auto shares = director_.takeLastSweepShares();
            const uint64_t kpas = r.kpas;
            machine_.execute(
                std::move(relief),
                [this, t0, kpas, shares = std::move(shares)] {
                    const SimTime dur = machine_.now() - t0;
                    director_.addSweepStallNs(shares, dur);
                    if (tele_ != nullptr) {
                        uint64_t bytes = 0;
                        for (const auto &[stream, b] : shares)
                            bytes += b;
                        tele_->trace.span(t0, dur, tele_shard_, 0,
                                          "pressure", "emergency_sweep",
                                          {{"charged_bytes", bytes},
                                           {"kpas", kpas}});
                    }
                });
            return true;
        });
    }

    /** Open (or extend) the memory-distress window. */
    void
    noteMemoryDistress()
    {
        distress_until_ = machine_.now() + distress_window_;
        ++distress_events_;
    }

    /** Inside the distress window following an exhaustion event? */
    bool inDistress() const { return machine_.now() < distress_until_; }

    /** Exhaustion events since boot (injected and genuine). */
    uint64_t distressEvents() const { return distress_events_; }

    /** Record one per-window output delay (drives knob headroom). */
    void
    reportOutputDelay(SimTime delay)
    {
        delays_.add(simToSeconds(delay));
        last_delay_ = delay;
    }

    /** @return true when the latest delay is >= 10% below target. */
    bool
    delayHeadroomOk() const
    {
        return static_cast<double>(last_delay_)
               <= 0.9 * static_cast<double>(cfg_.target_delay);
    }

    const SampleSet &outputDelays() const { return delays_; }

    // ---------------------------------------------------------------
    // Back-pressure (paper §5: the engine starts/stops pulling from
    // the data source according to resource utilization).
    //
    // Accounting is global (the engine-wide in-flight budget) plus
    // optionally per stream: the serving layer gives each tenant its
    // own smaller budget so one tenant's backlog throttles only that
    // tenant's ingestion, not the whole machine. Stream 0 with no
    // registered budget reproduces the original single-pipeline
    // behaviour bit for bit.
    // ---------------------------------------------------------------

    /** A bundle entered the pipeline. */
    void
    noteBundleIn(StreamId stream = 0)
    {
        ++inflight_bundles_;
        ++stream_flows_[stream].inflight;
    }

    /** A bundle's window was externalized / the bundle was freed. */
    void
    noteBundleOut(StreamId stream = 0)
    {
        sbhbm_assert(inflight_bundles_ > 0, "bundle accounting underflow");
        --inflight_bundles_;
        ++bundles_released_;
        auto it = stream_flows_.find(stream);
        sbhbm_assert(it != stream_flows_.end() && it->second.inflight > 0,
                     "stream %u bundle accounting underflow", stream);
        --it->second.inflight;
        ++it->second.released;
    }

    uint32_t inflightBundles() const { return inflight_bundles_; }

    /** In-flight bundles of one stream (tenant). */
    uint32_t
    inflightBundles(StreamId stream) const
    {
        auto it = stream_flows_.find(stream);
        return it == stream_flows_.end() ? 0 : it->second.inflight;
    }

    /** Total bundles ever fully processed and freed. */
    uint64_t bundlesReleased() const { return bundles_released_; }

    /**
     * Cap @p stream's in-flight bundles at @p max_inflight (0 removes
     * the cap). The engine-wide budget still applies on top.
     */
    void
    setStreamBudget(StreamId stream, uint32_t max_inflight)
    {
        stream_flows_[stream].cap = max_inflight;
    }

    /** Should the source pause pulling? */
    bool
    backpressured() const
    {
        return inflight_bundles_ >= cfg_.max_inflight_bundles;
    }

    /** Stream-aware hard back-pressure: global or per-stream cap hit. */
    bool
    backpressured(StreamId stream) const
    {
        if (backpressured())
            return true;
        auto it = stream_flows_.find(stream);
        return it != stream_flows_.end() && it->second.cap > 0
               && it->second.inflight >= it->second.cap;
    }

    /**
     * Soft back-pressure: enough backlog (about a window's worth)
     * that ingestion should pace itself to the service rate rather
     * than keep bursting at NIC speed.
     */
    bool
    softBackpressured() const
    {
        return inflight_bundles_ >= softThreshold();
    }

    /** Stream-aware soft back-pressure. */
    bool
    softBackpressured(StreamId stream) const
    {
        if (softBackpressured())
            return true;
        auto it = stream_flows_.find(stream);
        return it != stream_flows_.end() && it->second.cap > 0
               && it->second.inflight
                      >= std::max<uint32_t>(1, 2 * it->second.cap / 3);
    }

    /** The global soft back-pressure threshold, in bundles. */
    uint32_t
    softThreshold() const
    {
        return std::min(cfg_.max_inflight_bundles,
                        std::max(cfg_.cores + 8,
                                 cfg_.max_inflight_bundles / 3));
    }

  private:
    /** Per-stream back-pressure state. */
    struct StreamFlow
    {
        uint32_t inflight = 0;
        uint64_t released = 0;
        uint32_t cap = 0; //!< 0 = no per-stream cap
    };

    EngineConfig cfg_;
    sim::Machine machine_;
    mem::HybridMemory hm_;
    Executor exec_;
    BalanceKnob knob_;
    Rng rng_;
    mem::KnobPlacementPolicy knob_policy_;
    mem::PlacementPolicy *placement_policy_ = &knob_policy_;
    mem::PressureDirector director_;
    ResourceMonitor monitor_;
    obs::Telemetry *tele_ = nullptr;
    uint32_t tele_shard_ = 0;
    SampleSet delays_;
    SimTime last_delay_ = 0;
    SimTime distress_window_ = 100 * kNsPerMs;
    SimTime distress_until_ = 0;
    uint64_t distress_events_ = 0;
    uint32_t inflight_bundles_ = 0;
    uint64_t bundles_released_ = 0;
    std::map<StreamId, StreamFlow> stream_flows_;
};

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_ENGINE_H
