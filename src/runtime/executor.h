/**
 * @file
 * Task executor: maps tagged tasks onto the simulated machine's cores.
 *
 * Worker threads of the real StreamBox-HBM become "core slots" here:
 * at most `cores` tasks are in flight at once; queued tasks dispatch
 * in impact-tag priority order (Urgent > High > Low, FIFO within a
 * tag). A task's closure runs functionally at dispatch time and
 * records its simulated cost; the machine then charges that cost in
 * virtual time and frees the core slot when it completes.
 */

#ifndef SBHBM_RUNTIME_EXECUTOR_H
#define SBHBM_RUNTIME_EXECUTOR_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/unique_function.h"
#include "runtime/impact_tag.h"
#include "sim/cost_model.h"
#include "sim/machine.h"

namespace sbhbm::runtime {

/** Priority task executor bound to a simulated machine. */
class Executor
{
  public:
    /** A task: do work on host, describe its cost in @p log. */
    using TaskFn = UniqueFunction<void(sim::CostLog &log)>;
    using DoneFn = UniqueFunction<void()>;

    /**
     * @param machine timing model.
     * @param cores   core slots to use (<= machine.cores(); the
     *                evaluation sweeps this, Figs 2/7/8/9).
     */
    Executor(sim::Machine &machine, unsigned cores)
        : machine_(machine), cores_(cores)
    {
        sbhbm_assert(cores >= 1 && cores <= machine.cores(),
                     "core count %u outside 1..%u", cores,
                     machine.cores());
    }

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /** Enqueue a task; @p done (optional) fires on completion. */
    void
    spawn(ImpactTag tag, TaskFn fn, DoneFn done = nullptr)
    {
        queues_[static_cast<int>(tag)].push_back(
            Pending{std::move(fn), std::move(done)});
        ++spawned_;
        pump();
    }

    /**
     * Spawn @p n data-parallel tasks; @p all_done fires once every
     * one of them completed. fn(i, log) handles shard i.
     */
    void
    parallelFor(ImpactTag tag, uint32_t n,
                std::function<void(uint32_t, sim::CostLog &)> fn,
                DoneFn all_done)
    {
        auto done = std::make_shared<DoneFn>(std::move(all_done));
        if (n == 0) {
            // Still asynchronous: defer to the event loop.
            machine_.after(0, [done] {
                if (*done)
                    (*done)();
            });
            return;
        }
        auto remaining = std::make_shared<uint32_t>(n);
        for (uint32_t i = 0; i < n; ++i) {
            spawn(
                tag, [fn, i](sim::CostLog &log) { fn(i, log); },
                [remaining, done] {
                    if (--*remaining == 0 && *done)
                        (*done)();
                });
        }
    }

    unsigned cores() const { return cores_; }
    unsigned busyCores() const { return busy_; }

    uint64_t
    queuedTasks() const
    {
        return queues_[0].size() + queues_[1].size() + queues_[2].size();
    }

    uint64_t spawnedTasks() const { return spawned_; }
    uint64_t completedTasks() const { return completed_; }

    /** True when no task is queued or in flight. */
    bool idle() const { return busy_ == 0 && queuedTasks() == 0; }

  private:
    struct Pending
    {
        TaskFn fn;
        DoneFn done;
    };

    /** Dispatch queued tasks onto free core slots. */
    void
    pump()
    {
        while (busy_ < cores_) {
            Pending task;
            if (!popNext(task))
                return;
            ++busy_;

            sim::CostLog cost;
            cost.cpu(sim::cost::kTaskDispatchNs);
            // Functional execution happens now, but the closure (and
            // everything it holds alive — bundles, KPAs) is released
            // only at simulated completion: a real worker's working
            // set is pinned while the task runs, and back-pressure
            // must see it.
            auto keep = std::make_shared<TaskFn>(std::move(task.fn));
            (*keep)(cost);

            // Machine callbacks are std::function (copyable), so the
            // move-only hooks ride in shared_ptrs.
            auto done = std::make_shared<DoneFn>(std::move(task.done));
            machine_.execute(std::move(cost), [this, done, keep] {
                keep->reset();
                --busy_;
                ++completed_;
                if (*done)
                    (*done)();
                pump();
            });
        }
    }

    bool
    popNext(Pending &out)
    {
        for (auto &q : queues_) {
            if (!q.empty()) {
                out = std::move(q.front());
                q.pop_front();
                return true;
            }
        }
        return false;
    }

    sim::Machine &machine_;
    unsigned cores_;
    unsigned busy_ = 0;
    std::deque<Pending> queues_[kNumTags];
    uint64_t spawned_ = 0;
    uint64_t completed_ = 0;
};

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_EXECUTOR_H
