/**
 * @file
 * Task executor: maps tagged tasks onto the simulated machine's cores.
 *
 * Worker threads of the real StreamBox-HBM become "core slots" here:
 * at most `cores` tasks are in flight at once; queued tasks dispatch
 * in an order chosen by a pluggable DispatchPolicy. The default policy
 * is the paper's impact-tag priority order (Urgent > High > Low, FIFO
 * within a tag); the serving layer swaps in a weighted fair scheduler
 * that arbitrates between tenants. A task's closure runs functionally
 * at dispatch time and records its simulated cost; the machine then
 * charges that cost in virtual time and frees the core slot when it
 * completes.
 *
 * Every task belongs to a stream (tenant). Single-pipeline runs use
 * the default stream 0 throughout and behave exactly as before; the
 * multi-tenant serving layer gives each tenant its own stream id so
 * the dispatch policy can arbitrate between them and per-stream cost
 * totals can be audited.
 *
 * Besides the simulated core slots, the executor owns a host
 * WorkerPool (hostPool()): the real fork-join pool kernels use to
 * parallelize their functional work's wall-clock within a task,
 * without affecting simulated time or CostLog output.
 */

#ifndef SBHBM_RUNTIME_EXECUTOR_H
#define SBHBM_RUNTIME_EXECUTOR_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/unique_function.h"
#include "common/worker_pool.h"
#include "mem/hybrid_memory.h"
#include "obs/trace.h"
#include "runtime/impact_tag.h"
#include "sim/cost_model.h"
#include "sim/machine.h"

namespace sbhbm::runtime {

/** Identifies the pipeline (tenant) a task belongs to; 0 = default. */
using StreamId = uint32_t;

/**
 * Strategy deciding which queued task dispatches onto the next free
 * core slot. The executor presents the backlog as one entry per
 * stream with pending work (sorted by stream id) and the policy picks
 * a (stream, tag) pair; the executor then pops that queue's oldest
 * task. Policies are consulted only when at least one task is queued.
 */
class DispatchPolicy
{
  public:
    /** head_seq value of an empty per-tag queue. */
    static constexpr uint64_t kNoTask = ~uint64_t{0};

    /** One stream's pending work, as the policy sees it. */
    struct StreamBacklog
    {
        // The brace-init below must name every element: a shorter
        // list would zero-fill, and head_seq 0 means "oldest task".
        static_assert(kNumTags == 3, "update head_seq initializer");

        StreamId stream = 0;

        /** Global enqueue seq of the oldest pending task per tag. */
        std::array<uint64_t, kNumTags> head_seq{kNoTask, kNoTask, kNoTask};

        /** Queue depth per tag. */
        std::array<uint32_t, kNumTags> depth{0, 0, 0};

        bool
        hasTag(ImpactTag t) const
        {
            return depth[static_cast<int>(t)] > 0;
        }
    };

    struct Choice
    {
        StreamId stream = 0;
        ImpactTag tag = ImpactTag::kUrgent;
    };

    virtual ~DispatchPolicy() = default;

    /**
     * Choose the next task to dispatch. @p backlog has one entry per
     * stream with at least one pending task, sorted by stream id, and
     * is never empty.
     */
    virtual Choice pick(const std::vector<StreamBacklog> &backlog) = 0;
};

/**
 * The paper's dispatch order (§5): strict impact-tag priority, FIFO
 * within a tag — across streams, FIFO means global enqueue order, so
 * a single-stream run is indistinguishable from the pre-policy
 * executor.
 */
class TagPriorityPolicy final : public DispatchPolicy
{
  public:
    Choice
    pick(const std::vector<StreamBacklog> &backlog) override
    {
        for (int t = 0; t < kNumTags; ++t) {
            uint64_t best = kNoTask;
            StreamId stream = 0;
            for (const auto &b : backlog) {
                if (b.head_seq[t] < best) {
                    best = b.head_seq[t];
                    stream = b.stream;
                }
            }
            if (best != kNoTask)
                return Choice{stream, static_cast<ImpactTag>(t)};
        }
        sbhbm_fatal("dispatch policy consulted with empty backlog");
        return Choice{};
    }
};

/** Priority task executor bound to a simulated machine. */
class Executor
{
  public:
    /** A task: do work on host, describe its cost in @p log. */
    using TaskFn = UniqueFunction<void(sim::CostLog &log)>;
    using DoneFn = UniqueFunction<void()>;

    /** Per-stream execution totals (the tenant-level cost audit). */
    struct StreamStats
    {
        uint64_t spawned = 0;
        uint64_t completed = 0;
        uint64_t shed = 0;       //!< tasks aborted by AllocFailure
        double cpu_ns = 0;       //!< total charged CPU ns
        uint64_t hbm_bytes = 0;  //!< total charged HBM traffic
        uint64_t dram_bytes = 0; //!< total charged DRAM traffic

        /** Virtual ns the stream's tasks sat queued before dispatch
         *  (the sched-queue component of SLA attribution). */
        uint64_t queue_wait_ns = 0;
    };

    /**
     * @param machine timing model.
     * @param cores   core slots to use (<= machine.cores(); the
     *                evaluation sweeps this, Figs 2/7/8/9).
     */
    Executor(sim::Machine &machine, unsigned cores)
        : machine_(machine), cores_(cores), base_cores_(cores)
    {
        sbhbm_assert(cores >= 1 && cores <= machine.cores(),
                     "core count %u outside 1..%u", cores,
                     machine.cores());
    }

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /**
     * Install a dispatch policy (non-owning; the caller keeps it
     * alive for the executor's lifetime). nullptr restores the
     * default tag-priority order.
     */
    void
    setDispatchPolicy(DispatchPolicy *policy)
    {
        policy_ = policy;
    }

    /**
     * Install telemetry (non-owning; nullptr disables). @p shard is
     * the trace pid this executor's task spans land on. Spans are
     * recorded only from machine completion callbacks — the
     * single-threaded simulation control path — so traces are
     * byte-identical at any host thread count.
     */
    void
    setTelemetry(obs::Telemetry *t, uint32_t shard)
    {
        tele_ = t;
        shard_ = shard;
    }

    /**
     * Enqueue a task; @p done (optional) fires on completion.
     * @p label (a string literal or a name outliving the task, e.g.
     * the spawning operator's) names the task's trace span when
     * telemetry is installed.
     */
    void
    spawn(ImpactTag tag, TaskFn fn, DoneFn done = nullptr,
          StreamId stream = 0, const char *label = nullptr)
    {
        queues_[stream][static_cast<int>(tag)].push_back(
            Pending{std::move(fn), std::move(done), next_seq_++,
                    machine_.now(), label});
        ++queued_;
        ++spawned_;
        ++stats_[stream].spawned;
        pump();
    }

    /**
     * Simulated fork-join: spawn @p n data-parallel tasks; @p all_done
     * fires once every one of them completed. fn(i, log) handles shard
     * i. Each shard is an ordinary spawn, so the installed
     * DispatchPolicy arbitrates shards exactly like any other tasks —
     * a tenant's parallel fan-out cannot jump another tenant's queue
     * under the FairScheduler, and at 1 core the shards simply
     * dispatch back-to-back (inline degradation in virtual time).
     *
     * This primitive parallelizes *simulated* time. Its host-side
     * twin is hostPool().parallelFor() / hostParallelFor(), which
     * parallelizes the wall-clock of a kernel's functional work
     * within one task; the two compose freely.
     */
    void
    parallelFor(ImpactTag tag, uint32_t n,
                std::function<void(uint32_t, sim::CostLog &)> fn,
                DoneFn all_done, StreamId stream = 0,
                const char *label = nullptr)
    {
        auto done = std::make_shared<DoneFn>(std::move(all_done));
        if (n == 0) {
            // Still asynchronous: defer to the event loop.
            machine_.after(0, [done] {
                if (*done)
                    (*done)();
            });
            return;
        }
        auto remaining = std::make_shared<uint32_t>(n);
        for (uint32_t i = 0; i < n; ++i) {
            spawn(
                tag, [fn, i](sim::CostLog &log) { fn(i, log); },
                [remaining, done] {
                    if (--*remaining == 0 && *done)
                        (*done)();
                },
                stream, label);
        }
    }

    // ---------------------------------------------------------------
    // Host worker pool (wall-clock parallelism).
    //
    // Simulated core slots time-share one host thread; the host pool
    // is the real fork-join pool kernels shard their functional work
    // across (parallel sortKpa merge rounds, sharded reductions).
    // Kernels receive it through kpa::Ctx and must produce
    // bit-identical results and CostLog charges at every thread
    // count; with 1 thread the pool degrades to inline execution.
    // ---------------------------------------------------------------

    /**
     * Fix the host pool at @p threads workers (1 = inline). Must be
     * called before the first hostPool() use; the default is
     * WorkerPool::defaultThreads() ($SBHBM_HOST_THREADS or the
     * hardware concurrency).
     */
    void
    setHostThreads(unsigned threads)
    {
        sbhbm_assert(host_pool_ == nullptr,
                     "host pool already instantiated");
        host_threads_ = threads >= 1 ? threads : 1;
    }

    /** The lazily-created host fork-join pool. */
    WorkerPool &
    hostPool()
    {
        if (host_pool_ == nullptr) {
            if (host_threads_ == 0)
                host_threads_ = WorkerPool::defaultThreads();
            host_pool_ = std::make_unique<WorkerPool>(host_threads_);
        }
        return *host_pool_;
    }

    /**
     * The host pool when it would actually parallelize, else nullptr
     * so kernels take their serial paths with zero indirection.
     * Cheap to call per task: pool construction is trivial and its
     * worker threads spawn only at the first job that really forks
     * (a kernel crossing its parallel threshold).
     */
    WorkerPool *
    hostPoolIfParallel()
    {
        if (host_threads_ == 0)
            host_threads_ = WorkerPool::defaultThreads();
        return host_threads_ > 1 ? &hostPool() : nullptr;
    }

    /** Blocking host fork-join (see WorkerPool::parallelFor). */
    void
    hostParallelFor(uint32_t shards, const WorkerPool::ShardFn &fn)
    {
        hostPool().parallelFor(shards, fn);
    }

    // ---------------------------------------------------------------
    // Cross-executor work stealing (the sharded serving layer).
    //
    // A steal moves one queued task from a victim executor onto a
    // free core slot of a thief bound to a DIFFERENT machine. The
    // task still belongs to its home stream: dispatch charges,
    // completion counts and the done-hook all land on the home
    // executor — the thief only lends cycles. Completion effects run
    // as an event on the home machine (they touch home pipelines and
    // schedule home events), at the thief's completion instant.
    // ---------------------------------------------------------------

    /** A task popped from a victim executor for stealing. */
    struct StolenTask
    {
        TaskFn fn;
        DoneFn done;
        StreamId stream = 0;
        SimTime enq = 0;
        const char *label = nullptr;
    };

    /**
     * Pop this executor's globally-oldest queued High or Low task for
     * a thief to run. Urgent tasks are never stolen: they are
     * latency-critical watermark work whose cost belongs on the home
     * shard's critical path, not behind a cross-shard handoff.
     * @return false when nothing stealable is queued.
     */
    bool
    popStealable(StolenTask &out)
    {
        uint64_t best = ~uint64_t{0};
        std::map<StreamId, TagQueues>::iterator best_it = queues_.end();
        int best_tag = 0;
        for (auto it = queues_.begin(); it != queues_.end(); ++it) {
            for (int t = static_cast<int>(ImpactTag::kHigh);
                 t < kNumTags; ++t) {
                auto &q = it->second[t];
                if (!q.empty() && q.front().seq < best) {
                    best = q.front().seq;
                    best_it = it;
                    best_tag = t;
                }
            }
        }
        if (best_it == queues_.end())
            return false;
        auto &q = best_it->second[best_tag];
        out.fn = std::move(q.front().fn);
        out.done = std::move(q.front().done);
        out.stream = best_it->first;
        out.enq = q.front().enq;
        out.label = q.front().label;
        q.pop_front();
        --queued_;
        bool empty = true;
        for (const auto &tq : best_it->second)
            empty = empty && tq.empty();
        if (empty)
            queues_.erase(best_it);
        ++stolen_out_;
        return true;
    }

    /**
     * Run @p task (popped off @p home via popStealable) on one of
     * this executor's core slots. The caller must hold the co-sim
     * invariant: this call happens inside the globally-earliest
     * event, so every other machine — home's included — can be
     * synced to this machine's now() first.
     */
    void
    runStolen(StolenTask task, Executor &home)
    {
        sbhbm_assert(busy_ < cores_, "stealing without a free slot");
        sbhbm_assert(&home != this, "stealing from self");
        // The functional body may spawn follow-up work on the home
        // executor; bring home's clock to the global instant first so
        // those spawns dispatch at the right virtual time.
        home.machine_.syncTo(machine_.now());
        ++busy_;
        ++stolen_in_;

        const SimTime t0 = machine_.now();
        sim::CostLog cost;
        cost.cpu(sim::cost::kTaskDispatchNs);
        auto keep = std::make_shared<TaskFn>(std::move(task.fn));
        StreamStats &ss = home.stats_[task.stream];
        ss.queue_wait_ns += t0 - task.enq;
        try {
            (*keep)(cost);
        } catch (const mem::AllocFailure &) {
            // Shed on the home shard's books (see pump()).
            ++ss.shed;
            ++home.shed_;
        }
        ss.cpu_ns += cost.totalCpuNs();
        ss.hbm_bytes += cost.bytesOn(sim::Tier::kHbm);
        ss.dram_bytes += cost.bytesOn(sim::Tier::kDram);

        auto done = std::make_shared<DoneFn>(std::move(task.done));
        machine_.execute(
            std::move(cost),
            [this, &home, stream = task.stream, done, keep, t0,
             label = task.label] {
                keep->reset();
                --busy_;
                if (tele_ != nullptr) {
                    // The span sits on the thief's lane (it ran
                    // here), named for the home stream it served.
                    tele_->trace.span(t0, machine_.now() - t0, shard_,
                                      stream, "steal",
                                      label != nullptr ? label
                                                       : "stolen_task");
                }
                // Completion bookkeeping belongs to the home shard:
                // it touches home pipelines (watermarks,
                // back-pressure) and must run in home-machine
                // context, at this global instant.
                home.machine_.at(machine_.now(),
                                 [&home, stream, done] {
                                     ++home.completed_;
                                     ++home.stats_[stream].completed;
                                     if (*done)
                                         (*done)();
                                     home.pump();
                                 });
                pump();
            });
    }

    /**
     * Install an idle-steal hook, consulted whenever pump() runs out
     * of local work while core slots are free. The hook either steals
     * one task onto this executor (occupying a slot via runStolen)
     * and returns true, or returns false; it is re-invoked until it
     * declines or the slots fill.
     */
    void
    setStealHook(std::function<bool()> hook)
    {
        steal_hook_ = std::move(hook);
    }

    /**
     * Offer free core slots to the steal hook right now (also called
     * from pump() whenever local work runs out). The serving layer
     * drives this from a periodic tick so a fully-idle shard — no
     * pending completions to re-enter pump() — still lends cycles.
     */
    void
    pumpSteals()
    {
        while (steal_hook_ && busy_ < cores_ && queued_ == 0
               && steal_hook_()) {
        }
    }

    /** Tasks other executors took from this one / this one ran for
     *  others. */
    uint64_t stolenOut() const { return stolen_out_; }
    uint64_t stolenIn() const { return stolen_in_; }

    unsigned cores() const { return cores_; }
    unsigned busyCores() const { return busy_; }

    /**
     * Degrade to @p n usable core slots (the slow-shard fault): new
     * dispatches respect the lower limit while in-flight tasks finish
     * naturally. Clamped to [1, configured cores]; 0 restores the
     * full count. Restoring re-pumps so any backlog drains onto the
     * recovered slots immediately.
     */
    void
    setCoreLimit(unsigned n)
    {
        cores_ = n == 0 ? base_cores_ : std::clamp(n, 1u, base_cores_);
        pump();
    }

    /** Tasks shed by AllocFailure, summed over all streams. */
    uint64_t shedTasks() const { return shed_; }

    uint64_t queuedTasks() const { return queued_; }

    uint64_t spawnedTasks() const { return spawned_; }
    uint64_t completedTasks() const { return completed_; }

    /** Execution totals of @p stream (zeros when never seen). */
    const StreamStats &
    streamStats(StreamId stream) const
    {
        static const StreamStats kEmpty{};
        auto it = stats_.find(stream);
        return it == stats_.end() ? kEmpty : it->second;
    }

    /** All per-stream totals, keyed by stream id. */
    const std::map<StreamId, StreamStats> &allStreamStats() const
    {
        return stats_;
    }

    /** True when no task is queued or in flight. */
    bool idle() const { return busy_ == 0 && queued_ == 0; }

  private:
    struct Pending
    {
        TaskFn fn;
        DoneFn done;
        uint64_t seq = 0;
        SimTime enq = 0; //!< spawn instant (queue-wait accounting)
        const char *label = nullptr;
    };

    using TagQueues = std::array<std::deque<Pending>, kNumTags>;

    /** Dispatch queued tasks onto free core slots. */
    void
    pump()
    {
        while (busy_ < cores_ && queued_ > 0) {
            // Pending stays a local: a task body that spawns would
            // re-enter pump(), and a shared member would be
            // overwritten under the outer frame.
            Pending task;
            const StreamId stream = popNext(task);
            ++busy_;

            const SimTime t0 = machine_.now();
            stats_[stream].queue_wait_ns += t0 - task.enq;
            sim::CostLog cost;
            cost.cpu(sim::cost::kTaskDispatchNs);
            // Functional execution happens now, but the closure (and
            // everything it holds alive — bundles, KPAs) is released
            // only at simulated completion: a real worker's working
            // set is pinned while the task runs, and back-pressure
            // must see it.
            auto keep = std::make_shared<TaskFn>(std::move(task.fn));
            StreamStats &ss = stats_[stream];
            try {
                (*keep)(cost);
            } catch (const mem::AllocFailure &) {
                // Graceful degradation: a task whose allocation
                // failed is shed, not fatal. Cost accrued before the
                // failure is still charged, and the done hook below
                // still fires so watermark barriers release.
                ++ss.shed;
                ++shed_;
            }
            ss.cpu_ns += cost.totalCpuNs();
            ss.hbm_bytes += cost.bytesOn(sim::Tier::kHbm);
            ss.dram_bytes += cost.bytesOn(sim::Tier::kDram);

            // Machine callbacks are std::function (copyable), so the
            // move-only hooks ride in shared_ptrs.
            auto done = std::make_shared<DoneFn>(std::move(task.done));
            machine_.execute(std::move(cost),
                             [this, stream, done, keep, t0,
                              label = task.label] {
                keep->reset();
                --busy_;
                ++completed_;
                ++stats_[stream].completed;
                if (tele_ != nullptr) {
                    tele_->trace.span(t0, machine_.now() - t0, shard_,
                                      stream, "task",
                                      label != nullptr ? label
                                                       : "task");
                }
                if (*done)
                    (*done)();
                pump();
            });
        }
        // Local work exhausted with slots to spare: offer the free
        // capacity to the steal hook (cross-shard work stealing).
        pumpSteals();
    }

    /**
     * Ask the policy which queue to serve, move that queue's oldest
     * task into @p out, and return its stream.
     */
    StreamId
    popNext(Pending &out)
    {
        // Hot path: one stream under the default policy (every
        // single-pipeline run) needs no backlog snapshot or virtual
        // call — tag priority over one queue set is a direct pop.
        if (policy_ == nullptr && queues_.size() == 1) {
            auto it = queues_.begin();
            for (auto &q : it->second) {
                if (q.empty())
                    continue;
                out = std::move(q.front());
                q.pop_front();
                --queued_;
                const StreamId stream = it->first;
                bool empty = true;
                for (const auto &tq : it->second)
                    empty = empty && tq.empty();
                if (empty)
                    queues_.erase(it);
                return stream;
            }
        }

        backlog_.clear();
        for (const auto &[stream, tags] : queues_) {
            DispatchPolicy::StreamBacklog b;
            b.stream = stream;
            bool any = false;
            for (int t = 0; t < kNumTags; ++t) {
                if (!tags[t].empty()) {
                    b.head_seq[t] = tags[t].front().seq;
                    b.depth[t] =
                        static_cast<uint32_t>(tags[t].size());
                    any = true;
                }
            }
            if (any)
                backlog_.push_back(b);
        }
        sbhbm_assert(!backlog_.empty(), "popNext with empty backlog");

        const DispatchPolicy::Choice c =
            policy_ != nullptr ? policy_->pick(backlog_)
                               : default_policy_.pick(backlog_);
        auto it = queues_.find(c.stream);
        sbhbm_assert(it != queues_.end(), "policy chose unknown stream");
        auto &q = it->second[static_cast<int>(c.tag)];
        sbhbm_assert(!q.empty(), "policy chose an empty queue");
        out = std::move(q.front());
        q.pop_front();
        --queued_;

        bool empty = true;
        for (const auto &tq : it->second)
            empty = empty && tq.empty();
        if (empty)
            queues_.erase(it); // keep the backlog view small
        return c.stream;
    }

    sim::Machine &machine_;
    unsigned cores_;
    unsigned base_cores_;
    unsigned busy_ = 0;
    std::map<StreamId, TagQueues> queues_;
    uint64_t queued_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t spawned_ = 0;
    uint64_t completed_ = 0;
    uint64_t shed_ = 0;
    uint64_t stolen_out_ = 0;
    uint64_t stolen_in_ = 0;
    std::function<bool()> steal_hook_;
    std::map<StreamId, StreamStats> stats_;
    TagPriorityPolicy default_policy_;
    DispatchPolicy *policy_ = nullptr;
    std::vector<DispatchPolicy::StreamBacklog> backlog_;
    unsigned host_threads_ = 0; //!< 0 = WorkerPool::defaultThreads()
    std::unique_ptr<WorkerPool> host_pool_;
    obs::Telemetry *tele_ = nullptr;
    uint32_t shard_ = 0;
};

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_EXECUTOR_H
