/**
 * @file
 * Performance impact tags (paper §5).
 *
 * The scheduler tags every task by when the window containing its
 * data will be externalized. Urgent tasks sit on the critical path of
 * pipeline output (e.g. the close of the window the target watermark
 * points at); High tasks belong to windows externalized in the near
 * future; Low tasks work on younger windows.
 */

#ifndef SBHBM_RUNTIME_IMPACT_TAG_H
#define SBHBM_RUNTIME_IMPACT_TAG_H

#include <cstdint>

namespace sbhbm::runtime {

enum class ImpactTag : uint8_t {
    kUrgent = 0, //!< on the critical path of pipeline output
    kHigh = 1,   //!< externalized in the near future (next 1-2 windows)
    kLow = 2,    //!< externalized in the far future
};

constexpr int kNumTags = 3;

constexpr const char *
tagName(ImpactTag t)
{
    switch (t) {
      case ImpactTag::kUrgent: return "urgent";
      case ImpactTag::kHigh: return "high";
      case ImpactTag::kLow: return "low";
    }
    return "?";
}

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_IMPACT_TAG_H
