/**
 * @file
 * Resource monitor (paper §5.1): samples HBM capacity usage and DRAM
 * bandwidth usage every 10 ms and refreshes the demand balance knob.
 *
 * On the real machine these come from the allocator's free-memory
 * counter and Intel PCM; here they come from the capacity gauges and
 * the machine's bandwidth arbiters — the same quantities, same
 * sampling interval.
 */

#ifndef SBHBM_RUNTIME_RESOURCE_MONITOR_H
#define SBHBM_RUNTIME_RESOURCE_MONITOR_H

#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "mem/hybrid_memory.h"
#include "mem/pressure_director.h"
#include "obs/trace.h"
#include "runtime/balance_knob.h"
#include "sim/machine.h"

namespace sbhbm::runtime {

/** One monitor sample (the raw series behind Fig 10). */
struct ResourceSample
{
    SimTime t = 0;
    uint64_t hbm_used_bytes = 0;
    double hbm_bw = 0;     //!< bytes/sec over the last interval
    double dram_bw = 0;    //!< bytes/sec over the last interval
    double k_low = 1.0;
    double k_high = 1.0;

    /** Cumulative gauge bytes the pressure director demoted. */
    uint64_t demoted_bytes = 0;
};

/** Periodic sampler driving the balance knob. */
class ResourceMonitor
{
  public:
    /** Returns true when output delay has >= 10% headroom. */
    using HeadroomFn = std::function<bool()>;

    /**
     * @param director optional pressure director ticked right after
     *        the knob refresh; its migration traffic is charged to
     *        the machine (DMA-style: consumes tier bandwidth, no
     *        core slot).
     */
    ResourceMonitor(sim::Machine &machine, mem::HybridMemory &hm,
                    BalanceKnob &knob, HeadroomFn headroom,
                    SimTime period = 10 * kNsPerMs,
                    mem::PressureDirector *director = nullptr)
        : machine_(machine), hm_(hm), knob_(knob),
          headroom_(std::move(headroom)), period_(period),
          director_(director)
    {
    }

    ResourceMonitor(const ResourceMonitor &) = delete;
    ResourceMonitor &operator=(const ResourceMonitor &) = delete;

    /** Begin periodic sampling (idempotent). */
    void
    start()
    {
        if (running_)
            return;
        running_ = true;
        last_t_ = machine_.now();
        last_dram_bytes_ = machine_.tierCumulativeBytes(mem::Tier::kDram);
        last_hbm_bytes_ = machine_.tierCumulativeBytes(mem::Tier::kHbm);
        machine_.after(period_, [this] { tick(); }, /*daemon=*/true);
    }

    /** Stop sampling after the next tick. */
    void stop() { running_ = false; }

    /** Install the telemetry plane (null disables recording). */
    void
    setTelemetry(obs::Telemetry *t, uint32_t shard)
    {
        tele_ = t;
        shard_ = shard;
    }

    bool running() const { return running_; }

    const std::vector<ResourceSample> &samples() const { return samples_; }

    /** Peak/average DRAM bandwidth over all samples, bytes/sec. */
    const RunningStat &dramBwStat() const { return dram_bw_stat_; }
    const RunningStat &hbmBwStat() const { return hbm_bw_stat_; }
    const RunningStat &hbmUsedStat() const { return hbm_used_stat_; }

  private:
    void
    tick()
    {
        if (!running_)
            return;

        const SimTime now = machine_.now();
        const double dram_cum =
            machine_.tierCumulativeBytes(mem::Tier::kDram);
        const double hbm_cum =
            machine_.tierCumulativeBytes(mem::Tier::kHbm);
        const double dt = simToSeconds(now - last_t_);

        ResourceSample s;
        s.t = now;
        s.hbm_used_bytes = hm_.gauge(mem::Tier::kHbm).used();
        s.dram_bw = dt > 0 ? (dram_cum - last_dram_bytes_) / dt : 0.0;
        s.hbm_bw = dt > 0 ? (hbm_cum - last_hbm_bytes_) / dt : 0.0;

        const auto &cfg = machine_.config();
        const double hbm_cap_frac =
            hm_.gauge(mem::Tier::kHbm).usedFraction();
        const double dram_bw_frac =
            cfg.dram.peak_seq_bw > 0 ? s.dram_bw / cfg.dram.peak_seq_bw
                                     : 0.0;
        knob_.update(hbm_cap_frac, dram_bw_frac,
                     headroom_ ? headroom_() : true);
        s.k_low = knob_.kLow();
        s.k_high = knob_.kHigh();

        // Pressure feedback: the knob only steers future allocations;
        // the director reclaims HBM *now* by demoting cold state. Its
        // migration traffic consumes tier bandwidth in virtual time
        // without occupying a core slot (DMA-style copy).
        if (director_ != nullptr) {
            sim::CostLog migration = director_->tick();
            if (!migration.empty()) {
                // The sweep's copy time is memory stall for the
                // streams whose state moved: split the measured
                // duration by byte share once the charge completes
                // (single-threaded control path — trace-safe).
                const SimTime t0 = machine_.now();
                auto shares = director_->takeLastSweepShares();
                machine_.execute(
                    std::move(migration),
                    [this, t0, shares = std::move(shares)] {
                        const SimTime dur = machine_.now() - t0;
                        director_->addSweepStallNs(shares, dur);
                        if (tele_ != nullptr) {
                            uint64_t bytes = 0;
                            for (const auto &[stream, b] : shares)
                                bytes += b;
                            tele_->trace.span(
                                t0, dur, shard_, 0, "pressure",
                                "pressure_sweep",
                                {{"charged_bytes", bytes},
                                 {"streams", shares.size()}});
                        }
                    });
            }
            s.demoted_bytes = director_->demotedBytes();
        }

        samples_.push_back(s);
        dram_bw_stat_.add(s.dram_bw);
        hbm_bw_stat_.add(s.hbm_bw);
        hbm_used_stat_.add(static_cast<double>(s.hbm_used_bytes));

        last_t_ = now;
        last_dram_bytes_ = dram_cum;
        last_hbm_bytes_ = hbm_cum;
        machine_.after(period_, [this] { tick(); }, /*daemon=*/true);
    }

    sim::Machine &machine_;
    mem::HybridMemory &hm_;
    BalanceKnob &knob_;
    HeadroomFn headroom_;
    SimTime period_;
    mem::PressureDirector *director_;
    obs::Telemetry *tele_ = nullptr;
    uint32_t shard_ = 0;
    bool running_ = false;

    SimTime last_t_ = 0;
    double last_dram_bytes_ = 0;
    double last_hbm_bytes_ = 0;

    std::vector<ResourceSample> samples_;
    RunningStat dram_bw_stat_;
    RunningStat hbm_bw_stat_;
    RunningStat hbm_used_stat_;
};

} // namespace sbhbm::runtime

#endif // SBHBM_RUNTIME_RESOURCE_MONITOR_H
