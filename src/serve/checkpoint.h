/**
 * @file
 * Watermark-aligned tenant checkpoints.
 *
 * A TenantCheckpoint is a consistent cut through one session: the
 * source's absolute stream position, the watermark it had emitted,
 * the pipeline's externalized-window horizon, and a deep snapshot of
 * every stateful operator's window state — all captured while the
 * session is quiesced (source paused, ingestion stage empty, executor
 * stream idle), so the cut is exact: state(cut) is precisely the
 * result of the first `position` records and nothing else.
 *
 * Restore pairs the snapshot with replay: a recovered session rebuilds
 * its pipeline, reinstalls the operator state, and re-ingests the
 * source from `position` — logical event time makes the replayed
 * records bit-identical to the originals — while the egress
 * deduplicates windows the dead incarnation already externalized.
 *
 * Checkpoints are incremental when the caller passes the previous
 * capture: runs whose KPA touch generation is unchanged share their
 * payload with the prior snapshot and charge no copy traffic.
 */

#ifndef SBHBM_SERVE_CHECKPOINT_H
#define SBHBM_SERVE_CHECKPOINT_H

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "pipeline/state_snapshot.h"
#include "runtime/executor.h"

namespace sbhbm::serve {

/** One session's consistent cut. */
struct TenantCheckpoint
{
    runtime::StreamId id = 0;

    /** Virtual time the cut was captured at. */
    SimTime taken_at = 0;

    /** Watermark the source had emitted at the cut. */
    EventTime watermark = 0;

    /** Absolute stream offset: records the session had consumed. */
    uint64_t position = 0;

    /** Pipeline's next-to-externalize window at the cut. */
    columnar::WindowId next_close = 0;

    /**
     * Every stateful operator captured its state and the session can
     * restore from this cut (single-stream, logical time, no
     * unsupported operators). Non-restorable sessions recover by
     * scratch-restart instead: full replay, output deduplicated.
     */
    bool restorable = false;

    /** Per-operator captures, in pipeline construction order. */
    std::vector<pipeline::OperatorSnapshot> ops;

    /** Payload bytes newly copied at this cut. */
    uint64_t
    copiedBytes() const
    {
        uint64_t b = 0;
        for (const auto &o : ops)
            b += o.copiedBytes();
        return b;
    }

    /** Payload bytes shared with the previous cut (incremental). */
    uint64_t
    reusedBytes() const
    {
        uint64_t b = 0;
        for (const auto &o : ops)
            b += o.reusedBytes();
        return b;
    }
};

/** Latest checkpoint per tenant, plus fleet-wide copy accounting. */
class CheckpointStore
{
  public:
    /** Install @p c as tenant c.id's latest checkpoint. */
    void
    put(TenantCheckpoint c)
    {
        ++checkpoints_;
        copied_bytes_ += c.copiedBytes();
        reused_bytes_ += c.reusedBytes();
        latest_[c.id] = std::move(c);
    }

    /** Tenant @p id's latest checkpoint, or nullptr. */
    const TenantCheckpoint *
    find(runtime::StreamId id) const
    {
        auto it = latest_.find(id);
        return it == latest_.end() ? nullptr : &it->second;
    }

    /** Drop tenant @p id's checkpoint (session finished). */
    void erase(runtime::StreamId id) { latest_.erase(id); }

    /** Checkpoints captured fleet-wide. */
    uint64_t checkpoints() const { return checkpoints_; }

    /** Payload bytes copied fleet-wide (excludes reuse). */
    uint64_t copiedBytes() const { return copied_bytes_; }

    /** Payload bytes incremental reuse avoided copying. */
    uint64_t reusedBytes() const { return reused_bytes_; }

  private:
    std::map<runtime::StreamId, TenantCheckpoint> latest_;
    uint64_t checkpoints_ = 0;
    uint64_t copied_bytes_ = 0;
    uint64_t reused_bytes_ = 0;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_CHECKPOINT_H
