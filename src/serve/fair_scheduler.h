/**
 * @file
 * Weighted fair-share dispatch across tenants (serving layer).
 *
 * The executor's default policy is strict impact-tag priority with
 * global FIFO within a tag — correct for one pipeline, but with many
 * tenants a single hot tenant's flood of High tasks starves everyone
 * else's High work. The FairScheduler keeps the paper's latency
 * machinery intact (Urgent tasks — window closes on the critical
 * output path — still preempt globally in arrival order) and
 * arbitrates everything below Urgent by weighted deficit round-robin:
 *
 *  - each backlogged tenant holds a deficit counter (service credit);
 *  - a tenant is served when its credit covers one task, paying 1;
 *  - when no backlogged tenant has credit, every backlogged tenant is
 *    replenished in proportion to its weight (the heaviest gets
 *    exactly 1, so a replenish always unblocks someone);
 *  - a tenant whose backlog empties forfeits its credit (classic DRR:
 *    no banking service while idle);
 *  - within the chosen tenant, High dispatches before Low.
 *
 * Over any busy interval, tenant i therefore receives task slots in
 * proportion to weight_i — a hot tenant cannot push beyond its share
 * while others are backlogged, yet inherits idle capacity when they
 * are not. Ties scan cyclically from just past the last served tenant
 * (by stream id), so equal-weight tenants interleave deterministically
 * and independently of registration order.
 */

#ifndef SBHBM_SERVE_FAIR_SCHEDULER_H
#define SBHBM_SERVE_FAIR_SCHEDULER_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "common/logging.h"
#include "runtime/executor.h"
#include "runtime/impact_tag.h"

namespace sbhbm::serve {

using runtime::ImpactTag;
using runtime::StreamId;

/**
 * Jain's fairness index over per-tenant (weight-normalized) service:
 * (Σx)² / (n·Σx²) — 1.0 when all shares are equal, 1/n when one
 * tenant takes everything.
 */
inline double
jainIndex(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double sum = 0, sq = 0;
    for (double x : xs) {
        sum += x;
        sq += x * x;
    }
    if (sq <= 0)
        return 1.0;
    return sum * sum / (static_cast<double>(xs.size()) * sq);
}

/** Weighted deficit round-robin dispatch policy. */
class FairScheduler final : public runtime::DispatchPolicy
{
  public:
    /** Set @p stream's fair-share weight (> 0; unset streams get 1). */
    void
    setWeight(StreamId stream, double weight)
    {
        sbhbm_assert(weight > 0, "non-positive weight %f for stream %u",
                     weight, stream);
        weights_[stream] = weight;
    }

    double
    weight(StreamId stream) const
    {
        auto it = weights_.find(stream);
        return it == weights_.end() ? 1.0 : it->second;
    }

    /** Tasks dispatched for @p stream (all tags). */
    uint64_t
    served(StreamId stream) const
    {
        auto it = served_.find(stream);
        return it == served_.end() ? 0 : it->second;
    }

    const std::map<StreamId, uint64_t> &servedByStream() const
    {
        return served_;
    }

    Choice
    pick(const std::vector<StreamBacklog> &backlog) override
    {
        // Urgent preempts globally, FIFO by enqueue order: window
        // closes on the output critical path keep the paper's
        // priority semantics no matter which tenant they serve.
        {
            uint64_t best = kNoTask;
            StreamId stream = 0;
            for (const auto &b : backlog) {
                const uint64_t s =
                    b.head_seq[static_cast<int>(ImpactTag::kUrgent)];
                if (s < best) {
                    best = s;
                    stream = b.stream;
                }
            }
            if (best != kNoTask) {
                ++served_[stream];
                return Choice{stream, ImpactTag::kUrgent};
            }
        }

        // Deficit round-robin over tenants with High/Low backlog.
        candidates_.clear();
        for (const auto &b : backlog) {
            if (b.hasTag(ImpactTag::kHigh) || b.hasTag(ImpactTag::kLow))
                candidates_.push_back(&b);
        }
        sbhbm_assert(!candidates_.empty(),
                     "no urgent and no high/low backlog");

        // A tenant whose backlog emptied forfeits banked credit.
        for (auto it = deficit_.begin(); it != deficit_.end();) {
            if (!isCandidate(it->first))
                it = deficit_.erase(it);
            else
                ++it;
        }

        for (int round = 0; round < 2; ++round) {
            if (const StreamBacklog *b = scanForCredit())
                return serve(*b);
            replenish();
        }
        // Unreachable: replenish() gives the heaviest candidate >= 1.
        sbhbm_fatal("deficit round-robin failed to pick a tenant");
        return Choice{};
    }

  private:
    /** Credit threshold with float-accumulation slack. */
    static constexpr double kEps = 1e-9;

    bool
    isCandidate(StreamId stream) const
    {
        for (const StreamBacklog *b : candidates_)
            if (b->stream == stream)
                return true;
        return false;
    }

    /**
     * Cyclic scan (by stream id, starting just past the last served
     * tenant) for the first candidate whose credit covers one task.
     */
    const StreamBacklog *
    scanForCredit() const
    {
        const size_t n = candidates_.size();
        size_t start = 0;
        for (size_t i = 0; i < n; ++i) {
            if (candidates_[i]->stream > last_served_) {
                start = i;
                break;
            }
        }
        for (size_t i = 0; i < n; ++i) {
            const StreamBacklog *b = candidates_[(start + i) % n];
            auto it = deficit_.find(b->stream);
            if (it != deficit_.end() && it->second >= 1.0 - kEps)
                return b;
        }
        return nullptr;
    }

    /** Grant every backlogged tenant credit in weight proportion. */
    void
    replenish()
    {
        double wmax = 0;
        for (const StreamBacklog *b : candidates_)
            wmax = std::max(wmax, weight(b->stream));
        for (const StreamBacklog *b : candidates_)
            deficit_[b->stream] += weight(b->stream) / wmax;
    }

    Choice
    serve(const StreamBacklog &b)
    {
        deficit_[b.stream] -= 1.0;
        last_served_ = b.stream;
        ++served_[b.stream];
        const ImpactTag tag = b.hasTag(ImpactTag::kHigh)
                                  ? ImpactTag::kHigh
                                  : ImpactTag::kLow;
        return Choice{b.stream, tag};
    }

    std::map<StreamId, double> weights_;
    std::map<StreamId, double> deficit_;
    std::map<StreamId, uint64_t> served_;
    StreamId last_served_ = 0;
    std::vector<const StreamBacklog *> candidates_;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_FAIR_SCHEDULER_H
