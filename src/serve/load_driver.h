/**
 * @file
 * Deterministic open-loop load driver: builds the tenant fleets the
 * serving benchmarks and examples run.
 *
 * Models the traffic mix of a shared deployment: a small set of hot
 * tenants (high offered rate, high weight — the paying workloads) and
 * a long tail of cold tenants, every session's bundle arrivals an
 * independent Poisson process, sessions arriving at the admission
 * controller over a configurable span with exponential gaps. Every
 * draw comes from one seeded Rng consumed in tenant-id order, so the
 * same config always produces the same fleet, byte for byte.
 */

#ifndef SBHBM_SERVE_LOAD_DRIVER_H
#define SBHBM_SERVE_LOAD_DRIVER_H

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "queries/query.h"
#include "serve/server.h"
#include "serve/tenant.h"

namespace sbhbm::serve {

/** Shape of a generated tenant fleet. */
struct FleetConfig
{
    uint32_t tenants = 8;
    uint64_t seed = 42;

    /** Leading fraction of the fleet that is hot (at least one when
     *  tenants > 0 and hot_fraction > 0). */
    double hot_fraction = 0.25;

    /** Offered records/sec. */
    double hot_rate = 2e6;
    double cold_rate = 4e5;

    /** Fair-share weights. */
    double hot_weight = 4.0;
    double cold_weight = 1.0;

    /** Session length, records. */
    uint64_t hot_records = 600'000;
    uint64_t cold_records = 150'000;

    uint32_t bundle_records = 10'000;

    /** HBM reservation each session requests at admission. */
    uint64_t hot_hbm_reserve = 64ull << 20;
    uint64_t cold_hbm_reserve = 16ull << 20;

    /** Per-tenant in-flight bundle budget. */
    uint32_t max_inflight_bundles = 32;

    /**
     * Sessions arrive over roughly this span with exponential gaps
     * (0 = everyone arrives at t = 0).
     */
    SimTime arrival_span = 0;

    /** Queries assigned round-robin across the fleet. */
    std::vector<queries::QueryId> query_mix = {
        queries::QueryId::kSumPerKey,
        queries::QueryId::kAvgPerKey,
        queries::QueryId::kUniqueCountPerKey,
    };

    uint64_t key_range = 10'000;
    uint64_t value_range = 1'000'000;
};

/**
 * Build the fleet: tenant ids 1..tenants, the first
 * ceil(hot_fraction * tenants) of them hot, Poisson bundle arrivals,
 * exponential session-arrival gaps, per-tenant seeds drawn from the
 * fleet seed in id order.
 */
inline std::vector<TenantSpec>
makeFleet(const FleetConfig &cfg)
{
    sbhbm_assert(!cfg.query_mix.empty(), "fleet needs a query mix");
    Rng rng(cfg.seed);
    const auto hot_count = static_cast<uint32_t>(
        std::ceil(cfg.hot_fraction * cfg.tenants));

    std::vector<TenantSpec> fleet;
    fleet.reserve(cfg.tenants);
    SimTime arrival = 0;
    const double mean_gap =
        cfg.tenants > 0
            ? static_cast<double>(cfg.arrival_span) / cfg.tenants
            : 0.0;

    for (uint32_t i = 0; i < cfg.tenants; ++i) {
        const bool hot = i < hot_count;
        TenantSpec t;
        t.id = i + 1;
        t.name = (hot ? "hot-" : "cold-") + std::to_string(t.id);
        t.weight = hot ? cfg.hot_weight : cfg.cold_weight;
        t.query = cfg.query_mix[i % cfg.query_mix.size()];
        t.total_records = hot ? cfg.hot_records : cfg.cold_records;
        t.bundle_records = cfg.bundle_records;
        t.offered_rate = hot ? cfg.hot_rate : cfg.cold_rate;
        t.poisson_arrivals = t.offered_rate > 0;
        t.key_range = cfg.key_range;
        t.value_range = cfg.value_range;
        t.hbm_reserve_bytes =
            hot ? cfg.hot_hbm_reserve : cfg.cold_hbm_reserve;
        t.max_inflight_bundles = cfg.max_inflight_bundles;
        t.seed = rng.next() | 1; // nonzero: 0 means "derive for me"
        if (cfg.arrival_span > 0)
            arrival += static_cast<SimTime>(mean_gap * rng.nextExp());
        t.arrives_at = arrival;
        fleet.push_back(std::move(t));
    }
    return fleet;
}

// -------------------------------------------------------------------
// The canonical memory-control-plane overload scenario, shared by
// examples/multi_tenant (part 2) and bench/serve_report's overload
// point so the demo and the recorded numbers can never drift apart.
// -------------------------------------------------------------------

/**
 * Serving config whose HBM is scaled down so the overload fleet's
 * open-window KPA state overruns it. @p control_plane additionally
 * enables the pressure director, gauge-aware live admission and
 * SLA-driven placement demotion; false is the knob-only baseline.
 *
 * Sizing rules the constants obey (violating either wedges sessions
 * on the ingestion deadlock guard): with delayed watermarks the
 * idle-watermark escape is off, so the per-tenant *soft*
 * back-pressure cap (2/3 of the tenant budget) must cover the
 * watermark gap plus a window's worth of slack, and the global soft
 * threshold (a third of engine.max_inflight_bundles) must clear the
 * sum of the per-tenant budgets — the per-tenant caps are the
 * intended binding constraint.
 */
inline ServeConfig
overloadServeConfig(unsigned cores, bool control_plane)
{
    ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    // Scarce HBM: the fleet's open-window KPA state (~10 MB+)
    // overruns 8 MiB, so placement pressure is guaranteed.
    cfg.engine.machine.hbm.capacity_bytes = 8ull << 20;
    cfg.engine.cores = cores;
    cfg.engine.max_inflight_bundles = 2048; // soft 682 > 4 x 160
    cfg.engine.target_delay = 20 * kNsPerMs; // tight SLA in overload
    cfg.window_ns = 10 * kNsPerMs;
    cfg.admission.hbm_budget_bytes = 8ull << 20;
    if (control_plane) {
        cfg.engine.pressure.enabled = true;
        cfg.admission.mode = AdmissionMode::kLivePressure;
        cfg.sla_demotion = true;
    }
    return cfg;
}

/**
 * Four identical SumPerKey sessions for overloadServeConfig():
 * 2 M rec/s each in 5000-record bundles (4 bundles per 10 ms window,
 * so event time really spans windows), watermarks delayed to every 50
 * bundles so many windows of sorted runs stay open at once — the cold
 * state the pressure director demotes.
 */
inline std::vector<TenantSpec>
makeOverloadFleet(uint64_t records_per_tenant)
{
    std::vector<TenantSpec> fleet;
    for (uint32_t i = 1; i <= 4; ++i) {
        TenantSpec t;
        t.id = i;
        t.name = "ovl-" + std::to_string(i);
        t.weight = 1.0;
        t.query = queries::QueryId::kSumPerKey;
        t.total_records = records_per_tenant;
        t.bundle_records = 5'000;
        t.offered_rate = 2e6;
        t.poisson_arrivals = true;
        t.hbm_reserve_bytes = 2ull << 20;
        t.bundles_per_watermark = 50;
        t.max_inflight_bundles = 160; // soft 106 > gap 50 + slack
        fleet.push_back(std::move(t));
    }
    return fleet;
}

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_LOAD_DRIVER_H
