/**
 * @file
 * The multi-tenant serving layer's composition root: a fleet of
 * engine shards, many sessions.
 *
 * A Server owns an array of EngineShards — each one a full
 * runtime::Engine (its own simulated machine, hybrid memory, executor
 * and pressure director) plus the FairScheduler installed as that
 * shard's dispatch policy — and the fleet-wide admission controller
 * (TenantRegistry), which places every admitted session by its load
 * vector onto the least-loaded shard under per-shard slices of the
 * global HBM budget. Sessions are submitted up front (a deterministic
 * replay of an arrival schedule); run() offers each to the admission
 * controller at its arrival time, starts admitted sessions on their
 * placement shard, drives every shard's event loop in one global
 * time-ordered co-simulation, and leaves one TenantReport per
 * session: throughput, watermark-latency percentiles against the SLA,
 * per-tenant cost totals (the determinism audit), fair-share service
 * counts, and the shard the session ran on.
 *
 * Cross-shard control flow rides on a single causality invariant: the
 * co-simulation always processes the globally-earliest pending event,
 * so inside any event at time t every other shard's clock is at or
 * before t with nothing pending earlier — Machine::syncTo(t) is
 * always legal before acting on another shard. Two optional data
 * paths build on it: work stealing (an idle shard's executor runs the
 * backlogged shard's oldest non-urgent task, costs charged home) and
 * tenant migration (a shard whose pressure director cannot demote its
 * way out of a breach drains its heaviest movable session and
 * restarts the remainder on the emptiest shard).
 *
 * Everything is keyed on tenant ids, never on submission order:
 * arrival events are scheduled in id order (ties at equal arrival
 * times break by id), per-tenant seeds derive from the id, and the
 * fair scheduler tie-breaks by id — so per-tenant results are
 * bit-identical no matter the order sessions were submitted in. With
 * shards == 1 (the default) and both cross-shard paths off, the
 * co-simulation degenerates to the single machine's run() loop and
 * every output is byte-identical to the single-engine server.
 */

#ifndef SBHBM_SERVE_SERVER_H
#define SBHBM_SERVE_SERVER_H

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/units.h"
#include "runtime/engine.h"
#include "serve/fair_scheduler.h"
#include "serve/tenant.h"
#include "serve/tenant_registry.h"

namespace sbhbm::serve {

/** Serving-layer configuration. */
struct ServeConfig
{
    /**
     * The per-shard engine template. max_inflight_bundles is the
     * per-machine ceiling on top of the per-tenant budgets — size it
     * to at least the sum of concurrent tenants' budgets or the
     * global limit becomes the binding constraint. host_threads is
     * the whole server's host pool; each shard gets an equal slice.
     */
    runtime::EngineConfig engine;

    /** Window length every session's pipeline uses. */
    SimTime window_ns = 100 * kNsPerMs;

    /**
     * Admission limits. An hbm_budget_bytes of 0 derives the default:
     * half of one shard machine's HBM (DRAM when the machine has
     * none) times the shard count. admission.mode selects
     * static-reservation vs live-pressure headroom; live mode samples
     * each shard's engine HBM gauge windowed high-water per admission
     * tick. admission.shards is overwritten from `shards` below.
     */
    AdmissionConfig admission{0, 64, 64};

    /** Install the weighted fair scheduler (false = the legacy
     *  tag-priority FIFO, for A/B comparison). */
    bool fair_share = true;

    /**
     * Demote an SLA-breaching tenant's placement class to DRAM-lean
     * (its non-urgent KPAs stop competing for HBM) until its
     * latencies recover — the serving half of the memory control
     * plane's feedback loop.
     */
    bool sla_demotion = false;

    /** Engine shards; 1 reproduces the single-engine server. */
    uint32_t shards = 1;

    /**
     * Let idle shards run backlogged shards' non-urgent tasks (costs
     * still charged to the home shard). Only meaningful at shards > 1.
     */
    bool work_stealing = false;

    /** Backlog depth a victim must have before it is stolen from. */
    uint32_t steal_min_backlog = 2;

    /**
     * Escalate an unrelievable pressure-director breach into tenant
     * migration: the breaching shard drains its heaviest movable
     * session and the remainder restarts on the emptiest shard.
     * Needs engine.pressure.enabled and shards > 1.
     */
    bool shard_migration = false;
};

/** What one session did, filled when it drains. */
struct TenantReport
{
    TenantSpec spec;
    Admission admission = Admission::kRejected;
    bool was_queued = false; //!< waited before admission

    SimTime arrived_at = 0;
    SimTime started_at = 0;
    SimTime finished_at = 0;

    uint64_t records = 0;
    uint64_t output_records = 0;
    double throughput_mrps = 0; //!< records / active session seconds

    /** Watermark latency vs the SLA target. */
    uint64_t windows = 0;
    uint64_t sla_violations = 0;
    double p50_s = 0;
    double p95_s = 0;
    double p99_s = 0;
    double max_latency_s = 0;

    /** Raw per-window latencies (seconds) for pooled percentiles. */
    std::vector<double> latency_samples;

    /** Per-tenant cost totals (the determinism anchors). */
    uint64_t tasks = 0;
    double cpu_ns = 0;
    uint64_t hbm_bytes = 0;
    uint64_t dram_bytes = 0;

    /** Task slots granted by the fair scheduler. */
    uint64_t served_slots = 0;

    // Memory-control-plane accounting.

    /** Peak charged HBM occupancy of this tenant's KPAs, bytes. */
    uint64_t hbm_peak_bytes = 0;

    /** KPAs / gauge bytes the pressure director demoted to DRAM. */
    uint64_t demoted_kpas = 0;
    uint64_t demoted_bytes = 0;

    /** Times the SLA loop demoted this tenant's placement class. */
    uint64_t sla_demotions = 0;

    /** Shard the session (last) ran on. */
    uint32_t shard = 0;

    /** Cross-shard migrations this session went through. */
    uint32_t migrations = 0;
};

/** A fleet of engine shards serving N tenants. */
class Server
{
  public:
    explicit Server(ServeConfig cfg)
        : cfg_(fillDefaults(std::move(cfg))), registry_(cfg_.admission)
    {
        shards_.reserve(cfg_.shards);
        for (uint32_t s = 0; s < cfg_.shards; ++s) {
            runtime::EngineConfig ec = cfg_.engine;
            // Each shard gets an equal slice of the host pool (the
            // wall-clock fork-join threads; simulated cores are per
            // machine and not shared).
            if (ec.host_threads > 0)
                ec.host_threads =
                    std::max(1u, ec.host_threads / cfg_.shards);
            shards_.push_back(std::make_unique<EngineShard>(ec));
            EngineShard &sh = *shards_.back();
            if (cfg_.fair_share)
                sh.eng->exec().setDispatchPolicy(&sh.sched);
            if (cfg_.admission.mode == AdmissionMode::kLivePressure) {
                // Gauge-aware admission: headroom is the windowed
                // high-water of the tier sessions actually allocate
                // on, not the sum of paper reservations.
                registry_.setLivePressure(s, [this, s] {
                    return shards_[s]
                        ->eng->memory()
                        .gauge(pressureTier())
                        .highWaterSinceMark();
                });
            }
        }
        if (cfg_.shard_migration && cfg_.shards > 1) {
            for (uint32_t s = 0; s < cfg_.shards; ++s)
                shards_[s]->eng->director().setBreachHook(
                    [this, s](uint64_t) { onShardBreach(s); });
        }
        if (cfg_.work_stealing && cfg_.shards > 1) {
            for (uint32_t s = 0; s < cfg_.shards; ++s)
                shards_[s]->eng->exec().setStealHook(
                    [this, s] { return stealInto(s); });
        }
    }

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Register a session (before run()); arrival happens at
     *  spec.arrives_at in virtual time. */
    void
    submit(TenantSpec spec)
    {
        sbhbm_assert(!ran_, "submit after run");
        sbhbm_assert(spec.id != 0, "tenant id 0 is reserved");
        pending_.push_back(std::move(spec));
    }

    /** Submit a whole fleet (the load driver's output). */
    void
    submitFleet(std::vector<TenantSpec> fleet)
    {
        for (auto &t : fleet)
            submit(std::move(t));
    }

    /** Drive every session to completion; fills the reports. */
    void
    run()
    {
        sbhbm_assert(!ran_, "run() called twice");
        ran_ = true;

        // Canonical order: everything below keys on ids, so results
        // cannot depend on the order submit() was called in.
        std::sort(pending_.begin(), pending_.end(),
                  [](const TenantSpec &a, const TenantSpec &b) {
                      return a.id < b.id;
                  });
        for (size_t i = 1; i < pending_.size(); ++i) {
            sbhbm_assert(pending_[i - 1].id != pending_[i].id,
                         "duplicate tenant id %u", pending_[i].id);
        }
        // Arrivals land on shard 0 — the control-plane machine; the
        // admission controller then places each admit on its shard.
        for (const TenantSpec &spec : pending_) {
            TenantReport rep;
            rep.spec = spec;
            rep.arrived_at = spec.arrives_at;
            reports_[spec.id] = rep;
            shards_[0]->eng->machine().atOrNow(
                spec.arrives_at, [this, spec] { arrive(spec); });
        }

        for (auto &sh : shards_)
            sh->eng->monitor().start();
        if (cfg_.admission.mode == AdmissionMode::kLivePressure)
            admissionTick();
        if (cfg_.work_stealing && cfg_.shards > 1) {
            for (uint32_t s = 0; s < cfg_.shards; ++s)
                stealTick(s);
        }
        runFleet();

        for (auto &sh : shards_)
            sbhbm_assert(sh->tenants.empty(),
                         "sessions still running at drain");
        sbhbm_assert(registry_.queued() == 0,
                     "sessions still waiting at drain");

        report_list_.clear();
        for (auto &[id, rep] : reports_)
            report_list_.push_back(rep);
    }

    /** Per-session reports, in tenant-id order (after run()). */
    const std::vector<TenantReport> &reports() const
    {
        return report_list_;
    }

    runtime::Engine &engine() { return *shards_[0]->eng; }
    runtime::Engine &engine(uint32_t s) { return *shards_[s]->eng; }
    uint32_t shardCount() const
    {
        return static_cast<uint32_t>(shards_.size());
    }
    const ServeConfig &config() const { return cfg_; }
    const TenantRegistry &registry() const { return registry_; }
    const FairScheduler &scheduler() const { return shards_[0]->sched; }
    const FairScheduler &scheduler(uint32_t s) const
    {
        return shards_[s]->sched;
    }

    /**
     * Jain index over weight-normalized service (tasks completed /
     * weight) of the sessions that ran: 1.0 = perfectly
     * weighted-fair. Computed from the executors' per-stream totals,
     * not the FairScheduler's counters, so the legacy tag-priority
     * mode (fair_share = false) is measured — not vacuously fair.
     */
    double
    fairnessIndex() const
    {
        std::vector<double> shares;
        for (const auto &rep : report_list_) {
            if (rep.admission == Admission::kAdmitted
                && rep.tasks > 0) {
                shares.push_back(static_cast<double>(rep.tasks)
                                 / rep.spec.weight);
            }
        }
        return jainIndex(shares);
    }

    /** Aggregate throughput: all records / serving makespan. */
    double
    aggregateMrps() const
    {
        uint64_t records = 0;
        SimTime t0 = kSimTimeNever, t1 = 0;
        for (const auto &rep : report_list_) {
            if (rep.admission != Admission::kAdmitted)
                continue;
            records += rep.records;
            t0 = std::min(t0, rep.started_at);
            t1 = std::max(t1, rep.finished_at);
        }
        const double sec = t1 > t0 ? simToSeconds(t1 - t0) : 0.0;
        return sec > 0 ? static_cast<double>(records) / sec / 1e6 : 0.0;
    }

  private:
    /** One engine plus its shard-local serving state. */
    struct EngineShard
    {
        explicit EngineShard(const runtime::EngineConfig &ec)
            : eng(std::make_unique<runtime::Engine>(ec))
        {
        }

        std::unique_ptr<runtime::Engine> eng;
        FairScheduler sched;
        std::map<runtime::StreamId, std::unique_ptr<Tenant>> tenants;
        std::map<runtime::StreamId, bool> demoted_class;
    };

    /**
     * A migrated session's report spans segments on several shards;
     * executor / scheduler / director counters are cumulative per
     * shard, so each segment snapshots its baselines at start and
     * contributes deltas at drain. First segments on a fresh stream
     * have all-zero baselines — the single-shard path is unchanged.
     */
    struct SegmentBase
    {
        uint64_t tasks = 0;
        double cpu_ns = 0;
        uint64_t hbm_bytes = 0;
        uint64_t dram_bytes = 0;
        uint64_t served_slots = 0;
        uint64_t demoted_kpas = 0;
        uint64_t demoted_bytes = 0;
    };

    static ServeConfig
    fillDefaults(ServeConfig cfg)
    {
        sbhbm_assert(cfg.shards >= 1, "server needs >= 1 shard");
        if (cfg.admission.hbm_budget_bytes == 0) {
            // Budget over the tier sessions actually allocate on:
            // HBM only in flat mode (cache / DRAM-only modes place
            // everything in DRAM). Every shard brings its own
            // machine, so the fleet budget scales with the count.
            const auto &m = cfg.engine.machine;
            const uint64_t pool =
                cfg.engine.mode == sim::MemoryMode::kFlat && m.hasHbm()
                    ? m.hbm.capacity_bytes
                    : m.dram.capacity_bytes;
            cfg.admission.hbm_budget_bytes =
                std::max<uint64_t>(1, pool / 2) * cfg.shards;
        }
        cfg.admission.shards = cfg.shards;
        return cfg;
    }

    /** Per-tenant workload seed: explicit, or derived from the id. */
    uint64_t
    seedFor(const TenantSpec &spec) const
    {
        if (spec.seed != 0)
            return spec.seed;
        return cfg_.engine.seed
               ^ (0x9e3779b97f4a7c15ULL * (uint64_t{spec.id} + 1));
    }

    void
    arrive(const TenantSpec &spec)
    {
        const Admission a = registry_.offer(spec);
        TenantReport &rep = reports_[spec.id];
        rep.admission = a;
        switch (a) {
          case Admission::kAdmitted:
            start(registry_.shardOf(spec.id), spec,
                  shards_[0]->eng->machine().now());
            break;
          case Admission::kQueued:
            rep.was_queued = true;
            break;
          case Admission::kRejected:
            break;
        }
    }

    /**
     * Start a session (segment) on shard @p s at global time @p now.
     * Callers hold the co-sim invariant (they are inside the
     * globally-earliest event), so syncing s's clock forward is legal.
     */
    void
    start(uint32_t s, const TenantSpec &spec, SimTime now)
    {
        EngineShard &sh = *shards_[s];
        sh.eng->machine().syncTo(now);

        SegmentBase base;
        const auto &ss = sh.eng->exec().streamStats(spec.id);
        base.tasks = ss.completed;
        base.cpu_ns = ss.cpu_ns;
        base.hbm_bytes = ss.hbm_bytes;
        base.dram_bytes = ss.dram_bytes;
        base.served_slots = sh.sched.served(spec.id);
        base.demoted_kpas = sh.eng->director().demotedKpas(spec.id);
        base.demoted_bytes = sh.eng->director().demotedBytes(spec.id);
        seg_base_[spec.id] = base;
        reports_[spec.id].shard = s;

        auto tenant = std::make_unique<Tenant>(
            *sh.eng, spec, cfg_.window_ns, seedFor(spec));
        Tenant &t = *tenant;
        sh.tenants[spec.id] = std::move(tenant);
        if (cfg_.fair_share)
            sh.sched.setWeight(spec.id, spec.weight);
        t.start();
        sh.eng->machine().after(kNsPerMs,
                                [this, s, id = spec.id] { poll(s, id); });
    }

    /**
     * Periodic admission pump (live-pressure mode only): admit
     * waiters that now fit under the measured pressure, then open a
     * fresh high-water window on every shard's gauge. Daemon-
     * scheduled on the control-plane shard: machines drain when
     * sessions do.
     */
    void
    admissionTick()
    {
        const SimTime now = shards_[0]->eng->machine().now();
        for (const TenantSpec &next : registry_.pumpAdmission())
            start(registry_.shardOf(next.id), next, now);
        for (uint32_t s = 0; s < cfg_.shards; ++s) {
            shards_[s]->eng->memory().markHighWater(pressureTier());
            // The fresh window's sample covers everything admitted up
            // to here: reset the registry's unmeasured-reserve term.
            registry_.noteGaugeMarked(s);
        }
        shards_[0]->eng->machine().after(
            cfg_.engine.monitor_period, [this] { admissionTick(); },
            /*daemon=*/true);
    }

    /**
     * Periodic steal pump for shard @p s: a shard whose event queue
     * ran completely dry never re-enters its executor's pump(), so
     * without this tick it would stop lending cycles the moment it
     * went idle. Daemon-scheduled — it keeps no machine alive.
     */
    void
    stealTick(uint32_t s)
    {
        shards_[s]->eng->exec().pumpSteals();
        shards_[s]->eng->machine().after(
            cfg_.engine.monitor_period, [this, s] { stealTick(s); },
            /*daemon=*/true);
    }

    /** Tier live admission watches: where sessions' KPAs land.
     *  Outside flat mode every allocation is DRAM-resident, so the
     *  HBM gauge would sit at zero forever and live admission would
     *  silently wave everyone through. */
    mem::Tier
    pressureTier() const
    {
        return cfg_.engine.mode == sim::MemoryMode::kFlat
                       && cfg_.engine.machine.hasHbm()
                   ? mem::Tier::kHbm
                   : mem::Tier::kDram;
    }

    /**
     * The global event loop: always step the shard machine with the
     * earliest pending event (ties break on the lowest shard index),
     * until no machine has non-daemon work left — the exact
     * multi-machine generalization of EventQueue::run(), and
     * identical to it at one shard. Daemon events (monitors,
     * admission ticks) keep firing while any shard has live work, so
     * a drained shard's clock keeps pace with the fleet.
     */
    void
    runFleet()
    {
        for (;;) {
            bool any_live = false;
            size_t best = 0;
            SimTime best_t = kSimTimeNever;
            for (size_t s = 0; s < shards_.size(); ++s) {
                sim::Machine &m = shards_[s]->eng->machine();
                any_live = any_live || !m.idle();
                const SimTime t = m.events().nextTime();
                if (t < best_t) {
                    best_t = t;
                    best = s;
                }
            }
            if (!any_live)
                break;
            shards_[best]->eng->machine().step();
        }
    }

    void
    poll(uint32_t s, runtime::StreamId id)
    {
        EngineShard &sh = *shards_[s];
        auto it = sh.tenants.find(id);
        sbhbm_assert(it != sh.tenants.end(), "polling unknown tenant %u",
                     id);
        Tenant &t = *it->second;
        t.sla().observe(t.pipe());
        if (cfg_.sla_demotion) {
            // SLA feedback into placement: a breaching tenant's
            // non-urgent KPAs go DRAM-lean until it recovers.
            const bool want = t.sla().breached();
            bool &demoted = sh.demoted_class[id];
            if (want != demoted) {
                demoted = want;
                sh.eng->setStreamPlacementClass(
                    id, want ? mem::PlacementClass::kDramLean
                             : mem::PlacementClass::kNormal);
                if (want)
                    ++reports_[id].sla_demotions;
            }
        }
        if (!t.drained()) {
            sh.eng->machine().after(kNsPerMs,
                                    [this, s, id] { poll(s, id); });
            return;
        }
        finish(s, id, t);
    }

    /** Fold a drained segment on shard @p s into the report. */
    void
    accumulate(uint32_t s, runtime::StreamId id, Tenant &t)
    {
        EngineShard &sh = *shards_[s];
        t.sla().observe(t.pipe());
        TenantReport &rep = reports_[id];
        if (rep.migrations == 0)
            rep.started_at = t.startedAt();
        rep.records += t.recordsIngested();
        rep.output_records += t.outputRecords();

        const SlaTracker &sla = t.sla();
        rep.windows += sla.windows();
        rep.sla_violations += sla.violations();
        for (double v : sla.latencies().samples())
            rep.latency_samples.push_back(v);
        rep.max_latency_s = std::max(rep.max_latency_s, sla.maxLatency());

        const auto &ss = sh.eng->exec().streamStats(id);
        const SegmentBase &base = seg_base_[id];
        rep.tasks += ss.completed - base.tasks;
        rep.cpu_ns += ss.cpu_ns - base.cpu_ns;
        rep.hbm_bytes += ss.hbm_bytes - base.hbm_bytes;
        rep.dram_bytes += ss.dram_bytes - base.dram_bytes;
        rep.served_slots += sh.sched.served(id) - base.served_slots;

        rep.hbm_peak_bytes =
            std::max(rep.hbm_peak_bytes,
                     sh.eng->memory().streamHbmHighWater(id));
        rep.demoted_kpas +=
            sh.eng->director().demotedKpas(id) - base.demoted_kpas;
        rep.demoted_bytes +=
            sh.eng->director().demotedBytes(id) - base.demoted_bytes;
    }

    /** Tear a session's shard-local state down after a drain. */
    void
    teardown(uint32_t s, runtime::StreamId id)
    {
        EngineShard &sh = *shards_[s];
        sh.tenants.erase(id);
        sh.eng->setStreamBudget(id, 0);
        if (cfg_.sla_demotion && sh.demoted_class[id]) {
            sh.eng->setStreamPlacementClass(id,
                                            mem::PlacementClass::kNormal);
            sh.demoted_class[id] = false;
        }
        // A teardown is a step change in usage: restart the pressure
        // window so the departed session's peak does not keep blocking
        // admission until the next tick.
        if (cfg_.admission.mode == AdmissionMode::kLivePressure) {
            sh.eng->memory().markHighWater(pressureTier());
            registry_.noteGaugeMarked(s);
        }
    }

    void
    finish(uint32_t s, runtime::StreamId id, Tenant &t)
    {
        const SimTime now = shards_[s]->eng->machine().now();
        TenantReport &rep = reports_[id];

        // A session marked for migration drains early (its stream was
        // truncated); if records remain, restart them on the target.
        uint32_t target = 0;
        bool migrate = false;
        if (auto mig = migrating_.find(id); mig != migrating_.end()) {
            target = mig->second;
            migrating_.erase(mig);
            migrate = rep.records + t.recordsIngested()
                      < rep.spec.total_records;
        }

        accumulate(s, id, t);
        teardown(s, id); // destroys t

        if (migrate) {
            ++rep.migrations;
            TenantSpec cont = rep.spec;
            cont.total_records = rep.spec.total_records - rep.records;
            start(target, cont, now);
            return;
        }

        rep.admission = Admission::kAdmitted;
        rep.finished_at = now;
        const double sec = simToSeconds(rep.finished_at - rep.started_at);
        rep.throughput_mrps =
            sec > 0 ? static_cast<double>(rep.records) / sec / 1e6 : 0.0;
        // Percentiles over the pooled per-window samples: for the
        // single-segment session this is the SLA tracker's own
        // SampleSet math on the same values, bit for bit.
        SampleSet pooled;
        for (double v : rep.latency_samples)
            pooled.add(v);
        rep.p50_s = pooled.percentile(50);
        rep.p95_s = pooled.percentile(95);
        rep.p99_s = pooled.percentile(99);

        // Hand the reservation back — which may admit waiting
        // sessions right now, at this virtual time, on any shard.
        for (const TenantSpec &next : registry_.release(id))
            start(registry_.shardOf(next.id), next, now);
    }

    /**
     * Shard @p s's pressure director could not demote its way out of
     * a high-water breach: drain the shard's heaviest movable session
     * (largest charged HBM footprint, ties to the lowest id) and mark
     * it for restart on the emptiest shard. Fired from the breaching
     * shard's monitor tick — the globally-earliest event, so registry
     * re-accounting and stream truncation are safe here; the actual
     * handoff happens when the truncated stream drains.
     */
    void
    onShardBreach(uint32_t s)
    {
        EngineShard &sh = *shards_[s];
        runtime::StreamId victim = 0;
        uint64_t victim_used = 0;
        for (const auto &[id, t] : sh.tenants) {
            if (!t->migratable() || migrating_.count(id) != 0)
                continue;
            const uint64_t used =
                sh.eng->memory().streamUsed(id, mem::Tier::kHbm);
            if (used > victim_used) {
                victim_used = used;
                victim = id;
            }
        }
        if (victim == 0)
            return;

        uint32_t target = s;
        double target_frac = 2.0;
        for (uint32_t u = 0; u < cfg_.shards; ++u) {
            if (u == s)
                continue;
            const double f = shards_[u]
                                 ->eng->memory()
                                 .gauge(mem::Tier::kHbm)
                                 .usedFraction();
            if (f < target_frac) {
                target_frac = f;
                target = u;
            }
        }
        if (target == s)
            return;
        // Move the declared reservation now (static-mode headroom is
        // checked here); the running state drains through the normal
        // output path — drain-and-restart migrates identity, not
        // resident bytes.
        if (!registry_.migrate(victim, target))
            return;
        migrating_[victim] = target;
        sh.tenants[victim]->truncate();
    }

    /**
     * Idle-steal hook body for thief shard @p s: pop the oldest
     * non-urgent task off the most backlogged other shard (if its
     * backlog clears the threshold) and run it here, costs charged
     * home. @return true when a task was stolen (the executor
     * re-invokes until slots fill or this declines).
     */
    bool
    stealInto(uint32_t s)
    {
        uint32_t victim = s;
        uint64_t victim_backlog = 0;
        for (uint32_t u = 0; u < cfg_.shards; ++u) {
            if (u == s)
                continue;
            const uint64_t q = shards_[u]->eng->exec().queuedTasks();
            if (q >= cfg_.steal_min_backlog && q > victim_backlog) {
                victim_backlog = q;
                victim = u;
            }
        }
        if (victim == s)
            return false;
        runtime::Executor &vex = shards_[victim]->eng->exec();
        runtime::Executor::StolenTask task;
        if (!vex.popStealable(task))
            return false;
        shards_[s]->eng->exec().runStolen(std::move(task), vex);
        return true;
    }

    ServeConfig cfg_;
    std::vector<std::unique_ptr<EngineShard>> shards_;
    TenantRegistry registry_;
    std::vector<TenantSpec> pending_;
    std::map<runtime::StreamId, TenantReport> reports_;
    std::map<runtime::StreamId, SegmentBase> seg_base_;
    std::map<runtime::StreamId, uint32_t> migrating_;
    std::vector<TenantReport> report_list_;
    bool ran_ = false;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_SERVER_H
