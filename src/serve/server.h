/**
 * @file
 * The multi-tenant serving layer's composition root: one engine, many
 * sessions.
 *
 * A Server owns the shared runtime::Engine, the admission controller
 * (TenantRegistry) and the FairScheduler it installs as the
 * executor's dispatch policy. Sessions are submitted up front (a
 * deterministic replay of an arrival schedule); run() offers each to
 * the admission controller at its arrival time, starts admitted
 * sessions, drains everything, and leaves one TenantReport per
 * session: throughput, watermark-latency percentiles against the SLA,
 * per-tenant cost totals (the determinism audit), and fair-share
 * service counts.
 *
 * Everything is keyed on tenant ids, never on submission order:
 * arrival events are scheduled in id order (ties at equal arrival
 * times break by id), per-tenant seeds derive from the id, and the
 * fair scheduler tie-breaks by id — so per-tenant results are
 * bit-identical no matter the order sessions were submitted in.
 */

#ifndef SBHBM_SERVE_SERVER_H
#define SBHBM_SERVE_SERVER_H

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "runtime/engine.h"
#include "serve/fair_scheduler.h"
#include "serve/tenant.h"
#include "serve/tenant_registry.h"

namespace sbhbm::serve {

/** Serving-layer configuration. */
struct ServeConfig
{
    /**
     * The shared engine. max_inflight_bundles is the machine-wide
     * ceiling on top of the per-tenant budgets — size it to at least
     * the sum of concurrent tenants' budgets or the global limit
     * becomes the binding constraint.
     */
    runtime::EngineConfig engine;

    /** Window length every session's pipeline uses. */
    SimTime window_ns = 100 * kNsPerMs;

    /**
     * Admission limits. An hbm_budget_bytes of 0 derives the default:
     * half the machine's HBM (DRAM when the machine has none).
     * admission.mode selects static-reservation vs live-pressure
     * headroom; live mode samples the engine HBM gauge's windowed
     * high-water each admission tick.
     */
    AdmissionConfig admission{0, 64, 64};

    /** Install the weighted fair scheduler (false = the legacy
     *  tag-priority FIFO, for A/B comparison). */
    bool fair_share = true;

    /**
     * Demote an SLA-breaching tenant's placement class to DRAM-lean
     * (its non-urgent KPAs stop competing for HBM) until its
     * latencies recover — the serving half of the memory control
     * plane's feedback loop.
     */
    bool sla_demotion = false;
};

/** What one session did, filled when it drains. */
struct TenantReport
{
    TenantSpec spec;
    Admission admission = Admission::kRejected;
    bool was_queued = false; //!< waited before admission

    SimTime arrived_at = 0;
    SimTime started_at = 0;
    SimTime finished_at = 0;

    uint64_t records = 0;
    uint64_t output_records = 0;
    double throughput_mrps = 0; //!< records / active session seconds

    /** Watermark latency vs the SLA target. */
    uint64_t windows = 0;
    uint64_t sla_violations = 0;
    double p50_s = 0;
    double p95_s = 0;
    double p99_s = 0;
    double max_latency_s = 0;

    /** Raw per-window latencies (seconds) for pooled percentiles. */
    std::vector<double> latency_samples;

    /** Per-tenant cost totals (the determinism anchors). */
    uint64_t tasks = 0;
    double cpu_ns = 0;
    uint64_t hbm_bytes = 0;
    uint64_t dram_bytes = 0;

    /** Task slots granted by the fair scheduler. */
    uint64_t served_slots = 0;

    // Memory-control-plane accounting.

    /** Peak charged HBM occupancy of this tenant's KPAs, bytes. */
    uint64_t hbm_peak_bytes = 0;

    /** KPAs / gauge bytes the pressure director demoted to DRAM. */
    uint64_t demoted_kpas = 0;
    uint64_t demoted_bytes = 0;

    /** Times the SLA loop demoted this tenant's placement class. */
    uint64_t sla_demotions = 0;
};

/** One engine serving N tenants. */
class Server
{
  public:
    explicit Server(ServeConfig cfg)
        : cfg_(fillDefaults(std::move(cfg))), eng_(cfg_.engine),
          registry_(cfg_.admission)
    {
        if (cfg_.fair_share)
            eng_.exec().setDispatchPolicy(&sched_);
        if (cfg_.admission.mode == AdmissionMode::kLivePressure) {
            // Gauge-aware admission: headroom is the windowed
            // high-water of the tier sessions actually allocate on,
            // not the sum of paper reservations.
            registry_.setLivePressure([this] {
                return eng_.memory()
                    .gauge(pressureTier())
                    .highWaterSinceMark();
            });
        }
    }

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Register a session (before run()); arrival happens at
     *  spec.arrives_at in virtual time. */
    void
    submit(TenantSpec spec)
    {
        sbhbm_assert(!ran_, "submit after run");
        sbhbm_assert(spec.id != 0, "tenant id 0 is reserved");
        pending_.push_back(std::move(spec));
    }

    /** Submit a whole fleet (the load driver's output). */
    void
    submitFleet(std::vector<TenantSpec> fleet)
    {
        for (auto &t : fleet)
            submit(std::move(t));
    }

    /** Drive every session to completion; fills the reports. */
    void
    run()
    {
        sbhbm_assert(!ran_, "run() called twice");
        ran_ = true;

        // Canonical order: everything below keys on ids, so results
        // cannot depend on the order submit() was called in.
        std::sort(pending_.begin(), pending_.end(),
                  [](const TenantSpec &a, const TenantSpec &b) {
                      return a.id < b.id;
                  });
        for (size_t i = 1; i < pending_.size(); ++i) {
            sbhbm_assert(pending_[i - 1].id != pending_[i].id,
                         "duplicate tenant id %u", pending_[i].id);
        }
        for (const TenantSpec &spec : pending_) {
            TenantReport rep;
            rep.spec = spec;
            rep.arrived_at = spec.arrives_at;
            reports_[spec.id] = rep;
            eng_.machine().atOrNow(
                spec.arrives_at, [this, spec] { arrive(spec); });
        }

        eng_.monitor().start();
        if (cfg_.admission.mode == AdmissionMode::kLivePressure)
            admissionTick();
        eng_.machine().run();

        sbhbm_assert(tenants_.empty(), "sessions still running at drain");
        sbhbm_assert(registry_.queued() == 0,
                     "sessions still waiting at drain");

        report_list_.clear();
        for (auto &[id, rep] : reports_)
            report_list_.push_back(rep);
    }

    /** Per-session reports, in tenant-id order (after run()). */
    const std::vector<TenantReport> &reports() const
    {
        return report_list_;
    }

    runtime::Engine &engine() { return eng_; }
    const ServeConfig &config() const { return cfg_; }
    const TenantRegistry &registry() const { return registry_; }
    const FairScheduler &scheduler() const { return sched_; }

    /**
     * Jain index over weight-normalized service (tasks completed /
     * weight) of the sessions that ran: 1.0 = perfectly
     * weighted-fair. Computed from the executor's per-stream totals,
     * not the FairScheduler's counters, so the legacy tag-priority
     * mode (fair_share = false) is measured — not vacuously fair.
     */
    double
    fairnessIndex() const
    {
        std::vector<double> shares;
        for (const auto &rep : report_list_) {
            if (rep.admission == Admission::kAdmitted
                && rep.tasks > 0) {
                shares.push_back(static_cast<double>(rep.tasks)
                                 / rep.spec.weight);
            }
        }
        return jainIndex(shares);
    }

    /** Aggregate throughput: all records / serving makespan. */
    double
    aggregateMrps() const
    {
        uint64_t records = 0;
        SimTime t0 = kSimTimeNever, t1 = 0;
        for (const auto &rep : report_list_) {
            if (rep.admission != Admission::kAdmitted)
                continue;
            records += rep.records;
            t0 = std::min(t0, rep.started_at);
            t1 = std::max(t1, rep.finished_at);
        }
        const double sec = t1 > t0 ? simToSeconds(t1 - t0) : 0.0;
        return sec > 0 ? static_cast<double>(records) / sec / 1e6 : 0.0;
    }

  private:
    static ServeConfig
    fillDefaults(ServeConfig cfg)
    {
        if (cfg.admission.hbm_budget_bytes == 0) {
            // Budget over the tier sessions actually allocate on:
            // HBM only in flat mode (cache / DRAM-only modes place
            // everything in DRAM).
            const auto &m = cfg.engine.machine;
            const uint64_t pool =
                cfg.engine.mode == sim::MemoryMode::kFlat && m.hasHbm()
                    ? m.hbm.capacity_bytes
                    : m.dram.capacity_bytes;
            cfg.admission.hbm_budget_bytes = std::max<uint64_t>(
                1, pool / 2);
        }
        return cfg;
    }

    /** Per-tenant workload seed: explicit, or derived from the id. */
    uint64_t
    seedFor(const TenantSpec &spec) const
    {
        if (spec.seed != 0)
            return spec.seed;
        return cfg_.engine.seed
               ^ (0x9e3779b97f4a7c15ULL * (uint64_t{spec.id} + 1));
    }

    void
    arrive(const TenantSpec &spec)
    {
        const Admission a = registry_.offer(spec);
        TenantReport &rep = reports_[spec.id];
        rep.admission = a;
        switch (a) {
          case Admission::kAdmitted:
            start(spec);
            break;
          case Admission::kQueued:
            rep.was_queued = true;
            break;
          case Admission::kRejected:
            break;
        }
    }

    void
    start(const TenantSpec &spec)
    {
        auto tenant = std::make_unique<Tenant>(eng_, spec, cfg_.window_ns,
                                               seedFor(spec));
        Tenant &t = *tenant;
        tenants_[spec.id] = std::move(tenant);
        if (cfg_.fair_share)
            sched_.setWeight(spec.id, spec.weight);
        t.start();
        eng_.machine().after(kNsPerMs, [this, id = spec.id] { poll(id); });
    }

    /**
     * Periodic admission pump (live-pressure mode only): admit
     * waiters that now fit under the measured pressure, then open a
     * fresh high-water window on the gauge. Daemon-scheduled: the
     * machine drains when sessions do.
     */
    void
    admissionTick()
    {
        for (const TenantSpec &next : registry_.pumpAdmission())
            start(next);
        eng_.memory().markHighWater(pressureTier());
        eng_.machine().after(
            cfg_.engine.monitor_period, [this] { admissionTick(); },
            /*daemon=*/true);
    }

    /** Tier live admission watches: where sessions' KPAs land.
     *  Outside flat mode every allocation is DRAM-resident, so the
     *  HBM gauge would sit at zero forever and live admission would
     *  silently wave everyone through. */
    mem::Tier
    pressureTier() const
    {
        return cfg_.engine.mode == sim::MemoryMode::kFlat
                       && cfg_.engine.machine.hasHbm()
                   ? mem::Tier::kHbm
                   : mem::Tier::kDram;
    }

    void
    poll(runtime::StreamId id)
    {
        auto it = tenants_.find(id);
        sbhbm_assert(it != tenants_.end(), "polling unknown tenant %u",
                     id);
        Tenant &t = *it->second;
        t.sla().observe(t.pipe());
        if (cfg_.sla_demotion) {
            // SLA feedback into placement: a breaching tenant's
            // non-urgent KPAs go DRAM-lean until it recovers.
            const bool want = t.sla().breached();
            bool &demoted = demoted_class_[id];
            if (want != demoted) {
                demoted = want;
                eng_.setStreamPlacementClass(
                    id, want ? mem::PlacementClass::kDramLean
                             : mem::PlacementClass::kNormal);
                if (want)
                    ++reports_[id].sla_demotions;
            }
        }
        if (!t.drained()) {
            eng_.machine().after(kNsPerMs, [this, id] { poll(id); });
            return;
        }
        finish(id, t);
    }

    void
    finish(runtime::StreamId id, Tenant &t)
    {
        t.sla().observe(t.pipe());
        TenantReport &rep = reports_[id];
        rep.admission = Admission::kAdmitted;
        rep.started_at = t.startedAt();
        rep.finished_at = eng_.machine().now();
        rep.records = t.recordsIngested();
        rep.output_records = t.outputRecords();
        const double sec =
            simToSeconds(rep.finished_at - rep.started_at);
        rep.throughput_mrps =
            sec > 0 ? static_cast<double>(rep.records) / sec / 1e6 : 0.0;

        const SlaTracker &sla = t.sla();
        rep.windows = sla.windows();
        rep.sla_violations = sla.violations();
        rep.p50_s = sla.p50();
        rep.p95_s = sla.p95();
        rep.p99_s = sla.p99();
        rep.max_latency_s = sla.maxLatency();
        rep.latency_samples = sla.latencies().samples();

        const auto &ss = eng_.exec().streamStats(id);
        rep.tasks = ss.completed;
        rep.cpu_ns = ss.cpu_ns;
        rep.hbm_bytes = ss.hbm_bytes;
        rep.dram_bytes = ss.dram_bytes;
        rep.served_slots = sched_.served(id);

        rep.hbm_peak_bytes = eng_.memory().streamHbmHighWater(id);
        rep.demoted_kpas = eng_.director().demotedKpas(id);
        rep.demoted_bytes = eng_.director().demotedBytes(id);

        // Session teardown: free the pipeline, drop the per-tenant
        // budget and any placement demotion, then hand the
        // reservation back — which may admit waiting sessions right
        // now, at this virtual time.
        tenants_.erase(id);
        eng_.setStreamBudget(id, 0);
        if (cfg_.sla_demotion && demoted_class_[id]) {
            eng_.setStreamPlacementClass(id, mem::PlacementClass::kNormal);
            demoted_class_[id] = false;
        }
        // A teardown is a step change in usage: restart the pressure
        // window so the departed session's peak does not keep blocking
        // admission until the next tick.
        if (cfg_.admission.mode == AdmissionMode::kLivePressure)
            eng_.memory().markHighWater(pressureTier());
        for (const TenantSpec &next : registry_.release(id))
            start(next);
    }

    ServeConfig cfg_;
    runtime::Engine eng_;
    TenantRegistry registry_;
    FairScheduler sched_;
    std::vector<TenantSpec> pending_;
    std::map<runtime::StreamId, std::unique_ptr<Tenant>> tenants_;
    std::map<runtime::StreamId, TenantReport> reports_;
    std::map<runtime::StreamId, bool> demoted_class_;
    std::vector<TenantReport> report_list_;
    bool ran_ = false;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_SERVER_H
