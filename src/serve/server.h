/**
 * @file
 * The multi-tenant serving layer's composition root: a fleet of
 * engine shards, many sessions.
 *
 * A Server owns an array of EngineShards — each one a full
 * runtime::Engine (its own simulated machine, hybrid memory, executor
 * and pressure director) plus the FairScheduler installed as that
 * shard's dispatch policy — and the fleet-wide admission controller
 * (TenantRegistry), which places every admitted session by its load
 * vector onto the least-loaded shard under per-shard slices of the
 * global HBM budget. Sessions are submitted up front (a deterministic
 * replay of an arrival schedule); run() offers each to the admission
 * controller at its arrival time, starts admitted sessions on their
 * placement shard, drives every shard's event loop in one global
 * time-ordered co-simulation, and leaves one TenantReport per
 * session: throughput, watermark-latency percentiles against the SLA,
 * per-tenant cost totals (the determinism audit), fair-share service
 * counts, and the shard the session ran on.
 *
 * Cross-shard control flow rides on a single causality invariant: the
 * co-simulation always processes the globally-earliest pending event,
 * so inside any event at time t every other shard's clock is at or
 * before t with nothing pending earlier — Machine::syncTo(t) is
 * always legal before acting on another shard. Two optional data
 * paths build on it: work stealing (an idle shard's executor runs the
 * backlogged shard's oldest non-urgent task, costs charged home) and
 * tenant migration (a shard whose pressure director cannot demote its
 * way out of a breach drains its heaviest movable session and
 * restarts the remainder on the emptiest shard).
 *
 * Everything is keyed on tenant ids, never on submission order:
 * arrival events are scheduled in id order (ties at equal arrival
 * times break by id), per-tenant seeds derive from the id, and the
 * fair scheduler tie-breaks by id — so per-tenant results are
 * bit-identical no matter the order sessions were submitted in. With
 * shards == 1 (the default) and both cross-shard paths off, the
 * co-simulation degenerates to the single machine's run() loop and
 * every output is byte-identical to the single-engine server.
 *
 * Fault tolerance (ServeConfig::fault) layers four mechanisms on the
 * same invariants: a deterministic FaultInjector armed on the
 * control-plane machine; watermark-aligned per-session checkpoints
 * (quiesce → snapshot operator state → charge the copy traffic);
 * shard failover (a crashed shard's sessions restart on survivors
 * from their last checkpoint, replay their source past the cut under
 * logical event time, and deduplicate already-delivered windows at
 * the egress — recovered output is bit-identical to a fault-free
 * run); and graceful degradation (typed allocation failures shed
 * tasks instead of aborting, emergency relocation sweeps relieve
 * exhaustion, rejected arrivals retry with backoff, slow shards
 * degrade and recover). Every fault, crash, recovery and loss appends
 * a line to recoveryTrace() — the reproducibility fingerprint.
 */

#ifndef SBHBM_SERVE_SERVER_H
#define SBHBM_SERVE_SERVER_H

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/units.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "serve/checkpoint.h"
#include "serve/fair_scheduler.h"
#include "serve/tenant.h"
#include "serve/tenant_registry.h"
#include "sim/fault_injector.h"

namespace sbhbm::serve {

/**
 * Fault-tolerance knobs. The fault plan itself is deterministic (a
 * seeded schedule of virtual-time events), so a chaos run is exactly
 * as reproducible as a fault-free one: same plan, same seed, same
 * bits.
 */
struct FaultToleranceConfig
{
    /** Master switch: injector, checkpointing, failover, recovery. */
    bool enabled = false;

    /** The fault schedule (explicit or FaultPlan::scatter). */
    sim::FaultPlan plan;

    /**
     * Checkpoint cadence per session, virtual ns; 0 disables
     * checkpointing (crashed sessions then recover by
     * scratch-restart). Each checkpoint briefly quiesces the session
     * (pause source, drain in-flight work) so the cut is exact.
     */
    SimTime checkpoint_period = 0;

    /** Reuse unchanged runs from the previous cut (no copy charge). */
    bool incremental = true;

    /** Poll interval while waiting for checkpoint quiescence. */
    SimTime quiesce_poll = kNsPerMs / 10;

    /** Crash detection + failover latency before recovery starts. */
    SimTime recovery_delay = kNsPerMs;

    /** Recovery placement retries before a session is declared lost
     *  (bounds termination when no live shard ever has headroom). */
    uint32_t max_recovery_attempts = 64;

    /** Re-offer a rejected arrival up to this many times... */
    uint32_t admission_retries = 0;

    /** ...with this linear backoff between attempts. */
    SimTime admission_retry_backoff = 20 * kNsPerMs;

    /**
     * Typed allocation failures instead of aborts: an exhausted tier
     * first triggers an emergency relocation sweep, and a task whose
     * allocation still fails is shed (counted, watermarks released)
     * rather than fatal.
     */
    bool graceful_exhaustion = true;

    /** While an engine is in allocation distress, shed load from
     *  sessions with SLA headroom (lossy windows, counted). */
    bool distress_shedding = false;
};

/** Serving-layer configuration. */
struct ServeConfig
{
    /**
     * The per-shard engine template. max_inflight_bundles is the
     * per-machine ceiling on top of the per-tenant budgets — size it
     * to at least the sum of concurrent tenants' budgets or the
     * global limit becomes the binding constraint. host_threads is
     * the whole server's host pool; each shard gets an equal slice.
     */
    runtime::EngineConfig engine;

    /** Window length every session's pipeline uses. */
    SimTime window_ns = 100 * kNsPerMs;

    /**
     * Admission limits. An hbm_budget_bytes of 0 derives the default:
     * half of one shard machine's HBM (DRAM when the machine has
     * none) times the shard count. admission.mode selects
     * static-reservation vs live-pressure headroom; live mode samples
     * each shard's engine HBM gauge windowed high-water per admission
     * tick. admission.shards is overwritten from `shards` below.
     */
    AdmissionConfig admission{0, 64, 64};

    /** Install the weighted fair scheduler (false = the legacy
     *  tag-priority FIFO, for A/B comparison). */
    bool fair_share = true;

    /**
     * Demote an SLA-breaching tenant's placement class to DRAM-lean
     * (its non-urgent KPAs stop competing for HBM) until its
     * latencies recover — the serving half of the memory control
     * plane's feedback loop.
     */
    bool sla_demotion = false;

    /** Engine shards; 1 reproduces the single-engine server. */
    uint32_t shards = 1;

    /**
     * Let idle shards run backlogged shards' non-urgent tasks (costs
     * still charged to the home shard). Only meaningful at shards > 1.
     */
    bool work_stealing = false;

    /** Backlog depth a victim must have before it is stolen from. */
    uint32_t steal_min_backlog = 2;

    /**
     * Escalate an unrelievable pressure-director breach into tenant
     * migration: the breaching shard drains its heaviest movable
     * session and the remainder restarts on the emptiest shard.
     * Needs engine.pressure.enabled and shards > 1.
     */
    bool shard_migration = false;

    /** Fault injection, checkpointing and failover. */
    FaultToleranceConfig fault;

    /**
     * The telemetry plane (caller-owned; must outlive the server).
     * Installing one threads the metrics registry and trace sink
     * through every shard engine, executor, monitor and the fault /
     * recovery path. Null (the default) disables all recording and
     * keeps every output bit-identical to the uninstrumented build.
     */
    obs::Telemetry *telemetry = nullptr;
};

/** What one session did, filled when it drains. */
struct TenantReport
{
    TenantSpec spec;
    Admission admission = Admission::kRejected;
    bool was_queued = false; //!< waited before admission

    SimTime arrived_at = 0;
    SimTime started_at = 0;
    SimTime finished_at = 0;

    uint64_t records = 0;
    uint64_t output_records = 0;
    double throughput_mrps = 0; //!< records / active session seconds

    /** Watermark latency vs the SLA target. */
    uint64_t windows = 0;
    uint64_t sla_violations = 0;
    double p50_s = 0;
    double p95_s = 0;
    double p99_s = 0;
    double max_latency_s = 0;

    /** Raw per-window latencies (seconds) for pooled percentiles. */
    std::vector<double> latency_samples;

    /** Per-tenant cost totals (the determinism anchors). */
    uint64_t tasks = 0;
    double cpu_ns = 0;
    uint64_t hbm_bytes = 0;
    uint64_t dram_bytes = 0;

    /** Task slots granted by the fair scheduler. */
    uint64_t served_slots = 0;

    // Memory-control-plane accounting.

    /** Peak charged HBM occupancy of this tenant's KPAs, bytes. */
    uint64_t hbm_peak_bytes = 0;

    /** KPAs / gauge bytes the pressure director demoted to DRAM. */
    uint64_t demoted_kpas = 0;
    uint64_t demoted_bytes = 0;

    /** Times the SLA loop demoted this tenant's placement class. */
    uint64_t sla_demotions = 0;

    /** Shard the session (last) ran on. */
    uint32_t shard = 0;

    /** Cross-shard migrations this session went through. */
    uint32_t migrations = 0;

    // Fault-tolerance accounting.

    /** Shard-death episodes the session lived through. */
    uint32_t crashes = 0;

    /** Successful failovers (crash → restart on a live shard). */
    uint32_t recoveries = 0;

    /** Crashed and could not be recovered (two-stream session, no
     *  logical time, or recovery placement never fit). */
    bool lost = false;

    /** Total virtual time spent dead (crash → restart). */
    SimTime downtime_ns = 0;

    /** Records re-ingested past a checkpoint during recovery; the
     *  conservation identity is records == offered + replayed when
     *  nothing was shed. */
    uint64_t records_replayed = 0;

    /** Records consumed but dropped (injected drops + load shedding). */
    uint64_t records_shed = 0;

    /** Tasks shed on allocation failure (graceful exhaustion). */
    uint64_t shed_tasks = 0;

    /** Replayed result records the egress deduplicated. */
    uint64_t suppressed_records = 0;

    /** Checkpoints captured, and their copy/reuse byte totals. */
    uint64_t checkpoints = 0;
    uint64_t checkpoint_copied_bytes = 0;
    uint64_t checkpoint_reused_bytes = 0;

    /** Rejected-arrival retries consumed. */
    uint32_t admission_retries = 0;

    // SLA breach attribution (ns, indexed by StallCause).

    /** Total per-window latency decomposed by cause; the five
     *  components sum exactly to the measured watermark latency. */
    double attribution_ns[kStallCauses] = {};

    /** The same decomposition over SLA-violating windows only. */
    double breach_attribution_ns[kStallCauses] = {};

    /** What mostly made the violating windows late. */
    StallCause dominant_cause = StallCause::kCompute;

    /**
     * Exactly-once delivered output per window: result-record counts
     * and order-insensitive content checksums, merged across
     * segments. Output commits at checkpoint cuts (a transactional
     * sink): when a shard crashes, the dead segment's uncommitted
     * windows are rolled back here and redelivered whole by the
     * recovered incarnation — so after any number of injected
     * crashes these maps are bit-identical to a fault-free run's.
     * (Latency/window *observations* are not rolled back: a replayed
     * window was genuinely externalized twice.)
     */
    std::map<columnar::WindowId, uint64_t> window_records;
    std::map<columnar::WindowId, uint64_t> window_checksums;
};

/** A fleet of engine shards serving N tenants. */
class Server
{
  public:
    explicit Server(ServeConfig cfg)
        : cfg_(fillDefaults(std::move(cfg))), registry_(cfg_.admission)
    {
        shards_.reserve(cfg_.shards);
        shard_dead_.assign(cfg_.shards, false);
        for (uint32_t s = 0; s < cfg_.shards; ++s) {
            runtime::EngineConfig ec = cfg_.engine;
            // Each shard gets an equal slice of the host pool (the
            // wall-clock fork-join threads; simulated cores are per
            // machine and not shared).
            if (ec.host_threads > 0)
                ec.host_threads =
                    std::max(1u, ec.host_threads / cfg_.shards);
            shards_.push_back(std::make_unique<EngineShard>(ec));
            EngineShard &sh = *shards_.back();
            if (cfg_.telemetry != nullptr)
                sh.eng->setTelemetry(cfg_.telemetry, s);
            if (cfg_.fair_share)
                sh.eng->exec().setDispatchPolicy(&sh.sched);
            if (cfg_.admission.mode == AdmissionMode::kLivePressure) {
                // Gauge-aware admission: headroom is the windowed
                // high-water of the tier sessions actually allocate
                // on, not the sum of paper reservations.
                registry_.setLivePressure(s, [this, s] {
                    return shards_[s]
                        ->eng->memory()
                        .gauge(pressureTier())
                        .highWaterSinceMark();
                });
            }
        }
        if (cfg_.shard_migration && cfg_.shards > 1) {
            for (uint32_t s = 0; s < cfg_.shards; ++s)
                shards_[s]->eng->director().setBreachHook(
                    [this, s](uint64_t) { onShardBreach(s); });
        }
        if (cfg_.work_stealing && cfg_.shards > 1) {
            for (uint32_t s = 0; s < cfg_.shards; ++s)
                shards_[s]->eng->exec().setStealHook(
                    [this, s] { return stealInto(s); });
        }
        if (cfg_.fault.enabled && cfg_.fault.graceful_exhaustion) {
            for (auto &sh : shards_)
                sh->eng->enableGracefulExhaustion();
        }
    }

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Register a session (before run()); arrival happens at
     *  spec.arrives_at in virtual time. */
    void
    submit(TenantSpec spec)
    {
        sbhbm_assert(!ran_, "submit after run");
        sbhbm_assert(spec.id != 0, "tenant id 0 is reserved");
        pending_.push_back(std::move(spec));
    }

    /** Submit a whole fleet (the load driver's output). */
    void
    submitFleet(std::vector<TenantSpec> fleet)
    {
        for (auto &t : fleet)
            submit(std::move(t));
    }

    /** Drive every session to completion; fills the reports. */
    void
    run()
    {
        sbhbm_assert(!ran_, "run() called twice");
        ran_ = true;

        // Canonical order: everything below keys on ids, so results
        // cannot depend on the order submit() was called in.
        std::sort(pending_.begin(), pending_.end(),
                  [](const TenantSpec &a, const TenantSpec &b) {
                      return a.id < b.id;
                  });
        for (size_t i = 1; i < pending_.size(); ++i) {
            sbhbm_assert(pending_[i - 1].id != pending_[i].id,
                         "duplicate tenant id %u", pending_[i].id);
        }
        // Arrivals land on shard 0 — the control-plane machine; the
        // admission controller then places each admit on its shard.
        for (const TenantSpec &spec : pending_) {
            TenantReport rep;
            rep.spec = spec;
            rep.arrived_at = spec.arrives_at;
            reports_[spec.id] = rep;
            shards_[0]->eng->machine().atOrNow(
                spec.arrives_at, [this, spec] { arrive(spec); });
        }

        for (auto &sh : shards_)
            sh->eng->monitor().start();
        if (cfg_.admission.mode == AdmissionMode::kLivePressure)
            admissionTick();
        if (cfg_.work_stealing && cfg_.shards > 1) {
            for (uint32_t s = 0; s < cfg_.shards; ++s)
                stealTick(s);
        }
        if (cfg_.fault.enabled && !cfg_.fault.plan.empty()) {
            // Faults fire on the control-plane machine (the
            // globally-earliest event when they do), so handlers may
            // syncTo any shard before acting on it.
            injector_ = std::make_unique<sim::FaultInjector>(
                shards_[0]->eng->machine(), cfg_.fault.plan,
                [this](const sim::FaultEvent &e) { onFault(e); },
                &recoverySink());
            injector_->arm();
        }
        runFleet();

        for (auto &sh : shards_)
            sbhbm_assert(sh->tenants.empty(),
                         "sessions still running at drain");
        sbhbm_assert(registry_.queued() == 0,
                     "sessions still waiting at drain");
        sbhbm_assert(pending_recovery_.empty(),
                     "failovers still pending at drain");

        report_list_.clear();
        for (auto &[id, rep] : reports_)
            report_list_.push_back(rep);
    }

    /** Per-session reports, in tenant-id order (after run()). */
    const std::vector<TenantReport> &reports() const
    {
        return report_list_;
    }

    runtime::Engine &engine() { return *shards_[0]->eng; }
    runtime::Engine &engine(uint32_t s) { return *shards_[s]->eng; }
    uint32_t shardCount() const
    {
        return static_cast<uint32_t>(shards_.size());
    }
    const ServeConfig &config() const { return cfg_; }
    const TenantRegistry &registry() const { return registry_; }
    const FairScheduler &scheduler() const { return shards_[0]->sched; }
    const FairScheduler &scheduler(uint32_t s) const
    {
        return shards_[s]->sched;
    }

    /**
     * Jain index over weight-normalized service (tasks completed /
     * weight) of the sessions that ran: 1.0 = perfectly
     * weighted-fair. Computed from the executors' per-stream totals,
     * not the FairScheduler's counters, so the legacy tag-priority
     * mode (fair_share = false) is measured — not vacuously fair.
     */
    double
    fairnessIndex() const
    {
        std::vector<double> shares;
        for (const auto &rep : report_list_) {
            if (rep.admission == Admission::kAdmitted
                && rep.tasks > 0) {
                shares.push_back(static_cast<double>(rep.tasks)
                                 / rep.spec.weight);
            }
        }
        return jainIndex(shares);
    }

    /** Aggregate throughput: all records / serving makespan. */
    double
    aggregateMrps() const
    {
        uint64_t records = 0;
        SimTime t0 = kSimTimeNever, t1 = 0;
        for (const auto &rep : report_list_) {
            if (rep.admission != Admission::kAdmitted)
                continue;
            records += rep.records;
            t0 = std::min(t0, rep.started_at);
            t1 = std::max(t1, rep.finished_at);
        }
        const double sec = t1 > t0 ? simToSeconds(t1 - t0) : 0.0;
        return sec > 0 ? static_cast<double>(records) / sec / 1e6 : 0.0;
    }

    // ---------------------------------------------------------------
    // Fault-tolerance observability.
    // ---------------------------------------------------------------

    /** The armed injector (after run(), when a plan was set). */
    const sim::FaultInjector *injector() const { return injector_.get(); }

    /** Fleet-wide checkpoint store (latest cut per session, totals). */
    const CheckpointStore &checkpointStore() const { return ckpts_; }

    /** Is shard @p s dead (crashed by an injected fault)? */
    bool shardDead(uint32_t s) const { return shard_dead_[s]; }

    /**
     * The recovery trace: one line per fault fired, crash processed,
     * session recovered or lost — in virtual-time order. Two runs of
     * the same configuration and fault plan produce identical traces;
     * tests fingerprint reproducibility on it. A thin view over the
     * trace sink's "recovery" instants (the sink is the single record
     * of truth); line formats are unchanged from when this was its
     * own vector.
     */
    const std::vector<std::string> &
    recoveryTrace() const
    {
        trace_view_.clear();
        for (const obs::TraceEvent &e : recoverySink().events()) {
            if (std::strcmp(e.cat, "recovery") == 0)
                trace_view_.push_back(e.name);
        }
        return trace_view_;
    }

  private:
    /** One engine plus its shard-local serving state. */
    struct EngineShard
    {
        explicit EngineShard(const runtime::EngineConfig &ec)
            : eng(std::make_unique<runtime::Engine>(ec))
        {
        }

        std::unique_ptr<runtime::Engine> eng;
        FairScheduler sched;
        std::map<runtime::StreamId, std::unique_ptr<Tenant>> tenants;
        std::map<runtime::StreamId, bool> demoted_class;
    };

    /**
     * A migrated session's report spans segments on several shards;
     * executor / scheduler / director counters are cumulative per
     * shard, so each segment snapshots its baselines at start and
     * contributes deltas at drain. First segments on a fresh stream
     * have all-zero baselines — the single-shard path is unchanged.
     */
    struct SegmentBase
    {
        uint64_t tasks = 0;
        double cpu_ns = 0;
        uint64_t hbm_bytes = 0;
        uint64_t dram_bytes = 0;
        uint64_t served_slots = 0;
        uint64_t demoted_kpas = 0;
        uint64_t demoted_bytes = 0;
        uint64_t shed_tasks = 0;
        uint64_t queue_wait_ns = 0;
        uint64_t sweep_stall_ns = 0;
    };

    /** A crashed session waiting for a live shard to restart on. */
    struct PendingRecovery
    {
        runtime::StreamId id = 0;
        TenantSpec cont;       //!< continuation spec (resume offset)
        SimTime crashed_at = 0;
        columnar::WindowId dedup_before = 0; //!< committed pre-crash
        uint64_t replay = 0;   //!< records the replay will repeat
        bool use_checkpoint = false;
        uint32_t attempts = 0;
    };

    static ServeConfig
    fillDefaults(ServeConfig cfg)
    {
        sbhbm_assert(cfg.shards >= 1, "server needs >= 1 shard");
        if (cfg.admission.hbm_budget_bytes == 0) {
            // Budget over the tier sessions actually allocate on:
            // HBM only in flat mode (cache / DRAM-only modes place
            // everything in DRAM). Every shard brings its own
            // machine, so the fleet budget scales with the count.
            const auto &m = cfg.engine.machine;
            const uint64_t pool =
                cfg.engine.mode == sim::MemoryMode::kFlat && m.hasHbm()
                    ? m.hbm.capacity_bytes
                    : m.dram.capacity_bytes;
            cfg.admission.hbm_budget_bytes =
                std::max<uint64_t>(1, pool / 2) * cfg.shards;
        }
        cfg.admission.shards = cfg.shards;
        return cfg;
    }

    /** Per-tenant workload seed: explicit, or derived from the id. */
    uint64_t
    seedFor(const TenantSpec &spec) const
    {
        if (spec.seed != 0)
            return spec.seed;
        return cfg_.engine.seed
               ^ (0x9e3779b97f4a7c15ULL * (uint64_t{spec.id} + 1));
    }

    void
    arrive(const TenantSpec &spec)
    {
        const Admission a = registry_.offer(spec);
        TenantReport &rep = reports_[spec.id];
        rep.admission = a;
        if (obs::Telemetry *tp = cfg_.telemetry) {
            const char *verdict = a == Admission::kAdmitted ? "admit"
                                  : a == Admission::kQueued ? "queue"
                                                            : "reject";
            const uint32_t shard = a == Admission::kAdmitted
                                       ? registry_.shardOf(spec.id)
                                       : 0;
            tp->trace.instant(
                shards_[0]->eng->machine().now(), shard, spec.id,
                "admission", verdict,
                {{"hbm_reserve", spec.hbm_reserve_bytes},
                 {"retry", rep.admission_retries}});
        }
        switch (a) {
          case Admission::kAdmitted:
            start(registry_.shardOf(spec.id), spec,
                  shards_[0]->eng->machine().now());
            break;
          case Admission::kQueued:
            rep.was_queued = true;
            break;
          case Admission::kRejected:
            // Graceful degradation: a rejected arrival retries with
            // linear backoff instead of failing outright — a fleet
            // briefly saturated (or degraded by a fault) sheds the
            // arrival in time, not in kind.
            if (cfg_.fault.enabled
                && rep.admission_retries < cfg_.fault.admission_retries) {
                ++rep.admission_retries;
                const SimTime backoff = cfg_.fault.admission_retry_backoff
                                        * rep.admission_retries;
                shards_[0]->eng->machine().after(
                    backoff, [this, spec] { arrive(spec); });
            }
            break;
        }
    }

    /**
     * Start a session (segment) on shard @p s at global time @p now.
     * Callers hold the co-sim invariant (they are inside the
     * globally-earliest event), so syncing s's clock forward is legal.
     */
    /** Snapshot shard @p s's cumulative counters as the baseline of a
     *  new segment of session @p id. */
    void
    snapSegmentBase(uint32_t s, runtime::StreamId id)
    {
        EngineShard &sh = *shards_[s];
        SegmentBase base;
        const auto &ss = sh.eng->exec().streamStats(id);
        base.tasks = ss.completed;
        base.cpu_ns = ss.cpu_ns;
        base.hbm_bytes = ss.hbm_bytes;
        base.dram_bytes = ss.dram_bytes;
        base.served_slots = sh.sched.served(id);
        base.demoted_kpas = sh.eng->director().demotedKpas(id);
        base.demoted_bytes = sh.eng->director().demotedBytes(id);
        base.shed_tasks = ss.shed;
        base.queue_wait_ns = ss.queue_wait_ns;
        base.sweep_stall_ns = sh.eng->director().sweepStallNs(id);
        seg_base_[id] = base;
        reports_[id].shard = s;
    }

    void
    start(uint32_t s, const TenantSpec &spec, SimTime now)
    {
        EngineShard &sh = *shards_[s];
        sh.eng->machine().syncTo(now);
        snapSegmentBase(s, spec.id);

        auto tenant = std::make_unique<Tenant>(
            *sh.eng, spec, cfg_.window_ns, seedFor(spec));
        Tenant &t = *tenant;
        sh.tenants[spec.id] = std::move(tenant);
        if (cfg_.fair_share)
            sh.sched.setWeight(spec.id, spec.weight);
        t.start();
        // The shard's cumulative stall counters may carry history
        // (earlier segments, other incarnations): attribution for
        // this segment measures growth from here.
        t.sla().primeStalls(t.stallSnapshot());
        sh.eng->machine().after(kNsPerMs,
                                [this, s, id = spec.id] { poll(s, id); });
        if (cfg_.fault.enabled && cfg_.fault.checkpoint_period > 0
            && t.migratable() && spec.logical_time)
            scheduleCheckpoint(s, spec.id);
    }

    /**
     * Periodic admission pump (live-pressure mode only): admit
     * waiters that now fit under the measured pressure, then open a
     * fresh high-water window on every shard's gauge. Daemon-
     * scheduled on the control-plane shard: machines drain when
     * sessions do.
     */
    void
    admissionTick()
    {
        const SimTime now = shards_[0]->eng->machine().now();
        for (const TenantSpec &next : registry_.pumpAdmission())
            start(registry_.shardOf(next.id), next, now);
        for (uint32_t s = 0; s < cfg_.shards; ++s) {
            shards_[s]->eng->memory().markHighWater(pressureTier());
            // The fresh window's sample covers everything admitted up
            // to here: reset the registry's unmeasured-reserve term.
            registry_.noteGaugeMarked(s);
        }
        shards_[0]->eng->machine().after(
            cfg_.engine.monitor_period, [this] { admissionTick(); },
            /*daemon=*/true);
    }

    /**
     * Periodic steal pump for shard @p s: a shard whose event queue
     * ran completely dry never re-enters its executor's pump(), so
     * without this tick it would stop lending cycles the moment it
     * went idle. Daemon-scheduled — it keeps no machine alive.
     */
    void
    stealTick(uint32_t s)
    {
        shards_[s]->eng->exec().pumpSteals();
        shards_[s]->eng->machine().after(
            cfg_.engine.monitor_period, [this, s] { stealTick(s); },
            /*daemon=*/true);
    }

    /** Tier live admission watches: where sessions' KPAs land.
     *  Outside flat mode every allocation is DRAM-resident, so the
     *  HBM gauge would sit at zero forever and live admission would
     *  silently wave everyone through. */
    mem::Tier
    pressureTier() const
    {
        return cfg_.engine.mode == sim::MemoryMode::kFlat
                       && cfg_.engine.machine.hasHbm()
                   ? mem::Tier::kHbm
                   : mem::Tier::kDram;
    }

    /**
     * The global event loop: always step the shard machine with the
     * earliest pending event (ties break on the lowest shard index),
     * until no machine has non-daemon work left — the exact
     * multi-machine generalization of EventQueue::run(), and
     * identical to it at one shard. Daemon events (monitors,
     * admission ticks) keep firing while any shard has live work, so
     * a drained shard's clock keeps pace with the fleet.
     */
    void
    runFleet()
    {
        for (;;) {
            bool any_live = false;
            size_t best = 0;
            SimTime best_t = kSimTimeNever;
            for (size_t s = 0; s < shards_.size(); ++s) {
                sim::Machine &m = shards_[s]->eng->machine();
                any_live = any_live || !m.idle();
                const SimTime t = m.events().nextTime();
                if (t < best_t) {
                    best_t = t;
                    best = s;
                }
            }
            if (!any_live)
                break;
            shards_[best]->eng->machine().step();
        }
    }

    void
    poll(uint32_t s, runtime::StreamId id)
    {
        EngineShard &sh = *shards_[s];
        auto it = sh.tenants.find(id);
        if (it == sh.tenants.end())
            return; // session crashed off this shard mid-poll
        Tenant &t = *it->second;
        t.sla().observe(t.pipe(), t.stallSnapshot());
        if (cfg_.fault.enabled && cfg_.fault.distress_shedding) {
            // SLA-aware shedding under allocation distress: sessions
            // with latency headroom go lossy so breaching ones keep
            // their windows whole. Clears when the distress does.
            t.setShedding(sh.eng->inDistress() && !t.sla().breached());
        }
        if (cfg_.sla_demotion) {
            // SLA feedback into placement: a breaching tenant's
            // non-urgent KPAs go DRAM-lean until it recovers.
            const bool want = t.sla().breached();
            bool &demoted = sh.demoted_class[id];
            if (want != demoted) {
                demoted = want;
                sh.eng->setStreamPlacementClass(
                    id, want ? mem::PlacementClass::kDramLean
                             : mem::PlacementClass::kNormal);
                if (want)
                    ++reports_[id].sla_demotions;
            }
        }
        if (!t.drained()) {
            sh.eng->machine().after(kNsPerMs,
                                    [this, s, id] { poll(s, id); });
            return;
        }
        finish(s, id, t);
    }

    /** Every window: the commit horizon of a segment that drained
     *  normally (nothing to roll back). */
    static constexpr columnar::WindowId kAllWindows =
        ~columnar::WindowId{0};

    /**
     * Fold a drained segment on shard @p s into the report. Output
     * delivery is transactional: only windows below @p commit_before
     * count as delivered. A normal drain commits everything; a crash
     * passes its last checkpoint cut (or 0 for scratch-restart), so
     * the uncommitted suffix is rolled back and redelivered whole by
     * the recovered incarnation — never split across a mid-emission
     * crash boundary.
     */
    void
    accumulate(uint32_t s, runtime::StreamId id, Tenant &t,
               columnar::WindowId commit_before = kAllWindows)
    {
        EngineShard &sh = *shards_[s];
        t.sla().observe(t.pipe(), t.stallSnapshot());
        TenantReport &rep = reports_[id];
        if (rep.migrations == 0)
            rep.started_at = t.startedAt();
        rep.records += t.recordsIngested();

        const auto &wrec = t.egress().windowRecords();
        const auto &wsum = t.egress().windowChecksums();
        uint64_t committed = 0;
        for (const auto &[w, n] : wrec) {
            if (w >= commit_before)
                continue; // uncommitted: the recovery redelivers it
            rep.window_records[w] += n;
            if (auto cs = wsum.find(w); cs != wsum.end())
                rep.window_checksums[w] += cs->second;
            committed += n;
        }
        rep.output_records += commit_before == kAllWindows
                                  ? t.outputRecords()
                                  : committed;

        const SlaTracker &sla = t.sla();
        rep.windows += sla.windows();
        rep.sla_violations += sla.violations();
        for (double v : sla.latencies().samples())
            rep.latency_samples.push_back(v);
        rep.max_latency_s = std::max(rep.max_latency_s, sla.maxLatency());

        const auto &ss = sh.eng->exec().streamStats(id);
        const SegmentBase &base = seg_base_[id];
        rep.tasks += ss.completed - base.tasks;
        rep.cpu_ns += ss.cpu_ns - base.cpu_ns;
        rep.hbm_bytes += ss.hbm_bytes - base.hbm_bytes;
        rep.dram_bytes += ss.dram_bytes - base.dram_bytes;
        rep.served_slots += sh.sched.served(id) - base.served_slots;

        rep.hbm_peak_bytes =
            std::max(rep.hbm_peak_bytes,
                     sh.eng->memory().streamHbmHighWater(id));
        rep.demoted_kpas +=
            sh.eng->director().demotedKpas(id) - base.demoted_kpas;
        rep.demoted_bytes +=
            sh.eng->director().demotedBytes(id) - base.demoted_bytes;

        // Fault-tolerance accounting for this segment.
        rep.shed_tasks += ss.shed - base.shed_tasks;
        rep.records_shed += t.recordsShed();
        rep.suppressed_records += t.egress().suppressedRecords();
        rep.downtime_ns += sla.downtimeNs();

        // Breach attribution: fold the segment tracker's decomposed
        // latency into the report (a migrated / recovered session
        // sums its segments; components still sum to total latency).
        for (uint32_t c = 0; c < kStallCauses; ++c) {
            const auto cause = static_cast<StallCause>(c);
            rep.attribution_ns[c] += sla.componentNs(cause);
            rep.breach_attribution_ns[c] += sla.breachNs(cause);
        }

        if (obs::Telemetry *tp = cfg_.telemetry) {
            obs::MetricsRegistry &m = tp->metrics;
            const std::string p = obs::MetricsRegistry::path(
                {"shard", std::to_string(s), "tenant",
                 std::to_string(id)});
            m.counter(p + "/records").add(t.recordsIngested());
            m.counter(p + "/tasks").add(ss.completed - base.tasks);
            m.counter(p + "/windows").add(sla.windows());
            m.counter(p + "/sla_violations").add(sla.violations());
            m.counter(p + "/ingest_wait_ns").add(t.ingestWaitNs());
            m.counter(p + "/queue_wait_ns")
                .add(ss.queue_wait_ns - base.queue_wait_ns);
            m.counter(p + "/memory_stall_ns")
                .add(sh.eng->director().sweepStallNs(id)
                     - base.sweep_stall_ns);
            obs::Histogram &h = m.histogram(
                p + "/latency_ms", {10, 50, 100, 500, 1000, 5000});
            for (double v : sla.latencies().samples())
                h.observe(v * 1e3);
        }
    }

    /** Tear a session's shard-local state down after a drain. */
    void
    teardown(uint32_t s, runtime::StreamId id)
    {
        EngineShard &sh = *shards_[s];
        sh.tenants.erase(id);
        sh.eng->setStreamBudget(id, 0);
        if (cfg_.sla_demotion && sh.demoted_class[id]) {
            sh.eng->setStreamPlacementClass(id,
                                            mem::PlacementClass::kNormal);
            sh.demoted_class[id] = false;
        }
        // A teardown is a step change in usage: restart the pressure
        // window so the departed session's peak does not keep blocking
        // admission until the next tick.
        if (cfg_.admission.mode == AdmissionMode::kLivePressure) {
            sh.eng->memory().markHighWater(pressureTier());
            registry_.noteGaugeMarked(s);
        }
    }

    void
    finish(uint32_t s, runtime::StreamId id, Tenant &t)
    {
        const SimTime now = shards_[s]->eng->machine().now();
        TenantReport &rep = reports_[id];

        // A session marked for migration drains early (its stream was
        // truncated); if records remain, restart them on the target.
        const uint64_t position =
            t.migratable() ? t.sourceA().streamPosition() : 0;
        uint32_t target = 0;
        bool migrate = false;
        if (auto mig = migrating_.find(id); mig != migrating_.end()) {
            target = mig->second;
            migrating_.erase(mig);
            // Logical-time sessions chain by absolute stream position
            // (offsets compose across segments and crashes); legacy
            // sessions keep the cumulative-ingest arithmetic.
            migrate = rep.spec.logical_time
                          ? position < rep.spec.total_records
                          : rep.records + t.recordsIngested()
                                < rep.spec.total_records;
        }
        if (migrate && shard_dead_[target]) {
            // The target died while this session drained: re-route to
            // a live shard, or finish early when none has headroom.
            const uint32_t alt = pickRecoveryShard();
            if (alt != kNoShard && registry_.migrate(id, alt))
                target = alt;
            else
                migrate = false;
        }

        accumulate(s, id, t);
        teardown(s, id); // destroys t

        if (migrate) {
            ++rep.migrations;
            TenantSpec cont = rep.spec;
            if (rep.spec.logical_time) {
                cont.start_record = position;
                cont.total_records = rep.spec.total_records - position;
            } else {
                cont.total_records = rep.spec.total_records - rep.records;
            }
            start(target, cont, now);
            return;
        }

        ckpts_.erase(id);

        rep.admission = Admission::kAdmitted;
        rep.finished_at = now;
        const double sec = simToSeconds(rep.finished_at - rep.started_at);
        rep.throughput_mrps =
            sec > 0 ? static_cast<double>(rep.records) / sec / 1e6 : 0.0;
        // Percentiles over the pooled per-window samples: for the
        // single-segment session this is the SLA tracker's own
        // SampleSet math on the same values, bit for bit.
        SampleSet pooled;
        for (double v : rep.latency_samples)
            pooled.add(v);
        rep.p50_s = pooled.percentile(50);
        rep.p95_s = pooled.percentile(95);
        rep.p99_s = pooled.percentile(99);

        // Name what mostly made violating windows late, over every
        // segment of the session; ties break toward the earlier
        // StallCause and a violation-free session reports compute.
        uint32_t dom = static_cast<uint32_t>(StallCause::kCompute);
        double dom_v = 0.0;
        for (uint32_t c = 0; c < kStallCauses; ++c) {
            if (rep.breach_attribution_ns[c] > dom_v) {
                dom_v = rep.breach_attribution_ns[c];
                dom = c;
            }
        }
        rep.dominant_cause = static_cast<StallCause>(dom);

        // Hand the reservation back — which may admit waiting
        // sessions right now, at this virtual time, on any shard.
        for (const TenantSpec &next : registry_.release(id))
            start(registry_.shardOf(next.id), next, now);
    }

    /**
     * Shard @p s's pressure director could not demote its way out of
     * a high-water breach: drain the shard's heaviest movable session
     * (largest charged HBM footprint, ties to the lowest id) and mark
     * it for restart on the emptiest shard. Fired from the breaching
     * shard's monitor tick — the globally-earliest event, so registry
     * re-accounting and stream truncation are safe here; the actual
     * handoff happens when the truncated stream drains.
     */
    void
    onShardBreach(uint32_t s)
    {
        if (shard_dead_[s])
            return; // a dead shard's pressure no longer matters
        EngineShard &sh = *shards_[s];
        runtime::StreamId victim = 0;
        uint64_t victim_used = 0;
        for (const auto &[id, t] : sh.tenants) {
            if (!t->migratable() || migrating_.count(id) != 0)
                continue;
            const uint64_t used =
                sh.eng->memory().streamUsed(id, mem::Tier::kHbm);
            if (used > victim_used) {
                victim_used = used;
                victim = id;
            }
        }
        if (victim == 0)
            return;

        uint32_t target = s;
        double target_frac = 2.0;
        for (uint32_t u = 0; u < cfg_.shards; ++u) {
            if (u == s || shard_dead_[u])
                continue;
            const double f = shards_[u]
                                 ->eng->memory()
                                 .gauge(mem::Tier::kHbm)
                                 .usedFraction();
            if (f < target_frac) {
                target_frac = f;
                target = u;
            }
        }
        if (target == s)
            return;
        // Move the declared reservation now (static-mode headroom is
        // checked here); the running state drains through the normal
        // output path — drain-and-restart migrates identity, not
        // resident bytes.
        if (!registry_.migrate(victim, target))
            return;
        migrating_[victim] = target;
        sh.tenants[victim]->truncate();
        if (obs::Telemetry *tp = cfg_.telemetry) {
            tp->trace.instant(sh.eng->machine().now(), s, victim,
                              "migration", "migrate_out",
                              {{"target", target},
                               {"hbm_used", victim_used}});
        }
    }

    /**
     * Idle-steal hook body for thief shard @p s: pop the oldest
     * non-urgent task off the most backlogged other shard (if its
     * backlog clears the threshold) and run it here, costs charged
     * home. @return true when a task was stolen (the executor
     * re-invokes until slots fill or this declines).
     */
    bool
    stealInto(uint32_t s)
    {
        if (shard_dead_[s])
            return false; // dead shards lend no cycles...
        uint32_t victim = s;
        uint64_t victim_backlog = 0;
        for (uint32_t u = 0; u < cfg_.shards; ++u) {
            if (u == s || shard_dead_[u])
                continue; // ...and their zombie work is not stolen
            const uint64_t q = shards_[u]->eng->exec().queuedTasks();
            if (q >= cfg_.steal_min_backlog && q > victim_backlog) {
                victim_backlog = q;
                victim = u;
            }
        }
        if (victim == s)
            return false;
        runtime::Executor &vex = shards_[victim]->eng->exec();
        runtime::Executor::StolenTask task;
        if (!vex.popStealable(task))
            return false;
        shards_[s]->eng->exec().runStolen(std::move(task), vex);
        return true;
    }

    // ---------------------------------------------------------------
    // Fault tolerance: injection, crash, failover, checkpointing.
    // ---------------------------------------------------------------

    static constexpr uint32_t kNoShard = ~0u;

    /**
     * Where the server records: the installed telemetry plane's sink
     * when there is one, else a private sink — the recovery trace and
     * the injector's fired() fingerprint work identically either way.
     */
    obs::TraceSink &
    recoverySink()
    {
        return cfg_.telemetry != nullptr ? cfg_.telemetry->trace
                                         : own_sink_;
    }

    const obs::TraceSink &
    recoverySink() const
    {
        return cfg_.telemetry != nullptr ? cfg_.telemetry->trace
                                         : own_sink_;
    }

    /** Append one deterministic line to the recovery trace. */
    void
    trace(const char *fmt, ...)
    {
        char buf[192];
        va_list ap;
        va_start(ap, fmt);
        vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        recoverySink().instant(shards_[0]->eng->machine().now(), 0, 0,
                               "recovery", buf);
    }

    /** The session @p id currently runs as, wherever it is. */
    Tenant *
    findTenant(runtime::StreamId id)
    {
        for (auto &sh : shards_) {
            auto it = sh->tenants.find(id);
            if (it != sh->tenants.end())
                return it->second.get();
        }
        return nullptr;
    }

    /**
     * Dispatch one injected fault. Fires on the control-plane machine
     * inside the globally-earliest event, so syncing any shard forward
     * before acting on it is legal.
     */
    void
    onFault(const sim::FaultEvent &e)
    {
        const SimTime now = shards_[0]->eng->machine().now();
        trace("t=%llu fault %s shard=%u tenant=%u arg=%llu arg2=%llu",
              (unsigned long long)now, sim::faultKindName(e.kind),
              e.shard, e.tenant, (unsigned long long)e.arg,
              (unsigned long long)e.arg2);
        switch (e.kind) {
          case sim::FaultKind::kShardCrash:
            crashShard(e.shard);
            break;
          case sim::FaultKind::kAllocFail:
            if (e.shard < cfg_.shards && !shard_dead_[e.shard]) {
                shards_[e.shard]->eng->memory().failNextAllocs(
                    static_cast<uint32_t>(e.arg));
            }
            break;
          case sim::FaultKind::kIngestStall:
            if (Tenant *t = findTenant(e.tenant))
                t->sourceA().stallUntil(now
                                        + static_cast<SimTime>(e.arg));
            break;
          case sim::FaultKind::kIngestDrop:
            if (Tenant *t = findTenant(e.tenant))
                t->sourceA().dropBundles(e.arg);
            break;
          case sim::FaultKind::kSlowShard:
            if (e.shard < cfg_.shards && !shard_dead_[e.shard]) {
                EngineShard &sh = *shards_[e.shard];
                sh.eng->machine().syncTo(now);
                sh.eng->exec().setCoreLimit(
                    static_cast<unsigned>(e.arg));
                // Degradation is transient: restore the full core
                // count after the fault's duration.
                sh.eng->machine().after(
                    static_cast<SimTime>(e.arg2),
                    [this, s = e.shard] {
                        shards_[s]->eng->exec().setCoreLimit(0);
                    },
                    /*daemon=*/true);
            }
            break;
        }
    }

    /**
     * Kill shard @p s: halt every resident session's sources, settle
     * their metrics at the crash instant, and queue them for recovery
     * on the survivors. The dead engine's event queue is NOT cleared —
     * in-flight (zombie) work drains naturally, since bandwidth-flow
     * callbacks keep task state alive — but its output is no longer
     * observed, and the shard takes no new sessions, lends no cycles
     * and is skipped by placement forever after. Shard 0 hosts the
     * control plane (modelled as replicated) and never crashes.
     */
    void
    crashShard(uint32_t s)
    {
        sbhbm_assert(s != 0, "the control-plane shard cannot crash");
        if (s >= cfg_.shards || shard_dead_[s])
            return;
        EngineShard &sh = *shards_[s];
        const SimTime now = shards_[0]->eng->machine().now();
        sh.eng->machine().syncTo(now);
        shard_dead_[s] = true;
        registry_.setShardDown(s);

        std::vector<runtime::StreamId> ids;
        for (auto &[id, t] : sh.tenants)
            ids.push_back(id);
        trace("t=%llu crash shard=%u sessions=%zu",
              (unsigned long long)now, s, ids.size());
        for (runtime::StreamId id : ids) {
            std::unique_ptr<Tenant> dead = std::move(sh.tenants[id]);
            sh.tenants.erase(id);
            Tenant &t = *dead;
            t.halt();
            migrating_.erase(id); // recovery supersedes any handoff

            TenantReport &rep = reports_[id];
            ++rep.crashes;
            const uint64_t position =
                t.migratable() ? t.sourceA().streamPosition() : 0;
            const bool recoverable =
                t.migratable() && rep.spec.logical_time;
            const TenantCheckpoint *ck =
                recoverable ? ckpts_.find(id) : nullptr;
            const bool use_ck = ck != nullptr && ck->restorable
                                && ck->position <= position;
            // The transactional-sink cut: output past the last
            // checkpoint (or all of it, for scratch-restart) is
            // uncommitted — rolled back from the report and
            // redelivered by the recovery. Unrecoverable sessions
            // keep everything they managed to deliver.
            const columnar::WindowId commit =
                !recoverable ? kAllWindows
                             : (use_ck ? ck->next_close : 0);
            accumulate(s, id, t, commit);
            // The Tenant object stays alive until Server destruction:
            // zombie tasks on the dead shard still reference its
            // operators and bundles.
            graveyard_.push_back(std::move(dead));
            if (!recoverable) {
                // Two-stream or physical-time sessions cannot replay
                // bit-identically: lost. Release the reservation so
                // waiters admit.
                rep.lost = true;
                rep.finished_at = now;
                trace("t=%llu lost tenant=%u (unrecoverable)",
                      (unsigned long long)now, id);
                for (const TenantSpec &next : registry_.release(id))
                    start(registry_.shardOf(next.id), next, now);
                continue;
            }

            PendingRecovery pr;
            pr.id = id;
            pr.crashed_at = now;
            pr.dedup_before = commit;
            pr.cont = rep.spec;
            pr.use_checkpoint = use_ck;
            if (pr.use_checkpoint) {
                pr.cont.start_record = ck->position;
                pr.cont.total_records =
                    rep.spec.total_records - ck->position;
            } else {
                // Scratch-restart: full replay, output deduplicated.
                pr.cont.start_record = 0;
                pr.cont.total_records = rep.spec.total_records;
            }
            pr.replay = position - pr.cont.start_record;
            pending_recovery_.push_back(std::move(pr));
        }
        scheduleRecovery();
    }

    /** Least-loaded live shard (registry load), or kNoShard. */
    uint32_t
    pickRecoveryShard() const
    {
        uint32_t best = kNoShard;
        double best_load = 0;
        for (uint32_t s = 0; s < cfg_.shards; ++s) {
            if (shard_dead_[s])
                continue;
            const double l = registry_.shardLoad(s);
            if (best == kNoShard || l < best_load) {
                best = s;
                best_load = l;
            }
        }
        return best;
    }

    void
    scheduleRecovery()
    {
        if (pending_recovery_.empty() || recovery_scheduled_)
            return;
        recovery_scheduled_ = true;
        // Non-daemon: a pending failover is live work — the fleet
        // must not drain out from under it.
        shards_[0]->eng->machine().after(
            cfg_.fault.recovery_delay, [this] { recoveryTick(); });
    }

    /**
     * Try to place every pending recovery on a live shard (moving the
     * session's reservation with it). Placements that do not fit yet
     * retry with the recovery delay as backoff; after
     * max_recovery_attempts the session is declared lost so the run
     * always terminates.
     */
    void
    recoveryTick()
    {
        recovery_scheduled_ = false;
        const SimTime now = shards_[0]->eng->machine().now();
        std::vector<PendingRecovery> still;
        for (PendingRecovery &pr : pending_recovery_) {
            const uint32_t target = pickRecoveryShard();
            if (target == kNoShard
                || !registry_.migrate(pr.id, target)) {
                if (++pr.attempts >= cfg_.fault.max_recovery_attempts) {
                    TenantReport &rep = reports_[pr.id];
                    rep.lost = true;
                    rep.finished_at = now;
                    trace("t=%llu lost tenant=%u (no placement after"
                          " %u attempts)",
                          (unsigned long long)now, pr.id, pr.attempts);
                    for (const TenantSpec &next :
                         registry_.release(pr.id))
                        start(registry_.shardOf(next.id), next, now);
                } else {
                    still.push_back(std::move(pr));
                }
                continue;
            }
            recover(pr, target, now);
        }
        pending_recovery_ = std::move(still);
        scheduleRecovery();
    }

    /** Restart crashed session @p pr on live shard @p target. */
    void
    recover(const PendingRecovery &pr, uint32_t target, SimTime now)
    {
        TenantReport &rep = reports_[pr.id];
        const TenantCheckpoint *ck =
            pr.use_checkpoint ? ckpts_.find(pr.id) : nullptr;
        EngineShard &sh = *shards_[target];
        sh.eng->machine().syncTo(now);
        snapSegmentBase(target, pr.id);

        auto tenant = std::make_unique<Tenant>(
            *sh.eng, pr.cont, cfg_.window_ns, seedFor(rep.spec));
        Tenant &t = *tenant;
        if (ck != nullptr)
            t.restoreFrom(*ck);
        // Windows committed before the crash are never redelivered:
        // any replayed output for them is deduplicated at the sink.
        t.pipe().resumeFrom(pr.dedup_before);
        t.egress().setDedupBefore(pr.dedup_before);
        sh.tenants[pr.id] = std::move(tenant);
        if (cfg_.fair_share)
            sh.sched.setWeight(pr.id, rep.spec.weight);
        t.start();
        // Prime BEFORE noting the outage so the downtime lands in the
        // fresh tracker's recovery delta at the next observe.
        t.sla().primeStalls(t.stallSnapshot());
        t.sla().noteOutage(now - pr.crashed_at);
        ++rep.recoveries;
        rep.records_replayed += pr.replay;
        trace("t=%llu recover tenant=%u shard=%u mode=%s pos=%llu"
              " dedup<%llu replay=%llu",
              (unsigned long long)now, pr.id, target,
              ck != nullptr ? "checkpoint" : "scratch",
              (unsigned long long)pr.cont.start_record,
              (unsigned long long)pr.dedup_before,
              (unsigned long long)pr.replay);
        sh.eng->machine().after(
            kNsPerMs, [this, target, id = pr.id] { poll(target, id); });
        if (cfg_.fault.checkpoint_period > 0 && t.migratable()
            && pr.cont.logical_time)
            scheduleCheckpoint(target, pr.id);
    }

    void
    scheduleCheckpoint(uint32_t s, runtime::StreamId id)
    {
        // Daemon: the periodic cadence never keeps a drained fleet
        // alive; a checkpoint in progress (quiesceWait) does.
        shards_[s]->eng->machine().after(
            cfg_.fault.checkpoint_period,
            [this, s, id] { checkpointTick(s, id); },
            /*daemon=*/true);
    }

    /** Begin one checkpoint: pause the source, then wait for full
     *  quiescence so the cut is exact. */
    void
    checkpointTick(uint32_t s, runtime::StreamId id)
    {
        if (shard_dead_[s])
            return;
        EngineShard &sh = *shards_[s];
        auto it = sh.tenants.find(id);
        if (it == sh.tenants.end())
            return; // drained, crashed or migrated away
        it->second->sourceA().pause();
        quiesceWait(s, id, sh.eng->machine().now());
    }

    void
    quiesceWait(uint32_t s, runtime::StreamId id, SimTime began)
    {
        if (shard_dead_[s])
            return;
        EngineShard &sh = *shards_[s];
        auto it = sh.tenants.find(id);
        if (it == sh.tenants.end())
            return; // crashed mid-quiesce (halt() clears the pause)
        Tenant &t = *it->second;
        if (!t.quiesced()) {
            // Non-daemon: an in-progress cut holds the fleet until it
            // lands and the source resumes.
            sh.eng->machine().after(
                cfg_.fault.quiesce_poll,
                [this, s, id, began] { quiesceWait(s, id, began); });
            return;
        }
        sim::CostLog log;
        TenantCheckpoint c = t.capture(
            cfg_.fault.incremental ? ckpts_.find(id) : nullptr, log);
        TenantReport &rep = reports_[id];
        ++rep.checkpoints;
        rep.checkpoint_copied_bytes += c.copiedBytes();
        rep.checkpoint_reused_bytes += c.reusedBytes();
        if (obs::Telemetry *tp = cfg_.telemetry) {
            // The span covers pause -> quiesce -> capture; the copy
            // charge runs on after it DMA-style.
            tp->trace.span(began, sh.eng->machine().now() - began, s,
                           id, "checkpoint", "checkpoint",
                           {{"copied_bytes", c.copiedBytes()},
                            {"reused_bytes", c.reusedBytes()},
                            {"position", c.position}});
        }
        // Copy traffic is real work on the shard: charge it through
        // the machine DMA-style, like the director's demotion sweeps.
        sh.eng->machine().execute(std::move(log), [] {});
        ckpts_.put(std::move(c));
        t.sourceA().resume();
        scheduleCheckpoint(s, id);
    }

    ServeConfig cfg_;
    std::vector<std::unique_ptr<EngineShard>> shards_;
    TenantRegistry registry_;
    std::vector<TenantSpec> pending_;
    std::map<runtime::StreamId, TenantReport> reports_;
    std::map<runtime::StreamId, SegmentBase> seg_base_;
    std::map<runtime::StreamId, uint32_t> migrating_;
    std::vector<TenantReport> report_list_;
    bool ran_ = false;

    // Fault tolerance. graveyard_ is declared after shards_ so dead
    // Tenants (whose operators zombie tasks referenced) are destroyed
    // while their engines are still alive.
    std::unique_ptr<sim::FaultInjector> injector_;
    std::vector<bool> shard_dead_;
    std::vector<std::unique_ptr<Tenant>> graveyard_;
    std::vector<PendingRecovery> pending_recovery_;
    bool recovery_scheduled_ = false;
    CheckpointStore ckpts_;
    obs::TraceSink own_sink_;
    mutable std::vector<std::string> trace_view_;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_SERVER_H
