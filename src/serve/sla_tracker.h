/**
 * @file
 * Per-tenant SLA accounting: watermark latency of every externalized
 * window (emission time minus window end — the paper's output delay,
 * tracked per tenant instead of per engine), percentile queries, and
 * the violation count against the tenant's delay target.
 *
 * The tracker pulls from the tenant's Pipeline: every externalization
 * the pipeline recorded and the tracker has not yet seen is folded
 * into the sample set, so observe() may be called incrementally while
 * the session runs and once more at drain with identical results.
 */

#ifndef SBHBM_SERVE_SLA_TRACKER_H
#define SBHBM_SERVE_SLA_TRACKER_H

#include <cstdint>

#include "common/stats.h"
#include "common/units.h"
#include "pipeline/pipeline.h"

namespace sbhbm::serve {

/** Watermark-latency percentiles + SLA violations for one tenant. */
class SlaTracker
{
  public:
    /** @param target_delay SLA bound on per-window output latency. */
    explicit SlaTracker(SimTime target_delay)
        : target_delay_(target_delay)
    {
    }

    /**
     * Ignore windows that ended at or before @p t: a session arriving
     * mid-stream flushes the empty windows preceding its start with
     * its first watermark, and those carry no user data to be late.
     */
    void setIgnoreBefore(SimTime t) { ignore_before_ = t; }

    /** Fold in externalizations @p pipe recorded since the last call. */
    void
    observe(const pipeline::Pipeline &pipe)
    {
        const auto &exts = pipe.externalizations();
        const columnar::WindowSpec &spec = pipe.windows();
        for (; cursor_ < exts.size(); ++cursor_) {
            const auto &e = exts[cursor_];
            const SimTime end = spec.end(e.window);
            if (end <= ignore_before_)
                continue;
            const SimTime lat = e.at > end ? e.at - end : 0;
            latencies_.add(simToSeconds(lat));
            if (lat > target_delay_) {
                ++violations_;
                if (!breached_) {
                    breached_ = true;
                    ++breaches_;
                }
                ok_streak_ = 0;
            } else if (breached_) {
                if (++ok_streak_ >= recover_after_) {
                    breached_ = false;
                    ok_streak_ = 0;
                }
            }
        }
    }

    SimTime targetDelay() const { return target_delay_; }

    /** Externalized windows observed so far. */
    uint64_t windows() const { return latencies_.size(); }

    /** Windows whose latency exceeded the target. */
    uint64_t violations() const { return violations_; }

    // ---------------------------------------------------------------
    // Breach hysteresis (drives serving-layer placement demotion).
    // A violation puts the tenant in breach; it recovers only after
    // recover_after consecutive in-target windows — so one bad
    // window demotes decisively while one good window does not
    // flap the placement class right back.
    // ---------------------------------------------------------------

    /** Consecutive in-target windows needed to clear a breach. */
    void
    setRecoveryWindows(uint32_t n)
    {
        recover_after_ = n > 0 ? n : 1;
    }

    /** Currently violating the SLA (with recovery hysteresis). */
    bool breached() const { return breached_; }

    /** Times the tenant *entered* breach (demotion episodes). */
    uint64_t breaches() const { return breaches_; }

    // ---------------------------------------------------------------
    // Fault-tolerance accounting (filled by the recovery layer).
    // ---------------------------------------------------------------

    /** The session's shard died and it was down for @p downtime. */
    void
    noteOutage(SimTime downtime)
    {
        ++outages_;
        downtime_ns_ += downtime;
    }

    /** Crash→restart episodes this session went through. */
    uint64_t outages() const { return outages_; }

    /** Total virtual time the session spent dead, ns. */
    SimTime downtimeNs() const { return downtime_ns_; }

    /** Watermark latency percentile, seconds (0 when no windows). */
    double p50() const { return latencies_.percentile(50); }
    double p95() const { return latencies_.percentile(95); }
    double p99() const { return latencies_.percentile(99); }
    double maxLatency() const { return latencies_.max(); }
    double meanLatency() const { return latencies_.mean(); }

    const SampleSet &latencies() const { return latencies_; }

  private:
    SimTime target_delay_;
    SimTime ignore_before_ = 0;
    SampleSet latencies_;
    uint64_t violations_ = 0;
    size_t cursor_ = 0;
    bool breached_ = false;
    uint64_t breaches_ = 0;
    uint64_t outages_ = 0;
    SimTime downtime_ns_ = 0;
    uint32_t ok_streak_ = 0;
    uint32_t recover_after_ = 4;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_SLA_TRACKER_H
