/**
 * @file
 * Per-tenant SLA accounting: watermark latency of every externalized
 * window (emission time minus window end — the paper's output delay,
 * tracked per tenant instead of per engine), percentile queries, and
 * the violation count against the tenant's delay target.
 *
 * The tracker pulls from the tenant's Pipeline: every externalization
 * the pipeline recorded and the tracker has not yet seen is folded
 * into the sample set, so observe() may be called incrementally while
 * the session runs and once more at drain with identical results.
 *
 * Breach attribution. When the caller also supplies the tenant's
 * cumulative stall counters (ingest wait, executor queue wait, sweep
 * memory stall), each observe() batch decomposes its latency into
 * five causes — recovery replay, ingest wait, memory stall, scheduler
 * queue, and compute (the residual) — so a breach names what actually
 * made the windows late instead of just that they were. Components
 * always sum exactly to the measured latency: the stall deltas are
 * allocated in fixed priority order, each clamped to the latency
 * still unexplained, and compute absorbs the remainder.
 */

#ifndef SBHBM_SERVE_SLA_TRACKER_H
#define SBHBM_SERVE_SLA_TRACKER_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/units.h"
#include "pipeline/pipeline.h"

namespace sbhbm::serve {

/** Why a window was late (the attribution components). */
enum class StallCause : uint32_t
{
    kRecovery = 0, //!< crash downtime + replay of lost progress
    kIngest,       //!< source stalled: injected, back-pressure, pause
    kMemory,       //!< pressure/emergency sweep copy time
    kSched,        //!< ready tasks waiting for an executor slot
    kCompute,      //!< the residual: actually doing the work
};

constexpr uint32_t kStallCauses = 5;

/** Stable JSON/report name of @p c. */
inline const char *
stallCauseName(StallCause c)
{
    switch (c) {
    case StallCause::kRecovery: return "recovery_replay";
    case StallCause::kIngest: return "ingest_wait";
    case StallCause::kMemory: return "memory_stall";
    case StallCause::kSched: return "sched_queue";
    case StallCause::kCompute: return "compute";
    }
    return "unknown";
}

/**
 * Cumulative per-tenant stall counters, sampled by the serving layer
 * right before observe(). All monotone within one session segment;
 * primeStalls() re-bases after restart (fresh Tenant, fresh engine
 * counters on the recovery shard).
 */
struct StallSnapshot
{
    uint64_t ingest_wait_ns = 0;
    uint64_t queue_wait_ns = 0;
    uint64_t memory_stall_ns = 0;
};

/** Watermark-latency percentiles + SLA violations for one tenant. */
class SlaTracker
{
  public:
    /** @param target_delay SLA bound on per-window output latency. */
    explicit SlaTracker(SimTime target_delay)
        : target_delay_(target_delay)
    {
    }

    /**
     * Ignore windows that ended at or before @p t: a session arriving
     * mid-stream flushes the empty windows preceding its start with
     * its first watermark, and those carry no user data to be late.
     */
    void setIgnoreBefore(SimTime t) { ignore_before_ = t; }

    /** Fold in externalizations @p pipe recorded since the last call. */
    void
    observe(const pipeline::Pipeline &pipe)
    {
        // No new stall information: deltas are zero and the whole
        // batch stays attributed to compute — the legacy behaviour.
        observe(pipe, prev_);
    }

    /**
     * Fold in new externalizations AND attribute their latency. @p s
     * carries the tenant's cumulative stall counters at observation
     * time; the deltas since the previous call are charged against
     * the batch's total latency in fixed order (recovery, ingest,
     * memory, sched — each clamped to what is still unexplained),
     * with compute taking the residual. Per-window attribution
     * follows each window's share of the batch latency, so the
     * breach-only totals name the dominant cause of late windows.
     */
    void
    observe(const pipeline::Pipeline &pipe, const StallSnapshot &s)
    {
        const auto &exts = pipe.externalizations();
        const columnar::WindowSpec &spec = pipe.windows();
        std::vector<SimTime> lats;
        std::vector<bool> late;
        for (; cursor_ < exts.size(); ++cursor_) {
            const auto &e = exts[cursor_];
            const SimTime end = spec.end(e.window);
            if (end <= ignore_before_)
                continue;
            const SimTime lat = e.at > end ? e.at - end : 0;
            latencies_.add(simToSeconds(lat));
            lats.push_back(lat);
            late.push_back(lat > target_delay_);
            if (lat > target_delay_) {
                ++violations_;
                if (!breached_) {
                    breached_ = true;
                    ++breaches_;
                }
                ok_streak_ = 0;
            } else if (breached_) {
                if (++ok_streak_ >= recover_after_) {
                    breached_ = false;
                    ok_streak_ = 0;
                }
            }
        }
        attribute(lats, late, s);
    }

    /**
     * Re-base the stall counters without observing: called when the
     * session (re)starts on a shard whose cumulative executor /
     * director counters already carry history from other segments or
     * tenants' past — only growth after this point is this segment's.
     */
    void
    primeStalls(const StallSnapshot &s)
    {
        prev_ = s;
        recovery_seen_ns_ = downtime_ns_;
    }

    SimTime targetDelay() const { return target_delay_; }

    /** Externalized windows observed so far. */
    uint64_t windows() const { return latencies_.size(); }

    /** Windows whose latency exceeded the target. */
    uint64_t violations() const { return violations_; }

    // ---------------------------------------------------------------
    // Breach hysteresis (drives serving-layer placement demotion).
    // A violation puts the tenant in breach; it recovers only after
    // recover_after consecutive in-target windows — so one bad
    // window demotes decisively while one good window does not
    // flap the placement class right back.
    // ---------------------------------------------------------------

    /** Consecutive in-target windows needed to clear a breach. */
    void
    setRecoveryWindows(uint32_t n)
    {
        recover_after_ = n > 0 ? n : 1;
    }

    /** Currently violating the SLA (with recovery hysteresis). */
    bool breached() const { return breached_; }

    /** Times the tenant *entered* breach (demotion episodes). */
    uint64_t breaches() const { return breaches_; }

    // ---------------------------------------------------------------
    // Fault-tolerance accounting (filled by the recovery layer).
    // ---------------------------------------------------------------

    /** The session's shard died and it was down for @p downtime. */
    void
    noteOutage(SimTime downtime)
    {
        ++outages_;
        downtime_ns_ += downtime;
    }

    /** Crash→restart episodes this session went through. */
    uint64_t outages() const { return outages_; }

    /** Total virtual time the session spent dead, ns. */
    SimTime downtimeNs() const { return downtime_ns_; }

    /** Watermark latency percentile, seconds (0 when no windows). */
    double p50() const { return latencies_.percentile(50); }
    double p95() const { return latencies_.percentile(95); }
    double p99() const { return latencies_.percentile(99); }
    double maxLatency() const { return latencies_.max(); }
    double meanLatency() const { return latencies_.mean(); }

    const SampleSet &latencies() const { return latencies_; }

    // ---------------------------------------------------------------
    // Attribution results.
    // ---------------------------------------------------------------

    /** Total latency attributed to @p c over all windows, ns. */
    double
    componentNs(StallCause c) const
    {
        return comp_ns_[static_cast<uint32_t>(c)];
    }

    /** Latency attributed to @p c over SLA-violating windows, ns. */
    double
    breachNs(StallCause c) const
    {
        return breach_ns_[static_cast<uint32_t>(c)];
    }

    /**
     * The cause explaining the most violating-window latency; ties
     * break toward the earlier enum value (recovery before ingest
     * before memory before sched before compute) and a tenant with
     * no violations reports compute.
     */
    StallCause
    dominantCause() const
    {
        uint32_t best = static_cast<uint32_t>(StallCause::kCompute);
        double best_v = 0.0;
        for (uint32_t c = 0; c < kStallCauses; ++c) {
            if (breach_ns_[c] > best_v) {
                best_v = breach_ns_[c];
                best = c;
            }
        }
        return static_cast<StallCause>(best);
    }

  private:
    /**
     * Decompose one observe() batch. The external counters are
     * cumulative, so deltas vs the previous snapshot are this batch's
     * new stall; recovery uses the tracker's own downtime counter the
     * same way. Each component is clamped to the latency still
     * unexplained (a stall overlapping several windows cannot explain
     * more lateness than there was), compute absorbs the rest, and
     * the batch totals are spread across its windows by latency
     * share.
     */
    void
    attribute(const std::vector<SimTime> &lats,
              const std::vector<bool> &late, const StallSnapshot &s)
    {
        const auto delta = [](uint64_t now, uint64_t prev) {
            return now > prev ? now - prev : 0;
        };
        // Deltas accumulate into pending_: a stall that completes
        // between two window externalizations (an empty batch) must
        // still attribute to the *next* batch, not vanish.
        pending_[static_cast<uint32_t>(StallCause::kRecovery)] +=
            delta(downtime_ns_, recovery_seen_ns_);
        pending_[static_cast<uint32_t>(StallCause::kIngest)] +=
            delta(s.ingest_wait_ns, prev_.ingest_wait_ns);
        pending_[static_cast<uint32_t>(StallCause::kMemory)] +=
            delta(s.memory_stall_ns, prev_.memory_stall_ns);
        pending_[static_cast<uint32_t>(StallCause::kSched)] +=
            delta(s.queue_wait_ns, prev_.queue_wait_ns);
        prev_ = s;
        recovery_seen_ns_ = downtime_ns_;
        if (lats.empty())
            return;

        double total = 0.0;
        for (SimTime l : lats)
            total += static_cast<double>(l);

        double batch[kStallCauses] = {};
        double remaining = total;
        const StallCause order[] = {
            StallCause::kRecovery,
            StallCause::kIngest,
            StallCause::kMemory,
            StallCause::kSched,
        };
        for (StallCause cause : order) {
            const uint32_t c = static_cast<uint32_t>(cause);
            const double take =
                std::min(remaining, static_cast<double>(pending_[c]));
            batch[c] = take;
            remaining -= take;
            pending_[c] -= static_cast<uint64_t>(take);
        }
        batch[static_cast<uint32_t>(StallCause::kCompute)] = remaining;

        for (uint32_t c = 0; c < kStallCauses; ++c) {
            comp_ns_[c] += batch[c];
            if (total <= 0.0)
                continue;
            for (size_t w = 0; w < lats.size(); ++w) {
                if (late[w]) {
                    breach_ns_[c] += batch[c]
                                     * static_cast<double>(lats[w])
                                     / total;
                }
            }
        }
    }

    SimTime target_delay_;
    SimTime ignore_before_ = 0;
    SampleSet latencies_;
    uint64_t violations_ = 0;
    size_t cursor_ = 0;
    bool breached_ = false;
    uint64_t breaches_ = 0;
    uint64_t outages_ = 0;
    SimTime downtime_ns_ = 0;
    uint32_t ok_streak_ = 0;
    uint32_t recover_after_ = 4;
    StallSnapshot prev_;
    uint64_t recovery_seen_ns_ = 0;
    uint64_t pending_[kStallCauses] = {};
    double comp_ns_[kStallCauses] = {};
    double breach_ns_[kStallCauses] = {};
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_SLA_TRACKER_H
