/**
 * @file
 * A tenant: one user's standing query session on the shared engine.
 *
 * The spec is the admission request — which query, how much traffic,
 * what HBM reservation, what fair-share weight. A Tenant object is an
 * *admitted* session: its own Pipeline (on a dedicated executor
 * stream), its own ingest::Source instances with a private in-flight
 * budget (so its backlog throttles only its own ingestion), and its
 * own SLA tracker. All tenants share the engine's cores, hybrid
 * memory, placement knob and virtual clock.
 *
 * Tenant ids are chosen by the submitter and are stable identities:
 * scheduling tie-breaks, RNG seed derivation and session start order
 * all key on the id, never on submission order — which is what makes
 * per-tenant results independent of the order sessions were offered.
 */

#ifndef SBHBM_SERVE_TENANT_H
#define SBHBM_SERVE_TENANT_H

#include <memory>
#include <string>
#include <utility>

#include "common/units.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/operator.h"
#include "pipeline/pipeline.h"
#include "queries/query.h"
#include "runtime/engine.h"
#include "serve/checkpoint.h"
#include "serve/sla_tracker.h"

namespace sbhbm::serve {

/** An admission request: one session the serving layer may run. */
struct TenantSpec
{
    /** Stable identity and executor stream; unique, >= 1 (0 is the
     *  legacy single-pipeline stream). */
    runtime::StreamId id = 1;

    std::string name;

    /** Fair-share weight (task slots under contention ∝ weight). */
    double weight = 1.0;

    /** Which of the §6 queries this session runs. */
    queries::QueryId query = queries::QueryId::kSumPerKey;

    /** Session length, records. */
    uint64_t total_records = 500'000;

    uint32_t bundle_records = 10'000;

    /**
     * Offered ingestion rate, records/sec; 0 = NIC-limited. Hot
     * tenants offer more than their fair share can absorb.
     */
    double offered_rate = 0;

    /** Open-loop Poisson bundle arrivals (needs offered_rate > 0). */
    bool poisson_arrivals = false;

    /** Key/value ranges of the KV generators. */
    uint64_t key_range = 10'000;
    uint64_t value_range = 1'000'000;

    /**
     * HBM bytes this session asks the admission controller to
     * reserve. Admission fails (queues) while the aggregate over
     * running sessions would exceed the serving budget.
     */
    uint64_t hbm_reserve_bytes = 0;

    /** Per-tenant in-flight bundle budget (private back-pressure). */
    uint32_t max_inflight_bundles = 32;

    /**
     * Watermark cadence: 0 = one per window boundary (default); k > 0
     * emits one every k bundles, delaying window closure so the
     * session holds several windows of KPA state open at once — the
     * long-lived cold state the pressure director demotes. Must stay
     * below max_inflight_bundles or the session deadlocks (windows
     * can only close on a watermark).
     */
    uint32_t bundles_per_watermark = 0;

    /** Virtual time the session arrives at the admission controller. */
    SimTime arrives_at = 0;

    /** Workload seed; 0 derives one deterministically from the id. */
    uint64_t seed = 0;

    /**
     * Stamp records with logical event time (record i at
     * i/offered_rate seconds — a pure function of stream position, so
     * a replay reproduces the original timestamps bit for bit).
     * Requires offered_rate > 0. Fault-tolerant recovery needs it;
     * without it a session whose shard crashes is lost.
     */
    bool logical_time = false;

    /**
     * Resume offset: records a previous incarnation of this session
     * already consumed (checkpoint restore / migration continuation).
     * The generators fast-forward past them and, under logical_time,
     * timestamps continue the original timeline. Single-stream
     * sessions only.
     */
    uint64_t start_record = 0;
};

/** One admitted, running session. */
class Tenant
{
  public:
    /**
     * Build the session's pipeline + sources on @p eng. Does not
     * start ingesting yet (the server starts sessions in id order).
     */
    Tenant(runtime::Engine &eng, TenantSpec spec, SimTime window_ns,
           uint64_t seed)
        : eng_(eng), spec_(std::move(spec)),
          pipe_(std::make_unique<pipeline::Pipeline>(
              eng, columnar::WindowSpec{window_ns}, spec_.id)),
          sla_(eng.config().target_delay)
    {
        queries::QueryConfig qc;
        qc.id = spec_.query;
        qc.seed = seed;
        qc.key_range = spec_.key_range;
        qc.value_range = spec_.value_range;
        built_ = queries::buildQueryPipeline(qc, *pipe_);

        ingest::SourceConfig scfg;
        scfg.nic_bw = eng.config().machine.nic_rdma_bw;
        if (built_.entry_b != nullptr)
            scfg.nic_bw /= 2; // two-stream queries share the NIC slice
        scfg.bundle_records = spec_.bundle_records;
        scfg.total_records = spec_.total_records;
        scfg.offered_rate = spec_.offered_rate;
        scfg.poisson_arrivals = spec_.poisson_arrivals;
        scfg.bundles_per_watermark = spec_.bundles_per_watermark;
        scfg.arrival_seed = seed ^ 0x9e3779b97f4a7c15ULL;
        scfg.logical_time = spec_.logical_time;
        scfg.start_record = spec_.start_record;

        src_a_ = std::make_unique<ingest::Source>(
            eng, *pipe_, *built_.gen_a, built_.entry_a, scfg,
            built_.port_a);
        if (built_.entry_b != nullptr) {
            sbhbm_assert(spec_.start_record == 0,
                         "two-stream sessions cannot resume mid-stream");
            scfg.arrival_seed ^= 0xbf58476d1ce4e5b9ULL;
            src_b_ = std::make_unique<ingest::Source>(
                eng, *pipe_, *built_.gen_b, built_.entry_b, scfg,
                built_.port_b);
        }

        eng.setStreamBudget(spec_.id, spec_.max_inflight_bundles);
    }

    Tenant(const Tenant &) = delete;
    Tenant &operator=(const Tenant &) = delete;

    /** Begin ingesting at the current virtual time. */
    void
    start()
    {
        started_at_ = eng_.machine().now();
        sla_.setIgnoreBefore(started_at_);
        src_a_->start();
        if (src_b_)
            src_b_->start();
    }

    /**
     * All records ingested and every task of this tenant's stream
     * completed: nothing can spawn further work (deliveries are done,
     * watermark cascades run synchronously with task completions), so
     * every window that can close has closed and externalized. Not
     * conditioned on in-flight bundles reaching zero: two-stream
     * queries can pin bundles in window state that no aligned
     * watermark ever closes; those are freed at session teardown.
     */
    bool
    drained() const
    {
        const auto &ss = eng_.exec().streamStats(spec_.id);
        return src_a_->finished() && (!src_b_ || src_b_->finished())
               && ss.spawned == ss.completed;
    }

    /**
     * Only single-source sessions migrate between shards: a
     * two-stream query's sources drain at different offsets, so the
     * continuation could not split the remaining records between them
     * without breaking per-stream conservation.
     */
    bool migratable() const { return src_b_ == nullptr; }

    /**
     * Begin handing this session off: stop its stream early (see
     * ingest::Source::truncate) so it drains at the records already
     * delivered; the serving layer then restarts the remainder on the
     * destination shard under the same identity and seed.
     */
    void
    truncate()
    {
        sbhbm_assert(migratable(), "two-stream sessions do not migrate");
        src_a_->truncate();
    }

    // ---------------------------------------------------------------
    // Fault tolerance.
    // ---------------------------------------------------------------

    /**
     * The session's shard crashed: stop its sources forever. The
     * session's in-flight (zombie) work drains on the dead shard but
     * its output is no longer observed; the recovery layer restarts
     * the session elsewhere from its last checkpoint.
     */
    void
    halt()
    {
        src_a_->halt();
        if (src_b_)
            src_b_->halt();
    }

    /** Primary source (fault targeting, checkpoint quiesce). */
    ingest::Source &sourceA() { return *src_a_; }
    const ingest::Source &sourceA() const { return *src_a_; }

    /** The pipeline sink (output counts, checksums, dedup horizon). */
    pipeline::EgressOp &egress() { return *built_.egress; }
    const pipeline::EgressOp &egress() const { return *built_.egress; }

    /** SLA-aware load shedding on every source of the session. */
    void
    setShedding(bool on)
    {
        src_a_->setShedding(on);
        if (src_b_)
            src_b_->setShedding(on);
    }

    /** Records consumed from the stream but dropped unprocessed. */
    uint64_t
    recordsShed() const
    {
        return src_a_->recordsShed()
               + (src_b_ ? src_b_->recordsShed() : 0);
    }

    /**
     * True when the ingestion stage and the executor stream are both
     * empty: the session's state is exactly the result of the records
     * consumed so far, with nothing in flight.
     */
    bool
    quiesced() const
    {
        const auto &ss = eng_.exec().streamStats(spec_.id);
        return src_a_->deliveryIdle()
               && (!src_b_ || src_b_->deliveryIdle())
               && ss.spawned == ss.completed;
    }

    /**
     * Capture a checkpoint. Caller must hold the session quiesced()
     * (source paused, nothing in flight). @p prev is the previous
     * capture for incremental reuse (may be nullptr). Copy traffic is
     * charged to @p log DMA-style; the caller executes it on the
     * shard's machine.
     */
    TenantCheckpoint
    capture(const TenantCheckpoint *prev, sim::CostLog &log)
    {
        sbhbm_assert(quiesced(), "checkpoint of a non-quiesced session");
        TenantCheckpoint c;
        c.id = spec_.id;
        c.taken_at = eng_.machine().now();
        c.watermark = src_a_->emittedWatermark();
        c.position = src_a_->streamPosition();
        c.next_close = pipe_->targetWindow();
        c.restorable = migratable() && spec_.logical_time;
        const auto &ops = pipe_->operators();
        c.ops.resize(ops.size());
        for (size_t i = 0; i < ops.size(); ++i) {
            const pipeline::OperatorSnapshot *p =
                prev != nullptr && i < prev->ops.size() ? &prev->ops[i]
                                                        : nullptr;
            const pipeline::SnapshotSupport sup =
                ops[i]->snapshotState(c.ops[i], p, log);
            c.ops[i].op = ops[i]->name();
            c.ops[i].support = sup;
            if (sup == pipeline::SnapshotSupport::kUnsupported)
                c.restorable = false;
        }
        return c;
    }

    /**
     * Reinstall checkpointed operator state into this freshly built
     * session (before start()). The spec's start_record must equal the
     * checkpoint's position so replay continues exactly at the cut.
     */
    void
    restoreFrom(const TenantCheckpoint &c)
    {
        sbhbm_assert(c.restorable, "restoring a non-restorable cut");
        sbhbm_assert(spec_.start_record == c.position,
                     "restore offset %llu != checkpoint position %llu",
                     (unsigned long long)spec_.start_record,
                     (unsigned long long)c.position);
        const auto &ops = pipe_->operators();
        sbhbm_assert(c.ops.size() == ops.size(),
                     "checkpoint/pipeline shape mismatch");
        for (size_t i = 0; i < ops.size(); ++i)
            if (c.ops[i].support == pipeline::SnapshotSupport::kSupported)
                ops[i]->restoreState(c.ops[i]);
    }

    const TenantSpec &spec() const { return spec_; }
    pipeline::Pipeline &pipe() { return *pipe_; }
    const pipeline::Pipeline &pipe() const { return *pipe_; }
    SlaTracker &sla() { return sla_; }
    const SlaTracker &sla() const { return sla_; }
    SimTime startedAt() const { return started_at_; }

    uint64_t
    recordsIngested() const
    {
        return src_a_->recordsIngested()
               + (src_b_ ? src_b_->recordsIngested() : 0);
    }

    /** Cumulative ingest stall of every source, ns (attribution). */
    uint64_t
    ingestWaitNs() const
    {
        return src_a_->ingestWaitNs()
               + (src_b_ ? src_b_->ingestWaitNs() : 0);
    }

    /** The tenant's current stall counters for SLA attribution. */
    StallSnapshot
    stallSnapshot() const
    {
        StallSnapshot s;
        s.ingest_wait_ns = ingestWaitNs();
        s.queue_wait_ns =
            eng_.exec().streamStats(spec_.id).queue_wait_ns;
        s.memory_stall_ns = eng_.director().sweepStallNs(spec_.id);
        return s;
    }

    uint64_t outputRecords() const { return built_.egress->outputRecords(); }

  private:
    runtime::Engine &eng_;
    TenantSpec spec_;
    std::unique_ptr<pipeline::Pipeline> pipe_;
    queries::BuiltQuery built_;
    std::unique_ptr<ingest::Source> src_a_;
    std::unique_ptr<ingest::Source> src_b_;
    SlaTracker sla_;
    SimTime started_at_ = 0;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_TENANT_H
