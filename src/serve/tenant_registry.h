/**
 * @file
 * Tenant registry + admission controller.
 *
 * The scarce resource admission guards is HBM capacity: every session
 * declares an HBM reservation (working-set estimate for its windows'
 * KPAs) and the controller admits sessions only while there is
 * headroom under the serving budget. Headroom comes from one of two
 * sources (AdmissionMode): the aggregate *static reservation* of
 * running sessions (a CapacityGauge over the slice of HBM the
 * operator dedicates to serving), or the *live pressure* the server
 * samples from the engine's HBM gauge — the control-plane mode where
 * admission reacts to what sessions actually allocate rather than
 * what they promised. Sessions that do not fit wait in an
 * arrival-ordered queue and are admitted as running sessions drain
 * (or, live mode, as measured pressure recedes); sessions that can
 * never fit (reservation larger than the whole budget) or that arrive
 * to a full queue are rejected outright.
 *
 * The registry tracks identity and accounting only; instantiating a
 * session's pipeline is the Server's job (via the admission results
 * offer() and release() return).
 */

#ifndef SBHBM_SERVE_TENANT_REGISTRY_H
#define SBHBM_SERVE_TENANT_REGISTRY_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "mem/capacity_gauge.h"
#include "serve/tenant.h"

namespace sbhbm::serve {

/**
 * How admission headroom is computed.
 *
 * kStaticReservation is the original contract: each session charges
 * its declared reservation against the budget for its whole lifetime,
 * whether it uses the bytes or not. kLivePressure admits against the
 * *measured* HBM gauge instead — the windowed high-water the server
 * samples from the engine's memory — so a fleet whose declared
 * reservations overstate its live working set packs more sessions
 * onto the same budget, and a pressure spike (gauge high-water) holds
 * arrivals back even when paper reservations say there is room.
 */
enum class AdmissionMode : uint8_t {
    kStaticReservation = 0,
    kLivePressure = 1,
};

/** Admission controller limits. */
struct AdmissionConfig
{
    /** Aggregate HBM reservation cap across running sessions. */
    uint64_t hbm_budget_bytes = 1ull << 30;

    /** Concurrent running sessions. */
    uint32_t max_active = 64;

    /** Waiting sessions beyond which new arrivals are rejected. */
    uint32_t max_queued = 64;

    /** Headroom source (static reservations vs live gauge). */
    AdmissionMode mode = AdmissionMode::kStaticReservation;
};

/** Outcome of offering a session to the admission controller. */
enum class Admission {
    kAdmitted, //!< runs now
    kQueued,   //!< waits for running sessions to drain
    kRejected, //!< cannot ever fit, or the wait queue is full
};

constexpr const char *
admissionName(Admission a)
{
    switch (a) {
      case Admission::kAdmitted: return "admitted";
      case Admission::kQueued: return "queued";
      case Admission::kRejected: return "rejected";
    }
    return "?";
}

/** Session bookkeeping + HBM admission accounting. */
class TenantRegistry
{
  public:
    explicit TenantRegistry(AdmissionConfig cfg)
        : cfg_(cfg), gauge_(cfg.hbm_budget_bytes, 0)
    {
        sbhbm_assert(cfg.hbm_budget_bytes > 0,
                     "admission needs a positive HBM budget");
    }

    TenantRegistry(const TenantRegistry &) = delete;
    TenantRegistry &operator=(const TenantRegistry &) = delete;

    /**
     * Live HBM pressure source for AdmissionMode::kLivePressure,
     * in bytes (the server wires the engine gauge's windowed
     * high-water). Unset, live mode degrades to zero pressure —
     * admission then gates on max_active and the can-never-fit
     * check only.
     */
    using LivePressureFn = std::function<uint64_t()>;

    void setLivePressure(LivePressureFn fn) { live_ = std::move(fn); }

    /**
     * Offer a session for admission. Admitted sessions charge their
     * reservation immediately; queued ones wait in arrival order.
     */
    Admission
    offer(const TenantSpec &spec)
    {
        sbhbm_assert(spec.id != 0, "tenant id 0 is reserved");
        sbhbm_assert(reserved_.find(spec.id) == reserved_.end()
                         && !isQueued(spec.id),
                     "tenant id %u offered twice", spec.id);
        if (spec.hbm_reserve_bytes > cfg_.hbm_budget_bytes) {
            ++rejected_;
            return Admission::kRejected; // can never fit
        }
        // Arrivals behind a waiting session must wait too, even when
        // they would fit right now — the alternative starves big
        // waiters behind a stream of small arrivals.
        if (waiting_.empty() && tryAdmit(spec))
            return Admission::kAdmitted;
        if (waiting_.size() >= cfg_.max_queued) {
            ++rejected_;
            return Admission::kRejected;
        }
        waiting_.push_back(spec);
        return Admission::kQueued;
    }

    /**
     * Session @p id drained: release its reservation and admit as
     * many waiting sessions (in arrival order, head-of-line blocking
     * preserved — admitting around a big waiter would starve it) as
     * now fit. @return the specs admitted by this release.
     */
    std::vector<TenantSpec>
    release(runtime::StreamId id)
    {
        auto it = reserved_.find(id);
        sbhbm_assert(it != reserved_.end(),
                     "releasing unknown tenant %u", id);
        if (cfg_.mode == AdmissionMode::kStaticReservation)
            gauge_.release(it->second);
        reserved_.erase(it);
        sbhbm_assert(active_ > 0, "active session underflow");
        --active_;
        return pumpAdmission();
    }

    /**
     * Admit as many waiting sessions as now fit (arrival order,
     * head-of-line blocking preserved). Called on every release; in
     * live-pressure mode the server also calls it periodically, since
     * headroom there reappears when the gauge drains — not only when
     * a session releases its reservation. @return the admitted specs.
     */
    std::vector<TenantSpec>
    pumpAdmission()
    {
        // In live mode every waiter would otherwise be judged against
        // the same stale gauge sample: accumulate the reserves
        // admitted by *this* pump into the headroom term, so one pump
        // cannot land an unbounded burst of declared working sets on
        // a tier whose measured pressure has not caught up yet.
        uint64_t pumped_reserve = 0;
        std::vector<TenantSpec> admitted;
        while (!waiting_.empty()
               && tryAdmit(waiting_.front(), pumped_reserve)) {
            pumped_reserve += waiting_.front().hbm_reserve_bytes;
            admitted.push_back(waiting_.front());
            waiting_.pop_front();
        }
        return admitted;
    }

    uint32_t active() const { return active_; }
    size_t queued() const { return waiting_.size(); }
    uint64_t rejected() const { return rejected_; }
    uint64_t everAdmitted() const { return ever_admitted_; }

    /** The admission gauge (reserved bytes vs budget; static mode). */
    const mem::CapacityGauge &gauge() const { return gauge_; }

    /** Current live pressure, bytes (0 without a source). */
    uint64_t livePressure() const { return live_ ? live_() : 0; }

  private:
    /**
     * @param pumped_reserve reserves of sessions already admitted by
     *        the current pumpAdmission() sweep, counted as pressure
     *        the gauge has not measured yet.
     */
    bool
    tryAdmit(const TenantSpec &spec, uint64_t pumped_reserve = 0)
    {
        if (active_ >= cfg_.max_active)
            return false;
        if (cfg_.mode == AdmissionMode::kLivePressure) {
            // Gauge-aware admission: measured pressure plus this
            // session's declared working set must fit the budget.
            if (livePressure() + pumped_reserve + spec.hbm_reserve_bytes
                > cfg_.hbm_budget_bytes)
                return false;
        } else {
            if (!gauge_.tryReserve(spec.hbm_reserve_bytes,
                                   /*urgent=*/false))
                return false;
        }
        reserved_[spec.id] = spec.hbm_reserve_bytes;
        ++active_;
        ++ever_admitted_;
        return true;
    }

    bool
    isQueued(runtime::StreamId id) const
    {
        for (const auto &w : waiting_)
            if (w.id == id)
                return true;
        return false;
    }

    AdmissionConfig cfg_;
    mem::CapacityGauge gauge_;
    LivePressureFn live_;
    std::map<runtime::StreamId, uint64_t> reserved_;
    std::deque<TenantSpec> waiting_;
    uint32_t active_ = 0;
    uint64_t rejected_ = 0;
    uint64_t ever_admitted_ = 0;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_TENANT_REGISTRY_H
