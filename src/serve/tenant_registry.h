/**
 * @file
 * Tenant registry + admission controller.
 *
 * The scarce resource admission guards is HBM capacity: every session
 * declares an HBM reservation (working-set estimate for its windows'
 * KPAs) and the controller admits sessions only while there is
 * headroom under the serving budget. Headroom comes from one of two
 * sources (AdmissionMode): the aggregate *static reservation* of
 * running sessions (a CapacityGauge over the slice of HBM the
 * operator dedicates to serving), or the *live pressure* the server
 * samples from the engine's HBM gauge — the control-plane mode where
 * admission reacts to what sessions actually allocate rather than
 * what they promised. Sessions that do not fit wait in an
 * arrival-ordered queue and are admitted as running sessions drain
 * (or, live mode, as measured pressure recedes); sessions that can
 * never fit (reservation larger than a whole shard's budget) or that
 * arrive to a full queue are rejected outright.
 *
 * With shards > 1 the registry is the fleet's placement authority:
 * the global budget divides evenly into per-shard budgets, each
 * admitted session is placed by its load vector (declared HBM
 * reservation x expected record rate) onto the least-loaded shard
 * with headroom, and the wait queue stays global (one arrival order,
 * head-of-line preserved across the fleet). One shard reduces
 * exactly to the single-engine controller.
 *
 * In live mode the registry additionally tracks the reserves of
 * *recently admitted* sessions the gauge has not measured yet:
 * back-to-back offers within one monitor tick would otherwise each
 * be judged against the same stale gauge sample and over-admit. The
 * server calls noteGaugeMarked() whenever it re-marks the gauge's
 * high-water window — from then on the sample covers those sessions
 * and the unmeasured term resets.
 *
 * The registry tracks identity and accounting only; instantiating a
 * session's pipeline is the Server's job (via the admission results
 * offer() and release() return).
 */

#ifndef SBHBM_SERVE_TENANT_REGISTRY_H
#define SBHBM_SERVE_TENANT_REGISTRY_H

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "mem/capacity_gauge.h"
#include "serve/tenant.h"

namespace sbhbm::serve {

/**
 * How admission headroom is computed.
 *
 * kStaticReservation is the original contract: each session charges
 * its declared reservation against the budget for its whole lifetime,
 * whether it uses the bytes or not. kLivePressure admits against the
 * *measured* HBM gauge instead — the windowed high-water the server
 * samples from the engine's memory — so a fleet whose declared
 * reservations overstate its live working set packs more sessions
 * onto the same budget, and a pressure spike (gauge high-water) holds
 * arrivals back even when paper reservations say there is room.
 */
enum class AdmissionMode : uint8_t {
    kStaticReservation = 0,
    kLivePressure = 1,
};

/** Admission controller limits. */
struct AdmissionConfig
{
    /** Aggregate HBM reservation cap across running sessions. */
    uint64_t hbm_budget_bytes = 1ull << 30;

    /** Concurrent running sessions (global across shards). */
    uint32_t max_active = 64;

    /** Waiting sessions beyond which new arrivals are rejected. */
    uint32_t max_queued = 64;

    /** Headroom source (static reservations vs live gauge). */
    AdmissionMode mode = AdmissionMode::kStaticReservation;

    /** Engine shards the budget divides into (1 = single engine). */
    uint32_t shards = 1;
};

/** Outcome of offering a session to the admission controller. */
enum class Admission {
    kAdmitted, //!< runs now
    kQueued,   //!< waits for running sessions to drain
    kRejected, //!< cannot ever fit, or the wait queue is full
};

constexpr const char *
admissionName(Admission a)
{
    switch (a) {
      case Admission::kAdmitted: return "admitted";
      case Admission::kQueued: return "queued";
      case Admission::kRejected: return "rejected";
    }
    return "?";
}

/** Session bookkeeping + HBM admission accounting + shard placement. */
class TenantRegistry
{
  public:
    explicit TenantRegistry(AdmissionConfig cfg) : cfg_(cfg)
    {
        sbhbm_assert(cfg.hbm_budget_bytes > 0,
                     "admission needs a positive HBM budget");
        sbhbm_assert(cfg.shards >= 1, "admission needs >= 1 shard");
        const uint64_t per_shard = cfg.hbm_budget_bytes / cfg.shards;
        sbhbm_assert(per_shard > 0, "budget smaller than shard count");
        gauges_.reserve(cfg.shards);
        for (uint32_t s = 0; s < cfg.shards; ++s)
            gauges_.emplace_back(per_shard, 0);
        live_.resize(cfg.shards);
        unmeasured_total_.assign(cfg.shards, 0);
        load_.assign(cfg.shards, 0.0);
        down_.assign(cfg.shards, false);
    }

    TenantRegistry(const TenantRegistry &) = delete;
    TenantRegistry &operator=(const TenantRegistry &) = delete;

    /**
     * Live HBM pressure source for AdmissionMode::kLivePressure,
     * in bytes (the server wires shard @p shard's engine-gauge
     * windowed high-water). Unset, live mode degrades to zero
     * pressure — admission then gates on max_active and the
     * can-never-fit check only.
     */
    using LivePressureFn = std::function<uint64_t()>;

    void setLivePressure(LivePressureFn fn) { live_[0] = std::move(fn); }

    void
    setLivePressure(uint32_t shard, LivePressureFn fn)
    {
        live_[shard] = std::move(fn);
    }

    /**
     * Offer a session for admission. Admitted sessions charge their
     * reservation immediately against their placement shard; queued
     * ones wait in arrival order (one global queue).
     */
    Admission
    offer(const TenantSpec &spec)
    {
        sbhbm_assert(spec.id != 0, "tenant id 0 is reserved");
        sbhbm_assert(resident_.find(spec.id) == resident_.end()
                         && !isQueued(spec.id),
                     "tenant id %u offered twice", spec.id);
        if (spec.hbm_reserve_bytes > perShardBudget()) {
            ++rejected_;
            return Admission::kRejected; // can never fit on any shard
        }
        // Arrivals behind a waiting session must wait too, even when
        // they would fit right now — the alternative starves big
        // waiters behind a stream of small arrivals.
        if (waiting_.empty() && tryAdmit(spec))
            return Admission::kAdmitted;
        if (waiting_.size() >= cfg_.max_queued) {
            ++rejected_;
            return Admission::kRejected;
        }
        waiting_.push_back(spec);
        return Admission::kQueued;
    }

    /**
     * Session @p id drained: release its reservation and admit as
     * many waiting sessions (in arrival order, head-of-line blocking
     * preserved — admitting around a big waiter would starve it) as
     * now fit. @return the specs admitted by this release.
     */
    std::vector<TenantSpec>
    release(runtime::StreamId id)
    {
        auto it = resident_.find(id);
        sbhbm_assert(it != resident_.end(),
                     "releasing unknown tenant %u", id);
        const Resident r = it->second;
        if (cfg_.mode == AdmissionMode::kStaticReservation)
            gauges_[r.shard].release(r.reserve);
        forgetUnmeasured(id);
        load_[r.shard] -= r.load;
        resident_.erase(it);
        sbhbm_assert(active_ > 0, "active session underflow");
        --active_;
        return pumpAdmission();
    }

    /**
     * Admit as many waiting sessions as now fit (arrival order,
     * head-of-line blocking preserved). Called on every release; in
     * live-pressure mode the server also calls it periodically, since
     * headroom there reappears when the gauge drains — not only when
     * a session releases its reservation. Every admit's reserve joins
     * the unmeasured term immediately, so one pump cannot land an
     * unbounded burst of declared working sets on a tier whose
     * measured pressure has not caught up yet. @return the admitted
     * specs.
     */
    std::vector<TenantSpec>
    pumpAdmission()
    {
        std::vector<TenantSpec> admitted;
        while (!waiting_.empty() && tryAdmit(waiting_.front())) {
            admitted.push_back(waiting_.front());
            waiting_.pop_front();
        }
        return admitted;
    }

    /**
     * The server re-marked shard @p shard's gauge high-water window:
     * from now on the live sample covers every session admitted
     * before this call, so their reserves leave the unmeasured term.
     */
    void
    noteGaugeMarked(uint32_t shard = 0)
    {
        for (auto it = unmeasured_.begin(); it != unmeasured_.end();) {
            if (it->second.shard == shard)
                it = unmeasured_.erase(it);
            else
                ++it;
        }
        unmeasured_total_[shard] = 0;
    }

    /**
     * Re-account a resident session from its shard to @p to_shard
     * (the serving layer's tenant migration). Mirrors
     * HybridMemory::migrate's discipline: the charged bytes are
     * conserved — released from the source gauge and reserved on the
     * destination in one step, load vector following. In live mode
     * the moved reserve becomes unmeasured on the destination until
     * its gauge window covers it. @return false (nothing moved) when
     * the destination lacks headroom in static mode.
     */
    bool
    migrate(runtime::StreamId id, uint32_t to_shard)
    {
        auto it = resident_.find(id);
        sbhbm_assert(it != resident_.end(),
                     "migrating unknown tenant %u", id);
        Resident &r = it->second;
        if (r.shard == to_shard)
            return true;
        if (down_[to_shard])
            return false; // never migrate onto a dead shard
        if (cfg_.mode == AdmissionMode::kStaticReservation) {
            if (!gauges_[to_shard].tryReserve(r.reserve, /*urgent=*/false))
                return false;
            gauges_[r.shard].release(r.reserve);
        } else {
            forgetUnmeasured(id);
            unmeasured_[id] = Unmeasured{to_shard, r.reserve};
            unmeasured_total_[to_shard] += r.reserve;
        }
        load_[r.shard] -= r.load;
        load_[to_shard] += r.load;
        r.shard = to_shard;
        ++migrations_;
        return true;
    }

    /**
     * Shard @p s crashed: stop placing sessions on it. Sessions
     * resident there stay accounted to it (their reservations travel
     * with the recovery migrate() or are released when the session is
     * declared lost); new admissions and migrations skip it.
     */
    void
    setShardDown(uint32_t s)
    {
        down_[s] = true;
    }

    /** Is shard @p s marked down? */
    bool shardDown(uint32_t s) const { return down_[s]; }

    /** Live (not-down) shards. */
    uint32_t
    liveShards() const
    {
        uint32_t n = 0;
        for (uint32_t s = 0; s < cfg_.shards; ++s)
            n += down_[s] ? 0 : 1;
        return n;
    }

    uint32_t active() const { return active_; }
    size_t queued() const { return waiting_.size(); }
    uint64_t rejected() const { return rejected_; }
    uint64_t everAdmitted() const { return ever_admitted_; }
    uint64_t migrations() const { return migrations_; }

    uint32_t shards() const { return cfg_.shards; }

    /** Per-shard slice of the global budget. */
    uint64_t perShardBudget() const
    {
        return cfg_.hbm_budget_bytes / cfg_.shards;
    }

    /** Shard the resident session @p id was placed on. */
    uint32_t
    shardOf(runtime::StreamId id) const
    {
        auto it = resident_.find(id);
        sbhbm_assert(it != resident_.end(), "unknown tenant %u", id);
        return it->second.shard;
    }

    /** Aggregate placement load (reserve x rate) on @p shard. */
    double shardLoad(uint32_t shard) const { return load_[shard]; }

    /** Resident sessions on @p shard. */
    uint32_t
    shardActive(uint32_t shard) const
    {
        uint32_t n = 0;
        for (const auto &[id, r] : resident_)
            n += r.shard == shard ? 1 : 0;
        return n;
    }

    /** The admission gauge of shard 0 (static mode accounting). */
    const mem::CapacityGauge &gauge() const { return gauges_[0]; }

    /** The admission gauge of @p shard. */
    const mem::CapacityGauge &gauge(uint32_t shard) const
    {
        return gauges_[shard];
    }

    /** Current live pressure of @p shard, bytes (0 without a source). */
    uint64_t
    livePressure(uint32_t shard = 0) const
    {
        return live_[shard] ? live_[shard]() : 0;
    }

    /** Reserves admitted on @p shard that no gauge sample covers yet. */
    uint64_t
    unmeasuredReserve(uint32_t shard = 0) const
    {
        return unmeasured_total_[shard];
    }

    /**
     * The placement load one session contributes: declared HBM
     * reservation weighted by its expected record rate (both floored
     * so zero-reserve or closed-loop sessions still register).
     */
    static double
    loadOf(const TenantSpec &spec)
    {
        const double reserve = std::max<double>(
            static_cast<double>(spec.hbm_reserve_bytes), 1.0);
        const double rate = std::max(spec.offered_rate, 1.0);
        return reserve * rate;
    }

  private:
    /** An admitted session's placement + accounting record. */
    struct Resident
    {
        uint64_t reserve = 0;
        uint32_t shard = 0;
        double load = 0;
    };

    /** A live-mode admit the gauge has not measured yet. */
    struct Unmeasured
    {
        uint32_t shard = 0;
        uint64_t reserve = 0;
    };

    bool
    tryAdmit(const TenantSpec &spec)
    {
        if (active_ >= cfg_.max_active)
            return false;
        // Shards in (load, index) order: place on the least-loaded
        // shard that has headroom. Ties break on the lowest index, so
        // placement is deterministic and one shard reduces exactly to
        // the single-engine check.
        order_.resize(cfg_.shards);
        for (uint32_t s = 0; s < cfg_.shards; ++s)
            order_[s] = s;
        std::stable_sort(order_.begin(), order_.end(),
                         [this](uint32_t a, uint32_t b) {
                             return load_[a] < load_[b];
                         });
        for (uint32_t s : order_) {
            if (down_[s])
                continue; // dead shards take no new sessions
            if (cfg_.mode == AdmissionMode::kLivePressure) {
                // Gauge-aware admission: measured pressure plus the
                // reserves of not-yet-measured recent admits plus
                // this session's declared working set must fit.
                const uint64_t budget = perShardBudget();
                const uint64_t pressure =
                    livePressure(s) + unmeasured_total_[s];
                if (pressure > budget
                    || spec.hbm_reserve_bytes > budget - pressure)
                    continue;
                unmeasured_[spec.id] =
                    Unmeasured{s, spec.hbm_reserve_bytes};
                unmeasured_total_[s] += spec.hbm_reserve_bytes;
            } else {
                if (!gauges_[s].tryReserve(spec.hbm_reserve_bytes,
                                           /*urgent=*/false))
                    continue;
            }
            Resident r;
            r.reserve = spec.hbm_reserve_bytes;
            r.shard = s;
            r.load = loadOf(spec);
            resident_[spec.id] = r;
            load_[s] += r.load;
            ++active_;
            ++ever_admitted_;
            return true;
        }
        return false;
    }

    void
    forgetUnmeasured(runtime::StreamId id)
    {
        auto it = unmeasured_.find(id);
        if (it == unmeasured_.end())
            return;
        uint64_t &total = unmeasured_total_[it->second.shard];
        sbhbm_assert(total >= it->second.reserve,
                     "unmeasured reserve underflow");
        total -= it->second.reserve;
        unmeasured_.erase(it);
    }

    bool
    isQueued(runtime::StreamId id) const
    {
        for (const auto &w : waiting_)
            if (w.id == id)
                return true;
        return false;
    }

    AdmissionConfig cfg_;
    std::vector<mem::CapacityGauge> gauges_;
    std::vector<LivePressureFn> live_;
    std::map<runtime::StreamId, Resident> resident_;
    std::map<runtime::StreamId, Unmeasured> unmeasured_;
    std::vector<uint64_t> unmeasured_total_;
    std::vector<double> load_;
    std::vector<bool> down_;
    std::deque<TenantSpec> waiting_;
    std::vector<uint32_t> order_;
    uint32_t active_ = 0;
    uint64_t rejected_ = 0;
    uint64_t ever_admitted_ = 0;
    uint64_t migrations_ = 0;
};

} // namespace sbhbm::serve

#endif // SBHBM_SERVE_TENANT_REGISTRY_H
