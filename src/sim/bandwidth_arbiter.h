/**
 * @file
 * Fluid-flow bandwidth sharing for one memory tier.
 *
 * Every active memory stream ("flow") has a remaining byte count and a
 * per-flow rate cap (what a single core can pull for that access
 * pattern). The tier grants max-min fair shares of its aggregate
 * bandwidth, with the random-access sub-mix additionally capped at the
 * tier's random-access peak. The Machine advances flows between
 * events and asks for the next completion time.
 */

#ifndef SBHBM_SIM_BANDWIDTH_ARBITER_H
#define SBHBM_SIM_BANDWIDTH_ARBITER_H

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "sim/tier.h"

namespace sbhbm::sim {

/** Max-min fair fluid bandwidth model for a single tier. */
class BandwidthArbiter
{
  public:
    using FlowId = uint64_t;
    using Callback = std::function<void()>;

    BandwidthArbiter(double peak_seq_bw, double peak_rand_bw)
        : peak_seq_bw_(peak_seq_bw), peak_rand_bw_(peak_rand_bw)
    {
    }

    /**
     * Register a new flow. Caller must have advanced the arbiter to
     * the current time first and must recompute() afterwards.
     *
     * @param bytes    bytes to transfer.
     * @param cap_bps  per-flow bandwidth cap (bytes/sec).
     * @param pattern  sequential or random; random flows share the
     *                 (smaller) random-access aggregate budget.
     * @param on_done  invoked by the Machine once the flow drains.
     */
    FlowId
    add(double bytes, double cap_bps, AccessPattern pattern,
        Callback on_done)
    {
        sbhbm_assert(bytes > 0 && cap_bps > 0,
                     "flow needs positive bytes/cap");
        FlowId id = next_id_++;
        flows_.emplace(id, FlowState{bytes, cap_bps, 0.0, pattern,
                                     std::move(on_done)});
        return id;
    }

    /** Drain bytes at the current rate allocation up to time @p now. */
    void
    advanceTo(SimTime now)
    {
        sbhbm_assert(now >= last_update_, "arbiter time went backwards");
        const double dt = static_cast<double>(now - last_update_) * 1e-9;
        last_update_ = now;
        if (dt <= 0)
            return;
        for (auto &[id, f] : flows_) {
            const double moved = f.rate * dt;
            cumulative_bytes_ += std::min(moved, f.remaining);
            f.remaining -= moved;
            if (f.remaining < kEpsilonBytes)
                f.remaining = 0;
        }
    }

    /**
     * Remove drained flows and return their completion callbacks for
     * the Machine to invoke (outside the arbiter, since callbacks may
     * add new flows).
     */
    std::vector<Callback>
    reapCompleted()
    {
        std::vector<Callback> done;
        for (auto it = flows_.begin(); it != flows_.end();) {
            if (it->second.remaining <= 0) {
                done.push_back(std::move(it->second.on_done));
                it = flows_.erase(it);
            } else {
                ++it;
            }
        }
        return done;
    }

    /**
     * Recompute the max-min fair allocation. Two stages: random flows
     * first share peak_rand_bw among themselves (their grants become
     * caps), then all flows share peak_seq_bw.
     */
    void
    recompute()
    {
        if (flows_.empty()) {
            current_rate_ = 0;
            return;
        }

        // Stage 1: cap the random-access sub-mix.
        std::vector<FlowState *> rand_flows;
        for (auto &[id, f] : flows_) {
            f.effective_cap = f.cap;
            if (f.pattern == AccessPattern::kRandom)
                rand_flows.push_back(&f);
        }
        if (!rand_flows.empty() && peak_rand_bw_ > 0) {
            waterfill(rand_flows, peak_rand_bw_,
                      /* write_effective_cap = */ true);
        }

        // Stage 2: all flows share the tier's peak bandwidth.
        std::vector<FlowState *> all;
        all.reserve(flows_.size());
        for (auto &[id, f] : flows_)
            all.push_back(&f);
        current_rate_ = waterfill(all, peak_seq_bw_,
                                  /* write_effective_cap = */ false);
    }

    /** @return absolute time of the earliest flow completion. */
    SimTime
    nextCompletion() const
    {
        double min_dt = -1;
        for (const auto &[id, f] : flows_) {
            if (f.rate <= 0)
                continue;
            const double dt = f.remaining / f.rate;
            if (min_dt < 0 || dt < min_dt)
                min_dt = dt;
        }
        if (min_dt < 0)
            return kSimTimeNever;
        return last_update_ + static_cast<SimTime>(min_dt * 1e9) + 1;
    }

    /** Instantaneous aggregate granted bandwidth, bytes/sec. */
    double currentRate() const { return current_rate_; }

    /** Total bytes ever transferred through this tier. */
    double cumulativeBytes() const { return cumulative_bytes_; }

    /**
     * Total bytes transferred as of time @p now, including the accrual
     * of in-flight flows since the last advanceTo — what a bandwidth
     * counter read at @p now would report. Does not mutate state.
     */
    double
    cumulativeBytesAt(SimTime now) const
    {
        const double dt = now >= last_update_
                              ? static_cast<double>(now - last_update_)
                                    * 1e-9
                              : 0.0;
        if (dt <= 0)
            return cumulative_bytes_;
        double extra = 0;
        for (const auto &[id, f] : flows_)
            extra += std::min(f.rate * dt, f.remaining);
        return cumulative_bytes_ + extra;
    }

    size_t activeFlows() const { return flows_.size(); }

  private:
    static constexpr double kEpsilonBytes = 1e-3;

    struct FlowState
    {
        double remaining;      //!< bytes left
        double cap;            //!< per-flow cap, bytes/sec
        double rate;           //!< currently granted rate
        AccessPattern pattern;
        Callback on_done;
        double effective_cap = 0; //!< cap after the random-mix stage
    };

    /**
     * Max-min fair waterfill of @p pool bytes/sec across @p flows,
     * honoring each flow's effective_cap.
     * @return the total allocated rate.
     */
    static double
    waterfill(std::vector<FlowState *> &flows, double pool,
              bool write_effective_cap)
    {
        std::sort(flows.begin(), flows.end(),
                  [](const FlowState *a, const FlowState *b) {
                      return a->effective_cap < b->effective_cap;
                  });
        double remaining = pool;
        double total = 0;
        size_t left = flows.size();
        for (FlowState *f : flows) {
            const double fair = remaining / static_cast<double>(left);
            const double grant = std::min(f->effective_cap, fair);
            if (write_effective_cap)
                f->effective_cap = grant;
            else
                f->rate = grant;
            remaining -= grant;
            total += grant;
            --left;
        }
        return total;
    }

    double peak_seq_bw_;
    double peak_rand_bw_;
    std::map<FlowId, FlowState> flows_;
    FlowId next_id_ = 0;
    SimTime last_update_ = 0;
    double current_rate_ = 0;
    double cumulative_bytes_ = 0;
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_BANDWIDTH_ARBITER_H
