/**
 * @file
 * Calibrated CPU-cost constants for the timing model.
 *
 * Every constant is the cost of one unit of work on ONE KNL core
 * (Xeon Phi 7210, 1.3 GHz); the Machine scales them by the config's
 * scalar_speed / vector_speed factors for other machines. Memory
 * traffic is charged separately through CostLog flows; these numbers
 * cover only the instruction stream.
 *
 * Calibration sources:
 *  - Fig 2 (GroupBy microbenchmark): sort kernel and hash probe costs
 *    tuned so the sort-vs-hash crossover on DRAM lands above 40 cores
 *    and sort-on-HBM leads hash-on-HBM by >50%.
 *  - Fig 11 (parsing): per-record parse costs reproduce the reported
 *    ratios vs the engine's YSB throughput (JSON 0.13x, protobuf
 *    4.4x, text 29x) and the 3-4x KNL-to-X56 scalar gap.
 */

#ifndef SBHBM_SIM_COST_MODEL_H
#define SBHBM_SIM_COST_MODEL_H

#include <cstdint>

namespace sbhbm::sim::cost {

/** Cache line size of the simulated machine, bytes. */
constexpr uint64_t kLineBytes = 64;

// -------------------------------------------------------------------
// Grouping kernels (vectorized; charge via CostLog::cpuVector).
// -------------------------------------------------------------------

/**
 * Bitonic block sort of 64 key/pointer pairs, per element per network
 * stage; an AVX-512 compare-exchange on 16-byte pairs at 1.3 GHz with
 * shuffle overheads lands near 0.8 ns/elem/stage. A 64-element block
 * has 21 stages.
 */
constexpr double kBitonicNsPerElemStage = 0.8;
constexpr int kBitonicBlock = 64;
constexpr int kBitonicStages = 21; // sum k(k+1)/2 for k=1..6

/** Vectorized merge of two sorted runs, per element per level. */
constexpr double kMergeNsPerElem = 2.5;

/** Scalar fixup cost per element of a parallel merge (slicing etc.). */
constexpr double kMergeSliceNsPerChunk = 900.0;

/**
 * Kernel slowdown of grouping *full records* instead of key/pointer
 * pairs (the NoKPA ablation): arbitrary-width tuples cannot use the
 * hand-tuned 16-byte-pair AVX kernels (paper 4.1: "We optimize
 * grouping algorithms for a specific data type"), so sort/merge run
 * as scalar tuple moves.
 */
constexpr double kGenericTupleFactor = 5.0;

/**
 * Memory traffic of one merge level, bytes per element: stream the
 * element in (16 B) and out through a write-allocate cache (RFO read
 * + writeback, 32 B). Calibrated against Fig 2's right panel, where
 * sort on 100 M pairs moves ~1.5 kB per pair over ~27 levels.
 */
constexpr uint64_t kSortBytesPerElemLevel = 48;

// -------------------------------------------------------------------
// Hash grouping (baseline; mostly scalar, dependent accesses).
// -------------------------------------------------------------------

/** Hash computation + bucket arithmetic per record. */
constexpr double kHashComputeNs = 3.0;

/** Probe/insert instruction cost per record (excl. the cache miss). */
constexpr double kHashProbeNs = 5.0;

/**
 * Serially-dependent cache misses per insert: the probe walks the
 * bucket chain before the update can issue, so each insert stalls
 * for ~2 round trips regardless of bandwidth. This is what makes
 * hashing latency-bound and why HBM (with its ~20% *higher* latency)
 * barely helps it (Fig 2).
 */
constexpr double kHashChainMisses = 2.0;

/**
 * Random lines touched per insert (probe line, slot update, value
 * append, occasional displacement): calibrated so hash-on-DRAM
 * flattens at the DRAM random-bandwidth limit above ~40 cores.
 */
constexpr uint64_t kHashLinesPerRec = 5;

/** Sequential partitioning pass per record (hash-partition phase). */
constexpr double kHashPartitionNs = 2.0;

// -------------------------------------------------------------------
// KPA maintenance and reduction.
//
// These are *per record per pass* costs of the scalar bookkeeping
// around the vectorized kernels (bounds checks, pointer arithmetic,
// column addressing, per-batch state) on a 1.3 GHz in-order-leaning
// KNL core. They are calibrated against the throughput anchors of
// the evaluation: Windowed Average saturates 2.6 GB/s RDMA (~110 M
// rec/s) with ~16 cores => scan path ~110 ns/rec; keyed pipelines
// sustain ~1-1.5 M rec/s per core => grouped path ~700-1000 ns/rec;
// YSB saturates 10 GbE with ~5 cores => ~280 ns/rec with 1/3 of
// records surviving the filter.
// -------------------------------------------------------------------

/** Extract: gather key + synthesize pointer per record. */
constexpr double kExtractNsPerRec = 100.0;

/** KeySwap/Materialize/write-back bookkeeping per record. */
constexpr double kSwapNsPerRec = 120.0;

/** Per-record cost of a single-pass reduction (sum/avg/count). */
constexpr double kReduceNsPerRec = 100.0;

/** Per-record cost of emitting a new output record. */
constexpr double kEmitNsPerRec = 50.0;

/** Selection predicate evaluation per record. */
constexpr double kSelectNsPerRec = 80.0;

/** Range-partition scatter per record (windowing). */
constexpr double kPartitionNsPerRec = 120.0;

// -------------------------------------------------------------------
// Runtime overheads.
// -------------------------------------------------------------------

/** Fixed cost of creating + dispatching one task. */
constexpr double kTaskDispatchNs = 1500.0;

/** Per-bundle ingestion bookkeeping (pool mgmt, watermark checks). */
constexpr double kIngestNsPerBundle = 4000.0;

/**
 * Flink-like baseline: per-record per-stage interpretation overhead
 * of a record-at-a-time engine (virtual calls, (de)serialization
 * between chained operators, JVM-style object churn). Calibrated
 * against Fig 7: Flink on KNL cannot saturate 10 GbE (~22 M rec/s)
 * even with 64 cores, i.e. < 0.35 M rec/s per core for the 5-stage
 * YSB pipeline.
 */
constexpr double kRecordAtATimeNs = 800.0;

// -------------------------------------------------------------------
// Ingestion parsers (Fig 11), per YSB record (7 numeric columns).
// -------------------------------------------------------------------

// Calibrated against Fig 11's ratios to the engine's YSB rate
// (~46 M rec/s machine throughput over RDMA): JSON 0.13x => ~10.5 us
// per record (RapidJSON, 7 fields, weak scalar core), protobuf 4.4x
// => ~310 ns, text strings 29x => ~47 ns.
constexpr double kParseJsonNsPerRec = 10500.0;
constexpr double kParseProtoNsPerRec = 310.0;
constexpr double kParseTextNsPerRec = 47.0;

} // namespace sbhbm::sim::cost

#endif // SBHBM_SIM_COST_MODEL_H
