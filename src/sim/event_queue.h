/**
 * @file
 * Discrete-event queue driving the virtual clock.
 *
 * Events at equal timestamps fire in insertion order (a monotone
 * sequence number breaks ties) so the whole simulation is
 * deterministic.
 */

#ifndef SBHBM_SIM_EVENT_QUEUE_H
#define SBHBM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/units.h"

namespace sbhbm::sim {

/** Min-heap of (time, seq, callback) triples. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p cb at absolute virtual time @p when.
     *
     * @param daemon daemon events (periodic monitors, samplers) do
     *        not keep the simulation alive: run() stops once only
     *        daemon events remain, the way a real process exits
     *        regardless of its background threads.
     */
    void
    schedule(SimTime when, Callback cb, bool daemon = false)
    {
        sbhbm_assert(when >= now_, "scheduling into the past: %llu < %llu",
                     (unsigned long long)when, (unsigned long long)now_);
        heap_.push(Entry{when, next_seq_++, daemon, std::move(cb)});
        if (!daemon)
            ++live_;
    }

    /** @return true when no non-daemon work remains. */
    bool empty() const { return live_ == 0; }
    size_t size() const { return heap_.size(); }

    /** Current virtual time. */
    SimTime now() const { return now_; }

    /** Time of the earliest pending event, or kSimTimeNever. */
    SimTime
    nextTime() const
    {
        return heap_.empty() ? kSimTimeNever : heap_.top().when;
    }

    /**
     * Pop and run the earliest event, advancing the clock.
     * @return false when the queue was empty.
     */
    bool
    step()
    {
        if (heap_.empty())
            return false;
        // Moving out of a priority_queue top requires const_cast; the
        // entry is popped immediately after so this is safe.
        Entry entry = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = entry.when;
        if (!entry.daemon)
            --live_;
        entry.cb();
        return true;
    }

    /**
     * Run events until the queue drains or the clock passes @p limit.
     * Daemon events DO run here (the horizon bounds the loop), so a
     * monitor can be driven without other work pending.
     */
    void
    runUntil(SimTime limit)
    {
        while (!heap_.empty() && heap_.top().when <= limit) {
            if (!step())
                break;
        }
        if (now_ < limit)
            now_ = limit;
    }

    /** Run until only daemon events (if any) remain. */
    void
    run()
    {
        while (live_ > 0 && step()) {}
    }

    /**
     * Jump the clock forward to @p when without running anything.
     * Only legal while no event earlier than @p when is pending —
     * the multi-machine co-simulation uses this to synchronize a
     * lagging machine's clock to the global time before scheduling
     * cross-machine work on it (the caller holds the invariant: it is
     * processing the globally earliest event, so every other queue's
     * head is at or after @p when).
     */
    void
    advanceTo(SimTime when)
    {
        if (when <= now_)
            return;
        sbhbm_assert(nextTime() >= when,
                     "advanceTo(%llu) would skip an event at %llu",
                     (unsigned long long)when,
                     (unsigned long long)nextTime());
        now_ = when;
    }

  private:
    struct Entry
    {
        SimTime when;
        uint64_t seq;
        bool daemon;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    SimTime now_ = 0;
    uint64_t next_seq_ = 0;
    uint64_t live_ = 0;
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_EVENT_QUEUE_H
