/**
 * @file
 * Deterministic fault injection: a seeded, schedule-driven injector
 * that fires faults at exact virtual times, so every chaos run is
 * reproducible bit for bit.
 *
 * The injector itself is policy-free: a FaultPlan is just an ordered
 * list of (time, kind, target) events, and the injector arms one
 * daemon event per entry on a machine (the serving layer uses the
 * fleet's control-plane machine). What a fault *means* — crash this
 * shard, fail that tenant's next allocations, stall an ingest source —
 * is decided by the handler the owner installs; the injector only
 * guarantees the schedule: same plan, same run, same firing order.
 *
 * Plans come from two places: tests build them explicitly (add one
 * crash at t = 200 ms), and chaos soaks derive them from a seed via
 * FaultPlan::scatter() — the seed fully determines the plan, which
 * fully determines the run.
 */

#ifndef SBHBM_SIM_FAULT_INJECTOR_H
#define SBHBM_SIM_FAULT_INJECTOR_H

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/trace.h"
#include "sim/machine.h"

namespace sbhbm::sim {

/** What kind of fault fires. */
enum class FaultKind : uint8_t {
    kShardCrash = 0, //!< shard loses all state; tenants fail over
    kAllocFail,      //!< next `arg` HybridMemory allocations fail
    kIngestStall,    //!< a source delivers nothing for `arg` ns
    kIngestDrop,     //!< a source sheds its next `arg` bundles
    kSlowShard,      //!< shard degrades to `arg` cores for `arg2` ns
};

constexpr const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::kShardCrash: return "shard-crash";
      case FaultKind::kAllocFail: return "alloc-fail";
      case FaultKind::kIngestStall: return "ingest-stall";
      case FaultKind::kIngestDrop: return "ingest-drop";
      case FaultKind::kSlowShard: return "slow-shard";
    }
    return "?";
}

/** One scheduled fault. */
struct FaultEvent
{
    SimTime at = 0;       //!< absolute virtual firing time
    FaultKind kind = FaultKind::kShardCrash;
    uint32_t shard = 0;   //!< target shard (shard faults)
    uint32_t tenant = 0;  //!< target tenant id (source faults); 0 = n/a
    uint64_t arg = 0;     //!< kind-specific magnitude (count / ns / cores)
    uint64_t arg2 = 0;    //!< kind-specific second magnitude
};

/** An ordered, deterministic schedule of faults. */
struct FaultPlan
{
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    FaultPlan &
    crash(SimTime at, uint32_t shard)
    {
        events.push_back({at, FaultKind::kShardCrash, shard, 0, 0, 0});
        return *this;
    }

    FaultPlan &
    failAllocs(SimTime at, uint32_t shard, uint64_t count)
    {
        events.push_back(
            {at, FaultKind::kAllocFail, shard, 0, count, 0});
        return *this;
    }

    FaultPlan &
    stallIngest(SimTime at, uint32_t tenant, SimTime duration)
    {
        events.push_back({at, FaultKind::kIngestStall, 0, tenant,
                          static_cast<uint64_t>(duration), 0});
        return *this;
    }

    FaultPlan &
    dropIngest(SimTime at, uint32_t tenant, uint64_t bundles)
    {
        events.push_back(
            {at, FaultKind::kIngestDrop, 0, tenant, bundles, 0});
        return *this;
    }

    FaultPlan &
    slowShard(SimTime at, uint32_t shard, unsigned cores,
              SimTime duration)
    {
        events.push_back({at, FaultKind::kSlowShard, shard, 0, cores,
                          static_cast<uint64_t>(duration)});
        return *this;
    }

    /** Sort into deterministic firing order. */
    void
    canonicalize()
    {
        std::stable_sort(events.begin(), events.end(),
                         [](const FaultEvent &a, const FaultEvent &b) {
                             if (a.at != b.at)
                                 return a.at < b.at;
                             return static_cast<uint8_t>(a.kind)
                                    < static_cast<uint8_t>(b.kind);
                         });
    }

    /**
     * Derive a chaos schedule from a seed: @p count faults scattered
     * uniformly over (0, horizon], kinds drawn from the full mix,
     * shard targets in [1, shards) (shard 0 hosts the fleet's control
     * plane, which is modelled as replicated — it degrades but never
     * crashes), tenant targets in [1, tenants]. The seed fully
     * determines the plan.
     */
    static FaultPlan
    scatter(uint64_t seed, SimTime horizon, uint32_t shards,
            uint32_t tenants, uint32_t count)
    {
        sbhbm_assert(horizon > 0, "chaos horizon must be positive");
        sbhbm_assert(tenants > 0, "chaos plan needs tenants");
        Rng rng(seed);
        FaultPlan plan;
        for (uint32_t i = 0; i < count; ++i) {
            FaultEvent e;
            e.at = 1 + static_cast<SimTime>(rng.nextBounded(
                       static_cast<uint64_t>(horizon)));
            // Crashes only when a non-control shard exists to kill.
            const uint64_t kinds = shards > 1 ? 5 : 4;
            const uint64_t k = rng.nextBounded(kinds);
            switch (shards > 1 ? k : k + 1) {
              case 0:
                e.kind = FaultKind::kShardCrash;
                e.shard = 1
                          + static_cast<uint32_t>(
                              rng.nextBounded(shards - 1));
                break;
              case 1:
                e.kind = FaultKind::kAllocFail;
                e.shard = static_cast<uint32_t>(rng.nextBounded(shards));
                e.arg = 1 + rng.nextBounded(3);
                break;
              case 2:
                e.kind = FaultKind::kIngestStall;
                e.tenant = 1
                           + static_cast<uint32_t>(
                               rng.nextBounded(tenants));
                e.arg = 1 + rng.nextBounded(
                            static_cast<uint64_t>(horizon / 8));
                break;
              case 3:
                e.kind = FaultKind::kIngestDrop;
                e.tenant = 1
                           + static_cast<uint32_t>(
                               rng.nextBounded(tenants));
                e.arg = 1 + rng.nextBounded(16);
                break;
              default:
                e.kind = FaultKind::kSlowShard;
                e.shard = static_cast<uint32_t>(rng.nextBounded(shards));
                e.arg = 1 + rng.nextBounded(4);
                e.arg2 = 1 + rng.nextBounded(
                             static_cast<uint64_t>(horizon / 8));
                break;
            }
            plan.events.push_back(e);
        }
        plan.canonicalize();
        return plan;
    }
};

/**
 * Arms a FaultPlan on a machine and fires each event through the
 * installed handler at its exact virtual time. Every firing is
 * recorded on a trace sink (category "fault", pid = target shard,
 * tid = target tenant) — a caller-supplied sink merges the fault
 * timeline into the run's unified trace, and fired() is a thin view
 * materialized back from those events, so the sink is the single
 * source of truth for reproducibility fingerprints.
 */
class FaultInjector
{
  public:
    using Handler = std::function<void(const FaultEvent &)>;

    /** @param sink shared trace sink; null = injector-private one. */
    FaultInjector(Machine &machine, FaultPlan plan, Handler handler,
                  obs::TraceSink *sink = nullptr)
        : machine_(machine), plan_(std::move(plan)),
          handler_(std::move(handler)),
          sink_(sink != nullptr ? sink : &own_sink_)
    {
        sbhbm_assert(handler_ != nullptr, "fault injector needs a handler");
        plan_.canonicalize();
    }

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Schedule every plan entry (daemon events: faults never keep an
     *  otherwise-finished run alive). */
    void
    arm()
    {
        sbhbm_assert(!armed_, "fault plan armed twice");
        armed_ = true;
        for (const FaultEvent &e : plan_.events) {
            machine_.at(
                e.at,
                [this, e] {
                    sink_->instant(
                        e.at, e.shard, e.tenant, "fault",
                        faultKindName(e.kind),
                        {{"kind", static_cast<uint64_t>(e.kind)},
                         {"arg", e.arg},
                         {"arg2", e.arg2}});
                    handler_(e);
                },
                /*daemon=*/true);
        }
    }

    const FaultPlan &plan() const { return plan_; }

    /**
     * Events that actually fired, in firing order: a view rebuilt
     * from the sink's "fault" events (everything a FaultEvent holds
     * round-trips through the recorded instant).
     */
    const std::vector<FaultEvent> &
    fired() const
    {
        fired_view_.clear();
        for (const obs::TraceEvent &t : sink_->events()) {
            if (std::strcmp(t.cat, "fault") != 0)
                continue;
            FaultEvent e;
            e.at = t.ts;
            e.kind = static_cast<FaultKind>(t.args[0].value);
            e.shard = t.pid;
            e.tenant = t.tid;
            e.arg = t.args[1].value;
            e.arg2 = t.args[2].value;
            fired_view_.push_back(e);
        }
        return fired_view_;
    }

  private:
    Machine &machine_;
    FaultPlan plan_;
    Handler handler_;
    obs::TraceSink own_sink_;
    obs::TraceSink *sink_;
    mutable std::vector<FaultEvent> fired_view_;
    bool armed_ = false;
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_FAULT_INJECTOR_H
