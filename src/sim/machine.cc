#include "sim/machine.h"

#include <algorithm>
#include <utility>

namespace sbhbm::sim {

struct Machine::TaskState
{
    CostLog cost;
    size_t phase_idx = 0;
    int outstanding = 0;
    Callback on_done;
};

Machine::Machine(MachineConfig cfg)
    : cfg_(std::move(cfg)),
      arbiters_{BandwidthArbiter(cfg_.dram.peak_seq_bw,
                                 cfg_.dram.peak_rand_bw),
                BandwidthArbiter(cfg_.hbm.peak_seq_bw,
                                 cfg_.hbm.peak_rand_bw)}
{
}

void
Machine::at(SimTime when, Callback cb, bool daemon)
{
    events_.schedule(when, std::move(cb), daemon);
}

void
Machine::after(SimTime delay, Callback cb, bool daemon)
{
    events_.schedule(now() + delay, std::move(cb), daemon);
}

void
Machine::atOrNow(SimTime when, Callback cb, bool daemon)
{
    events_.schedule(std::max(when, now()), std::move(cb), daemon);
}

double
Machine::tierRate(Tier tier) const
{
    return arbiters_[tierIndex(tier)].currentRate();
}

double
Machine::tierCumulativeBytes(Tier tier) const
{
    return arbiters_[tierIndex(tier)].cumulativeBytesAt(now());
}

double
Machine::flowCap(Tier tier, AccessPattern pattern) const
{
    const TierSpec &spec = cfg_.tier(tier);
    if (pattern == AccessPattern::kSequential)
        return spec.per_core_seq_bw;
    return spec.perCoreRandBw();
}

void
Machine::execute(CostLog cost, Callback on_done)
{
    auto task = std::make_shared<TaskState>();
    task->cost = std::move(cost);
    task->on_done = std::move(on_done);

    for (auto &arb : arbiters_)
        arb.advanceTo(now());
    startPhase(task);
    for (auto &arb : arbiters_)
        arb.recompute();
    armTimer();
}

void
Machine::startPhase(const std::shared_ptr<TaskState> &task)
{
    const auto &phases = task->cost.phases();

    // Skip empty phases.
    while (task->phase_idx < phases.size()) {
        const Phase &p = phases[task->phase_idx];
        if (p.cpu_ns > 0 || p.cpu_vector_ns > 0 || !p.flows.empty())
            break;
        ++task->phase_idx;
    }

    if (task->phase_idx >= phases.size()) {
        // Defer the completion to an event so callers never observe
        // re-entrant completion from within execute().
        events_.schedule(now(), [cb = std::move(task->on_done)] { cb(); });
        return;
    }

    const Phase &p = phases[task->phase_idx];
    ++task->phase_idx;

    task->outstanding = static_cast<int>(p.flows.size());
    const double cpu_total = p.cpu_ns / cfg_.scalar_speed
                           + p.cpu_vector_ns / cfg_.vector_speed;
    if (cpu_total > 0)
        ++task->outstanding;

    if (cpu_total > 0) {
        const auto dur = static_cast<SimTime>(cpu_total) + 1;
        events_.schedule(now() + dur, [this, task] {
            for (auto &arb : arbiters_)
                arb.advanceTo(now());
            finishPart(task);
            for (auto &arb : arbiters_)
                arb.recompute();
            armTimer();
        });
    }

    for (const Flow &f : p.flows) {
        sbhbm_assert(cfg_.tier(f.tier).peak_seq_bw > 0,
                     "flow on absent tier %s", tierName(f.tier));
        arbiters_[tierIndex(f.tier)].add(
            static_cast<double>(f.bytes), flowCap(f.tier, f.pattern),
            f.pattern, [this, task] { finishPart(task); });
    }
}

void
Machine::finishPart(const std::shared_ptr<TaskState> &task)
{
    sbhbm_assert(task->outstanding > 0, "phase part finished twice");
    if (--task->outstanding == 0)
        startPhase(task);
}

void
Machine::pump()
{
    for (auto &arb : arbiters_)
        arb.advanceTo(now());
    for (auto &arb : arbiters_) {
        for (auto &cb : arb.reapCompleted())
            cb();
    }
    for (auto &arb : arbiters_)
        arb.recompute();
    armTimer();
}

void
Machine::armTimer()
{
    SimTime next = kSimTimeNever;
    for (const auto &arb : arbiters_)
        next = std::min(next, arb.nextCompletion());
    if (next == kSimTimeNever)
        return;
    if (timer_at_ <= next && timer_at_ > now())
        return; // an earlier (or equal) check is already pending
    timer_at_ = next;
    events_.schedule(next, [this, when = next] {
        if (timer_at_ == when)
            timer_at_ = kSimTimeNever;
        pump();
    });
}

} // namespace sbhbm::sim
