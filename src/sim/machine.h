/**
 * @file
 * The simulated machine: virtual clock, per-tier bandwidth arbiters,
 * and execution of CostLogs in virtual time.
 *
 * The Machine does not know about cores or scheduling policy — the
 * runtime's Executor decides what runs when and merely asks the
 * Machine "how long does this work take, given everything else that
 * is in flight?" by submitting a CostLog. Phase completion times
 * emerge from the fluid bandwidth model, so concurrent tasks slow
 * each other down exactly when they contend for the same tier.
 */

#ifndef SBHBM_SIM_MACHINE_H
#define SBHBM_SIM_MACHINE_H

#include <functional>
#include <memory>

#include "common/units.h"
#include "sim/bandwidth_arbiter.h"
#include "sim/event_queue.h"
#include "sim/machine_config.h"
#include "sim/traffic.h"

namespace sbhbm::sim {

/** Discrete-event model of one hybrid-memory server. */
class Machine
{
  public:
    using Callback = std::function<void()>;

    explicit Machine(MachineConfig cfg);

    const MachineConfig &config() const { return cfg_; }
    unsigned cores() const { return cfg_.cores; }

    /** Current virtual time (ns). */
    SimTime now() const { return events_.now(); }

    /**
     * Schedule a callback at absolute virtual time. Daemon events
     * (periodic monitors) do not keep run() alive.
     */
    void at(SimTime when, Callback cb, bool daemon = false);

    /** Schedule a callback @p delay ns from now. */
    void after(SimTime delay, Callback cb, bool daemon = false);

    /**
     * Schedule a callback at absolute virtual time @p when, clamped
     * to now when @p when already passed (session arrivals replayed
     * from a fixed schedule, e.g. the serving layer's load driver).
     */
    void atOrNow(SimTime when, Callback cb, bool daemon = false);

    /**
     * Execute @p cost in virtual time; invokes @p on_done when the
     * final phase finishes. The caller is responsible for modelling
     * core occupancy (one in-flight execute() per simulated core).
     */
    void execute(CostLog cost, Callback on_done);

    /** Drive the event loop. */
    void run() { events_.run(); }
    void runUntil(SimTime limit) { events_.runUntil(limit); }
    bool step() { return events_.step(); }
    bool idle() const { return events_.empty(); }

    /**
     * Synchronize this machine's clock to global time @p when (a
     * forward jump; no-op when already there). Legal only while no
     * event earlier than @p when is pending — see
     * EventQueue::advanceTo. Arbiters advance lazily to now() at
     * their next use, so jumping the idle clock is safe.
     */
    void syncTo(SimTime when) { events_.advanceTo(when); }

    EventQueue &events() { return events_; }

    /** Instantaneous granted bandwidth on @p tier, bytes/sec. */
    double tierRate(Tier tier) const;

    /** Cumulative bytes transferred on @p tier since boot. */
    double tierCumulativeBytes(Tier tier) const;

    /** Per-flow bandwidth cap for one core on @p tier / @p pattern. */
    double flowCap(Tier tier, AccessPattern pattern) const;

  private:
    struct TaskState;

    void startPhase(const std::shared_ptr<TaskState> &task);
    void finishPart(const std::shared_ptr<TaskState> &task);

    /** Advance arbiters to now, fire drained flows, re-arm the timer. */
    void pump();

    /** Recompute allocations and schedule the next completion check. */
    void armTimer();

    MachineConfig cfg_;
    EventQueue events_;
    BandwidthArbiter arbiters_[kNumTiers];

    /** Time of the earliest pending completion-check event. */
    SimTime timer_at_ = kSimTimeNever;
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_MACHINE_H
