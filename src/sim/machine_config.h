/**
 * @file
 * Static description of a simulated machine (Table 3 of the paper).
 *
 * Substitution note (see DESIGN.md §2): the paper evaluates on real
 * hardware; we reproduce its resource envelope — core count, per-tier
 * bandwidth/latency/capacity, NIC rates — as a parameterized model.
 * All constants below are taken from Table 3 or calibrated against the
 * measurements in Figure 2.
 */

#ifndef SBHBM_SIM_MACHINE_CONFIG_H
#define SBHBM_SIM_MACHINE_CONFIG_H

#include <cstdint>
#include <string>

#include "common/units.h"
#include "sim/tier.h"

namespace sbhbm::sim {

/** Bandwidth/latency/capacity envelope of one memory tier. */
struct TierSpec
{
    /** Addressable capacity in bytes. */
    uint64_t capacity_bytes = 0;

    /** Aggregate sequential (streaming) bandwidth in bytes/sec. */
    double peak_seq_bw = 0;

    /**
     * Aggregate bandwidth achievable with a pure random-access mix,
     * in bytes/sec. DRAM-type memories lose roughly half their peak
     * to row-buffer misses and channel under-utilization.
     */
    double peak_rand_bw = 0;

    /** Unloaded access latency in nanoseconds. */
    double latency_ns = 0;

    /**
     * Per-core sequential streaming bandwidth cap in bytes/sec: one
     * core cannot issue enough line fills to use the whole bus. On
     * KNL this is what makes HBM useless at low parallelism (Fig 2).
     */
    double per_core_seq_bw = 0;

    /**
     * Effective memory-level parallelism of one core performing
     * dependent random accesses (hash probes, pointer chasing).
     * Per-core random bandwidth = mlp * 64B / latency.
     */
    double random_mlp = 0;

    /** Per-core random-access bandwidth in bytes/sec. */
    double
    perCoreRandBw() const
    {
        return random_mlp * 64.0 / (latency_ns * 1e-9);
    }
};

/** Whether HBM is software-visible (flat) or a hardware cache. */
enum class MemoryMode : uint8_t {
    kFlat = 0,   //!< both tiers addressable; software places data
    kCache = 1,  //!< HBM is a hardware-managed cache in front of DRAM
    kDramOnly = 2, //!< HBM disabled (ablation: StreamBox-HBM DRAM)
};

/** Full machine description. */
struct MachineConfig
{
    std::string name;

    /** Number of physical cores the runtime may use. */
    unsigned cores = 1;

    /**
     * Scalar-work speed factor relative to a KNL core (1.3 GHz,
     * in-order-ish Silvermont derivative). Big Xeon cores run
     * branchy scalar code (e.g. parsing) 3-4x faster (Fig 11).
     */
    double scalar_speed = 1.0;

    /** Vectorized-kernel speed factor relative to a KNL core. */
    double vector_speed = 1.0;

    TierSpec hbm;
    TierSpec dram;

    MemoryMode mode = MemoryMode::kFlat;

    /** Ingestion NIC payload bandwidth, bytes/sec. */
    double nic_rdma_bw = 0;
    double nic_ethernet_bw = 0;

    bool hasHbm() const { return hbm.capacity_bytes > 0; }

    const TierSpec &
    tier(Tier t) const
    {
        return t == Tier::kHbm ? hbm : dram;
    }

    /**
     * The KNL box of Table 3: Xeon Phi 7210, 64 cores @ 1.3 GHz,
     * 16 GB HBM (375 GB/s, 172 ns), 96 GB DDR4 (80 GB/s, 143 ns),
     * 40 Gb/s Infiniband + 10 GbE.
     */
    static MachineConfig
    knl()
    {
        MachineConfig m;
        m.name = "KNL";
        m.cores = 64;
        m.scalar_speed = 1.0;
        m.vector_speed = 1.0;
        m.hbm = TierSpec{
            .capacity_bytes = 16_GiB,
            // MCDRAM's bandwidth advantage exists only for streaming:
            // under a dependent random-access mix its higher latency
            // eats the wider bus, and measured random throughput is
            // on par with DDR4 (why Hash gains ~10% from HBM, Fig 2).
            .peak_seq_bw = 375_GBps,
            .peak_rand_bw = 46_GBps,
            .latency_ns = 172.0,
            // Calibrated against Fig 2: sort on HBM == sort on DRAM
            // below ~16 cores, and HBM sort keeps scaling to 64 cores
            // (aggregate ~350 GB/s at 64 cores => ~5.5 GB/s/core).
            .per_core_seq_bw = 5.6_GBps,
            .random_mlp = 4.0,
        };
        m.dram = TierSpec{
            .capacity_bytes = 96_GiB,
            .peak_seq_bw = 80_GBps,
            .peak_rand_bw = 44_GBps,
            .latency_ns = 143.0,
            .per_core_seq_bw = 5.6_GBps,
            .random_mlp = 4.0,
        };
        // Effective RDMA payload of the 40 Gb/s Infiniband link:
        // 8b/10b encoding plus transport headers leave ~2.6 GB/s of
        // record payload — exactly the 110 M rec/s x 24 B ingestion
        // ceiling the paper reports for Windowed Average.
        m.nic_rdma_bw = 2.6_GBps;
        m.nic_ethernet_bw = 10_Gbps;
        return m;
    }

    /**
     * The X56 box of Table 3: 4-socket Broadwell E7-4830v4, 56 cores
     * @ 2.0 GHz, 256 GB DDR4 (87 GB/s, 131 ns), 10 GbE. No HBM.
     */
    static MachineConfig
    x56()
    {
        MachineConfig m;
        m.name = "X56";
        m.cores = 56;
        m.scalar_speed = 3.5; // Fig 11: parsing 3-4x faster than KNL
        m.vector_speed = 1.6; // wide OoO core, but AVX2 not AVX-512
        m.hbm = TierSpec{};   // no HBM tier
        m.dram = TierSpec{
            .capacity_bytes = 256_GiB,
            .peak_seq_bw = 87_GBps,
            .peak_rand_bw = 52_GBps,
            .latency_ns = 131.0,
            .per_core_seq_bw = 9.0_GBps,
            .random_mlp = 8.0,
        };
        m.nic_rdma_bw = 0;
        m.nic_ethernet_bw = 10_Gbps;
        return m;
    }
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_MACHINE_CONFIG_H
