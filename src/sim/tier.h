/**
 * @file
 * Memory tier and access-pattern enums shared by the machine model and
 * the memory subsystem.
 */

#ifndef SBHBM_SIM_TIER_H
#define SBHBM_SIM_TIER_H

#include <cstdint>

namespace sbhbm::sim {

/**
 * Physical memory tier of the simulated machine. The paper's KNL box
 * couples commodity DDR4 (high capacity, limited bandwidth) with
 * 3D-stacked HBM (limited capacity, high bandwidth, slightly higher
 * latency) in flat mode.
 */
enum class Tier : uint8_t {
    kDram = 0,
    kHbm = 1,
};

constexpr int kNumTiers = 2;

/** Index usable for per-tier arrays. */
constexpr int
tierIndex(Tier t)
{
    return static_cast<int>(t);
}

constexpr const char *
tierName(Tier t)
{
    return t == Tier::kHbm ? "HBM" : "DRAM";
}

/**
 * Memory access pattern of one task phase. Sequential access streams
 * cache lines and can exploit a tier's full bandwidth; random access is
 * bound by latency times the core's memory-level parallelism.
 */
enum class AccessPattern : uint8_t {
    kSequential = 0,
    kRandom = 1,
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_TIER_H
