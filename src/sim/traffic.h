/**
 * @file
 * Cost logging: how executed work describes itself to the timing model.
 *
 * Code in the engine runs *functionally* on the host (sorts really
 * sort), and records what the same work would have cost on the
 * simulated machine: CPU nanoseconds plus memory traffic per tier and
 * access pattern. The Machine turns a CostLog into virtual time.
 */

#ifndef SBHBM_SIM_TRAFFIC_H
#define SBHBM_SIM_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "sim/tier.h"

namespace sbhbm::sim {

/** One memory stream within a phase. */
struct Flow
{
    Tier tier = Tier::kDram;
    AccessPattern pattern = AccessPattern::kSequential;
    uint64_t bytes = 0;
};

/**
 * One serially-executed step of a task: some CPU work overlapped with
 * up to a few memory streams. The phase finishes when the CPU work is
 * done *and* all its flows have drained (roofline-style overlap).
 */
struct Phase
{
    /** Scalar (branchy) CPU work, scaled by MachineConfig::scalar_speed. */
    double cpu_ns = 0;

    /** Vectorized kernel work, scaled by MachineConfig::vector_speed. */
    double cpu_vector_ns = 0;

    std::vector<Flow> flows;

    uint64_t
    totalBytes() const
    {
        uint64_t sum = 0;
        for (const auto &f : flows)
            sum += f.bytes;
        return sum;
    }
};

/**
 * Ordered list of phases a task charges to the simulated machine.
 * Helper methods append to the *current* (last) phase; nextPhase()
 * introduces a serial dependency.
 */
class CostLog
{
  public:
    CostLog() { phases_.emplace_back(); }

    /** Start a new phase that begins only after the previous one. */
    void nextPhase() { phases_.emplace_back(); }

    /** Charge scalar CPU work to the current phase. */
    void
    cpu(double ns)
    {
        sbhbm_assert(ns >= 0, "negative cpu cost");
        phases_.back().cpu_ns += ns;
    }

    /** Charge vectorized-kernel CPU work to the current phase. */
    void
    cpuVector(double ns)
    {
        sbhbm_assert(ns >= 0, "negative cpu cost");
        phases_.back().cpu_vector_ns += ns;
    }

    /** Charge a memory stream to the current phase. */
    void
    mem(Tier tier, AccessPattern pattern, uint64_t bytes)
    {
        if (bytes == 0)
            return;
        // Coalesce with an existing flow of the same kind.
        for (auto &f : phases_.back().flows) {
            if (f.tier == tier && f.pattern == pattern) {
                f.bytes += bytes;
                return;
            }
        }
        phases_.back().flows.push_back(Flow{tier, pattern, bytes});
    }

    void
    seq(Tier tier, uint64_t bytes)
    {
        mem(tier, AccessPattern::kSequential, bytes);
    }

    void
    rand(Tier tier, uint64_t bytes)
    {
        mem(tier, AccessPattern::kRandom, bytes);
    }

    /** Append all phases of @p other after the current phase. */
    void
    append(const CostLog &other)
    {
        for (const auto &p : other.phases_) {
            if (p.cpu_ns == 0 && p.cpu_vector_ns == 0 && p.flows.empty())
                continue;
            nextPhase();
            phases_.back() = p;
        }
    }

    const std::vector<Phase> &phases() const { return phases_; }

    double
    totalCpuNs() const
    {
        double sum = 0;
        for (const auto &p : phases_)
            sum += p.cpu_ns + p.cpu_vector_ns;
        return sum;
    }

    uint64_t
    totalBytes() const
    {
        uint64_t sum = 0;
        for (const auto &p : phases_)
            sum += p.totalBytes();
        return sum;
    }

    uint64_t
    bytesOn(Tier tier) const
    {
        uint64_t sum = 0;
        for (const auto &p : phases_)
            for (const auto &f : p.flows)
                if (f.tier == tier)
                    sum += f.bytes;
        return sum;
    }

    bool
    empty() const
    {
        for (const auto &p : phases_)
            if (p.cpu_ns > 0 || p.cpu_vector_ns > 0 || !p.flows.empty())
                return false;
        return true;
    }

  private:
    std::vector<Phase> phases_;
};

} // namespace sbhbm::sim

#endif // SBHBM_SIM_TRAFFIC_H
