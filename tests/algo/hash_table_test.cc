#include "algo/hash_table.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace sbhbm::algo {
namespace {

TEST(HashTable, InsertFindRoundTrip)
{
    HashTable<uint64_t> t(100);
    t.findOrInsert(42) = 7;
    t.findOrInsert(43) = 8;
    ASSERT_NE(t.find(42), nullptr);
    EXPECT_EQ(*t.find(42), 7u);
    EXPECT_EQ(*t.find(43), 8u);
    EXPECT_EQ(t.find(44), nullptr);
    EXPECT_EQ(t.size(), 2u);
}

TEST(HashTable, FindOrInsertIsIdempotent)
{
    HashTable<uint64_t> t(10);
    t.findOrInsert(5) = 100;
    t.findOrInsert(5) += 1;
    EXPECT_EQ(*t.find(5), 101u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(HashTable, AgreesWithStdMapOnRandomWorkload)
{
    Rng rng(99);
    HashTable<uint64_t> t(20000);
    std::map<uint64_t, uint64_t> ref;
    for (int i = 0; i < 20000; ++i) {
        const uint64_t k = rng.nextBounded(5000); // plenty of collisions
        t.findOrInsert(k) += 1;
        ref[k] += 1;
    }
    EXPECT_EQ(t.size(), ref.size());
    for (const auto &[k, v] : ref) {
        ASSERT_NE(t.find(k), nullptr) << k;
        EXPECT_EQ(*t.find(k), v) << k;
    }
}

TEST(HashTable, ForEachVisitsEveryEntryOnce)
{
    HashTable<uint64_t> t(100);
    for (uint64_t k = 0; k < 50; ++k)
        t.findOrInsert(k * 1000) = k;
    uint64_t count = 0, key_sum = 0;
    t.forEach([&](uint64_t k, const uint64_t &v) {
        ++count;
        key_sum += k;
        EXPECT_EQ(v, k / 1000);
    });
    EXPECT_EQ(count, 50u);
    EXPECT_EQ(key_sum, 1000u * (49 * 50 / 2));
}

TEST(HashTable, ProbeCountsGrowWithLoad)
{
    HashTable<uint64_t> t(1000);
    Rng rng(1);
    size_t total_probes = 0;
    for (int i = 0; i < 1000; ++i) {
        size_t probes = 0;
        t.findOrInsert(rng.next(), &probes) = 1;
        total_probes += probes;
    }
    // Linear probing at <= 87% load: average probe count stays small.
    EXPECT_GE(total_probes, 1000u);
    EXPECT_LT(total_probes, 4000u);
}

TEST(HashTable, CapacityIsPowerOfTwoAboveHint)
{
    HashTable<int> t(1000);
    EXPECT_GE(t.capacity(), 1000u + 1000u / 7);
    EXPECT_EQ(t.capacity() & (t.capacity() - 1), 0u);
}

TEST(HashTable, ZeroKeyIsAValidKey)
{
    HashTable<uint64_t> t(10);
    t.findOrInsert(0) = 99;
    ASSERT_NE(t.find(0), nullptr);
    EXPECT_EQ(*t.find(0), 99u);
}

TEST(HashTable, FootprintCoversSlots)
{
    HashTable<uint64_t> t(1000);
    EXPECT_GE(t.footprintBytes(), t.capacity() * 16);
}

} // namespace
} // namespace sbhbm::algo
