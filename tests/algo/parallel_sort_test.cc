/**
 * @file
 * The bit-identity contract of the parallel sort kernels: at every
 * thread count, sortRunParallel / mergeRunsParallel must produce
 * byte-for-byte the serial kernel's output (the merge-path slicing
 * and pairwise dispatch may only change the wall clock), and sortKpa
 * on a pooled Ctx must charge byte-for-byte the serial CostLog.
 */

#include "algo/sort.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/worker_pool.h"
#include "kpa/primitives.h"
#include "sim/machine_config.h"

namespace sbhbm::algo {
namespace {

std::vector<KpEntry>
randomEntries(size_t n, uint64_t seed, uint64_t key_range = ~0ull)
{
    Rng rng(seed);
    std::vector<KpEntry> v(n);
    for (size_t i = 0; i < n; ++i) {
        v[i].key = key_range == ~0ull ? rng.next()
                                      : rng.nextBounded(key_range);
        // Row pointers double as identity tags: bit-identity checks
        // compare them, not just keys.
        v[i].row = reinterpret_cast<uint64_t *>(i + 1);
    }
    return v;
}

bool
sameEntries(const std::vector<KpEntry> &a, const std::vector<KpEntry> &b)
{
    return a.size() == b.size()
           && (a.empty()
               || std::memcmp(a.data(), b.data(),
                              a.size() * sizeof(KpEntry))
                      == 0);
}

TEST(ParallelSort, BitIdenticalToSerialAcrossThreadCounts)
{
    // Sizes straddle the block size, the parallel threshold, both
    // merge-pass parities and non-power-of-two tails.
    const size_t sizes[] = {0,
                            1,
                            2,
                            63,
                            64,
                            65,
                            1000,
                            4096,
                            kParallelSortMin - 1,
                            kParallelSortMin,
                            kParallelSortMin + 17,
                            size_t{1} << 17,
                            (size_t{1} << 17) + (size_t{1} << 16) + 3};
    for (const uint64_t key_range : {~uint64_t{0}, uint64_t{256}}) {
        for (const size_t n : sizes) {
            const auto input = randomEntries(n, 77 + n, key_range);
            std::vector<KpEntry> serial = input, scratch(n);
            sortRun(serial.data(), n, scratch.data());
            for (const unsigned threads : {1u, 2u, 8u}) {
                WorkerPool pool(threads);
                std::vector<KpEntry> par = input, par_scratch(n);
                sortRunParallel(par.data(), n, par_scratch.data(),
                                pool);
                EXPECT_TRUE(sameEntries(serial, par))
                    << "n=" << n << " threads=" << threads
                    << " key_range=" << key_range;
            }
        }
    }
}

TEST(ParallelSort, PresortedInputUntouchedAtEveryThreadCount)
{
    const size_t n = size_t{1} << 16;
    auto input = randomEntries(n, 3);
    std::vector<KpEntry> scratch(n);
    sortRun(input.data(), n, scratch.data());
    const auto sorted = input;
    for (const unsigned threads : {1u, 2u, 8u}) {
        WorkerPool pool(threads);
        auto work = sorted;
        sortRunParallel(work.data(), n, scratch.data(), pool);
        EXPECT_TRUE(sameEntries(sorted, work)) << threads;
    }
}

TEST(ParallelSort, AllEqualKeysKeepOriginalOrder)
{
    // Equal keys everywhere makes every merge-path split degenerate:
    // the a-run must win every tie on every slice for the output to
    // stay bit-identical (and, here, order-preserving).
    const size_t n = (size_t{1} << 15) + 321;
    std::vector<KpEntry> input(n);
    for (size_t i = 0; i < n; ++i)
        input[i] = KpEntry{42, reinterpret_cast<uint64_t *>(i + 1)};
    std::vector<KpEntry> scratch(n);
    auto serial = input;
    sortRun(serial.data(), n, scratch.data());
    for (const unsigned threads : {2u, 8u}) {
        WorkerPool pool(threads);
        auto par = input;
        sortRunParallel(par.data(), n, scratch.data(), pool);
        EXPECT_TRUE(sameEntries(serial, par)) << threads;
    }
}

TEST(ParallelSort, MergeRunsParallelMatchesSerial)
{
    for (const auto &[na, nb] :
         {std::pair<size_t, size_t>{1u << 16, 1u << 16},
          {1u << 16, 777},
          {777, 1u << 16},
          {1u << 16, 0},
          {0, 1u << 16}}) {
        auto a = randomEntries(na, 11, 512);
        auto b = randomEntries(nb, 12, 512);
        std::vector<KpEntry> sa(na), sb(nb);
        sortRun(a.data(), na, sa.data());
        sortRun(b.data(), nb, sb.data());
        std::vector<KpEntry> serial(na + nb);
        mergeRuns(a.data(), na, b.data(), nb, serial.data());
        for (const unsigned threads : {1u, 2u, 8u}) {
            WorkerPool pool(threads);
            std::vector<KpEntry> par(na + nb);
            mergeRunsParallel(a.data(), na, b.data(), nb, par.data(),
                              pool);
            EXPECT_TRUE(sameEntries(serial, par))
                << na << "+" << nb << " @" << threads;
        }
    }
}

/**
 * Golden CostLog equality: the charges of sortKpa depend only on the
 * entry count, so a pooled Ctx at 1/2/8 threads must log the very
 * same bytes and nanoseconds as the serial Ctx — bit for bit, since
 * the arithmetic is identical — while producing identical entries.
 */
TEST(ParallelSortKpa, CostLogAndEntriesEqualSerialAtEveryThreadCount)
{
    sim::MachineConfig cfg = sim::MachineConfig::knl();
    mem::HybridMemory hm(cfg, sim::MemoryMode::kFlat);
    const kpa::Placement hbm{mem::Tier::kHbm, false};

    // One shared bundle => every extracted KPA carries identical row
    // pointers, so entry arrays can be memcmp'd across runs.
    const uint32_t n = 1u << 16; // above kParallelSortMin
    Rng rng(9);
    columnar::BundleHandle b = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm, 2, n));
    uint64_t *row = b->appendBlockRaw(n);
    for (uint32_t r = 0; r < n; ++r, row += 2) {
        row[0] = rng.nextBounded(1000); // dup-heavy keys
        row[1] = r;
    }

    sim::CostLog extract_log;
    kpa::KpaPtr serial_k =
        kpa::extract(kpa::Ctx{hm, extract_log}, *b, 0, hbm);
    sim::CostLog serial_log;
    kpa::sortKpa(kpa::Ctx{hm, serial_log}, *serial_k);

    for (const unsigned threads : {1u, 2u, 8u}) {
        WorkerPool pool(threads);
        sim::CostLog ex_log;
        kpa::KpaPtr k =
            kpa::extract(kpa::Ctx{hm, ex_log, 1.0, &pool}, *b, 0, hbm);
        sim::CostLog log;
        kpa::sortKpa(kpa::Ctx{hm, log, 1.0, &pool}, *k);

        EXPECT_EQ(log.bytesOn(sim::Tier::kHbm),
                  serial_log.bytesOn(sim::Tier::kHbm))
            << threads;
        EXPECT_EQ(log.bytesOn(sim::Tier::kDram),
                  serial_log.bytesOn(sim::Tier::kDram))
            << threads;
        // Same doubles from the same arithmetic: exact equality.
        EXPECT_EQ(log.totalCpuNs(), serial_log.totalCpuNs())
            << threads;

        ASSERT_EQ(k->size(), serial_k->size());
        EXPECT_EQ(std::memcmp(k->entries(), serial_k->entries(),
                              uint64_t{n} * sizeof(KpEntry)),
                  0)
            << threads;
        EXPECT_TRUE(k->sorted());
    }
}

} // namespace
} // namespace sbhbm::algo
