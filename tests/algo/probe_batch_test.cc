/**
 * @file
 * Equivalence of the batched hash-probe paths with the scalar ones:
 * findBatch must return exactly what per-key find() returns (same
 * slot addresses), and findOrInsertBatch must leave the table in the
 * byte-identical layout a scalar findOrInsert loop produces — on
 * random keys, duplicate-heavy streams, and adversarial collision
 * chains.
 */

#include "algo/hash_table.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace sbhbm::algo {
namespace {

/** Keys whose home bucket is exactly @p bucket in a table of 2^bits. */
std::vector<uint64_t>
collidingKeys(size_t count, uint64_t bucket, size_t mask)
{
    std::vector<uint64_t> keys;
    for (uint64_t k = 1; keys.size() < count; ++k)
        if ((hashKey(k) & mask) == bucket)
            keys.push_back(k);
    return keys;
}

TEST(ProbeBatch, FindBatchMatchesScalarOnRandomKeys)
{
    HashTable<uint64_t> table(10000);
    Rng rng(1);
    std::vector<uint64_t> present;
    for (uint32_t i = 0; i < 10000; ++i) {
        const uint64_t k = rng.next();
        table.findOrInsert(k) = i;
        present.push_back(k);
    }
    // Probe a mix of present and absent keys, crossing several
    // batch boundaries and ending on a partial batch.
    std::vector<uint64_t> probes;
    Rng prng(2);
    for (uint32_t i = 0; i < 3 * 16 + 7; ++i) {
        probes.push_back(i % 2 == 0
                             ? present[prng.nextBounded(present.size())]
                             : prng.next());
    }
    std::vector<uint64_t *> out(probes.size());
    table.findBatch(probes.data(),
                    static_cast<uint32_t>(probes.size()), out.data());
    for (size_t i = 0; i < probes.size(); ++i)
        EXPECT_EQ(out[i], table.find(probes[i])) << "probe " << i;
}

TEST(ProbeBatch, FindBatchMatchesScalarOnAdversarialCollisions)
{
    HashTable<uint64_t> table(900); // 1024 slots
    const size_t mask = table.capacity() - 1;
    // One long chain: 64 keys whose home slot is the same bucket,
    // inserted back to back => linear-probe cluster of length 64.
    const auto chain = collidingKeys(64, 7, mask);
    for (size_t i = 0; i < chain.size(); ++i)
        table.findOrInsert(chain[i]) = i;
    // Probe the whole chain, plus absent keys homed inside the
    // cluster (their probes walk to the first empty slot).
    std::vector<uint64_t> probes = chain;
    const auto more = collidingKeys(80, 7, mask);
    probes.insert(probes.end(), more.begin() + 64, more.end());
    for (uint64_t b : {uint64_t{8}, uint64_t{30}, uint64_t{70}}) {
        const auto homed = collidingKeys(1, b, mask);
        probes.push_back(homed[0]);
    }
    std::vector<uint64_t *> out(probes.size());
    table.findBatch(probes.data(),
                    static_cast<uint32_t>(probes.size()), out.data());
    for (size_t i = 0; i < probes.size(); ++i)
        EXPECT_EQ(out[i], table.find(probes[i])) << "probe " << i;
}

/** forEach order is slot order: a layout fingerprint. */
std::vector<std::pair<uint64_t, uint64_t>>
layoutOf(const HashTable<uint64_t> &t)
{
    std::vector<std::pair<uint64_t, uint64_t>> v;
    t.forEach([&](uint64_t k, const uint64_t &val) {
        v.emplace_back(k, val);
    });
    return v;
}

TEST(ProbeBatch, FindOrInsertBatchLayoutIdenticalToScalarLoop)
{
    // Wide-dup upsert stream with collisions mixed in: resolution
    // order decides the slot layout, so layout equality pins that
    // the batch resolves strictly in key order.
    Rng rng(3);
    std::vector<uint64_t> keys;
    for (uint32_t i = 0; i < 5000; ++i)
        keys.push_back(rng.nextBounded(700)); // heavy duplication
    HashTable<uint64_t> scalar(1000), batched(1000);
    const auto chain =
        collidingKeys(40, 13, scalar.capacity() - 1);
    for (size_t i = 0; i < chain.size(); ++i)
        keys.insert(keys.begin() + static_cast<long>(i * 100),
                    chain[i]);

    for (uint64_t k : keys)
        ++scalar.findOrInsert(k);
    batched.findOrInsertBatch(
        keys.data(), static_cast<uint32_t>(keys.size()),
        [](uint32_t, uint64_t &count) { ++count; });

    EXPECT_EQ(scalar.size(), batched.size());
    EXPECT_EQ(layoutOf(scalar), layoutOf(batched));
}

TEST(ProbeBatch, FindOrInsertBatchVisitsInKeyOrder)
{
    HashTable<uint64_t> table(100);
    const uint64_t keys[] = {9, 9, 1, 9, 2, 1, 9}; // dups in-batch
    std::vector<uint32_t> order;
    std::vector<uint64_t> counts;
    table.findOrInsertBatch(keys, 7,
                            [&](uint32_t i, uint64_t &count) {
                                order.push_back(i);
                                counts.push_back(++count);
                            });
    EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6}));
    // Duplicates within one batch must observe each other's inserts:
    // the running count per key grows exactly as a scalar loop's.
    EXPECT_EQ(counts, (std::vector<uint64_t>{1, 2, 1, 3, 1, 2, 4}));
}

} // namespace
} // namespace sbhbm::algo
