#include "algo/sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "common/rng.h"

namespace sbhbm::algo {
namespace {

std::vector<KpEntry>
randomEntries(size_t n, uint64_t seed, uint64_t key_range = ~0ull)
{
    Rng rng(seed);
    std::vector<KpEntry> v(n);
    for (size_t i = 0; i < n; ++i) {
        v[i].key = key_range == ~0ull ? rng.next()
                                      : rng.nextBounded(key_range);
        // Row pointers double as identity tags for permutation checks.
        v[i].row = reinterpret_cast<uint64_t *>(i + 1);
    }
    return v;
}

/** Check out is a sorted permutation of in (keys AND attached rows). */
void
expectSortedPermutation(const std::vector<KpEntry> &in,
                        const std::vector<KpEntry> &out)
{
    ASSERT_EQ(in.size(), out.size());
    EXPECT_TRUE(isSortedByKey(out.data(), out.size()));
    // Every (key, row) pair must survive exactly once.
    std::map<std::pair<uint64_t, uint64_t *>, int> bag;
    for (const auto &e : in)
        ++bag[{e.key, e.row}];
    for (const auto &e : out)
        --bag[{e.key, e.row}];
    for (const auto &[k, v] : bag)
        ASSERT_EQ(v, 0) << "multiset mismatch";
}

TEST(BitonicSort, SortsAllPowerOfTwoSizes)
{
    for (size_t n : {2, 4, 8, 16, 32, 64}) {
        auto v = randomEntries(n, 42 + n);
        auto orig = v;
        bitonicSortPow2(v.data(), n);
        expectSortedPermutation(orig, v);
    }
}

TEST(BitonicSort, HandlesDuplicateKeys)
{
    auto v = randomEntries(64, 7, /*key_range=*/4);
    auto orig = v;
    bitonicSortPow2(v.data(), 64);
    expectSortedPermutation(orig, v);
}

TEST(SortBlock, TailSizesUseInsertionSort)
{
    for (size_t n : {0, 1, 3, 17, 63}) {
        auto v = randomEntries(n, 100 + n);
        auto orig = v;
        sortBlock(v.data(), n);
        expectSortedPermutation(orig, v);
    }
}

TEST(MergeRuns, MergesTwoSortedRuns)
{
    auto a = randomEntries(100, 1);
    auto b = randomEntries(57, 2);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<KpEntry> out(157);
    mergeRuns(a.data(), a.size(), b.data(), b.size(), out.data());
    EXPECT_TRUE(isSortedByKey(out.data(), out.size()));
}

TEST(MergeRuns, EmptySideIsACopy)
{
    auto a = randomEntries(10, 3);
    std::sort(a.begin(), a.end());
    std::vector<KpEntry> out(10);
    mergeRuns(a.data(), a.size(), nullptr, 0, out.data());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(out[i].key, a[i].key);
}

class SortRunTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(SortRunTest, SortsArbitrarySizes)
{
    const size_t n = GetParam();
    auto v = randomEntries(n, 1000 + n);
    auto orig = v;
    std::vector<KpEntry> scratch(n);
    sortRun(v.data(), n, scratch.data());
    expectSortedPermutation(orig, v);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortRunTest,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 127, 128,
                                           129, 1000, 4096, 8191, 10000,
                                           65536, 100001));

TEST(SortRun, ResultLandsInDataForBothMergeParities)
{
    // The ping-pong parity is precomputed so no final copy-back pass
    // runs: verify `data` holds the sorted result on either side of
    // every level-count boundary.
    for (size_t n : {65ul, 128ul, 129ul, 256ul, 257ul, 8192ul, 8193ul}) {
        SCOPED_TRACE(n);
        auto v = randomEntries(n, 7000 + n);
        auto orig = v;
        std::vector<KpEntry> scratch(n);
        sortRun(v.data(), n, scratch.data());
        expectSortedPermutation(orig, v);
    }
}

TEST(SortRun, AlreadySortedStaysSorted)
{
    auto v = randomEntries(5000, 5);
    std::vector<KpEntry> scratch(v.size());
    sortRun(v.data(), v.size(), scratch.data());
    auto copy = v;
    sortRun(v.data(), v.size(), scratch.data());
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(v[i].key, copy[i].key);
}

TEST(SortRun, HeavilySkewedKeysSortCorrectly)
{
    // Paper §6: "our grouping primitives, e.g. sort and merge, are
    // insensitive to key skewness" — at least they must be correct.
    auto v = randomEntries(10000, 6, /*key_range=*/3);
    auto orig = v;
    std::vector<KpEntry> scratch(v.size());
    sortRun(v.data(), v.size(), scratch.data());
    expectSortedPermutation(orig, v);
}

TEST(MergeLevels, CountsPassesAboveBlockSort)
{
    EXPECT_EQ(mergeLevels(64), 0);
    EXPECT_EQ(mergeLevels(65), 1);
    EXPECT_EQ(mergeLevels(128), 1);
    EXPECT_EQ(mergeLevels(129), 2);
    EXPECT_EQ(mergeLevels(64 * 1024), 10);
}

TEST(MergePathSplit, SplitsProduceValidPrefixes)
{
    auto a = randomEntries(1000, 11);
    auto b = randomEntries(800, 12);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    // Reference: full merge.
    std::vector<KpEntry> full(1800);
    mergeRuns(a.data(), a.size(), b.data(), b.size(), full.data());

    for (size_t diag : {0ul, 1ul, 500ul, 900ul, 1799ul, 1800ul}) {
        size_t ai = 0, bi = 0;
        mergePathSplit(a.data(), a.size(), b.data(), b.size(), diag, &ai,
                       &bi);
        ASSERT_EQ(ai + bi, diag);
        // Merging the two prefixes yields exactly the first diag outputs
        // of the full merge (by key; ties may permute).
        std::vector<KpEntry> part(diag);
        mergeRuns(a.data(), ai, b.data(), bi, part.data());
        for (size_t i = 0; i < diag; ++i)
            ASSERT_EQ(part[i].key, full[i].key) << "diag=" << diag;
    }
}

TEST(MergePathSplit, ParallelMergeViaSplitsEqualsSequentialMerge)
{
    auto a = randomEntries(4096, 21);
    auto b = randomEntries(4000, 22);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    const size_t total = a.size() + b.size();

    std::vector<KpEntry> expect(total);
    mergeRuns(a.data(), a.size(), b.data(), b.size(), expect.data());

    // Simulate 8 threads each merging one slice.
    std::vector<KpEntry> out(total);
    const size_t threads = 8;
    for (size_t t = 0; t < threads; ++t) {
        const size_t d0 = total * t / threads;
        const size_t d1 = total * (t + 1) / threads;
        size_t a0, b0, a1, b1;
        mergePathSplit(a.data(), a.size(), b.data(), b.size(), d0, &a0,
                       &b0);
        mergePathSplit(a.data(), a.size(), b.data(), b.size(), d1, &a1,
                       &b1);
        mergeRuns(a.data() + a0, a1 - a0, b.data() + b0, b1 - b0,
                  out.data() + d0);
    }
    for (size_t i = 0; i < total; ++i)
        ASSERT_EQ(out[i].key, expect[i].key);
}

/**
 * Regression for the adaptive presorted early-out: nearly-sorted
 * input (exactly one inversion) must abandon the early-out at the
 * inversion and still produce correct output. Before this test, the
 * adaptive path was only ever exercised on fully-sorted input.
 */
TEST(SortRun, NearlySortedOneInversionStillSortsCorrectly)
{
    const size_t n = 5000; // several merge levels above the blocks
    // Inversion positions: front, inside the first block, straddling
    // a block boundary, mid-array, and the very last pair.
    for (const size_t p :
         {size_t{0}, size_t{30}, kSortBlock - 1, n / 2, n - 2}) {
        std::vector<KpEntry> v(n), scratch(n);
        for (size_t i = 0; i < n; ++i)
            v[i] = KpEntry{i, reinterpret_cast<uint64_t *>(i + 1)};
        std::swap(v[p], v[p + 1]); // the one inversion
        ASSERT_FALSE(isSortedByKey(v.data(), n));
        sortRun(v.data(), n, scratch.data());
        // Distinct keys: the sorted arrangement is unique, so the
        // payloads must come back to exactly their original slots.
        for (size_t i = 0; i < n; ++i) {
            ASSERT_EQ(v[i].key, i) << "inversion at " << p;
            ASSERT_EQ(v[i].row, reinterpret_cast<uint64_t *>(i + 1))
                << "inversion at " << p;
        }
    }
}

/** Same regression with duplicate keys and the parallel kernel. */
TEST(SortRun, NearlySortedWithDuplicatesMatchesSerialAtAllThreads)
{
    const size_t n = (size_t{1} << 15) + 100; // above parallel min
    std::vector<KpEntry> base(n);
    for (size_t i = 0; i < n; ++i)
        base[i] =
            KpEntry{i / 8, reinterpret_cast<uint64_t *>(i + 1)};
    std::swap(base[n / 3], base[n / 3 + 9]); // one out-of-place span
    auto orig = base;
    std::vector<KpEntry> scratch(n);
    auto serial = base;
    sortRun(serial.data(), n, scratch.data());
    expectSortedPermutation(orig, serial);
    for (const unsigned threads : {2u, 8u}) {
        WorkerPool pool(threads);
        auto par = base;
        sortRunParallel(par.data(), n, scratch.data(), pool);
        ASSERT_EQ(std::memcmp(par.data(), serial.data(),
                              n * sizeof(KpEntry)),
                  0)
            << threads;
    }
}

TEST(CompareExchange, OrdersPairAndPreservesPayload)
{
    KpEntry a{5, reinterpret_cast<uint64_t *>(0xa)};
    KpEntry b{3, reinterpret_cast<uint64_t *>(0xb)};
    compareExchange(a, b);
    EXPECT_EQ(a.key, 3u);
    EXPECT_EQ(b.key, 5u);
    EXPECT_EQ(a.row, reinterpret_cast<uint64_t *>(0xb));
    EXPECT_EQ(b.row, reinterpret_cast<uint64_t *>(0xa));
}

} // namespace
} // namespace sbhbm::algo
