/**
 * @file
 * Tests of the Flink-like record-at-a-time hash engine: functional
 * correctness against an independent reference, cost behaviour and
 * window handling.
 */

#include <gtest/gtest.h>

#include <map>

#include "baseline/hash_engine.h"
#include "ingest/generator.h"
#include "ingest/source.h"
#include "pipeline/egress.h"
#include "pipeline/pipeline.h"

namespace sbhbm::baseline {
namespace {

using ingest::KvGen;
using ingest::YsbGen;
using pipeline::EgressOp;
using pipeline::Msg;
using pipeline::Operator;
using pipeline::Pipeline;

runtime::EngineConfig
engineConfig(unsigned cores = 8)
{
    runtime::EngineConfig cfg;
    cfg.cores = cores;
    cfg.mode = sim::MemoryMode::kCache;
    cfg.use_kpa = false;
    cfg.use_knob = false;
    return cfg;
}

/** Capture all result rows. */
class CaptureSink : public Operator
{
  public:
    explicit CaptureSink(Pipeline &p) : Operator(p, "capture") {}

    std::map<std::pair<columnar::WindowId, uint64_t>, uint64_t> counts;

  protected:
    void
    process(Msg msg, int) override
    {
        ASSERT_TRUE(msg.isBundle());
        ASSERT_TRUE(msg.has_window);
        for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
            const uint64_t *row = msg.bundle->row(r);
            counts[{msg.window, row[0]}] += row[1];
        }
    }
};

TEST(HashEngine, CountPerKeyMatchesReference)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{50 * kNsPerMs});

    RecordAtATimeAggOp::Config rc;
    rc.key_col = KvGen::kKeyCol;
    rc.ts_col = KvGen::kTsCol;
    rc.keys_hint = 64;
    auto &agg = pipe.add<RecordAtATimeAggOp>(pipe, "agg", rc);
    auto &sink = pipe.add<CaptureSink>(pipe);
    agg.connectTo(&sink);

    KvGen gen(17, 64, 1000);
    ingest::SourceConfig scfg;
    scfg.bundle_records = 5000;
    scfg.total_records = 100000;
    ingest::Source src(eng, pipe, gen, &agg, scfg);
    src.start();
    eng.machine().run();

    // Reference: independent replay counting per (window, key).
    std::map<std::pair<columnar::WindowId, uint64_t>, uint64_t> expect;
    {
        runtime::Engine eng2(engineConfig());
        Pipeline pipe2(eng2, columnar::WindowSpec{50 * kNsPerMs});

        class Replay : public Operator
        {
          public:
            Replay(Pipeline &p, decltype(expect) &m)
                : Operator(p, "replay"), m_(m)
            {
            }

          protected:
            void
            process(Msg msg, int) override
            {
                columnar::WindowSpec spec{50 * kNsPerMs};
                for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
                    const uint64_t *row = msg.bundle->row(r);
                    ++m_[{spec.windowOf(row[KvGen::kTsCol]),
                          row[KvGen::kKeyCol]}];
                }
            }

          private:
            decltype(expect) &m_;
        };
        auto &rep = pipe2.add<Replay>(pipe2, expect);
        KvGen gen2(17, 64, 1000);
        ingest::Source src2(eng2, pipe2, gen2, &rep, scfg);
        src2.start();
        eng2.machine().run();
    }

    EXPECT_EQ(sink.counts, expect);
}

TEST(HashEngine, FilterAndKeyMapApply)
{
    runtime::Engine eng(engineConfig());
    Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});

    RecordAtATimeAggOp::Config rc;
    rc.filter_col = YsbGen::kEventTypeCol;
    rc.filter_value = YsbGen::kViewEvent;
    rc.key_col = YsbGen::kAdCol;
    rc.ts_col = YsbGen::kTsCol;
    rc.key_map = YsbGen::campaignTable();
    rc.keys_hint = YsbGen::kCampaigns;
    auto &agg = pipe.add<RecordAtATimeAggOp>(pipe, "ysb", rc);
    auto &sink = pipe.add<CaptureSink>(pipe);
    agg.connectTo(&sink);

    YsbGen gen(5);
    ingest::SourceConfig scfg;
    scfg.bundle_records = 5000;
    scfg.total_records = 60000;
    ingest::Source src(eng, pipe, gen, &agg, scfg);
    src.start();
    eng.machine().run();

    uint64_t total = 0;
    for (const auto &[wk, n] : sink.counts) {
        EXPECT_LT(wk.second, YsbGen::kCampaigns)
            << "keys must be campaign ids after the key map";
        total += n;
    }
    // Roughly one third of events are views (3 event types).
    EXPECT_GT(total, 60000 / 4);
    EXPECT_LT(total, 60000 / 2);
}

TEST(HashEngine, ChargesMoreCpuThanKpaEngine)
{
    // The record-at-a-time engine must be substantially slower in
    // virtual time than the KPA engine on identical input.
    auto run = [](bool flink) {
        runtime::EngineConfig ecfg = engineConfig(4);
        runtime::Engine eng(ecfg);
        Pipeline pipe(eng, columnar::WindowSpec{50 * kNsPerMs});
        RecordAtATimeAggOp::Config rc;
        rc.key_col = KvGen::kKeyCol;
        rc.ts_col = KvGen::kTsCol;
        rc.pipeline_stages = flink ? 3 : 1;
        auto &agg = pipe.add<RecordAtATimeAggOp>(pipe, "agg", rc);
        auto &sink = pipe.add<EgressOp>(pipe);
        agg.connectTo(&sink);
        KvGen gen(3, 100, 100);
        ingest::SourceConfig scfg;
        scfg.bundle_records = 5000;
        scfg.total_records = 50000;
        scfg.offered_rate = 0;
        ingest::Source src(eng, pipe, gen, &agg, scfg);
        src.start();
        eng.machine().run();
        return eng.machine().now();
    };
    EXPECT_GT(run(true), run(false));
}

} // namespace
} // namespace sbhbm::baseline
