#include "columnar/bundle.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/machine_config.h"

namespace sbhbm::columnar {
namespace {

class BundleTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};
};

TEST_F(BundleTest, CreateAppendRead)
{
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 3, 100));
    EXPECT_EQ(b->cols(), 3u);
    EXPECT_EQ(b->capacity(), 100u);
    EXPECT_EQ(b->size(), 0u);

    b->append({7, 8, 9});
    b->append({10, 11, 12});
    EXPECT_EQ(b->size(), 2u);
    EXPECT_EQ(b->row(0)[0], 7u);
    EXPECT_EQ(b->row(1)[2], 12u);
    EXPECT_EQ(b->dataBytes(), 2u * 3 * 8);
}

TEST_F(BundleTest, RecordsLiveInDram)
{
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 2, 10));
    EXPECT_EQ(b->tier(), mem::Tier::kDram);
    EXPECT_GT(hm_.gauge(mem::Tier::kDram).used(), 0u);
    EXPECT_EQ(hm_.gauge(mem::Tier::kHbm).used(), 0u);
}

TEST_F(BundleTest, ReferenceCountingReclaimsMemory)
{
    Bundle *raw = Bundle::create(hm_, 2, 1000);
    const uint64_t used = hm_.gauge(mem::Tier::kDram).used();
    EXPECT_GT(used, 0u);

    raw->retain(); // rc = 2
    EXPECT_FALSE(raw->release());
    EXPECT_EQ(hm_.gauge(mem::Tier::kDram).used(), used);
    EXPECT_TRUE(raw->release()); // rc = 0: destroyed
    EXPECT_EQ(hm_.gauge(mem::Tier::kDram).used(), 0u);
}

TEST_F(BundleTest, HandleCopyAndMoveManageOneRefEach)
{
    Bundle *raw = Bundle::create(hm_, 2, 10);
    {
        BundleHandle a = BundleHandle::adopt(raw);
        EXPECT_EQ(raw->refcount(), 1u);
        BundleHandle b = a; // copy: +1
        EXPECT_EQ(raw->refcount(), 2u);
        BundleHandle c = std::move(b); // move: same count
        EXPECT_EQ(raw->refcount(), 2u);
        EXPECT_FALSE(b); // NOLINT(bugprone-use-after-move)
        c.reset();
        EXPECT_EQ(raw->refcount(), 1u);
    }
    // Handle a destroyed: bundle reclaimed.
    EXPECT_EQ(hm_.gauge(mem::Tier::kDram).used(), 0u);
}

TEST_F(BundleTest, ShareTakesAnExtraReference)
{
    BundleHandle a = BundleHandle::adopt(Bundle::create(hm_, 1, 10));
    BundleHandle b = BundleHandle::share(a.get());
    EXPECT_EQ(a->refcount(), 2u);
}

TEST_F(BundleTest, IdsAreUnique)
{
    BundleHandle a = BundleHandle::adopt(Bundle::create(hm_, 1, 10));
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 1, 10));
    EXPECT_NE(a->id(), b->id());
}

TEST_F(BundleTest, AppendRawLeavesDataUninitializedButCounted)
{
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 2, 10));
    uint64_t *row = b->appendRaw();
    row[0] = 42;
    row[1] = 43;
    EXPECT_EQ(b->size(), 1u);
    EXPECT_EQ(b->row(0)[1], 43u);
}

TEST_F(BundleTest, OverflowPanics)
{
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 1, 2));
    b->append({1});
    b->append({2});
    EXPECT_DEATH(b->append({3}), "bundle overflow");
}

TEST_F(BundleTest, ArityMismatchPanics)
{
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 2, 2));
    EXPECT_DEATH(b->append({1}), "arity mismatch");
}

} // namespace
} // namespace sbhbm::columnar
