#include "columnar/window.h"

#include <gtest/gtest.h>

namespace sbhbm::columnar {
namespace {

TEST(WindowSpec, MapsTimestampsToWindows)
{
    WindowSpec w{.width = 1000};
    EXPECT_EQ(w.windowOf(0), 0u);
    EXPECT_EQ(w.windowOf(999), 0u);
    EXPECT_EQ(w.windowOf(1000), 1u);
    EXPECT_EQ(w.windowOf(2500), 2u);
}

TEST(WindowSpec, StartEndAreHalfOpen)
{
    WindowSpec w{.width = 1000};
    EXPECT_EQ(w.start(2), 2000u);
    EXPECT_EQ(w.end(2), 3000u);
    // A ts equal to end() belongs to the next window.
    EXPECT_EQ(w.windowOf(w.end(2)), 3u);
}

TEST(WindowSpec, DefaultWindowIsOneSecond)
{
    WindowSpec w;
    EXPECT_EQ(w.width, kNsPerSec);
}

TEST(WindowSpecDeath, ZeroWidthPanics)
{
    WindowSpec w{.width = 0};
    EXPECT_DEATH((void)w.windowOf(1), "zero-width window");
}

} // namespace
} // namespace sbhbm::columnar
