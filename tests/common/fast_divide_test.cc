#include "common/fast_divide.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace sbhbm {
namespace {

TEST(FastDivider, SmallDivisorsExhaustiveNumerators)
{
    for (uint64_t d = 1; d <= 70; ++d) {
        FastDivider fd(d);
        for (uint64_t x = 0; x <= 4096; ++x)
            ASSERT_EQ(fd.divide(x), x / d) << "x=" << x << " d=" << d;
    }
}

TEST(FastDivider, EdgeNumeratorsAroundMultiples)
{
    const uint64_t divisors[] = {1,
                                 2,
                                 3,
                                 7,
                                 100,
                                 300,
                                 641,
                                 1u << 20,
                                 (1u << 20) + 1,
                                 0x5DEECE66Dull,
                                 std::numeric_limits<uint64_t>::max() / 2,
                                 std::numeric_limits<uint64_t>::max() - 1,
                                 std::numeric_limits<uint64_t>::max()};
    const uint64_t max = std::numeric_limits<uint64_t>::max();
    for (uint64_t d : divisors) {
        FastDivider fd(d);
        // Numerators at and around multiples of d plus the extremes.
        for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{2},
                           max / d / 2, max / d}) {
            const uint64_t base = k * d;
            for (int off = -2; off <= 2; ++off) {
                const uint64_t x = base + static_cast<uint64_t>(off);
                ASSERT_EQ(fd.divide(x), x / d)
                    << "x=" << x << " d=" << d;
            }
        }
        ASSERT_EQ(fd.divide(max), max / d) << "d=" << d;
        ASSERT_EQ(fd.divide(max - 1), (max - 1) / d) << "d=" << d;
    }
}

TEST(FastDivider, RandomizedAgainstHardwareDivision)
{
    Rng rng(97);
    for (int i = 0; i < 2'000'000; ++i) {
        uint64_t d = rng.next();
        if (d == 0)
            d = 1;
        // Mix magnitudes: mask to a random width so small divisors
        // (the common window widths) are exercised as often as huge
        // ones.
        const unsigned width = 1 + static_cast<unsigned>(
                                   rng.nextBounded(64));
        d = (width >= 64) ? d : ((d & ((uint64_t{1} << width) - 1)) | 1);
        const uint64_t x = rng.next()
                           >> rng.nextBounded(64); // all magnitudes
        FastDivider fd(d);
        ASSERT_EQ(fd.divide(x), x / d) << "x=" << x << " d=" << d;
    }
}

} // namespace
} // namespace sbhbm
