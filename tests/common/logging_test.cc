#include "common/logging.h"

#include <gtest/gtest.h>

namespace sbhbm {
namespace {

class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setQuietLogging(false); }
};

TEST_F(LoggingTest, QuietFlagRoundTrips)
{
    EXPECT_FALSE(quietLogging());
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(false);
    EXPECT_FALSE(quietLogging());
}

TEST_F(LoggingTest, InformGoesToStdoutWithLevelTag)
{
    ::testing::internal::CaptureStdout();
    sbhbm_inform("hello %d", 42);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("[info] hello 42"), std::string::npos);
}

TEST_F(LoggingTest, QuietSuppressesInformOnly)
{
    setQuietLogging(true);
    ::testing::internal::CaptureStdout();
    ::testing::internal::CaptureStderr();
    sbhbm_inform("should vanish");
    sbhbm_warn("still visible");
    EXPECT_EQ(::testing::internal::GetCapturedStdout(), "");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("[warn] still visible"), std::string::npos);
}

TEST_F(LoggingTest, AssertPassesWhenConditionHolds)
{
    // Must also evaluate the condition exactly once.
    int evaluations = 0;
    sbhbm_assert(++evaluations > 0, "never fires");
    EXPECT_EQ(evaluations, 1);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(sbhbm_panic("boom %s", "now"), "\\[panic\\] boom now");
}

TEST(LoggingDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(sbhbm_fatal("bad config"),
                ::testing::ExitedWithCode(1), "\\[fatal\\] bad config");
}

TEST(LoggingDeath, FailedAssertNamesTheCondition)
{
    const int x = -1;
    EXPECT_DEATH(sbhbm_assert(x >= 0, "x=%d", x), "assertion `x >= 0'");
}

} // namespace
} // namespace sbhbm
