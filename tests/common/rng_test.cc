#include "common/rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

namespace sbhbm {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
}

TEST(Rng, DifferentSeedsDifferentSequences)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ReseedRestartsTheSequence)
{
    Rng r(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(r.next());
    r.reseed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(r.next(), first[static_cast<size_t>(i)]);
}

TEST(Rng, DefaultSeedIsDeterministic)
{
    Rng a, b;
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, NextBoundedStaysInRange)
{
    Rng r(123);
    for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.nextBounded(bound), bound) << "bound=" << bound;
    }
}

TEST(Rng, NextBoundedOneIsAlwaysZero)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Rng, NextBoundedCoversSmallRange)
{
    Rng r(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(4));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval)
{
    Rng r(77);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng r(31337);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, NextBoolExtremes)
{
    Rng r(4);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, NextBoolRoughlyMatchesProbability)
{
    Rng r(99);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        hits += r.nextBool(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
}

} // namespace
} // namespace sbhbm
