#include "common/stats.h"

#include <gtest/gtest.h>

namespace sbhbm {
namespace {

TEST(RunningStat, EmptyReportsZeroes)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSampleIsMinMeanAndMax)
{
    RunningStat s;
    s.add(-3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.min(), -3.5);
    EXPECT_DOUBLE_EQ(s.max(), -3.5);
    EXPECT_DOUBLE_EQ(s.mean(), -3.5);
}

TEST(RunningStat, TracksMinMaxAcrossNegativeSamples)
{
    // First sample negative: min/max must initialize from it, not 0.
    RunningStat s;
    s.add(-10.0);
    s.add(-2.0);
    s.add(-7.0);
    EXPECT_DOUBLE_EQ(s.min(), -10.0);
    EXPECT_DOUBLE_EQ(s.max(), -2.0);
    EXPECT_DOUBLE_EQ(s.mean(), -19.0 / 3.0);
}

TEST(RunningStat, ResetReturnsToEmptyState)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(SampleSet, EmptyPercentileIsZero)
{
    SampleSet s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleSet, SingleSampleEveryPercentile)
{
    SampleSet s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 42.0);
}

TEST(SampleSet, PercentileEndpointsAreMinAndMax)
{
    SampleSet s;
    for (double v : {5.0, 1.0, 9.0, 3.0, 7.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 9.0);
}

TEST(SampleSet, MedianOfOddCount)
{
    SampleSet s;
    for (double v : {10.0, 30.0, 20.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 20.0);
}

TEST(SampleSet, PercentileIgnoresInsertionOrder)
{
    SampleSet asc, desc;
    for (int i = 0; i < 101; ++i) {
        asc.add(i);
        desc.add(100 - i);
    }
    for (double p : {0.0, 10.0, 25.0, 50.0, 90.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(asc.percentile(p), desc.percentile(p)) << "p=" << p;
    EXPECT_DOUBLE_EQ(asc.percentile(90.0), 90.0);
}

TEST(SampleSet, MeanAndMax)
{
    SampleSet s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_EQ(s.size(), 4u);
}

TEST(SampleSet, MaxOfAllNegativeSamples)
{
    // max() must fold from the first sample, not from 0.
    SampleSet s;
    s.add(-5.0);
    s.add(-1.0);
    s.add(-9.0);
    EXPECT_DOUBLE_EQ(s.max(), -1.0);
}

TEST(SampleSet, CachedPercentilesMatchFreshSortExactly)
{
    // The sorted view is cached between queries; every answer must
    // stay bit-identical to a freshly sorted nearest-rank computation,
    // including after adds that invalidate the cache.
    auto reference = [](const std::vector<double> &xs, double p) {
        std::vector<double> sorted(xs);
        std::sort(sorted.begin(), sorted.end());
        const auto rank = static_cast<size_t>(
            p / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
        return sorted[std::min(rank, sorted.size() - 1)];
    };

    SampleSet s;
    std::vector<double> mirror;
    // Deterministic scrambled sequence with repeats and negatives.
    for (int i = 0; i < 257; ++i) {
        const double v =
            static_cast<double>((i * 193) % 101) - 50.0 + 0.25 * (i % 4);
        s.add(v);
        mirror.push_back(v);
        if (i % 37 == 0) {
            // Interleaved queries: the cache is built, then must be
            // invalidated by the adds that follow.
            for (double p : {0.0, 50.0, 95.0, 99.0, 100.0})
                EXPECT_DOUBLE_EQ(s.percentile(p), reference(mirror, p))
                    << "i=" << i << " p=" << p;
        }
    }
    // Repeated queries against an unchanged set hit the cache and
    // must keep answering identically.
    for (int rep = 0; rep < 3; ++rep)
        for (double p : {0.0, 10.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0})
            EXPECT_DOUBLE_EQ(s.percentile(p), reference(mirror, p));
}

TEST(SampleSet, ClearInvalidatesThePercentileCache)
{
    SampleSet s;
    s.add(1.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 2.0); // cache built
    s.clear();
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0)
        << "stale cache survived clear()";
}

TEST(SampleSet, ClearEmptiesTheSet)
{
    SampleSet s;
    s.add(1.0);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
}

TEST(SampleSetDeath, OutOfRangePercentilePanics)
{
    SampleSet s;
    s.add(1.0);
    EXPECT_DEATH(s.percentile(-1.0), "assertion");
    EXPECT_DEATH(s.percentile(100.5), "assertion");
}

TEST(SampleSetHistogram, EmptySetYieldsAllZeroBuckets)
{
    SampleSet s;
    const auto counts = s.histogram({1.0, 2.0});
    ASSERT_EQ(counts.size(), 3u) << "buckets + one overflow slot";
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[2], 0u);
}

TEST(SampleSetHistogram, SingleSampleLandsInItsBucket)
{
    SampleSet s;
    s.add(1.5);
    const auto counts = s.histogram({1.0, 2.0});
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);

    s.add(99.0); // beyond the last bound: overflow slot
    EXPECT_EQ(s.histogram({1.0, 2.0})[2], 1u);
}

TEST(SampleSetHistogram, AllEqualSamplesShareOneBucket)
{
    SampleSet s;
    for (int i = 0; i < 7; ++i)
        s.add(0.5);
    const auto counts = s.histogram({1.0, 2.0});
    EXPECT_EQ(counts[0], 7u);
    EXPECT_EQ(counts[1], 0u);
    EXPECT_EQ(counts[2], 0u);
}

TEST(SampleSetHistogram, BucketEdgeValuesLandInTheBoundingBucket)
{
    SampleSet s;
    s.add(1.0); // == bounds[0]: counts in bucket 0, not 1
    s.add(2.0); // == bounds[1]: counts in bucket 1, not overflow
    const auto counts = s.histogram({1.0, 2.0});
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
}

TEST(SampleSetHistogramDeath, NonIncreasingBucketsPanic)
{
    SampleSet s;
    s.add(1.0);
    EXPECT_DEATH(s.histogram({2.0, 2.0}), "assertion");
}

} // namespace
} // namespace sbhbm
