#include "common/unique_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>
#include <utility>

namespace sbhbm {
namespace {

TEST(UniqueFunction, DefaultConstructedIsEmpty)
{
    UniqueFunction<void()> f;
    EXPECT_FALSE(f);
    UniqueFunction<void()> g(nullptr);
    EXPECT_FALSE(g);
}

TEST(UniqueFunction, CallsLambdaAndReturnsValue)
{
    UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
    ASSERT_TRUE(add);
    EXPECT_EQ(add(2, 3), 5);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture)
{
    // std::function cannot hold this target; UniqueFunction must.
    auto p = std::make_unique<int>(99);
    UniqueFunction<int()> f = [p = std::move(p)] { return *p; };
    EXPECT_EQ(f(), 99);
}

TEST(UniqueFunction, MoveTransfersTarget)
{
    UniqueFunction<int()> f = [] { return 7; };
    UniqueFunction<int()> g = std::move(f);
    EXPECT_FALSE(f); // NOLINT(bugprone-use-after-move): moved-from is empty
    ASSERT_TRUE(g);
    EXPECT_EQ(g(), 7);

    UniqueFunction<int()> h;
    h = std::move(g);
    EXPECT_EQ(h(), 7);
}

TEST(UniqueFunction, IsNotCopyable)
{
    using F = UniqueFunction<void()>;
    static_assert(!std::is_copy_constructible_v<F>);
    static_assert(!std::is_copy_assignable_v<F>);
    static_assert(std::is_move_constructible_v<F>);
    static_assert(std::is_move_assignable_v<F>);
}

TEST(UniqueFunction, MutatesCapturedState)
{
    int calls = 0;
    UniqueFunction<void()> bump = [&calls] { ++calls; };
    bump();
    bump();
    EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, ResetDestroysTheCapturedPayload)
{
    bool alive = true;
    struct Sentinel
    {
        bool *flag;
        ~Sentinel()
        {
            if (flag)
                *flag = false;
        }
        Sentinel(bool *f) : flag(f) {}
        Sentinel(Sentinel &&o) noexcept : flag(o.flag) { o.flag = nullptr; }
        Sentinel(const Sentinel &) = delete;
    };
    UniqueFunction<void()> f = [s = Sentinel(&alive)] { (void)s; };
    EXPECT_TRUE(alive);
    f.reset();
    EXPECT_FALSE(alive);
    EXPECT_FALSE(f);
}

TEST(UniqueFunction, ForwardsMoveOnlyArguments)
{
    UniqueFunction<int(std::unique_ptr<int>)> f =
        [](std::unique_ptr<int> p) { return *p; };
    EXPECT_EQ(f(std::make_unique<int>(11)), 11);
}

TEST(UniqueFunction, ForwardsReferenceArguments)
{
    UniqueFunction<void(std::string &)> f = [](std::string &s) {
        s += "!";
    };
    std::string s = "hi";
    f(s);
    EXPECT_EQ(s, "hi!");
}

TEST(UniqueFunctionDeath, CallingEmptyPanics)
{
    UniqueFunction<void()> f;
    EXPECT_DEATH(f(), "empty UniqueFunction");
}

} // namespace
} // namespace sbhbm
