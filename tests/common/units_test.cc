#include "common/units.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace sbhbm {
namespace {

TEST(Units, BinaryByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(1_MiB, 1024u * 1024u);
    EXPECT_EQ(1_GiB, 1024u * 1024u * 1024u);
    EXPECT_EQ(16_GiB, 16ull << 30);
    EXPECT_EQ(2_MiB, 2048_KiB);
}

TEST(Units, BandwidthLiteralsAreDecimal)
{
    EXPECT_DOUBLE_EQ(1_GBps, 1e9);
    EXPECT_DOUBLE_EQ(2.5_GBps, 2.5e9);
    // Gbps is bits: 40 Gb/s == 5 GB/s.
    EXPECT_DOUBLE_EQ(40_Gbps, 5e9);
    EXPECT_DOUBLE_EQ(8_Gbps, 1_GBps);
}

TEST(Units, TimeConstantsCompose)
{
    EXPECT_EQ(kNsPerUs * 1000, kNsPerMs);
    EXPECT_EQ(kNsPerMs * 1000, kNsPerSec);
    EXPECT_EQ(kNsPerSec, 1000000000u);
}

TEST(Units, SecondsRoundTrip)
{
    for (double sec : {0.0, 0.001, 0.5, 1.0, 2.75, 3600.0}) {
        const SimTime t = secondsToSim(sec);
        EXPECT_DOUBLE_EQ(simToSeconds(t), sec) << "sec=" << sec;
    }
    EXPECT_EQ(secondsToSim(1.0), kNsPerSec);
}

TEST(Units, SimTimeRoundTripThroughSeconds)
{
    // Values below 2^53 ns (~104 days) survive the double round-trip.
    for (SimTime t : {SimTime{0}, SimTime{1}, kNsPerUs, kNsPerMs,
                      kNsPerSec, 86400 * kNsPerSec}) {
        EXPECT_EQ(secondsToSim(simToSeconds(t)), t) << "t=" << t;
    }
}

TEST(Units, BytesPerSec)
{
    EXPECT_DOUBLE_EQ(bytesPerSec(0, kNsPerSec), 0.0);
    EXPECT_DOUBLE_EQ(bytesPerSec(1000, kNsPerSec), 1000.0);
    EXPECT_DOUBLE_EQ(bytesPerSec(500, kNsPerMs), 500000.0);
    // Zero duration must not divide by zero.
    EXPECT_DOUBLE_EQ(bytesPerSec(12345, 0), 0.0);
}

TEST(Units, BytesPerSecInverseOfBandwidthLiterals)
{
    // Moving 5 GB in one second is exactly 40 Gb/s.
    EXPECT_DOUBLE_EQ(bytesPerSec(5ull * 1000 * 1000 * 1000, kNsPerSec),
                     40_Gbps);
}

TEST(Units, SimTimeNeverIsLargerThanAnyRealTime)
{
    EXPECT_GT(kSimTimeNever, 1000000ull * kNsPerSec);
    EXPECT_EQ(kSimTimeNever, ~0ull);
    EXPECT_EQ(static_cast<uint64_t>(kSimTimeNever),
              UINT64_MAX);
}

} // namespace
} // namespace sbhbm
