#include "ingest/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/machine_config.h"

namespace sbhbm::ingest {
namespace {

class GeneratorTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};
};

TEST_F(GeneratorTest, KvGenSchemaAndRanges)
{
    KvGen gen(1, 100, 1000);
    EXPECT_EQ(gen.cols(), 3u);
    EXPECT_EQ(gen.tsCol(), KvGen::kTsCol);
    auto b = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, gen.cols(), 1000));
    gen.fill(*b, 1000, 5000, 15000);
    for (uint32_t r = 0; r < b->size(); ++r) {
        EXPECT_LT(b->row(r)[KvGen::kKeyCol], 100u);
        EXPECT_LT(b->row(r)[KvGen::kValueCol], 1000u);
        EXPECT_GE(b->row(r)[KvGen::kTsCol], 5000u);
        EXPECT_LT(b->row(r)[KvGen::kTsCol], 15000u);
    }
    // Timestamps nondecreasing within the bundle (arrival order).
    for (uint32_t r = 1; r < b->size(); ++r)
        EXPECT_GE(b->row(r)[KvGen::kTsCol], b->row(r - 1)[KvGen::kTsCol]);
}

TEST_F(GeneratorTest, KvGenSecondaryKeyColumn)
{
    KvGen gen(2, 10, 10, /*secondary_key=*/true, 5);
    EXPECT_EQ(gen.cols(), 4u);
    auto b = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, gen.cols(), 100));
    gen.fill(*b, 100, 0, 100);
    for (uint32_t r = 0; r < b->size(); ++r)
        EXPECT_LT(b->row(r)[KvGen::kKey2Col], 5u);
}

TEST_F(GeneratorTest, KvGenDeterministicPerSeed)
{
    KvGen g1(42, 100, 100), g2(42, 100, 100), g3(43, 100, 100);
    auto b1 = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, 3, 100));
    auto b2 = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, 3, 100));
    auto b3 = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, 3, 100));
    g1.fill(*b1, 100, 0, 100);
    g2.fill(*b2, 100, 0, 100);
    g3.fill(*b3, 100, 0, 100);
    bool same12 = true, same13 = true;
    for (uint32_t r = 0; r < 100; ++r) {
        same12 &= b1->row(r)[0] == b2->row(r)[0];
        same13 &= b1->row(r)[0] == b3->row(r)[0];
    }
    EXPECT_TRUE(same12);
    EXPECT_FALSE(same13);
}

TEST_F(GeneratorTest, YsbSchemaMatchesBenchmark)
{
    YsbGen gen(7);
    EXPECT_EQ(gen.cols(), 7u);
    EXPECT_EQ(gen.tsCol(), YsbGen::kTsCol);
    auto b = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, 7, 3000));
    gen.fill(*b, 3000, 0, 3000);
    std::set<uint64_t> ads, types;
    for (uint32_t r = 0; r < b->size(); ++r) {
        ads.insert(b->row(r)[YsbGen::kAdCol]);
        types.insert(b->row(r)[YsbGen::kEventTypeCol]);
        EXPECT_LT(b->row(r)[YsbGen::kAdCol],
                  YsbGen::kCampaigns * YsbGen::kAdsPerCampaign);
    }
    EXPECT_EQ(types.size(), YsbGen::kEventTypes);
    EXPECT_GT(ads.size(), 500u) << "ad ids should cover most of the space";
}

TEST_F(GeneratorTest, YsbCampaignTableMapsAllAds)
{
    auto table = YsbGen::campaignTable();
    EXPECT_EQ(table->size(), YsbGen::kCampaigns * YsbGen::kAdsPerCampaign);
    for (uint64_t ad = 0; ad < 1000; ad += 97) {
        const uint64_t *camp = table->find(ad);
        ASSERT_NE(camp, nullptr);
        EXPECT_EQ(*camp, ad / YsbGen::kAdsPerCampaign);
        EXPECT_LT(*camp, YsbGen::kCampaigns);
    }
}

TEST_F(GeneratorTest, PowerGridPlugsBelongToHouses)
{
    PowerGridGen gen(5, /*houses=*/10, /*plugs_per_house=*/20);
    auto b = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, 4, 5000));
    gen.fill(*b, 5000, 0, 5000);
    for (uint32_t r = 0; r < b->size(); ++r) {
        const uint64_t plug = b->row(r)[PowerGridGen::kPlugCol];
        const uint64_t house = b->row(r)[PowerGridGen::kHouseCol];
        EXPECT_LT(plug, 200u);
        EXPECT_EQ(house, plug / 20);
    }
}

TEST_F(GeneratorTest, PowerGridLoadsAreStablePerPlug)
{
    // The same plug's load varies by at most the noise band (20), so
    // per-plug averages are meaningful.
    PowerGridGen gen(6, 5, 10);
    auto b = columnar::BundleHandle::adopt(
        columnar::Bundle::create(hm_, 4, 20000));
    gen.fill(*b, 20000, 0, 20000);
    std::map<uint64_t, std::pair<uint64_t, uint64_t>> minmax;
    for (uint32_t r = 0; r < b->size(); ++r) {
        const uint64_t plug = b->row(r)[PowerGridGen::kPlugCol];
        const uint64_t load = b->row(r)[PowerGridGen::kLoadCol];
        auto it = minmax.find(plug);
        if (it == minmax.end()) {
            minmax[plug] = {load, load};
        } else {
            it->second.first = std::min(it->second.first, load);
            it->second.second = std::max(it->second.second, load);
        }
    }
    for (const auto &[plug, mm] : minmax)
        EXPECT_LE(mm.second - mm.first, 20u);
}

} // namespace
} // namespace sbhbm::ingest
