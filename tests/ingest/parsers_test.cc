/**
 * @file
 * Property tests of the Fig 11 ingestion parsers: every codec must
 * round-trip arbitrary records, reject malformed input, and parse
 * streams of concatenated records.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "ingest/parse/parsers.h"

namespace sbhbm::ingest::parse {
namespace {

/** Value patterns worth stressing. */
std::vector<uint64_t>
interestingValues()
{
    return {0,
            1,
            9,
            10,
            127,
            128,
            16383,
            16384,
            999999999,
            0x7fffffffffffffffull,
            0xffffffffffffffffull};
}

// ---------------------------------------------------------------
// Round-trip properties, parameterized over record arity.
// ---------------------------------------------------------------

class ParserRoundTrip : public ::testing::TestWithParam<uint32_t>
{
  protected:
    uint32_t cols() const { return GetParam(); }
};

TEST_P(ParserRoundTrip, JsonRoundTripsRandomRecords)
{
    Rng rng(11);
    for (int iter = 0; iter < 200; ++iter) {
        uint64_t in[kMaxFields], out[kMaxFields];
        for (uint32_t c = 0; c < cols(); ++c)
            in[c] = rng.next();
        std::string buf;
        encodeJson(in, cols(), buf);
        const char *end = buf.data() + buf.size();
        const char *p = parseJson(buf.data(), end, out, cols());
        ASSERT_NE(p, nullptr);
        for (uint32_t c = 0; c < cols(); ++c)
            EXPECT_EQ(out[c], in[c]);
    }
}

TEST_P(ParserRoundTrip, ProtoRoundTripsBoundaryValues)
{
    for (uint64_t v : interestingValues()) {
        uint64_t in[kMaxFields], out[kMaxFields];
        for (uint32_t c = 0; c < cols(); ++c)
            in[c] = v + c;
        std::vector<uint8_t> buf;
        encodeProto(in, cols(), buf);
        const uint8_t *p =
            parseProto(buf.data(), buf.data() + buf.size(), out, cols());
        ASSERT_NE(p, nullptr);
        for (uint32_t c = 0; c < cols(); ++c)
            EXPECT_EQ(out[c], in[c]);
    }
}

TEST_P(ParserRoundTrip, TextRoundTripsBoundaryValues)
{
    for (uint64_t v : interestingValues()) {
        uint64_t in[kMaxFields], out[kMaxFields];
        for (uint32_t c = 0; c < cols(); ++c)
            in[c] = v >= c ? v - c : v;
        std::string buf;
        encodeText(in, cols(), buf);
        const char *p =
            parseText(buf.data(), buf.data() + buf.size(), out, cols());
        ASSERT_NE(p, nullptr);
        for (uint32_t c = 0; c < cols(); ++c)
            EXPECT_EQ(out[c], in[c]);
    }
}

TEST_P(ParserRoundTrip, StreamsOfRecordsParseBackToBack)
{
    Rng rng(13);
    constexpr int kRecords = 300;
    std::vector<uint64_t> in(kRecords * cols());
    for (auto &v : in)
        v = rng.nextBounded(1u << 30);

    std::string text_buf, json_buf;
    std::vector<uint8_t> proto_buf;
    for (int r = 0; r < kRecords; ++r) {
        encodeText(&in[r * cols()], cols(), text_buf);
        encodeJson(&in[r * cols()], cols(), json_buf);
        encodeProto(&in[r * cols()], cols(), proto_buf);
    }

    uint64_t out[kMaxFields];
    const char *tp = text_buf.data();
    const char *jp = json_buf.data();
    const uint8_t *pp = proto_buf.data();
    for (int r = 0; r < kRecords; ++r) {
        tp = parseText(tp, text_buf.data() + text_buf.size(), out,
                       cols());
        ASSERT_NE(tp, nullptr) << "text record " << r;
        EXPECT_EQ(out[cols() - 1], in[r * cols() + cols() - 1]);

        jp = parseJson(jp, json_buf.data() + json_buf.size(), out,
                       cols());
        ASSERT_NE(jp, nullptr) << "json record " << r;
        EXPECT_EQ(out[0], in[r * cols()]);

        pp = parseProto(pp, proto_buf.data() + proto_buf.size(), out,
                        cols());
        ASSERT_NE(pp, nullptr) << "proto record " << r;
        EXPECT_EQ(out[0], in[r * cols()]);
    }
    EXPECT_EQ(tp, text_buf.data() + text_buf.size());
    EXPECT_EQ(pp, proto_buf.data() + proto_buf.size());
}

INSTANTIATE_TEST_SUITE_P(Arities, ParserRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u));

// ---------------------------------------------------------------
// Malformed input must be rejected, not misparsed.
// ---------------------------------------------------------------

TEST(ParserErrors, JsonRejectsTruncation)
{
    uint64_t in[3] = {1, 2, 3}, out[3];
    std::string buf;
    encodeJson(in, 3, buf);
    for (size_t cut = 1; cut + 1 < buf.size(); ++cut) {
        EXPECT_EQ(parseJson(buf.data(), buf.data() + cut, out, 3),
                  nullptr)
            << "cut at " << cut;
    }
}

TEST(ParserErrors, JsonRejectsGarbage)
{
    uint64_t out[2];
    const std::string bad[] = {"", "{", "[1,2]", "{\"a\":}",
                               "{\"a\":1;\"b\":2}", "nonsense"};
    for (const auto &s : bad) {
        EXPECT_EQ(parseJson(s.data(), s.data() + s.size(), out, 2),
                  nullptr)
            << s;
    }
}

TEST(ParserErrors, ProtoRejectsTruncationAndBadTags)
{
    uint64_t in[3] = {1ull << 40, 2, 3}, out[3];
    std::vector<uint8_t> buf;
    encodeProto(in, 3, buf);
    for (size_t cut = 1; cut + 1 < buf.size(); ++cut) {
        EXPECT_EQ(parseProto(buf.data(), buf.data() + cut, out, 3),
                  nullptr)
            << "cut at " << cut;
    }
    // Wrong field order / wire type.
    std::vector<uint8_t> bad = buf;
    bad[0] = (2 << 3) | 0; // field 2 where 1 expected
    EXPECT_EQ(parseProto(bad.data(), bad.data() + bad.size(), out, 3),
              nullptr);
    bad = buf;
    bad[0] = (1 << 3) | 2; // length-delimited wire type
    EXPECT_EQ(parseProto(bad.data(), bad.data() + bad.size(), out, 3),
              nullptr);
}

TEST(ParserErrors, TextRejectsMalformedLines)
{
    uint64_t out[3];
    const std::string bad[] = {"", "1|2", "1|2|", "a|2|3\n", "1||3\n",
                               "1|2|3"};
    for (const auto &s : bad) {
        EXPECT_EQ(parseText(s.data(), s.data() + s.size(), out, 3),
                  nullptr)
            << '"' << s << '"';
    }
}

TEST(ParserErrors, ProtoRejectsOverlongVarint)
{
    // 11 continuation bytes encode > 64 bits.
    std::vector<uint8_t> buf{(1 << 3) | 0};
    for (int i = 0; i < 10; ++i)
        buf.push_back(0x80);
    buf.push_back(0x01);
    uint64_t out[1];
    EXPECT_EQ(parseProto(buf.data(), buf.data() + buf.size(), out, 1),
              nullptr);
}

} // namespace
} // namespace sbhbm::ingest::parse
