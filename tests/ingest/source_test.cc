#include "ingest/source.h"

#include <gtest/gtest.h>

#include <vector>

#include "pipeline/pipeline.h"

namespace sbhbm::ingest {
namespace {

runtime::EngineConfig
cfg4()
{
    runtime::EngineConfig cfg;
    cfg.cores = 4;
    return cfg;
}

/** Sink capturing arrival times, record counts and watermarks. */
class SinkOp : public pipeline::Operator
{
  public:
    explicit SinkOp(pipeline::Pipeline &p) : Operator(p, "sink") {}

    uint64_t records = 0;
    uint64_t bundles = 0;
    std::vector<SimTime> arrivals;
    std::vector<EventTime> wms;
    EventTime max_ts_seen = 0;
    bool wm_violation = false;

  protected:
    void
    process(pipeline::Msg msg, int) override
    {
        records += msg.bundle->size();
        ++bundles;
        arrivals.push_back(eng_.machine().now());
        for (uint32_t r = 0; r < msg.bundle->size(); ++r) {
            const EventTime ts = msg.bundle->row(r)[2];
            max_ts_seen = std::max(max_ts_seen, ts);
            // Data must never arrive with ts < an already-seen wm.
            if (!wms.empty() && ts < wms.back())
                wm_violation = true;
        }
    }

    void
    onWatermark(pipeline::Watermark wm) override
    {
        wms.push_back(wm.ts);
    }
};

class SourceTest : public ::testing::Test
{
  protected:
    SourceTest()
        : eng_(cfg4()),
          pipe_(eng_, columnar::WindowSpec{100 * kNsPerMs}),
          sink_(pipe_.add<SinkOp>(pipe_)), gen_(3, 50, 100)
    {
    }

    runtime::Engine eng_;
    pipeline::Pipeline pipe_;
    SinkOp &sink_;
    KvGen gen_;
};

TEST_F(SourceTest, DeliversAllRecordsAtNicRate)
{
    SourceConfig cfg;
    cfg.nic_bw = 1.25e9; // 10 GbE
    cfg.bundle_records = 10000;
    cfg.total_records = 100000;
    Source src(eng_, pipe_, gen_, &sink_, cfg);
    src.start();
    eng_.machine().run();

    EXPECT_TRUE(src.finished());
    EXPECT_EQ(sink_.records, 100000u);
    EXPECT_EQ(sink_.bundles, 10u);
    // 100k records * 24 B = 2.4 MB at 1.25 GB/s ~= 1.92 ms.
    EXPECT_NEAR(static_cast<double>(src.finishedAt()), 1.92e6, 0.1e6);
}

TEST_F(SourceTest, OfferedRateCapsBelowNic)
{
    SourceConfig cfg;
    cfg.nic_bw = 5e9;
    cfg.bundle_records = 10000;
    cfg.total_records = 100000;
    cfg.offered_rate = 10e6; // 10 M records/s
    Source src(eng_, pipe_, gen_, &sink_, cfg);
    src.start();
    eng_.machine().run();
    // 100k records at 10 M/s = 10 ms.
    EXPECT_NEAR(static_cast<double>(src.finishedAt()), 10e6, 0.5e6);
}

TEST_F(SourceTest, WatermarksAtWindowBoundaries)
{
    SourceConfig cfg;
    cfg.nic_bw = 5e9;
    cfg.bundle_records = 2000;
    cfg.total_records = 200000;
    cfg.offered_rate = 1e6; // 1 M rec/s -> 200 ms of stream
    Source src(eng_, pipe_, gen_, &sink_, cfg);
    src.start();
    eng_.machine().run();

    // 200 ms of data with 100 ms windows: wm at 100ms, 200ms, final.
    ASSERT_GE(sink_.wms.size(), 2u);
    EXPECT_EQ(sink_.wms[0], 100 * kNsPerMs);
    EXPECT_FALSE(sink_.wm_violation);
    // Final watermark closes the last window.
    EXPECT_GT(sink_.wms.back(), sink_.max_ts_seen);
}

TEST_F(SourceTest, BundlesPerWatermarkCadence)
{
    SourceConfig cfg;
    cfg.nic_bw = 5e9;
    cfg.bundle_records = 1000;
    cfg.total_records = 50000; // 50 bundles
    cfg.bundles_per_watermark = 10;
    Source src(eng_, pipe_, gen_, &sink_, cfg);
    src.start();
    eng_.machine().run();
    // One wm per 10 bundles plus the final one.
    EXPECT_EQ(sink_.wms.size(), 5u + 1u);
}

TEST_F(SourceTest, BackpressurePausesIngestion)
{
    auto cfg_small = cfg4();
    cfg_small.max_inflight_bundles = 4;
    runtime::Engine eng(cfg_small);
    pipeline::Pipeline pipe(eng, columnar::WindowSpec{100 * kNsPerMs});

    // A sink that never releases its bundles: holds them forever.
    class HoldSink : public pipeline::Operator
    {
      public:
        explicit HoldSink(pipeline::Pipeline &p) : Operator(p, "hold") {}
        std::vector<pipeline::Msg> held;

      protected:
        void
        process(pipeline::Msg msg, int) override
        {
            held.push_back(std::move(msg));
        }
    };
    auto &hold = pipe.add<HoldSink>(pipe);

    KvGen gen(9, 50, 100);
    SourceConfig cfg;
    cfg.nic_bw = 5e9;
    cfg.bundle_records = 1000;
    cfg.total_records = 100000;
    Source src(eng, pipe, gen, &hold, cfg);
    src.start();
    eng.machine().runUntil(50 * kNsPerMs);

    // Only the credit limit of bundles was ingested.
    EXPECT_EQ(hold.held.size(), 4u);
    EXPECT_TRUE(eng.backpressured());
    EXPECT_FALSE(src.finished());

    // Releasing bundles resumes ingestion; with a consumer that
    // keeps draining, the whole stream completes despite the tiny
    // in-flight credit.
    std::function<void()> release = [&] {
        hold.held.clear();
        if (!src.finished())
            eng.machine().after(kNsPerMs, release);
    };
    eng.machine().after(kNsPerMs, release);
    eng.machine().run();
    EXPECT_TRUE(src.finished());
    EXPECT_EQ(src.recordsIngested(), 100000u);
}

TEST_F(SourceTest, ZeroMqCopyPathIsSlowerThanRdma)
{
    SourceConfig rdma;
    rdma.nic_bw = 1.25e9;
    rdma.bundle_records = 10000;
    rdma.total_records = 200000;

    Source src1(eng_, pipe_, gen_, &sink_, rdma);
    src1.start();
    eng_.machine().run();
    const SimTime t_rdma = src1.finishedAt();

    // Fresh engine for the copy path.
    runtime::Engine eng2(cfg4());
    pipeline::Pipeline pipe2(eng2, columnar::WindowSpec{100 * kNsPerMs});
    auto &sink2 = pipe2.add<SinkOp>(pipe2);
    KvGen gen2(3, 50, 100);
    SourceConfig zmq = rdma;
    zmq.copy_at_ingest = true;
    Source src2(eng2, pipe2, gen2, &sink2, zmq);
    src2.start();
    eng2.machine().run();

    EXPECT_EQ(sink2.records, 200000u);
    // Copy tasks overlap the NIC, so completion time is close, but
    // the engine did extra DRAM traffic.
    EXPECT_GT(eng2.machine().tierCumulativeBytes(mem::Tier::kDram), 0.0);
    EXPECT_GE(eng2.machine().now(), t_rdma);
}

} // namespace
} // namespace sbhbm::ingest
