/**
 * @file
 * Golden tests pinning the simulated cost of the grouping primitives.
 *
 * The host-side kernels behind sortKpa / partitionByRange / join were
 * rewritten for wall-clock speed; the figures of the paper are
 * computed from the *simulated* CostLog totals, so those totals must
 * not move. Every expected value below is the hand-computed charge of
 * the original (pre-rewrite) implementation; a failure here means a
 * kernel change silently altered the reproduced figures.
 */

#include "kpa/primitives.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/machine_config.h"

namespace sbhbm::kpa {
namespace {

using mem::Tier;
using sim::CostLog;

class CostInvarianceTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};
    CostLog log_;
    Placement hbm_{Tier::kHbm, false};

    Ctx ctx() { return Ctx{hm_, log_}; }

    /** Bundle of (key, value, ts) rows with random keys. */
    BundleHandle
    makeKvBundle(uint32_t rows, uint64_t seed, uint64_t key_range = 50)
    {
        Rng rng(seed);
        BundleHandle b =
            BundleHandle::adopt(Bundle::create(hm_, 3, rows));
        for (uint32_t r = 0; r < rows; ++r) {
            uint64_t *row = b->appendRaw();
            row[0] = rng.nextBounded(key_range);
            row[1] = rng.nextBounded(1000);
            row[2] = 1000 + r; // ts (increasing)
        }
        return b;
    }
};

TEST_F(CostInvarianceTest, SortChargesGoldenTotals)
{
    BundleHandle b = makeKvBundle(4096, 1);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    CostLog sort_log;
    sortKpa(Ctx{hm_, sort_log}, *k);
    // 4096 entries: (1 block pass + 6 merge levels) * 48 B/elem on HBM.
    EXPECT_EQ(sort_log.bytesOn(Tier::kHbm), 1376256u);
    EXPECT_EQ(sort_log.bytesOn(Tier::kDram), 0u);
    // 21 stages * 0.8 ns * 4096 + 2.5 ns * 4096 * 6 levels.
    EXPECT_NEAR(sort_log.totalCpuNs(), 130252.8, 0.01);
}

TEST_F(CostInvarianceTest, PartitionChargesGoldenTotals)
{
    BundleHandle b = makeKvBundle(900, 2);
    KpaPtr k = extract(ctx(), *b, 2, hbm_); // ts 1000..1899
    CostLog part_log;
    auto parts = partitionByRange(Ctx{hm_, part_log}, *k, 300, hbm_);
    // Width 300 over ts 1000..1899: ranges 3..6, sizes 200/300/300/100.
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0].range, 3u);
    EXPECT_EQ(parts[0].part->size(), 200u);
    EXPECT_EQ(parts[1].range, 4u);
    EXPECT_EQ(parts[1].part->size(), 300u);
    EXPECT_EQ(parts[2].range, 5u);
    EXPECT_EQ(parts[2].part->size(), 300u);
    EXPECT_EQ(parts[3].range, 6u);
    EXPECT_EQ(parts[3].part->size(), 100u);
    // Source scan 900 * 16 B + identical bytes across the partitions.
    EXPECT_EQ(part_log.bytesOn(Tier::kHbm), 28800u);
    EXPECT_EQ(part_log.bytesOn(Tier::kDram), 0u);
    // kPartitionNsPerRec (120) * 900 records.
    EXPECT_DOUBLE_EQ(part_log.totalCpuNs(), 108000.0);
}

TEST_F(CostInvarianceTest, PartitionPathsChargeIdentically)
{
    // The sorted boundary-scan path must charge byte-for-byte what the
    // unsorted hash-count path charges for the same entries.
    BundleHandle b = makeKvBundle(900, 3);
    KpaPtr k = extract(ctx(), *b, 2, hbm_);
    CostLog unsorted_log;
    auto unsorted = partitionByRange(Ctx{hm_, unsorted_log}, *k, 300,
                                     hbm_);
    k->setSorted(true); // ts really is ascending
    CostLog sorted_log;
    auto sorted = partitionByRange(Ctx{hm_, sorted_log}, *k, 300, hbm_);
    EXPECT_EQ(unsorted_log.bytesOn(Tier::kHbm),
              sorted_log.bytesOn(Tier::kHbm));
    EXPECT_EQ(unsorted_log.bytesOn(Tier::kDram),
              sorted_log.bytesOn(Tier::kDram));
    EXPECT_DOUBLE_EQ(unsorted_log.totalCpuNs(),
                     sorted_log.totalCpuNs());
}

TEST_F(CostInvarianceTest, JoinChargesGoldenTotals)
{
    // Left keys 0..9, right keys 5..14, 3-column records: 5 matches.
    BundleHandle lb = BundleHandle::adopt(Bundle::create(hm_, 3, 10));
    BundleHandle rb = BundleHandle::adopt(Bundle::create(hm_, 3, 10));
    for (uint64_t i = 0; i < 10; ++i) {
        lb->append({i, 100 + i, 1});
        rb->append({i + 5, 200 + i + 5, 2});
    }
    KpaPtr lk = extract(ctx(), *lb, 0, hbm_);
    KpaPtr rk = extract(ctx(), *rb, 0, hbm_);
    sortKpa(ctx(), *lk);
    sortKpa(ctx(), *rk);
    CostLog join_log;
    BundleHandle out = join(Ctx{hm_, join_log}, *lk, *rk, {1}, {1});
    ASSERT_EQ(out->size(), 5u);
    // Both KPAs scanned sequentially on HBM: 2 * 10 * 16 B.
    EXPECT_EQ(join_log.bytesOn(Tier::kHbm), 320u);
    // DRAM: 5 matches * 64 B line * 2 sides random + 5 * 3 * 8 B out.
    EXPECT_EQ(join_log.bytesOn(Tier::kDram), 640u + 120u);
    // kMergeNsPerElem (2.5) * 20 scanned + kEmitNsPerRec (50) * 5.
    EXPECT_DOUBLE_EQ(join_log.totalCpuNs(), 300.0);
}

TEST_F(CostInvarianceTest, JoinEmitsMatchesInMergeOrder)
{
    // The streamed emit must keep the original x-outer / y-inner
    // match order of the buffered implementation.
    BundleHandle lb = BundleHandle::adopt(Bundle::create(hm_, 2, 3));
    BundleHandle rb = BundleHandle::adopt(Bundle::create(hm_, 2, 2));
    lb->append({7, 1});
    lb->append({7, 2});
    lb->append({8, 3});
    rb->append({7, 10});
    rb->append({7, 20});
    KpaPtr lk = extract(ctx(), *lb, 0, hbm_);
    KpaPtr rk = extract(ctx(), *rb, 0, hbm_);
    sortKpa(ctx(), *lk);
    sortKpa(ctx(), *rk);
    BundleHandle out = join(ctx(), *lk, *rk, {1}, {1});
    ASSERT_EQ(out->size(), 4u);
    const uint64_t expect[4][3] = {
        {7, 1, 10}, {7, 1, 20}, {7, 2, 10}, {7, 2, 20}};
    for (uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(out->row(i)[0], expect[i][0]) << i;
        EXPECT_EQ(out->row(i)[1], expect[i][1]) << i;
        EXPECT_EQ(out->row(i)[2], expect[i][2]) << i;
    }
}

TEST_F(CostInvarianceTest, MaterializeChargesGoldenTotals)
{
    BundleHandle b = makeKvBundle(1000, 4);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    sortKpa(ctx(), *k);
    CostLog mat_log;
    BundleHandle out = materialize(Ctx{hm_, mat_log}, *k);
    ASSERT_EQ(out->size(), 1000u);
    // KPA scan: 1000 * 16 B on HBM.
    EXPECT_EQ(mat_log.bytesOn(Tier::kHbm), 16000u);
    // DRAM: 1000 random 64 B row touches + 1000 * 3 * 8 B written out.
    EXPECT_EQ(mat_log.bytesOn(Tier::kDram), 64000u + 24000u);
    // kSwapNsPerRec (120) * 1000.
    EXPECT_DOUBLE_EQ(mat_log.totalCpuNs(), 120000.0);
}

TEST_F(CostInvarianceTest, KeySwapChargesGoldenTotals)
{
    BundleHandle b = makeKvBundle(1000, 5);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    CostLog swap_log;
    keySwap(Ctx{hm_, swap_log}, *k, 1);
    // 1000 random 64 B row touches on DRAM; KPA rewritten on HBM.
    EXPECT_EQ(swap_log.bytesOn(Tier::kDram), 64000u);
    EXPECT_EQ(swap_log.bytesOn(Tier::kHbm), 16000u);
    // kSwapNsPerRec (120) * 1000.
    EXPECT_DOUBLE_EQ(swap_log.totalCpuNs(), 120000.0);
}

} // namespace
} // namespace sbhbm::kpa
