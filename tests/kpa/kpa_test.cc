#include "kpa/kpa.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/machine_config.h"

namespace sbhbm::kpa {
namespace {

class KpaTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};

    BundleHandle
    makeBundle(uint32_t cols, uint32_t rows)
    {
        BundleHandle b =
            BundleHandle::adopt(Bundle::create(hm_, cols, rows));
        for (uint32_t r = 0; r < rows; ++r) {
            uint64_t *row = b->appendRaw();
            for (uint32_t c = 0; c < cols; ++c)
                row[c] = r * 100 + c;
        }
        return b;
    }
};

TEST_F(KpaTest, CreateOnHbm)
{
    KpaPtr k = Kpa::create(hm_, 100, Placement{mem::Tier::kHbm, false});
    EXPECT_EQ(k->tier(), mem::Tier::kHbm);
    EXPECT_EQ(k->size(), 0u);
    EXPECT_EQ(k->capacity(), 100u);
    EXPECT_GT(hm_.gauge(mem::Tier::kHbm).used(), 0u);
    k.reset();
    EXPECT_EQ(hm_.gauge(mem::Tier::kHbm).used(), 0u);
}

TEST_F(KpaTest, PushAndAccess)
{
    KpaPtr k = Kpa::create(hm_, 4, Placement{mem::Tier::kHbm, false});
    uint64_t dummy[2] = {1, 2};
    k->push(10, dummy);
    k->push(5, dummy + 1);
    EXPECT_EQ(k->size(), 2u);
    EXPECT_EQ(k->at(0).key, 10u);
    EXPECT_EQ(k->at(1).key, 5u);
    EXPECT_EQ(k->bytes(), 32u);
    EXPECT_FALSE(k->sorted());
}

TEST_F(KpaTest, BulkAppendCursorMatchesPushSemantics)
{
    KpaPtr k = Kpa::create(hm_, 8, Placement{mem::Tier::kHbm, false});
    uint64_t dummy[3] = {1, 2, 3};
    KpEntry *dst = k->appendCursor();
    dst[0] = KpEntry{4, dummy};
    dst[1] = KpEntry{9, dummy + 1};
    k->commitAppend(2);
    EXPECT_EQ(k->size(), 2u);
    EXPECT_EQ(k->at(0).key, 4u);
    EXPECT_EQ(k->at(1).key, 9u);
    // Any nonzero commit clears the sorted flag, like push() would...
    EXPECT_FALSE(k->sorted());
    k->setSorted(true);
    // ...and a zero-length commit leaves it untouched.
    k->commitAppend(0);
    EXPECT_TRUE(k->sorted());
    k->appendCursor()[0] = KpEntry{1, dummy + 2};
    k->commitAppend(1);
    EXPECT_FALSE(k->sorted());
    EXPECT_EQ(k->size(), 3u);
}

TEST_F(KpaTest, SourceLinksHoldBundleReferences)
{
    BundleHandle b = makeBundle(3, 10);
    EXPECT_EQ(b->refcount(), 1u);
    {
        KpaPtr k = Kpa::create(hm_, 10, Placement{mem::Tier::kHbm, false});
        k->addSource(b.get());
        EXPECT_EQ(b->refcount(), 2u);
        // Duplicate link is deduplicated (paper §5.1).
        k->addSource(b.get());
        EXPECT_EQ(b->refcount(), 2u);
    }
    EXPECT_EQ(b->refcount(), 1u);
}

TEST_F(KpaTest, BundleSurvivesViaKpaAfterPipelineDropsIt)
{
    KpaPtr k = Kpa::create(hm_, 10, Placement{mem::Tier::kHbm, false});
    {
        BundleHandle b = makeBundle(3, 10);
        k->addSource(b.get());
    } // pipeline reference dropped; KPA keeps the bundle alive
    EXPECT_EQ(k->sources().front()->refcount(), 1u);
    EXPECT_GT(hm_.gauge(mem::Tier::kDram).used(), 0u);
    k.reset(); // last reference: bundle reclaimed
    EXPECT_EQ(hm_.gauge(mem::Tier::kDram).used(), 0u);
}

TEST_F(KpaTest, AdoptSourcesInheritsAllLinks)
{
    BundleHandle b1 = makeBundle(3, 5);
    BundleHandle b2 = makeBundle(3, 5);
    KpaPtr k1 = Kpa::create(hm_, 5, Placement{mem::Tier::kHbm, false});
    KpaPtr k2 = Kpa::create(hm_, 5, Placement{mem::Tier::kHbm, false});
    k1->addSource(b1.get());
    k2->addSource(b2.get());

    KpaPtr merged = Kpa::create(hm_, 10, Placement{mem::Tier::kHbm, false});
    merged->adoptSourcesFrom(*k1);
    merged->adoptSourcesFrom(*k2);
    EXPECT_EQ(merged->sources().size(), 2u);
    EXPECT_EQ(b1->refcount(), 3u); // handle + k1 + merged
    k1.reset();
    EXPECT_EQ(b1->refcount(), 2u);
}

TEST_F(KpaTest, SpillsToDramWhenHbmFull)
{
    auto cfg = sim::MachineConfig::knl();
    cfg.hbm.capacity_bytes = 64_KiB;
    mem::HybridMemory hm(cfg, sim::MemoryMode::kFlat);
    // 4096 entries = 64 KiB > non-reserved HBM.
    KpaPtr k = Kpa::create(hm, 4096, Placement{mem::Tier::kHbm, false});
    EXPECT_EQ(k->tier(), mem::Tier::kDram);
}

TEST_F(KpaTest, RecordColsComesFromSourceBundle)
{
    BundleHandle b = makeBundle(7, 3);
    KpaPtr k = Kpa::create(hm_, 3, Placement{mem::Tier::kHbm, false});
    k->addSource(b.get());
    EXPECT_EQ(k->recordCols(), 7u);
}

TEST_F(KpaTest, ZeroCapacityKpaIsValid)
{
    KpaPtr k = Kpa::create(hm_, 0, Placement{mem::Tier::kHbm, false});
    EXPECT_TRUE(k->empty());
    EXPECT_EQ(k->bytes(), 0u);
}

TEST_F(KpaTest, OverflowPanics)
{
    KpaPtr k = Kpa::create(hm_, 1, Placement{mem::Tier::kHbm, false});
    uint64_t dummy = 0;
    k->push(1, &dummy);
    EXPECT_DEATH(k->push(2, &dummy), "KPA overflow");
}

} // namespace
} // namespace sbhbm::kpa
