/**
 * @file
 * partitionByRange's parallel count/fill passes must be bit-identical
 * to the serial passes at every thread count: same partitions in the
 * same order, every entry at the same position, and the same CostLog
 * charges — the host pool is a wall-clock knob, never a semantics
 * knob.
 */

#include "kpa/primitives.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "common/worker_pool.h"
#include "sim/machine_config.h"

namespace sbhbm::kpa {
namespace {

using mem::Tier;
using sim::CostLog;

class PartitionParallelTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};

    /** Unsorted KPA of n entries with keys in [0, key_range). */
    KpaPtr
    makeKpa(uint32_t n, uint64_t key_range, uint64_t seed,
            CostLog &log)
    {
        Rng rng(seed);
        BundleHandle b = BundleHandle::adopt(
            columnar::Bundle::create(hm_, 2, n));
        for (uint32_t r = 0; r < n; ++r) {
            uint64_t *row = b->appendRaw();
            row[0] = rng.nextBounded(key_range);
            row[1] = r;
        }
        Ctx ctx{hm_, log};
        KpaPtr k = extract(ctx, *b, 0, Placement{Tier::kHbm, false});
        k->setSorted(false); // force the unsorted count/fill path
        return k;
    }

    struct Result
    {
        std::vector<uint64_t> ranges;
        std::vector<std::vector<KpEntry>> entries;
        double cpu_ns = 0;
        uint64_t hbm_bytes = 0;
        uint64_t dram_bytes = 0;
    };

    Result
    runPartition(const Kpa &src, uint64_t width, WorkerPool *pool)
    {
        CostLog log;
        Ctx ctx{hm_, log};
        ctx.pool = pool;
        auto parts =
            partitionByRange(ctx, src, width, Placement{Tier::kHbm, false});
        Result r;
        for (const auto &rp : parts) {
            r.ranges.push_back(rp.range);
            std::vector<KpEntry> es(rp.part->entries(),
                                    rp.part->entries() + rp.part->size());
            r.entries.push_back(std::move(es));
        }
        r.cpu_ns = log.totalCpuNs();
        r.hbm_bytes = log.bytesOn(sim::Tier::kHbm);
        r.dram_bytes = log.bytesOn(sim::Tier::kDram);
        return r;
    }

    static void
    expectIdentical(const Result &serial, const Result &parallel,
                    const char *what)
    {
        ASSERT_EQ(serial.ranges, parallel.ranges) << what;
        ASSERT_EQ(serial.entries.size(), parallel.entries.size()) << what;
        for (size_t p = 0; p < serial.entries.size(); ++p) {
            ASSERT_EQ(serial.entries[p].size(),
                      parallel.entries[p].size())
                << what << " partition " << p;
            for (size_t i = 0; i < serial.entries[p].size(); ++i) {
                ASSERT_EQ(serial.entries[p][i].key,
                          parallel.entries[p][i].key)
                    << what << " partition " << p << " entry " << i;
                ASSERT_EQ(serial.entries[p][i].row,
                          parallel.entries[p][i].row)
                    << what << " partition " << p << " entry " << i;
            }
        }
        EXPECT_DOUBLE_EQ(serial.cpu_ns, parallel.cpu_ns) << what;
        EXPECT_EQ(serial.hbm_bytes, parallel.hbm_bytes) << what;
        EXPECT_EQ(serial.dram_bytes, parallel.dram_bytes) << what;
    }
};

TEST_F(PartitionParallelTest, DensePathBitIdenticalAcrossThreadCounts)
{
    // Above the parallel threshold, dense span (64 ranges).
    constexpr uint32_t kN = 200'000;
    CostLog setup;
    KpaPtr k = makeKpa(kN, 64 * 1000, 3, setup);
    const Result serial = runPartition(*k, 1000, nullptr);
    ASSERT_EQ(serial.ranges.size(), 64u);

    for (unsigned threads : {2u, 3u, 8u}) {
        WorkerPool pool(threads);
        const Result par = runPartition(*k, 1000, &pool);
        expectIdentical(serial, par,
                        (std::to_string(threads) + " threads").c_str());
    }
}

TEST_F(PartitionParallelTest, SingleRangeAndRaggedShardsStayIdentical)
{
    // n chosen so n / threads does not divide evenly, plus a width
    // that puts everything in one partition (degenerate span).
    constexpr uint32_t kN = (1u << 16) + 4099;
    CostLog setup;
    KpaPtr k = makeKpa(kN, 777, 11, setup);

    WorkerPool pool(5);
    const Result serial = runPartition(*k, 1u << 20, nullptr);
    ASSERT_EQ(serial.ranges.size(), 1u);
    expectIdentical(serial, runPartition(*k, 1u << 20, &pool),
                    "single range");

    // And a many-small-ranges split of the same ragged input.
    const Result serial_many = runPartition(*k, 13, nullptr);
    expectIdentical(serial_many, runPartition(*k, 13, &pool),
                    "many ranges");
}

TEST_F(PartitionParallelTest, BelowThresholdTakesSerialPath)
{
    constexpr uint32_t kN = 10'000; // < kPartitionParallelMin
    CostLog setup;
    KpaPtr k = makeKpa(kN, 4000, 5, setup);
    WorkerPool pool(8);
    expectIdentical(runPartition(*k, 100, nullptr),
                    runPartition(*k, 100, &pool), "small input");
}

TEST_F(PartitionParallelTest, SparseRangesUnaffectedByPool)
{
    // Keys spread so wide that distinct ranges outnumber entries:
    // the sparse hash path runs serially either way; the pool must
    // not change its output.
    constexpr uint32_t kN = 100'000;
    CostLog setup;
    Rng rng(17);
    BundleHandle b =
        BundleHandle::adopt(columnar::Bundle::create(hm_, 2, kN));
    for (uint32_t r = 0; r < kN; ++r) {
        uint64_t *row = b->appendRaw();
        row[0] = rng.next() % (uint64_t{1} << 60);
        row[1] = r;
    }
    CostLog xlog;
    Ctx xctx{hm_, xlog};
    KpaPtr k = extract(xctx, *b, 0, Placement{Tier::kHbm, false});
    k->setSorted(false);

    WorkerPool pool(8);
    expectIdentical(runPartition(*k, 3, nullptr),
                    runPartition(*k, 3, &pool), "sparse ranges");
}

} // namespace
} // namespace sbhbm::kpa
