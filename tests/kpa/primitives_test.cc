#include "kpa/primitives.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "common/units.h"
#include "sim/machine_config.h"

namespace sbhbm::kpa {
namespace {

using mem::Tier;
using sim::CostLog;

class PrimitivesTest : public ::testing::Test
{
  protected:
    sim::MachineConfig cfg_ = sim::MachineConfig::knl();
    mem::HybridMemory hm_{cfg_, sim::MemoryMode::kFlat};
    CostLog log_;
    Placement hbm_{Tier::kHbm, false};

    Ctx ctx() { return Ctx{hm_, log_}; }

    /** Bundle of (key, value, ts) rows with random keys. */
    BundleHandle
    makeKvBundle(uint32_t rows, uint64_t seed, uint64_t key_range = 50)
    {
        Rng rng(seed);
        BundleHandle b =
            BundleHandle::adopt(Bundle::create(hm_, 3, rows));
        for (uint32_t r = 0; r < rows; ++r) {
            uint64_t *row = b->appendRaw();
            row[0] = rng.nextBounded(key_range); // key
            row[1] = rng.nextBounded(1000);      // value
            row[2] = 1000 + r;                   // ts (increasing)
        }
        return b;
    }
};

TEST_F(PrimitivesTest, ExtractCopiesKeysAndPointers)
{
    BundleHandle b = makeKvBundle(100, 1);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    ASSERT_EQ(k->size(), 100u);
    EXPECT_EQ(k->residentColumn(), 0u);
    EXPECT_EQ(k->tier(), Tier::kHbm);
    for (uint32_t i = 0; i < k->size(); ++i) {
        EXPECT_EQ(k->at(i).key, b->row(i)[0]);
        EXPECT_EQ(k->at(i).row, b->row(i));
    }
    // Source link registered.
    ASSERT_EQ(k->sources().size(), 1u);
    EXPECT_EQ(b->refcount(), 2u);
}

TEST_F(PrimitivesTest, ExtractChargesBundleReadAndKpaWrite)
{
    BundleHandle b = makeKvBundle(1000, 2);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    // Bundle: 1000 * 3 * 8 = 24000 B seq on DRAM; KPA: 16000 B on HBM.
    EXPECT_EQ(log_.bytesOn(sim::Tier::kDram), 24000u);
    EXPECT_EQ(log_.bytesOn(sim::Tier::kHbm), 16000u);
    EXPECT_GT(log_.totalCpuNs(), 0.0);
}

TEST_F(PrimitivesTest, KeySwapLoadsNonresidentColumn)
{
    BundleHandle b = makeKvBundle(50, 3);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    keySwap(ctx(), *k, 2);
    EXPECT_EQ(k->residentColumn(), 2u);
    for (uint32_t i = 0; i < k->size(); ++i)
        EXPECT_EQ(k->at(i).key, b->row(i)[2]);
    // Swapping to the same column is a no-op.
    CostLog before = log_;
    keySwap(ctx(), *k, 2);
    EXPECT_EQ(log_.totalBytes(), before.totalBytes());
}

TEST_F(PrimitivesTest, KeySwapChargesRandomRecordReads)
{
    BundleHandle b = makeKvBundle(100, 4);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    CostLog swap_log;
    keySwap(Ctx{hm_, swap_log}, *k, 1);
    // 100 random line touches on DRAM.
    uint64_t rand_bytes = 0;
    for (const auto &p : swap_log.phases())
        for (const auto &f : p.flows)
            if (f.pattern == sim::AccessPattern::kRandom)
                rand_bytes += f.bytes;
    EXPECT_EQ(rand_bytes, 100u * 64);
}

TEST_F(PrimitivesTest, SortOrdersByResidentKey)
{
    BundleHandle b = makeKvBundle(10000, 5);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    sortKpa(ctx(), *k);
    EXPECT_TRUE(k->sorted());
    EXPECT_TRUE(algo::isSortedByKey(k->entries(), k->size()));
    // Pointers still point at real records whose key column matches.
    for (uint32_t i = 0; i < k->size(); ++i)
        EXPECT_EQ(k->at(i).key, k->at(i).row[0]);
}

TEST_F(PrimitivesTest, SortOnSortedKpaIsFree)
{
    BundleHandle b = makeKvBundle(100, 6);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    sortKpa(ctx(), *k);
    CostLog second;
    sortKpa(Ctx{hm_, second}, *k);
    EXPECT_TRUE(second.empty());
}

TEST_F(PrimitivesTest, SortChargesOnePassPerMergeLevel)
{
    BundleHandle b = makeKvBundle(4096, 7);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    CostLog sort_log;
    sortKpa(Ctx{hm_, sort_log}, *k);
    // 4096 entries: 1 block pass + 6 merge levels, 48 B/elem each
    // (stream in + write-allocate out).
    const uint64_t expect =
        (1 + 6) * sim::cost::kSortBytesPerElemLevel * 4096ull;
    EXPECT_EQ(sort_log.bytesOn(sim::Tier::kHbm), expect);
}

TEST_F(PrimitivesTest, MergeCombinesSortedKpas)
{
    BundleHandle b1 = makeKvBundle(500, 8);
    BundleHandle b2 = makeKvBundle(700, 9);
    KpaPtr k1 = extract(ctx(), *b1, 0, hbm_);
    KpaPtr k2 = extract(ctx(), *b2, 0, hbm_);
    sortKpa(ctx(), *k1);
    sortKpa(ctx(), *k2);
    KpaPtr m = merge(ctx(), *k1, *k2, hbm_);
    ASSERT_EQ(m->size(), 1200u);
    EXPECT_TRUE(m->sorted());
    EXPECT_TRUE(algo::isSortedByKey(m->entries(), m->size()));
    EXPECT_EQ(m->residentColumn(), 0u);
    // Merged KPA references both source bundles.
    EXPECT_EQ(m->sources().size(), 2u);
}

TEST_F(PrimitivesTest, MergeRequiresSortedInputs)
{
    BundleHandle b1 = makeKvBundle(10, 10);
    BundleHandle b2 = makeKvBundle(10, 11);
    KpaPtr k1 = extract(ctx(), *b1, 0, hbm_);
    KpaPtr k2 = extract(ctx(), *b2, 0, hbm_);
    EXPECT_DEATH((void)merge(ctx(), *k1, *k2, hbm_), "sorted");
}

TEST_F(PrimitivesTest, MaterializeEmitsRecordsInKpaOrder)
{
    BundleHandle b = makeKvBundle(200, 12);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    sortKpa(ctx(), *k);
    BundleHandle out = materialize(ctx(), *k);
    ASSERT_EQ(out->size(), 200u);
    EXPECT_EQ(out->cols(), 3u);
    for (uint32_t i = 0; i < out->size(); ++i) {
        EXPECT_EQ(out->row(i)[0], k->at(i).key);
        // Full rows copied.
        EXPECT_EQ(out->row(i)[1], k->at(i).row[1]);
    }
}

TEST_F(PrimitivesTest, SelectFromBundleKeepsSurvivors)
{
    BundleHandle b = makeKvBundle(1000, 13);
    // Keep records with even keys.
    KpaPtr k = selectFromBundle(
        ctx(), *b, 0, [](const uint64_t *row) { return row[0] % 2 == 0; },
        hbm_);
    uint32_t expect = 0;
    for (uint32_t r = 0; r < b->size(); ++r)
        if (b->row(r)[0] % 2 == 0)
            ++expect;
    EXPECT_EQ(k->size(), expect);
    for (uint32_t i = 0; i < k->size(); ++i)
        EXPECT_EQ(k->at(i).key % 2, 0u);
}

TEST_F(PrimitivesTest, SelectFromBundleOnEmptyBundleYieldsUsableKpa)
{
    // A sealed-but-empty bundle must select into an empty KPA whose
    // capacity is clamped to 1 (harmonized with selectFromKpa).
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 3, 8));
    KpaPtr k = selectFromBundle(
        ctx(), *b, 0, [](const uint64_t *) { return true; }, hbm_);
    EXPECT_EQ(k->size(), 0u);
    EXPECT_GE(k->capacity(), 1u);
    EXPECT_TRUE(k->empty());
    // The clamped capacity keeps the KPA usable for later appends.
    uint64_t row[3] = {1, 2, 3};
    k->push(7, row);
    EXPECT_EQ(k->size(), 1u);
}

TEST_F(PrimitivesTest, SelectFromKpaOnEmptyKpaYieldsUsableKpa)
{
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 3, 8));
    KpaPtr empty = selectFromBundle(
        ctx(), *b, 0, [](const uint64_t *) { return false; }, hbm_);
    ASSERT_EQ(empty->size(), 0u);
    KpaPtr k = selectFromKpa(
        ctx(), *empty, [](uint64_t) { return true; }, hbm_);
    EXPECT_EQ(k->size(), 0u);
    EXPECT_GE(k->capacity(), 1u);
}

TEST_F(PrimitivesTest, SelectFromKpaFiltersOnResidentKey)
{
    BundleHandle b = makeKvBundle(1000, 14);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    KpaPtr f = selectFromKpa(
        ctx(), *k, [](uint64_t key) { return key < 10; }, hbm_);
    for (uint32_t i = 0; i < f->size(); ++i)
        EXPECT_LT(f->at(i).key, 10u);
    EXPECT_EQ(f->sources().size(), 1u);
}

TEST_F(PrimitivesTest, PartitionByRangeSplitsWindows)
{
    BundleHandle b = makeKvBundle(900, 15);
    // ts column runs 1000..1899; partition by width 300 => ranges 3,4,5,6.
    KpaPtr k = extract(ctx(), *b, 2, hbm_);
    auto parts = partitionByRange(ctx(), *k, 300, hbm_);
    ASSERT_EQ(parts.size(), 4u);
    uint32_t total = 0;
    for (const auto &rp : parts) {
        for (uint32_t i = 0; i < rp.part->size(); ++i)
            EXPECT_EQ(rp.part->at(i).key / 300, rp.range);
        total += rp.part->size();
        EXPECT_EQ(rp.part->sources().size(), 1u);
    }
    EXPECT_EQ(total, 900u);
}

TEST_F(PrimitivesTest, JoinMatchesKeysAcrossKpas)
{
    // Left: keys 0..9 with value 100+key; right: keys 5..14, value
    // 200+key. Expect matches on 5..9.
    BundleHandle lb = BundleHandle::adopt(Bundle::create(hm_, 3, 10));
    BundleHandle rb = BundleHandle::adopt(Bundle::create(hm_, 3, 10));
    for (uint64_t i = 0; i < 10; ++i) {
        lb->append({i, 100 + i, 1});
        rb->append({i + 5, 200 + i + 5, 2});
    }
    KpaPtr lk = extract(ctx(), *lb, 0, hbm_);
    KpaPtr rk = extract(ctx(), *rb, 0, hbm_);
    sortKpa(ctx(), *lk);
    sortKpa(ctx(), *rk);
    BundleHandle out = join(ctx(), *lk, *rk, {1}, {1});
    ASSERT_EQ(out->size(), 5u);
    EXPECT_EQ(out->cols(), 3u);
    std::set<uint64_t> keys;
    for (uint32_t i = 0; i < out->size(); ++i) {
        const uint64_t *row = out->row(i);
        keys.insert(row[0]);
        EXPECT_EQ(row[1], 100 + row[0]); // left payload
        EXPECT_EQ(row[2], 200 + row[0]); // right payload
    }
    EXPECT_EQ(keys, (std::set<uint64_t>{5, 6, 7, 8, 9}));
}

TEST_F(PrimitivesTest, JoinProducesCrossProductOnDuplicates)
{
    BundleHandle lb = BundleHandle::adopt(Bundle::create(hm_, 2, 3));
    BundleHandle rb = BundleHandle::adopt(Bundle::create(hm_, 2, 2));
    lb->append({7, 1});
    lb->append({7, 2});
    lb->append({8, 3});
    rb->append({7, 10});
    rb->append({7, 20});
    KpaPtr lk = extract(ctx(), *lb, 0, hbm_);
    KpaPtr rk = extract(ctx(), *rb, 0, hbm_);
    sortKpa(ctx(), *lk);
    sortKpa(ctx(), *rk);
    BundleHandle out = join(ctx(), *lk, *rk, {1}, {1});
    EXPECT_EQ(out->size(), 4u); // 2 x 2 on key 7
}

TEST_F(PrimitivesTest, JoinHandlesNonContiguousPayloadColumns)
{
    // Payload columns out of order / with gaps exercise the
    // per-column emit path (the memcpy fast path needs a c, c+1 run).
    BundleHandle lb = BundleHandle::adopt(Bundle::create(hm_, 4, 4));
    BundleHandle rb = BundleHandle::adopt(Bundle::create(hm_, 4, 4));
    for (uint64_t i = 0; i < 4; ++i) {
        lb->append({i, 10 + i, 20 + i, 30 + i});
        rb->append({i, 40 + i, 50 + i, 60 + i});
    }
    KpaPtr lk = extract(ctx(), *lb, 0, hbm_);
    KpaPtr rk = extract(ctx(), *rb, 0, hbm_);
    sortKpa(ctx(), *lk);
    sortKpa(ctx(), *rk);
    // Left: cols {3, 1} (descending, non-contiguous); right: {1, 2}.
    BundleHandle out = join(ctx(), *lk, *rk, {3, 1}, {1, 2});
    ASSERT_EQ(out->size(), 4u);
    ASSERT_EQ(out->cols(), 5u);
    for (uint32_t i = 0; i < out->size(); ++i) {
        const uint64_t *row = out->row(i);
        const uint64_t key = row[0];
        EXPECT_EQ(row[1], 30 + key); // left col 3
        EXPECT_EQ(row[2], 10 + key); // left col 1
        EXPECT_EQ(row[3], 40 + key); // right col 1
        EXPECT_EQ(row[4], 50 + key); // right col 2
    }
}

TEST_F(PrimitivesTest, PartitionSortedAndUnsortedPathsAgree)
{
    // The sorted boundary-scan path and the unsorted hash-count path
    // must produce identical partitions for the same entry sequence.
    BundleHandle b = makeKvBundle(900, 21);
    KpaPtr unsorted = extract(ctx(), *b, 2, hbm_); // ts ascending
    ASSERT_FALSE(unsorted->sorted());
    auto via_hash = partitionByRange(ctx(), *unsorted, 300, hbm_);
    unsorted->setSorted(true); // ts really is ascending
    auto via_scan = partitionByRange(ctx(), *unsorted, 300, hbm_);

    ASSERT_EQ(via_hash.size(), via_scan.size());
    for (size_t p = 0; p < via_hash.size(); ++p) {
        EXPECT_EQ(via_hash[p].range, via_scan[p].range);
        ASSERT_EQ(via_hash[p].part->size(), via_scan[p].part->size());
        for (uint32_t i = 0; i < via_hash[p].part->size(); ++i) {
            EXPECT_EQ(via_hash[p].part->at(i).key,
                      via_scan[p].part->at(i).key);
            EXPECT_EQ(via_hash[p].part->at(i).row,
                      via_scan[p].part->at(i).row);
        }
    }
}

TEST_F(PrimitivesTest, PartitionPreservesArrivalOrderWithinRanges)
{
    // The hash-count fill pass must be stable: entries of one range
    // keep their input order (downstream sort relies on determinism).
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 3, 9));
    const uint64_t keys[9] = {25, 5, 17, 3, 28, 11, 9, 22, 1};
    for (uint64_t k : keys)
        b->append({k, 0, 0});
    KpaPtr kpa = extract(ctx(), *b, 0, hbm_);
    auto parts = partitionByRange(ctx(), *kpa, 10, hbm_);
    ASSERT_EQ(parts.size(), 3u);
    // Range 0: 5, 3, 9, 1; range 1: 17, 11; range 2: 25, 28, 22.
    const std::vector<std::vector<uint64_t>> expect = {
        {5, 3, 9, 1}, {17, 11}, {25, 28, 22}};
    for (size_t p = 0; p < parts.size(); ++p) {
        EXPECT_EQ(parts[p].range, p);
        ASSERT_EQ(parts[p].part->size(), expect[p].size());
        for (uint32_t i = 0; i < parts[p].part->size(); ++i)
            EXPECT_EQ(parts[p].part->at(i).key, expect[p][i]);
    }
}

TEST_F(PrimitivesTest, PartitionHandlesSparseRanges)
{
    // Keys spread over a span vastly larger than the entry count force
    // the hashed fallback (the dense direct-index path would need a
    // cursor slot per range in the span).
    const uint32_t rows = 64;
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 3, rows));
    Rng rng(22);
    for (uint32_t r = 0; r < rows; ++r)
        b->append({rng.nextBounded(1u << 30), 0, 0});
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    auto parts = partitionByRange(ctx(), *k, 3, hbm_);
    uint32_t total = 0;
    uint64_t prev_range = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
        if (p > 0) {
            EXPECT_GT(parts[p].range, prev_range); // ascending
        }
        prev_range = parts[p].range;
        for (uint32_t i = 0; i < parts[p].part->size(); ++i)
            EXPECT_EQ(parts[p].part->at(i).key / 3, parts[p].range);
        total += parts[p].part->size();
    }
    EXPECT_EQ(total, rows);
}

TEST_F(PrimitivesTest, PartitionHandlesFullKeyspaceExtremes)
{
    // Keys 0 and UINT64_MAX with width 1: the range extent covers the
    // whole 64-bit space, which must not wrap the dense-path span to
    // zero (regression: out-of-bounds scatter).
    BundleHandle b = BundleHandle::adopt(Bundle::create(hm_, 3, 3));
    b->append({0, 1, 2});
    b->append({~uint64_t{0}, 3, 4});
    b->append({5, 6, 7});
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    auto parts = partitionByRange(ctx(), *k, 1, hbm_);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0].range, 0u);
    EXPECT_EQ(parts[1].range, 5u);
    EXPECT_EQ(parts[2].range, ~uint64_t{0});
    for (const auto &rp : parts)
        EXPECT_EQ(rp.part->size(), 1u);
}

TEST_F(PrimitivesTest, SortKpaChargesUnchangedOnPresortedEntries)
{
    // The adaptive host fast path (entries already ordered but the
    // sorted flag unset) must charge exactly what a real sort would:
    // simulated figures never depend on the host path taken.
    BundleHandle b = makeKvBundle(4096, 23);
    KpaPtr k = extract(ctx(), *b, 2, hbm_); // ts ascending, flag unset
    ASSERT_FALSE(k->sorted());
    CostLog sort_log;
    sortKpa(Ctx{hm_, sort_log}, *k);
    EXPECT_TRUE(k->sorted());
    const uint64_t expect =
        (1 + 6) * sim::cost::kSortBytesPerElemLevel * 4096ull;
    EXPECT_EQ(sort_log.bytesOn(sim::Tier::kHbm), expect);
}

TEST_F(PrimitivesTest, UpdateKeysInPlaceAndWriteBack)
{
    BundleHandle b = makeKvBundle(100, 16);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    updateKeysInPlace(ctx(), *k, [](uint64_t key) { return key + 1000; });
    EXPECT_EQ(k->residentColumn(), columnar::kNoColumn);
    for (uint32_t i = 0; i < k->size(); ++i)
        EXPECT_EQ(k->at(i).key, k->at(i).row[0] + 1000);

    // Write back into column 1 (clobbering values).
    writeBackKeys(ctx(), *k, 1);
    EXPECT_EQ(k->residentColumn(), 1u);
    for (uint32_t i = 0; i < k->size(); ++i)
        EXPECT_EQ(k->at(i).row[1], k->at(i).key);
}

TEST_F(PrimitivesTest, ForEachKeyRunVisitsSortedGroups)
{
    BundleHandle b = makeKvBundle(5000, 17, /*key_range=*/20);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    sortKpa(ctx(), *k);

    std::map<uint64_t, uint64_t> counts;
    forEachKeyRun(*k, [&](uint64_t key, const KpEntry *run, size_t len) {
        counts[key] += len;
        for (size_t i = 0; i < len; ++i)
            EXPECT_EQ(run[i].key, key);
    });
    // Reference counts straight from the bundle.
    std::map<uint64_t, uint64_t> ref;
    for (uint32_t r = 0; r < b->size(); ++r)
        ++ref[b->row(r)[0]];
    EXPECT_EQ(counts, ref);
}

TEST_F(PrimitivesTest, ChargeKeyedReduceAccountsAllStreams)
{
    BundleHandle b = makeKvBundle(1000, 18);
    KpaPtr k = extract(ctx(), *b, 0, hbm_);
    sortKpa(ctx(), *k);
    CostLog red;
    chargeKeyedReduce(Ctx{hm_, red}, *k, k->size(), 50, 2);
    // KPA scan (HBM) + random values (DRAM) + output (DRAM).
    EXPECT_EQ(red.bytesOn(sim::Tier::kHbm), 16000u);
    EXPECT_EQ(red.bytesOn(sim::Tier::kDram), 1000u * 64 + 50u * 2 * 8);
}

TEST_F(PrimitivesTest, GroupingNeverTouchesFullRecordsInFlatMode)
{
    // Sort + merge on extracted KPAs must charge zero DRAM traffic:
    // the whole point of KPA (paper §4.1).
    BundleHandle b1 = makeKvBundle(2000, 19);
    BundleHandle b2 = makeKvBundle(2000, 20);
    KpaPtr k1 = extract(ctx(), *b1, 0, hbm_);
    KpaPtr k2 = extract(ctx(), *b2, 0, hbm_);
    CostLog group_log;
    Ctx gctx{hm_, group_log};
    sortKpa(gctx, *k1);
    sortKpa(gctx, *k2);
    KpaPtr m = merge(gctx, *k1, *k2, hbm_);
    EXPECT_EQ(group_log.bytesOn(sim::Tier::kDram), 0u);
    EXPECT_GT(group_log.bytesOn(sim::Tier::kHbm), 0u);
}

} // namespace
} // namespace sbhbm::kpa
