#include "mem/capacity_gauge.h"

#include <gtest/gtest.h>

namespace sbhbm::mem {
namespace {

TEST(CapacityGauge, BasicReserveRelease)
{
    CapacityGauge g(1000, 0);
    EXPECT_TRUE(g.tryReserve(600, false));
    EXPECT_EQ(g.used(), 600u);
    EXPECT_DOUBLE_EQ(g.usedFraction(), 0.6);
    EXPECT_TRUE(g.tryReserve(400, false));
    EXPECT_FALSE(g.tryReserve(1, false));
    g.release(500);
    EXPECT_EQ(g.used(), 500u);
    EXPECT_TRUE(g.tryReserve(500, false));
}

TEST(CapacityGauge, UrgentReserveOnlyForUrgent)
{
    CapacityGauge g(1000, 100);
    // Non-urgent may only use 900.
    EXPECT_TRUE(g.tryReserve(900, false));
    EXPECT_FALSE(g.tryReserve(1, false));
    // Urgent can dip into the reserve.
    EXPECT_TRUE(g.tryReserve(100, true));
    EXPECT_FALSE(g.tryReserve(1, true));
    EXPECT_EQ(g.used(), 1000u);
}

TEST(CapacityGauge, HasRoomMatchesNonUrgentReserve)
{
    CapacityGauge g(1000, 100);
    EXPECT_TRUE(g.hasRoom(900));
    EXPECT_FALSE(g.hasRoom(901));
    g.tryReserve(500, false);
    EXPECT_TRUE(g.hasRoom(400));
    EXPECT_FALSE(g.hasRoom(401));
}

TEST(CapacityGauge, HighWaterTracksPeakUsage)
{
    CapacityGauge g(1000, 0);
    g.tryReserve(700, false);
    g.release(600);
    g.tryReserve(200, false);
    EXPECT_EQ(g.highWater(), 700u);
    g.tryReserve(600, false);
    EXPECT_EQ(g.highWater(), 900u);
}

TEST(CapacityGauge, UrgentReserveExactBoundary)
{
    // The urgent reserve's edges, one byte at a time: non-urgent may
    // reach exactly capacity - reserve, urgent exactly capacity.
    CapacityGauge g(1000, 100);
    EXPECT_TRUE(g.tryReserve(899, false));
    EXPECT_TRUE(g.tryReserve(1, false)); // lands exactly on 900
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_TRUE(g.tryReserve(99, true));
    EXPECT_TRUE(g.tryReserve(1, true)); // lands exactly on 1000
    EXPECT_FALSE(g.tryReserve(1, true));
    // Releasing one byte re-opens urgent (but not non-urgent) room.
    g.release(1);
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_TRUE(g.tryReserve(1, true));
}

TEST(CapacityGauge, ReserveEqualToCapacityLeavesUrgentOnly)
{
    CapacityGauge g(1000, 1000);
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_FALSE(g.hasRoom(1));
    EXPECT_TRUE(g.tryReserve(1000, true));
}

TEST(CapacityGauge, WindowedHighWaterDecaysOnMark)
{
    // The live-pressure admission signal: peak usage *since the last
    // mark*, unlike highWater() which never decays.
    CapacityGauge g(1000, 0);
    g.tryReserve(700, false);
    g.release(650);
    EXPECT_EQ(g.highWaterSinceMark(), 700u);
    EXPECT_EQ(g.highWater(), 700u);

    g.markHighWater(); // new window starts at current usage (50)
    EXPECT_EQ(g.highWaterSinceMark(), 50u);
    EXPECT_EQ(g.highWater(), 700u) << "monotonic high-water unaffected";

    g.tryReserve(300, false);
    g.release(300);
    EXPECT_EQ(g.highWaterSinceMark(), 350u)
        << "burst within the window must be remembered";
    g.markHighWater();
    EXPECT_EQ(g.highWaterSinceMark(), 50u);
}

TEST(CapacityGauge, ZeroCapacityGaugeRejectsEverything)
{
    CapacityGauge g(0, 0);
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_FALSE(g.tryReserve(1, true));
    EXPECT_DOUBLE_EQ(g.usedFraction(), 0.0);
}

TEST(CapacityGaugeDeath, OverReleasePanics)
{
    CapacityGauge g(1000, 0);
    g.tryReserve(100, false);
    EXPECT_DEATH(g.release(101), "releasing more than used");
}

} // namespace
} // namespace sbhbm::mem
