#include "mem/capacity_gauge.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace sbhbm::mem {
namespace {

TEST(CapacityGauge, BasicReserveRelease)
{
    CapacityGauge g(1000, 0);
    EXPECT_TRUE(g.tryReserve(600, false));
    EXPECT_EQ(g.used(), 600u);
    EXPECT_DOUBLE_EQ(g.usedFraction(), 0.6);
    EXPECT_TRUE(g.tryReserve(400, false));
    EXPECT_FALSE(g.tryReserve(1, false));
    g.release(500);
    EXPECT_EQ(g.used(), 500u);
    EXPECT_TRUE(g.tryReserve(500, false));
}

TEST(CapacityGauge, UrgentReserveOnlyForUrgent)
{
    CapacityGauge g(1000, 100);
    // Non-urgent may only use 900.
    EXPECT_TRUE(g.tryReserve(900, false));
    EXPECT_FALSE(g.tryReserve(1, false));
    // Urgent can dip into the reserve.
    EXPECT_TRUE(g.tryReserve(100, true));
    EXPECT_FALSE(g.tryReserve(1, true));
    EXPECT_EQ(g.used(), 1000u);
}

TEST(CapacityGauge, HasRoomMatchesNonUrgentReserve)
{
    CapacityGauge g(1000, 100);
    EXPECT_TRUE(g.hasRoom(900));
    EXPECT_FALSE(g.hasRoom(901));
    g.tryReserve(500, false);
    EXPECT_TRUE(g.hasRoom(400));
    EXPECT_FALSE(g.hasRoom(401));
}

TEST(CapacityGauge, HighWaterTracksPeakUsage)
{
    CapacityGauge g(1000, 0);
    g.tryReserve(700, false);
    g.release(600);
    g.tryReserve(200, false);
    EXPECT_EQ(g.highWater(), 700u);
    g.tryReserve(600, false);
    EXPECT_EQ(g.highWater(), 900u);
}

TEST(CapacityGauge, UrgentReserveExactBoundary)
{
    // The urgent reserve's edges, one byte at a time: non-urgent may
    // reach exactly capacity - reserve, urgent exactly capacity.
    CapacityGauge g(1000, 100);
    EXPECT_TRUE(g.tryReserve(899, false));
    EXPECT_TRUE(g.tryReserve(1, false)); // lands exactly on 900
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_TRUE(g.tryReserve(99, true));
    EXPECT_TRUE(g.tryReserve(1, true)); // lands exactly on 1000
    EXPECT_FALSE(g.tryReserve(1, true));
    // Releasing one byte re-opens urgent (but not non-urgent) room.
    g.release(1);
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_TRUE(g.tryReserve(1, true));
}

TEST(CapacityGauge, ReserveEqualToCapacityLeavesUrgentOnly)
{
    CapacityGauge g(1000, 1000);
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_FALSE(g.hasRoom(1));
    EXPECT_TRUE(g.tryReserve(1000, true));
}

TEST(CapacityGauge, WindowedHighWaterDecaysOnMark)
{
    // The live-pressure admission signal: peak usage *since the last
    // mark*, unlike highWater() which never decays.
    CapacityGauge g(1000, 0);
    g.tryReserve(700, false);
    g.release(650);
    EXPECT_EQ(g.highWaterSinceMark(), 700u);
    EXPECT_EQ(g.highWater(), 700u);

    g.markHighWater(); // new window starts at current usage (50)
    EXPECT_EQ(g.highWaterSinceMark(), 50u);
    EXPECT_EQ(g.highWater(), 700u) << "monotonic high-water unaffected";

    g.tryReserve(300, false);
    g.release(300);
    EXPECT_EQ(g.highWaterSinceMark(), 350u)
        << "burst within the window must be remembered";
    g.markHighWater();
    EXPECT_EQ(g.highWaterSinceMark(), 50u);
}

TEST(CapacityGauge, HugeRequestCannotWrapPastTheLimit)
{
    // used_ + bytes overflows uint64_t for a near-UINT64_MAX request;
    // the wrapped sum used to compare as "fits" and be admitted. The
    // headroom form must reject every such request, urgent or not.
    CapacityGauge g(1000, 100);
    ASSERT_TRUE(g.tryReserve(500, false));
    const uint64_t huge = UINT64_MAX - 100;
    EXPECT_FALSE(g.tryReserve(huge, false));
    EXPECT_FALSE(g.tryReserve(huge, true));
    EXPECT_FALSE(g.tryReserve(UINT64_MAX, false));
    EXPECT_FALSE(g.tryReserve(UINT64_MAX, true));
    EXPECT_FALSE(g.hasRoom(huge));
    EXPECT_FALSE(g.hasRoom(UINT64_MAX));
    EXPECT_EQ(g.used(), 500u) << "rejected requests must not charge";

    // An empty gauge is just as exposed (used_ = 0, bytes wraps the
    // sum all the way around to a small number).
    CapacityGauge fresh(1000, 0);
    EXPECT_FALSE(fresh.tryReserve(UINT64_MAX, false));
    EXPECT_FALSE(fresh.hasRoom(UINT64_MAX - 5));
    EXPECT_EQ(fresh.used(), 0u);
}

TEST(CapacityGauge, UrgentOveruseDoesNotWrapNonUrgentHeadroom)
{
    // Urgent dips into the reserve, so used_ can exceed the
    // non-urgent limit; the headroom subtraction must not wrap then.
    CapacityGauge g(1000, 100);
    ASSERT_TRUE(g.tryReserve(950, true)); // above the 900 limit
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_FALSE(g.hasRoom(1));
    EXPECT_TRUE(g.tryReserve(50, true));
}

TEST(CapacityGauge, ZeroCapacityGaugeRejectsEverything)
{
    CapacityGauge g(0, 0);
    EXPECT_FALSE(g.tryReserve(1, false));
    EXPECT_FALSE(g.tryReserve(1, true));
    EXPECT_DOUBLE_EQ(g.usedFraction(), 0.0);
}

TEST(CapacityGaugeDeath, OverReleasePanics)
{
    CapacityGauge g(1000, 0);
    g.tryReserve(100, false);
    EXPECT_DEATH(g.release(101), "releasing more than used");
}

} // namespace
} // namespace sbhbm::mem
