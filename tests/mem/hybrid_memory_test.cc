#include "mem/hybrid_memory.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/machine_config.h"

namespace sbhbm::mem {
namespace {

using sim::MachineConfig;
using sim::MemoryMode;

MachineConfig
tinyConfig()
{
    auto cfg = MachineConfig::knl();
    cfg.hbm.capacity_bytes = 1_MiB; // easy to fill in tests
    cfg.dram.capacity_bytes = 64_MiB;
    return cfg;
}

TEST(HybridMemory, FlatModeHonorsRequestedTier)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block h = hm.alloc(4096, Tier::kHbm);
    Block d = hm.alloc(4096, Tier::kDram);
    EXPECT_EQ(h.tier, Tier::kHbm);
    EXPECT_EQ(d.tier, Tier::kDram);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 4096u);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), 4096u);
    hm.free(h);
    hm.free(d);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 0u);
    EXPECT_FALSE(h); // free() clears the block
}

TEST(HybridMemory, HbmSpillsToDramWhenFull)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    // 1 MiB HBM with 5% urgent reserve: ~996 KiB usable.
    Block a = hm.alloc(512_KiB, Tier::kHbm);
    EXPECT_EQ(a.tier, Tier::kHbm);
    Block b = hm.alloc(512_KiB, Tier::kHbm);
    EXPECT_EQ(b.tier, Tier::kDram) << "second 512 KiB must spill";
    hm.free(a);
    hm.free(b);
}

TEST(HybridMemory, UrgentAllocationUsesHbmReserve)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block a = hm.alloc(512_KiB, Tier::kHbm);
    Block spill = hm.alloc(512_KiB, Tier::kHbm, /*urgent=*/false);
    EXPECT_EQ(spill.tier, Tier::kDram);
    // Urgent fits: 512 KiB used of 1 MiB, urgent limit is the full MiB.
    Block urgent = hm.alloc(512_KiB, Tier::kHbm, /*urgent=*/true);
    EXPECT_EQ(urgent.tier, Tier::kHbm);
    hm.free(a);
    hm.free(spill);
    hm.free(urgent);
}

TEST(HybridMemory, ChargedBytesUseSizeClass)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block b = hm.alloc(5000, Tier::kDram);
    EXPECT_EQ(b.charged_bytes, 8192u);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), 8192u);
    hm.free(b);
}

TEST(HybridMemory, DramOnlyModeNeverGrantsHbm)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kDramOnly);
    Block b = hm.alloc(4096, Tier::kHbm);
    EXPECT_EQ(b.tier, Tier::kDram);
    EXPECT_FALSE(hm.hbmHasRoom(4096));
    hm.free(b);
}

TEST(HybridMemory, FlatChargeGoesToObjectTier)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    sim::CostLog log;
    hm.charge(log, Tier::kHbm, AccessPattern::kSequential, 1000);
    hm.charge(log, Tier::kDram, AccessPattern::kRandom, 500);
    EXPECT_EQ(log.bytesOn(Tier::kHbm), 1000u);
    EXPECT_EQ(log.bytesOn(Tier::kDram), 500u);
}

TEST(HybridMemory, DramOnlyChargeRedirectsHbmTraffic)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kDramOnly);
    sim::CostLog log;
    hm.charge(log, Tier::kHbm, AccessPattern::kSequential, 1000);
    EXPECT_EQ(log.bytesOn(Tier::kHbm), 0u);
    EXPECT_EQ(log.bytesOn(Tier::kDram), 1000u);
}

TEST(HybridMemory, CacheModeHitRatioShrinksWithWorkingSet)
{
    auto cfg = tinyConfig(); // HBM 1 MiB cache
    HybridMemory hm(cfg, MemoryMode::kCache);
    EXPECT_DOUBLE_EQ(hm.cacheHitRatio(), 1.0);

    // Allocate a 4 MiB working set: hit ratio drops to ~0.25.
    Block b = hm.alloc(4_MiB, Tier::kDram);
    EXPECT_NEAR(hm.cacheHitRatio(), 0.25, 0.01);

    // Charged access: all bytes via HBM, ~75% also hit DRAM.
    sim::CostLog log;
    hm.charge(log, Tier::kDram, AccessPattern::kSequential, 100000);
    EXPECT_EQ(log.bytesOn(Tier::kHbm), 100000u);
    EXPECT_NEAR(static_cast<double>(log.bytesOn(Tier::kDram)), 75000.0,
                1500.0);
    hm.free(b);
}

TEST(HybridMemory, CacheModeAllocationsLiveInDram)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kCache);
    Block b = hm.alloc(4096, Tier::kHbm);
    EXPECT_EQ(b.tier, Tier::kDram);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 0u);
    hm.free(b);
}

TEST(HybridMemoryDeath, DramExhaustionIsFatal)
{
    auto cfg = tinyConfig();
    cfg.dram.capacity_bytes = 8192;
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block a = hm.alloc(8192, Tier::kDram);
    EXPECT_DEATH((void)hm.alloc(8192, Tier::kDram), "DRAM exhausted");
    hm.free(a);
}

} // namespace
} // namespace sbhbm::mem
