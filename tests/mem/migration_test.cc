/**
 * @file
 * Migration accounting of the memory control plane: tier-to-tier
 * block moves conserve charged bytes exactly, double migration is
 * idempotent, a full destination leaves the block untouched, and
 * per-stream occupancy follows the block across tiers.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "mem/hybrid_memory.h"
#include "sim/machine_config.h"

namespace sbhbm::mem {
namespace {

using sim::MachineConfig;
using sim::MemoryMode;

MachineConfig
tinyConfig(uint64_t hbm = 1_MiB, uint64_t dram = 64_MiB)
{
    auto cfg = MachineConfig::knl();
    cfg.hbm.capacity_bytes = hbm;
    cfg.dram.capacity_bytes = dram;
    return cfg;
}

TEST(Migration, ConservesChargedBytesAcrossTiers)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block b = hm.alloc(5000, Tier::kHbm); // charged rounds to 8192
    const uint64_t charged = b.charged_bytes;
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), charged);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), 0u);

    ASSERT_TRUE(hm.migrate(b, Tier::kDram));
    EXPECT_EQ(b.tier, Tier::kDram);
    EXPECT_EQ(b.charged_bytes, charged) << "class size must not change";
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 0u);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), charged);

    // And back up.
    ASSERT_TRUE(hm.migrate(b, Tier::kHbm));
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), charged);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), 0u);
    hm.free(b);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 0u);
}

TEST(Migration, PreservesPayloadBytes)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block b = hm.alloc(4096, Tier::kHbm);
    std::memset(b.ptr, 0xa5, 4096);
    ASSERT_TRUE(hm.migrate(b, Tier::kDram));
    const auto *p = static_cast<const unsigned char *>(b.ptr);
    for (int i = 0; i < 4096; ++i)
        ASSERT_EQ(p[i], 0xa5) << "payload corrupted at byte " << i;
    hm.free(b);
}

TEST(Migration, DoubleMigrateIsIdempotent)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block b = hm.alloc(4096, Tier::kHbm);
    ASSERT_TRUE(hm.migrate(b, Tier::kDram));
    void *ptr_after_first = b.ptr;
    const uint64_t dram_used = hm.gauge(Tier::kDram).used();

    // Migrating to the tier the block is already on changes nothing.
    EXPECT_TRUE(hm.migrate(b, Tier::kDram));
    EXPECT_EQ(b.ptr, ptr_after_first);
    EXPECT_EQ(b.tier, Tier::kDram);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), dram_used);
    EXPECT_EQ(hm.gauge(Tier::kHbm).used(), 0u);
    hm.free(b);
}

/** Fill HBM until a 64 KiB non-urgent allocation no longer fits. */
std::vector<Block>
fillHbm(HybridMemory &hm)
{
    std::vector<Block> filler;
    for (;;) {
        Block f = hm.alloc(64_KiB, Tier::kHbm);
        if (f.tier == Tier::kDram) {
            hm.free(f);
            return filler;
        }
        filler.push_back(f);
    }
}

TEST(Migration, FullDestinationLeavesBlockUntouched)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block d = hm.alloc(64_KiB, Tier::kDram);
    std::vector<Block> filler = fillHbm(hm);

    void *old_ptr = d.ptr;
    const uint64_t dram_used = hm.gauge(Tier::kDram).used();
    EXPECT_FALSE(hm.migrate(d, Tier::kHbm));
    EXPECT_EQ(d.tier, Tier::kDram) << "failed migrate must not move";
    EXPECT_EQ(d.ptr, old_ptr);
    EXPECT_EQ(hm.gauge(Tier::kDram).used(), dram_used);

    // The urgent reserve is available to urgent migrations, exactly
    // like urgent allocations (1 MiB HBM, 5% reserve, 15 x 64 KiB
    // filler: exactly one more urgent 64 KiB class fits).
    EXPECT_TRUE(hm.migrate(d, Tier::kHbm, /*urgent=*/true));
    EXPECT_EQ(d.tier, Tier::kHbm);
    hm.free(d);
    for (Block &f : filler)
        hm.free(f);
}

TEST(Migration, RejectedOutsideFlatMode)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kCache);
    Block b = hm.alloc(4096, Tier::kHbm); // lands on DRAM in cache mode
    EXPECT_EQ(b.tier, Tier::kDram);
    EXPECT_FALSE(hm.migrate(b, Tier::kHbm));
    hm.free(b);
}

TEST(Migration, NullBlockRejected)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block none;
    EXPECT_FALSE(hm.migrate(none, Tier::kDram));
}

TEST(Migration, StreamOccupancyFollowsTheBlock)
{
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    Block a = hm.alloc(8192, Tier::kHbm, /*urgent=*/false, /*stream=*/7);
    Block b = hm.alloc(4096, Tier::kHbm, /*urgent=*/false, /*stream=*/9);
    EXPECT_EQ(hm.streamUsed(7, Tier::kHbm), 8192u);
    EXPECT_EQ(hm.streamUsed(9, Tier::kHbm), 4096u);
    EXPECT_EQ(hm.streamUsed(7, Tier::kDram), 0u);

    ASSERT_TRUE(hm.migrate(a, Tier::kDram));
    EXPECT_EQ(hm.streamUsed(7, Tier::kHbm), 0u);
    EXPECT_EQ(hm.streamUsed(7, Tier::kDram), 8192u);
    EXPECT_EQ(hm.streamUsed(9, Tier::kHbm), 4096u) << "other stream moved";

    // High-water is per stream and survives the demotion.
    EXPECT_EQ(hm.streamHbmHighWater(7), 8192u);
    EXPECT_EQ(hm.streamHbmHighWater(9), 4096u);

    hm.free(a);
    hm.free(b);
    EXPECT_EQ(hm.streamUsed(7, Tier::kDram), 0u);
    EXPECT_EQ(hm.streamUsed(9, Tier::kHbm), 0u);
    EXPECT_EQ(hm.streamHbmHighWater(7), 8192u) << "high-water persists";
}

TEST(Migration, SpillFallbackStillTagsStream)
{
    // An HBM request that spills to DRAM accounts to the stream on
    // the tier it actually landed on.
    auto cfg = tinyConfig();
    HybridMemory hm(cfg, MemoryMode::kFlat);
    std::vector<Block> filler = fillHbm(hm);
    Block spilled =
        hm.alloc(256_KiB, Tier::kHbm, /*urgent=*/false, /*stream=*/3);
    EXPECT_EQ(spilled.tier, Tier::kDram);
    EXPECT_EQ(hm.streamUsed(3, Tier::kDram), 256_KiB);
    EXPECT_EQ(hm.streamUsed(3, Tier::kHbm), 0u);
    EXPECT_EQ(hm.streamHbmHighWater(3), 0u);
    for (Block &f : filler)
        hm.free(f);
    hm.free(spilled);
}

} // namespace
} // namespace sbhbm::mem
