#include "mem/slab_allocator.h"

#include <gtest/gtest.h>

#include <cstring>

namespace sbhbm::mem {
namespace {

TEST(SlabAllocator, ClassSizeRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(SlabAllocator::classSize(1), 4096u);
    EXPECT_EQ(SlabAllocator::classSize(4096), 4096u);
    EXPECT_EQ(SlabAllocator::classSize(4097), 8192u);
    EXPECT_EQ(SlabAllocator::classSize(100000), 131072u);
    EXPECT_EQ(SlabAllocator::classSize(1ull << 26), 1ull << 26);
    // Above the max class, sizes are exact.
    EXPECT_EQ(SlabAllocator::classSize((1ull << 26) + 1), (1ull << 26) + 1);
}

TEST(SlabAllocator, AllocationsAre64ByteAligned)
{
    SlabAllocator slab;
    for (uint64_t sz : {1ull, 5000ull, 100000ull, 80ull << 20}) {
        void *p = slab.alloc(sz);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << sz;
        std::memset(p, 0xab, sz); // must be writable
        slab.free(p, sz);
    }
}

TEST(SlabAllocator, FreedBlocksAreRecycled)
{
    SlabAllocator slab;
    void *a = slab.alloc(10000);
    slab.free(a, 10000);
    // Same class (16 KiB) => same block comes back.
    void *b = slab.alloc(12000);
    EXPECT_EQ(a, b);
    EXPECT_EQ(slab.recycled(), 1u);
    EXPECT_EQ(slab.fresh(), 1u);
    slab.free(b, 12000);
}

TEST(SlabAllocator, DifferentClassesDoNotMix)
{
    SlabAllocator slab;
    void *a = slab.alloc(4096);
    slab.free(a, 4096);
    void *b = slab.alloc(8192); // different class: fresh block
    EXPECT_EQ(slab.fresh(), 2u);
    slab.free(b, 8192);
}

TEST(SlabAllocator, HugeBlocksBypassFreelists)
{
    SlabAllocator slab;
    const uint64_t huge = (64ull << 20) + 1;
    void *a = slab.alloc(huge);
    slab.free(a, huge);
    void *b = slab.alloc(huge);
    EXPECT_EQ(slab.recycled(), 0u);
    EXPECT_EQ(slab.fresh(), 2u);
    slab.free(b, huge);
}

TEST(SlabAllocator, NullFreeIsANoop)
{
    SlabAllocator slab;
    slab.free(nullptr, 4096);
    EXPECT_EQ(slab.fresh(), 0u);
}

} // namespace
} // namespace sbhbm::mem
