/**
 * @file
 * SLA breach attribution: each observe() batch decomposes its window
 * latency into recovery / ingest / memory / sched / compute with the
 * components summing exactly to the measured latency, stall deltas
 * clamp to the latency they can explain, stalls seen between window
 * externalizations carry forward to the next batch, primeStalls()
 * re-bases without attributing, and dominantCause() names the cause
 * with the most violating-window latency.
 */

#include "serve/sla_tracker.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "pipeline/operator.h"
#include "runtime/engine.h"

namespace sbhbm::serve {
namespace {

/** Scripted-externalization harness (same as the sla_tracker tests). */
class ObsAttribution : public ::testing::Test
{
  protected:
    static constexpr SimTime kWindow = 100 * kNsPerMs;
    static constexpr SimTime kTarget = 20 * kNsPerMs;

    ObsAttribution()
        : eng_(runtime::EngineConfig{}),
          pipe_(eng_, columnar::WindowSpec{kWindow}), sla_(kTarget)
    {
    }

    /** Externalize window @p w at @p late past its end. */
    void
    externalize(columnar::WindowId w, SimTime late)
    {
        const SimTime at = (w + 1) * kWindow + late;
        sbhbm_assert(at > last_at_, "externalizations must be ordered");
        last_at_ = at;
        eng_.machine().at(at, [this, w] {
            pipe_.noteWindowExternalized(w);
        });
    }

    double
    totalAttributedNs() const
    {
        double sum = 0;
        for (uint32_t c = 0; c < kStallCauses; ++c)
            sum += sla_.componentNs(static_cast<StallCause>(c));
        return sum;
    }

    SimTime last_at_ = 0;
    runtime::Engine eng_;
    pipeline::Pipeline pipe_;
    SlaTracker sla_;
};

TEST_F(ObsAttribution, ComponentsSumToMeasuredLatency)
{
    externalize(0, 3 * kTarget);
    externalize(1, kTarget / 2);
    eng_.machine().run();

    StallSnapshot s;
    s.ingest_wait_ns = 5 * kNsPerMs;
    s.memory_stall_ns = 2 * kNsPerMs;
    s.queue_wait_ns = 1 * kNsPerMs;
    sla_.observe(pipe_, s);

    const double total =
        static_cast<double>(3 * kTarget + kTarget / 2);
    EXPECT_DOUBLE_EQ(totalAttributedNs(), total);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kIngest),
                     5.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kMemory),
                     2.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kSched),
                     1.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kCompute),
                     total - 8.0 * kNsPerMs);
}

TEST_F(ObsAttribution, StallDeltasClampToUnexplainedLatency)
{
    externalize(0, 4 * kNsPerMs);
    eng_.machine().run();

    // The claimed stalls far exceed the 4 ms of latency: allocation
    // order (ingest first) and clamping decide who gets charged.
    StallSnapshot s;
    s.ingest_wait_ns = 3 * kNsPerMs;
    s.memory_stall_ns = 50 * kNsPerMs;
    sla_.observe(pipe_, s);

    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kIngest),
                     3.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kMemory),
                     1.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kCompute), 0.0);
    EXPECT_DOUBLE_EQ(totalAttributedNs(), 4.0 * kNsPerMs);
}

TEST_F(ObsAttribution, EmptyBatchStallsCarryToTheNextWindows)
{
    // A stall completes while no window externalizes: the empty
    // observe() must bank the delta, not drop it.
    StallSnapshot mid;
    mid.memory_stall_ns = 2 * kNsPerMs;
    sla_.observe(pipe_, mid);
    EXPECT_EQ(sla_.windows(), 0u);

    externalize(0, 3 * kTarget);
    eng_.machine().run();
    sla_.observe(pipe_, mid); // counters unchanged since the bank
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kMemory),
                     2.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(totalAttributedNs(),
                     static_cast<double>(3 * kTarget));
}

TEST_F(ObsAttribution, PrimeStallsRebasesWithoutAttributing)
{
    // History from a previous segment on the same (cumulative)
    // counters: priming makes only growth after this point count.
    StallSnapshot inherited;
    inherited.queue_wait_ns = 40 * kNsPerMs;
    sla_.primeStalls(inherited);

    externalize(0, 2 * kNsPerMs);
    eng_.machine().run();
    StallSnapshot s = inherited;
    s.queue_wait_ns += 1 * kNsPerMs;
    sla_.observe(pipe_, s);

    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kSched),
                     1.0 * kNsPerMs);
    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kCompute),
                     1.0 * kNsPerMs);
}

TEST_F(ObsAttribution, OutageAttributesToRecoveryFirst)
{
    sla_.noteOutage(10 * kNsPerMs);
    externalize(0, 3 * kTarget);
    eng_.machine().run();
    sla_.observe(pipe_, StallSnapshot{});

    EXPECT_DOUBLE_EQ(sla_.componentNs(StallCause::kRecovery),
                     10.0 * kNsPerMs);
    EXPECT_EQ(sla_.dominantCause(), StallCause::kCompute)
        << "3x-target window: compute residual still dominates";
}

TEST_F(ObsAttribution, DominantCauseNamesTheBiggestBreachComponent)
{
    EXPECT_EQ(sla_.dominantCause(), StallCause::kCompute)
        << "no violations yet: default is compute";

    externalize(0, 3 * kTarget);
    eng_.machine().run();
    StallSnapshot s;
    s.memory_stall_ns = static_cast<uint64_t>(3 * kTarget);
    sla_.observe(pipe_, s);

    EXPECT_EQ(sla_.dominantCause(), StallCause::kMemory);
    EXPECT_DOUBLE_EQ(sla_.breachNs(StallCause::kMemory),
                     static_cast<double>(3 * kTarget));
    EXPECT_DOUBLE_EQ(sla_.breachNs(StallCause::kCompute), 0.0);
}

TEST_F(ObsAttribution, OnlyLateWindowsCountTowardBreachTotals)
{
    externalize(0, kTarget / 2);  // in target
    externalize(1, 3 * kTarget);  // violation
    eng_.machine().run();
    sla_.observe(pipe_, StallSnapshot{});

    // Batch latency splits by window share; only window 1's share
    // lands in the breach totals.
    const double total =
        static_cast<double>(kTarget / 2 + 3 * kTarget);
    const double late_share = static_cast<double>(3 * kTarget) / total;
    EXPECT_DOUBLE_EQ(sla_.breachNs(StallCause::kCompute),
                     total * late_share);
}

} // namespace
} // namespace sbhbm::serve
