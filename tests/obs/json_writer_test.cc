/**
 * @file
 * The shared streaming JSON writer: comma/indent placement, escaping,
 * fixed-precision number formatting, and the key()/value() pairing —
 * every JSON emitter in the tree (bench reports, trace exporter)
 * rides on this one implementation, so its output must be exact.
 */

#include "obs/json_writer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace sbhbm::obs {
namespace {

TEST(ObsJsonWriter, EmptyContainersStayOnOneLine)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").beginArray().endArray();
    w.key("o").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(ObsJsonWriter, CommasSeparateSiblingsNotKeyValuePairs)
{
    JsonWriter w;
    w.beginObject();
    w.key("x").value(uint64_t{1});
    w.key("y").value(uint64_t{2});
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"x\": 1,\n  \"y\": 2\n}");
}

TEST(ObsJsonWriter, ArrayElementsSeparateAndIndent)
{
    JsonWriter w;
    w.beginArray();
    w.value(uint64_t{1});
    w.value(uint64_t{2});
    w.endArray();
    EXPECT_EQ(w.str(), "[\n  1,\n  2\n]");
}

TEST(ObsJsonWriter, CompactModeEmitsNoWhitespace)
{
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.key("a").value(uint64_t{1});
    w.key("b").beginArray().value(true).endArray();
    w.endObject();
    EXPECT_EQ(w.str(), "{\"a\":1,\"b\":[true]}");
}

TEST(ObsJsonWriter, EscapesQuotesBackslashesAndControls)
{
    JsonWriter w(/*pretty=*/false);
    w.beginArray();
    w.value("a\"b\\c\nd\te");
    w.value(std::string_view("\x01", 1));
    w.endArray();
    EXPECT_EQ(w.str(), "[\"a\\\"b\\\\c\\nd\\te\",\"\\u0001\"]");
}

TEST(ObsJsonWriter, DoublesUseTheExplicitPrecision)
{
    JsonWriter w(/*pretty=*/false);
    w.beginArray();
    w.value(1.0 / 3.0, 3);
    w.value(2.5, 0);
    w.value(-0.125, 2);
    w.endArray();
    EXPECT_EQ(w.str(), "[0.333,2,-0.12]");
}

TEST(ObsJsonWriter, SignedAndBoolValues)
{
    JsonWriter w(/*pretty=*/false);
    w.beginArray();
    w.value(int64_t{-7});
    w.value(false);
    w.rawValue("42.000");
    w.endArray();
    EXPECT_EQ(w.str(), "[-7,false,42.000]");
}

TEST(ObsJsonWriter, NestedDocumentsIndentPerDepth)
{
    JsonWriter w;
    w.beginObject();
    w.key("rows").beginArray();
    w.beginObject();
    w.key("id").value(uint64_t{1});
    w.endObject();
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\n  \"rows\": [\n    {\n      \"id\": 1\n    }\n  ]\n}");
}

} // namespace
} // namespace sbhbm::obs
