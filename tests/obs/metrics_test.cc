/**
 * @file
 * The metrics registry: handle stability across later registrations,
 * hierarchical path joining, fixed-bucket histogram edge behavior,
 * and the name-sorted deterministic JSON export.
 */

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace sbhbm::obs {
namespace {

TEST(ObsMetrics, CounterHandleSurvivesLaterRegistrations)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("a/records");
    c.add();
    // Registering hundreds more must not move the first handle.
    for (int i = 0; i < 500; ++i)
        reg.counter("b/" + std::to_string(i));
    c.add(4);
    EXPECT_EQ(reg.counter("a/records").value, 5u);
    EXPECT_EQ(&reg.counter("a/records"), &c);
}

TEST(ObsMetrics, GaugeSetsAndAccumulates)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("hbm_used");
    g.set(3.5);
    g.add(-1.5);
    EXPECT_DOUBLE_EQ(reg.gauge("hbm_used").value, 2.0);
}

TEST(ObsMetrics, PathJoinsPartsWithSlashes)
{
    EXPECT_EQ(MetricsRegistry::path({"shard", "2", "tenant", "7",
                                     "ingest_wait_ns"}),
              "shard/2/tenant/7/ingest_wait_ns");
    EXPECT_EQ(MetricsRegistry::path({"lone"}), "lone");
    EXPECT_EQ(MetricsRegistry::path({}), "");
}

TEST(ObsMetrics, HistogramBucketsEdgesIntoBoundingBucket)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("lat", {10, 50, 100});
    h.observe(10);  // edge value lands in the bucket it bounds
    h.observe(10.5);
    h.observe(100);
    h.observe(101); // overflow
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 1u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 10 + 10.5 + 100 + 101);
}

TEST(ObsMetrics, HistogramReResolveKeepsOriginalBounds)
{
    MetricsRegistry reg;
    reg.histogram("lat", {1, 2});
    Histogram &h = reg.histogram("lat", {99});
    EXPECT_EQ(h.bounds().size(), 2u);
    EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsMetrics, ExportIsNameSortedAndRepeatable)
{
    MetricsRegistry reg;
    // Registered out of order on purpose: export must sort by name.
    reg.counter("z/last").add(2);
    reg.counter("a/first").add(1);
    reg.gauge("mid").set(0.25);

    JsonWriter w1(/*pretty=*/false);
    reg.writeJson(w1);
    EXPECT_EQ(w1.str(),
              "{\"counters\":{\"a/first\":1,\"z/last\":2},"
              "\"gauges\":{\"mid\":0.250000},\"histograms\":{}}");

    JsonWriter w2(/*pretty=*/false);
    reg.writeJson(w2);
    EXPECT_EQ(w1.str(), w2.str());
}

} // namespace
} // namespace sbhbm::obs
