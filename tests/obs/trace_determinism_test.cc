/**
 * @file
 * The telemetry plane's two core contracts at the serving layer:
 *
 *  - Determinism: trace events are recorded only on the
 *    single-threaded simulation control path, so the same seed yields
 *    a byte-identical Chrome trace export at any host worker-thread
 *    count, and repeated runs of a sharded fleet export identically.
 *
 *  - Neutrality: telemetry is pure observation — running the same
 *    fleet with and without a Telemetry installed produces identical
 *    simulation results (records, windows, latencies, demotions).
 */

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "mem/pressure_director.h"
#include "serve/load_driver.h"
#include "serve/server.h"

namespace sbhbm::serve {
namespace {

constexpr uint64_t kOverloadRecords = 30'000;

/** The canonical overload fleet, traced, at @p host_threads. */
std::string
tracedOverloadJson(unsigned host_threads)
{
    obs::Telemetry tele;
    ServeConfig cfg = overloadServeConfig(/*cores=*/8,
                                          /*control_plane=*/true);
    cfg.engine.host_threads = host_threads;
    cfg.telemetry = &tele;
    Server server(cfg);
    server.submitFleet(makeOverloadFleet(kOverloadRecords));
    server.run();
    EXPECT_GT(tele.trace.size(), 0u);
    return tele.trace.json();
}

/** A small contending fleet on @p shards engine shards, traced. */
std::string
tracedShardJson(uint32_t shards)
{
    obs::Telemetry tele;
    FleetConfig fleet;
    fleet.tenants = 8;
    fleet.seed = 42;
    fleet.hot_records = 8'000;
    fleet.cold_records = 2'000;
    fleet.bundle_records = 2'000;
    fleet.hot_rate = 50e6;
    fleet.cold_rate = 10e6;
    fleet.hot_hbm_reserve = 8_MiB;
    fleet.cold_hbm_reserve = 2_MiB;
    fleet.arrival_span = 0;
    fleet.max_inflight_bundles = 8;

    ServeConfig cfg;
    cfg.engine.machine = sim::MachineConfig::knl();
    cfg.engine.cores = 8;
    cfg.engine.max_inflight_bundles = 1024;
    cfg.window_ns = 20 * kNsPerMs;
    cfg.shards = shards;
    cfg.work_stealing = true;
    cfg.telemetry = &tele;

    Server server(cfg);
    server.submitFleet(makeFleet(fleet));
    server.run();
    EXPECT_GT(tele.trace.size(), 0u);
    return tele.trace.json();
}

TEST(ObsTraceDeterminism, SameSeedSameTraceAtAnyHostThreadCount)
{
    const std::string one = tracedOverloadJson(1);
    const std::string two = tracedOverloadJson(2);
    const std::string eight = tracedOverloadJson(8);
    EXPECT_EQ(one, two);
    EXPECT_EQ(one, eight);
}

TEST(ObsTraceDeterminism, ShardedTraceIsRepeatable)
{
    EXPECT_EQ(tracedShardJson(1), tracedShardJson(1));
    EXPECT_EQ(tracedShardJson(4), tracedShardJson(4));
}

TEST(ObsTraceDeterminism, TraceCoversTasksAdmissionAndPressure)
{
    obs::Telemetry tele;
    ServeConfig cfg = overloadServeConfig(/*cores=*/8,
                                          /*control_plane=*/true);
    cfg.telemetry = &tele;
    Server server(cfg);
    // The full smoke-sized drain: the short fleet the determinism
    // tests use finishes before window state overruns 8 MiB, and
    // this test needs real pressure sweeps on the record.
    server.submitFleet(makeOverloadFleet(150'000));
    server.run();

    uint64_t tasks = 0, admissions = 0, pressure = 0;
    for (const obs::TraceEvent &e : tele.trace.events()) {
        const std::string cat = e.cat;
        tasks += cat == "task" ? 1 : 0;
        admissions += cat == "admission" ? 1 : 0;
        pressure += cat == "pressure" ? 1 : 0;
    }
    EXPECT_GT(tasks, 0u) << "operator task spans missing";
    EXPECT_EQ(admissions, 4u) << "one admission decision per tenant";
    EXPECT_GT(pressure, 0u) << "pressure sweeps ran under 8 MiB HBM";
}

/** Everything a run externalizes, for equality comparison. */
struct RunResult
{
    std::vector<uint64_t> records, windows, violations;
    std::vector<std::vector<double>> latencies;
    uint64_t demoted_kpas = 0;
    SimTime end_time = 0;

    bool
    operator==(const RunResult &o) const
    {
        return records == o.records && windows == o.windows
               && violations == o.violations
               && latencies == o.latencies
               && demoted_kpas == o.demoted_kpas
               && end_time == o.end_time;
    }
};

RunResult
runOverload(obs::Telemetry *tele)
{
    ServeConfig cfg = overloadServeConfig(/*cores=*/8,
                                          /*control_plane=*/true);
    cfg.telemetry = tele;
    Server server(cfg);
    server.submitFleet(makeOverloadFleet(kOverloadRecords));
    server.run();

    RunResult r;
    for (const TenantReport &rep : server.reports()) {
        r.records.push_back(rep.records);
        r.windows.push_back(rep.windows);
        r.violations.push_back(rep.sla_violations);
        r.latencies.push_back(rep.latency_samples);
    }
    r.demoted_kpas = server.engine().director().demotedKpas();
    r.end_time = server.engine().machine().now();
    return r;
}

TEST(ObsCostLogNeutral, TelemetryOnDoesNotPerturbTheSimulation)
{
    const RunResult off = runOverload(nullptr);
    obs::Telemetry tele;
    const RunResult on = runOverload(&tele);
    EXPECT_GT(tele.trace.size(), 0u);
    EXPECT_TRUE(off == on)
        << "tracing must be pure observation: identical records, "
           "windows, latencies, demotions and virtual end time";
}

} // namespace
} // namespace sbhbm::serve
